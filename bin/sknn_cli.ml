(* sknn — command-line front end for the secure k-NN library.

   Subcommands:
     gen       generate a synthetic or UCI-shaped integer CSV dataset
     query     run the full secure protocol on a CSV database
     baseline  run the Yousef et al. Paillier baseline on a CSV database
     kmeans    secure k-means clustering (§7 extension)
     apriori   secure frequent-itemset mining (§7 extension)
     info      print the parameter presets and their security estimates *)

open Cmdliner

let read_db path = Csv_io.read ~has_header:false path

let parse_query s =
  String.split_on_char ',' s
  |> List.map (fun f -> int_of_string (String.trim f))
  |> Array.of_list

let config_of_layout = function
  | "per-coordinate" -> Config.standard ()
  | "dot-product" -> Config.fast ()
  | "secure" -> Config.secure ()
  | other -> invalid_arg (Printf.sprintf "unknown layout %S" other)

(* ------------------------------------------------------------------ *)
(* gen                                                                 *)
(* ------------------------------------------------------------------ *)

let gen dataset rows dims max_value seed out =
  let rng = Util.Rng.of_int seed in
  let db =
    match dataset with
    | "uniform" -> Synthetic.uniform rng ~n:rows ~d:dims ~max_value
    | "clustered" ->
      Synthetic.clustered rng ~n:rows ~d:dims ~clusters:5
        ~spread:(float_of_int max_value /. 20.0) ~max_value
    | "cervical" ->
      Preprocess.scale_to_max ~max_value (Uci_like.cervical_cancer ~n:rows rng)
    | "credit" -> Preprocess.scale_to_max ~max_value (Uci_like.credit_default ~n:rows rng)
    | other -> invalid_arg (Printf.sprintf "unknown dataset %S" other)
  in
  Csv_io.write out db;
  Format.printf "wrote %d x %d integers to %s@." (Array.length db)
    (Array.length db.(0)) out;
  0

let gen_cmd =
  let dataset =
    Arg.(value & opt string "uniform"
         & info [ "dataset" ] ~doc:"uniform | clustered | cervical | credit")
  in
  let rows = Arg.(value & opt int 500 & info [ "rows"; "n" ] ~doc:"Row count.") in
  let dims = Arg.(value & opt int 4 & info [ "dims"; "d" ] ~doc:"Dimensions (uniform/clustered).") in
  let max_value = Arg.(value & opt int 255 & info [ "max" ] ~doc:"Largest coordinate.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.") in
  let out = Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT.csv") in
  Cmd.v (Cmd.info "gen" ~doc:"Generate an integer CSV dataset")
    Term.(const gen $ dataset $ rows $ dims $ max_value $ seed $ out)

(* ------------------------------------------------------------------ *)
(* query                                                               *)
(* ------------------------------------------------------------------ *)

let query_run data query_s k layout seed jobs repeat verbose trace trace_format audit
    metrics =
  (match jobs with
   | Some j when j < 1 ->
     Format.eprintf "--jobs must be at least 1 (got %d)@." j;
     exit 2
   | _ -> ());
  if repeat < 1 then begin
    Format.eprintf "--repeat must be at least 1 (got %d)@." repeat;
    exit 2
  end;
  let trace_fmt =
    match Sknn_obs.Trace.format_of_string trace_format with
    | Ok f -> f
    | Error msg ->
      Format.eprintf "%s@." msg;
      exit 2
  in
  let trace_sink =
    if Option.is_some trace then Sknn_obs.Trace.create () else Sknn_obs.Trace.disabled
  in
  let metrics_reg = if metrics then Some (Sknn_obs.Metrics.create ()) else None in
  let audit_log = if audit then Some (Sknn_obs.Audit.create ()) else None in
  let obs =
    Sknn_obs.Ctx.create ~trace:trace_sink ?metrics:metrics_reg ?audit:audit_log ()
  in
  let db = read_db data in
  let q = parse_query query_s in
  let config = config_of_layout layout in
  (match Config.validate config ~d:(Array.length q) with
   | Ok () -> ()
   | Error e ->
     Format.eprintf "configuration unsound for this data: %s@." e;
     exit 2);
  let rng = Util.Rng.of_int seed in
  let dep, setup_s =
    Util.Timer.time (fun () -> Protocol.deploy ~obs ~rng ?jobs config ~db)
  in
  (* With --repeat, use the prepared multi-query path when the
     configuration supports it (affine masking, d <= n); otherwise fall
     back to independent queries and say so. *)
  let use_prepared =
    repeat > 1 && config.Config.mask_degree = 1
    && Array.length q <= config.Config.bgv.Params.n
  in
  let run () =
    if use_prepared then Protocol.query_prepared ~obs dep ~query:q ~k
    else Protocol.query ~obs dep ~query:q ~k
  in
  let r, query_s' = Util.Timer.time run in
  let steady_times =
    List.init (repeat - 1) (fun _ ->
        Gc.full_major ();
        snd (Util.Timer.time run))
  in
  if verbose then Format.printf "domains: %d@." (Protocol.jobs dep);
  Format.printf "neighbours:@.";
  Array.iter (fun p -> Format.printf "  %a@." Point.pp p) r.Protocol.neighbours;
  Format.printf "exact: %b@." (Protocol.exact dep ~db ~query:q r);
  Format.printf "setup %a, query %a@." Util.Timer.pp_duration setup_s Util.Timer.pp_duration
    query_s';
  if repeat > 1 then begin
    let n_steady = List.length steady_times in
    let mean = List.fold_left ( +. ) 0.0 steady_times /. float_of_int n_steady in
    Format.printf "repeat %d (%s): first %a, steady-state mean %a (%.1fx)@." repeat
      (if use_prepared then "prepared database"
       else "independent queries — prepared path needs affine masking")
      Util.Timer.pp_duration query_s' Util.Timer.pp_duration mean (query_s' /. mean)
  end;
  if verbose then begin
    List.iter
      (fun (name, s) -> Format.printf "  %-20s %a@." name Util.Timer.pp_duration s)
      r.Protocol.phase_seconds;
    Format.printf "party A: %a@." Util.Counters.pp r.Protocol.counters_a;
    Format.printf "party B: %a@." Util.Counters.pp r.Protocol.counters_b;
    Format.printf "%a@." Transcript.pp r.Protocol.transcript
  end;
  (match trace with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     Sknn_obs.Trace.write trace_sink trace_fmt oc;
     close_out oc;
     Format.printf "trace written to %s@." path);
  (match audit_log with
   | None -> ()
   | Some a -> Format.printf "leakage audit:@.%a@." Sknn_obs.Audit.pp a);
  (match metrics_reg with
   | None -> ()
   | Some m -> Format.printf "metrics:@.%a@." Sknn_obs.Metrics.pp m);
  0

let data_t = Arg.(required & opt (some file) None & info [ "data" ] ~doc:"Integer CSV database.")
let query_t =
  Arg.(required & opt (some string) None
       & info [ "query" ] ~doc:"Comma-separated query coordinates.")
let k_t = Arg.(value & opt int 5 & info [ "k" ] ~doc:"Number of neighbours.")
let seed_t = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.")
let verbose_t = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print counters and transcript.")

let query_cmd =
  let layout =
    Arg.(value & opt string "per-coordinate"
         & info [ "layout" ] ~doc:"per-coordinate | dot-product | secure")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs" ]
             ~doc:"OCaml domains per parallel protocol phase (default: SKNN_DOMAINS or \
                   the recommended domain count).")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a hierarchical span trace of setup + query to $(docv).")
  in
  let trace_format =
    Arg.(value & opt string "chrome"
         & info [ "trace-format" ]
             ~doc:"Trace sink: chrome (Perfetto-loadable trace_event JSON), jsonl \
                   (one span per line) or pretty (indented tree).")
  in
  let audit =
    Arg.(value & flag
         & info [ "audit" ]
             ~doc:"Print the leakage-audit channel: exactly what each party's view \
                   exposed during the query.")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Print the metrics registry: phase latencies, BGV level / noise \
                   headroom samples, pool utilization, transcript bytes per link.")
  in
  let repeat =
    Arg.(value & opt int 1
         & info [ "repeat" ]
             ~doc:"Run the query $(docv) times and report first-query vs steady-state \
                   latency; reuses the prepared database when the layout allows it."
             ~docv:"N")
  in
  Cmd.v (Cmd.info "query" ~doc:"Run a secure k-NN query over an encrypted CSV database")
    Term.(const query_run $ data_t $ query_t $ k_t $ layout $ seed_t $ jobs $ repeat
          $ verbose_t $ trace $ trace_format $ audit $ metrics)

(* ------------------------------------------------------------------ *)
(* baseline                                                            *)
(* ------------------------------------------------------------------ *)

let baseline_run data query_s k modulus_bits seed =
  let db = read_db data in
  let q = parse_query query_s in
  let rng = Util.Rng.of_int seed in
  let dep, setup_s =
    Util.Timer.time (fun () -> Sknn_m.deploy ~rng ~modulus_bits ~db ())
  in
  let r, qs = Util.Timer.time (fun () -> Sknn_m.query dep ~query:q ~k) in
  Format.printf "neighbours:@.";
  Array.iter (fun p -> Format.printf "  %a@." Point.pp p) r.Sknn_m.neighbours;
  Format.printf "exact: %b@." (Sknn_m.exact dep ~db ~query:q r);
  Format.printf "setup %a, query %a, C1<->C2 interactions %d@." Util.Timer.pp_duration setup_s
    Util.Timer.pp_duration qs r.Sknn_m.interactions;
  0

let baseline_cmd =
  let modulus =
    Arg.(value & opt int 256 & info [ "modulus-bits" ] ~doc:"Paillier modulus size.")
  in
  Cmd.v
    (Cmd.info "baseline" ~doc:"Run the Yousef et al. Paillier baseline (slow by design)")
    Term.(const baseline_run $ data_t $ query_t $ k_t $ modulus $ seed_t)

(* ------------------------------------------------------------------ *)
(* kmeans                                                              *)
(* ------------------------------------------------------------------ *)

let kmeans_run data k max_iters seed =
  let db = read_db data in
  if k < 1 || k > Array.length db then begin
    Format.eprintf "k out of range@.";
    exit 2
  end;
  let rng = Util.Rng.of_int seed in
  let init = Array.init k (fun i -> db.(i * (Array.length db / k))) in
  let dep = Kmeans.deploy ~rng (Config.fast ()) ~db in
  let r = Kmeans.run ~rng ~max_iters dep ~init in
  Format.printf "converged=%b after %d iterations (%a)@." r.Kmeans.converged
    r.Kmeans.iterations Util.Timer.pp_duration r.Kmeans.seconds;
  Array.iteri
    (fun i c -> Format.printf "  cluster %d (%d points): %a@." (i + 1) r.Kmeans.sizes.(i)
        Point.pp c)
    r.Kmeans.centroids;
  Format.printf "identical to plaintext Lloyd: %b@."
    (Kmeans.matches_plaintext ~db ~init ~max_iters r);
  0

let kmeans_cmd =
  let k = Arg.(value & opt int 3 & info [ "k" ] ~doc:"Cluster count.") in
  let iters = Arg.(value & opt int 25 & info [ "max-iters" ] ~doc:"Iteration cap.") in
  Cmd.v (Cmd.info "kmeans" ~doc:"Secure k-means clustering over an encrypted CSV database")
    Term.(const kmeans_run $ data_t $ k $ iters $ seed_t)

(* ------------------------------------------------------------------ *)
(* apriori                                                             *)
(* ------------------------------------------------------------------ *)

let apriori_run data minsup max_size seed =
  let tx = read_db data in
  let rng = Util.Rng.of_int seed in
  let dep = Apriori.deploy ~rng (Config.standard ()) ~transactions:tx in
  let r = Apriori.mine ~rng ~max_size dep ~minsup in
  Format.printf "%d frequent itemsets (support >= %d) in %a:@."
    (List.length r.Apriori.frequent) minsup Util.Timer.pp_duration r.Apriori.seconds;
  List.iter
    (fun s -> Format.printf "  {%s}@." (String.concat ", " (List.map string_of_int s)))
    r.Apriori.frequent;
  Format.printf "identical to plaintext Apriori: %b@."
    (Apriori.matches_plaintext ~transactions:tx ~minsup ~max_size r);
  0

let apriori_cmd =
  let minsup = Arg.(value & opt int 10 & info [ "minsup" ] ~doc:"Support threshold.") in
  let max_size = Arg.(value & opt int 4 & info [ "max-size" ] ~doc:"Largest itemset.") in
  Cmd.v
    (Cmd.info "apriori" ~doc:"Secure frequent-itemset mining over encrypted 0/1 transactions")
    Term.(const apriori_run $ data_t $ minsup $ max_size $ seed_t)

(* ------------------------------------------------------------------ *)
(* info                                                                *)
(* ------------------------------------------------------------------ *)

let info_run () =
  List.iter
    (fun (name, c) ->
      Format.printf "--- %s ---@.%a@.@." name Config.pp c)
    [ ("per-coordinate (standard)", Config.standard ());
      ("dot-product (fast)", Config.fast ());
      ("secure (128-bit ring)", Config.secure ()) ];
  0

let info_cmd =
  Cmd.v (Cmd.info "info" ~doc:"Show parameter presets and security estimates")
    Term.(const info_run $ const ())

let () =
  let doc = "Secure k-nearest neighbours over encrypted data (EDBT 2018 reproduction)" in
  exit (Cmd.eval' (Cmd.group (Cmd.info "sknn" ~doc) [ gen_cmd; query_cmd; baseline_cmd; kmeans_cmd; apriori_cmd; info_cmd ]))
