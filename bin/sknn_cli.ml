(* sknn — command-line front end for the secure k-NN library.

   Subcommands:
     gen       generate a synthetic or UCI-shaped integer CSV dataset
     query     run the full secure protocol on a CSV database
     cost      attribute a query's time op by op against the analytic cost model
     plan      search the (ring, chain, prime) space for the cheapest safe params
     baseline  run the Yousef et al. Paillier baseline on a CSV database
     kmeans    secure k-means clustering (§7 extension)
     apriori   secure frequent-itemset mining (§7 extension)
     info      print the parameter presets and their security estimates *)

open Cmdliner

let read_db path = Csv_io.read ~has_header:false path

let parse_query s =
  String.split_on_char ',' s
  |> List.map (fun f -> int_of_string (String.trim f))
  |> Array.of_list

let config_of_layout = function
  | "per-coordinate" -> Config.standard ()
  | "dot-product" -> Config.fast ()
  | "secure" -> Config.secure ()
  | other -> invalid_arg (Printf.sprintf "unknown layout %S" other)

(* ------------------------------------------------------------------ *)
(* gen                                                                 *)
(* ------------------------------------------------------------------ *)

let gen dataset rows dims max_value seed out =
  let rng = Util.Rng.of_int seed in
  let db =
    match dataset with
    | "uniform" -> Synthetic.uniform rng ~n:rows ~d:dims ~max_value
    | "clustered" ->
      Synthetic.clustered rng ~n:rows ~d:dims ~clusters:5
        ~spread:(float_of_int max_value /. 20.0) ~max_value
    | "cervical" ->
      Preprocess.scale_to_max ~max_value (Uci_like.cervical_cancer ~n:rows rng)
    | "credit" -> Preprocess.scale_to_max ~max_value (Uci_like.credit_default ~n:rows rng)
    | other -> invalid_arg (Printf.sprintf "unknown dataset %S" other)
  in
  Csv_io.write out db;
  Format.printf "wrote %d x %d integers to %s@." (Array.length db)
    (Array.length db.(0)) out;
  0

let gen_cmd =
  let dataset =
    Arg.(value & opt string "uniform"
         & info [ "dataset" ] ~doc:"uniform | clustered | cervical | credit")
  in
  let rows = Arg.(value & opt int 500 & info [ "rows"; "n" ] ~doc:"Row count.") in
  let dims = Arg.(value & opt int 4 & info [ "dims"; "d" ] ~doc:"Dimensions (uniform/clustered).") in
  let max_value = Arg.(value & opt int 255 & info [ "max" ] ~doc:"Largest coordinate.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.") in
  let out = Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT.csv") in
  Cmd.v (Cmd.info "gen" ~doc:"Generate an integer CSV dataset")
    Term.(const gen $ dataset $ rows $ dims $ max_value $ seed $ out)

(* ------------------------------------------------------------------ *)
(* query                                                               *)
(* ------------------------------------------------------------------ *)

(* The virtual-network timeline table: one row per link with the busy /
   idle split and the per-round latency envelope quantiles, then the
   critical-path end-to-end.  All virtual seconds — a pure function of
   (transcript, profile), identical across --jobs. *)
let print_timeline ppf (tl : Clock.timeline) =
  Format.fprintf ppf "virtual network (%s):@." (Profile.to_string tl.Clock.profile);
  Format.fprintf ppf "  %-24s %5s %10s %7s %12s %12s %10s %10s@." "link" "msgs"
    "bytes" "rounds" "busy" "idle" "round p50" "round p95";
  List.iter
    (fun (l : Clock.link) ->
      Format.fprintf ppf "  %-24s %5d %10d %7d %11.6fs %11.6fs %9.6fs %9.6fs@."
        (Clock.link_name l) l.Clock.link_messages l.Clock.link_bytes
        l.Clock.link_rounds l.Clock.busy_s l.Clock.idle_s
        (Clock.quantile l.Clock.round_latency_s 0.5)
        (Clock.quantile l.Clock.round_latency_s 0.95))
    tl.Clock.links;
  Format.fprintf ppf "  end-to-end: %.6f s (virtual)@." tl.Clock.end_to_end_s

(* JSONL records for sknn report: one "net" line for the run, one
   "net-link" line per link, appended after the flight dump so one file
   carries both streams. *)
let append_net_records path (tl : Clock.timeline) =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Printf.fprintf oc "{\"rec\":\"net\",\"profile\":%S,\"end_to_end_s\":%.9g}\n"
    (Profile.to_string tl.Clock.profile)
    tl.Clock.end_to_end_s;
  List.iter
    (fun (l : Clock.link) ->
      Printf.fprintf oc
        "{\"rec\":\"net-link\",\"link\":%S,\"messages\":%d,\"bytes\":%d,\"rounds\":%d,\"busy_s\":%.9g,\"idle_s\":%.9g,\"round_p50_s\":%.9g,\"round_p95_s\":%.9g}\n"
        (Clock.link_name l) l.Clock.link_messages l.Clock.link_bytes
        l.Clock.link_rounds l.Clock.busy_s l.Clock.idle_s
        (Clock.quantile l.Clock.round_latency_s 0.5)
        (Clock.quantile l.Clock.round_latency_s 0.95))
    tl.Clock.links;
  close_out oc

let query_run data query_s k layout seed jobs repeat packed batch net verbose
    trace trace_format audit metrics prom flight_out =
  (match jobs with
   | Some j when j < 1 ->
     Format.eprintf "--jobs must be at least 1 (got %d)@." j;
     exit 2
   | _ -> ());
  if repeat < 1 then begin
    Format.eprintf "--repeat must be at least 1 (got %d)@." repeat;
    exit 2
  end;
  let trace_fmt =
    match Sknn_obs.Trace.format_of_string trace_format with
    | Ok f -> f
    | Error msg ->
      Format.eprintf "%s@." msg;
      exit 2
  in
  (* --prom implies a registry even without --metrics (the flag controls
     the console print, the option the exposition file). *)
  let metrics_reg =
    if metrics || Option.is_some prom then Some (Sknn_obs.Metrics.create ()) else None
  in
  let audit_log = if audit then Some (Sknn_obs.Audit.create ()) else None in
  (* The flight recorder is always on (SKNN_FLIGHT=0 opts out): a fixed
     ring buffer cheap enough to carry through every run, dumped on
     demand or on decryption failure. *)
  let flight = Sknn_obs.Flight.default () in
  let make_ctx tr =
    Sknn_obs.Ctx.create ~trace:tr ?metrics:metrics_reg ?audit:audit_log ?flight ()
  in
  let new_trace () =
    if Option.is_some trace then Sknn_obs.Trace.create () else Sknn_obs.Trace.disabled
  in
  (* One trace file per run: run 0 keeps FILE (and includes setup), run
     i >= 1 goes to FILE with the index spliced before the extension —
     --repeat no longer clobbers a single output. *)
  let write_trace tr i =
    match trace with
    | None -> ()
    | Some path ->
      let path = Sknn_obs.Trace.indexed_path path i in
      let oc = open_out path in
      Sknn_obs.Trace.write tr trace_fmt oc;
      close_out oc;
      Format.printf "trace written to %s@." path
  in
  let dump_flight_to path ~run =
    match flight with
    | None -> ()
    | Some fl ->
      let oc = open_out path in
      Sknn_obs.Flight.dump ~run fl oc;
      close_out oc
  in
  let guarded f =
    try f ()
    with Bgv.Decryption_failure msg ->
      Format.eprintf "decryption failure: %s@." msg;
      if Option.is_some flight then begin
        let path = Option.value flight_out ~default:"sknn-flight-crash.jsonl" in
        dump_flight_to path ~run:[ ("reason", "decryption-failure"); ("error", msg) ];
        Format.eprintf "flight recorder dumped to %s@." path
      end;
      exit 1
  in
  let db = read_db data in
  (* --batch runs every ';'-separated query of --query in one
     slot-dimension protocol round; otherwise --query is one query. *)
  let queries =
    String.split_on_char ';' query_s |> List.map parse_query |> Array.of_list
  in
  if (not batch) && Array.length queries > 1 then begin
    Format.eprintf "multiple ';'-separated queries need --batch@.";
    exit 2
  end;
  let q = queries.(0) in
  let config = config_of_layout layout in
  (match Config.validate config ~d:(Array.length q) with
   | Ok () -> ()
   | Error e ->
     Format.eprintf "configuration unsound for this data: %s@." e;
     exit 2);
  let packed_ok =
    config.Config.mask_degree = 1 && Array.length q <= config.Config.bgv.Params.n
  in
  if (packed || batch) && not packed_ok then begin
    Format.eprintf
      "the slot-packed path needs affine (degree-1) masking and d <= ring degree \
       (try --layout dot-product)@.";
    exit 2
  end;
  let rng = Util.Rng.of_int seed in
  let trace0 = new_trace () in
  let obs0 = make_ctx trace0 in
  let dep, setup_s =
    Util.Timer.time (fun () -> guarded (fun () -> Protocol.deploy ~obs:obs0 ~rng ?jobs config ~db))
  in
  let net_timeline = ref None in
  if batch then begin
    let m = Array.length queries in
    let results, round_s =
      Util.Timer.time (fun () ->
          guarded (fun () -> Protocol.query_batch ~obs:obs0 ?net dep ~queries ~k))
    in
    net_timeline := results.(0).Protocol.net;
    write_trace trace0 0;
    if verbose then Format.printf "domains: %d@." (Protocol.jobs dep);
    Array.iteri
      (fun i r ->
        Format.printf "query %d neighbours:@." i;
        Array.iter (fun p -> Format.printf "  %a@." Point.pp p) r.Protocol.neighbours;
        Format.printf "  exact: %b@." (Protocol.exact dep ~db ~query:queries.(i) r))
      results;
    Format.printf "setup %a, batched round %a (%d queries, %a per query)@."
      Util.Timer.pp_duration setup_s Util.Timer.pp_duration round_s m
      Util.Timer.pp_duration
      (round_s /. float_of_int m);
    if verbose then begin
      List.iter
        (fun (name, s) -> Format.printf "  %-20s %a@." name Util.Timer.pp_duration s)
        results.(0).Protocol.phase_seconds;
      Format.printf "party A: %a@." Util.Counters.pp results.(0).Protocol.counters_a;
      Format.printf "party B: %a@." Util.Counters.pp results.(0).Protocol.counters_b;
      Format.printf "%a@." Transcript.pp results.(0).Protocol.transcript
    end
  end
  else begin
    (* With --repeat, use the packed path when asked (--packed), else the
       prepared multi-query path when the configuration supports it
       (affine masking, d <= n); otherwise fall back to independent
       queries and say so. *)
    let use_prepared = repeat > 1 && packed_ok in
    let run obs () =
      if packed then Protocol.query_packed ~obs ?net dep ~query:q ~k
      else if use_prepared then Protocol.query_prepared ~obs ?net dep ~query:q ~k
      else Protocol.query ~obs ?net dep ~query:q ~k
    in
    let r, query_s' = Util.Timer.time (fun () -> guarded (run obs0)) in
    net_timeline := r.Protocol.net;
    write_trace trace0 0;
    let steady_times =
      List.init (repeat - 1) (fun i ->
          Gc.full_major ();
          let tr = new_trace () in
          let obs = make_ctx tr in
          let t = snd (Util.Timer.time (fun () -> guarded (run obs))) in
          write_trace tr (i + 1);
          t)
    in
    if verbose then Format.printf "domains: %d@." (Protocol.jobs dep);
    Format.printf "neighbours:@.";
    Array.iter (fun p -> Format.printf "  %a@." Point.pp p) r.Protocol.neighbours;
    Format.printf "exact: %b@." (Protocol.exact dep ~db ~query:q r);
    Format.printf "setup %a, query %a@." Util.Timer.pp_duration setup_s Util.Timer.pp_duration
      query_s';
    if repeat > 1 then begin
      let n_steady = List.length steady_times in
      let mean = List.fold_left ( +. ) 0.0 steady_times /. float_of_int n_steady in
      Format.printf "repeat %d (%s): first %a, steady-state mean %a (%.1fx)@." repeat
        (if packed then "slot-packed database"
         else if use_prepared then "prepared database"
         else "independent queries — prepared path needs affine masking")
        Util.Timer.pp_duration query_s' Util.Timer.pp_duration mean (query_s' /. mean)
    end;
    if verbose then begin
      List.iter
        (fun (name, s) -> Format.printf "  %-20s %a@." name Util.Timer.pp_duration s)
        r.Protocol.phase_seconds;
      Format.printf "party A: %a@." Util.Counters.pp r.Protocol.counters_a;
      Format.printf "party B: %a@." Util.Counters.pp r.Protocol.counters_b;
      Format.printf "%a@." Transcript.pp r.Protocol.transcript
    end
  end;
  (match !net_timeline with
   | None -> ()
   | Some tl -> Format.printf "@.%a" print_timeline tl);
  (match audit_log with
   | None -> ()
   | Some a -> Format.printf "leakage audit:@.%a@." Sknn_obs.Audit.pp a);
  (match metrics_reg with
   | None -> ()
   | Some m -> if metrics then Format.printf "metrics:@.%a@." Sknn_obs.Metrics.pp m);
  (match prom, metrics_reg with
   | Some path, Some m ->
     let oc = open_out path in
     output_string oc (Sknn_obs.Metrics.to_prometheus m);
     close_out oc;
     Format.printf "prometheus exposition written to %s@." path
   | _ -> ());
  (match flight_out with
   | None -> ()
   | Some path when Option.is_some flight ->
     dump_flight_to path
       ~run:
         [ ("cmd", "query"); ("data", data); ("k", string_of_int k);
           ("repeat", string_of_int repeat) ];
     Option.iter (append_net_records path) !net_timeline;
     Format.printf "flight dump written to %s@." path
   | Some _ -> Format.eprintf "--flight ignored: recorder disabled (SKNN_FLIGHT=0)@.");
  0

let data_t = Arg.(required & opt (some file) None & info [ "data" ] ~doc:"Integer CSV database.")
let query_t =
  Arg.(required & opt (some string) None
       & info [ "query" ] ~doc:"Comma-separated query coordinates.")
let k_t = Arg.(value & opt int 5 & info [ "k" ] ~doc:"Number of neighbours.")
let seed_t = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.")

let profile_conv =
  Arg.conv
    ( (fun s ->
        match Profile.of_string s with Ok p -> Ok p | Error e -> Error (`Msg e)),
      fun ppf p -> Format.pp_print_string ppf (Profile.to_string p) )

let net_t =
  Arg.(value & opt (some profile_conv) None
       & info [ "net" ] ~docv:"PROFILE"
           ~doc:"Replay the communication under a virtual network profile: loopback \
                 | lan | wan | rtt_ms:bw_mbps (e.g. 40:100).  Timing derives only \
                 from the transcript's bytes and rounds — the already-audited \u{00a7}5 \
                 surface — so the timeline is identical for every --jobs count.")
let verbose_t = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print counters and transcript.")

let query_cmd =
  let layout =
    Arg.(value & opt string "per-coordinate"
         & info [ "layout" ] ~doc:"per-coordinate | dot-product | secure")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs" ]
             ~doc:"OCaml domains per parallel protocol phase (default: SKNN_DOMAINS or \
                   the recommended domain count).")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a hierarchical span trace of setup + query to $(docv).")
  in
  let trace_format =
    Arg.(value & opt string "chrome"
         & info [ "trace-format" ]
             ~doc:"Trace sink: chrome (Perfetto-loadable trace_event JSON), jsonl \
                   (one span per line) or pretty (indented tree).")
  in
  let audit =
    Arg.(value & flag
         & info [ "audit" ]
             ~doc:"Print the leakage-audit channel: exactly what each party's view \
                   exposed during the query.")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Print the metrics registry: phase latencies, BGV level / noise \
                   headroom samples, pool utilization, transcript bytes per link.")
  in
  let repeat =
    Arg.(value & opt int 1
         & info [ "repeat" ]
             ~doc:"Run the query $(docv) times and report first-query vs steady-state \
                   latency; reuses the prepared database when the layout allows it. \
                   With --trace, run $(docv)'s spans go to FILE.$(docv).ext."
             ~docv:"N")
  in
  let packed =
    Arg.(value & flag
         & info [ "packed" ]
             ~doc:"Use the slot-packed (SIMD) database layout: one ciphertext per \
                   $(b,N) points in the distance phase.  Needs affine masking and \
                   d <= ring degree.")
  in
  let batch =
    Arg.(value & flag
         & info [ "batch" ]
             ~doc:"Treat --query as ';'-separated queries and answer them all in one \
                   slot-dimension protocol round (implies the packed layout).")
  in
  let prom =
    Arg.(value & opt (some string) None
         & info [ "prom" ] ~docv:"FILE"
             ~doc:"Write the metrics registry in Prometheus text exposition format to \
                   $(docv) (implies a registry even without --metrics).")
  in
  let flight_out =
    Arg.(value & opt (some string) None
         & info [ "flight" ] ~docv:"FILE"
             ~doc:"Dump the flight recorder (JSONL ring-buffer events) to $(docv) after \
                   the run.  On decryption failure the buffer is dumped to $(docv) — or \
                   sknn-flight-crash.jsonl if unset — automatically.")
  in
  Cmd.v (Cmd.info "query" ~doc:"Run a secure k-NN query over an encrypted CSV database")
    Term.(const query_run $ data_t $ query_t $ k_t $ layout $ seed_t $ jobs $ repeat
          $ packed $ batch $ net_t $ verbose_t $ trace $ trace_format $ audit
          $ metrics $ prom $ flight_out)

(* ------------------------------------------------------------------ *)
(* dump-flight                                                         *)
(* ------------------------------------------------------------------ *)

let dump_flight_run data query_s k layout seed jobs out =
  let flight =
    match Sknn_obs.Flight.default () with
    | Some f -> f
    | None ->
      Format.eprintf "flight recorder disabled (SKNN_FLIGHT=0)@.";
      exit 2
  in
  let db = read_db data in
  let q = parse_query query_s in
  let config = config_of_layout layout in
  (match Config.validate config ~d:(Array.length q) with
   | Ok () -> ()
   | Error e ->
     Format.eprintf "configuration unsound for this data: %s@." e;
     exit 2);
  let rng = Util.Rng.of_int seed in
  let obs = Sknn_obs.Ctx.create ~flight () in
  let dump ~reason =
    let oc = open_out out in
    Sknn_obs.Flight.dump
      ~run:[ ("cmd", "dump-flight"); ("data", data); ("k", string_of_int k); reason ]
      flight oc;
    close_out oc;
    Format.printf "flight dump (%d events, %d dropped) written to %s@."
      (Stdlib.min (Sknn_obs.Flight.total flight) (Sknn_obs.Flight.capacity flight))
      (Sknn_obs.Flight.dropped flight) out
  in
  (try
     let dep = Protocol.deploy ~obs ~rng ?jobs config ~db in
     ignore (Protocol.query ~obs dep ~query:q ~k)
   with Bgv.Decryption_failure msg ->
     Format.eprintf "decryption failure: %s@." msg;
     dump ~reason:("error", msg);
     exit 1);
  dump ~reason:("status", "ok");
  0

let dump_flight_cmd =
  let out =
    Arg.(value & opt string "flight.jsonl"
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output path for the JSONL dump.")
  in
  Cmd.v
    (Cmd.info "dump-flight"
       ~doc:"Run one query with the flight recorder only and dump its ring buffer")
    Term.(const dump_flight_run $ data_t $ query_t $ k_t
          $ Arg.(value & opt string "per-coordinate"
                 & info [ "layout" ] ~doc:"per-coordinate | dot-product | secure")
          $ seed_t
          $ Arg.(value & opt (some int) None & info [ "jobs" ] ~doc:"OCaml domains.")
          $ out)

(* ------------------------------------------------------------------ *)
(* report                                                              *)
(* ------------------------------------------------------------------ *)

let report_run files =
  let t = Sknn_obs.Report.create () in
  List.iter
    (fun f ->
      try Sknn_obs.Report.add_file t f
      with Sys_error e ->
        Format.eprintf "%s@." e;
        exit 2)
    files;
  Format.printf "%a@." Sknn_obs.Report.pp t;
  0

let report_cmd =
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"TRACE"
         ~doc:"jsonl trace files and/or flight dumps (any mix).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Aggregate recorded traces into per-phase p50/p95/p99 latency, \
             bytes-per-link and noise-margin tables")
    Term.(const report_run $ files)

(* ------------------------------------------------------------------ *)
(* cost                                                                *)
(* ------------------------------------------------------------------ *)

(* Op-level cost attribution (DESIGN §5a): calibrate per-op unit costs
   on this machine, predict the query's ledger and phase times with the
   analytic replica, run the live query, and print both side by side.
   This subsumes the bench harness's Table 1 printout — the paper-style
   op-count rows land next to the calibrated microsecond attribution. *)

module CM = Sknn_obs.Cost_model

let calib_t =
  Arg.(value & opt (some string) None
       & info [ "calib" ] ~docv:"FILE"
           ~doc:"Calibration cache: JSON lines keyed by (parameter set, quick). A \
                 hit skips the measurement pass; an entry measured at another git \
                 revision or on another machine still hits but prints a staleness \
                 warning. Shared by sknn cost, sknn plan and the bench harness.")

let cost_run data query_s k layout path_s seed jobs net quick calib verbose json =
  let db = read_db data in
  let queries =
    String.split_on_char ';' query_s |> List.map parse_query |> Array.of_list
  in
  let q = queries.(0) in
  let m = Array.length queries in
  let config = config_of_layout layout in
  (match Config.validate config ~d:(Array.length q) with
   | Ok () -> ()
   | Error e ->
     Format.eprintf "configuration unsound for this data: %s@." e;
     exit 2);
  if path_s <> "batch" && m > 1 then begin
    Format.eprintf "multiple ';'-separated queries need --path batch@.";
    exit 2
  end;
  let packed_ok =
    config.Config.mask_degree = 1 && Array.length q <= config.Config.bgv.Params.n
  in
  if path_s <> "plain" && not packed_ok then begin
    Format.eprintf
      "the %s path needs affine (degree-1) masking and d <= ring degree (try \
       --layout dot-product)@."
      path_s;
    exit 2
  end;
  let n = Array.length db and d = Array.length db.(0) in
  let rng = Util.Rng.of_int seed in
  Format.printf "calibrating per-op unit costs (%s pass%s)...@."
    (if quick then "quick" else "full")
    (match calib with Some f -> Printf.sprintf ", cache %s" f | None -> "");
  let unit_costs, calib_warnings =
    Kernel_bench.Calibration.measure_cached ~quick ?file:calib config.Config.bgv
  in
  List.iter (fun w -> Format.printf "warning: %s@." w) calib_warnings;
  if verbose then Format.printf "@.%a@." Kernel_bench.Calibration.pp unit_costs;
  let dep = Protocol.deploy ~rng ?jobs config ~db in
  let r =
    match path_s with
    | "plain" -> Protocol.query ?net dep ~query:q ~k
    | "prepared" -> Protocol.query_prepared ?net dep ~query:q ~k
    | "packed" -> Protocol.query_packed ?net dep ~query:q ~k
    | "batch" -> (Protocol.query_batch ?net dep ~queries ~k).(0)
    | other ->
      Format.eprintf "unknown path %S (plain | prepared | packed | batch)@." other;
      exit 2
  in
  let cm_path =
    match path_s with
    | "plain" -> CM.Plain
    | "prepared" -> CM.Prepared
    | "packed" -> CM.Packed
    | _ -> CM.Batch m
  in
  (* The one query above pays any prepare-db phase, so predict it too. *)
  let pred = Attribution.predict ~include_prepare:true config ~n ~d ~k cm_path in
  let ledger_exact =
    Util.Counters.equal_ledger pred.CM.party_a r.Protocol.counters_a
    && Util.Counters.equal_ledger pred.CM.party_b r.Protocol.counters_b
    && Util.Counters.equal_ledger pred.CM.client r.Protocol.counters_client
  in
  let predicted = Attribution.predicted_phase_seconds ~unit_costs pred in
  Format.printf "@.instance: n=%d d=%d k=%d layout=%s path=%s@." n d k
    (Config.layout_name config.Config.layout)
    path_s;
  Format.printf "ledger: analytic replica %s the measured op ledger@."
    (if ledger_exact then "exactly matches" else "DIVERGES from");
  Format.printf "@.%-22s %12s %12s %8s@." "phase" "predicted" "measured" "ratio";
  let rows =
    List.map
      (fun (phase, measured_s) ->
        let predicted_s =
          match List.assoc_opt phase predicted with Some s -> s | None -> 0.0
        in
        (phase, predicted_s, measured_s))
      r.Protocol.phase_seconds
  in
  List.iter
    (fun (phase, p, ms) ->
      Format.printf "%-22s %11.6fs %11.6fs %7s@." phase p ms
        (if p > 0.0 then Printf.sprintf "%.2fx" (ms /. p) else "-"))
    rows;
  let tot f = List.fold_left (fun acc (_, p, ms) -> acc +. f p ms) 0.0 rows in
  let tot_p = tot (fun p _ -> p) and tot_m = tot (fun _ ms -> ms) in
  Format.printf "%-22s %11.6fs %11.6fs %7s@." "total" tot_p tot_m
    (if tot_p > 0.0 then Printf.sprintf "%.2fx" (tot_m /. tot_p) else "-");
  (* The paper's Table 1 rows, predicted (closed form, plus the exact
     serialized-bytes prediction) vs measured. *)
  let t1p =
    Cost.ours ~bytes:pred.CM.ab_bytes ~n ~d ~k
      ~mask_degree:config.Config.mask_degree ()
  in
  let t1m = Cost.measured r in
  Format.printf "@.Table 1 (ours): predicted %a@.                measured  %a@." Cost.pp
    t1p Cost.pp t1m;
  (* Comms-aware end-to-end: the analytic compute critical path plus the
     virtual clock's replay of the predicted transcript, cross-checked
     against the replay of the transcript the live query just recorded.
     Rounds and bytes must agree exactly (the model emits the same
     messages the protocol sends); only the compute term is calibrated. *)
  let net_report =
    match net with
    | None -> None
    | Some profile ->
      let e2e = CM.predict_end_to_end ~unit_costs ~profile pred in
      let live = Clock.replay profile r.Protocol.transcript in
      let link_sig (tl : Clock.timeline) =
        List.map
          (fun (l : Clock.link) ->
            (l.Clock.link_a, l.Clock.link_b, l.Clock.link_messages,
             l.Clock.link_bytes, l.Clock.link_rounds))
          tl.Clock.links
      in
      let exact = link_sig e2e.CM.timeline = link_sig live in
      Format.printf
        "@.network (%s): predicted end-to-end %.6fs = compute %.6fs + wire %.6fs@."
        (Profile.to_string profile) e2e.CM.total_s e2e.CM.compute_s e2e.CM.wire_s;
      List.iter
        (fun (party, s) -> Format.printf "  compute %-12s %11.6fs@." party s)
        e2e.CM.compute_party_s;
      Format.printf "  live transcript replayed: wire %.6fs; rounds/bytes %s the \
                     prediction@."
        live.Clock.end_to_end_s
        (if exact then "exactly match" else "DIVERGE from");
      Format.printf "%a" print_timeline live;
      Some (profile, e2e, live, exact)
  in
  let transcript_exact =
    match net_report with None -> true | Some (_, _, _, exact) -> exact
  in
  (* Mirror the attribution into the flight recorder, so post-mortem
     dumps carry it next to the phase/noise stream. *)
  (match Sknn_obs.Flight.default () with
   | None -> ()
   | Some fl ->
     List.iter
       (fun (phase, p, ms) ->
         Sknn_obs.Flight.record fl Sknn_obs.Flight.Mark ~name:("cost:" ^ phase) ~x:p ();
         ignore ms)
       rows);
  (match json with
   | None -> ()
   | Some path ->
     let buf = Buffer.create 1024 in
     Buffer.add_string buf (Kernel_bench.Calibration.to_json_line unit_costs);
     Buffer.add_char buf '\n';
     Buffer.add_string buf
       (Printf.sprintf
          "{\"rec\":\"cost\",\"path\":%S,\"n\":%d,\"d\":%d,\"k\":%d,\"ledger_exact\":%b,\"phases\":["
          path_s n d k ledger_exact);
     List.iteri
       (fun i (phase, p, ms) ->
         if i > 0 then Buffer.add_char buf ',';
         Buffer.add_string buf
           (Printf.sprintf "{\"phase\":%S,\"predicted_s\":%.9g,\"measured_s\":%.9g}"
              phase p ms))
       rows;
     Buffer.add_string buf "]}\n";
     (match net_report with
      | None -> ()
      | Some (profile, e2e, live, exact) ->
        Buffer.add_string buf
          (Printf.sprintf
             "{\"rec\":\"cost-net\",\"profile\":%S,\"predicted_total_s\":%.9g,\"predicted_compute_s\":%.9g,\"predicted_wire_s\":%.9g,\"replayed_wire_s\":%.9g,\"transcript_exact\":%b}\n"
             (Profile.to_string profile) e2e.CM.total_s e2e.CM.compute_s
             e2e.CM.wire_s live.Clock.end_to_end_s exact));
     let oc = open_out path in
     Buffer.output_buffer oc buf;
     close_out oc;
     Format.printf "@.cost report written to %s@." path);
  if not (ledger_exact && transcript_exact) then 1 else 0

let cost_cmd =
  let layout =
    Arg.(value & opt string "per-coordinate"
         & info [ "layout" ] ~doc:"per-coordinate | dot-product | secure")
  in
  let path =
    Arg.(value & opt string "plain"
         & info [ "path" ]
             ~doc:"Query pipeline to attribute: plain | prepared | packed | batch \
                   (batch answers the ';'-separated --query list in one round).")
  in
  let jobs =
    Arg.(value & opt (some int) None & info [ "jobs" ] ~doc:"OCaml domains.")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ] ~doc:"Shorter calibration windows (CI smoke).")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the calibration table and per-phase attribution as JSON \
                   lines to $(docv); feed it to sknn report to see the attribution \
                   next to recorded latencies.")
  in
  Cmd.v
    (Cmd.info "cost"
       ~doc:"Attribute a query's time op by op: calibrated analytic prediction vs \
             measured phases")
    Term.(const cost_run $ data_t $ query_t $ k_t $ layout $ path $ seed_t $ jobs
          $ net_t $ quick $ calib_t $ verbose_t $ json)

(* ------------------------------------------------------------------ *)
(* plan                                                                *)
(* ------------------------------------------------------------------ *)

(* Automatic parameter planning (DESIGN §6): describe the workload, let
   Planner.plan search the (ring degree, chain, plaintext prime) space
   for the cheapest parameter set that clears the noise margin and the
   security floor, and print the ranked survivors next to what the
   matching preset would cost at the same workload under the same
   calibrated unit model. *)

let plan_run points dims k coord_bits layout_s path_s batch_m mask_degree
    mask_coeff_bits min_security noise_margin objective_s net keep preset_s quick
    calib json_path apply seed jobs =
  let layout =
    match layout_s with
    | "per-coordinate" -> Config.Per_coordinate
    | "dot-product" -> Config.Dot_product
    | other ->
      Format.eprintf "unknown layout %S (per-coordinate | dot-product)@." other;
      exit 2
  in
  let path =
    match path_s with
    | "plain" -> CM.Plain
    | "prepared" -> CM.Prepared
    | "packed" -> CM.Packed
    | "batch" ->
      if batch_m < 2 then begin
        Format.eprintf "--path batch needs --batch at least 2 (got %d)@." batch_m;
        exit 2
      end;
      CM.Batch batch_m
    | other ->
      Format.eprintf "unknown path %S (plain | prepared | packed | batch)@." other;
      exit 2
  in
  let objective =
    match objective_s with
    | "first" -> Planner.First_query
    | "steady" -> Planner.Steady_state
    | s ->
      (match float_of_string_opt s with
       | Some alpha -> Planner.Weighted alpha
       | None ->
         Format.eprintf
           "unknown objective %S (first | steady | a first-query weight in [0,1])@." s;
         exit 2)
  in
  let ref_params =
    match preset_s with
    | "toy" -> Params.toy ()
    | "bench-small" -> Params.bench_small ()
    | "bench" -> Params.bench ()
    | "secure" -> Params.secure ()
    | other ->
      Format.eprintf "unknown preset %S (toy | bench-small | bench | secure)@." other;
      exit 2
  in
  let w =
    try
      Planner.workload ~layout ~path ~mask_degree ~mask_coeff_bits ~points ~dim:dims
        ~k ~coord_bits ()
    with Invalid_argument msg ->
      Format.eprintf "%s@." msg;
      exit 2
  in
  Format.printf "calibrating per-op unit costs on %s (%s pass%s)...@."
    ref_params.Params.name
    (if quick then "quick" else "full")
    (match calib with Some f -> Printf.sprintf ", cache %s" f | None -> "");
  let costs, calib_warnings =
    Kernel_bench.Calibration.measure_cached ~quick ?file:calib ref_params
  in
  List.iter (fun w -> Format.printf "warning: %s@." w) calib_warnings;
  let unit_model = CM.fit_unit_model ~n:ref_params.Params.n costs in
  let limits =
    { Planner.min_security_bits = min_security;
      noise_margin_bits = noise_margin;
      objective;
      net }
  in
  let outcome =
    try Planner.plan ~keep ~unit_model w limits
    with Invalid_argument msg ->
      Format.eprintf "%s@." msg;
      exit 2
  in
  Format.printf "@.%a@." Planner.pp_outcome outcome;
  (* What the matching preset costs at this workload under the same unit
     model — the number the planner's winner has to beat. *)
  let preset_config =
    let base =
      match layout with
      | Config.Per_coordinate -> Config.standard ()
      | Config.Dot_product -> Config.fast ()
    in
    if path = CM.Plain then base else Config.with_mask_degree 1 base
  in
  let comparison =
    match Config.validate preset_config ~d:dims with
    | Error e ->
      Format.printf "preset comparison skipped (%s)@." e;
      None
    | Ok () ->
      let bgv = preset_config.Config.bgv in
      let unit_costs =
        CM.unit_costs_for unit_model ~n:bgv.Params.n ~levels:(Params.chain_length bgv)
      in
      let total ~include_prepare =
        let pred =
          Attribution.predict ~include_prepare preset_config ~n:points ~d:dims ~k path
        in
        let compute =
          List.fold_left
            (fun acc (_, s) -> acc +. s)
            0.0
            (Attribution.predicted_phase_seconds ~unit_costs pred)
        in
        (* Price the preset under the same network term as the planner's
           objective, or the comparison is apples to oranges. *)
        match net with
        | None -> compute
        | Some profile ->
          compute +. (Clock.replay profile pred.CM.transcript).Clock.end_to_end_s
      in
      Some (bgv.Params.name, total ~include_prepare:true, total ~include_prepare:false)
  in
  (match comparison, Planner.best outcome with
   | Some (pname, pfirst, psteady), Some best ->
     Format.printf "@.vs preset %s at the same workload (same unit model):@." pname;
     Format.printf "  preset:  first %.6fs, steady %.6fs@." pfirst psteady;
     Format.printf "  planned: first %.6fs, steady %.6fs  (steady speedup %.2fx)@."
       best.Planner.first_seconds best.Planner.steady_seconds
       (if best.Planner.steady_seconds > 0.0 then
          psteady /. best.Planner.steady_seconds
        else 0.0)
   | _ -> ());
  (match json_path with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     output_string oc (Planner.json_of_outcome outcome);
     output_char oc '\n';
     (match comparison, Planner.best outcome with
      | Some (pname, pfirst, psteady), Some best ->
        output_string oc
          (Printf.sprintf
             "{\"rec\":\"plan-compare\",\"preset\":%S,\"preset_first_s\":%.9g,\"preset_steady_s\":%.9g,\"planned_first_s\":%.9g,\"planned_steady_s\":%.9g}\n"
             pname pfirst psteady best.Planner.first_seconds
             best.Planner.steady_seconds)
      | _ -> ());
     close_out oc;
     Format.printf "plan written to %s@." path);
  if not apply then
    if outcome.Planner.ranked = [] then 1 else 0
  else
    match Planner.best outcome with
    | None ->
      Format.eprintf "no feasible plan to apply@.";
      1
    | Some best ->
      let s = best.Planner.spec in
      Format.printf
        "@.applying plan n=%d chain=%dx%d-bit t_bits=%d: live query at the workload \
         shape@."
        s.Planner.sp_n s.Planner.sp_chain_len s.Planner.sp_prime_bits
        s.Planner.sp_plain_bits;
      let config = Planner.realize w best in
      let rng = Util.Rng.of_int seed in
      let max_value = (1 lsl coord_bits) - 1 in
      let db = Synthetic.uniform rng ~n:points ~d:dims ~max_value in
      let q = Synthetic.query_like rng db in
      let queries =
        match path with
        | CM.Batch m ->
          Array.init m (fun i -> if i = 0 then q else Synthetic.query_like rng db)
        | _ -> [| q |]
      in
      let dep = Protocol.deploy ~rng ?jobs config ~db in
      let r, secs =
        Util.Timer.time (fun () ->
            match path with
            | CM.Plain -> Protocol.query dep ~query:q ~k
            | CM.Prepared -> Protocol.query_prepared dep ~query:q ~k
            | CM.Packed -> Protocol.query_packed dep ~query:q ~k
            | CM.Batch _ -> (Protocol.query_batch dep ~queries ~k).(0))
      in
      let ok = Protocol.exact dep ~db ~query:q r in
      Format.printf "live query: %a, exact=%b@." Util.Timer.pp_duration secs ok;
      if ok then 0 else 1

let plan_cmd =
  let points =
    Arg.(value & opt int 858 & info [ "points"; "n" ] ~doc:"Database size n.")
  in
  let dims = Arg.(value & opt int 32 & info [ "dims"; "d" ] ~doc:"Dimension d.") in
  let coord_bits =
    Arg.(value & opt int 8
         & info [ "coord-bits" ] ~doc:"Coordinates fit in this many bits.")
  in
  let layout =
    Arg.(value & opt string "per-coordinate"
         & info [ "layout" ] ~doc:"per-coordinate | dot-product")
  in
  let path =
    Arg.(value & opt string "plain"
         & info [ "path" ]
             ~doc:"Query pipeline to plan for: plain | prepared | packed | batch.")
  in
  let batch_m =
    Arg.(value & opt int 4
         & info [ "batch" ] ~docv:"M" ~doc:"Batch size when --path batch.")
  in
  let mask_degree =
    Arg.(value & opt int 1 & info [ "mask-degree" ] ~doc:"Masking-polynomial degree.")
  in
  let mask_coeff_bits =
    Arg.(value & opt int 8
         & info [ "mask-coeff-bits" ]
             ~doc:"Required sound mask-coefficient width in bits.")
  in
  let min_security =
    Arg.(value & opt float 0.0
         & info [ "min-security" ] ~docv:"BITS"
             ~doc:"RLWE security floor in bits (0 disables the prune).")
  in
  let noise_margin =
    Arg.(value & opt float 4.0
         & info [ "noise-margin" ] ~docv:"BITS"
             ~doc:"Forecast noise headroom every phase must keep.")
  in
  let objective =
    Arg.(value & opt string "steady"
         & info [ "objective" ]
             ~doc:"Ranking objective: first | steady | a first-query weight in \
                   [0,1] (alpha*first + (1-alpha)*steady).")
  in
  let keep =
    Arg.(value & opt int 10 & info [ "keep" ] ~doc:"Ranked candidates to report.")
  in
  let preset =
    Arg.(value & opt string "bench-small"
         & info [ "preset" ]
             ~doc:"Parameter set the unit model is calibrated on: toy | \
                   bench-small | bench | secure.")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ] ~doc:"Shorter calibration windows (CI smoke).")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the ranked plan and the preset comparison as JSON lines \
                   to $(docv).")
  in
  let apply =
    Arg.(value & flag
         & info [ "apply" ]
             ~doc:"Realize the winning candidate (build its NTT/CRT tables) and \
                   run one live query on synthetic data of the workload shape; \
                   exit nonzero unless it returns the exact neighbours.")
  in
  let jobs =
    Arg.(value & opt (some int) None & info [ "jobs" ] ~doc:"OCaml domains.")
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Search the (ring degree, chain, plaintext prime) space for the \
             cheapest parameter set a workload can prove safe")
    Term.(const plan_run $ points $ dims $ k_t $ coord_bits $ layout $ path
          $ batch_m $ mask_degree $ mask_coeff_bits $ min_security $ noise_margin
          $ objective $ net_t $ keep $ preset $ quick $ calib_t $ json $ apply
          $ seed_t $ jobs)

(* ------------------------------------------------------------------ *)
(* baseline                                                            *)
(* ------------------------------------------------------------------ *)

let baseline_run data query_s k modulus_bits seed =
  let db = read_db data in
  let q = parse_query query_s in
  let rng = Util.Rng.of_int seed in
  let dep, setup_s =
    Util.Timer.time (fun () -> Sknn_m.deploy ~rng ~modulus_bits ~db ())
  in
  let r, qs = Util.Timer.time (fun () -> Sknn_m.query dep ~query:q ~k) in
  Format.printf "neighbours:@.";
  Array.iter (fun p -> Format.printf "  %a@." Point.pp p) r.Sknn_m.neighbours;
  Format.printf "exact: %b@." (Sknn_m.exact dep ~db ~query:q r);
  Format.printf "setup %a, query %a, C1<->C2 interactions %d@." Util.Timer.pp_duration setup_s
    Util.Timer.pp_duration qs r.Sknn_m.interactions;
  0

let baseline_cmd =
  let modulus =
    Arg.(value & opt int 256 & info [ "modulus-bits" ] ~doc:"Paillier modulus size.")
  in
  Cmd.v
    (Cmd.info "baseline" ~doc:"Run the Yousef et al. Paillier baseline (slow by design)")
    Term.(const baseline_run $ data_t $ query_t $ k_t $ modulus $ seed_t)

(* ------------------------------------------------------------------ *)
(* kmeans                                                              *)
(* ------------------------------------------------------------------ *)

let kmeans_run data k max_iters seed =
  let db = read_db data in
  if k < 1 || k > Array.length db then begin
    Format.eprintf "k out of range@.";
    exit 2
  end;
  let rng = Util.Rng.of_int seed in
  let init = Array.init k (fun i -> db.(i * (Array.length db / k))) in
  let dep = Kmeans.deploy ~rng (Config.fast ()) ~db in
  let r = Kmeans.run ~rng ~max_iters dep ~init in
  Format.printf "converged=%b after %d iterations (%a)@." r.Kmeans.converged
    r.Kmeans.iterations Util.Timer.pp_duration r.Kmeans.seconds;
  Array.iteri
    (fun i c -> Format.printf "  cluster %d (%d points): %a@." (i + 1) r.Kmeans.sizes.(i)
        Point.pp c)
    r.Kmeans.centroids;
  Format.printf "identical to plaintext Lloyd: %b@."
    (Kmeans.matches_plaintext ~db ~init ~max_iters r);
  0

let kmeans_cmd =
  let k = Arg.(value & opt int 3 & info [ "k" ] ~doc:"Cluster count.") in
  let iters = Arg.(value & opt int 25 & info [ "max-iters" ] ~doc:"Iteration cap.") in
  Cmd.v (Cmd.info "kmeans" ~doc:"Secure k-means clustering over an encrypted CSV database")
    Term.(const kmeans_run $ data_t $ k $ iters $ seed_t)

(* ------------------------------------------------------------------ *)
(* apriori                                                             *)
(* ------------------------------------------------------------------ *)

let apriori_run data minsup max_size seed =
  let tx = read_db data in
  let rng = Util.Rng.of_int seed in
  let dep = Apriori.deploy ~rng (Config.standard ()) ~transactions:tx in
  let r = Apriori.mine ~rng ~max_size dep ~minsup in
  Format.printf "%d frequent itemsets (support >= %d) in %a:@."
    (List.length r.Apriori.frequent) minsup Util.Timer.pp_duration r.Apriori.seconds;
  List.iter
    (fun s -> Format.printf "  {%s}@." (String.concat ", " (List.map string_of_int s)))
    r.Apriori.frequent;
  Format.printf "identical to plaintext Apriori: %b@."
    (Apriori.matches_plaintext ~transactions:tx ~minsup ~max_size r);
  0

let apriori_cmd =
  let minsup = Arg.(value & opt int 10 & info [ "minsup" ] ~doc:"Support threshold.") in
  let max_size = Arg.(value & opt int 4 & info [ "max-size" ] ~doc:"Largest itemset.") in
  Cmd.v
    (Cmd.info "apriori" ~doc:"Secure frequent-itemset mining over encrypted 0/1 transactions")
    Term.(const apriori_run $ data_t $ minsup $ max_size $ seed_t)

(* ------------------------------------------------------------------ *)
(* info                                                                *)
(* ------------------------------------------------------------------ *)

let info_run () =
  List.iter
    (fun (name, c) ->
      Format.printf "--- %s ---@.%a@.@." name Config.pp c)
    [ ("per-coordinate (standard)", Config.standard ());
      ("dot-product (fast)", Config.fast ());
      ("secure (128-bit ring)", Config.secure ()) ];
  0

let info_cmd =
  Cmd.v (Cmd.info "info" ~doc:"Show parameter presets and security estimates")
    Term.(const info_run $ const ())

let () =
  let doc = "Secure k-nearest neighbours over encrypted data (EDBT 2018 reproduction)" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "sknn" ~doc)
          [ gen_cmd; query_cmd; cost_cmd; plan_cmd; baseline_cmd; kmeans_cmd;
            apriori_cmd; info_cmd; dump_flight_cmd; report_cmd ]))
