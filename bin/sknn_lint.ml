(* sknn-lint: enforce the secure-kNN codebase invariants at build time.

     sknn_lint [--list-rules] [PATH ...]

   Each PATH is a file or a directory (walked recursively; every
   directory is governed by its own sknn-lint.conf, falling back to the
   built-in base profile).  With no PATH, lints ./lib.  Exit status is
   non-zero when any diagnostic or parse error is produced, so
   `dune build @lint` fails the build on a rule violation. *)

let usage () =
  prerr_endline "usage: sknn_lint [--list-rules] [PATH ...]";
  exit 2

let list_rules () =
  List.iter
    (fun r -> print_endline (Lint_config.rule_name r))
    Lint_config.all_rules

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--help" args || List.mem "-h" args then usage ();
  if List.mem "--list-rules" args then list_rules ()
  else begin
    let paths = match args with [] -> [ "lib" ] | ps -> ps in
    List.iter
      (fun p ->
        if not (Sys.file_exists p) then begin
          Printf.eprintf "sknn_lint: no such path: %s\n" p;
          exit 2
        end)
      paths;
    match Lint_driver.run_paths paths with
    | outcome ->
      Format.printf "%a@?" Lint_driver.pp_outcome outcome;
      if not (Lint_driver.ok outcome) then exit 1
    | exception Lint_config.Bad_config msg ->
      Printf.eprintf "sknn_lint: bad configuration: %s\n" msg;
      exit 2
  end
