(* sknn-lint: enforce the secure-kNN codebase invariants at build time.

     sknn_lint [--list-rules] [--jobs N] [--sarif FILE] [PATH ...]

   Each PATH is a file or a directory (walked recursively; every
   directory is governed by its own sknn-lint.conf, falling back to the
   built-in base profile).  With no PATH, lints ./lib.  Exit status is
   non-zero when any diagnostic or parse error is produced, so
   `dune build @lint` fails the build on a rule violation.

   --jobs N     parse sequentially, walk N files in parallel; the
                report is byte-identical for every N.
   --sarif FILE additionally write the findings as SARIF 2.1.0 (for
                GitHub code-scanning upload).  Written even when there
                are findings, so CI can upload before failing. *)

let usage () =
  prerr_endline "usage: sknn_lint [--list-rules] [--jobs N] [--sarif FILE] [PATH ...]";
  exit 2

let list_rules () =
  List.iter
    (fun r -> print_endline (Lint_config.rule_name r))
    Lint_config.all_rules

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--help" args || List.mem "-h" args then usage ();
  if List.mem "--list-rules" args then list_rules ()
  else begin
    let jobs = ref 1 in
    let sarif_out = ref None in
    let rec parse_args acc = function
      | [] -> List.rev acc
      | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> jobs := j; parse_args acc rest
        | _ -> usage ())
      | [ "--jobs" ] -> usage ()
      | "--sarif" :: f :: rest -> sarif_out := Some f; parse_args acc rest
      | [ "--sarif" ] -> usage ()
      | a :: _ when String.length a > 1 && a.[0] = '-' -> usage ()
      | p :: rest -> parse_args (p :: acc) rest
    in
    let paths = match parse_args [] args with [] -> [ "lib" ] | ps -> ps in
    List.iter
      (fun p ->
        if not (Sys.file_exists p) then begin
          Printf.eprintf "sknn_lint: no such path: %s\n" p;
          exit 2
        end)
      paths;
    match Lint_driver.run_paths ~jobs:!jobs paths with
    | outcome ->
      (match !sarif_out with
       | Some file ->
         let oc = open_out file in
         output_string oc (Lint_driver.sarif outcome);
         output_char oc '\n';
         close_out oc
       | None -> ());
      Format.printf "%a@?" Lint_driver.pp_outcome outcome;
      if not (Lint_driver.ok outcome) then exit 1
    | exception Lint_config.Bad_config msg ->
      Printf.eprintf "sknn_lint: bad configuration: %s\n" msg;
      exit 2
  end
