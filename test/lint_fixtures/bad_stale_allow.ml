(* Fixture: an escape hatch that suppresses nothing — the division it
   once excused is gone, so unused-allow must flag the attribute for
   deletion. *)

let[@sknn.allow "no-division"] doubled x = x * 2

let total xs = List.fold_left ( + ) 0 xs
