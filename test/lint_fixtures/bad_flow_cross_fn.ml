(* Fixture: interprocedural leak — the secret key flows through two
   helpers' parameters into a Printf sink.  The sink expression never
   mentions a tainted name, so the per-file secret-taint rule cannot
   see it; only the phase-2 secret-flow engine connects the path
   main -> reveal -> emit -> printf. *)

let emit x = Printf.printf "b=%d\n" x

let reveal x = emit x

let main sk = reveal sk
