(* Fixture: no-division must flag every operator below. *)

let quotient x = x / 3

let residue x = x mod 7

let half x = x /. 2.0

let wide x = Int64.div x 3L

let wide_rem x = Int64.rem x 3L
