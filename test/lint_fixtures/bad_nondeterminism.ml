(* Fixture: no-ambient-nondeterminism must flag stdlib Random, raw
   wall-clock reads, and (with check-poly-compare) polymorphic
   compare / Hashtbl.hash. *)

let noise () = Random.int 100

let stamp () = Unix.gettimeofday ()

let cpu () = Sys.time ()

let order xs = List.sort compare xs

let bucket x = Hashtbl.hash x
