(* Fixture: into-aliasing must flag the aliased destructive call and
   the arena handle that escapes its binding without a release. *)

let squared_in_place a = Rq.mul_into a a a

let doubled_in_place acc = Rq.add_into acc acc acc

let escaping_scratch n = Util.Arena.acquire n
