(* Fixture: field-mediated leak — one function packs the secret into a
   record field, another sends that field on the transcript.  Only the
   field-sensitive interprocedural pass connects construction site and
   sink. *)

type packet = { tag : int; payload : int }

let pack sk = { tag = 0; payload = sk }

let out tr p = Transcript.send tr ~label:"packet" ~bytes:p.payload

let go tr sk = out tr (pack sk)
