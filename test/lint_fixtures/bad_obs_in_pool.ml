(* Fixture: orchestrator-only-obs must flag the observability calls
   inside the Pool chunk closures. *)

let traced ctx xs =
  Util.Pool.map_local ~jobs:2
    ~make:(fun () -> ())
    ~merge:(fun a _ -> a)
    ~f:(fun x ->
      Trace.observe ctx "chunk";
      x + 1)
    xs

let metred m xs = Pool.map (fun x -> Metrics.incr m; x) xs
