(* Fixture: the same shapes as the bad_*.ml files, each silenced by one
   of the three allow granularities — floating file attribute, binding
   attribute, expression attribute — plus the allow-label surface.
   This file must produce zero diagnostics. *)

[@@@sknn.allow "into-aliasing"]

let squared_in_place a = Rq.mul_into a a a

let[@sknn.allow "no-division"] residue x = x mod 7

let half x = (x / 2) [@sknn.allow "no-division"]

let[@sknn.allow "no-ambient-nondeterminism"] noise () = Random.int 100

let audited obs n = Obs.audit obs ~label:"n" n

let[@sknn.allow "secret-taint"] debug_secret sk = Printf.printf "%d\n" sk

let setup_encrypt rng pk pt = (Bgv.encrypt rng pk pt) [@sknn.allow "ledger-at-op-site"]
