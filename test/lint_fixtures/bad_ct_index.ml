(* Fixture: secret-indexed table load and a variable-time op on a
   key-derived value inside the constant-time TCB (ct-scope
   Bad_ct_index).  Cache-line addressing and data-dependent latency
   both leak the index/operand. *)

let probe table sk = table.(sk land 7)

let residue sk = Z.erem (Z.of_int sk) (Z.of_int 97)
