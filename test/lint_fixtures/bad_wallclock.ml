(* Fixture: with check-wall-clock, even the sanctioned Util.Timer
   wrapper counts as ambient nondeterminism — a virtual-clock
   directory must derive every timestamp from the transcript and
   profile, never from the machine. *)

let t0 () = Util.Timer.now ()

let measured f = Util.Timer.time f

let ticks () = Timer.counter ()
