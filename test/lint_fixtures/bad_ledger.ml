(* Fixture: ledger-at-op-site must flag every qualified ciphertext op
   below — none threads a ~counters ledger, so the op-level cost ledger
   (and the Cost_model cross-check) would silently under-count. *)

let masked ct pt = Bgv.mul_plain ct pt

let total a b = Bgv.add a b

let opened sk ct = Bgv.decrypt sk ct

let dropped ct lvl = Bgv.truncate_to_level ct lvl

let packed params slots = Plaintext.of_slots params slots

(* Internal-style unqualified calls have no module head and are out of
   scope: the implementation threads ?counters itself. *)
let internal ct pt = mul_plain ct pt

(* A call that does thread the ledger is clean. *)
let counted counters a b = Bgv.add ~counters a b

(* Forwarding an optional ledger is also threading it. *)
let forwarded ?counters a b = Bgv.sub ?counters a b
