(* Fixture: secret-taint must flag each sink below — a configured root
   reaching Printf, a Transcript send, and propagated taint through a
   let binding into an audit sink. *)

let print_secret sk = Printf.printf "sk head %d\n" sk

let ship tr perm =
  Transcript.send tr ~label:"permutation order" ~bytes:(List.length perm)

let propagated obs masked_distances =
  let digest = List.fold_left ( + ) 0 masked_distances in
  Obs.audit obs ~label:"digest" digest
