(* Fixture: secret-dependent control flow inside the constant-time TCB
   (this directory's conf puts Bad_ct_branch in ct-scope).  Branching
   on key material leaks it through the timing side channel. *)

let select sk a b = if sk land 1 = 1 then a else b

let classify t = match t.s_coeffs with [] -> 0 | _ :: _ -> 1
