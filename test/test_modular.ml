(* Tests for word-sized modular arithmetic, primality/factoring and the
   negacyclic NTTs. *)

module Z = Zint
module Rng = Util.Rng

(* Reference mulmod via exact bignums. *)
let ref_mulmod m a b =
  let open Z in
  to_int_exn (erem (mul (of_int64 a) (of_int64 b)) (of_int64 m)) |> Int64.of_int

let test_mod64_basic () =
  Alcotest.(check int64) "add" 1L (Mod64.add 7L 3L 5L);
  Alcotest.(check int64) "sub wrap" 5L (Mod64.sub 7L 3L 5L);
  Alcotest.(check int64) "neg" 4L (Mod64.neg 7L 3L);
  Alcotest.(check int64) "neg zero" 0L (Mod64.neg 7L 0L);
  Alcotest.(check int64) "mul" 6L (Mod64.mul 7L 4L 5L);
  Alcotest.(check int64) "pow" 2L (Mod64.pow 7L 3L 2L);
  Alcotest.(check int64) "pow 0" 1L (Mod64.pow 7L 3L 0L);
  Alcotest.(check int64) "inv" 5L (Mod64.inv 7L 3L);
  Alcotest.(check int64) "reduce neg" 4L (Mod64.reduce 7L (-3L));
  Alcotest.(check int64) "centered small" 3L (Mod64.centered 7L 3L);
  Alcotest.(check int64) "centered big" (-3L) (Mod64.centered 7L 4L)

let test_mod64_mul_against_reference () =
  let rng = Rng.of_int 23 in
  (* Exercise both the float fast path (m < 2^50) and the ladder. *)
  let moduli =
    [ 7L; 65537L; 1099511627689L (* paper's p, ~2^40 *);
      1125899906842597L (* ~2^50 *); 2305843009213693951L (* 2^61-1 *) ]
  in
  List.iter
    (fun m ->
      for _ = 1 to 200 do
        let a = Rng.int64_below rng m and b = Rng.int64_below rng m in
        Alcotest.(check int64)
          (Printf.sprintf "mulmod m=%Ld" m)
          (ref_mulmod m a b) (Mod64.mul m a b)
      done)
    moduli

let test_mod64_inv_random () =
  let rng = Rng.of_int 29 in
  let m = 1099511627689L in
  for _ = 1 to 100 do
    let a = Int64.succ (Rng.int64_below rng (Int64.pred m)) in
    let inv = Mod64.inv m a in
    Alcotest.(check int64) "a * inv = 1" 1L (Mod64.mul m a inv)
  done

let test_is_prime_known () =
  let primes = [ 2L; 3L; 5L; 7L; 65537L; 1099511627689L; 2305843009213693951L;
                 1073479681L; 998244353L ] in
  let composites = [ 0L; 1L; 4L; 9L; 65541L; 1099511627691L;
                     3215031751L (* strong pseudoprime to bases 2,3,5,7 *);
                     341550071728321L ] in
  List.iter (fun p -> Alcotest.(check bool) (Int64.to_string p) true (Prime64.is_prime p)) primes;
  List.iter (fun c -> Alcotest.(check bool) (Int64.to_string c) false (Prime64.is_prime c)) composites

let test_is_prime_vs_trial_division () =
  let trial n =
    let n = Int64.to_int n in
    if n < 2 then false
    else begin
      let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
      go 2
    end
  in
  for n = 0 to 2000 do
    Alcotest.(check bool) (string_of_int n) (trial (Int64.of_int n))
      (Prime64.is_prime (Int64.of_int n))
  done

let test_factor () =
  let check n expected =
    Alcotest.(check (list (pair int64 int))) (Int64.to_string n) expected (Prime64.factor n)
  in
  check 1L [];
  check 2L [ (2L, 1) ];
  check 12L [ (2L, 2); (3L, 1) ];
  check 65537L [ (65537L, 1) ];
  check 1024L [ (2L, 10) ];
  check 1099511627688L [ (2L, 3); (3L, 2); (1487L, 1); (10269667L, 1) ]

let test_factor_reconstructs () =
  let rng = Rng.of_int 31 in
  for _ = 1 to 50 do
    let n = Int64.succ (Rng.int64_below rng 1000000000000L) in
    let factors = Prime64.factor n in
    let product =
      List.fold_left
        (fun acc (p, k) ->
          Alcotest.(check bool) (Printf.sprintf "%Ld prime" p) true (Prime64.is_prime p);
          let rec pow acc i = if i = 0 then acc else pow (Int64.mul acc p) (i - 1) in
          pow acc k)
        1L factors
    in
    Alcotest.(check int64) (Printf.sprintf "factor %Ld" n) n product
  done

let test_primitive_root () =
  List.iter
    (fun p ->
      let g = Prime64.primitive_root p in
      (* g^(p-1) = 1 and g^((p-1)/q) <> 1 for each prime factor q. *)
      Alcotest.(check int64) "fermat" 1L (Mod64.pow p g (Int64.pred p));
      List.iter
        (fun (q, _) ->
          Alcotest.(check bool) "strict order" true
            (not (Int64.equal 1L (Mod64.pow p g (Int64.div (Int64.pred p) q)))))
        (Prime64.factor (Int64.pred p)))
    [ 3L; 5L; 7L; 65537L; 998244353L; 1099511627689L ]

let test_root_of_unity () =
  let p = 998244353L in
  List.iter
    (fun order ->
      let w = Prime64.root_of_unity ~p ~order in
      Alcotest.(check int64) "w^order = 1" 1L (Mod64.pow p w order);
      Alcotest.(check bool) "w^(order/2) <> 1" true
        (not (Int64.equal 1L (Mod64.pow p w (Int64.div order 2L)))))
    [ 2L; 4L; 1024L; 8192L ];
  Alcotest.check_raises "bad order"
    (Failure "Prime64.root_of_unity: order does not divide p-1")
    (fun () -> ignore (Prime64.root_of_unity ~p:7L ~order:5L))

let test_find_ntt_prime () =
  let n = 1024 in
  let p = Prime64.find_ntt_prime ~congruent_mod:(Int64.of_int (2 * n)) ~bits:30 () in
  Alcotest.(check bool) "prime" true (Prime64.is_prime p);
  Alcotest.(check int64) "congruence" 1L (Int64.rem p (Int64.of_int (2 * n)) |> fun r -> r);
  Alcotest.(check bool) "< 2^30" true (Int64.compare p (Int64.shift_left 1L 30) < 0);
  let ps = Prime64.ntt_primes ~congruent_mod:(Int64.of_int (2 * n)) ~bits:30 ~count:5 in
  Alcotest.(check int) "count" 5 (List.length ps);
  let rec strictly_decreasing = function
    | a :: (b :: _ as rest) -> Int64.compare a b > 0 && strictly_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "descending distinct" true (strictly_decreasing ps);
  List.iter
    (fun p ->
      Alcotest.(check bool) "each prime" true (Prime64.is_prime p);
      Alcotest.(check int64) "each = 1 mod 2n" 1L (Int64.rem p (Int64.of_int (2 * n))))
    ps

(* ------------------------------------------------------------------ *)
(* NTT                                                                 *)
(* ------------------------------------------------------------------ *)

(* Schoolbook negacyclic product in Z_p[x]/(x^n + 1). *)
let negacyclic_ref p a b =
  let n = Array.length a in
  let r = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let prod = a.(i) * b.(j) mod p in
      let k = i + j in
      if k < n then r.(k) <- (r.(k) + prod) mod p
      else begin
        let k = k - n in
        r.(k) <- ((r.(k) - prod) mod p + p) mod p
      end
    done
  done;
  r

let ntt_sizes = [ 4; 8; 64; 256; 1024 ]

let test_ntt_roundtrip () =
  let rng = Rng.of_int 37 in
  List.iter
    (fun n ->
      let p = Int64.to_int (Prime64.find_ntt_prime ~congruent_mod:(Int64.of_int (2 * n)) ~bits:30 ()) in
      let t = Ntt.make_table ~p ~n in
      Alcotest.(check int) "prime accessor" p (Ntt.prime t);
      Alcotest.(check int) "degree accessor" n (Ntt.degree t);
      let a = Array.init n (fun _ -> Rng.int_below rng p) in
      let c = Array.copy a in
      Ntt.forward t c;
      Ntt.inverse t c;
      Alcotest.(check (array int)) (Printf.sprintf "roundtrip n=%d" n) a c)
    ntt_sizes

let test_ntt_convolution () =
  let rng = Rng.of_int 41 in
  List.iter
    (fun n ->
      let p = Int64.to_int (Prime64.find_ntt_prime ~congruent_mod:(Int64.of_int (2 * n)) ~bits:28 ()) in
      let t = Ntt.make_table ~p ~n in
      let a = Array.init n (fun _ -> Rng.int_below rng p) in
      let b = Array.init n (fun _ -> Rng.int_below rng p) in
      let expected = negacyclic_ref p a b in
      let got = Ntt.negacyclic_mul t a b in
      Alcotest.(check (array int)) (Printf.sprintf "negacyclic n=%d" n) expected got)
    [ 4; 8; 64; 128 ]

let test_ntt_linearity () =
  let rng = Rng.of_int 43 in
  let n = 256 in
  let p = Int64.to_int (Prime64.find_ntt_prime ~congruent_mod:(Int64.of_int (2 * n)) ~bits:30 ()) in
  let t = Ntt.make_table ~p ~n in
  let a = Array.init n (fun _ -> Rng.int_below rng p) in
  let b = Array.init n (fun _ -> Rng.int_below rng p) in
  let sum = Array.init n (fun i -> (a.(i) + b.(i)) mod p) in
  let fa = Array.copy a and fb = Array.copy b and fs = Array.copy sum in
  Ntt.forward t fa;
  Ntt.forward t fb;
  Ntt.forward t fs;
  let fsum = Array.init n (fun i -> (fa.(i) + fb.(i)) mod p) in
  Alcotest.(check (array int)) "NTT(a+b) = NTT(a)+NTT(b)" fsum fs

let test_ntt_pointwise_acc () =
  let n = 8 in
  let p = Int64.to_int (Prime64.find_ntt_prime ~congruent_mod:(Int64.of_int (2 * n)) ~bits:20 ()) in
  let t = Ntt.make_table ~p ~n in
  let a = Array.init n (fun i -> i + 1) in
  let b = Array.init n (fun i -> (2 * i) + 1) in
  let acc = Array.make n 5 in
  Ntt.pointwise_mul_acc t acc a b;
  Array.iteri
    (fun i v -> Alcotest.(check int) "acc" ((5 + ((i + 1) * ((2 * i) + 1))) mod p) v)
    acc

let test_ntt_bad_args () =
  Alcotest.check_raises "n not pow2" (Invalid_argument "Ntt.make_table: n not a power of two")
    (fun () -> ignore (Ntt.make_table ~p:97 ~n:3));
  Alcotest.check_raises "bad congruence" (Invalid_argument "Ntt.make_table: p <> 1 mod 2n")
    (fun () -> ignore (Ntt.make_table ~p:31 ~n:8));
  let t = Ntt.make_table ~p:97 ~n:8 in
  Alcotest.check_raises "wrong length" (Invalid_argument "Ntt.forward: wrong length")
    (fun () -> Ntt.forward t [| 1; 2; 3 |])

let test_ntt64_roundtrip () =
  let rng = Rng.of_int 47 in
  let n = 512 in
  (* A ~2^40 batching prime, as the plaintext side uses. *)
  let p = Prime64.find_ntt_prime ~congruent_mod:(Int64.of_int (2 * n)) ~bits:40 () in
  let t = Ntt64.make_table ~p ~n in
  Alcotest.(check int64) "prime accessor" p (Ntt64.prime t);
  Alcotest.(check int) "degree accessor" n (Ntt64.degree t);
  let a = Array.init n (fun _ -> Rng.int64_below rng p) in
  let c = Array.copy a in
  Ntt64.forward t c;
  Ntt64.inverse t c;
  Alcotest.(check (array int64)) "roundtrip" a c

let test_ntt64_matches_ntt () =
  (* On a shared small prime the two transforms must agree exactly. *)
  let rng = Rng.of_int 53 in
  let n = 64 in
  let p = Prime64.find_ntt_prime ~congruent_mod:(Int64.of_int (2 * n)) ~bits:29 () in
  let t32 = Ntt.make_table ~p:(Int64.to_int p) ~n in
  let t64 = Ntt64.make_table ~p ~n in
  let a = Array.init n (fun _ -> Rng.int_below rng (Int64.to_int p)) in
  let c32 = Array.copy a in
  let c64 = Array.map Int64.of_int a in
  Ntt.forward t32 c32;
  Ntt64.forward t64 c64;
  Alcotest.(check (array int64)) "same forward" (Array.map Int64.of_int c32) c64

(* ------------------------------------------------------------------ *)
(* Division-free kernels: Shoup and Barrett                            *)
(* ------------------------------------------------------------------ *)

(* Every distinct prime the parameter layer actually deploys, so the
   kernels are tested against the exact moduli the protocol runs on. *)
let params_chain_primes =
  lazy
    (List.concat_map
       (fun (p : Params.t) -> Array.to_list p.Params.moduli)
       [ Params.toy (); Params.bench_small (); Params.bench (); Params.secure () ]
     |> List.sort_uniq compare)

let edge_residues p = [ 0; 1; 2; p / 2; p - 2; p - 1 ]

let test_shoup_vs_naive_chain_primes () =
  let rng = Rng.of_int 59 in
  List.iter
    (fun p ->
      let check w x =
        let s = Shoup.of_int ~p w in
        Alcotest.(check int)
          (Printf.sprintf "shoup p=%d w=%d x=%d" p w x)
          (w * x mod p) (Shoup.mul s ~p x);
        let v = Shoup.mul_lazy s ~p x in
        if not (v >= 0 && v < 2 * p && v mod p = w * x mod p) then
          Alcotest.failf "mul_lazy out of [0,2p): p=%d w=%d x=%d -> %d" p w x v
      in
      let edges = edge_residues p in
      List.iter (fun w -> List.iter (check w) edges) edges;
      for _ = 1 to 100 do
        check (Rng.int_below rng p) (Rng.int_below rng p)
      done)
    (Lazy.force params_chain_primes)

let test_barrett_vs_naive_chain_primes () =
  let rng = Rng.of_int 61 in
  List.iter
    (fun p ->
      let br = Barrett.create ~p in
      let check m =
        Alcotest.(check int) (Printf.sprintf "reduce p=%d m=%d" p m) (m mod p)
          (Barrett.reduce br m)
      in
      (* Double-width edges up to (p-1)^2 + p, the largest value the
         ring layer's multiply-accumulate can feed in. *)
      List.iter check
        [ 0; 1; p - 1; p; p + 1; (2 * p) - 1; 2 * p;
          (p - 1) * (p - 1); ((p - 1) * (p - 1)) + p ];
      for _ = 1 to 100 do
        let x = Rng.int_below rng p and y = Rng.int_below rng p in
        check (x * y);
        Alcotest.(check int) "barrett mul" (x * y mod p) (Barrett.mul br x y)
      done)
    (Lazy.force params_chain_primes)

let test_barrett_fallback_wide () =
  (* Moduli >= 2^30 take the hardware-division fallback; results must
     stay exact there too. *)
  let p = 2147483647 (* 2^31 - 1 *) in
  let br = Barrett.create ~p in
  Alcotest.(check bool) "fallback flagged" false br.Barrett.fast;
  let rng = Rng.of_int 67 in
  for _ = 1 to 100 do
    let x = Rng.int_below rng p and y = Rng.int_below rng p in
    Alcotest.(check int) "fallback mul" (x * y mod p) (Barrett.mul br x y)
  done

let test_ntt_roundtrip_chain_primes () =
  (* inverse . forward = id at the deployed ring degrees, for every
     prime of every parameter preset. *)
  let rng = Rng.of_int 71 in
  List.iter
    (fun (params : Params.t) ->
      let n = params.Params.n in
      Array.iter
        (fun p ->
          let t = Ntt.make_table ~p ~n in
          let a = Array.init n (fun _ -> Rng.int_below rng p) in
          let c = Array.copy a in
          Ntt.forward t c;
          Ntt.inverse t c;
          Alcotest.(check (array int))
            (Printf.sprintf "%s n=%d p=%d" params.Params.name n p)
            a c)
        params.Params.moduli)
    [ Params.toy (); Params.bench_small (); Params.bench (); Params.secure () ]

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let arb_residue m =
  QCheck.make
    ~print:Int64.to_string
    QCheck.Gen.(
      let* seed = int_range 0 max_int in
      return (Rng.int64_below (Rng.of_int seed) m))

let prop_mulmod m name =
  QCheck.Test.make ~count:300 ~name
    (QCheck.pair (arb_residue m) (arb_residue m))
    (fun (a, b) -> Int64.equal (Mod64.mul m a b) (ref_mulmod m a b))

let prop_pow_homomorphic =
  let m = 1099511627689L in
  QCheck.Test.make ~count:100 ~name:"pow: b^(e1+e2) = b^e1 * b^e2"
    (QCheck.triple (arb_residue m) QCheck.(int_range 0 1000) QCheck.(int_range 0 1000))
    (fun (b, e1, e2) ->
      Int64.equal
        (Mod64.pow m b (Int64.of_int (e1 + e2)))
        (Mod64.mul m (Mod64.pow m b (Int64.of_int e1)) (Mod64.pow m b (Int64.of_int e2))))

let prop_shoup_barrett_vs_naive =
  QCheck.Test.make ~count:300 ~name:"shoup & barrett = naive mod on chain primes"
    (QCheck.triple
       QCheck.(int_range 0 10000) QCheck.(int_range 0 max_int) QCheck.(int_range 0 max_int))
    (fun (pi, wi, xi) ->
      let primes = Lazy.force params_chain_primes in
      let p = List.nth primes (pi mod List.length primes) in
      let w = wi mod p and x = xi mod p in
      Shoup.mul (Shoup.of_int ~p w) ~p x = w * x mod p
      && Barrett.mul (Barrett.create ~p) w x = w * x mod p)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_mulmod 1099511627689L "mulmod vs zint (fast path, 2^40)";
      prop_mulmod 2305843009213693951L "mulmod vs zint (ladder, 2^61)";
      prop_pow_homomorphic;
      prop_shoup_barrett_vs_naive ]

let () =
  Alcotest.run "modular"
    [ ("mod64",
       [ Alcotest.test_case "basics" `Quick test_mod64_basic;
         Alcotest.test_case "mul vs reference" `Quick test_mod64_mul_against_reference;
         Alcotest.test_case "inv random" `Quick test_mod64_inv_random ]);
      ("prime64",
       [ Alcotest.test_case "known primes" `Quick test_is_prime_known;
         Alcotest.test_case "vs trial division" `Quick test_is_prime_vs_trial_division;
         Alcotest.test_case "factor small" `Quick test_factor;
         Alcotest.test_case "factor reconstructs" `Quick test_factor_reconstructs;
         Alcotest.test_case "primitive root" `Quick test_primitive_root;
         Alcotest.test_case "root of unity" `Quick test_root_of_unity;
         Alcotest.test_case "ntt prime search" `Quick test_find_ntt_prime ]);
      ("ntt",
       [ Alcotest.test_case "roundtrip" `Quick test_ntt_roundtrip;
         Alcotest.test_case "convolution vs schoolbook" `Quick test_ntt_convolution;
         Alcotest.test_case "linearity" `Quick test_ntt_linearity;
         Alcotest.test_case "pointwise acc" `Quick test_ntt_pointwise_acc;
         Alcotest.test_case "bad arguments" `Quick test_ntt_bad_args ]);
      ("ntt64",
       [ Alcotest.test_case "roundtrip 2^40 prime" `Quick test_ntt64_roundtrip;
         Alcotest.test_case "agrees with int NTT" `Quick test_ntt64_matches_ntt ]);
      ("kernels",
       [ Alcotest.test_case "shoup vs naive (chain primes)" `Quick
           test_shoup_vs_naive_chain_primes;
         Alcotest.test_case "barrett vs naive (chain primes)" `Quick
           test_barrett_vs_naive_chain_primes;
         Alcotest.test_case "barrett wide fallback" `Quick test_barrett_fallback_wide;
         Alcotest.test_case "ntt roundtrip (param chains)" `Quick
           test_ntt_roundtrip_chain_primes ]);
      ("properties", qsuite) ]
