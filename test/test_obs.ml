(* Tests for the observability layer (Sknn_obs): span trees, counter
   deltas, sink well-formedness, the metrics registry, the leakage-audit
   channel — and the PR 1 determinism invariant extended to tracing:
   the non-chunk span tree is bit-identical for every job count. *)

module Rng = Util.Rng
module Counters = Util.Counters
module Trace = Sknn_obs.Trace
module Metrics = Sknn_obs.Metrics
module Audit = Sknn_obs.Audit
module Ctx = Sknn_obs.Ctx
module Flight = Sknn_obs.Flight
module NM = Sknn_obs.Noise_model
module Report = Sknn_obs.Report

(* ------------------------------------------------------------------ *)
(* Trace core                                                          *)
(* ------------------------------------------------------------------ *)

let test_trace_disabled_passthrough () =
  let t = Trace.disabled in
  Alcotest.(check bool) "disabled" false (Trace.is_enabled t);
  let x = Trace.with_span t "phase" (fun () -> 41 + 1) in
  Alcotest.(check int) "value passes through" 42 x;
  Trace.add_complete t ~name:"chunk" ~start:0.0 ~dur:1.0 ();
  Alcotest.(check int) "no spans recorded" 0 (List.length (Trace.roots t))

let test_trace_nesting () =
  let t = Trace.create () in
  let v =
    Trace.with_span t ~kind:Trace.Phase "outer" (fun () ->
        let a = Trace.with_span t "inner-1" (fun () -> 1) in
        let b = Trace.with_span t "inner-2" (fun () -> 2) in
        Trace.add_complete t ~name:"leaf" ~args:[ ("worker", "0") ]
          ~start:(Util.Timer.counter ()) ~dur:0.001 ();
        a + b)
  in
  Alcotest.(check int) "value" 3 v;
  match Trace.roots t with
  | [ root ] ->
    Alcotest.(check string) "root name" "outer" root.Trace.name;
    Alcotest.(check string) "root kind" "phase" (Trace.kind_name root.Trace.kind);
    Alcotest.(check (list string)) "children in completion order"
      [ "inner-1"; "inner-2"; "leaf" ]
      (List.map (fun s -> s.Trace.name) root.Trace.children);
    Alcotest.(check bool) "durations non-negative" true
      (root.Trace.dur_s >= 0.0
       && List.for_all (fun s -> s.Trace.dur_s >= 0.0) root.Trace.children)
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_trace_counter_deltas () =
  let t = Trace.create () in
  let c = Counters.create () in
  Counters.record c Counters.Encrypt; (* pre-span noise, must not leak in *)
  Trace.with_span t ~counters:[ ("party", c) ] "work" (fun () ->
      Counters.record c Counters.Hom_mul;
      Counters.record c (Counters.Bytes_sent 10));
  Trace.with_span t ~counters:[ ("party", c) ] "idle" (fun () -> ());
  match Trace.roots t with
  | [ work; idle ] ->
    (match work.Trace.deltas with
     | [ ("party", d) ] ->
       Alcotest.(check int) "delta muls" 1 (Counters.hom_muls d);
       Alcotest.(check int) "delta bytes" 10 (Counters.bytes_sent d);
       Alcotest.(check int) "pre-span encrypt excluded" 0 (Counters.encryptions d)
     | _ -> Alcotest.fail "expected one delta on work span");
    Alcotest.(check int) "zero delta omitted" 0 (List.length idle.Trace.deltas)
  | _ -> Alcotest.fail "expected two roots"

let test_trace_span_survives_raise () =
  let t = Trace.create () in
  (try
     Trace.with_span t "boom" (fun () -> failwith "expected")
   with Failure _ -> ());
  Alcotest.(check (list string)) "span recorded despite raise" [ "boom" ]
    (List.map (fun s -> s.Trace.name) (Trace.roots t))

(* ------------------------------------------------------------------ *)
(* Sinks: a tiny recursive-descent JSON well-formedness checker         *)
(* ------------------------------------------------------------------ *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

exception Bad_json of string

let check_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else raise (Bad_json (Printf.sprintf "expected %c at %d" c !pos))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('t' | 'f' | 'n') -> keyword ()
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> raise (Bad_json (Printf.sprintf "unexpected input at %d" !pos))
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else
      let rec members () =
        skip_ws (); string_lit (); skip_ws (); expect ':'; value (); skip_ws ();
        match peek () with
        | Some ',' -> advance (); members ()
        | Some '}' -> advance ()
        | _ -> raise (Bad_json (Printf.sprintf "bad object at %d" !pos))
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else
      let rec elements () =
        value (); skip_ws ();
        match peek () with
        | Some ',' -> advance (); elements ()
        | Some ']' -> advance ()
        | _ -> raise (Bad_json (Printf.sprintf "bad array at %d" !pos))
      in
      elements ()
  and string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | Some '"' -> advance ()
      | Some '\\' -> advance (); advance (); go ()
      | Some _ -> advance (); go ()
      | None -> raise (Bad_json "unterminated string")
    in
    go ()
  and keyword () =
    let ok kw = String.length s - !pos >= String.length kw
                && String.sub s !pos (String.length kw) = kw in
    if ok "true" then pos := !pos + 4
    else if ok "false" then pos := !pos + 5
    else if ok "null" then pos := !pos + 4
    else raise (Bad_json (Printf.sprintf "bad keyword at %d" !pos))
  and number () =
    if peek () = Some '-' then advance ();
    let digits () =
      let had = ref false in
      while (match peek () with Some ('0' .. '9') -> true | _ -> false) do
        had := true; advance ()
      done;
      if not !had then raise (Bad_json (Printf.sprintf "bad number at %d" !pos))
    in
    digits ();
    if peek () = Some '.' then (advance (); digits ());
    (match peek () with
     | Some ('e' | 'E') ->
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       digits ()
     | _ -> ())
  in
  value ();
  skip_ws ();
  if !pos <> n then raise (Bad_json (Printf.sprintf "trailing input at %d" !pos))

let assert_valid_json name s =
  match check_json s with
  | () -> ()
  | exception Bad_json msg -> Alcotest.failf "%s: invalid JSON (%s)" name msg

let traced_run ~jobs =
  let db = Synthetic.uniform (Rng.of_int 77) ~n:18 ~d:3 ~max_value:100 in
  let q = [| 10; 20; 30 |] in
  let trace = Trace.create () in
  let audit = Audit.create () in
  let flight = Flight.create () in
  let obs = Ctx.create ~trace ~audit ~flight () in
  let dep = Protocol.deploy ~obs ~rng:(Rng.of_int 999) ~jobs (Config.standard ()) ~db in
  let r = Protocol.query ~obs ~rng:(Rng.of_int 1000) dep ~query:q ~k:3 in
  (trace, audit, flight, r)

let with_temp_file f =
  let path = Filename.temp_file "sknn_obs_test" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () ->
      f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      really_input_string ic (in_channel_length ic))

let test_sink_chrome () =
  let trace, _, _, _ = traced_run ~jobs:2 in
  with_temp_file (fun path ->
      let oc = open_out path in
      Trace.write trace Trace.Chrome oc;
      close_out oc;
      let s = read_file path in
      assert_valid_json "chrome trace" s;
      Alcotest.(check bool) "has traceEvents" true
        (contains ~sub:"\"traceEvents\"" s))

let test_sink_jsonl () =
  let trace, _, _, _ = traced_run ~jobs:2 in
  with_temp_file (fun path ->
      let oc = open_out path in
      Trace.write trace Trace.Jsonl oc;
      close_out oc;
      let lines =
        String.split_on_char '\n' (read_file path)
        |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check bool) "several lines" true (List.length lines > 5);
      List.iteri
        (fun i line -> assert_valid_json (Printf.sprintf "jsonl line %d" i) line)
        lines)

let test_sink_pretty_and_format_names () =
  let trace, _, _, _ = traced_run ~jobs:1 in
  let s = Format.asprintf "%a" Trace.pp_tree trace in
  Alcotest.(check bool) "mentions a phase" true
    (contains ~sub:"compute-distances" s);
  List.iter
    (fun (name, ok) ->
      Alcotest.(check bool) name ok
        (match Trace.format_of_string name with Ok _ -> true | Error _ -> false))
    [ ("chrome", true); ("jsonl", true); ("pretty", true); ("perfetto", true);
      ("tree", true); ("bogus", false) ]

(* ------------------------------------------------------------------ *)
(* Determinism across job counts                                       *)
(* ------------------------------------------------------------------ *)

(* Render the span tree with Chunk spans removed and timings zeroed:
   names, kinds, nesting, args and counter deltas — everything that must
   be bit-identical across job counts. *)
let shape trace =
  let buf = Buffer.create 1024 in
  let rec go depth (s : Trace.span) =
    if s.Trace.kind <> Trace.Chunk then begin
      Buffer.add_string buf
        (Printf.sprintf "%*s%s kind=%s args=[%s] deltas=[%s]\n" (2 * depth) ""
           s.Trace.name
           (Trace.kind_name s.Trace.kind)
           (String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) s.Trace.args))
           (String.concat ";"
              (List.map
                 (fun (owner, d) ->
                   owner ^ ":"
                   ^ String.concat ","
                       (List.filter_map
                          (fun (k, v) ->
                            if v = 0 then None else Some (Printf.sprintf "%s=%d" k v))
                          (Counters.to_list d)))
                 s.Trace.deltas)));
      List.iter (go (depth + 1)) s.Trace.children
    end
  in
  List.iter (go 0) (Trace.roots trace);
  Buffer.contents buf

let audit_s a =
  Format.asprintf "%a" Audit.pp a

let test_span_tree_jobs_determinism () =
  let t1, a1, _, r1 = traced_run ~jobs:1 in
  let t2, a2, _, r2 = traced_run ~jobs:2 in
  let t4, a4, _, r4 = traced_run ~jobs:4 in
  let s1 = shape t1 and s2 = shape t2 and s4 = shape t4 in
  Alcotest.(check string) "span tree: jobs 1 = jobs 2" s1 s2;
  Alcotest.(check string) "span tree: jobs 1 = jobs 4" s1 s4;
  Alcotest.(check bool) "tree is non-trivial" true (String.length s1 > 100);
  Alcotest.(check string) "audit: jobs 1 = jobs 2" (audit_s a1) (audit_s a2);
  Alcotest.(check string) "audit: jobs 1 = jobs 4" (audit_s a1) (audit_s a4);
  Alcotest.(check bool) "results identical" true
    (r1.Protocol.neighbours = r2.Protocol.neighbours
     && r1.Protocol.neighbours = r4.Protocol.neighbours);
  let cs c = Format.asprintf "%a" Counters.pp c in
  Alcotest.(check string) "counters identical (A)" (cs r1.Protocol.counters_a)
    (cs r4.Protocol.counters_a);
  Alcotest.(check string) "counters identical (B)" (cs r1.Protocol.counters_b)
    (cs r4.Protocol.counters_b);
  Alcotest.(check string) "counters identical (client)"
    (cs r1.Protocol.counters_client) (cs r4.Protocol.counters_client)

let test_chunk_spans_partition () =
  (* At jobs=2 the "distance-batches" stage must carry exactly 2 chunk
     spans partitioning [0, n). *)
  let t2, _, _, _ = traced_run ~jobs:2 in
  let chunks = ref [] in
  let rec collect under (s : Trace.span) =
    let here = under || s.Trace.name = "distance-batches" in
    if here && s.Trace.kind = Trace.Chunk then chunks := s :: !chunks;
    List.iter (collect here) s.Trace.children
  in
  List.iter (collect false) (Trace.roots t2);
  let names = List.rev_map (fun s -> s.Trace.name) !chunks in
  Alcotest.(check (list string)) "two chunks in worker order"
    [ "distances[0,9)"; "distances[9,18)" ]
    names

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_counter_gauge () =
  let m = Metrics.create () in
  let c = Metrics.counter m "ops" in
  Metrics.inc c;
  Metrics.inc ~by:4 c;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  Alcotest.(check int) "re-registration returns same instrument" 5
    (Metrics.counter_value (Metrics.counter m "ops"));
  let g = Metrics.gauge m "util" in
  Alcotest.(check bool) "gauge starts unset" true (Metrics.gauge_value g = None);
  Metrics.set g 0.75;
  Alcotest.(check (option (float 0.0))) "gauge set" (Some 0.75) (Metrics.gauge_value g)

let test_metrics_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 1.0; 10.0; 100.0 |] m "lat" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 5.0; 100.0; 1000.0 ];
  Alcotest.(check int) "count" 5 (Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 1106.5 (Metrics.hist_sum h);
  (* le(1)=2 (0.5 and the boundary 1.0), le(10)=1, le(100)=1, overflow=1 *)
  Alcotest.(check (array int)) "bucket counts" [| 2; 1; 1; 1 |] (Metrics.hist_counts h);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics.counter: \"lat\" registered with another kind")
    (fun () -> ignore (Metrics.counter m "lat"));
  Alcotest.(check bool) "non-increasing buckets rejected" true
    (try ignore (Metrics.histogram ~buckets:[| 2.0; 2.0 |] m "bad"); false
     with Invalid_argument _ -> true)

let test_metrics_names_sorted () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "zeta");
  ignore (Metrics.gauge m "alpha");
  ignore (Metrics.histogram m "mid");
  Alcotest.(check (list string)) "sorted" [ "alpha"; "mid"; "zeta" ] (Metrics.names m)

(* ------------------------------------------------------------------ *)
(* Audit                                                               *)
(* ------------------------------------------------------------------ *)

let test_audit_basics () =
  let a = Audit.create () in
  Audit.observe a ~party:"party-b" ~phase:"p" ~label:"k" (Audit.Int 3);
  Audit.observe a ~party:"party-b" ~phase:"p" ~label:"ms" (Audit.Int64s [| 5L; 1L |]);
  Audit.observe a ~party:"party-a" ~phase:"q" ~label:"bytes" (Audit.Int 100);
  Audit.observe a ~party:"party-b" ~phase:"p2" ~label:"k" (Audit.Int 7);
  Alcotest.(check int) "entry count" 4 (List.length (Audit.entries a));
  Alcotest.(check (list string)) "labels sorted + deduped" [ "k"; "ms" ]
    (Audit.labels_for a ~party:"party-b");
  (match Audit.value_of a ~party:"party-b" ~label:"k" with
   | Some (Audit.Int v) -> Alcotest.(check int) "latest wins" 7 v
   | _ -> Alcotest.fail "expected Int");
  Alcotest.(check bool) "missing is None" true
    (Audit.value_of a ~party:"client" ~label:"k" = None);
  Alcotest.(check int) "for_party filters" 1
    (List.length (Audit.for_party a ~party:"party-a"))

(* ------------------------------------------------------------------ *)
(* Ctx                                                                 *)
(* ------------------------------------------------------------------ *)

let test_ctx_disabled () =
  let obs = Ctx.disabled in
  Alcotest.(check bool) "disabled" true (Ctx.is_disabled obs);
  Alcotest.(check int) "with_span passthrough" 9 (Ctx.with_span obs "x" (fun () -> 9));
  Alcotest.(check int) "with_pool_chunks passthrough" 8
    (Ctx.with_pool_chunks obs (fun () -> 8));
  Ctx.observe_phase obs "p" 1.0;
  Ctx.audit obs ~party:"a" ~phase:"p" ~label:"l" (Audit.Int 1);
  Alcotest.(check int) "no trace roots" 0 (List.length (Trace.roots (Ctx.trace obs)))

let test_ctx_pool_chunks () =
  let trace = Trace.create () in
  let m = Metrics.create () in
  let obs = Ctx.create ~trace ~metrics:m () in
  (* Each element does enough arithmetic for its chunk's busy time to
     register at the timer's microsecond resolution; instant chunks can
     measure 0.0s and make the utilization gauge flaky. *)
  let work x =
    let acc = ref 0 in
    for i = 1 to 50_000 do
      acc := !acc lxor (i * x)
    done;
    ignore (Sys.opaque_identity !acc);
    x * 2
  in
  let out =
    Ctx.with_span obs "stage" (fun () ->
        Ctx.with_pool_chunks obs ~label:"work" (fun () ->
            Util.Pool.map ~jobs:3 work (Array.init 9 succ)))
  in
  Alcotest.(check (array int)) "result unchanged"
    (Array.init 9 (fun i -> 2 * (i + 1))) out;
  (match Trace.roots trace with
   | [ stage ] ->
     Alcotest.(check (list string)) "chunk spans in worker order"
       [ "work[0,3)"; "work[3,6)"; "work[6,9)" ]
       (List.map (fun s -> s.Trace.name) stage.Trace.children)
   | _ -> Alcotest.fail "expected one root span");
  Alcotest.(check int) "chunk latencies recorded" 3
    (Metrics.hist_count (Metrics.histogram m "pool.work.chunk_seconds"));
  (match Metrics.gauge_value (Metrics.gauge m "pool.work.utilization") with
   | Some u -> Alcotest.(check bool) "utilization in (0, 1.5]" true (u > 0.0 && u <= 1.5)
   | None -> Alcotest.fail "utilization gauge unset")

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let test_flight_ring () =
  let f = Flight.create ~capacity:3 () in
  Alcotest.(check int) "capacity" 3 (Flight.capacity f);
  for i = 1 to 5 do
    Flight.record f Flight.Mark ~name:(Printf.sprintf "e%d" i) ~i ()
  done;
  Alcotest.(check int) "total counts every record" 5 (Flight.total f);
  Alcotest.(check int) "dropped = total - capacity" 2 (Flight.dropped f);
  Alcotest.(check (list string)) "oldest first, survivors only" [ "e3"; "e4"; "e5" ]
    (List.map (fun e -> e.Flight.name) (Flight.events f));
  Alcotest.(check bool) "timestamps monotone" true
    (let ts = List.map (fun e -> e.Flight.ts) (Flight.events f) in
     List.sort compare ts = ts);
  Flight.clear f;
  Alcotest.(check int) "clear resets total" 0 (Flight.total f);
  Alcotest.(check int) "clear empties events" 0 (List.length (Flight.events f));
  Alcotest.(check bool) "capacity must be positive" true
    (try ignore (Flight.create ~capacity:0 ()); false with Invalid_argument _ -> true)

let test_flight_dump () =
  let f = Flight.create ~capacity:8 () in
  Flight.record f Flight.Phase_enter ~name:"compute-distances" ();
  Flight.record f Flight.Noise ~name:"masked \"dists\"" ~i:7 ~x:35.5 ();
  Flight.record f Flight.Send ~name:"party-A->party-B" ~i:4096 ();
  Flight.record f Flight.Phase_exit ~name:"compute-distances" ~x:0.25 ();
  with_temp_file (fun path ->
      let oc = open_out path in
      Flight.dump ~run:[ ("cmd", "test"); ("weird", "a\"b\\c") ] f oc;
      close_out oc;
      let lines =
        String.split_on_char '\n' (read_file path)
        |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check int) "header + one line per event" 5 (List.length lines);
      List.iteri
        (fun i line -> assert_valid_json (Printf.sprintf "flight line %d" i) line)
        lines;
      Alcotest.(check bool) "header first" true
        (contains ~sub:"\"rec\":\"flight-header\"" (List.hd lines));
      Alcotest.(check bool) "run kvs in header" true
        (contains ~sub:"\"cmd\":\"test\"" (List.hd lines));
      Alcotest.(check bool) "events tagged" true
        (List.for_all (contains ~sub:"\"rec\":\"flight\"") (List.tl lines));
      Alcotest.(check bool) "kind names symbolic" true
        (contains ~sub:"\"kind\":\"phase-exit\"" (read_file path)))

(* The non-Chunk flight-event stream with timestamps (and phase
   durations) stripped: everything that must be bit-identical across
   job counts. *)
let flight_shape f =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      if e.Flight.kind <> Flight.Chunk then begin
        let x =
          match e.Flight.kind with
          | Flight.Phase_enter | Flight.Phase_exit -> 0.0 (* wall time varies *)
          | _ -> e.Flight.x
        in
        Buffer.add_string buf
          (Printf.sprintf "%s name=%s i=%d j=%d x=%.9g\n"
             (Flight.kind_name e.Flight.kind) e.Flight.name e.Flight.i e.Flight.j x)
      end)
    (Flight.events f);
  Buffer.contents buf

let test_flight_stream_jobs_determinism () =
  let _, _, f1, _ = traced_run ~jobs:1 in
  let _, _, f2, _ = traced_run ~jobs:2 in
  let _, _, f4, _ = traced_run ~jobs:4 in
  let s1 = flight_shape f1 and s2 = flight_shape f2 and s4 = flight_shape f4 in
  Alcotest.(check string) "flight stream: jobs 1 = jobs 2" s1 s2;
  Alcotest.(check string) "flight stream: jobs 1 = jobs 4" s1 s4;
  Alcotest.(check bool) "stream is non-trivial" true (String.length s1 > 200);
  Alcotest.(check bool) "carries phase events" true
    (contains ~sub:"phase-exit name=compute-distances" s1);
  Alcotest.(check bool) "carries noise samples" true (contains ~sub:"noise name=" s1);
  Alcotest.(check bool) "carries transcript sends" true
    (contains ~sub:"send name=party-A->party-B" s1);
  (* Chunk events exist but are excluded from the invariant. *)
  let chunks f =
    List.length (List.filter (fun e -> e.Flight.kind = Flight.Chunk) (Flight.events f))
  in
  Alcotest.(check bool) "chunk events recorded" true (chunks f2 > 0)

(* ------------------------------------------------------------------ *)
(* Metrics edge cases + Prometheus exposition                          *)
(* ------------------------------------------------------------------ *)

let test_metrics_empty_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 1.0; 10.0 |] m "lat" in
  Alcotest.(check int) "count 0" 0 (Metrics.hist_count h);
  Alcotest.(check (float 0.0)) "sum 0" 0.0 (Metrics.hist_sum h);
  let rendered = Format.asprintf "%a" Metrics.pp m in
  Alcotest.(check bool) "pp survives empty histogram" true
    (contains ~sub:"count=0" rendered);
  let prom = Metrics.to_prometheus m in
  Alcotest.(check bool) "exposition has zero count" true
    (contains ~sub:"sknn_lat_count 0" prom);
  Alcotest.(check bool) "exposition has zero sum" true
    (contains ~sub:"sknn_lat_sum 0" prom);
  Alcotest.(check bool) "overflow bucket present" true
    (contains ~sub:"sknn_lat_bucket{le=\"+Inf\"} 0" prom)

let test_metrics_bucket_boundary_and_overflow () =
  let m = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 5.0 |] m "b" in
  Metrics.observe h 5.0; (* exactly on the boundary: counts as <= 5 *)
  Alcotest.(check (array int)) "boundary lands in its bucket" [| 1; 0 |]
    (Metrics.hist_counts h);
  Metrics.observe h 5.000001;
  Metrics.observe h 1e12;
  Alcotest.(check (array int)) "everything above goes to overflow" [| 1; 2 |]
    (Metrics.hist_counts h);
  Alcotest.(check int) "count includes overflow" 3 (Metrics.hist_count h)

let test_metrics_kind_mismatch () =
  let m = Metrics.create () in
  ignore (Metrics.gauge m "g");
  List.iter
    (fun (label, f) ->
      Alcotest.(check bool) label true
        (try f (); false with Invalid_argument _ -> true))
    [ ("gauge as counter", fun () -> ignore (Metrics.counter m "g"));
      ("gauge as histogram", fun () -> ignore (Metrics.histogram m "g"));
      ("counter as gauge",
       fun () ->
         ignore (Metrics.counter m "c");
         ignore (Metrics.gauge m "c")) ]

let golden_ledger () =
  let c = Counters.create () in
  Counters.record_op c Counters.Op_ct_mul ~level:5;
  Counters.record_op_n c Counters.Op_encrypt ~level:10 2;
  Counters.record_op c Counters.Op_slot_pack ~level:0;
  c

let test_metrics_prometheus_golden () =
  let build () =
    let m = Metrics.create () in
    Metrics.inc ~by:3 (Metrics.counter m "queries");
    Metrics.set (Metrics.gauge m "pool/work.utilization") 0.75;
    ignore (Metrics.gauge m "unset"); (* unset gauges are omitted *)
    let h = Metrics.histogram ~buckets:[| 1.0; 10.0 |] m "lat" in
    List.iter (Metrics.observe h) [ 0.5; 10.0; 99.0 ];
    Metrics.record_ledger m ~party:"party-a" (golden_ledger ());
    (* The virtual-network families the protocol exports under --net. *)
    Metrics.set (Metrics.gauge m "link.party-A-party-B.busy_seconds") 0.0025;
    Metrics.inc ~by:2 (Metrics.counter m "link.party-A-party-B.rounds");
    Metrics.set (Metrics.gauge m "net.end_to_end_seconds") 0.085;
    m
  in
  let expected =
    String.concat "\n"
      [ "# TYPE sknn_lat histogram";
        "sknn_lat_bucket{le=\"1\"} 1";
        "sknn_lat_bucket{le=\"10\"} 2";
        "sknn_lat_bucket{le=\"+Inf\"} 3";
        "sknn_lat_sum 109.5";
        "sknn_lat_count 3";
        "# TYPE sknn_ledger_party_a_ct_mul_l5_total counter";
        "sknn_ledger_party_a_ct_mul_l5_total 1";
        "# TYPE sknn_ledger_party_a_encrypt_l10_total counter";
        "sknn_ledger_party_a_encrypt_l10_total 2";
        "# TYPE sknn_ledger_party_a_slot_pack_l0_total counter";
        "sknn_ledger_party_a_slot_pack_l0_total 1";
        "# TYPE sknn_link_party_A_party_B_busy_seconds gauge";
        "sknn_link_party_A_party_B_busy_seconds 0.0025";
        "# TYPE sknn_link_party_A_party_B_rounds_total counter";
        "sknn_link_party_A_party_B_rounds_total 2";
        "# TYPE sknn_net_end_to_end_seconds gauge";
        "sknn_net_end_to_end_seconds 0.085";
        "# TYPE sknn_pool_work_utilization gauge";
        "sknn_pool_work_utilization 0.75";
        "# TYPE sknn_queries_total counter";
        "sknn_queries_total 3";
        "" ]
  in
  Alcotest.(check string) "golden exposition" expected
    (Metrics.to_prometheus (build ()));
  (* Deterministic: registration order does not matter, repeated export
     is stable. *)
  let m2 = Metrics.create () in
  let h2 = Metrics.histogram ~buckets:[| 1.0; 10.0 |] m2 "lat" in
  Metrics.set (Metrics.gauge m2 "net.end_to_end_seconds") 0.085;
  Metrics.record_ledger m2 ~party:"party-a" (golden_ledger ());
  Metrics.set (Metrics.gauge m2 "pool/work.utilization") 0.75;
  ignore (Metrics.gauge m2 "unset");
  Metrics.inc ~by:2 (Metrics.counter m2 "link.party-A-party-B.rounds");
  Metrics.inc ~by:3 (Metrics.counter m2 "queries");
  Metrics.set (Metrics.gauge m2 "link.party-A-party-B.busy_seconds") 0.0025;
  List.iter (Metrics.observe h2) [ 99.0; 0.5; 10.0 ];
  Alcotest.(check string) "order-independent" expected (Metrics.to_prometheus m2);
  Alcotest.(check string) "repeat export identical" (Metrics.to_prometheus m2)
    (Metrics.to_prometheus m2)

(* Every exposition line is `# TYPE <name> <kind>` or `<name>[{...}] <num>`
   with names in [a-zA-Z0-9_] — the subset of the Prometheus text format
   we emit. *)
let test_metrics_prometheus_grammar () =
  let m = Metrics.create () in
  Metrics.inc (Metrics.counter m "bgv.mul/total");
  Metrics.set (Metrics.gauge m "noise min headroom") 35.75;
  let h = Metrics.histogram m "phase.compute-distances.seconds" in
  Metrics.observe h 0.123;
  let name_ok name =
    name <> ""
    && String.for_all
         (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
         name
  in
  let check_line line =
    if line = "" then ()
    else if String.length line > 7 && String.sub line 0 7 = "# TYPE " then begin
      match String.split_on_char ' ' line with
      | [ "#"; "TYPE"; name; kind ] ->
        Alcotest.(check bool) ("type name ok: " ^ name) true (name_ok name);
        Alcotest.(check bool) ("kind ok: " ^ kind) true
          (List.mem kind [ "counter"; "gauge"; "histogram" ])
      | _ -> Alcotest.failf "bad TYPE line: %s" line
    end
    else
      match String.index_opt line ' ' with
      | None -> Alcotest.failf "sample line without value: %s" line
      | Some sp ->
        let name_part = String.sub line 0 sp in
        let value = String.sub line (sp + 1) (String.length line - sp - 1) in
        let bare =
          match String.index_opt name_part '{' with
          | Some b ->
            Alcotest.(check bool) ("labels closed: " ^ name_part) true
              (name_part.[String.length name_part - 1] = '}');
            String.sub name_part 0 b
          | None -> name_part
        in
        Alcotest.(check bool) ("metric name ok: " ^ bare) true (name_ok bare);
        Alcotest.(check bool) ("numeric value: " ^ value) true
          (match float_of_string_opt value with Some _ -> true | None -> false)
  in
  let prom = Metrics.to_prometheus m in
  List.iter check_line (String.split_on_char '\n' prom);
  Alcotest.(check bool) "sanitized counter name" true
    (contains ~sub:"sknn_bgv_mul_total_total 1" prom)

(* ------------------------------------------------------------------ *)
(* Trace indexed paths (--trace under --repeat)                        *)
(* ------------------------------------------------------------------ *)

let test_trace_indexed_path () =
  List.iter
    (fun (path, i, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "indexed_path %S %d" path i)
        expected
        (Trace.indexed_path path i))
    [ ("trace.json", 0, "trace.json");
      ("trace.json", 2, "trace.2.json");
      ("out/run.jsonl", 3, "out/run.3.jsonl");
      ("noext", 1, "noext.1");
      ("dir.d/noext", 1, "dir.d/noext.1");
      ("a.b.c", 4, "a.b.4.c") ]

(* ------------------------------------------------------------------ *)
(* Noise model: forecaster vs the live scheme                          *)
(* ------------------------------------------------------------------ *)

let nm_of_params (p : Params.t) =
  let lg x = log x /. log 2.0 in
  { NM.n = p.Params.n;
    t_bits = lg (Int64.to_float p.Params.t_plain);
    moduli_bits = Array.map (fun m -> lg (float_of_int m)) p.Params.moduli;
    eta = float_of_int p.Params.eta }

let test_noise_model_matches_bgv () =
  List.iter
    (fun (label, p) ->
      let nm = nm_of_params p in
      let close msg a b =
        Alcotest.(check (float 1e-6)) (label ^ ": " ^ msg) a b
      in
      close "fresh noise" (Bgv.fresh_noise_bits p) (NM.fresh_noise_bits nm);
      for d = 1 to 2 do
        close
          (Printf.sprintf "switch floor (degree %d)" d)
          (Bgv.switch_floor_bits p d)
          (NM.switch_floor_bits nm ~degree:d)
      done;
      for lvl = 1 to Params.chain_length p do
        close
          (Printf.sprintf "log2 q at level %d" lvl)
          (Bgv.log2_q_at_level p lvl)
          (NM.log2_q nm ~level:lvl)
      done)
    [ ("standard", (Config.standard ()).Config.bgv);
      ("fast", (Config.fast ()).Config.bgv);
      ("toy", Params.toy ()) ]

let test_noise_model_ops () =
  let nm = nm_of_params (Config.standard ()).Config.bgv in
  let fresh = NM.fresh nm in
  Alcotest.(check int) "fresh at top level" (NM.chain_length nm) fresh.NM.level;
  Alcotest.(check bool) "fresh headroom positive" true (NM.headroom nm fresh > 0.0);
  let sum = NM.add fresh fresh in
  Alcotest.(check bool) "add grows noise" true (sum.NM.bits > fresh.NM.bits);
  Alcotest.(check bool) "add is one bit at equal operands" true
    (abs_float (sum.NM.bits -. (fresh.NM.bits +. 1.0)) < 1e-9);
  let prod = NM.mul nm fresh fresh in
  Alcotest.(check bool) "mul grows fast" true (prod.NM.bits > sum.NM.bits);
  Alcotest.(check int) "mul raises degree" 2 prod.NM.degree;
  let ip = NM.mul_sum nm fresh fresh ~terms:8 in
  Alcotest.(check bool) "mul_sum ~ one product + log2 terms" true
    (abs_float (ip.NM.bits -. (prod.NM.bits +. 3.0)) < 1e-9);
  let tr = NM.truncate prod ~level:2 in
  Alcotest.(check int) "truncate drops level" 2 tr.NM.level;
  Alcotest.(check (float 1e-9)) "truncate keeps noise" prod.NM.bits tr.NM.bits;
  let rs = NM.rescale_to_floor nm prod in
  Alcotest.(check bool) "rescale reduces noise" true (rs.NM.bits < prod.NM.bits);
  Alcotest.(check bool) "percentile guard" true
    (try ignore (Report.percentile [||] 50.0); false with Invalid_argument _ -> true)

let test_forecast_default_is_quiet () =
  let db = Synthetic.uniform (Rng.of_int 5) ~n:8 ~d:3 ~max_value:50 in
  let audit = Audit.create () in
  let flight = Flight.create () in
  let obs = Ctx.create ~audit ~flight () in
  let dep = Protocol.deploy ~obs ~rng:(Rng.of_int 7) ~jobs:1 (Config.fast ()) ~db in
  let report = Entities.Party_a.forecast_noise (Protocol.party_a dep) in
  Alcotest.(check bool) "steps recorded" true (List.length report.NM.steps > 5);
  Alcotest.(check bool) "default preset clears the margin" false
    report.NM.below_margin;
  Alcotest.(check bool) "positive minimum headroom" true
    (report.NM.min_headroom_bits > report.NM.margin_bits);
  Protocol.prepare ~obs dep;
  (match
     Audit.value_of audit ~party:"party-a" ~label:"noise-min-headroom-bits"
   with
   | Some (Audit.Float v) ->
     Alcotest.(check (float 1e-6)) "audit records the forecast minimum"
       report.NM.min_headroom_bits v
   | _ -> Alcotest.fail "expected the noise-min-headroom-bits audit entry");
  Alcotest.(check bool) "no warning entry" true
    (Audit.value_of audit ~party:"party-a" ~label:"noise-low-headroom-warning" = None);
  Alcotest.(check bool) "no warning flight event" true
    (List.for_all (fun e -> e.Flight.kind <> Flight.Warning) (Flight.events flight));
  (* A live prepared query agrees with the positive forecast. *)
  let r = Protocol.query_prepared ~obs ~rng:(Rng.of_int 8) dep ~query:[| 1; 2; 3 |] ~k:2 in
  Alcotest.(check int) "query succeeds" 2 (Array.length r.Protocol.neighbours)

let test_forecast_shallow_chain_warns () =
  (* Three 30-bit primes cannot absorb the prepared circuit: the
     forecaster must warn at prepare time instead of letting the query
     die mid-flight. *)
  let shallow =
    let bgv =
      Params.create ~name:"shallow-obs-test" ~n:64 ~plain_bits:50 ~prime_bits:30
        ~chain_len:3 ()
    in
    { (Config.fast ()) with Config.bgv; return_level = 2 }
  in
  (match Config.validate shallow ~d:3 with
   | Ok () -> ()
   | Error e -> Alcotest.failf "shallow config should be structurally valid: %s" e);
  let db = Synthetic.uniform (Rng.of_int 5) ~n:8 ~d:3 ~max_value:50 in
  let audit = Audit.create () in
  let flight = Flight.create () in
  let obs = Ctx.create ~audit ~flight () in
  let dep = Protocol.deploy ~obs ~rng:(Rng.of_int 7) ~jobs:1 shallow ~db in
  let report = Entities.Party_a.forecast_noise (Protocol.party_a dep) in
  Alcotest.(check bool) "below margin" true report.NM.below_margin;
  Alcotest.(check bool) "headroom below margin" true
    (report.NM.min_headroom_bits < report.NM.margin_bits);
  let rendered = Format.asprintf "%a" NM.pp_report report in
  Alcotest.(check bool) "report renders the verdict" true
    (contains ~sub:"BELOW MARGIN" rendered);
  Protocol.prepare ~obs dep;
  (match
     Audit.value_of audit ~party:"party-a" ~label:"noise-low-headroom-warning"
   with
   | Some (Audit.Str s) ->
     Alcotest.(check bool) "warning carries the forecast" true
       (contains ~sub:"min headroom" s)
   | _ -> Alcotest.fail "expected the noise-low-headroom-warning audit entry");
  Alcotest.(check bool) "warning flight event recorded" true
    (List.exists
       (fun e ->
         e.Flight.kind = Flight.Warning && e.Flight.name = "noise-low-headroom")
       (Flight.events flight))

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let test_report_percentiles () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 0.0)) "p50 of 4" 2.0 (Report.percentile a 50.0);
  Alcotest.(check (float 0.0)) "p95 of 4" 4.0 (Report.percentile a 95.0);
  Alcotest.(check (float 0.0)) "p25 of 4" 1.0 (Report.percentile a 25.0);
  let one = [| 7.5 |] in
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0)) (Printf.sprintf "p%.0f of singleton" p) 7.5
        (Report.percentile one p))
    [ 50.0; 95.0; 99.0 ]

let test_report_degenerate_inputs () =
  (* Nearest-rank at the extremes of p: the rank clamp keeps every
     request inside the sample, including out-of-range p. *)
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 0.0)) "p0 clamps to min" 1.0 (Report.percentile a 0.0);
  Alcotest.(check (float 0.0)) "p100 is max" 4.0 (Report.percentile a 100.0);
  Alcotest.(check (float 0.0)) "p>100 clamps to max" 4.0 (Report.percentile a 150.0);
  Alcotest.(check (float 0.0)) "negative p clamps to min" 1.0
    (Report.percentile a (-5.0));
  (* An empty jsonl file: no rows anywhere, rendering still succeeds. *)
  let t = Report.create () in
  with_temp_file (fun path ->
      let oc = open_out path in
      close_out oc;
      Report.add_file t path);
  Alcotest.(check int) "no lines in empty file" 0 (Report.lines t);
  Alcotest.(check int) "nothing skipped" 0 (Report.skipped t);
  Alcotest.(check int) "no phase rows" 0 (List.length (Report.phases t));
  Alcotest.(check int) "no link rows" 0 (List.length (Report.links t));
  Alcotest.(check int) "no noise rows" 0 (List.length (Report.noise_margins t));
  Alcotest.(check bool) "empty report still renders" true
    (String.length (Format.asprintf "%a" Report.pp t) > 0);
  (* Garbage is counted and skipped, never fatal; blanks are ignored. *)
  Report.add_line t "";
  Report.add_line t "   ";
  Report.add_line t "not json at all";
  Report.add_line t "{\"weird\": true}";
  Alcotest.(check int) "blank lines not counted" 2 (Report.lines t);
  Alcotest.(check int) "garbage skipped" 2 (Report.skipped t);
  Alcotest.(check int) "still no phase rows" 0 (List.length (Report.phases t));
  (* A single sample: every percentile is that sample, and the row is
     still rendered (push never creates an empty list, so the
     percentile empty-sample guard is unreachable from the tables). *)
  Report.add_line t {|{"kind":"phase","name":"solo","dur_s":0.25}|};
  (match Report.phases t with
   | [ r ] ->
     Alcotest.(check string) "phase name" "solo" r.Report.phase;
     Alcotest.(check int) "one sample" 1 r.Report.samples;
     Alcotest.(check (float 0.0)) "p50 = sample" 0.25 r.Report.p50_s;
     Alcotest.(check (float 0.0)) "p95 = sample" 0.25 r.Report.p95_s;
     Alcotest.(check (float 0.0)) "p99 = sample" 0.25 r.Report.p99_s;
     Alcotest.(check (float 0.0)) "max = sample" 0.25 r.Report.max_s
   | rows -> Alcotest.failf "expected one phase row, got %d" (List.length rows))

let test_report_tables () =
  let trace, _, flight, _ = traced_run ~jobs:2 in
  let t = Report.create () in
  with_temp_file (fun path ->
      let oc = open_out path in
      Trace.write trace Trace.Jsonl oc;
      close_out oc;
      Report.add_file t path);
  with_temp_file (fun path ->
      let oc = open_out path in
      Flight.dump ~run:[ ("cmd", "test") ] flight oc;
      close_out oc;
      Report.add_file t path);
  Alcotest.(check bool) "lines read" true (Report.lines t > 10);
  Alcotest.(check int) "nothing skipped" 0 (Report.skipped t);
  let phases = Report.phases t in
  let phase r = r.Report.phase in
  Alcotest.(check bool) "compute-distances aggregated" true
    (List.exists (fun r -> phase r = "compute-distances") phases);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (phase r ^ ": percentiles ordered") true
        (r.Report.p50_s <= r.Report.p95_s
         && r.Report.p95_s <= r.Report.p99_s
         && r.Report.p99_s <= r.Report.max_s);
      (* jsonl trace + flight dump both carry the phase: 2+ samples *)
      Alcotest.(check bool) (phase r ^ ": both sources merged") true
        (r.Report.samples >= 2))
    phases;
  let links = Report.links t in
  (match List.find_opt (fun l -> l.Report.link = "party-A->party-B") links with
   | Some l ->
     Alcotest.(check bool) "A->B sends counted" true (l.Report.sends >= 1);
     Alcotest.(check bool) "A->B bytes positive" true (l.Report.bytes > 0)
   | None -> Alcotest.fail "expected a party-A->party-B link row");
  Alcotest.(check bool) "noise table populated" true
    (List.length (Report.noise_margins t) > 0);
  List.iter
    (fun r -> Alcotest.(check bool) "noise min <= mean" true
        (r.Report.min_bits <= r.Report.mean_bits +. 1e-9))
    (Report.noise_margins t);
  let rendered = Format.asprintf "%a" Report.pp t in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("report mentions " ^ sub) true (contains ~sub rendered))
    [ "phase"; "p50"; "p95"; "p99"; "compute-distances"; "party-A->party-B";
      "noise headroom" ];
  (* Garbage lines are counted, not fatal. *)
  Report.add_line t "not json at all {";
  Alcotest.(check int) "garbage skipped" 1 (Report.skipped t)

(* ------------------------------------------------------------------ *)
(* Cost_model: the analytic op-ledger replica + calibrated time        *)
(* ------------------------------------------------------------------ *)

module CM = Sknn_obs.Cost_model

(* Exact ledger equality against live queries is asserted per preset in
   test_core; here we pin the model's own structural contract. *)

let cm_predict ?include_prepare path =
  Attribution.predict ?include_prepare (Config.fast ()) ~n:16 ~d:3 ~k:2 path

let protocol_phase_order =
  [ "prepare-db"; "encrypt-query"; "compute-distances"; "find-neighbours";
    "return-knn"; "decrypt-result" ]

let test_cost_model_phase_structure () =
  List.iter
    (fun (label, path) ->
      let pred = cm_predict path in
      let names = List.map (fun ph -> ph.CM.phase) pred.CM.phases in
      List.iter
        (fun nm ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s is a protocol phase" label nm)
            true (List.mem nm protocol_phase_order))
        names;
      (* Phase order matches Protocol's: the phase list, deduplicated,
         is a subsequence of the canonical order. *)
      let dedup =
        List.fold_left (fun acc nm -> if List.mem nm acc then acc else nm :: acc)
          [] names
        |> List.rev
      in
      let rec subseq xs ys =
        match (xs, ys) with
        | [], _ -> true
        | _, [] -> false
        | x :: xs', y :: ys' -> if x = y then subseq xs' ys' else subseq xs ys'
      in
      Alcotest.(check bool) (label ^ ": phases in protocol order") true
        (subseq dedup protocol_phase_order);
      List.iter
        (fun ph ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s party tag" label ph.CM.phase)
            true
            (List.mem ph.CM.party [ "party-a"; "party-b"; "client" ]))
        pred.CM.phases;
      Alcotest.(check bool) (label ^ ": A<->B traffic predicted") true
        (pred.CM.ab_bytes > 0))
    [ ("plain", CM.Plain); ("prepared", CM.Prepared); ("packed", CM.Packed);
      ("batch", CM.Batch 3) ]

let test_cost_model_party_merge () =
  (* The merged per-party totals are exactly the fold of the per-phase
     ledgers — sknn cost compares the totals against live counters, the
     phase table against live phase times; they must be the same ops. *)
  List.iter
    (fun (label, path) ->
      let pred = cm_predict path in
      let fold party =
        List.fold_left
          (fun acc ph ->
            if ph.CM.party = party then Counters.merge acc ph.CM.counters else acc)
          (Counters.create ()) pred.CM.phases
      in
      Alcotest.(check bool) (label ^ ": party-a merge") true
        (Counters.equal_ledger (fold "party-a") pred.CM.party_a);
      Alcotest.(check bool) (label ^ ": party-b merge") true
        (Counters.equal_ledger (fold "party-b") pred.CM.party_b);
      Alcotest.(check bool) (label ^ ": client merge") true
        (Counters.equal_ledger (fold "client") pred.CM.client))
    [ ("plain", CM.Plain); ("prepared", CM.Prepared); ("packed", CM.Packed);
      ("batch", CM.Batch 2) ]

let test_cost_model_steady_state () =
  (* include_prepare:false models a steady-state query: the prepare-db
     phase disappears and with it some work, but the A<->B traffic of
     the query round itself is unchanged. *)
  List.iter
    (fun (label, path) ->
      let first = cm_predict ~include_prepare:true path in
      let steady = cm_predict ~include_prepare:false path in
      Alcotest.(check bool) (label ^ ": first query prepares") true
        (List.exists (fun ph -> ph.CM.phase = "prepare-db") first.CM.phases);
      Alcotest.(check bool) (label ^ ": steady query does not") false
        (List.exists (fun ph -> ph.CM.phase = "prepare-db") steady.CM.phases);
      Alcotest.(check int) (label ^ ": traffic unchanged") first.CM.ab_bytes
        steady.CM.ab_bytes)
    [ ("prepared", CM.Prepared); ("packed", CM.Packed) ]

let test_predict_seconds_algebra () =
  (* predict_seconds is Σ count × unit_cost over the primary ops, with
     the NTT census rows excluded (each composite op's measured unit
     cost already contains its transforms) and missing cells read as
     zero. *)
  let c = Counters.create () in
  Counters.record_op_n c Counters.Op_ct_add ~level:2 10;
  Counters.record_op_n c Counters.Op_ct_mul ~level:3 4;
  Counters.record_op_n c Counters.Op_slot_pack ~level:0 5;
  Counters.record_op_n c Counters.Op_ntt_fwd ~level:2 1000;
  Counters.record_op_n c Counters.Op_ntt_inv ~level:2 1000;
  Counters.record_op_n c Counters.Op_decrypt ~level:4 7;
  let unit_costs =
    Array.make_matrix Counters.num_ops 8 0.0
  in
  unit_costs.(Counters.op_index Counters.Op_ct_add).(2) <- 1e-3;
  unit_costs.(Counters.op_index Counters.Op_ct_mul).(3) <- 1e-2;
  unit_costs.(Counters.op_index Counters.Op_slot_pack).(0) <- 1e-4;
  unit_costs.(Counters.op_index Counters.Op_ntt_fwd).(2) <- 1.0;
  unit_costs.(Counters.op_index Counters.Op_ntt_inv).(2) <- 1.0;
  (* Op_decrypt's cell stays 0.0: an uncalibrated cell contributes 0. *)
  let expected = (10.0 *. 1e-3) +. (4.0 *. 1e-2) +. (5.0 *. 1e-4) in
  Alcotest.(check (float 1e-12)) "sum excludes NTT census and zero cells"
    expected
    (CM.predict_seconds ~unit_costs c);
  Alcotest.(check (float 0.0)) "empty ledger is free" 0.0
    (CM.predict_seconds ~unit_costs (Counters.create ()))

let test_report_cost_attribution () =
  (* sknn cost writes {"rec":"cost",...} lines; Report aggregates them
     into the attribution table, averaging repeated samples per phase. *)
  let t = Report.create () in
  Report.add_line t
    {|{"rec":"cost","path":"plain","ledger_exact":true,"phases":[{"phase":"compute-distances","predicted_s":0.5,"measured_s":1.0},{"phase":"return-knn","predicted_s":0.0,"measured_s":0.25}]}|};
  Report.add_line t
    {|{"rec":"cost","path":"plain","ledger_exact":true,"phases":[{"phase":"compute-distances","predicted_s":1.5,"measured_s":3.0}]}|};
  (match Report.attribution t with
   | [ cd; rk ] ->
     Alcotest.(check string) "phase sorted first" "compute-distances"
       cd.Report.cost_phase;
     Alcotest.(check int) "two samples merged" 2 cd.Report.cost_samples;
     Alcotest.(check (float 1e-12)) "predicted mean" 1.0 cd.Report.predicted_s;
     Alcotest.(check (float 1e-12)) "measured mean" 2.0 cd.Report.measured_s;
     Alcotest.(check string) "second phase" "return-knn" rk.Report.cost_phase;
     Alcotest.(check (float 1e-12)) "zero predicted preserved" 0.0
       rk.Report.predicted_s
   | rows -> Alcotest.failf "expected 2 attribution rows, got %d" (List.length rows));
  let rendered = Format.asprintf "%a" Report.pp t in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("attribution mentions " ^ sub) true
        (contains ~sub rendered))
    [ "cost attribution"; "compute-distances"; "return-knn" ];
  (* The zero-predicted row renders "-" for its ratio, never nan/inf. *)
  Alcotest.(check bool) "no nan ratio" false (contains ~sub:"nan" rendered);
  Alcotest.(check bool) "no inf ratio" false (contains ~sub:"inf" rendered)

let () =
  Alcotest.run "obs"
    [ ("trace",
       [ Alcotest.test_case "disabled passthrough" `Quick test_trace_disabled_passthrough;
         Alcotest.test_case "nesting" `Quick test_trace_nesting;
         Alcotest.test_case "counter deltas" `Quick test_trace_counter_deltas;
         Alcotest.test_case "span survives raise" `Quick test_trace_span_survives_raise ]);
      ("sinks",
       [ Alcotest.test_case "chrome JSON" `Quick test_sink_chrome;
         Alcotest.test_case "jsonl lines" `Quick test_sink_jsonl;
         Alcotest.test_case "pretty + formats" `Quick test_sink_pretty_and_format_names ]);
      ("determinism",
       [ Alcotest.test_case "span tree across jobs" `Quick test_span_tree_jobs_determinism;
         Alcotest.test_case "flight stream across jobs" `Quick
           test_flight_stream_jobs_determinism;
         Alcotest.test_case "chunk partition" `Quick test_chunk_spans_partition ]);
      ("flight",
       [ Alcotest.test_case "ring buffer" `Quick test_flight_ring;
         Alcotest.test_case "dump" `Quick test_flight_dump ]);
      ("metrics",
       [ Alcotest.test_case "counter + gauge" `Quick test_metrics_counter_gauge;
         Alcotest.test_case "histogram" `Quick test_metrics_histogram;
         Alcotest.test_case "empty histogram" `Quick test_metrics_empty_histogram;
         Alcotest.test_case "bucket boundary + overflow" `Quick
           test_metrics_bucket_boundary_and_overflow;
         Alcotest.test_case "kind mismatch" `Quick test_metrics_kind_mismatch;
         Alcotest.test_case "prometheus golden" `Quick test_metrics_prometheus_golden;
         Alcotest.test_case "prometheus grammar" `Quick test_metrics_prometheus_grammar;
         Alcotest.test_case "names sorted" `Quick test_metrics_names_sorted ]);
      ("noise model",
       [ Alcotest.test_case "matches the live scheme" `Quick
           test_noise_model_matches_bgv;
         Alcotest.test_case "operation algebra" `Quick test_noise_model_ops;
         Alcotest.test_case "default preset quiet" `Quick test_forecast_default_is_quiet;
         Alcotest.test_case "shallow chain warns" `Quick
           test_forecast_shallow_chain_warns ]);
      ("report",
       [ Alcotest.test_case "percentiles" `Quick test_report_percentiles;
         Alcotest.test_case "degenerate inputs" `Quick test_report_degenerate_inputs;
         Alcotest.test_case "tables" `Quick test_report_tables;
         Alcotest.test_case "cost attribution" `Quick test_report_cost_attribution ]);
      ("cost model",
       [ Alcotest.test_case "phase structure" `Quick test_cost_model_phase_structure;
         Alcotest.test_case "party merge" `Quick test_cost_model_party_merge;
         Alcotest.test_case "steady state" `Quick test_cost_model_steady_state;
         Alcotest.test_case "predict_seconds algebra" `Quick
           test_predict_seconds_algebra ]);
      ("audit", [ Alcotest.test_case "basics" `Quick test_audit_basics ]);
      ("ctx",
       [ Alcotest.test_case "disabled" `Quick test_ctx_disabled;
         Alcotest.test_case "pool chunks" `Quick test_ctx_pool_chunks;
         Alcotest.test_case "indexed trace paths" `Quick test_trace_indexed_path ]) ]
