(* Tests for the observability layer (Sknn_obs): span trees, counter
   deltas, sink well-formedness, the metrics registry, the leakage-audit
   channel — and the PR 1 determinism invariant extended to tracing:
   the non-chunk span tree is bit-identical for every job count. *)

module Rng = Util.Rng
module Counters = Util.Counters
module Trace = Sknn_obs.Trace
module Metrics = Sknn_obs.Metrics
module Audit = Sknn_obs.Audit
module Ctx = Sknn_obs.Ctx

(* ------------------------------------------------------------------ *)
(* Trace core                                                          *)
(* ------------------------------------------------------------------ *)

let test_trace_disabled_passthrough () =
  let t = Trace.disabled in
  Alcotest.(check bool) "disabled" false (Trace.is_enabled t);
  let x = Trace.with_span t "phase" (fun () -> 41 + 1) in
  Alcotest.(check int) "value passes through" 42 x;
  Trace.add_complete t ~name:"chunk" ~start:0.0 ~dur:1.0 ();
  Alcotest.(check int) "no spans recorded" 0 (List.length (Trace.roots t))

let test_trace_nesting () =
  let t = Trace.create () in
  let v =
    Trace.with_span t ~kind:Trace.Phase "outer" (fun () ->
        let a = Trace.with_span t "inner-1" (fun () -> 1) in
        let b = Trace.with_span t "inner-2" (fun () -> 2) in
        Trace.add_complete t ~name:"leaf" ~args:[ ("worker", "0") ]
          ~start:(Util.Timer.counter ()) ~dur:0.001 ();
        a + b)
  in
  Alcotest.(check int) "value" 3 v;
  match Trace.roots t with
  | [ root ] ->
    Alcotest.(check string) "root name" "outer" root.Trace.name;
    Alcotest.(check string) "root kind" "phase" (Trace.kind_name root.Trace.kind);
    Alcotest.(check (list string)) "children in completion order"
      [ "inner-1"; "inner-2"; "leaf" ]
      (List.map (fun s -> s.Trace.name) root.Trace.children);
    Alcotest.(check bool) "durations non-negative" true
      (root.Trace.dur_s >= 0.0
       && List.for_all (fun s -> s.Trace.dur_s >= 0.0) root.Trace.children)
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_trace_counter_deltas () =
  let t = Trace.create () in
  let c = Counters.create () in
  Counters.record c Counters.Encrypt; (* pre-span noise, must not leak in *)
  Trace.with_span t ~counters:[ ("party", c) ] "work" (fun () ->
      Counters.record c Counters.Hom_mul;
      Counters.record c (Counters.Bytes_sent 10));
  Trace.with_span t ~counters:[ ("party", c) ] "idle" (fun () -> ());
  match Trace.roots t with
  | [ work; idle ] ->
    (match work.Trace.deltas with
     | [ ("party", d) ] ->
       Alcotest.(check int) "delta muls" 1 (Counters.hom_muls d);
       Alcotest.(check int) "delta bytes" 10 (Counters.bytes_sent d);
       Alcotest.(check int) "pre-span encrypt excluded" 0 (Counters.encryptions d)
     | _ -> Alcotest.fail "expected one delta on work span");
    Alcotest.(check int) "zero delta omitted" 0 (List.length idle.Trace.deltas)
  | _ -> Alcotest.fail "expected two roots"

let test_trace_span_survives_raise () =
  let t = Trace.create () in
  (try
     Trace.with_span t "boom" (fun () -> failwith "expected")
   with Failure _ -> ());
  Alcotest.(check (list string)) "span recorded despite raise" [ "boom" ]
    (List.map (fun s -> s.Trace.name) (Trace.roots t))

(* ------------------------------------------------------------------ *)
(* Sinks: a tiny recursive-descent JSON well-formedness checker         *)
(* ------------------------------------------------------------------ *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

exception Bad_json of string

let check_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else raise (Bad_json (Printf.sprintf "expected %c at %d" c !pos))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('t' | 'f' | 'n') -> keyword ()
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> raise (Bad_json (Printf.sprintf "unexpected input at %d" !pos))
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else
      let rec members () =
        skip_ws (); string_lit (); skip_ws (); expect ':'; value (); skip_ws ();
        match peek () with
        | Some ',' -> advance (); members ()
        | Some '}' -> advance ()
        | _ -> raise (Bad_json (Printf.sprintf "bad object at %d" !pos))
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else
      let rec elements () =
        value (); skip_ws ();
        match peek () with
        | Some ',' -> advance (); elements ()
        | Some ']' -> advance ()
        | _ -> raise (Bad_json (Printf.sprintf "bad array at %d" !pos))
      in
      elements ()
  and string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | Some '"' -> advance ()
      | Some '\\' -> advance (); advance (); go ()
      | Some _ -> advance (); go ()
      | None -> raise (Bad_json "unterminated string")
    in
    go ()
  and keyword () =
    let ok kw = String.length s - !pos >= String.length kw
                && String.sub s !pos (String.length kw) = kw in
    if ok "true" then pos := !pos + 4
    else if ok "false" then pos := !pos + 5
    else if ok "null" then pos := !pos + 4
    else raise (Bad_json (Printf.sprintf "bad keyword at %d" !pos))
  and number () =
    if peek () = Some '-' then advance ();
    let digits () =
      let had = ref false in
      while (match peek () with Some ('0' .. '9') -> true | _ -> false) do
        had := true; advance ()
      done;
      if not !had then raise (Bad_json (Printf.sprintf "bad number at %d" !pos))
    in
    digits ();
    if peek () = Some '.' then (advance (); digits ());
    (match peek () with
     | Some ('e' | 'E') ->
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       digits ()
     | _ -> ())
  in
  value ();
  skip_ws ();
  if !pos <> n then raise (Bad_json (Printf.sprintf "trailing input at %d" !pos))

let assert_valid_json name s =
  match check_json s with
  | () -> ()
  | exception Bad_json msg -> Alcotest.failf "%s: invalid JSON (%s)" name msg

let traced_run ~jobs =
  let db = Synthetic.uniform (Rng.of_int 77) ~n:18 ~d:3 ~max_value:100 in
  let q = [| 10; 20; 30 |] in
  let trace = Trace.create () in
  let audit = Audit.create () in
  let obs = Ctx.create ~trace ~audit () in
  let dep = Protocol.deploy ~obs ~rng:(Rng.of_int 999) ~jobs (Config.standard ()) ~db in
  let r = Protocol.query ~obs ~rng:(Rng.of_int 1000) dep ~query:q ~k:3 in
  (trace, audit, r)

let with_temp_file f =
  let path = Filename.temp_file "sknn_obs_test" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () ->
      f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      really_input_string ic (in_channel_length ic))

let test_sink_chrome () =
  let trace, _, _ = traced_run ~jobs:2 in
  with_temp_file (fun path ->
      let oc = open_out path in
      Trace.write trace Trace.Chrome oc;
      close_out oc;
      let s = read_file path in
      assert_valid_json "chrome trace" s;
      Alcotest.(check bool) "has traceEvents" true
        (contains ~sub:"\"traceEvents\"" s))

let test_sink_jsonl () =
  let trace, _, _ = traced_run ~jobs:2 in
  with_temp_file (fun path ->
      let oc = open_out path in
      Trace.write trace Trace.Jsonl oc;
      close_out oc;
      let lines =
        String.split_on_char '\n' (read_file path)
        |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check bool) "several lines" true (List.length lines > 5);
      List.iteri
        (fun i line -> assert_valid_json (Printf.sprintf "jsonl line %d" i) line)
        lines)

let test_sink_pretty_and_format_names () =
  let trace, _, _ = traced_run ~jobs:1 in
  let s = Format.asprintf "%a" Trace.pp_tree trace in
  Alcotest.(check bool) "mentions a phase" true
    (contains ~sub:"compute-distances" s);
  List.iter
    (fun (name, ok) ->
      Alcotest.(check bool) name ok
        (match Trace.format_of_string name with Ok _ -> true | Error _ -> false))
    [ ("chrome", true); ("jsonl", true); ("pretty", true); ("perfetto", true);
      ("tree", true); ("bogus", false) ]

(* ------------------------------------------------------------------ *)
(* Determinism across job counts                                       *)
(* ------------------------------------------------------------------ *)

(* Render the span tree with Chunk spans removed and timings zeroed:
   names, kinds, nesting, args and counter deltas — everything that must
   be bit-identical across job counts. *)
let shape trace =
  let buf = Buffer.create 1024 in
  let rec go depth (s : Trace.span) =
    if s.Trace.kind <> Trace.Chunk then begin
      Buffer.add_string buf
        (Printf.sprintf "%*s%s kind=%s args=[%s] deltas=[%s]\n" (2 * depth) ""
           s.Trace.name
           (Trace.kind_name s.Trace.kind)
           (String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) s.Trace.args))
           (String.concat ";"
              (List.map
                 (fun (owner, d) ->
                   owner ^ ":"
                   ^ String.concat ","
                       (List.filter_map
                          (fun (k, v) ->
                            if v = 0 then None else Some (Printf.sprintf "%s=%d" k v))
                          (Counters.to_list d)))
                 s.Trace.deltas)));
      List.iter (go (depth + 1)) s.Trace.children
    end
  in
  List.iter (go 0) (Trace.roots trace);
  Buffer.contents buf

let audit_s a =
  Format.asprintf "%a" Audit.pp a

let test_span_tree_jobs_determinism () =
  let t1, a1, r1 = traced_run ~jobs:1 in
  let t2, a2, r2 = traced_run ~jobs:2 in
  let t4, a4, r4 = traced_run ~jobs:4 in
  let s1 = shape t1 and s2 = shape t2 and s4 = shape t4 in
  Alcotest.(check string) "span tree: jobs 1 = jobs 2" s1 s2;
  Alcotest.(check string) "span tree: jobs 1 = jobs 4" s1 s4;
  Alcotest.(check bool) "tree is non-trivial" true (String.length s1 > 100);
  Alcotest.(check string) "audit: jobs 1 = jobs 2" (audit_s a1) (audit_s a2);
  Alcotest.(check string) "audit: jobs 1 = jobs 4" (audit_s a1) (audit_s a4);
  Alcotest.(check bool) "results identical" true
    (r1.Protocol.neighbours = r2.Protocol.neighbours
     && r1.Protocol.neighbours = r4.Protocol.neighbours);
  let cs c = Format.asprintf "%a" Counters.pp c in
  Alcotest.(check string) "counters identical (A)" (cs r1.Protocol.counters_a)
    (cs r4.Protocol.counters_a);
  Alcotest.(check string) "counters identical (B)" (cs r1.Protocol.counters_b)
    (cs r4.Protocol.counters_b);
  Alcotest.(check string) "counters identical (client)"
    (cs r1.Protocol.counters_client) (cs r4.Protocol.counters_client)

let test_chunk_spans_partition () =
  (* At jobs=2 the "distance-batches" stage must carry exactly 2 chunk
     spans partitioning [0, n). *)
  let t2, _, _ = traced_run ~jobs:2 in
  let chunks = ref [] in
  let rec collect under (s : Trace.span) =
    let here = under || s.Trace.name = "distance-batches" in
    if here && s.Trace.kind = Trace.Chunk then chunks := s :: !chunks;
    List.iter (collect here) s.Trace.children
  in
  List.iter (collect false) (Trace.roots t2);
  let names = List.rev_map (fun s -> s.Trace.name) !chunks in
  Alcotest.(check (list string)) "two chunks in worker order"
    [ "distances[0,9)"; "distances[9,18)" ]
    names

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_counter_gauge () =
  let m = Metrics.create () in
  let c = Metrics.counter m "ops" in
  Metrics.inc c;
  Metrics.inc ~by:4 c;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  Alcotest.(check int) "re-registration returns same instrument" 5
    (Metrics.counter_value (Metrics.counter m "ops"));
  let g = Metrics.gauge m "util" in
  Alcotest.(check bool) "gauge starts unset" true (Metrics.gauge_value g = None);
  Metrics.set g 0.75;
  Alcotest.(check (option (float 0.0))) "gauge set" (Some 0.75) (Metrics.gauge_value g)

let test_metrics_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 1.0; 10.0; 100.0 |] m "lat" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 5.0; 100.0; 1000.0 ];
  Alcotest.(check int) "count" 5 (Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 1106.5 (Metrics.hist_sum h);
  (* le(1)=2 (0.5 and the boundary 1.0), le(10)=1, le(100)=1, overflow=1 *)
  Alcotest.(check (array int)) "bucket counts" [| 2; 1; 1; 1 |] (Metrics.hist_counts h);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics.counter: \"lat\" registered with another kind")
    (fun () -> ignore (Metrics.counter m "lat"));
  Alcotest.(check bool) "non-increasing buckets rejected" true
    (try ignore (Metrics.histogram ~buckets:[| 2.0; 2.0 |] m "bad"); false
     with Invalid_argument _ -> true)

let test_metrics_names_sorted () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "zeta");
  ignore (Metrics.gauge m "alpha");
  ignore (Metrics.histogram m "mid");
  Alcotest.(check (list string)) "sorted" [ "alpha"; "mid"; "zeta" ] (Metrics.names m)

(* ------------------------------------------------------------------ *)
(* Audit                                                               *)
(* ------------------------------------------------------------------ *)

let test_audit_basics () =
  let a = Audit.create () in
  Audit.observe a ~party:"party-b" ~phase:"p" ~label:"k" (Audit.Int 3);
  Audit.observe a ~party:"party-b" ~phase:"p" ~label:"ms" (Audit.Int64s [| 5L; 1L |]);
  Audit.observe a ~party:"party-a" ~phase:"q" ~label:"bytes" (Audit.Int 100);
  Audit.observe a ~party:"party-b" ~phase:"p2" ~label:"k" (Audit.Int 7);
  Alcotest.(check int) "entry count" 4 (List.length (Audit.entries a));
  Alcotest.(check (list string)) "labels sorted + deduped" [ "k"; "ms" ]
    (Audit.labels_for a ~party:"party-b");
  (match Audit.value_of a ~party:"party-b" ~label:"k" with
   | Some (Audit.Int v) -> Alcotest.(check int) "latest wins" 7 v
   | _ -> Alcotest.fail "expected Int");
  Alcotest.(check bool) "missing is None" true
    (Audit.value_of a ~party:"client" ~label:"k" = None);
  Alcotest.(check int) "for_party filters" 1
    (List.length (Audit.for_party a ~party:"party-a"))

(* ------------------------------------------------------------------ *)
(* Ctx                                                                 *)
(* ------------------------------------------------------------------ *)

let test_ctx_disabled () =
  let obs = Ctx.disabled in
  Alcotest.(check bool) "disabled" true (Ctx.is_disabled obs);
  Alcotest.(check int) "with_span passthrough" 9 (Ctx.with_span obs "x" (fun () -> 9));
  Alcotest.(check int) "with_pool_chunks passthrough" 8
    (Ctx.with_pool_chunks obs (fun () -> 8));
  Ctx.observe_phase obs "p" 1.0;
  Ctx.audit obs ~party:"a" ~phase:"p" ~label:"l" (Audit.Int 1);
  Alcotest.(check int) "no trace roots" 0 (List.length (Trace.roots (Ctx.trace obs)))

let test_ctx_pool_chunks () =
  let trace = Trace.create () in
  let m = Metrics.create () in
  let obs = Ctx.create ~trace ~metrics:m () in
  (* Each element does enough arithmetic for its chunk's busy time to
     register at the timer's microsecond resolution; instant chunks can
     measure 0.0s and make the utilization gauge flaky. *)
  let work x =
    let acc = ref 0 in
    for i = 1 to 50_000 do
      acc := !acc lxor (i * x)
    done;
    ignore (Sys.opaque_identity !acc);
    x * 2
  in
  let out =
    Ctx.with_span obs "stage" (fun () ->
        Ctx.with_pool_chunks obs ~label:"work" (fun () ->
            Util.Pool.map ~jobs:3 work (Array.init 9 succ)))
  in
  Alcotest.(check (array int)) "result unchanged"
    (Array.init 9 (fun i -> 2 * (i + 1))) out;
  (match Trace.roots trace with
   | [ stage ] ->
     Alcotest.(check (list string)) "chunk spans in worker order"
       [ "work[0,3)"; "work[3,6)"; "work[6,9)" ]
       (List.map (fun s -> s.Trace.name) stage.Trace.children)
   | _ -> Alcotest.fail "expected one root span");
  Alcotest.(check int) "chunk latencies recorded" 3
    (Metrics.hist_count (Metrics.histogram m "pool.work.chunk_seconds"));
  (match Metrics.gauge_value (Metrics.gauge m "pool.work.utilization") with
   | Some u -> Alcotest.(check bool) "utilization in (0, 1.5]" true (u > 0.0 && u <= 1.5)
   | None -> Alcotest.fail "utilization gauge unset")

let () =
  Alcotest.run "obs"
    [ ("trace",
       [ Alcotest.test_case "disabled passthrough" `Quick test_trace_disabled_passthrough;
         Alcotest.test_case "nesting" `Quick test_trace_nesting;
         Alcotest.test_case "counter deltas" `Quick test_trace_counter_deltas;
         Alcotest.test_case "span survives raise" `Quick test_trace_span_survives_raise ]);
      ("sinks",
       [ Alcotest.test_case "chrome JSON" `Quick test_sink_chrome;
         Alcotest.test_case "jsonl lines" `Quick test_sink_jsonl;
         Alcotest.test_case "pretty + formats" `Quick test_sink_pretty_and_format_names ]);
      ("determinism",
       [ Alcotest.test_case "span tree across jobs" `Quick test_span_tree_jobs_determinism;
         Alcotest.test_case "chunk partition" `Quick test_chunk_spans_partition ]);
      ("metrics",
       [ Alcotest.test_case "counter + gauge" `Quick test_metrics_counter_gauge;
         Alcotest.test_case "histogram" `Quick test_metrics_histogram;
         Alcotest.test_case "names sorted" `Quick test_metrics_names_sorted ]);
      ("audit", [ Alcotest.test_case "basics" `Quick test_audit_basics ]);
      ("ctx",
       [ Alcotest.test_case "disabled" `Quick test_ctx_disabled;
         Alcotest.test_case "pool chunks" `Quick test_ctx_pool_chunks ]) ]
