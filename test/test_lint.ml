(* The sknn-lint golden corpus: every rule must provably fire on its
   bad_*.ml fixture, the three allow granularities must silence the
   same shapes in allowed_ok.ml, and the rendered report must be
   byte-stable across runs (the lint output is part of CI). *)

let fixture_dir = "lint_fixtures"

let run_fixtures () = Lint_driver.run_path fixture_dir

let base_file (d : Lint_rules.diagnostic) = Filename.basename d.Lint_rules.file

let rule_hits outcome rule file =
  List.length
    (List.filter
       (fun d -> d.Lint_rules.rule = rule && base_file d = file)
       outcome.Lint_driver.diagnostics)

(* (rule, fixture, expected diagnostic count) — the corpus is golden:
   a rule that stops firing, or fires extra, fails here. *)
let expected =
  [ (Lint_config.No_division, "bad_division.ml", 5);
    (Lint_config.Secret_taint, "bad_taint.ml", 3);
    (Lint_config.Orchestrator_only_obs, "bad_obs_in_pool.ml", 2);
    (Lint_config.No_ambient_nondeterminism, "bad_nondeterminism.ml", 5);
    (Lint_config.No_ambient_nondeterminism, "bad_wallclock.ml", 3);
    (Lint_config.Into_aliasing, "bad_into_aliasing.ml", 5);
    (Lint_config.Ledger_at_op_site, "bad_ledger.ml", 5);
    (Lint_config.Secret_flow, "bad_flow_cross_fn.ml", 1);
    (Lint_config.Secret_flow, "bad_flow_field.ml", 1);
    (Lint_config.Constant_time, "bad_ct_branch.ml", 2);
    (Lint_config.Constant_time, "bad_ct_index.ml", 2);
    (Lint_config.Unused_allow, "bad_stale_allow.ml", 1) ]

let test_every_rule_fires () =
  let outcome = run_fixtures () in
  Alcotest.(check (list string)) "no parse errors" [] outcome.Lint_driver.errors;
  List.iter
    (fun (rule, file, count) ->
      Alcotest.(check int)
        (Printf.sprintf "%s diagnostics in %s" (Lint_config.rule_name rule) file)
        count
        (rule_hits outcome rule file))
    expected

let test_cross_contamination () =
  (* Each fixture trips exactly its own rule: catching bad_division's
     operators under secret-taint (or vice versa) would mean the rules
     are not independent. *)
  let outcome = run_fixtures () in
  List.iter
    (fun d ->
      match
        List.find_opt (fun (_, file, _) -> base_file d = file) expected
      with
      | Some (rule, file, _) ->
        Alcotest.(check string)
          (Printf.sprintf "rule firing in %s" file)
          (Lint_config.rule_name rule)
          (Lint_config.rule_name d.Lint_rules.rule)
      | None -> ())
    outcome.Lint_driver.diagnostics

let test_allow_granularities () =
  let outcome = run_fixtures () in
  let in_allowed =
    List.filter (fun d -> base_file d = "allowed_ok.ml") outcome.Lint_driver.diagnostics
  in
  Alcotest.(check int)
    "allowed_ok.ml diagnostics (floating/binding/expression allows + allow-label)"
    0 (List.length in_allowed)

let test_flow_reports_full_path () =
  (* The acceptance bar for the interprocedural engine: a finding names
     the whole source→sink chain, not just the sink. *)
  let outcome = run_fixtures () in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let msg_of file rule =
    match
      List.find_opt
        (fun (d : Lint_rules.diagnostic) ->
          base_file d = file && d.Lint_rules.rule = rule)
        outcome.Lint_driver.diagnostics
    with
    | Some d -> d.Lint_rules.message
    | None -> Alcotest.failf "no %s diagnostic in %s" (Lint_config.rule_name rule) file
  in
  let cross = msg_of "bad_flow_cross_fn.ml" Lint_config.Secret_flow in
  List.iter
    (fun hop -> Alcotest.(check bool) ("cross-fn trace has " ^ hop) true (contains cross hop))
    [ "secret root \"sk\""; "Bad_flow_cross_fn.reveal"; "Bad_flow_cross_fn.emit";
      "sink Printf.printf" ];
  let field = msg_of "bad_flow_field.ml" Lint_config.Secret_flow in
  List.iter
    (fun hop -> Alcotest.(check bool) ("field trace has " ^ hop) true (contains field hop))
    [ "secret root \"sk\""; "field payload"; "Bad_flow_field.pack";
      "Bad_flow_field.out"; "sink Transcript.send" ]

let render outcome = Format.asprintf "%a" Lint_driver.pp_outcome outcome

let test_output_byte_stable () =
  let a = render (run_fixtures ()) in
  let b = render (run_fixtures ()) in
  Alcotest.(check string) "two runs render identically" a b;
  (* Diagnostics arrive sorted by file, line, column: CI diffs of the
     lint report must be positional, never ordering noise. *)
  let outcome = run_fixtures () in
  let keys =
    List.map
      (fun (d : Lint_rules.diagnostic) ->
        (d.Lint_rules.file, d.Lint_rules.line, d.Lint_rules.col))
      (List.sort Lint_rules.compare_diagnostic outcome.Lint_driver.diagnostics)
  in
  Alcotest.(check bool) "sorted keys are weakly increasing" true
    (List.for_all2
       (fun a b -> a <= b)
       (List.filteri (fun i _ -> i < List.length keys - 1) keys)
       (List.tl keys))

let test_sarif_valid_and_stable () =
  (* SARIF is the CI upload format: it must be well-formed JSON and
     byte-identical across repeated runs and across --jobs levels. *)
  let sarif_at jobs = Lint_driver.sarif (Lint_driver.run_paths ~jobs [ fixture_dir ]) in
  let s1 = sarif_at 1 in
  Alcotest.(check bool) "sarif parses as JSON" true (Sarif.json_valid s1);
  Alcotest.(check bool) "sarif mentions a ruleId" true
    (let needle = "\"ruleId\":\"secret-flow\"" in
     let lh = String.length s1 and ln = String.length needle in
     let rec go i = i + ln <= lh && (String.sub s1 i ln = needle || go (i + 1)) in
     go 0);
  Alcotest.(check string) "identical across runs" s1 (sarif_at 1);
  Alcotest.(check string) "identical under --jobs 2" s1 (sarif_at 2);
  Alcotest.(check string) "identical under --jobs 4" s1 (sarif_at 4);
  let report_at jobs =
    Format.asprintf "%a" Lint_driver.pp_outcome
      (Lint_driver.run_paths ~jobs [ fixture_dir ])
  in
  Alcotest.(check string) "text report identical under --jobs" (report_at 1) (report_at 3)

let test_clean_file_is_ok () =
  let outcome =
    Lint_driver.run_file ~config:Lint_config.base "lint_fixtures/allowed_ok.ml"
  in
  Alcotest.(check bool) "ok outcome" true (Lint_driver.ok outcome)

let test_parse_error_reported () =
  let path = Filename.temp_file ~temp_dir:"." "sknn_lint_broken" ".ml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "let = ;; mismatched (";
      close_out oc;
      let outcome = Lint_driver.run_file ~config:Lint_config.base path in
      Alcotest.(check int) "counted as a file" 1 outcome.Lint_driver.files;
      Alcotest.(check bool) "reported as error" true
        (outcome.Lint_driver.errors <> []);
      Alcotest.(check bool) "not ok" false (Lint_driver.ok outcome))

let test_config_rule_names_roundtrip () =
  List.iter
    (fun r ->
      match Lint_config.rule_of_name (Lint_config.rule_name r) with
      | Some r' ->
        Alcotest.(check string) "roundtrip" (Lint_config.rule_name r)
          (Lint_config.rule_name r')
      | None -> Alcotest.failf "rule %s does not roundtrip" (Lint_config.rule_name r))
    Lint_config.all_rules

let test_config_rejects_typos () =
  let raises lines =
    match Lint_config.of_lines lines with
    | (_ : Lint_config.t) -> false
    | exception Lint_config.Bad_config _ -> true
  in
  Alcotest.(check bool) "unknown rule" true (raises [ "enable not-a-rule" ]);
  Alcotest.(check bool) "unknown directive" true (raises [ "frobnicate" ]);
  Alcotest.(check bool) "missing argument" true (raises [ "allow-label" ]);
  (* Hard errors carry the offending line number and the set of valid
     rule names, so a conf typo is diagnosable from the CI log alone. *)
  (match Lint_config.of_lines [ "# preamble"; "enable not-a-rule" ] with
   | (_ : Lint_config.t) -> Alcotest.fail "typo accepted"
   | exception Lint_config.Bad_config msg ->
     let contains needle =
       let lh = String.length msg and ln = String.length needle in
       let rec go i = i + ln <= lh && (String.sub msg i ln = needle || go (i + 1)) in
       go 0
     in
     Alcotest.(check bool) "message carries line number" true (contains "line 2");
     Alcotest.(check bool) "message lists valid rules" true (contains "secret-flow");
     Alcotest.(check bool) "message lists valid rules (ct)" true
       (contains "constant-time"));
  (* Comments and blanks are inert; knobs land in the profile. *)
  let c =
    Lint_config.of_lines
      [ "# comment"; ""; "enable no-division"; "taint-root beta"; "allow-label n" ]
  in
  Alcotest.(check bool) "enable applied" true
    (Lint_config.is_enabled c Lint_config.No_division);
  Alcotest.(check bool) "taint root added" true
    (List.mem "beta" c.Lint_config.taint_roots);
  Alcotest.(check bool) "label allowed" true
    (List.mem "n" c.Lint_config.allowed_labels)

let test_disable_silences_rule () =
  let config =
    Lint_config.of_lines
      [ "enable no-division"; "disable no-division"; "disable into-aliasing";
        "disable orchestrator-only-obs"; "disable no-ambient-nondeterminism" ]
  in
  let outcome = Lint_driver.run_file ~config "lint_fixtures/bad_division.ml" in
  Alcotest.(check int) "disabled rule reports nothing" 0
    (List.length outcome.Lint_driver.diagnostics)

let () =
  Alcotest.run "lint"
    [ ( "corpus",
        [ Alcotest.test_case "every rule fires on its fixture" `Quick
            test_every_rule_fires;
          Alcotest.test_case "rules fire only on their own fixture" `Quick
            test_cross_contamination;
          Alcotest.test_case "allow granularities silence everything" `Quick
            test_allow_granularities;
          Alcotest.test_case "flow findings carry the full path" `Quick
            test_flow_reports_full_path
        ] );
      ( "driver",
        [ Alcotest.test_case "report is byte-stable" `Quick test_output_byte_stable;
          Alcotest.test_case "sarif is valid JSON and jobs-stable" `Quick
            test_sarif_valid_and_stable;
          Alcotest.test_case "clean file is ok" `Quick test_clean_file_is_ok;
          Alcotest.test_case "parse errors are reported" `Quick
            test_parse_error_reported
        ] );
      ( "config",
        [ Alcotest.test_case "rule names roundtrip" `Quick
            test_config_rule_names_roundtrip;
          Alcotest.test_case "typos are rejected" `Quick test_config_rejects_typos;
          Alcotest.test_case "disable silences a rule" `Quick
            test_disable_silences_rule
        ] )
    ]
