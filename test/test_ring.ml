(* Tests for the RLWE ring substrate: CRT lifting, RNS polynomial
   arithmetic, Galois substitution and the samplers. *)

module Rng = Util.Rng
module Z = Zint

let n = 64

let moduli =
  Prime64.ntt_primes ~congruent_mod:(Int64.of_int (2 * n)) ~bits:28 ~count:4
  |> List.map Int64.to_int
  |> Array.of_list

let ctx = Rq.context ~n ~moduli

let random_rq ?(nprimes = 4) seed =
  Sampler.uniform (Rng.of_int seed) ctx ~nprimes

let check_eq msg a b = Alcotest.(check bool) msg true (Rq.equal a b)

(* ------------------------------------------------------------------ *)
(* Crt                                                                 *)
(* ------------------------------------------------------------------ *)

let test_crt_roundtrip () =
  let b = Crt.make moduli in
  let rng = Rng.of_int 1 in
  Alcotest.(check (array int)) "primes accessor" moduli (Crt.primes b);
  for _ = 1 to 200 do
    let x = Z.random_below rng (Crt.modulus b) in
    let lifted = Crt.lift b (Crt.reduce b x) in
    Alcotest.(check string) "lift . reduce = id" (Z.to_string x) (Z.to_string lifted)
  done

let test_crt_centered () =
  let b = Crt.make moduli in
  let q = Crt.modulus b in
  let half = Z.shift_right q 1 in
  let rng = Rng.of_int 2 in
  for _ = 1 to 100 do
    let x = Z.random_below rng q in
    let c = Crt.lift_centered b (Crt.reduce b x) in
    Alcotest.(check bool) "centered range" true
      (Z.compare c half <= 0 && Z.compare (Z.neg half) c <= 0);
    Alcotest.(check string) "congruent" (Z.to_string x) (Z.to_string (Z.erem c q))
  done;
  (* Negative inputs reduce correctly. *)
  let r = Crt.reduce b (Z.of_int (-5)) in
  Alcotest.(check string) "negative reduce" "-5" (Z.to_string (Crt.lift_centered b r))

let test_crt_validation () =
  Alcotest.check_raises "empty basis" (Invalid_argument "Crt.make: empty basis")
    (fun () -> ignore (Crt.make [||]));
  let b = Crt.make moduli in
  Alcotest.check_raises "length mismatch" (Invalid_argument "Crt.lift: length mismatch")
    (fun () -> ignore (Crt.lift b [| 1 |]))

(* ------------------------------------------------------------------ *)
(* Rq ring axioms                                                      *)
(* ------------------------------------------------------------------ *)

let test_ring_axioms () =
  let a = random_rq 3 and b = random_rq 4 and c = random_rq 5 in
  check_eq "add commutative" (Rq.add a b) (Rq.add b a);
  check_eq "add associative" (Rq.add (Rq.add a b) c) (Rq.add a (Rq.add b c));
  check_eq "mul commutative" (Rq.mul a b) (Rq.mul b a);
  check_eq "mul associative" (Rq.mul (Rq.mul a b) c) (Rq.mul a (Rq.mul b c));
  check_eq "distributive" (Rq.mul a (Rq.add b c)) (Rq.add (Rq.mul a b) (Rq.mul a c));
  let zero = Rq.zero ctx ~nprimes:4 Rq.Eval in
  check_eq "additive identity" a (Rq.add a zero);
  check_eq "additive inverse" zero (Rq.add a (Rq.neg a));
  check_eq "a - b = a + (-b)" (Rq.sub a b) (Rq.add a (Rq.neg b));
  let one = Rq.constant ctx ~nprimes:4 Rq.Eval 1L in
  check_eq "multiplicative identity" a (Rq.mul a one)

let test_domain_conversions () =
  let a = random_rq 6 in
  check_eq "eval -> coeff -> eval" a (Rq.to_eval (Rq.to_coeff a));
  Alcotest.(check bool) "domains tracked" true
    (Rq.domain (Rq.to_coeff a) = Rq.Coeff && Rq.domain (Rq.to_eval a) = Rq.Eval)

let test_coeff_embeddings_agree () =
  let rng = Rng.of_int 7 in
  let small = Array.init n (fun _ -> Rng.int_range rng (-100) 100) in
  let via_small = Rq.of_small_coeffs ctx ~nprimes:4 Rq.Coeff small in
  let via_int64 =
    Rq.of_int64_coeffs ctx ~nprimes:4 Rq.Coeff (Array.map Int64.of_int small)
  in
  let via_zint = Rq.of_zint_coeffs ctx ~nprimes:4 Rq.Coeff (Array.map Z.of_int small) in
  check_eq "small = int64" via_small via_int64;
  check_eq "small = zint" via_small via_zint;
  (* Round-trip through exact coefficients (centered). *)
  let back = Rq.to_zint_coeffs via_small in
  Array.iteri
    (fun i v -> Alcotest.(check int) "coeff roundtrip" small.(i) (Z.to_int_exn v))
    back

let test_scalar_ops () =
  let a = random_rq 8 in
  check_eq "scalar 3 = a+a+a" (Rq.mul_scalar a 3L) (Rq.add a (Rq.add a a));
  check_eq "scalar via zint" (Rq.mul_scalar a 12345L) (Rq.mul_scalar_zint a (Z.of_int 12345));
  (* A scalar beyond 64 bits wraps consistently with Zint reduction. *)
  let big = Z.pow (Z.of_int 2) 100 in
  let q = Rq.modulus ctx ~nprimes:4 in
  check_eq "big scalar reduces mod q"
    (Rq.mul_scalar_zint a big)
    (Rq.mul_scalar_zint a (Z.erem big q))

let test_truncate_level () =
  let a = random_rq 9 in
  let t = Rq.truncate a ~nprimes:2 in
  Alcotest.(check int) "nprimes" 2 (Rq.nprimes t);
  (* The truncation keeps the residues of the first primes. *)
  Alcotest.(check (array int)) "component preserved" (Rq.component a 0) (Rq.component t 0);
  Alcotest.check_raises "cannot extend" (Invalid_argument "Rq.truncate: bad nprimes")
    (fun () -> ignore (Rq.truncate t ~nprimes:3))

let test_substitute () =
  (* x -> x^3 on the polynomial x gives x^3; applying the inverse
     automorphism undoes it. *)
  let coeffs = Array.make n 0 in
  coeffs.(1) <- 1;
  let x = Rq.of_small_coeffs ctx ~nprimes:4 Rq.Coeff coeffs in
  let x3 = Rq.substitute x ~k:3 in
  let expected = Array.make n 0 in
  expected.(3) <- 1;
  check_eq "x^3" (Rq.of_small_coeffs ctx ~nprimes:4 Rq.Coeff expected) x3;
  (* k * k_inv = 1 mod 2n => substitution composes to identity. *)
  let k_inv = Int64.to_int (Mod64.inv (Int64.of_int (2 * n)) 3L) in
  let a = random_rq 10 in
  check_eq "inverse substitution" (Rq.to_eval (Rq.substitute (Rq.substitute a ~k:3) ~k:k_inv))
    a;
  (* Substitution is a ring homomorphism. *)
  let b = random_rq 11 in
  check_eq "hom over mul"
    (Rq.to_eval (Rq.substitute (Rq.mul a b) ~k:5))
    (Rq.mul (Rq.to_eval (Rq.substitute a ~k:5)) (Rq.to_eval (Rq.substitute b ~k:5)));
  Alcotest.check_raises "even k" (Invalid_argument "Rq.substitute: k must be odd")
    (fun () -> ignore (Rq.substitute a ~k:2))

let test_into_variants_match_pure () =
  (* The destructive variants promise bit-identical results to the pure
     counterparts; they only drop the allocation. *)
  let a = Rq.to_eval (random_rq 15) and b = Rq.to_eval (random_rq 16) in
  let fresh x = Rq.add x (Rq.zero ctx ~nprimes:4 Rq.Eval) in
  let acc = fresh a in
  Rq.add_into acc b;
  check_eq "add_into = add" (Rq.add a b) acc;
  let acc = fresh a in
  Rq.sub_into acc b;
  check_eq "sub_into = sub" (Rq.sub a b) acc;
  let dst = Rq.zero ctx ~nprimes:4 Rq.Eval in
  Rq.mul_into dst a b;
  check_eq "mul_into = mul" (Rq.mul a b) dst;
  (* Documented aliasing case: dst may be an Eval operand. *)
  let acc = fresh a in
  Rq.mul_into acc acc b;
  check_eq "mul_into aliased dst" (Rq.mul a b) acc;
  let acc = Rq.zero ctx ~nprimes:4 Rq.Eval in
  Rq.mul_add_into acc a b;
  Rq.mul_add_into acc a b;
  check_eq "mul_add_into accumulates"
    (Rq.add (Rq.mul a b) (Rq.mul a b)) acc;
  let c = Rq.to_coeff (fresh a) in
  let e = Rq.to_eval_into c in
  Alcotest.(check bool) "to_eval_into tags Eval" true (Rq.domain e = Rq.Eval);
  check_eq "to_eval_into = to_eval" (Rq.to_eval a) e

(* ------------------------------------------------------------------ *)
(* Samplers                                                            *)
(* ------------------------------------------------------------------ *)

let test_ternary_sampler () =
  let rng = Rng.of_int 12 in
  let counts = Array.make 3 0 in
  for _ = 1 to 100 do
    Array.iter
      (fun v ->
        Alcotest.(check bool) "ternary range" true (v >= -1 && v <= 1);
        counts.(v + 1) <- counts.(v + 1) + 1)
      (Sampler.ternary_coeffs rng ~n)
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "value %d appears fairly" (i - 1)) true
        (c > 1600 && c < 2700))
    counts

let test_cbd_sampler () =
  let rng = Rng.of_int 13 in
  let eta = 3 in
  let sum = ref 0 and total = ref 0 in
  for _ = 1 to 200 do
    Array.iter
      (fun v ->
        Alcotest.(check bool) "cbd range" true (abs v <= eta);
        sum := !sum + v;
        incr total)
      (Sampler.cbd_coeffs rng ~n ~eta)
  done;
  let mean = float_of_int !sum /. float_of_int !total in
  Alcotest.(check bool) "centered" true (Float.abs mean < 0.1)

let test_uniform_sampler_range () =
  let u = random_rq 14 in
  for i = 0 to 3 do
    Array.iter
      (fun v -> Alcotest.(check bool) "residue range" true (v >= 0 && v < moduli.(i)))
      (Rq.component u i)
  done

let prop_mul_matches_zint_convolution =
  (* RNS/NTT multiplication agrees with exact negacyclic convolution
     over the integers followed by reduction. *)
  QCheck.Test.make ~count:30 ~name:"Rq.mul = exact negacyclic conv mod q"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.of_int seed in
      let small () = Array.init n (fun _ -> Rng.int_range rng (-50) 50) in
      let a = small () and b = small () in
      let exact = Array.make n Z.zero in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let p = Z.of_int (a.(i) * b.(j)) in
          let k = i + j in
          if k < n then exact.(k) <- Z.add exact.(k) p
          else exact.(k - n) <- Z.sub exact.(k - n) p
        done
      done;
      let via_rq =
        Rq.mul
          (Rq.of_small_coeffs ctx ~nprimes:4 Rq.Eval a)
          (Rq.of_small_coeffs ctx ~nprimes:4 Rq.Eval b)
      in
      Rq.equal via_rq (Rq.of_zint_coeffs ctx ~nprimes:4 Rq.Eval exact))

let () =
  Alcotest.run "ring"
    [ ("crt",
       [ Alcotest.test_case "roundtrip" `Quick test_crt_roundtrip;
         Alcotest.test_case "centered" `Quick test_crt_centered;
         Alcotest.test_case "validation" `Quick test_crt_validation ]);
      ("rq",
       [ Alcotest.test_case "ring axioms" `Quick test_ring_axioms;
         Alcotest.test_case "domain conversions" `Quick test_domain_conversions;
         Alcotest.test_case "coefficient embeddings" `Quick test_coeff_embeddings_agree;
         Alcotest.test_case "scalar ops" `Quick test_scalar_ops;
         Alcotest.test_case "truncate" `Quick test_truncate_level;
         Alcotest.test_case "substitute" `Quick test_substitute;
         Alcotest.test_case "destructive variants" `Quick test_into_variants_match_pure ]);
      ("samplers",
       [ Alcotest.test_case "ternary" `Quick test_ternary_sampler;
         Alcotest.test_case "cbd" `Quick test_cbd_sampler;
         Alcotest.test_case "uniform range" `Quick test_uniform_sampler_range ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest [ prop_mul_matches_zint_convolution ]) ]
