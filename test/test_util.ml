(* Tests for the shared substrate: deterministic RNG, permutations,
   counters, timing and float matrices. *)

module Rng = Util.Rng
module Perm = Util.Perm
module Counters = Util.Counters
module Matf = Util.Matf
module Topk = Util.Topk

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.of_int 42 and b = Rng.of_int 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_copy_vs_split () =
  let a = Rng.of_int 7 in
  let c = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 c);
  let a = Rng.of_int 7 in
  let s = Rng.split a in
  Alcotest.(check bool) "split diverges" true (Rng.bits64 a <> Rng.bits64 s)

let test_rng_ranges () =
  let r = Rng.of_int 11 in
  for _ = 1 to 1000 do
    let v = Rng.int_below r 17 in
    Alcotest.(check bool) "int_below" true (v >= 0 && v < 17);
    let v = Rng.int_range r (-5) 5 in
    Alcotest.(check bool) "int_range" true (v >= -5 && v <= 5);
    let f = Rng.float r in
    Alcotest.(check bool) "float" true (f >= 0.0 && f < 1.0)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int_below: bound <= 0")
    (fun () -> ignore (Rng.int_below r 0))

let test_rng_int64_below_uniformish () =
  (* Coarse uniformity: each of 8 buckets within 30% of the mean. *)
  let r = Rng.of_int 13 in
  let buckets = Array.make 8 0 in
  let samples = 16000 in
  for _ = 1 to samples do
    let v = Rng.int64_below r 8L in
    buckets.(Int64.to_int v) <- buckets.(Int64.to_int v) + 1
  done;
  let mean = samples / 8 in
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "bucket %d balanced (%d)" i c) true
        (abs (c - mean) < mean * 3 / 10))
    buckets

let test_rng_gaussian_moments () =
  let r = Rng.of_int 17 in
  let n = 20000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.gaussian r ~mu:10.0 ~sigma:2.0 in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check (float 0.1)) "mean" 10.0 mean;
  Alcotest.(check (float 0.3)) "variance" 4.0 var

let test_rng_bytes () =
  let r = Rng.of_int 19 in
  let b = Rng.bytes r 100 in
  Alcotest.(check int) "length" 100 (Bytes.length b);
  Alcotest.(check bool) "not all equal" true
    (let first = Bytes.get b 0 in
     not (String.for_all (Char.equal first) (Bytes.to_string b)))

(* ------------------------------------------------------------------ *)
(* Perm                                                                *)
(* ------------------------------------------------------------------ *)

let test_perm_identity () =
  let p = Perm.identity 5 in
  Alcotest.(check int) "size" 5 (Perm.size p);
  Alcotest.(check (array int)) "apply id" [| 10; 20; 30; 40; 50 |]
    (Perm.apply p [| 10; 20; 30; 40; 50 |])

let test_perm_random_bijection () =
  let rng = Rng.of_int 23 in
  for n = 1 to 30 do
    let p = Perm.random rng n in
    ignore (Perm.of_array (Perm.to_array p)) (* validates bijectivity *)
  done

let test_perm_apply_inverse () =
  let rng = Rng.of_int 29 in
  for _ = 1 to 50 do
    let n = 1 + Rng.int_below rng 40 in
    let p = Perm.random rng n in
    let a = Array.init n (fun i -> i * 3) in
    let roundtrip = Perm.apply (Perm.inverse p) (Perm.apply p a) in
    Alcotest.(check (array int)) "inverse undoes" a roundtrip
  done

let test_perm_apply_semantics () =
  (* apply places element i at position p(i). *)
  let p = Perm.of_array [| 2; 0; 1 |] in
  Alcotest.(check (array int)) "placement" [| 20; 30; 10 |]
    (Perm.apply p [| 10; 20; 30 |]);
  Alcotest.(check int) "apply_index" 2 (Perm.apply_index p 0)

let test_perm_compose () =
  let rng = Rng.of_int 31 in
  let p = Perm.random rng 12 and q = Perm.random rng 12 in
  let a = Array.init 12 (fun i -> i) in
  Alcotest.(check (array int)) "compose = sequential apply"
    (Perm.apply p (Perm.apply q a))
    (Perm.apply (Perm.compose p q) a)

let test_perm_validation () =
  Alcotest.check_raises "not a bijection" (Invalid_argument "Perm.of_array: not a bijection")
    (fun () -> ignore (Perm.of_array [| 0; 0 |]));
  Alcotest.check_raises "out of range" (Invalid_argument "Perm.of_array: not a bijection")
    (fun () -> ignore (Perm.of_array [| 0; 5 |]));
  Alcotest.check_raises "size mismatch" (Invalid_argument "Perm.apply: size mismatch")
    (fun () -> ignore (Perm.apply (Perm.identity 3) [| 1 |]))

let test_perm_uniformity () =
  (* Over many draws of S_3, each of the 6 permutations appears. *)
  let rng = Rng.of_int 37 in
  let seen = Hashtbl.create 6 in
  for _ = 1 to 600 do
    Hashtbl.replace seen (Perm.to_array (Perm.random rng 3)) ()
  done;
  Alcotest.(check int) "all of S_3 reached" 6 (Hashtbl.length seen)

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Topk                                                                *)
(* ------------------------------------------------------------------ *)

(* Literal transcription of Algorithm 2's streaming scan (the code the
   heap replaced): seed NN with the first k values, then replace the
   running maximum — the first maximum found, scanning left to right —
   on strict improvement.  Topk.smallest must reproduce its slot table
   bit for bit, ties and all. *)
let naive_smallest ~k xs =
  let nn = Array.sub xs 0 k in
  let idx = Array.init k (fun i -> i) in
  for i = k to Array.length xs - 1 do
    let mx = ref 0 in
    for j = 1 to k - 1 do
      if Int64.compare nn.(j) nn.(!mx) > 0 then mx := j
    done;
    if Int64.compare xs.(i) nn.(!mx) < 0 then begin
      nn.(!mx) <- xs.(i);
      idx.(!mx) <- i
    end
  done;
  idx

let test_topk_edges () =
  let check name ~k xs =
    Alcotest.(check (array int)) name (naive_smallest ~k xs) (Topk.smallest ~k xs)
  in
  check "k=1 ascending" ~k:1 [| 5L; 4L; 3L; 2L; 1L |];
  check "k=n" ~k:5 [| 5L; 4L; 3L; 2L; 1L |];
  check "all equal" ~k:3 [| 7L; 7L; 7L; 7L; 7L; 7L |];
  check "descending" ~k:4 [| 9L; 8L; 7L; 6L; 5L; 4L; 3L |];
  check "negative values" ~k:2 [| 0L; -3L; 5L; -3L; 2L |];
  check "singleton" ~k:1 [| 42L |]

let prop_topk_matches_naive ~name gen_value =
  QCheck.Test.make ~count:1000 ~name
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 80))
    (fun (seed, n) ->
      let rng = Rng.of_int seed in
      let k = 1 + Rng.int_below rng n in
      let xs = Array.init n (fun _ -> gen_value rng) in
      Topk.smallest ~k xs = naive_smallest ~k xs)

let prop_topk_ties =
  (* Values drawn from {0..4}: duplicates everywhere, so any divergence
     in tie or eviction order from the naive scan shows up here. *)
  prop_topk_matches_naive ~name:"Topk = naive scan (heavy ties)" (fun rng ->
      Int64.of_int (Rng.int_below rng 5))

let prop_topk_wide =
  prop_topk_matches_naive ~name:"Topk = naive scan (wide range)" (fun rng ->
      Int64.sub (Rng.int64_below rng 2_000_000L) 1_000_000L)

let test_topk_validation () =
  Alcotest.check_raises "k=0" (Invalid_argument "Topk.smallest: k out of range")
    (fun () -> ignore (Topk.smallest ~k:0 [| 1L |]));
  Alcotest.check_raises "k>n" (Invalid_argument "Topk.smallest: k out of range")
    (fun () -> ignore (Topk.smallest ~k:2 [| 1L |]))

let test_counters_record_and_merge () =
  let c = Counters.create () in
  Counters.record c Counters.Encrypt;
  Counters.record c Counters.Decrypt;
  Counters.record c Counters.Hom_add;
  Counters.record c Counters.Hom_mul;
  Counters.record c Counters.Hom_mul_plain;
  Counters.record c Counters.Hom_modswitch;
  Counters.record c Counters.Hom_relin;
  Counters.record c Counters.Round;
  Counters.record c (Counters.Bytes_sent 100);
  Alcotest.(check int) "hom_total" 5 (Counters.hom_total c);
  Alcotest.(check int) "bytes" 100 (Counters.bytes_sent c);
  Alcotest.(check int) "rounds" 1 (Counters.rounds c);
  let d = Counters.merge c c in
  Alcotest.(check int) "merge doubles" 10 (Counters.hom_total d);
  Alcotest.(check int) "merge source intact" 5 (Counters.hom_total c);
  Counters.reset c;
  Alcotest.(check int) "reset" 0 (Counters.hom_total c + Counters.encryptions c)

let test_counters_copy_diff () =
  let c = Counters.create () in
  Counters.record c Counters.Encrypt;
  Counters.record c (Counters.Bytes_sent 64);
  let snap = Counters.copy c in
  Counters.record c Counters.Encrypt;
  Counters.record c Counters.Hom_mul;
  Counters.record c (Counters.Bytes_sent 36);
  Alcotest.(check int) "snapshot unaffected" 1 (Counters.encryptions snap);
  let d = Counters.diff c snap in
  Alcotest.(check int) "delta encryptions" 1 (Counters.encryptions d);
  Alcotest.(check int) "delta muls" 1 (Counters.hom_muls d);
  Alcotest.(check int) "delta bytes" 36 (Counters.bytes_sent d);
  Alcotest.(check bool) "delta nonzero" false (Counters.is_zero d);
  Alcotest.(check bool) "self-diff zero" true (Counters.is_zero (Counters.diff c c));
  Alcotest.(check bool) "fresh is zero" true (Counters.is_zero (Counters.create ()))

let test_counters_to_list () =
  let c = Counters.create () in
  Counters.record_n c Counters.Hom_add 3;
  Counters.record c (Counters.Bytes_sent 9);
  let l = Counters.to_list c in
  Alcotest.(check int) "field count" 9 (List.length l);
  Alcotest.(check int) "hom_adds" 3 (List.assoc "hom_adds" l);
  Alcotest.(check int) "bytes_sent" 9 (List.assoc "bytes_sent" l);
  Alcotest.(check int) "untouched field" 0 (List.assoc "decryptions" l)

let test_timer () =
  let x, dt = Util.Timer.time (fun () -> 42) in
  Alcotest.(check int) "result" 42 x;
  Alcotest.(check bool) "non-negative" true (dt >= 0.0);
  let s d = Format.asprintf "%a" Util.Timer.pp_duration d in
  Alcotest.(check string) "ms" "500 ms" (s 0.5);
  Alcotest.(check string) "s" "45.0 s" (s 45.0);
  Alcotest.(check string) "min" "2 min 45 s" (s 165.0);
  (* Sub-millisecond durations get their own tier instead of "0 ms". *)
  Alcotest.(check string) "µs" "390 µs" (s 0.00039);
  Alcotest.(check string) "µs edge" "999 µs" (s 0.000999)

let test_timer_counter_monotonic () =
  let prev = ref (Util.Timer.counter ()) in
  for _ = 1 to 1000 do
    let t = Util.Timer.counter () in
    Alcotest.(check bool) "non-decreasing" true (t >= !prev);
    prev := t
  done

(* ------------------------------------------------------------------ *)
(* Matf                                                                *)
(* ------------------------------------------------------------------ *)

let test_matf_basics () =
  let a = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check (pair int int)) "dims" (2, 2) (Matf.dims a);
  let t = Matf.transpose a in
  Alcotest.(check (float 0.0)) "transpose" 3.0 t.(0).(1);
  let prod = Matf.mul a (Matf.identity 2) in
  Alcotest.(check (float 1e-12)) "mul identity" 0.0 (Matf.max_abs_diff prod a);
  Alcotest.(check (float 1e-12)) "dot" 11.0 (Matf.dot [| 1.0; 2.0 |] [| 3.0; 4.0 |])

let test_matf_inverse () =
  let rng = Rng.of_int 41 in
  for n = 1 to 8 do
    let m = Matf.random rng n in
    let err = Matf.max_abs_diff (Matf.mul m (Matf.inverse m)) (Matf.identity n) in
    Alcotest.(check bool) (Printf.sprintf "n=%d inverse" n) true (err < 1e-6)
  done;
  Alcotest.(check bool) "singular raises" true
    (try ignore (Matf.inverse [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |]); false
     with Failure _ -> true)

let test_matf_solve () =
  let m = [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Matf.solve m [| 5.0; 10.0 |] in
  Alcotest.(check (float 1e-9)) "x0" 1.0 x.(0);
  Alcotest.(check (float 1e-9)) "x1" 3.0 x.(1)

let prop_matf_mulvec_linear =
  QCheck.Test.make ~count:100 ~name:"M(u+v) = Mu + Mv"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.of_int seed in
      let n = 1 + Rng.int_below rng 6 in
      let m = Matf.random rng n in
      let u = Array.init n (fun _ -> Rng.float rng) in
      let v = Array.init n (fun _ -> Rng.float rng) in
      let lhs = Matf.mul_vec m (Array.init n (fun i -> u.(i) +. v.(i))) in
      let mu = Matf.mul_vec m u and mv = Matf.mul_vec m v in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) lhs
        (Array.init n (fun i -> mu.(i) +. mv.(i))))

let () =
  Alcotest.run "util"
    [ ("rng",
       [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
         Alcotest.test_case "copy vs split" `Quick test_rng_copy_vs_split;
         Alcotest.test_case "ranges" `Quick test_rng_ranges;
         Alcotest.test_case "uniformity" `Quick test_rng_int64_below_uniformish;
         Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
         Alcotest.test_case "bytes" `Quick test_rng_bytes ]);
      ("perm",
       [ Alcotest.test_case "identity" `Quick test_perm_identity;
         Alcotest.test_case "random bijection" `Quick test_perm_random_bijection;
         Alcotest.test_case "inverse" `Quick test_perm_apply_inverse;
         Alcotest.test_case "apply semantics" `Quick test_perm_apply_semantics;
         Alcotest.test_case "compose" `Quick test_perm_compose;
         Alcotest.test_case "validation" `Quick test_perm_validation;
         Alcotest.test_case "covers S_3" `Quick test_perm_uniformity ]);
      ("counters",
       [ Alcotest.test_case "record/merge/reset" `Quick test_counters_record_and_merge;
         Alcotest.test_case "copy/diff/is_zero" `Quick test_counters_copy_diff;
         Alcotest.test_case "to_list" `Quick test_counters_to_list;
         Alcotest.test_case "timer" `Quick test_timer;
         Alcotest.test_case "timer counter" `Quick test_timer_counter_monotonic ]);
      ("topk",
       [ Alcotest.test_case "edge cases vs naive" `Quick test_topk_edges;
         Alcotest.test_case "validation" `Quick test_topk_validation ]);
      ("matf",
       [ Alcotest.test_case "basics" `Quick test_matf_basics;
         Alcotest.test_case "inverse" `Quick test_matf_inverse;
         Alcotest.test_case "solve" `Quick test_matf_solve ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_matf_mulvec_linear; prop_topk_ties; prop_topk_wide ]) ]
