(* Tests for the secure k-NN protocol itself: masking soundness, config
   validation, end-to-end exactness in both layouts, the paper's leakage
   profile, and the Table 1 cost model. *)

module Rng = Util.Rng

(* ------------------------------------------------------------------ *)
(* Masking                                                             *)
(* ------------------------------------------------------------------ *)

let t50 = 1125899906842597L (* a ~2^50 prime *)

let test_masking_envelope () =
  (* Paper-style setting: ~2^40 plaintext space, 16-bit distances. *)
  let c = Masking.max_coeff_bits ~t_plain:1099511627689L ~input_bits:16 ~degree:2 in
  Alcotest.(check bool) "some budget at degree 2" true (c >= 1 && c <= 8);
  Alcotest.(check int) "degree 9 impossible (paper's example overflows)" 0
    (Masking.max_coeff_bits ~t_plain:1099511627689L ~input_bits:16 ~degree:9);
  let c1 = Masking.max_coeff_bits ~t_plain:t50 ~input_bits:21 ~degree:1 in
  Alcotest.(check bool) "affine budget generous" true (c1 >= 25)

let test_masking_draw_and_eval () =
  let rng = Rng.of_int 31 in
  let m = Masking.draw rng ~t_plain:t50 ~input_bits:16 ~degree:2 () in
  Alcotest.(check int) "degree" 2 (Masking.degree m);
  Array.iter
    (fun a -> Alcotest.(check bool) "coeff positive" true (Int64.compare a 0L > 0))
    (Masking.coeffs m);
  Alcotest.(check bool) "monotone" true (Masking.is_monotone_on m ~max_input:65535L);
  (* Exact vs modular evaluation agree inside the envelope. *)
  for _ = 1 to 200 do
    let x = Rng.int64_below rng 65536L in
    Alcotest.(check int64) "eval = eval_mod" (Masking.eval m x)
      (Masking.eval_mod m ~t_plain:t50 x)
  done

let test_masking_rejects_unsound () =
  let rng = Rng.of_int 37 in
  Alcotest.(check bool) "rejects impossible degree" true
    (try
       ignore (Masking.draw rng ~t_plain:1099511627689L ~input_bits:30 ~degree:5 ());
       false
     with Invalid_argument _ -> true)

let prop_masking_order_preserving =
  QCheck.Test.make ~count:200 ~name:"mask preserves strict order"
    QCheck.(triple (int_range 0 65535) (int_range 0 65535) (int_range 0 10000))
    (fun (x, y, seed) ->
      let rng = Rng.of_int seed in
      let m = Masking.draw rng ~t_plain:t50 ~input_bits:16 ~degree:2 () in
      let mx = Masking.eval m (Int64.of_int x) and my = Masking.eval m (Int64.of_int y) in
      compare x y = Int64.compare mx my)

let prop_masking_fresh_each_draw =
  QCheck.Test.make ~count:50 ~name:"distinct seeds give distinct masks"
    QCheck.(pair (int_range 0 100000) (int_range 100001 200000))
    (fun (s1, s2) ->
      let m1 = Masking.draw (Rng.of_int s1) ~t_plain:t50 ~input_bits:16 ~degree:2 () in
      let m2 = Masking.draw (Rng.of_int s2) ~t_plain:t50 ~input_bits:16 ~degree:2 () in
      Masking.coeffs m1 <> Masking.coeffs m2)

(* ------------------------------------------------------------------ *)
(* Config                                                              *)
(* ------------------------------------------------------------------ *)

let test_config_presets_valid () =
  List.iter
    (fun (name, config) ->
      match Config.validate config ~d:10 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s invalid: %s" name e)
    [ ("standard", Config.standard ()); ("fast", Config.fast ()) ]

let test_config_envelope_rejection () =
  let config = Config.with_mask_degree 9 (Config.standard ()) in
  (match Config.validate config ~d:32 with
   | Ok () -> Alcotest.fail "degree-9 mask on 21-bit distances should be rejected"
   | Error _ -> ());
  let config = Config.with_mask_degree 2 (Config.fast ()) in
  (match Config.validate config ~d:4 with
   | Ok () -> Alcotest.fail "dot-product layout must force affine masks"
   | Error _ -> ())

let test_config_distance_bits () =
  let config = Config.standard () in
  (* 8-bit coords, d=2: max distance 2*255^2 = 130050 needs 17 bits. *)
  Alcotest.(check int) "distance bits" 17 (Config.max_distance_bits config ~d:2)

(* ------------------------------------------------------------------ *)
(* End-to-end protocol                                                 *)
(* ------------------------------------------------------------------ *)

let run_protocol ?(seed = 42) ?(k = 3) config db queries =
  let rng = Rng.of_int seed in
  let dep = Protocol.deploy ~rng config ~db in
  List.map
    (fun q ->
      let r = Protocol.query dep ~query:q ~k in
      (q, r, Protocol.exact dep ~db ~query:q r))
    queries

let small_db rng = Synthetic.uniform rng ~n:40 ~d:3 ~max_value:250

let test_exactness layout_name config () =
  let rng = Rng.of_int 101 in
  let db = small_db rng in
  let queries = List.init 4 (fun _ -> Synthetic.query_like rng db) in
  List.iteri
    (fun i (_, _, ok) ->
      Alcotest.(check bool) (Printf.sprintf "%s query %d exact" layout_name i) true ok)
    (run_protocol config db queries)

let test_k_edge_cases () =
  let rng = Rng.of_int 103 in
  let db = Synthetic.uniform rng ~n:12 ~d:2 ~max_value:100 in
  let dep = Protocol.deploy ~rng (Config.fast ()) ~db in
  let q = Synthetic.query_like rng db in
  List.iter
    (fun k ->
      let r = Protocol.query dep ~query:q ~k in
      Alcotest.(check int) (Printf.sprintf "k=%d count" k) k (Array.length r.Protocol.neighbours);
      Alcotest.(check bool) (Printf.sprintf "k=%d exact" k) true
        (Protocol.exact dep ~db ~query:q r))
    [ 1; 2; 11; 12 ];
  Alcotest.check_raises "k=0" (Invalid_argument "Protocol.query: k out of range")
    (fun () -> ignore (Protocol.query dep ~query:q ~k:0));
  Alcotest.check_raises "k>n" (Invalid_argument "Protocol.query: k out of range")
    (fun () -> ignore (Protocol.query dep ~query:q ~k:13))

let test_duplicates_and_ties () =
  (* Duplicate points and equidistant points: the distance multiset must
     still be exact. *)
  let db =
    [| [| 5; 5 |]; [| 5; 5 |]; [| 0; 0 |]; [| 10; 10 |]; [| 0; 10 |]; [| 10; 0 |];
       [| 5; 5 |]; [| 7; 7 |] |]
  in
  let dep = Protocol.deploy ~rng:(Rng.of_int 7) (Config.standard ()) ~db in
  let q = [| 5; 5 |] in
  List.iter
    (fun k ->
      let r = Protocol.query dep ~query:q ~k in
      Alcotest.(check bool) (Printf.sprintf "ties k=%d" k) true
        (Protocol.exact dep ~db ~query:q r))
    [ 1; 2; 3; 4; 5; 8 ]

let test_query_on_db_point () =
  let rng = Rng.of_int 107 in
  let db = small_db rng in
  let dep = Protocol.deploy ~rng (Config.fast ()) ~db in
  let q = Array.copy db.(17) in
  let r = Protocol.query dep ~query:q ~k:1 in
  Alcotest.(check bool) "self is nearest" true (Protocol.exact dep ~db ~query:q r);
  Alcotest.(check (array int)) "returns the point itself" db.(17) r.Protocol.neighbours.(0)

let test_dimension_1_and_high () =
  let rng = Rng.of_int 109 in
  List.iter
    (fun d ->
      let db = Synthetic.uniform rng ~n:20 ~d ~max_value:200 in
      let dep = Protocol.deploy ~rng (Config.standard ()) ~db in
      let q = Synthetic.query_like rng db in
      let r = Protocol.query dep ~query:q ~k:3 in
      Alcotest.(check bool) (Printf.sprintf "d=%d exact" d) true
        (Protocol.exact dep ~db ~query:q r))
    [ 1; 2; 16; 32 ]

let test_uci_shaped_workload () =
  let rng = Rng.of_int 113 in
  let raw = Uci_like.cervical_cancer ~n:60 rng in
  let db = Preprocess.scale_to_max ~max_value:255 raw in
  let dep = Protocol.deploy ~rng (Config.standard ()) ~db in
  let q = Synthetic.query_like rng db in
  let r = Protocol.query dep ~query:q ~k:8 in
  Alcotest.(check bool) "cancer-shaped exact" true (Protocol.exact dep ~db ~query:q r)

let test_validation_errors () =
  let rng = Rng.of_int 127 in
  let db = small_db rng in
  let dep = Protocol.deploy ~rng (Config.fast ()) ~db in
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Protocol.query: dimension mismatch")
    (fun () -> ignore (Protocol.query dep ~query:[| 1; 2 |] ~k:1));
  Alcotest.(check bool) "out-of-range data rejected" true
    (try
       ignore (Protocol.deploy ~rng (Config.fast ()) ~db:[| [| 1; 99999 |] |]);
       false
     with Invalid_argument _ -> true)

let test_transcript_structure () =
  let rng = Rng.of_int 131 in
  let db = small_db rng in
  let dep = Protocol.deploy ~rng (Config.standard ()) ~db in
  let q = Synthetic.query_like rng db in
  let r = Protocol.query dep ~query:q ~k:4 in
  let tr = r.Protocol.transcript in
  (* The headline claim: ONE round of A<->B communication. *)
  Alcotest.(check int) "one A<->B round" 1
    (Transcript.rounds tr Transcript.Party_a Transcript.Party_b);
  Alcotest.(check bool) "A->B bytes positive" true
    (Transcript.bytes_between tr Transcript.Party_a Transcript.Party_b > 0);
  (* 1 query + 1 distance msg + k indicator rows + 1 result = k + 3. *)
  Alcotest.(check int) "message count" (4 + 3) (Transcript.messages tr);
  (* Setup transcript covers key and database distribution. *)
  Alcotest.(check int) "setup messages" 4 (Transcript.messages (Protocol.setup_transcript dep))

let test_phase_times_present () =
  let rng = Rng.of_int 137 in
  let db = small_db rng in
  let dep = Protocol.deploy ~rng (Config.fast ()) ~db in
  let r = Protocol.query dep ~query:(Synthetic.query_like rng db) ~k:2 in
  let names = List.map fst r.Protocol.phase_seconds in
  Alcotest.(check (list string)) "phases"
    [ "encrypt-query"; "compute-distances"; "find-neighbours"; "return-knn"; "decrypt-result" ]
    names;
  Alcotest.(check bool) "total positive" true (Protocol.total_seconds r > 0.0)

let test_deterministic_given_seed () =
  let db = small_db (Rng.of_int 139) in
  let q = [| 10; 20; 30 |] in
  let run () =
    let dep = Protocol.deploy ~rng:(Rng.of_int 999) (Config.fast ()) ~db in
    let r = Protocol.query ~rng:(Rng.of_int 1000) dep ~query:q ~k:3 in
    (r.Protocol.neighbours, r.Protocol.view_b.Entities.Party_b.masked_distances)
  in
  let n1, v1 = run () and n2, v2 = run () in
  Alcotest.(check bool) "same neighbours" true (n1 = n2);
  Alcotest.(check bool) "same view" true (v1 = v2)

let test_jobs_determinism () =
  (* The parallel phases must be a pure scheduling change: the protocol
     run at 1 domain and at 4 domains returns identical neighbours,
     moves identical bytes, and records identical operation counts. *)
  let db = small_db (Rng.of_int 141) in
  let q = [| 10; 20; 30 |] in
  let run jobs config =
    let dep = Protocol.deploy ~rng:(Rng.of_int 999) ~jobs config ~db in
    Protocol.query ~rng:(Rng.of_int 1000) dep ~query:q ~k:3
  in
  let counters_s c = Format.asprintf "%a" Util.Counters.pp c in
  List.iter
    (fun (name, config) ->
      let r1 = run 1 config and r4 = run 4 config in
      Alcotest.(check bool) (name ^ ": same neighbours") true
        (r1.Protocol.neighbours = r4.Protocol.neighbours);
      Alcotest.(check bool) (name ^ ": same view") true
        (r1.Protocol.view_b = r4.Protocol.view_b);
      Alcotest.(check int) (name ^ ": same message count")
        (Transcript.messages r1.Protocol.transcript)
        (Transcript.messages r4.Protocol.transcript);
      Alcotest.(check int) (name ^ ": same transcript bytes")
        (Transcript.total_bytes r1.Protocol.transcript)
        (Transcript.total_bytes r4.Protocol.transcript);
      Alcotest.(check string) (name ^ ": party A counters")
        (counters_s r1.Protocol.counters_a) (counters_s r4.Protocol.counters_a);
      Alcotest.(check string) (name ^ ": party B counters")
        (counters_s r1.Protocol.counters_b) (counters_s r4.Protocol.counters_b);
      Alcotest.(check string) (name ^ ": client counters")
        (counters_s r1.Protocol.counters_client) (counters_s r4.Protocol.counters_client))
    [ ("dot-product", Config.fast ()); ("per-coordinate", Config.standard ()) ]

(* ------------------------------------------------------------------ *)
(* Prepared multi-query path                                           *)
(* ------------------------------------------------------------------ *)

(* The per-coordinate preset with the affine mask the prepared path
   requires; coordinates and dimensions in these tests stay within the
   degree-1 masking envelope. *)
let affine_config () = Config.with_mask_degree 1 (Config.standard ())

let has_phase name r = List.mem_assoc name r.Protocol.phase_seconds

let test_prepared_exactness () =
  let rng = Rng.of_int 167 in
  let db = small_db rng in
  List.iter
    (fun (name, config) ->
      let dep = Protocol.deploy ~rng:(Rng.of_int 168) config ~db in
      let queries = Array.init 3 (fun _ -> Synthetic.query_like rng db) in
      Array.iteri
        (fun i q ->
          let r = Protocol.query_prepared dep ~query:q ~k:4 in
          Alcotest.(check bool)
            (Printf.sprintf "%s: query %d exact" name i)
            true
            (Protocol.exact dep ~db ~query:q r);
          (* Only the first prepared query pays (and reports) the
             database preparation. *)
          Alcotest.(check bool)
            (Printf.sprintf "%s: query %d prepare-db phase" name i)
            (i = 0) (has_phase "prepare-db" r))
        queries)
    [ ("per-coordinate+affine", affine_config ()); ("dot-product", Config.fast ()) ]

let test_prepared_matches_unprepared () =
  (* The prepared path changes the computation plan, not the answer:
     against the same deployment both paths return the same neighbour
     set. *)
  let rng = Rng.of_int 169 in
  let db = small_db rng in
  let q = Synthetic.query_like rng db in
  let dep = Protocol.deploy ~rng:(Rng.of_int 170) (affine_config ()) ~db in
  let r_plain = Protocol.query ~rng:(Rng.of_int 171) dep ~query:q ~k:5 in
  let r_prep = Protocol.query_prepared ~rng:(Rng.of_int 172) dep ~query:q ~k:5 in
  let sorted r =
    let a = Array.map (Distance.squared_euclidean q) r.Protocol.neighbours in
    Array.sort compare a;
    a
  in
  Alcotest.(check (array int)) "same neighbour distances" (sorted r_plain)
    (sorted r_prep);
  (* Two ciphertexts instead of d: the prepared query message is
     strictly smaller for d > 2. *)
  let q_bytes r =
    List.assoc "encrypted query"
      (List.filter_map
         (fun (e : Transcript.entry) -> Some (e.Transcript.label, e.Transcript.bytes))
         (Transcript.entries r.Protocol.transcript))
  in
  Alcotest.(check bool) "smaller query message" true
    (q_bytes r_prep < q_bytes r_plain)

let test_prepared_jobs_determinism () =
  (* Same scheduling-transparency contract as the unprepared path:
     identical neighbours, views, transcripts and counters for every
     job count. *)
  let db = small_db (Rng.of_int 173) in
  let q = [| 10; 20; 30 |] in
  let run jobs config =
    let dep = Protocol.deploy ~rng:(Rng.of_int 999) ~jobs config ~db in
    Protocol.query_prepared ~rng:(Rng.of_int 1000) dep ~query:q ~k:3
  in
  let counters_s c = Format.asprintf "%a" Util.Counters.pp c in
  List.iter
    (fun (name, config) ->
      let r1 = run 1 config and r2 = run 2 config and r4 = run 4 config in
      List.iter
        (fun (jn, r) ->
          Alcotest.(check bool) (name ^ ": neighbours jobs 1=" ^ jn) true
            (r1.Protocol.neighbours = r.Protocol.neighbours);
          Alcotest.(check bool) (name ^ ": view jobs 1=" ^ jn) true
            (r1.Protocol.view_b = r.Protocol.view_b);
          Alcotest.(check int) (name ^ ": transcript bytes jobs 1=" ^ jn)
            (Transcript.total_bytes r1.Protocol.transcript)
            (Transcript.total_bytes r.Protocol.transcript);
          Alcotest.(check string) (name ^ ": party A counters jobs 1=" ^ jn)
            (counters_s r1.Protocol.counters_a) (counters_s r.Protocol.counters_a);
          Alcotest.(check string) (name ^ ": party B counters jobs 1=" ^ jn)
            (counters_s r1.Protocol.counters_b) (counters_s r.Protocol.counters_b))
        [ ("2", r2); ("4", r4) ])
    [ ("dot-product", Config.fast ()); ("per-coordinate+affine", affine_config ()) ]

let test_prepared_rejects_nonaffine () =
  (* Config.standard masks with degree 2; the inner-product trick leaves
     cross terms that only an affine mask keeps sound, so the prepared
     path must refuse. *)
  let rng = Rng.of_int 179 in
  let db = small_db rng in
  let dep = Protocol.deploy ~rng (Config.standard ()) ~db in
  Alcotest.check_raises "degree-2 mask rejected"
    (Invalid_argument "Party_a.prepare: prepared queries need affine (degree-1) masking")
    (fun () -> Protocol.prepare dep)

let test_run_queries_batch () =
  let rng = Rng.of_int 181 in
  let db = small_db rng in
  let dep = Protocol.deploy ~rng:(Rng.of_int 182) (affine_config ()) ~db in
  Alcotest.(check bool) "not prepared before" false (Protocol.is_prepared dep);
  let queries = Array.init 4 (fun _ -> Synthetic.query_like rng db) in
  let results = Protocol.run_queries ~rng:(Rng.of_int 183) dep ~queries ~k:3 in
  Alcotest.(check bool) "prepared after" true (Protocol.is_prepared dep);
  Array.iteri
    (fun i r ->
      Alcotest.(check bool) (Printf.sprintf "batch query %d exact" i) true
        (Protocol.exact dep ~db ~query:queries.(i) r))
    results;
  Alcotest.(check bool) "first pays prepare-db" true (has_phase "prepare-db" results.(0));
  Alcotest.(check bool) "later queries steady-state" false
    (Array.exists (has_phase "prepare-db") (Array.sub results 1 3))

(* ------------------------------------------------------------------ *)
(* Slot-packed (SIMD) path                                             *)
(* ------------------------------------------------------------------ *)

let sorted_dists q r =
  let a = Array.map (Distance.squared_euclidean q) r.Protocol.neighbours in
  Array.sort compare a;
  a

let test_packed_exactness () =
  let rng = Rng.of_int 401 in
  let db = small_db rng in
  List.iter
    (fun (name, config) ->
      let dep = Protocol.deploy ~rng:(Rng.of_int 402) config ~db in
      let queries = Array.init 3 (fun _ -> Synthetic.query_like rng db) in
      Array.iteri
        (fun i q ->
          let r = Protocol.query_packed dep ~query:q ~k:4 in
          Alcotest.(check bool)
            (Printf.sprintf "%s: query %d exact" name i)
            true
            (Protocol.exact dep ~db ~query:q r);
          (* Only the first packed query pays (and reports) the packing. *)
          Alcotest.(check bool)
            (Printf.sprintf "%s: query %d prepare-db phase" name i)
            (i = 0) (has_phase "prepare-db" r))
        queries)
    [ ("per-coordinate+affine", affine_config ()); ("dot-product", Config.fast ()) ]

let test_packed_matches_unpacked () =
  (* The packed path changes the ciphertext layout, not the answer:
     against the same deployment, the plain, prepared and packed paths
     return the same neighbour set — and Party B sees the same
     equidistant structure (slot-unpacked, never per-ciphertext). *)
  let rng = Rng.of_int 403 in
  let db = small_db rng in
  let q = Synthetic.query_like rng db in
  let dep = Protocol.deploy ~rng:(Rng.of_int 404) (affine_config ()) ~db in
  let r_plain = Protocol.query ~rng:(Rng.of_int 405) dep ~query:q ~k:5 in
  let r_prep = Protocol.query_prepared ~rng:(Rng.of_int 406) dep ~query:q ~k:5 in
  let r_packed = Protocol.query_packed ~rng:(Rng.of_int 407) dep ~query:q ~k:5 in
  Alcotest.(check (array int)) "packed = plain neighbour distances"
    (sorted_dists q r_plain) (sorted_dists q r_packed);
  Alcotest.(check (array int)) "packed = prepared neighbour distances"
    (sorted_dists q r_prep) (sorted_dists q r_packed);
  Alcotest.(check (array int)) "same equidistant groups as plain path"
    (Leakage.equidistant_group_sizes r_plain.Protocol.view_b)
    (Leakage.equidistant_group_sizes r_packed.Protocol.view_b);
  (* n masked distances, not ⌈n/N⌉ per-ciphertext aggregates. *)
  Alcotest.(check int) "view has one masked distance per point"
    (Array.length db)
    (Array.length (Leakage.view_multiset r_packed.Protocol.view_b))

let test_packed_batch_shapes () =
  (* Exactness across batch geometries: a single ragged batch
     (n < slots), an exact multiple of the slot count, and a multi-batch
     ragged tail (n mod slots ≠ 0), at several dimensions d > 1. *)
  let slots = Params.slot_count (Config.fast ()).Config.bgv in
  List.iter
    (fun (n, d) ->
      let rng = Rng.of_int (409 + n + d) in
      let db = Synthetic.uniform rng ~n ~d ~max_value:250 in
      let dep = Protocol.deploy ~rng:(Rng.of_int 410) (Config.fast ()) ~db in
      let q = Synthetic.query_like rng db in
      let r = Protocol.query_packed ~rng:(Rng.of_int 411) dep ~query:q ~k:4 in
      let label = Printf.sprintf "n=%d d=%d" n d in
      Alcotest.(check bool) (label ^ " exact") true
        (Protocol.exact dep ~db ~query:q r);
      let r_plain = Protocol.query ~rng:(Rng.of_int 412) dep ~query:q ~k:4 in
      Alcotest.(check (array int)) (label ^ " matches plain path")
        (sorted_dists q r_plain) (sorted_dists q r))
    [ (40, 3); (slots, 2); ((2 * slots) + 2, 5) ]

let test_packed_jobs_determinism () =
  (* Same scheduling-transparency contract as the other paths: identical
     neighbours, views, transcripts and counters for every job count. *)
  let db = small_db (Rng.of_int 413) in
  let q = [| 10; 20; 30 |] in
  let run jobs config =
    let dep = Protocol.deploy ~rng:(Rng.of_int 999) ~jobs config ~db in
    Protocol.query_packed ~rng:(Rng.of_int 1000) dep ~query:q ~k:3
  in
  let counters_s c = Format.asprintf "%a" Util.Counters.pp c in
  List.iter
    (fun (name, config) ->
      let r1 = run 1 config and r2 = run 2 config and r4 = run 4 config in
      List.iter
        (fun (jn, r) ->
          Alcotest.(check bool) (name ^ ": neighbours jobs 1=" ^ jn) true
            (r1.Protocol.neighbours = r.Protocol.neighbours);
          Alcotest.(check bool) (name ^ ": view jobs 1=" ^ jn) true
            (r1.Protocol.view_b = r.Protocol.view_b);
          Alcotest.(check int) (name ^ ": transcript bytes jobs 1=" ^ jn)
            (Transcript.total_bytes r1.Protocol.transcript)
            (Transcript.total_bytes r.Protocol.transcript);
          Alcotest.(check string) (name ^ ": party A counters jobs 1=" ^ jn)
            (counters_s r1.Protocol.counters_a) (counters_s r.Protocol.counters_a);
          Alcotest.(check string) (name ^ ": party B counters jobs 1=" ^ jn)
            (counters_s r1.Protocol.counters_b) (counters_s r.Protocol.counters_b))
        [ ("2", r2); ("4", r4) ])
    [ ("dot-product", Config.fast ()); ("per-coordinate+affine", affine_config ()) ]

let test_packed_rejects_nonaffine () =
  (* Slot-wise masking is one plain product + one plain add per batch —
     only sound for an affine (degree-1) polynomial, so the packed path
     must refuse a degree-2 config just as the prepared path does. *)
  let rng = Rng.of_int 419 in
  let db = small_db rng in
  let dep = Protocol.deploy ~rng (Config.standard ()) ~db in
  Alcotest.check_raises "degree-2 mask rejected"
    (Invalid_argument "Party_a.prepare_packed: packed queries need affine (degree-1) masking")
    (fun () -> Protocol.prepare_packed dep)

let test_run_queries_packed () =
  let rng = Rng.of_int 421 in
  let db = small_db rng in
  let dep = Protocol.deploy ~rng:(Rng.of_int 422) (affine_config ()) ~db in
  Alcotest.(check bool) "not packed-prepared before" false
    (Protocol.is_packed_prepared dep);
  let queries = Array.init 4 (fun _ -> Synthetic.query_like rng db) in
  let results = Protocol.run_queries_packed ~rng:(Rng.of_int 423) dep ~queries ~k:3 in
  Alcotest.(check bool) "packed-prepared after" true (Protocol.is_packed_prepared dep);
  Array.iteri
    (fun i r ->
      Alcotest.(check bool) (Printf.sprintf "packed query %d exact" i) true
        (Protocol.exact dep ~db ~query:queries.(i) r))
    results;
  Alcotest.(check bool) "first pays prepare-db" true (has_phase "prepare-db" results.(0));
  Alcotest.(check bool) "later queries steady-state" false
    (Array.exists (has_phase "prepare-db") (Array.sub results 1 3))

let test_packed_leakage_groups () =
  (* Regression for the equidistant-group accounting: the tie database
     occupies 6 slots of a 64-slot ciphertext, so Party B's Leakage
     extraction must run on the 6 slot-unpacked distances — never on the
     single per-ciphertext aggregate, and never on the randomized dead
     slots of the ragged tail. *)
  let tie_dep rng_seed =
    Protocol.deploy ~rng:(Rng.of_int rng_seed) (affine_config ())
      ~db:[| [| 0; 0 |]; [| 0; 4 |]; [| 4; 0 |]; [| 4; 4 |]; [| 9; 9 |]; [| 2; 1 |] |]
  in
  let q = [| 2; 2 |] in
  let r_packed = Protocol.query_packed (tie_dep 425) ~query:q ~k:2 in
  Alcotest.(check (array int)) "group of four equidistant points" [| 4 |]
    (Leakage.equidistant_group_sizes r_packed.Protocol.view_b);
  Alcotest.(check int) "pairs" 6 (Leakage.equidistant_pairs r_packed.Protocol.view_b);
  Alcotest.(check int) "view sees n distances, not ciphertext aggregates" 6
    (Array.length (Leakage.view_multiset r_packed.Protocol.view_b));
  let r_plain = Protocol.query (tie_dep 426) ~query:q ~k:2 in
  Alcotest.(check (array int)) "identical group sizes to unpacked run"
    (Leakage.equidistant_group_sizes r_plain.Protocol.view_b)
    (Leakage.equidistant_group_sizes r_packed.Protocol.view_b)

let test_packed_audit_surface () =
  (* §5 leakage surface through the audit channel: the packed path must
     record exactly the same Party B labels as the unpacked paths. *)
  let module Audit = Sknn_obs.Audit in
  let rng = Rng.of_int 427 in
  let db = Synthetic.uniform rng ~n:20 ~d:3 ~max_value:100 in
  let audit = Audit.create () in
  let obs = Sknn_obs.Ctx.create ~audit () in
  let dep = Protocol.deploy ~rng (affine_config ()) ~db in
  let q = Synthetic.query_like rng db in
  let r = Protocol.query_packed ~obs dep ~query:q ~k:4 in
  Alcotest.(check (list string)) "party-b leakage surface unchanged"
    [ "equidistant-group-sizes"; "k"; "masked-distance-multiset"; "n" ]
    (Audit.labels_for audit ~party:"party-b");
  (match Audit.value_of audit ~party:"party-b" ~label:"masked-distance-multiset" with
   | Some (Audit.Int64s a) ->
     Alcotest.(check (array int64)) "multiset matches view"
       (Leakage.view_multiset r.Protocol.view_b) a;
     Alcotest.(check int) "multiset is slot-unpacked (n entries)" 20 (Array.length a)
   | _ -> Alcotest.fail "multiset not recorded as Int64s");
  (match Audit.value_of audit ~party:"party-b" ~label:"equidistant-group-sizes" with
   | Some (Audit.Ints a) ->
     Alcotest.(check (array int)) "groups match view"
       (Leakage.equidistant_group_sizes r.Protocol.view_b) a
   | _ -> Alcotest.fail "groups not recorded as Ints")

let test_query_batch () =
  (* M queries ride the slot dimension of one protocol round.  Each
     result must be exact, and the batch's one extra declared leakage —
     the shared permutation, audited as batch-query-count — must be the
     only new Party B label (lockstep with sknn-lint.conf). *)
  let module Audit = Sknn_obs.Audit in
  let rng = Rng.of_int 431 in
  let db = small_db rng in
  let audit = Audit.create () in
  let obs = Sknn_obs.Ctx.create ~audit () in
  let dep = Protocol.deploy ~rng:(Rng.of_int 432) (affine_config ()) ~db in
  let queries = Array.init 3 (fun _ -> Synthetic.query_like rng db) in
  let results = Protocol.query_batch ~obs ~rng:(Rng.of_int 433) dep ~queries ~k:3 in
  Alcotest.(check int) "one result per query" 3 (Array.length results);
  Array.iteri
    (fun i r ->
      Alcotest.(check bool) (Printf.sprintf "batched query %d exact" i) true
        (Protocol.exact dep ~db ~query:queries.(i) r);
      (* Per-query views over a shared round. *)
      Alcotest.(check int) "view sees n distances"
        (Array.length db)
        (Array.length (Leakage.view_multiset r.Protocol.view_b)))
    results;
  Alcotest.(check (list string)) "batch adds exactly batch-query-count"
    [ "batch-query-count"; "equidistant-group-sizes"; "k"; "masked-distance-multiset";
      "n" ]
    (Audit.labels_for audit ~party:"party-b");
  (match Audit.value_of audit ~party:"party-b" ~label:"batch-query-count" with
   | Some (Audit.Int m) -> Alcotest.(check int) "batch count" 3 m
   | _ -> Alcotest.fail "batch-query-count not recorded as Int");
  (* Distinct queries in the same round stay independent: masked views
     differ even though they share one permutation. *)
  Alcotest.(check bool) "per-query masks differ" true
    (Leakage.view_multiset results.(0).Protocol.view_b
     <> Leakage.view_multiset results.(1).Protocol.view_b)

(* ------------------------------------------------------------------ *)
(* Leakage profile (Theorems 4.1 / 4.2)                                *)
(* ------------------------------------------------------------------ *)

let tie_db =
  [| [| 0; 0 |]; [| 0; 4 |]; [| 4; 0 |]; [| 4; 4 |]; [| 9; 9 |]; [| 2; 1 |] |]

let test_leakage_order_preserved () =
  let rng = Rng.of_int 149 in
  let db = small_db rng in
  let dep = Protocol.deploy ~rng (Config.standard ()) ~db in
  let q = Synthetic.query_like rng db in
  let r = Protocol.query dep ~query:q ~k:3 in
  let true_dists = Plain_knn.distances ~query:q db in
  Alcotest.(check bool) "masked view order-isomorphic to true distances" true
    (Leakage.recovers_true_order r.Protocol.view_b true_dists);
  Alcotest.(check bool) "mask hides raw values" true
    (Leakage.mask_hides_values r.Protocol.view_b true_dists)

let test_leakage_equidistant_groups () =
  (* Query at the centre of a square: 4 equidistant points, visible to B
     as one group of 4 — the leakage Theorem 4.2 admits. *)
  let dep = Protocol.deploy ~rng:(Rng.of_int 151) (Config.standard ()) ~db:tie_db in
  let q = [| 2; 2 |] in
  let r = Protocol.query dep ~query:q ~k:2 in
  Alcotest.(check (array int)) "group of four equidistant points" [| 4 |]
    (Leakage.equidistant_group_sizes r.Protocol.view_b);
  Alcotest.(check int) "pairs" 6 (Leakage.equidistant_pairs r.Protocol.view_b)

let test_leakage_view_database_independent () =
  (* Two different databases with identical distance multisets for their
     queries must give Party B views with identical *shape* (sorted rank
     pattern), demonstrating the view depends only on the multiset.
     Masked values differ (fresh polynomial), which is the point. *)
  let db1 = [| [| 0; 0 |]; [| 3; 0 |]; [| 0; 4 |] |] in
  (* distances from (0,0): 0, 9, 16 *)
  let db2 = [| [| 10; 10 |]; [| 10; 13 |]; [| 14; 10 |] |] in
  (* distances from (10,10): 0, 9, 16 — same multiset *)
  let view db q =
    let dep = Protocol.deploy ~rng:(Rng.of_int 157) (Config.standard ()) ~db in
    let r = Protocol.query ~rng:(Rng.of_int 158) dep ~query:q ~k:1 in
    r.Protocol.view_b
  in
  let v1 = view db1 [| 0; 0 |] and v2 = view db2 [| 10; 10 |] in
  (* Same protocol randomness, same distance multiset => identical views:
     B cannot distinguish the two databases. *)
  Alcotest.(check (array int64)) "identical views" (Leakage.view_multiset v1)
    (Leakage.view_multiset v2)

let test_leakage_fresh_mask_across_queries () =
  (* The same query twice gives different masked values (search-pattern
     hiding): the polynomial and permutation are refreshed per query. *)
  let rng = Rng.of_int 163 in
  let db = small_db rng in
  let dep = Protocol.deploy ~rng (Config.standard ()) ~db in
  let q = Synthetic.query_like rng db in
  let r1 = Protocol.query dep ~query:q ~k:2 in
  let r2 = Protocol.query dep ~query:q ~k:2 in
  Alcotest.(check bool) "different masked views for the same query" true
    (Leakage.view_multiset r1.Protocol.view_b <> Leakage.view_multiset r2.Protocol.view_b);
  Alcotest.(check bool) "both exact" true
    (Protocol.exact dep ~db ~query:q r1 && Protocol.exact dep ~db ~query:q r2)

let test_permutation_hides_indices () =
  (* The selected indices B reports live in permuted space; composing
     with A's secret permutation recovers the true indices (sanity check
     of the permutation plumbing via the exactness oracle instead of
     peeking — exactness over many seeds implies the mapping is right). *)
  let rng = Rng.of_int 167 in
  let db = Synthetic.uniform rng ~n:25 ~d:2 ~max_value:200 in
  for seed = 1 to 5 do
    let dep = Protocol.deploy ~rng:(Rng.of_int seed) (Config.fast ()) ~db in
    let q = Synthetic.query_like rng db in
    let r = Protocol.query dep ~query:q ~k:3 in
    Alcotest.(check bool) (Printf.sprintf "seed %d exact" seed) true
      (Protocol.exact dep ~db ~query:q r)
  done

let test_leakage_audit_channel () =
  (* Mechanical check of the §4/§5 leakage profile via the audit
     channel: Party B's recorded surface is exactly the admitted set
     (and matches the Leakage extraction of the actual view); Party A's
     entries are ciphertext counts and byte sizes only. *)
  let module Audit = Sknn_obs.Audit in
  let rng = Rng.of_int 171 in
  let db = Synthetic.uniform rng ~n:20 ~d:3 ~max_value:100 in
  let audit = Audit.create () in
  let obs = Sknn_obs.Ctx.create ~audit () in
  let dep = Protocol.deploy ~rng (Config.standard ()) ~db in
  let q = Synthetic.query_like rng db in
  let r = Protocol.query ~obs dep ~query:q ~k:4 in
  Alcotest.(check (list string)) "party-b leakage surface"
    [ "equidistant-group-sizes"; "k"; "masked-distance-multiset"; "n" ]
    (Audit.labels_for audit ~party:"party-b");
  (match Audit.value_of audit ~party:"party-b" ~label:"k" with
   | Some (Audit.Int k) -> Alcotest.(check int) "k" 4 k
   | _ -> Alcotest.fail "k not recorded as Int");
  (match Audit.value_of audit ~party:"party-b" ~label:"masked-distance-multiset" with
   | Some (Audit.Int64s a) ->
     Alcotest.(check (array int64)) "multiset matches view"
       (Leakage.view_multiset r.Protocol.view_b) a
   | _ -> Alcotest.fail "multiset not recorded as Int64s");
  (match Audit.value_of audit ~party:"party-b" ~label:"equidistant-group-sizes" with
   | Some (Audit.Ints a) ->
     Alcotest.(check (array int)) "groups match view"
       (Leakage.equidistant_group_sizes r.Protocol.view_b) a
   | _ -> Alcotest.fail "groups not recorded as Ints");
  let a_entries = Audit.for_party audit ~party:"party-a" in
  Alcotest.(check bool) "party-a observed" true (a_entries <> []);
  List.iter
    (fun (e : Audit.entry) ->
      match e.Audit.value with
      | Audit.Int _ -> ()
      | _ -> Alcotest.failf "party-a entry %S is not a scalar count/size" e.Audit.label)
    a_entries

(* ------------------------------------------------------------------ *)
(* Cost model (Table 1)                                                *)
(* ------------------------------------------------------------------ *)

let test_cost_measured_vs_predicted () =
  let rng = Rng.of_int 173 in
  let n = 30 and d = 4 and k = 5 in
  let db = Synthetic.uniform rng ~n ~d ~max_value:200 in
  let config = Config.standard () in
  let dep = Protocol.deploy ~rng config ~db in
  let r = Protocol.query dep ~query:(Synthetic.query_like rng db) ~k in
  let measured = Cost.measured r in
  let predicted = Cost.ours ~n ~d ~k ~mask_degree:config.Config.mask_degree () in
  Alcotest.(check int) "one round measured" 1 measured.Cost.rounds;
  Alcotest.(check int) "decryptions = n" n measured.Cost.decryptions;
  Alcotest.(check int) "encryptions = nk" (n * k) measured.Cost.encryptions;
  Alcotest.(check bool)
    (Format.asprintf "hom ops within 4x of model (measured %a, predicted %a)" Cost.pp measured
       Cost.pp predicted)
    true
    (Cost.within_asymptotic ~measured ~predicted ~slack:4.0)

let test_cost_ours_beats_yousef () =
  (* The Table 1 comparison: for 32-bit values, every row of ours is
     asymptotically below Yousef et al. *)
  let n = 1000 and d = 10 and k = 10 and l = 32 in
  let ours = Cost.ours ~n ~d ~k ~mask_degree:2 () in
  let yousef = Cost.yousef ~n ~d ~k ~l in
  Alcotest.(check bool) "hom ops" true (ours.Cost.hom_ops < yousef.Cost.hom_ops);
  Alcotest.(check bool) "encryptions" true (ours.Cost.encryptions < yousef.Cost.encryptions);
  Alcotest.(check bool) "decryptions" true (ours.Cost.decryptions < yousef.Cost.decryptions);
  Alcotest.(check int) "rounds: ours constant" 1 ours.Cost.rounds;
  Alcotest.(check int) "rounds: yousef O(k)" k yousef.Cost.rounds

(* ------------------------------------------------------------------ *)
(* Cost ledger vs analytic replica (DESIGN §5a)                        *)
(* ------------------------------------------------------------------ *)

module CM = Sknn_obs.Cost_model

let check_ledger name predicted measured =
  if not (Util.Counters.equal_ledger predicted measured) then
    Alcotest.failf "%s: ledger mismatch@.predicted: %a@.measured:  %a" name
      Util.Counters.pp predicted Util.Counters.pp measured

let check_prediction name config ~n ~d ~k ~include_prepare path (r : Protocol.result) =
  let pred = Attribution.predict ~include_prepare config ~n ~d ~k path in
  check_ledger (name ^ " / party-a") pred.CM.party_a r.Protocol.counters_a;
  check_ledger (name ^ " / party-b") pred.CM.party_b r.Protocol.counters_b;
  check_ledger (name ^ " / client") pred.CM.client r.Protocol.counters_client;
  (* Serialized A<->B traffic, predicted from symbolic ciphertext sizes,
     against the transcript tally (Cost.measured reads the same entries
     tally_transcript folds into bytes_sent). *)
  Alcotest.(check int)
    (name ^ " / A<->B bytes")
    (Cost.measured r).Cost.bytes pred.CM.ab_bytes;
  (* The symbolic transcript must mirror the live exchange message for
     message — same senders, labels and byte sizes in the same order —
     so its virtual-clock replay (what [predict_end_to_end] prices) is
     structurally identical to replaying the live run, per-round
     latencies and all, under every profile. *)
  let entry_key (e : Transcript.entry) =
    ( e.Transcript.seq, e.Transcript.sender, e.Transcript.receiver,
      e.Transcript.label, e.Transcript.bytes )
  in
  if
    List.map entry_key (Transcript.entries pred.CM.transcript)
    <> List.map entry_key (Transcript.entries r.Protocol.transcript)
  then
    Alcotest.failf "%s: symbolic transcript diverges@.predicted:@.%a@.live:@.%a"
      name Transcript.pp pred.CM.transcript Transcript.pp r.Protocol.transcript;
  List.iter
    (fun prof ->
      Alcotest.(check string)
        (name ^ " / identical replay under " ^ Profile.to_string prof)
        (Marshal.to_string (Clock.replay prof pred.CM.transcript) [])
        (Marshal.to_string (Clock.replay prof r.Protocol.transcript) []))
    Profile.presets

let test_cost_model_plain () =
  let db = small_db (Rng.of_int 611) in
  let n = Array.length db and d = Array.length db.(0) in
  let k = 4 in
  List.iter
    (fun (name, config) ->
      let dep = Protocol.deploy ~rng:(Rng.of_int 612) config ~db in
      let q = Synthetic.query_like (Rng.of_int 613) db in
      let r = Protocol.query dep ~query:q ~k in
      check_prediction name config ~n ~d ~k ~include_prepare:false CM.Plain r)
    [ ("plain/standard", Config.standard ()); ("plain/fast", Config.fast ()) ]

let test_cost_model_prepared () =
  let db = small_db (Rng.of_int 621) in
  let n = Array.length db and d = Array.length db.(0) in
  let k = 4 in
  List.iter
    (fun (name, config) ->
      let dep = Protocol.deploy ~rng:(Rng.of_int 622) config ~db in
      let q = Synthetic.query_like (Rng.of_int 623) db in
      let first = Protocol.query_prepared dep ~query:q ~k in
      check_prediction (name ^ "/first") config ~n ~d ~k ~include_prepare:true
        CM.Prepared first;
      let steady = Protocol.query_prepared dep ~query:q ~k in
      check_prediction (name ^ "/steady") config ~n ~d ~k ~include_prepare:false
        CM.Prepared steady)
    [ ("prepared/affine", affine_config ()); ("prepared/fast", Config.fast ()) ]

let test_cost_model_packed () =
  let db = small_db (Rng.of_int 631) in
  let n = Array.length db and d = Array.length db.(0) in
  let k = 4 in
  List.iter
    (fun (name, config) ->
      let dep = Protocol.deploy ~rng:(Rng.of_int 632) config ~db in
      let q = Synthetic.query_like (Rng.of_int 633) db in
      let first = Protocol.query_packed dep ~query:q ~k in
      check_prediction (name ^ "/first") config ~n ~d ~k ~include_prepare:true
        CM.Packed first;
      let steady = Protocol.query_packed dep ~query:q ~k in
      check_prediction (name ^ "/steady") config ~n ~d ~k ~include_prepare:false
        CM.Packed steady)
    [ ("packed/affine", affine_config ()); ("packed/fast", Config.fast ()) ]

let test_cost_model_batch () =
  let db = small_db (Rng.of_int 641) in
  let n = Array.length db and d = Array.length db.(0) in
  let k = 3 in
  let config = Config.fast () in
  let dep = Protocol.deploy ~rng:(Rng.of_int 642) config ~db in
  let rng = Rng.of_int 643 in
  let queries = Array.init 3 (fun _ -> Synthetic.query_like rng db) in
  let first = Protocol.query_batch dep ~queries ~k in
  check_prediction "batch/first" config ~n ~d ~k ~include_prepare:true
    (CM.Batch 3) first.(0);
  let steady = Protocol.query_batch dep ~queries ~k in
  check_prediction "batch/steady" config ~n ~d ~k ~include_prepare:false
    (CM.Batch 3) steady.(0)

let test_predict_end_to_end_consistency () =
  (* predict_end_to_end = priced compute + replayed symbolic wire; with
     an empty calibration table the compute term is zero, so the total
     must equal the virtual-clock replay of the live transcript — the
     same timeline the query itself recorded under [?net]. *)
  let db = small_db (Rng.of_int 651) in
  let k = 3 in
  let n = Array.length db and d = Array.length db.(0) in
  let config = Config.fast () in
  let dep = Protocol.deploy ~rng:(Rng.of_int 652) config ~db in
  let q = Synthetic.query_like (Rng.of_int 653) db in
  let r = Protocol.query ~net:Profile.wan dep ~query:q ~k in
  let pred = Attribution.predict ~include_prepare:false config ~n ~d ~k CM.Plain in
  let e2e = CM.predict_end_to_end ~unit_costs:[||] ~profile:Profile.wan pred in
  Alcotest.(check (float 0.0)) "empty table prices zero compute" 0.0 e2e.CM.compute_s;
  Alcotest.(check (float 0.0)) "total = compute + wire"
    (e2e.CM.compute_s +. e2e.CM.wire_s) e2e.CM.total_s;
  let live =
    match r.Protocol.net with
    | Some tl -> tl
    | None -> Alcotest.fail "query ran with ?net but recorded no timeline"
  in
  Alcotest.(check (float 0.0)) "wire = live end-to-end" live.Clock.end_to_end_s
    e2e.CM.wire_s;
  Alcotest.(check string) "predicted timeline = live timeline"
    (Marshal.to_string live []) (Marshal.to_string e2e.CM.timeline []);
  Alcotest.(check string) "live timeline = replaying the live transcript"
    (Marshal.to_string (Clock.replay Profile.wan r.Protocol.transcript) [])
    (Marshal.to_string live [])

let test_net_timeline_jobs_determinism () =
  (* The replayed timeline is a pure function of (transcript, profile),
     and the transcript is jobs-invariant — so the whole virtual
     timeline must be byte-identical across worker counts. *)
  let db = small_db (Rng.of_int 661) in
  let q = [| 10; 20; 30 |] in
  let run jobs =
    let dep = Protocol.deploy ~rng:(Rng.of_int 999) ~jobs (Config.fast ()) ~db in
    let r = Protocol.query ~rng:(Rng.of_int 1000) ~net:Profile.wan dep ~query:q ~k:3 in
    match r.Protocol.net with
    | Some tl -> Marshal.to_string tl []
    | None -> Alcotest.fail "no timeline recorded"
  in
  let t1 = run 1 in
  List.iter
    (fun j ->
      Alcotest.(check string) (Printf.sprintf "jobs 1 = jobs %d" j) t1 (run j))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Property: random end-to-end instances                               *)
(* ------------------------------------------------------------------ *)

let prop_end_to_end_exact =
  QCheck.Test.make ~count:8 ~name:"random instances are exact (fast layout)"
    QCheck.(triple (int_range 5 30) (int_range 1 6) (int_range 0 10000))
    (fun (n, d, seed) ->
      let rng = Rng.of_int seed in
      let db = Synthetic.uniform rng ~n ~d ~max_value:250 in
      let dep = Protocol.deploy ~rng (Config.fast ()) ~db in
      let q = Synthetic.query_like rng db in
      let k = 1 + (seed mod n) in
      let r = Protocol.query dep ~query:q ~k in
      Protocol.exact dep ~db ~query:q r)

let () =
  Alcotest.run "secure_knn"
    [ ("masking",
       [ Alcotest.test_case "envelope" `Quick test_masking_envelope;
         Alcotest.test_case "draw/eval" `Quick test_masking_draw_and_eval;
         Alcotest.test_case "rejects unsound" `Quick test_masking_rejects_unsound ]);
      ("config",
       [ Alcotest.test_case "presets valid" `Quick test_config_presets_valid;
         Alcotest.test_case "envelope rejection" `Quick test_config_envelope_rejection;
         Alcotest.test_case "distance bits" `Quick test_config_distance_bits ]);
      ("protocol",
       [ Alcotest.test_case "exact (per-coordinate)" `Quick
           (test_exactness "per-coordinate" (Config.standard ()));
         Alcotest.test_case "exact (dot-product)" `Quick
           (test_exactness "dot-product" (Config.fast ()));
         Alcotest.test_case "k edge cases" `Quick test_k_edge_cases;
         Alcotest.test_case "duplicates and ties" `Quick test_duplicates_and_ties;
         Alcotest.test_case "query on db point" `Quick test_query_on_db_point;
         Alcotest.test_case "dimensions 1..32" `Quick test_dimension_1_and_high;
         Alcotest.test_case "uci-shaped workload" `Quick test_uci_shaped_workload;
         Alcotest.test_case "validation errors" `Quick test_validation_errors;
         Alcotest.test_case "transcript structure" `Quick test_transcript_structure;
         Alcotest.test_case "phase times" `Quick test_phase_times_present;
         Alcotest.test_case "deterministic given seed" `Quick test_deterministic_given_seed;
         Alcotest.test_case "identical across job counts" `Quick test_jobs_determinism ]);
      ("prepared",
       [ Alcotest.test_case "exact over repeated queries" `Quick test_prepared_exactness;
         Alcotest.test_case "matches unprepared path" `Quick test_prepared_matches_unprepared;
         Alcotest.test_case "identical across job counts" `Quick test_prepared_jobs_determinism;
         Alcotest.test_case "rejects non-affine masking" `Quick test_prepared_rejects_nonaffine;
         Alcotest.test_case "run_queries batch" `Quick test_run_queries_batch ]);
      ("packed",
       [ Alcotest.test_case "exact over repeated queries" `Quick test_packed_exactness;
         Alcotest.test_case "matches unpacked paths" `Quick test_packed_matches_unpacked;
         Alcotest.test_case "ragged and full batch shapes" `Quick test_packed_batch_shapes;
         Alcotest.test_case "identical across job counts" `Quick test_packed_jobs_determinism;
         Alcotest.test_case "rejects non-affine masking" `Quick test_packed_rejects_nonaffine;
         Alcotest.test_case "run_queries batch" `Quick test_run_queries_packed;
         Alcotest.test_case "equidistant groups slot-unpacked" `Quick
           test_packed_leakage_groups;
         Alcotest.test_case "audit surface unchanged" `Quick test_packed_audit_surface;
         Alcotest.test_case "slot-dimension query batch" `Quick test_query_batch ]);
      ("leakage",
       [ Alcotest.test_case "order preserved" `Quick test_leakage_order_preserved;
         Alcotest.test_case "equidistant groups" `Quick test_leakage_equidistant_groups;
         Alcotest.test_case "database independence" `Quick test_leakage_view_database_independent;
         Alcotest.test_case "fresh mask per query" `Quick test_leakage_fresh_mask_across_queries;
         Alcotest.test_case "permutation plumbing" `Quick test_permutation_hides_indices;
         Alcotest.test_case "audit channel" `Quick test_leakage_audit_channel ]);
      ("cost",
       [ Alcotest.test_case "measured vs predicted" `Quick test_cost_measured_vs_predicted;
         Alcotest.test_case "ours beats yousef" `Quick test_cost_ours_beats_yousef;
         Alcotest.test_case "ledger exact (plain)" `Quick test_cost_model_plain;
         Alcotest.test_case "ledger exact (prepared)" `Quick test_cost_model_prepared;
         Alcotest.test_case "ledger exact (packed)" `Quick test_cost_model_packed;
         Alcotest.test_case "ledger exact (batch)" `Quick test_cost_model_batch;
         Alcotest.test_case "end-to-end prediction consistent" `Quick
           test_predict_end_to_end_consistency;
         Alcotest.test_case "net timeline jobs-invariant" `Quick
           test_net_timeline_jobs_determinism ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_masking_order_preserving; prop_masking_fresh_each_draw; prop_end_to_end_exact ]) ]
