(* Tests for the communication transcript. *)

open Transcript

let test_basic_accounting () =
  let t = create () in
  send t ~sender:Party_a ~receiver:Party_b ~label:"distances" ~bytes:1000;
  send t ~sender:Party_b ~receiver:Party_a ~label:"indicators" ~bytes:2000;
  send t ~sender:Party_a ~receiver:Client ~label:"result" ~bytes:300;
  Alcotest.(check int) "messages" 3 (messages t);
  Alcotest.(check int) "total bytes" 3300 (total_bytes t);
  Alcotest.(check int) "A<->B bytes" 3000 (bytes_between t Party_a Party_b);
  Alcotest.(check int) "A<->client bytes" 300 (bytes_between t Party_a Client);
  Alcotest.(check int) "B<->client bytes" 0 (bytes_between t Party_b Client)

let test_entries_order () =
  let t = create () in
  send t ~sender:Data_owner ~receiver:Party_a ~label:"db" ~bytes:10;
  send t ~sender:Data_owner ~receiver:Party_b ~label:"keys" ~bytes:20;
  let es = entries t in
  Alcotest.(check int) "count" 2 (List.length es);
  (match es with
   | [ e1; e2 ] ->
     Alcotest.(check int) "seq 0" 0 e1.seq;
     Alcotest.(check int) "seq 1" 1 e2.seq;
     Alcotest.(check string) "label" "db" e1.label;
     Alcotest.(check string) "receiver" "party-B" (party_name e2.receiver)
   | _ -> Alcotest.fail "expected two entries")

let test_rounds_single () =
  let t = create () in
  send t ~sender:Party_a ~receiver:Party_b ~label:"x" ~bytes:1;
  send t ~sender:Party_b ~receiver:Party_a ~label:"y" ~bytes:1;
  Alcotest.(check int) "one round" 1 (rounds t Party_a Party_b)

let test_rounds_batched_run () =
  (* Several messages in the same direction are still part of one run;
     our protocol's k indicator vectors are one reply, not k rounds. *)
  let t = create () in
  send t ~sender:Party_a ~receiver:Party_b ~label:"dist" ~bytes:1;
  for _ = 1 to 5 do
    send t ~sender:Party_b ~receiver:Party_a ~label:"B^j" ~bytes:1
  done;
  Alcotest.(check int) "still one round" 1 (rounds t Party_a Party_b)

let test_rounds_multi () =
  let t = create () in
  for _ = 1 to 3 do
    send t ~sender:Party_a ~receiver:Party_b ~label:"ping" ~bytes:1;
    send t ~sender:Party_b ~receiver:Party_a ~label:"pong" ~bytes:1
  done;
  Alcotest.(check int) "three rounds" 3 (rounds t Party_a Party_b);
  (* Unrelated links do not interfere. *)
  send t ~sender:Client ~receiver:Party_a ~label:"q" ~bytes:1;
  Alcotest.(check int) "unchanged" 3 (rounds t Party_a Party_b)

let test_rounds_empty_and_oneway () =
  let t = create () in
  Alcotest.(check int) "no traffic" 0 (rounds t Party_a Party_b);
  send t ~sender:Party_a ~receiver:Party_b ~label:"only" ~bytes:1;
  Alcotest.(check int) "unanswered counts as a round" 1 (rounds t Party_a Party_b)

let test_rounds_trailing_run () =
  (* A->B, B->A closes round one; the trailing unmatched A->B run still
     counts as a round of its own. *)
  let t = create () in
  send t ~sender:Party_a ~receiver:Party_b ~label:"ping" ~bytes:1;
  send t ~sender:Party_b ~receiver:Party_a ~label:"pong" ~bytes:1;
  send t ~sender:Party_a ~receiver:Party_b ~label:"follow-up" ~bytes:1;
  Alcotest.(check int) "trailing run counts" 2 (rounds t Party_a Party_b);
  send t ~sender:Party_a ~receiver:Party_b ~label:"same run" ~bytes:1;
  Alcotest.(check int) "same-direction message extends the run" 2
    (rounds t Party_a Party_b);
  send t ~sender:Party_b ~receiver:Party_a ~label:"reply" ~bytes:1;
  Alcotest.(check int) "reply closes it" 2 (rounds t Party_a Party_b)

let test_links () =
  let t = create () in
  Alcotest.(check int) "no links" 0 (List.length (links t));
  send t ~sender:Party_a ~receiver:Party_b ~label:"x" ~bytes:100;
  send t ~sender:Party_b ~receiver:Party_a ~label:"y" ~bytes:50;
  send t ~sender:Data_owner ~receiver:Client ~label:"keys" ~bytes:7;
  (* Both directions fold into one undirected link, keyed in declaration
     order and sorted canonically. *)
  Alcotest.(check (list (pair (pair string string) int)))
    "aggregated undirected links"
    [ (("data-owner", "client"), 7); (("party-A", "party-B"), 150) ]
    (List.map (fun ((x, y), b) -> ((party_name x, party_name y), b)) (links t))

let test_validation () =
  let t = create () in
  Alcotest.check_raises "self send" (Invalid_argument "Transcript.send: sender = receiver")
    (fun () -> send t ~sender:Party_a ~receiver:Party_a ~label:"x" ~bytes:1);
  Alcotest.check_raises "negative" (Invalid_argument "Transcript.send: negative size")
    (fun () -> send t ~sender:Party_a ~receiver:Party_b ~label:"x" ~bytes:(-1))

let () =
  Alcotest.run "netsim"
    [ ("transcript",
       [ Alcotest.test_case "accounting" `Quick test_basic_accounting;
         Alcotest.test_case "entries" `Quick test_entries_order;
         Alcotest.test_case "single round" `Quick test_rounds_single;
         Alcotest.test_case "batched run" `Quick test_rounds_batched_run;
         Alcotest.test_case "multi round" `Quick test_rounds_multi;
         Alcotest.test_case "empty/one-way" `Quick test_rounds_empty_and_oneway;
         Alcotest.test_case "trailing run" `Quick test_rounds_trailing_run;
         Alcotest.test_case "links" `Quick test_links;
         Alcotest.test_case "validation" `Quick test_validation ]) ]
