(* Tests for the communication transcript. *)

open Transcript

let test_basic_accounting () =
  let t = create () in
  send t ~sender:Party_a ~receiver:Party_b ~label:"distances" ~bytes:1000;
  send t ~sender:Party_b ~receiver:Party_a ~label:"indicators" ~bytes:2000;
  send t ~sender:Party_a ~receiver:Client ~label:"result" ~bytes:300;
  Alcotest.(check int) "messages" 3 (messages t);
  Alcotest.(check int) "total bytes" 3300 (total_bytes t);
  Alcotest.(check int) "A<->B bytes" 3000 (bytes_between t Party_a Party_b);
  Alcotest.(check int) "A<->client bytes" 300 (bytes_between t Party_a Client);
  Alcotest.(check int) "B<->client bytes" 0 (bytes_between t Party_b Client)

let test_entries_order () =
  let t = create () in
  send t ~sender:Data_owner ~receiver:Party_a ~label:"db" ~bytes:10;
  send t ~sender:Data_owner ~receiver:Party_b ~label:"keys" ~bytes:20;
  let es = entries t in
  Alcotest.(check int) "count" 2 (List.length es);
  (match es with
   | [ e1; e2 ] ->
     Alcotest.(check int) "seq 0" 0 e1.seq;
     Alcotest.(check int) "seq 1" 1 e2.seq;
     Alcotest.(check string) "label" "db" e1.label;
     Alcotest.(check string) "receiver" "party-B" (party_name e2.receiver)
   | _ -> Alcotest.fail "expected two entries")

let test_rounds_single () =
  let t = create () in
  send t ~sender:Party_a ~receiver:Party_b ~label:"x" ~bytes:1;
  send t ~sender:Party_b ~receiver:Party_a ~label:"y" ~bytes:1;
  Alcotest.(check int) "one round" 1 (rounds t Party_a Party_b)

let test_rounds_batched_run () =
  (* Several messages in the same direction are still part of one run;
     our protocol's k indicator vectors are one reply, not k rounds. *)
  let t = create () in
  send t ~sender:Party_a ~receiver:Party_b ~label:"dist" ~bytes:1;
  for _ = 1 to 5 do
    send t ~sender:Party_b ~receiver:Party_a ~label:"B^j" ~bytes:1
  done;
  Alcotest.(check int) "still one round" 1 (rounds t Party_a Party_b)

let test_rounds_multi () =
  let t = create () in
  for _ = 1 to 3 do
    send t ~sender:Party_a ~receiver:Party_b ~label:"ping" ~bytes:1;
    send t ~sender:Party_b ~receiver:Party_a ~label:"pong" ~bytes:1
  done;
  Alcotest.(check int) "three rounds" 3 (rounds t Party_a Party_b);
  (* Unrelated links do not interfere. *)
  send t ~sender:Client ~receiver:Party_a ~label:"q" ~bytes:1;
  Alcotest.(check int) "unchanged" 3 (rounds t Party_a Party_b)

let test_rounds_empty_and_oneway () =
  let t = create () in
  Alcotest.(check int) "no traffic" 0 (rounds t Party_a Party_b);
  send t ~sender:Party_a ~receiver:Party_b ~label:"only" ~bytes:1;
  Alcotest.(check int) "unanswered counts as a round" 1 (rounds t Party_a Party_b)

let test_rounds_trailing_run () =
  (* A->B, B->A closes round one; the trailing unmatched A->B run still
     counts as a round of its own. *)
  let t = create () in
  send t ~sender:Party_a ~receiver:Party_b ~label:"ping" ~bytes:1;
  send t ~sender:Party_b ~receiver:Party_a ~label:"pong" ~bytes:1;
  send t ~sender:Party_a ~receiver:Party_b ~label:"follow-up" ~bytes:1;
  Alcotest.(check int) "trailing run counts" 2 (rounds t Party_a Party_b);
  send t ~sender:Party_a ~receiver:Party_b ~label:"same run" ~bytes:1;
  Alcotest.(check int) "same-direction message extends the run" 2
    (rounds t Party_a Party_b);
  send t ~sender:Party_b ~receiver:Party_a ~label:"reply" ~bytes:1;
  Alcotest.(check int) "reply closes it" 2 (rounds t Party_a Party_b)

let test_links () =
  let t = create () in
  Alcotest.(check int) "no links" 0 (List.length (links t));
  send t ~sender:Party_a ~receiver:Party_b ~label:"x" ~bytes:100;
  send t ~sender:Party_b ~receiver:Party_a ~label:"y" ~bytes:50;
  send t ~sender:Data_owner ~receiver:Client ~label:"keys" ~bytes:7;
  (* Both directions fold into one undirected link, keyed in declaration
     order and sorted canonically. *)
  Alcotest.(check (list (pair (pair string string) int)))
    "aggregated undirected links"
    [ (("data-owner", "client"), 7); (("party-A", "party-B"), 150) ]
    (List.map (fun ((x, y), b) -> ((party_name x, party_name y), b)) (links t))

let test_rounds_interleaved_third_party () =
  (* Third-party traffic interleaved inside an A<->B exchange must not
     split or extend the A<->B runs: round counting is per-link. *)
  let t = create () in
  send t ~sender:Party_a ~receiver:Party_b ~label:"ping" ~bytes:1;
  send t ~sender:Client ~receiver:Party_a ~label:"noise" ~bytes:1;
  send t ~sender:Party_a ~receiver:Party_b ~label:"same run" ~bytes:1;
  send t ~sender:Data_owner ~receiver:Client ~label:"noise" ~bytes:1;
  send t ~sender:Party_b ~receiver:Party_a ~label:"pong" ~bytes:1;
  Alcotest.(check int) "one A<->B round" 1 (rounds t Party_a Party_b);
  Alcotest.(check int) "client link unaffected" 1 (rounds t Client Party_a);
  Alcotest.(check int) "absent link is zero" 0 (rounds t Data_owner Party_a)

let all_parties = [ Data_owner; Party_a; Party_b; Client ]

let prop_rounds_symmetric =
  (* rounds is a property of the unordered link: the argument order the
     caller happens to use must never matter. *)
  let party = QCheck.Gen.oneofl all_parties in
  let arb =
    QCheck.make
      ~print:(fun ms ->
        String.concat ";"
          (List.map
             (fun (s, r) -> party_name s ^ ">" ^ party_name r)
             ms))
      QCheck.Gen.(list_size (int_bound 30) (pair party party))
  in
  QCheck.Test.make ~count:200 ~name:"rounds a b = rounds b a" arb (fun ms ->
      let t = create () in
      List.iter
        (fun (s, r) ->
          if s <> r then send t ~sender:s ~receiver:r ~label:"m" ~bytes:1)
        ms;
      List.for_all
        (fun a ->
          List.for_all (fun b -> rounds t a b = rounds t b a) all_parties)
        all_parties)

let test_pp_golden () =
  let t = create () in
  send t ~sender:Client ~receiver:Party_a ~label:"encrypted query" ~bytes:12345;
  send t ~sender:Party_a ~receiver:Party_b ~label:"masked permuted distances"
    ~bytes:678;
  send t ~sender:Party_b ~receiver:Party_a ~label:"indicator vector B^0" ~bytes:9;
  send t ~sender:Party_a ~receiver:Client ~label:"encrypted k-NN result" ~bytes:4;
  let expected =
    String.concat "\n"
      [ "seq from       to      bytes    label";
        "  0 client  -> party-A 12345 B  encrypted query";
        "  1 party-A -> party-B   678 B  masked permuted distances";
        "  2 party-B -> party-A     9 B  indicator vector B^0";
        "  3 party-A -> client      4 B  encrypted k-NN result";
        "link party-A <-> party-B: 687 bytes, 1 rounds";
        "link party-A <-> client: 12349 bytes, 1 rounds";
        "total: 4 messages, 13036 bytes" ]
  in
  Alcotest.(check string) "aligned transcript table" expected
    (Format.asprintf "%a" pp t)

(* --- Profile --- *)

let feq = Alcotest.float 1e-12

let test_profile_presets () =
  List.iter
    (fun p ->
      match Profile.of_string (Profile.to_string p) with
      | Ok p' -> Alcotest.(check string) "roundtrip" p.Profile.name p'.Profile.name
      | Error e -> Alcotest.fail e)
    Profile.presets;
  Alcotest.check feq "loopback serialization is free" 0.0
    (Profile.serialize_s Profile.loopback 1_000_000_000);
  Alcotest.check feq "lan one-way = rtt/2" 0.125e-3
    (Profile.one_way_s Profile.lan);
  (* 1 Gbit/s moves 125 MB in one second. *)
  Alcotest.check feq "lan serialization" 1.0
    (Profile.serialize_s Profile.lan 125_000_000);
  Alcotest.check feq "wan rtt" 40e-3 Profile.wan.Profile.rtt_s

let test_profile_custom () =
  match Profile.of_string " 40:100 " with
  | Error e -> Alcotest.fail e
  | Ok p ->
    Alcotest.(check string) "name keeps the pair form" "40:100" p.Profile.name;
    Alcotest.check feq "rtt 40 ms" 0.040 p.Profile.rtt_s;
    Alcotest.check feq "100 Mbit/s" 12_500_000.0 p.Profile.bytes_per_s;
    Alcotest.check feq "12.5 MB takes a second" 1.0
      (Profile.serialize_s p 12_500_000)

let test_profile_rejects () =
  let rejected s =
    match Profile.of_string s with Ok _ -> false | Error _ -> true
  in
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "%S rejected" s) true (rejected s))
    [ "nope"; "40"; "40:"; ":100"; "40:0"; "40:-1"; "-1:100"; "nan:100";
      "inf:100"; "40:100:9" ]

(* --- Clock --- *)

(* A deliberately coarse profile so every expected timestamp below is a
   small exact float: RTT 2 s (one-way 1 s), 100 B/s. *)
let coarse = { Profile.name = "coarse"; rtt_s = 2.0; bytes_per_s = 100.0 }

let test_clock_hand_computed () =
  let t = create () in
  send t ~sender:Party_a ~receiver:Party_b ~label:"d" ~bytes:100;
  send t ~sender:Party_b ~receiver:Party_a ~label:"r" ~bytes:50;
  send t ~sender:Party_a ~receiver:Party_b ~label:"f" ~bytes:100;
  let tl = Clock.replay coarse t in
  (* msg0: departs 0, serializes 1 s, + 1 s propagation -> arrives 2.
     msg1: B may answer only at 2, + 0.5 s ser + 1 s -> arrives 3.5.
     msg2: A resumes at 3.5 (channel freed at 1), 1 + 1 -> arrives 5.5. *)
  (match tl.Clock.messages with
   | [ m0; m1; m2 ] ->
     Alcotest.check feq "m0 departure" 0.0 m0.Clock.departure_s;
     Alcotest.check feq "m0 arrival" 2.0 m0.Clock.arrival_s;
     Alcotest.check feq "m1 departure" 2.0 m1.Clock.departure_s;
     Alcotest.check feq "m1 arrival" 3.5 m1.Clock.arrival_s;
     Alcotest.check feq "m2 departure" 3.5 m2.Clock.departure_s;
     Alcotest.check feq "m2 arrival" 5.5 m2.Clock.arrival_s
   | ms -> Alcotest.failf "expected 3 messages, got %d" (List.length ms));
  Alcotest.check feq "end-to-end" 5.5 tl.Clock.end_to_end_s;
  match tl.Clock.links with
  | [ l ] ->
    Alcotest.(check int) "messages" 3 l.Clock.link_messages;
    Alcotest.(check int) "bytes" 250 l.Clock.link_bytes;
    Alcotest.(check int) "rounds = Transcript.rounds" 2 l.Clock.link_rounds;
    Alcotest.check feq "busy = total serialization" 2.5 l.Clock.busy_s;
    Alcotest.check feq "idle = span - busy" 3.0 l.Clock.idle_s;
    Alcotest.(check int) "one latency per round" 2
      (Array.length l.Clock.round_latency_s);
    Alcotest.check feq "round 0 envelope" 3.5 l.Clock.round_latency_s.(0);
    Alcotest.check feq "round 1 envelope" 2.0 l.Clock.round_latency_s.(1)
  | ls -> Alcotest.failf "expected 1 link, got %d" (List.length ls)

let test_clock_fifo () =
  (* Two same-direction messages share the directed channel: the second
     cannot start serializing before the first is on the wire. *)
  let t = create () in
  send t ~sender:Party_a ~receiver:Party_b ~label:"x" ~bytes:100;
  send t ~sender:Party_a ~receiver:Party_b ~label:"y" ~bytes:100;
  let tl = Clock.replay coarse t in
  match tl.Clock.messages with
  | [ m0; m1 ] ->
    Alcotest.check feq "m0 departs immediately" 0.0 m0.Clock.departure_s;
    Alcotest.check feq "m1 queues behind m0" 1.0 m1.Clock.departure_s;
    Alcotest.check feq "m1 arrival" 3.0 m1.Clock.arrival_s
  | ms -> Alcotest.failf "expected 2 messages, got %d" (List.length ms)

let test_clock_causality () =
  (* A party cannot forward before its inbound message arrived, even
     across different links. *)
  let t = create () in
  send t ~sender:Data_owner ~receiver:Party_a ~label:"in" ~bytes:0;
  send t ~sender:Party_a ~receiver:Party_b ~label:"out" ~bytes:0;
  let tl = Clock.replay coarse t in
  match tl.Clock.messages with
  | [ m0; m1 ] ->
    Alcotest.check feq "inbound arrives" 1.0 m0.Clock.arrival_s;
    Alcotest.check feq "forward waits for it" 1.0 m1.Clock.departure_s;
    Alcotest.check feq "end-to-end chains" 2.0 tl.Clock.end_to_end_s
  | ms -> Alcotest.failf "expected 2 messages, got %d" (List.length ms)

let test_clock_loopback_zero () =
  let t = create () in
  send t ~sender:Client ~receiver:Party_a ~label:"q" ~bytes:123_456;
  send t ~sender:Party_a ~receiver:Client ~label:"r" ~bytes:654_321;
  let tl = Clock.replay Profile.loopback t in
  Alcotest.check feq "loopback is instantaneous" 0.0 tl.Clock.end_to_end_s

let test_clock_empty () =
  let tl = Clock.replay Profile.wan (create ()) in
  Alcotest.check feq "empty transcript" 0.0 tl.Clock.end_to_end_s;
  Alcotest.(check int) "no links" 0 (List.length tl.Clock.links)

let test_clock_pure () =
  (* Same transcript, same profile -> structurally identical timeline
     (the determinism the cross-jobs CI check relies on). *)
  let t = create () in
  send t ~sender:Client ~receiver:Party_a ~label:"q" ~bytes:77_000;
  send t ~sender:Party_a ~receiver:Party_b ~label:"d" ~bytes:123_456;
  send t ~sender:Party_b ~receiver:Party_a ~label:"b" ~bytes:9_999;
  send t ~sender:Party_a ~receiver:Client ~label:"r" ~bytes:4_242;
  List.iter
    (fun prof ->
      let a = Clock.replay prof t and b = Clock.replay prof t in
      Alcotest.(check string)
        (Printf.sprintf "byte-identical replay under %s" (Profile.to_string prof))
        (Marshal.to_string a []) (Marshal.to_string b []))
    Profile.presets

let test_clock_cursor_matches_replay () =
  (* The incremental cursor (used to stamp live flight events) is the
     same fold as the batch replay. *)
  let t = create () in
  send t ~sender:Client ~receiver:Party_a ~label:"q" ~bytes:1000;
  send t ~sender:Party_a ~receiver:Party_b ~label:"d" ~bytes:2000;
  send t ~sender:Party_b ~receiver:Party_a ~label:"b" ~bytes:500;
  send t ~sender:Party_a ~receiver:Client ~label:"r" ~bytes:100;
  let tl = Clock.replay Profile.wan t in
  let c = Clock.cursor Profile.wan in
  List.iter
    (fun (m : Clock.message) ->
      let e = m.Clock.entry in
      let dep, arr =
        Clock.step c ~sender:e.sender ~receiver:e.receiver ~bytes:e.bytes
      in
      Alcotest.check feq "departure" m.Clock.departure_s dep;
      Alcotest.check feq "arrival" m.Clock.arrival_s arr)
    tl.Clock.messages;
  Alcotest.check feq "elapsed = end-to-end" tl.Clock.end_to_end_s
    (Clock.elapsed_s c)

let test_quantile () =
  Alcotest.check feq "empty" 0.0 (Clock.quantile [||] 0.5);
  let xs = [| 3.0; 1.0; 2.0 |] in
  Alcotest.check feq "p0 clamps to min" 1.0 (Clock.quantile xs 0.0);
  Alcotest.check feq "median" 2.0 (Clock.quantile xs 0.5);
  Alcotest.check feq "p95 of 3" 3.0 (Clock.quantile xs 0.95);
  Alcotest.check feq "p100" 3.0 (Clock.quantile xs 1.0);
  Alcotest.check feq "input unsorted still" 3.0 xs.(0)

let test_validation () =
  let t = create () in
  Alcotest.check_raises "self send" (Invalid_argument "Transcript.send: sender = receiver")
    (fun () -> send t ~sender:Party_a ~receiver:Party_a ~label:"x" ~bytes:1);
  Alcotest.check_raises "negative" (Invalid_argument "Transcript.send: negative size")
    (fun () -> send t ~sender:Party_a ~receiver:Party_b ~label:"x" ~bytes:(-1))

let () =
  Alcotest.run "netsim"
    [ ("transcript",
       [ Alcotest.test_case "accounting" `Quick test_basic_accounting;
         Alcotest.test_case "entries" `Quick test_entries_order;
         Alcotest.test_case "single round" `Quick test_rounds_single;
         Alcotest.test_case "batched run" `Quick test_rounds_batched_run;
         Alcotest.test_case "multi round" `Quick test_rounds_multi;
         Alcotest.test_case "empty/one-way" `Quick test_rounds_empty_and_oneway;
         Alcotest.test_case "trailing run" `Quick test_rounds_trailing_run;
         Alcotest.test_case "interleaved third party" `Quick
           test_rounds_interleaved_third_party;
         Alcotest.test_case "links" `Quick test_links;
         Alcotest.test_case "pp golden" `Quick test_pp_golden;
         Alcotest.test_case "validation" `Quick test_validation;
         QCheck_alcotest.to_alcotest prop_rounds_symmetric ]);
      ("profile",
       [ Alcotest.test_case "presets" `Quick test_profile_presets;
         Alcotest.test_case "custom pair" `Quick test_profile_custom;
         Alcotest.test_case "rejects malformed" `Quick test_profile_rejects ]);
      ("clock",
       [ Alcotest.test_case "hand-computed replay" `Quick test_clock_hand_computed;
         Alcotest.test_case "directed FIFO" `Quick test_clock_fifo;
         Alcotest.test_case "cross-link causality" `Quick test_clock_causality;
         Alcotest.test_case "loopback is free" `Quick test_clock_loopback_zero;
         Alcotest.test_case "empty transcript" `Quick test_clock_empty;
         Alcotest.test_case "replay is pure" `Quick test_clock_pure;
         Alcotest.test_case "cursor matches replay" `Quick
           test_clock_cursor_matches_replay;
         Alcotest.test_case "quantile" `Quick test_quantile ]) ]
