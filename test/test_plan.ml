(* Planner property tests (DESIGN §5b).

   The contract under test:
   - a planner-returned parameter set is live-sound: realized, it
     answers a toy-sized query exactly, and the live tracked noise
     budget never dips below the model's worst-case minimum headroom;
   - planning is deterministic: the same spec yields the byte-identical
     plan, in whichever domain it runs;
   - every ranked entry clears the noise margin and the security floor
     it was searched under;
   - the Attribution bridge prices probes and realized sets identically
     (q_ibits_of_moduli = Zint bit lengths of Rq.modulus prefixes). *)

module NM = Sknn_obs.Noise_model
module CM = Sknn_obs.Cost_model
module Rng = Util.Rng

(* A flat unit model: every op kind costs the same per work unit.  The
   planner only needs relative prices, and the tests only need
   determinism and feasibility, not wall-clock fidelity. *)
let unit_model = { CM.scales = Array.make Util.Counters.num_ops 1e-9 }

let toy_workload ?(layout = Config.Per_coordinate) ?(path = CM.Packed) () =
  Planner.workload ~layout ~path ~points:24 ~dim:3 ~k:3 ~coord_bits:4 ()

let plan_toy ?(limits = Planner.default_constraints) ?layout ?path () =
  Planner.plan ~unit_model (toy_workload ?layout ?path ()) limits

let best_exn outcome =
  match Planner.best outcome with
  | Some e -> e
  | None -> Alcotest.fail "planner found no feasible candidate at the toy shape"

(* ------------------------------------------------------------------ *)
(* Ranked entries clear the limits they were searched under            *)
(* ------------------------------------------------------------------ *)

let test_entries_clear_limits () =
  let limits =
    { Planner.min_security_bits = 10.0; noise_margin_bits = 6.0;
      objective = Planner.Steady_state; net = None }
  in
  let o = plan_toy ~limits () in
  Alcotest.(check bool) "found candidates" true (o.Planner.ranked <> []);
  List.iter
    (fun e ->
      Alcotest.(check bool) "headroom clears the margin" true
        (e.Planner.min_headroom_bits >= limits.Planner.noise_margin_bits);
      Alcotest.(check bool) "security clears the floor" true
        (e.Planner.security_bits >= limits.Planner.min_security_bits);
      Alcotest.(check bool) "positive predicted times" true
        (e.Planner.first_seconds > 0.0 && e.Planner.steady_seconds > 0.0
         && e.Planner.steady_seconds <= e.Planner.first_seconds +. 1e-12))
    o.Planner.ranked;
  (* Ranking is ascending in the objective. *)
  let rec ascending = function
    | a :: (b :: _ as rest) ->
      a.Planner.objective_seconds <= b.Planner.objective_seconds +. 1e-15
      && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "ranked ascending" true (ascending o.Planner.ranked);
  (* Tightening the security floor only removes candidates. *)
  let tighter = plan_toy ~limits:{ limits with Planner.min_security_bits = 25.0 } () in
  Alcotest.(check bool) "tighter floor keeps no cheaper winner" true
    (match (Planner.best tighter, Planner.best o) with
     | None, _ -> true
     | Some t, Some b ->
       t.Planner.objective_seconds >= b.Planner.objective_seconds -. 1e-15
     | Some _, None -> false);
  List.iter
    (fun e ->
      Alcotest.(check bool) "tighter floor respected" true
        (e.Planner.security_bits >= 25.0))
    tighter.Planner.ranked

(* ------------------------------------------------------------------ *)
(* Live round trip: a planner pick answers a toy query exactly         *)
(* ------------------------------------------------------------------ *)

let toy_db seed = Synthetic.uniform (Rng.of_int seed) ~n:24 ~d:3 ~max_value:15

let test_roundtrip_exact () =
  List.iter
    (fun (label, layout, path, query) ->
      let w = toy_workload ~layout ~path () in
      let o = Planner.plan ~unit_model w Planner.default_constraints in
      let best = best_exn o in
      let config = Planner.realize w best in
      (match Config.validate config ~d:3 with
       | Ok () -> ()
       | Error e -> Alcotest.failf "%s: realized config invalid: %s" label e);
      let db = toy_db 42 in
      let q = Synthetic.query_like (Rng.of_int 43) db in
      let dep = Protocol.deploy ~rng:(Rng.of_int 44) ~jobs:1 config ~db in
      let r = query dep q in
      Alcotest.(check bool) (label ^ ": exact neighbours") true
        (Protocol.exact dep ~db ~query:q r))
    [ ( "packed", Config.Per_coordinate, CM.Packed,
        fun dep q -> Protocol.query_packed dep ~query:q ~k:3 );
      ( "prepared", Config.Dot_product, CM.Prepared,
        fun dep q -> Protocol.query_prepared dep ~query:q ~k:3 );
      ( "plain per-coordinate", Config.Per_coordinate, CM.Plain,
        fun dep q -> Protocol.query dep ~query:q ~k:3 ) ]

(* ------------------------------------------------------------------ *)
(* Forecast conservativeness: live budget >= model's minimum headroom  *)
(* ------------------------------------------------------------------ *)

(* Every live ciphertext the protocol samples sits at some point of the
   forecast circuit; the model's noise there is a worst case, so the
   live budget at every phase must be at least the forecast's global
   minimum headroom. *)
let test_forecast_conservative () =
  let w = toy_workload ~path:CM.Packed () in
  let o = Planner.plan ~unit_model w Planner.default_constraints in
  let best = best_exn o in
  let config = Planner.realize w best in
  let metrics = Sknn_obs.Metrics.create () in
  let obs = Sknn_obs.Ctx.create ~metrics () in
  let db = toy_db 7 in
  let q = Synthetic.query_like (Rng.of_int 8) db in
  let dep = Protocol.deploy ~obs ~rng:(Rng.of_int 9) ~jobs:1 config ~db in
  let r = Protocol.query_packed ~obs dep ~query:q ~k:3 in
  Alcotest.(check bool) "query exact" true (Protocol.exact dep ~db ~query:q r);
  let suffix = ".min_noise_budget_bits" in
  let checked = ref 0 in
  List.iter
    (fun name ->
      if String.length name > String.length suffix
         && String.sub name
              (String.length name - String.length suffix)
              (String.length suffix)
            = suffix
      then
        match Sknn_obs.Metrics.gauge_value (Sknn_obs.Metrics.gauge metrics name) with
        | None -> ()
        | Some live_budget ->
          incr checked;
          Alcotest.(check bool)
            (Printf.sprintf "%s: live budget %.1f >= forecast min %.1f" name
               live_budget best.Planner.min_headroom_bits)
            true
            (live_budget >= best.Planner.min_headroom_bits -. 1e-6))
    (Sknn_obs.Metrics.names metrics);
  Alcotest.(check bool) "sampled at least one phase gauge" true (!checked > 0);
  (* The same walk the planner pruned with is what the live prepare-time
     guard runs: the realized config's forecast equals the entry's. *)
  let p = Attribution.model_params config ~n:24 ~d:3 ~k:3 in
  let report = Planner.forecast p CM.Packed in
  Alcotest.(check (float 1e-9)) "entry headroom = realized forecast"
    best.Planner.min_headroom_bits report.NM.min_headroom_bits

(* ------------------------------------------------------------------ *)
(* Determinism: same spec => byte-identical plan, in any domain        *)
(* ------------------------------------------------------------------ *)

let test_plan_deterministic () =
  let limits =
    { Planner.default_constraints with Planner.objective = Planner.Weighted 0.3 }
  in
  let render () =
    Planner.json_of_outcome
      (Planner.plan ~unit_model (toy_workload ~path:CM.Prepared ()) limits)
  in
  let reference = render () in
  Alcotest.(check string) "same spec, identical bytes" reference (render ());
  (* Identical across domains: the planner owns no shared mutable
     state, so concurrent plans of the same spec agree bit for bit. *)
  let domains = Array.init 2 (fun _ -> Domain.spawn render) in
  Array.iter
    (fun d ->
      Alcotest.(check string) "cross-domain identical bytes" reference (Domain.join d))
    domains

(* ------------------------------------------------------------------ *)
(* Network-aware objective                                             *)
(* ------------------------------------------------------------------ *)

let test_net_objective () =
  let no_net = plan_toy () in
  let wan_limits =
    { Planner.default_constraints with Planner.net = Some Profile.wan }
  in
  let wan = plan_toy ~limits:wan_limits () in
  let b0 = best_exn no_net and bw = best_exn wan in
  (* The feasible set is pricing-independent, so the WAN winner's compute
     term alone is >= the compute-only optimum; the wire term on top is at
     least one full round trip (the protocol always exchanges messages in
     both directions on some link). *)
  Alcotest.(check bool) "wan objective >= compute optimum + one RTT" true
    (bw.Planner.objective_seconds
     >= b0.Planner.objective_seconds +. Profile.wan.Profile.rtt_s);
  List.iter
    (fun e ->
      Alcotest.(check bool) "every wan entry carries a positive wire term" true
        (e.Planner.objective_seconds > Profile.wan.Profile.rtt_s))
    wan.Planner.ranked;
  (* Net pricing stays deterministic. *)
  Alcotest.(check string) "byte-identical wan plans"
    (Planner.json_of_outcome wan)
    (Planner.json_of_outcome (plan_toy ~limits:wan_limits ()))

(* ------------------------------------------------------------------ *)
(* Attribution bridge: probe pricing = realized pricing                *)
(* ------------------------------------------------------------------ *)

let test_q_ibits_matches_ring () =
  List.iter
    (fun params ->
      let probe = Params.probe_of_t params in
      let from_moduli = Attribution.q_ibits_of_moduli probe.Params.pr_moduli in
      let chain = Params.chain_length params in
      Alcotest.(check int) "one entry per level" chain (Array.length from_moduli);
      for level = 1 to chain do
        let q = Rq.modulus params.Params.ring ~nprimes:level in
        Alcotest.(check int)
          (Printf.sprintf "%s: level %d" params.Params.name level)
          (Zint.numbits q) from_moduli.(level - 1)
      done)
    [ Params.toy (); Params.bench_small () ]

let test_probe_prices_like_config () =
  let w = toy_workload ~path:CM.Prepared ~layout:Config.Dot_product () in
  let o = Planner.plan ~unit_model w Planner.default_constraints in
  let best = best_exn o in
  let config = Planner.realize w best in
  (* The candidate was priced from its probe; the realized configuration
     must forecast the identical noise walk. *)
  let realized = Attribution.model_params config ~n:24 ~d:3 ~k:3 in
  let probe_report = Planner.forecast realized CM.Prepared in
  Alcotest.(check (float 1e-9)) "headroom identical"
    best.Planner.min_headroom_bits probe_report.NM.min_headroom_bits;
  Alcotest.(check (float 1e-9)) "security from the probe's chain"
    best.Planner.security_bits (Params.security_bits config.Config.bgv)

let () =
  Alcotest.run "plan"
    [ ("limits",
       [ Alcotest.test_case "ranked entries clear limits" `Quick
           test_entries_clear_limits ]);
      ("live",
       [ Alcotest.test_case "round trip exact" `Slow test_roundtrip_exact;
         Alcotest.test_case "forecast conservative" `Quick
           test_forecast_conservative ]);
      ("determinism",
       [ Alcotest.test_case "byte-identical plans" `Quick test_plan_deterministic ]);
      ("network",
       [ Alcotest.test_case "wan objective prices the wire" `Quick
           test_net_objective ]);
      ("attribution",
       [ Alcotest.test_case "q_ibits matches ring" `Quick test_q_ibits_matches_ring;
         Alcotest.test_case "probe prices like config" `Quick
           test_probe_prices_like_config ]) ]
