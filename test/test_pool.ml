(* The domain work-pool underpins every parallel protocol phase; these
   tests pin down the contract the protocol layer relies on: ordered
   results, jobs-independence, exception propagation, and exact
   worker-state merging. *)

module Pool = Util.Pool
module Counters = Util.Counters

let test_map_ordered () =
  let a = Array.init 103 (fun i -> i) in
  let expected = Array.map (fun x -> (x * x) + 1) a in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "map jobs=%d" jobs)
        expected
        (Pool.map ~jobs (fun x -> (x * x) + 1) a))
    [ 1; 2; 3; 4; 7; 64 ]

let test_mapi_init_ordered () =
  let a = Array.init 57 (fun i -> 2 * i) in
  let expected = Array.mapi (fun i x -> (i, x) ) a in
  Alcotest.(check (array (pair int int)))
    "mapi" expected
    (Pool.mapi ~jobs:4 (fun i x -> (i, x)) a);
  Alcotest.(check (array int))
    "init" (Array.init 57 (fun i -> i * 3))
    (Pool.init ~jobs:4 57 (fun i -> i * 3))

let test_jobs_equivalence () =
  (* jobs=1 runs in the calling domain; any other count must produce the
     same array, element for element. *)
  let a = Array.init 64 (fun i -> i) in
  let f i x = (i * 31) lxor (x * 7) in
  let seq = Pool.mapi ~jobs:1 f a in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d = jobs=1" jobs)
        seq
        (Pool.mapi ~jobs f a))
    [ 2; 3; 5; 8; 63; 64 ]

let test_empty_and_singleton () =
  Alcotest.(check (array int)) "empty" [||] (Pool.map ~jobs:4 (fun x -> x) [||]);
  Alcotest.(check (array int)) "singleton" [| 9 |] (Pool.map ~jobs:4 (fun x -> x + 8) [| 1 |]);
  Alcotest.(check (array int)) "init 0" [||] (Pool.init ~jobs:4 0 (fun i -> i))

exception Boom of int

let test_exception_propagation () =
  let failing jobs =
    try
      ignore (Pool.map ~jobs (fun x -> if x = 13 then raise (Boom x) else x)
                (Array.init 20 (fun i -> i)));
      None
    with Boom i -> Some i
  in
  Alcotest.(check (option int)) "sequential" (Some 13) (failing 1);
  Alcotest.(check (option int)) "parallel" (Some 13) (failing 4)

let test_exception_lowest_chunk () =
  (* Failures at indices 3 (chunk 1) and 7 (chunk 3) with 4 workers over
     8 elements: the lowest-indexed failing chunk's exception wins. *)
  let got =
    try
      ignore (Pool.map ~jobs:4
                (fun x -> if x = 3 || x = 7 then raise (Boom x) else x)
                (Array.init 8 (fun i -> i)));
      None
    with Boom i -> Some i
  in
  Alcotest.(check (option int)) "lowest failing chunk" (Some 3) got

let test_map_local_counter_merge () =
  (* Per-worker Counters absorbed after the join must give totals that
     do not depend on the job count — the protocol's exactness claim. *)
  let run jobs =
    let total = Counters.create () in
    let out =
      Pool.map_local ~jobs ~make:Counters.create
        ~merge:(fun w -> Counters.absorb ~into:total w)
        ~f:(fun w i x ->
          Counters.record w Counters.Encrypt;
          Counters.record_n w Counters.Hom_add 3;
          Counters.record w (Counters.Bytes_sent x);
          i + x)
        (Array.init 37 (fun i -> i * 2))
    in
    (out, Counters.encryptions total, Counters.hom_adds total, Counters.bytes_sent total)
  in
  let out1, e1, a1, b1 = run 1 in
  let out4, e4, a4, b4 = run 4 in
  Alcotest.(check (array int)) "results" out1 out4;
  Alcotest.(check int) "encrypts jobs=1" 37 e1;
  Alcotest.(check int) "encrypts jobs=4" 37 e4;
  Alcotest.(check int) "adds jobs=1" (3 * 37) a1;
  Alcotest.(check int) "adds jobs=4" (3 * 37) a4;
  Alcotest.(check int) "bytes equal" b1 b4

let test_merge_worker_order () =
  (* merge is called in worker order, in the calling domain. *)
  let firsts = ref [] in
  ignore
    (Pool.map_local ~jobs:4
       ~make:(fun () -> ref (-1))
       ~merge:(fun w -> firsts := !w :: !firsts)
       ~f:(fun w i x ->
         if !w < 0 then w := i;
         x)
       (Array.init 16 (fun i -> i)));
  let order = List.rev !firsts in
  Alcotest.(check (list int)) "worker order" (List.sort compare order) order;
  Alcotest.(check int) "all workers merged" 4 (List.length order)

let test_default_jobs_env () =
  (* SKNN_DOMAINS overrides the machine's recommended count. *)
  Unix.putenv "SKNN_DOMAINS" "3";
  Alcotest.(check int) "env override" 3 (Pool.default_jobs ());
  Unix.putenv "SKNN_DOMAINS" "garbage";
  Alcotest.(check int) "garbage falls back"
    (Stdlib.min (Domain.recommended_domain_count ()) 64)
    (Pool.default_jobs ());
  Unix.putenv "SKNN_DOMAINS" "0";
  Alcotest.(check int) "non-positive falls back"
    (Stdlib.min (Domain.recommended_domain_count ()) 64)
    (Pool.default_jobs ());
  Unix.putenv "SKNN_DOMAINS" ""

let test_invalid_jobs () =
  Alcotest.check_raises "jobs=0" (Invalid_argument "Pool: jobs < 1") (fun () ->
      ignore (Pool.map ~jobs:0 (fun x -> x) [| 1; 2 |]))

let () =
  Alcotest.run "pool"
    [ ("ordering",
       [ Alcotest.test_case "map ordered" `Quick test_map_ordered;
         Alcotest.test_case "mapi/init ordered" `Quick test_mapi_init_ordered;
         Alcotest.test_case "jobs equivalence" `Quick test_jobs_equivalence;
         Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton ]);
      ("exceptions",
       [ Alcotest.test_case "propagation" `Quick test_exception_propagation;
         Alcotest.test_case "lowest chunk wins" `Quick test_exception_lowest_chunk;
         Alcotest.test_case "invalid jobs" `Quick test_invalid_jobs ]);
      ("state",
       [ Alcotest.test_case "counter merge" `Quick test_map_local_counter_merge;
         Alcotest.test_case "merge order" `Quick test_merge_worker_order ]);
      ("config",
       [ Alcotest.test_case "SKNN_DOMAINS" `Quick test_default_jobs_env ]) ]
