(* Model-checked concurrency invariants.

   Each test builds a small model of a real synchronisation pattern in
   the tree and asks the vendored Dscheck checker to explore *every*
   interleaving of its traced operations:

   - the Util.Pool shape (spawn workers, per-worker outcome slots,
     join-all, merge in worker order), whose invariant is the PR 1
     bit-identical-across---jobs guarantee;
   - the Bgv.s_power shape (lock-free fast path over a cached table,
     mutex-protected double-checked extension), whose invariant is
     that concurrent queries always observe a table at least as long
     as they need.

   Each positive model is paired with a deliberately racy variant that
   the checker must *refute* — that's the test that the exploration is
   actually exhaustive rather than vacuously passing. *)

let sched_count = function
  | Ok (s : Dscheck.stats) -> s.Dscheck.schedules
  | Error f -> Alcotest.failf "unexpected counterexample: %a" Dscheck.pp_failure f

let expect_assert name = function
  | Ok (_ : Dscheck.stats) ->
    Alcotest.failf "%s: checker failed to refute the racy variant" name
  | Error { Dscheck.error = Dscheck.Exception (Assert_failure _); _ } -> ()
  | Error f -> Alcotest.failf "%s: wrong failure kind: %a" name Dscheck.pp_failure f

(* ------------------------------------------------------------------ *)
(* Util.Pool model: join-then-merge in worker order                    *)
(* ------------------------------------------------------------------ *)

(* Workers write disjoint outcome slots; the orchestrator merges only
   after joining every worker, in worker (not completion) order.  The
   merged value must be the same on every schedule. *)
let test_pool_merge_deterministic () =
  let result =
    Dscheck.trace (fun () ->
        let slots = [| Dscheck.atomic 0; Dscheck.atomic 0; Dscheck.atomic 0 |] in
        let worker i = Dscheck.set slots.(i) (10 * (i + 1)) in
        let hs = Array.init 3 (fun i -> Dscheck.spawn (fun () -> worker i)) in
        Array.iter Dscheck.join hs;
        let merged =
          Array.fold_left (fun acc s -> (acc * 100) + Dscheck.unsafe_peek s) 0 slots
        in
        assert (merged = 102030))
  in
  let n = sched_count result in
  (* Three independent single-op workers: the checker must actually
     branch (3! completion orders at minimum), not run one schedule. *)
  Alcotest.(check bool) "explored more than one schedule" true (n >= 6)

(* Racy variant: workers fold into one shared accumulator with a
   non-atomic read-modify-write instead of private slots — the classic
   lost update.  The checker must find a schedule where an update
   vanishes. *)
let test_pool_shared_accumulator_refuted () =
  let result =
    Dscheck.trace (fun () ->
        let acc = Dscheck.atomic 0 in
        let worker i =
          let v = Dscheck.get acc in
          Dscheck.set acc (v + (10 * (i + 1)))
        in
        let hs = Array.init 2 (fun i -> Dscheck.spawn (fun () -> worker i)) in
        Array.iter Dscheck.join hs;
        assert (Dscheck.unsafe_peek acc = 30))
  in
  expect_assert "pool-shared-accumulator" result

(* fetch_and_add is the correct shared-counter primitive: same shape as
   the racy variant, but the read-modify-write is one traced op. *)
let test_pool_faa_accumulator_ok () =
  let result =
    Dscheck.trace (fun () ->
        let acc = Dscheck.atomic 0 in
        let worker i = ignore (Dscheck.fetch_and_add acc (10 * (i + 1))) in
        let hs = Array.init 2 (fun i -> Dscheck.spawn (fun () -> worker i)) in
        Array.iter Dscheck.join hs;
        assert (Dscheck.unsafe_peek acc = 30))
  in
  ignore (sched_count result)

(* ------------------------------------------------------------------ *)
(* Bgv.s_power model: double-checked table extension under a mutex     *)
(* ------------------------------------------------------------------ *)

(* [len] models the length of the cached secret-key power table
   (starts at 1 = s^1, as in Bgv.key_gen).  The fast path reads it
   without the lock; the slow path re-checks under the lock before
   extending, exactly like Bgv.s_power. *)
let s_power_model ~racy () =
  let mu = Dscheck.Mutex.create () in
  let len = Dscheck.atomic 1 in
  let extensions = Dscheck.atomic 0 in
  let s_power need =
    if Dscheck.get len >= need then ()
    else if racy then begin
      (* No lock, no double check: get-then-set races. *)
      ignore (Dscheck.fetch_and_add extensions 1);
      Dscheck.set len need
    end
    else
      Dscheck.Mutex.protect mu (fun () ->
          if Dscheck.get len < need then begin
            ignore (Dscheck.fetch_and_add extensions 1);
            Dscheck.set len need
          end)
  in
  let a = Dscheck.spawn (fun () -> s_power 3) in
  let b = Dscheck.spawn (fun () -> s_power 2) in
  Dscheck.join a;
  Dscheck.join b;
  (* Every query must observe a table long enough for its own need —
     after both finish, the table covers the larger request. *)
  assert (Dscheck.unsafe_peek len = 3)

let test_s_power_double_checked_ok () =
  ignore (sched_count (Dscheck.trace (s_power_model ~racy:false)))

let test_s_power_unlocked_refuted () =
  expect_assert "s-power-unlocked" (Dscheck.trace (s_power_model ~racy:true))

(* ------------------------------------------------------------------ *)
(* Checker self-tests: mutual exclusion and deadlock detection         *)
(* ------------------------------------------------------------------ *)

let test_mutex_excludes () =
  let result =
    Dscheck.trace (fun () ->
        let mu = Dscheck.Mutex.create () in
        let x = Dscheck.atomic 0 in
        let bump () =
          Dscheck.Mutex.protect mu (fun () ->
              let v = Dscheck.get x in
              Dscheck.set x (v + 1))
        in
        let a = Dscheck.spawn bump and b = Dscheck.spawn bump in
        Dscheck.join a;
        Dscheck.join b;
        (* The same read-modify-write that loses updates unlocked is
           exact under the mutex. *)
        assert (Dscheck.unsafe_peek x = 2))
  in
  ignore (sched_count result)

let test_deadlock_detected () =
  let result =
    Dscheck.trace (fun () ->
        let m1 = Dscheck.Mutex.create () and m2 = Dscheck.Mutex.create () in
        let locker a b () =
          Dscheck.Mutex.lock a;
          Dscheck.Mutex.lock b;
          Dscheck.Mutex.unlock b;
          Dscheck.Mutex.unlock a
        in
        let p = Dscheck.spawn (locker m1 m2) and q = Dscheck.spawn (locker m2 m1) in
        Dscheck.join p;
        Dscheck.join q)
  in
  match result with
  | Ok _ -> Alcotest.fail "opposite-order locking: deadlock not detected"
  | Error { Dscheck.error = Dscheck.Deadlock; _ } -> ()
  | Error f -> Alcotest.failf "wrong failure kind: %a" Dscheck.pp_failure f

let () =
  Alcotest.run "dscheck"
    [ ( "pool-model",
        [ Alcotest.test_case "merge in worker order is schedule-independent" `Quick
            test_pool_merge_deterministic;
          Alcotest.test_case "shared-accumulator race is refuted" `Quick
            test_pool_shared_accumulator_refuted;
          Alcotest.test_case "fetch_and_add accumulator verified" `Quick
            test_pool_faa_accumulator_ok
        ] );
      ( "s-power-model",
        [ Alcotest.test_case "double-checked extension verified" `Quick
            test_s_power_double_checked_ok;
          Alcotest.test_case "unlocked extension race is refuted" `Quick
            test_s_power_unlocked_refuted
        ] );
      ( "checker",
        [ Alcotest.test_case "mutex enforces mutual exclusion" `Quick
            test_mutex_excludes;
          Alcotest.test_case "opposite-order locking deadlocks" `Quick
            test_deadlock_detected
        ] )
    ]
