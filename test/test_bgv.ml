(* Tests for the BGV layer: parameters, plaintext packing, encryption
   round-trips, homomorphic semantics (slot-wise), modulus switching,
   relinearisation, noise accounting and ciphertext metadata. *)

module Rng = Util.Rng

let params = Params.toy ()
let tp = params.Params.t_plain
let nslots = Params.slot_count params

let rng () = Rng.of_int 1234

let keys = Bgv.keygen (rng ()) params

let random_slots seed =
  let r = Rng.of_int seed in
  Array.init nslots (fun _ -> Rng.int64_below r tp)

let enc ?seed slots =
  let r = Rng.of_int (Option.value ~default:99 seed) in
  Bgv.encrypt r keys.Bgv.pk (Plaintext.of_slots params slots)

let dec ct = Plaintext.to_slots (Bgv.decrypt keys.Bgv.sk ct)

let check_slots msg expected actual =
  Alcotest.(check (array int64)) msg expected actual

let map2 f a b = Array.init (Array.length a) (fun i -> f a.(i) b.(i))

(* ------------------------------------------------------------------ *)
(* Params                                                              *)
(* ------------------------------------------------------------------ *)

let test_params_presets () =
  List.iter
    (fun p ->
      let open Params in
      Alcotest.(check bool) (p.name ^ ": t prime") true (Prime64.is_prime p.t_plain);
      Alcotest.(check int64) (p.name ^ ": t = 1 mod 2n") 1L
        (Int64.rem p.t_plain (Int64.of_int (2 * p.n)));
      Array.iter
        (fun m ->
          Alcotest.(check bool) (p.name ^ ": chain prime") true
            (Prime64.is_prime (Int64.of_int m));
          Alcotest.(check int) (p.name ^ ": chain = 1 mod 2n") 1 (m mod (2 * p.n)))
        p.moduli;
      let distinct = List.sort_uniq compare (Array.to_list p.moduli) in
      Alcotest.(check int) (p.name ^ ": distinct") (Array.length p.moduli)
        (List.length distinct);
      Alcotest.(check bool) (p.name ^ ": log2 q > 0") true (Params.log2_q p > 0.0))
    [ Params.toy (); Params.bench_small () ]

let test_params_security_estimate () =
  (* The secure preset must report >= 128 bits; toy is nowhere near. *)
  Alcotest.(check bool) "secure >= 120" true
    (Params.security_bits (Params.secure ()) >= 120.0);
  Alcotest.(check bool) "toy is toy" true (Params.security_bits (Params.toy ()) < 32.0)

let test_params_validation () =
  Alcotest.check_raises "plain_bits too large"
    (Invalid_argument "Params.create: plain_bits > 50")
    (fun () ->
      ignore (Params.create ~name:"x" ~n:256 ~plain_bits:60 ~prime_bits:30 ~chain_len:2 ()));
  Alcotest.check_raises "n not a power of two"
    (Invalid_argument "Params.create: n not a power of two")
    (fun () ->
      ignore (Params.create ~name:"x" ~n:100 ~plain_bits:20 ~prime_bits:30 ~chain_len:2 ()))

let test_params_infeasible () =
  (* Structured infeasibility, distinct from programmer errors: these
     are legitimate empty points of a parameter search. *)
  let probe ~n ~plain_bits ~prime_bits ~chain_len =
    Params.probe ~name:"inf" ~n ~plain_bits ~prime_bits ~chain_len ()
  in
  (* Any prime = 1 mod 2n exceeds 2^plain_bits when plain_bits is
     smaller than log2(2n). *)
  (match probe ~n:4096 ~plain_bits:10 ~prime_bits:30 ~chain_len:2 with
   | exception Params.Infeasible (Params.No_plain_prime { n = 4096; plain_bits = 10 })
     -> ()
   | exception e -> Alcotest.failf "expected No_plain_prime, got %s" (Printexc.to_string e)
   | _ -> Alcotest.fail "expected No_plain_prime");
  (match probe ~n:256 ~plain_bits:20 ~prime_bits:31 ~chain_len:2 with
   | exception Params.Infeasible (Params.Prime_bits_too_large { prime_bits = 31; _ })
     -> ()
   | exception e ->
     Alcotest.failf "expected Prime_bits_too_large, got %s" (Printexc.to_string e)
   | _ -> Alcotest.fail "expected Prime_bits_too_large");
  (* The (prime_bits, 2n) window holds only finitely many NTT primes;
     ask for more than it can contain. *)
  (match probe ~n:8192 ~plain_bits:20 ~prime_bits:16 ~chain_len:8 with
   | exception Params.Infeasible (Params.Chain_exhausted { n = 8192; _ }) -> ()
   | exception e ->
     Alcotest.failf "expected Chain_exhausted, got %s" (Printexc.to_string e)
   | _ -> Alcotest.fail "expected Chain_exhausted");
  (* describe_infeasibility renders each reason. *)
  List.iter
    (fun reason ->
      Alcotest.(check bool) "description nonempty" true
        (String.length (Params.describe_infeasibility reason) > 0))
    [ Params.No_plain_prime { n = 4096; plain_bits = 10 };
      Params.Prime_bits_too_large { prime_bits = 31; limit = 30 };
      Params.Chain_exhausted { n = 8192; prime_bits = 16; chain_len = 8 } ]

let test_security_bits_monotone () =
  (* At fixed n: more modulus, fewer bits.  At fixed modulus: a larger
     ring, more bits.  Strict in-table, non-strict at the clamps. *)
  List.iter
    (fun n ->
      let prev = ref infinity in
      for q10 = 2 to 60 do
        let log2_q = float_of_int (q10 * 10) in
        let s = Params.security_bits_for ~n ~log2_q in
        Alcotest.(check bool)
          (Printf.sprintf "n=%d decreasing in q (log2 q=%g)" n log2_q)
          true
          (s <= !prev +. 1e-9);
        prev := s
      done)
    [ 256; 1024; 4096; 32768 ];
  List.iter
    (fun log2_q ->
      let prev = ref 0.0 in
      List.iter
        (fun n ->
          let s = Params.security_bits_for ~n ~log2_q in
          Alcotest.(check bool)
            (Printf.sprintf "log2 q=%g increasing in n (n=%d)" log2_q n)
            true
            (s >= !prev -. 1e-9);
          prev := s)
        [ 64; 128; 256; 512; 1024; 2048; 4096; 8192; 16384; 32768 ])
    [ 60.0; 109.0; 218.0 ];
  (* The homomorphicencryption.org anchors: at the table's (n, log2 q)
     rows the estimate is exactly 128 bits. *)
  List.iter
    (fun (n, log2_q) ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "anchor n=%d" n)
        128.0
        (Params.security_bits_for ~n ~log2_q))
    [ (1024, 27.0); (2048, 54.0); (4096, 109.0); (8192, 218.0); (16384, 438.0);
      (32768, 881.0) ]

let test_probe_matches_create () =
  (* of_probe (probe ...) = create ..., and probe_of_t inverts it. *)
  let spec = (256, 18, 28, 3) in
  let n, plain_bits, prime_bits, chain_len = spec in
  let p = Params.create ~name:"rt" ~n ~plain_bits ~prime_bits ~chain_len () in
  let pr = Params.probe ~name:"rt" ~n ~plain_bits ~prime_bits ~chain_len () in
  Alcotest.(check int64) "same plaintext prime" p.Params.t_plain pr.Params.pr_t_plain;
  Alcotest.(check (array int)) "same chain" p.Params.moduli pr.Params.pr_moduli;
  let back = Params.probe_of_t p in
  Alcotest.(check int64) "probe_of_t plaintext prime" pr.Params.pr_t_plain
    back.Params.pr_t_plain;
  Alcotest.(check (array int)) "probe_of_t chain" pr.Params.pr_moduli
    back.Params.pr_moduli;
  Alcotest.(check (float 1e-9)) "probe_log2_q matches" (Params.log2_q p)
    (Params.probe_log2_q pr)

(* ------------------------------------------------------------------ *)
(* Plaintext                                                           *)
(* ------------------------------------------------------------------ *)

let test_plaintext_roundtrips () =
  let slots = random_slots 1 in
  check_slots "slots roundtrip" slots (Plaintext.to_slots (Plaintext.of_slots params slots));
  let coeffs = random_slots 2 in
  Alcotest.(check (array int64)) "coeffs roundtrip" coeffs
    (Plaintext.to_coeffs (Plaintext.of_coeffs params coeffs))

let test_plaintext_constant () =
  let pt = Plaintext.constant params 42L in
  Array.iter (fun v -> Alcotest.(check int64) "const slot" 42L v) (Plaintext.to_slots pt);
  Alcotest.(check int64) "slot accessor" 42L (Plaintext.slot pt 17)

let test_plaintext_negative_input () =
  let pt = Plaintext.constant params (-1L) in
  Alcotest.(check int64) "-1 reduced" (Int64.pred tp) (Plaintext.slot pt 0)

let test_plaintext_arith () =
  let a = random_slots 3 and b = random_slots 4 in
  let pa = Plaintext.of_slots params a and pb = Plaintext.of_slots params b in
  check_slots "add" (map2 (Mod64.add tp) a b) (Plaintext.to_slots (Plaintext.add pa pb));
  check_slots "sub" (map2 (Mod64.sub tp) a b) (Plaintext.to_slots (Plaintext.sub pa pb));
  check_slots "mul" (map2 (Mod64.mul tp) a b) (Plaintext.to_slots (Plaintext.mul pa pb));
  check_slots "scale" (Array.map (fun x -> Mod64.mul tp x 7L) a)
    (Plaintext.to_slots (Plaintext.scale pa 7L))

(* ------------------------------------------------------------------ *)
(* Encryption round-trips                                              *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  let slots = random_slots 5 in
  check_slots "enc/dec" slots (dec (enc slots))

let test_roundtrip_edge_values () =
  let edge = Array.make nslots 0L in
  edge.(0) <- Int64.pred tp;
  edge.(1) <- 1L;
  edge.(2) <- Int64.div tp 2L;
  check_slots "edge values" edge (dec (enc edge))

let test_fresh_metadata () =
  let ct = enc (random_slots 6) in
  Alcotest.(check int) "degree" 1 (Bgv.degree ct);
  Alcotest.(check int) "level" (Params.chain_length params) (Bgv.level ct);
  Alcotest.(check bool) "budget positive" true (Bgv.noise_budget_bits ct > 0.0);
  Alcotest.(check bool) "byte size" true
    (Bgv.byte_size ct = (2 * Bgv.level ct * params.Params.n * 4) + 40)

let test_encryption_randomized () =
  (* Two encryptions of the same plaintext are different ciphertexts. *)
  let slots = random_slots 7 in
  let c1 = enc ~seed:1 slots and c2 = enc ~seed:2 slots in
  check_slots "both decrypt" (dec c1) (dec c2);
  (* Sizes equal but content differs: compare via serialised noise path —
     subtracting should give an encryption of 0 with nonzero body. *)
  let diff = dec (Bgv.sub c1 c2) in
  Array.iter (fun v -> Alcotest.(check int64) "same plaintext" 0L v) diff

(* ------------------------------------------------------------------ *)
(* Homomorphic semantics                                               *)
(* ------------------------------------------------------------------ *)

let test_add_sub_neg () =
  let a = random_slots 8 and b = random_slots 9 in
  let ca = enc a and cb = enc b in
  check_slots "hom add" (map2 (Mod64.add tp) a b) (dec (Bgv.add ca cb));
  check_slots "hom sub" (map2 (Mod64.sub tp) a b) (dec (Bgv.sub ca cb));
  check_slots "hom neg" (Array.map (Mod64.neg tp) a) (dec (Bgv.neg ca))

let test_add_plain_and_const () =
  let a = random_slots 10 and b = random_slots 11 in
  let ca = enc a in
  check_slots "add_plain" (map2 (Mod64.add tp) a b)
    (dec (Bgv.add_plain ca (Plaintext.of_slots params b)));
  check_slots "add_const" (Array.map (fun x -> Mod64.add tp x 17L) a)
    (dec (Bgv.add_const ca 17L))

let test_mul_plain_scalar () =
  let a = random_slots 12 and b = random_slots 13 in
  let ca = enc a in
  check_slots "mul_plain" (map2 (Mod64.mul tp) a b)
    (dec (Bgv.mul_plain ca (Plaintext.of_slots params b)));
  check_slots "mul_scalar" (Array.map (fun x -> Mod64.mul tp x 1000L) a)
    (dec (Bgv.mul_scalar ca 1000L))

let test_mul_relin () =
  let a = random_slots 14 and b = random_slots 15 in
  let ca = enc a and cb = enc b in
  let prod = Bgv.mul ~rlk:keys.Bgv.rlk ca cb in
  Alcotest.(check int) "relinearised to degree 1" 1 (Bgv.degree prod);
  Alcotest.(check bool) "rescaled below top level" true
    (Bgv.level prod < Params.chain_length params);
  check_slots "hom mul" (map2 (Mod64.mul tp) a b) (dec prod)

let test_mul_no_relin () =
  let a = random_slots 16 and b = random_slots 17 in
  let prod = Bgv.mul (enc a) (enc b) in
  Alcotest.(check int) "degree 2" 2 (Bgv.degree prod);
  check_slots "degree-2 decrypt" (map2 (Mod64.mul tp) a b) (dec prod)

let test_mul_depth_chain () =
  (* x, x^2, x^3, x^4 with relinearisation at every step. *)
  let a = random_slots 18 in
  let ct = enc a in
  let acc = ref ct and expect = ref (Array.copy a) in
  for _ = 2 to 4 do
    acc := Bgv.mul ~rlk:keys.Bgv.rlk !acc (Bgv.truncate_to_level ct (Bgv.level !acc));
    expect := map2 (Mod64.mul tp) !expect a;
    check_slots "power" !expect (dec !acc)
  done;
  Alcotest.(check bool) "budget still positive" true (Bgv.noise_budget_bits !acc > 0.0)

let test_mul_high_degree_no_relin () =
  (* Degree-4 ciphertext via two tensor squarings. *)
  let a = random_slots 19 in
  let ct = enc a in
  let sq = Bgv.mul ct ct in
  let quad = Bgv.mul sq (Bgv.truncate_to_level sq (Bgv.level sq)) in
  Alcotest.(check int) "degree 4" 4 (Bgv.degree quad);
  let expect = Array.map (fun x -> Mod64.pow tp x 4L) a in
  check_slots "x^4" expect (dec quad)

let test_relinearize_explicit () =
  let a = random_slots 20 in
  let ct = enc a in
  let sq = Bgv.mul ~rescale:false ct ct in
  Alcotest.(check int) "tensor degree 2" 2 (Bgv.degree sq);
  let rl = Bgv.relinearize keys.Bgv.rlk sq in
  Alcotest.(check int) "relin degree 1" 1 (Bgv.degree rl);
  check_slots "same plaintext" (dec sq) (dec rl);
  Alcotest.check_raises "wrong degree" (Invalid_argument "Bgv.relinearize: degree <> 2")
    (fun () -> ignore (Bgv.relinearize keys.Bgv.rlk ct))

let test_modswitch () =
  let a = random_slots 21 in
  let ct = enc a in
  let sw = Bgv.modswitch ct in
  Alcotest.(check int) "level dropped" (Bgv.level ct - 1) (Bgv.level sw);
  check_slots "plaintext preserved (factor tracked)" a (dec sw);
  let sw2 = Bgv.modswitch (Bgv.modswitch sw) in
  check_slots "three switches" a (dec sw2)

let test_modswitch_reduces_noise () =
  let a = random_slots 22 in
  let prod = Bgv.mul ~rescale:false (enc a) (enc a) in
  let sw = Bgv.modswitch prod in
  Alcotest.(check bool) "noise decreased" true (Bgv.noise_bits sw < Bgv.noise_bits prod)

let test_truncate () =
  let a = random_slots 23 in
  let ct = enc a in
  let tr = Bgv.truncate_to_level ct (Bgv.level ct - 2) in
  Alcotest.(check int) "level" (Bgv.level ct - 2) (Bgv.level tr);
  check_slots "truncation exact" a (dec tr);
  Alcotest.check_raises "cannot raise"
    (Invalid_argument "Bgv.truncate_to_level: cannot raise level")
    (fun () -> ignore (Bgv.truncate_to_level tr (Bgv.level ct)))

let test_mixed_level_ops () =
  (* Operations between ciphertexts at different levels must align. *)
  let a = random_slots 24 and b = random_slots 25 in
  let ca = enc a in
  let cb = Bgv.modswitch (Bgv.modswitch (enc b)) in
  check_slots "add across levels" (map2 (Mod64.add tp) a b) (dec (Bgv.add ca cb));
  check_slots "mul across levels" (map2 (Mod64.mul tp) a b)
    (dec (Bgv.mul ~rlk:keys.Bgv.rlk ca cb))

let test_eval_poly () =
  let a = random_slots 26 in
  let ct = enc a in
  let horner coeffs x =
    let d = Array.length coeffs - 1 in
    let acc = ref coeffs.(d) in
    for i = d - 1 downto 0 do
      acc := Mod64.add tp (Mod64.mul tp !acc x) coeffs.(i)
    done;
    !acc
  in
  List.iter
    (fun coeffs ->
      let expected = Array.map (horner coeffs) a in
      let with_relin = Bgv.eval_poly ~rlk:keys.Bgv.rlk ~coeffs ct in
      check_slots
        (Printf.sprintf "poly deg %d (relin)" (Array.length coeffs - 1))
        expected (dec with_relin);
      let without = Bgv.eval_poly ~coeffs ct in
      check_slots
        (Printf.sprintf "poly deg %d (no relin)" (Array.length coeffs - 1))
        expected (dec without))
    [ [| 7L |]; [| 3L; 5L |]; [| 1L; 2L; 3L |]; [| 11L; 0L; 5L; 2L |] ]

let test_counters () =
  let c = Util.Counters.create () in
  let a = random_slots 27 in
  let r = Rng.of_int 7 in
  let ct = Bgv.encrypt ~counters:c r keys.Bgv.pk (Plaintext.of_slots params a) in
  let ct2 = Bgv.mul ~counters:c ~rlk:keys.Bgv.rlk ct ct in
  ignore (Bgv.add ~counters:c ct2 ct2);
  ignore (Bgv.decrypt ~counters:c keys.Bgv.sk ct2);
  Alcotest.(check int) "encryptions" 1 (Util.Counters.encryptions c);
  Alcotest.(check int) "decryptions" 1 (Util.Counters.decryptions c);
  Alcotest.(check int) "muls" 1 (Util.Counters.hom_muls c);
  Alcotest.(check int) "relins" 1 (Util.Counters.hom_relins c);
  Alcotest.(check bool) "modswitches happened" true (Util.Counters.hom_modswitches c > 0);
  Alcotest.(check int) "adds" 1 (Util.Counters.hom_adds c)

let test_homomorphic_distance_pattern () =
  (* The exact pattern the protocol uses: sum over dimensions of
     (p_i - q_i)^2, slot-packed, then an order-preserving polynomial. *)
  let d = 4 in
  let point_slots = Array.init d (fun j -> Array.init nslots (fun i -> Int64.of_int ((i + (3 * j)) mod 50))) in
  let query = Array.init d (fun j -> Int64.of_int (7 * j)) in
  let cts = Array.map enc point_slots in
  let acc = ref None in
  Array.iteri
    (fun j ct ->
      let diff = Bgv.add_const ct (Int64.neg query.(j)) in
      let sq = Bgv.mul diff diff in
      acc := Some (match !acc with None -> sq | Some a -> Bgv.add a sq))
    cts;
  let dist_ct = Option.get !acc in
  let expected =
    Array.init nslots (fun i ->
        let s = ref 0L in
        for j = 0 to d - 1 do
          let diff = Mod64.sub tp point_slots.(j).(i) (Mod64.reduce tp query.(j)) in
          s := Mod64.add tp !s (Mod64.mul tp diff diff)
        done;
        !s)
  in
  check_slots "packed squared distances" expected (dec dist_ct);
  let masked = Bgv.eval_poly ~rlk:keys.Bgv.rlk ~coeffs:[| 3L; 7L; 2L |] dist_ct in
  let mask x = Mod64.add tp 3L (Mod64.add tp (Mod64.mul tp 7L x) (Mod64.mul tp 2L (Mod64.mul tp x x))) in
  check_slots "masked distances" (Array.map mask expected) (dec masked)

let test_rerandomize () =
  let a = random_slots 35 in
  let ct = enc a in
  let r = Rng.of_int 4242 in
  let ct' = Bgv.rerandomize r keys.Bgv.pk ct in
  check_slots "same plaintext" a (dec ct');
  Alcotest.(check int) "level preserved" (Bgv.level ct) (Bgv.level ct');
  (* Fresh randomness: the difference decrypts to zero but the wire
     bytes differ. *)
  Alcotest.(check bool) "bytes differ" true
    (Bgv.ct_to_bytes ct <> Bgv.ct_to_bytes ct')

let test_noise_exhaustion_raises () =
  (* Repeated unrescaled squaring doubles the noise bits each time and
     must eventually make decryption refuse rather than return garbage. *)
  let ct = ref (enc (random_slots 36)) in
  let blew_up = ref false in
  (try
     for _ = 1 to 8 do
       ct := Bgv.mul ~rescale:false !ct !ct;
       ignore (Bgv.decrypt keys.Bgv.sk !ct)
     done
   with Bgv.Decryption_failure msg ->
     blew_up := true;
     let contains hay needle =
       let lh = String.length hay and ln = String.length needle in
       let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
       go 0
     in
     Alcotest.(check bool) "helpful message" true (contains msg "noise"));
  Alcotest.(check bool) "budget exhaustion detected" true !blew_up

(* ------------------------------------------------------------------ *)
(* Galois automorphisms                                                *)
(* ------------------------------------------------------------------ *)

let test_plaintext_substitute () =
  (* m(x) = x: substitution by k gives x^k (with the negacyclic sign). *)
  let coeffs = Array.make nslots 0L in
  coeffs.(1) <- 1L;
  let pt = Plaintext.of_coeffs params coeffs in
  let s3 = Plaintext.to_coeffs (Plaintext.substitute pt ~k:3) in
  Alcotest.(check int64) "x -> x^3" 1L s3.(3);
  let sneg = Plaintext.to_coeffs (Plaintext.substitute pt ~k:((2 * nslots) - 1)) in
  (* x^(2n-1) = x^(n-1) * x^n = -x^(n-1). *)
  Alcotest.(check int64) "x -> -x^(n-1)" (Int64.pred tp) sneg.(nslots - 1);
  Alcotest.(check bool) "identity" true
    (Plaintext.equal pt (Plaintext.substitute pt ~k:1));
  Alcotest.check_raises "even k" (Invalid_argument "Plaintext.substitute: k must be odd")
    (fun () -> ignore (Plaintext.substitute pt ~k:2))

let test_plaintext_substitute_permutes_slots () =
  let slots = random_slots 40 in
  let pt = Plaintext.of_slots params slots in
  let rotated = Plaintext.to_slots (Plaintext.substitute pt ~k:3) in
  let sort a = let c = Array.copy a in Array.sort compare c; c in
  Alcotest.(check (array int64)) "slot multiset preserved" (sort slots) (sort rotated);
  Alcotest.(check bool) "actually moved" true (rotated <> slots)

let test_apply_galois_matches_plaintext () =
  let slots = random_slots 41 in
  let pt = Plaintext.of_slots params slots in
  let ct = enc slots in
  List.iter
    (fun elt ->
      let gk = Bgv.galois_keygen (Rng.of_int (1000 + elt)) keys.Bgv.sk ~elt in
      Alcotest.(check int) "elt accessor" elt (Bgv.galois_elt gk);
      let rotated_ct = Bgv.apply_galois gk ct in
      let expected = Plaintext.substitute pt ~k:elt in
      check_slots (Printf.sprintf "galois %d" elt)
        (Plaintext.to_slots expected)
        (dec rotated_ct))
    [ 3; 9; (2 * nslots) - 1; 5 ]

let test_apply_galois_composes () =
  (* sigma_3 . sigma_3 = sigma_9. *)
  let slots = random_slots 42 in
  let ct = enc slots in
  let g3 = Bgv.galois_keygen (Rng.of_int 2001) keys.Bgv.sk ~elt:3 in
  let g9 = Bgv.galois_keygen (Rng.of_int 2002) keys.Bgv.sk ~elt:9 in
  let twice = Bgv.apply_galois g3 (Bgv.apply_galois g3 ct) in
  let once = Bgv.apply_galois g9 ct in
  check_slots "composition" (dec once) (dec twice)

let test_apply_galois_after_ops () =
  (* Rotation commutes with slot-wise arithmetic. *)
  let a = random_slots 43 and b = random_slots 44 in
  let g3 = Bgv.galois_keygen (Rng.of_int 2003) keys.Bgv.sk ~elt:3 in
  let lhs = Bgv.apply_galois g3 (Bgv.add (enc a) (enc b)) in
  let rhs = Bgv.add (Bgv.apply_galois g3 (enc a)) (Bgv.apply_galois g3 (enc b)) in
  check_slots "commutes with add" (dec lhs) (dec rhs);
  Alcotest.(check bool) "budget still positive" true (Bgv.noise_budget_bits lhs > 0.0)

let test_apply_galois_validation () =
  let g3 = Bgv.galois_keygen (Rng.of_int 2004) keys.Bgv.sk ~elt:3 in
  let deg2 = Bgv.mul (enc (random_slots 45)) (enc (random_slots 46)) in
  Alcotest.check_raises "degree 2 refused"
    (Invalid_argument "Bgv.apply_galois: degree <> 1 (relinearise first)")
    (fun () -> ignore (Bgv.apply_galois g3 deg2));
  Alcotest.check_raises "even elt" (Invalid_argument "Bgv.galois_keygen: elt must be odd")
    (fun () -> ignore (Bgv.galois_keygen (Rng.of_int 1) keys.Bgv.sk ~elt:4))

let test_sum_slots () =
  let slots = random_slots 47 in
  let expected =
    Array.fold_left (fun acc v -> Mod64.add tp acc v) 0L slots
  in
  let gks = Bgv.slot_sum_keys (Rng.of_int 3001) keys.Bgv.sk in
  Alcotest.(check bool) "log2 n keys" true
    (List.length gks <= 1 + int_of_float (log (float_of_int nslots) /. log 2.0));
  let summed = Bgv.sum_slots gks (enc slots) in
  Array.iter
    (fun v -> Alcotest.(check int64) "every slot holds the total" expected v)
    (dec summed);
  Alcotest.(check bool) "budget survives" true (Bgv.noise_budget_bits summed > 0.0)

(* ------------------------------------------------------------------ *)
(* Serialisation                                                       *)
(* ------------------------------------------------------------------ *)

let test_ct_serialisation_roundtrip () =
  let a = random_slots 30 in
  let ct = enc a in
  let bytes = Bgv.ct_to_bytes ct in
  Alcotest.(check int) "exact byte_size" (Bgv.byte_size ct) (Bytes.length bytes);
  let ct' = Bgv.ct_of_bytes params bytes in
  check_slots "decrypts identically" a (dec ct');
  Alcotest.(check int) "degree preserved" (Bgv.degree ct) (Bgv.degree ct');
  Alcotest.(check int) "level preserved" (Bgv.level ct) (Bgv.level ct')

let test_ct_serialisation_after_ops () =
  (* Modulus-switched and tensored ciphertexts carry factor and degree
     metadata that must survive the wire. *)
  let a = random_slots 31 and b = random_slots 32 in
  let ct = Bgv.modswitch (Bgv.mul (enc a) (enc b)) in
  let ct' = Bgv.ct_of_bytes params (Bgv.ct_to_bytes ct) in
  check_slots "product roundtrip" (map2 (Mod64.mul tp) a b) (dec ct');
  Alcotest.(check (float 0.001)) "noise metadata" (Bgv.noise_bits ct) (Bgv.noise_bits ct')

let test_ct_serialisation_rejects_garbage () =
  let ct = enc (random_slots 33) in
  let bytes = Bgv.ct_to_bytes ct in
  let flipped = Bytes.copy bytes in
  Bytes.set flipped 0 'X';
  Alcotest.(check bool) "bad magic" true
    (try ignore (Bgv.ct_of_bytes params flipped); false with Failure _ -> true);
  let truncated = Bytes.sub bytes 0 (Bytes.length bytes - 7) in
  Alcotest.(check bool) "truncated" true
    (try ignore (Bgv.ct_of_bytes params truncated); false with Failure _ -> true);
  let padded = Bytes.cat bytes (Bytes.make 3 '\000') in
  Alcotest.(check bool) "trailing bytes" true
    (try ignore (Bgv.ct_of_bytes params padded); false with Failure _ -> true);
  let other = Params.bench_small () in
  Alcotest.(check bool) "wrong params" true
    (try ignore (Bgv.ct_of_bytes other bytes); false with Failure _ -> true)

let test_key_serialisation () =
  let r = Rng.of_int 5555 in
  let pk' = Bgv.pk_of_bytes params (Bgv.pk_to_bytes keys.Bgv.pk) in
  let sk' = Bgv.sk_of_bytes params (Bgv.sk_to_bytes keys.Bgv.sk) in
  let a = random_slots 34 in
  (* Encrypt under the deserialised pk, decrypt under the deserialised
     sk: full key material survives the wire. *)
  let ct = Bgv.encrypt r pk' (Plaintext.of_slots params a) in
  check_slots "pk/sk wire roundtrip" a (Plaintext.to_slots (Bgv.decrypt sk' ct));
  check_slots "old sk agrees" a (dec ct)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let arb_slots =
  QCheck.make ~print:(fun a -> Int64.to_string a.(0))
    QCheck.Gen.(
      let* seed = int_range 0 max_int in
      return (random_slots seed))

let prop_noise_bound_sound =
  (* The tracked noise bound dominates the true noise on random
     circuits: a random sequence of adds, muls, plain ops, switches. *)
  QCheck.Test.make ~count:15 ~name:"tracked noise bound >= actual noise"
    QCheck.(pair (int_range 0 100000) (int_range 1 6))
    (fun (seed, steps) ->
      let r = Rng.of_int seed in
      let ct = ref (enc ~seed (random_slots seed)) in
      let sound = ref (Bgv.actual_noise_bits keys.Bgv.sk !ct <= Bgv.noise_bits !ct) in
      for _ = 1 to steps do
        (match Rng.int_below r 6 with
         | 0 -> ct := Bgv.add !ct !ct
         | 1 -> ct := Bgv.mul_scalar !ct (Int64.of_int (Rng.int_range r 1 1000))
         | 2 -> ct := Bgv.add_const !ct 12345L
         | 3 ->
           if Bgv.noise_budget_bits !ct > 60.0 && Bgv.degree !ct <= 2 then
             ct := Bgv.mul ~rlk:keys.Bgv.rlk !ct (Bgv.truncate_to_level (enc (random_slots (seed + 1))) (Bgv.level !ct))
         | 4 -> if Bgv.level !ct > 2 then ct := Bgv.modswitch !ct
         | _ -> ct := Bgv.sub !ct (Bgv.truncate_to_level (enc (random_slots (seed + 2))) (Bgv.level !ct)));
        sound := !sound && Bgv.actual_noise_bits keys.Bgv.sk !ct <= Bgv.noise_bits !ct
      done;
      !sound)

let prop_add_homomorphic =
  QCheck.Test.make ~count:20 ~name:"Dec(Enc a + Enc b) = a + b"
    (QCheck.pair arb_slots arb_slots)
    (fun (a, b) -> dec (Bgv.add (enc a) (enc b)) = map2 (Mod64.add tp) a b)

let prop_mul_homomorphic =
  QCheck.Test.make ~count:10 ~name:"Dec(Enc a * Enc b) = a * b"
    (QCheck.pair arb_slots arb_slots)
    (fun (a, b) -> dec (Bgv.mul ~rlk:keys.Bgv.rlk (enc a) (enc b)) = map2 (Mod64.mul tp) a b)

let prop_distributivity =
  QCheck.Test.make ~count:8 ~name:"(a+b)*c = a*c + b*c homomorphically"
    (QCheck.triple arb_slots arb_slots arb_slots)
    (fun (a, b, c) ->
      let ca = enc a and cb = enc b and cc = enc c in
      let lhs = Bgv.mul ~rlk:keys.Bgv.rlk (Bgv.add ca cb) cc in
      let rhs = Bgv.add (Bgv.mul ~rlk:keys.Bgv.rlk ca cc) (Bgv.mul ~rlk:keys.Bgv.rlk cb cc) in
      dec lhs = dec rhs)

(* ------------------------------------------------------------------ *)
(* Slot algebra (the packed protocol path's contract)                  *)
(* ------------------------------------------------------------------ *)

(* Keyed slot-algebra checks run on the presets the keyed suite already
   uses (toy, bench_small); the pure plaintext roundtrip covers every
   preset, bench and secure included. *)
let keyed_presets =
  let tbl = Hashtbl.create 4 in
  fun () ->
    List.map
      (fun p ->
        let name = p.Params.name in
        match Hashtbl.find_opt tbl name with
        | Some kp -> kp
        | None ->
          let kp = (p, Bgv.keygen (Rng.of_int 4242) p) in
          Hashtbl.add tbl name kp;
          kp)
      [ Params.toy (); Params.bench_small () ]

let random_slots_for p seed =
  let r = Rng.of_int seed in
  Array.init (Params.slot_count p) (fun _ -> Rng.int64_below r p.Params.t_plain)

let prop_slots_roundtrip_all_presets =
  QCheck.Test.make ~count:6 ~name:"of_slots/to_slots roundtrip (all presets)"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      List.for_all
        (fun p ->
          let slots = random_slots_for p seed in
          Plaintext.to_slots (Plaintext.of_slots p slots) = slots)
        [ Params.toy (); Params.bench_small (); Params.bench (); Params.secure () ])

let prop_mul_plain_slotwise =
  (* mul_plain against the packed plaintext acts independently per slot —
     exactly the scalar model the packed distance circuit assumes. *)
  QCheck.Test.make ~count:6 ~name:"mul_plain = slot-wise scalar model (keyed presets)"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      List.for_all
        (fun (p, k) ->
          let tp = p.Params.t_plain in
          let a = random_slots_for p seed and b = random_slots_for p (seed + 1) in
          let ct = Bgv.encrypt (Rng.of_int (seed + 2)) k.Bgv.pk (Plaintext.of_slots p a) in
          let prod = Bgv.mul_plain ct (Plaintext.of_slots p b) in
          Plaintext.to_slots (Bgv.decrypt k.Bgv.sk prod)
          = Array.init (Params.slot_count p) (fun i -> Mod64.mul tp a.(i) b.(i)))
        (keyed_presets ()))

let test_sum_slots_every_level () =
  (* The rotate-and-sum reduction leaves the total slot sum in every
     slot at whichever chain level the input sits — walked from the
     fresh top of the chain down as far as the noise budget admits
     (key-switching noise eventually exhausts the last prime). *)
  List.iter
    (fun ((p : Params.t), k) ->
      let tp = p.Params.t_plain in
      let slots = random_slots_for p 881 in
      let expected = Array.fold_left (Mod64.add tp) 0L slots in
      let gks = Bgv.slot_sum_keys (Rng.of_int 883) k.Bgv.sk in
      let fresh = Bgv.encrypt (Rng.of_int 884) k.Bgv.pk (Plaintext.of_slots p slots) in
      let verified = ref 0 in
      for lvl = Bgv.level fresh downto 1 do
        let summed = Bgv.sum_slots gks (Bgv.truncate_to_level fresh lvl) in
        if Bgv.noise_budget_bits summed > 0.0 then begin
          incr verified;
          Array.iter
            (fun v ->
              Alcotest.(check int64)
                (Printf.sprintf "%s level %d: slot holds total" p.Params.name lvl)
                expected v)
            (Plaintext.to_slots (Bgv.decrypt k.Bgv.sk summed))
        end
      done;
      Alcotest.(check bool)
        (p.Params.name ^ ": sum sound at several levels")
        true (!verified >= 2))
    (keyed_presets ())

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_add_homomorphic; prop_mul_homomorphic; prop_distributivity;
      prop_noise_bound_sound; prop_slots_roundtrip_all_presets;
      prop_mul_plain_slotwise ]

let () =
  Alcotest.run "bgv"
    [ ("params",
       [ Alcotest.test_case "presets valid" `Quick test_params_presets;
         Alcotest.test_case "security estimate" `Slow test_params_security_estimate;
         Alcotest.test_case "validation" `Quick test_params_validation;
         Alcotest.test_case "structured infeasibility" `Quick test_params_infeasible;
         Alcotest.test_case "security monotone" `Quick test_security_bits_monotone;
         Alcotest.test_case "probe matches create" `Quick test_probe_matches_create ]);
      ("plaintext",
       [ Alcotest.test_case "roundtrips" `Quick test_plaintext_roundtrips;
         Alcotest.test_case "constant" `Quick test_plaintext_constant;
         Alcotest.test_case "negative input" `Quick test_plaintext_negative_input;
         Alcotest.test_case "slot arithmetic" `Quick test_plaintext_arith ]);
      ("encryption",
       [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
         Alcotest.test_case "edge values" `Quick test_roundtrip_edge_values;
         Alcotest.test_case "fresh metadata" `Quick test_fresh_metadata;
         Alcotest.test_case "randomised" `Quick test_encryption_randomized;
         Alcotest.test_case "rerandomize" `Quick test_rerandomize;
         Alcotest.test_case "noise exhaustion raises" `Quick test_noise_exhaustion_raises ]);
      ("evaluation",
       [ Alcotest.test_case "add/sub/neg" `Quick test_add_sub_neg;
         Alcotest.test_case "add_plain/const" `Quick test_add_plain_and_const;
         Alcotest.test_case "mul_plain/scalar" `Quick test_mul_plain_scalar;
         Alcotest.test_case "mul with relin" `Quick test_mul_relin;
         Alcotest.test_case "mul without relin" `Quick test_mul_no_relin;
         Alcotest.test_case "depth chain" `Quick test_mul_depth_chain;
         Alcotest.test_case "degree 4 no relin" `Quick test_mul_high_degree_no_relin;
         Alcotest.test_case "explicit relinearize" `Quick test_relinearize_explicit;
         Alcotest.test_case "eval_poly" `Quick test_eval_poly ]);
      ("levels",
       [ Alcotest.test_case "modswitch" `Quick test_modswitch;
         Alcotest.test_case "modswitch reduces noise" `Quick test_modswitch_reduces_noise;
         Alcotest.test_case "truncate" `Quick test_truncate;
         Alcotest.test_case "mixed levels" `Quick test_mixed_level_ops ]);
      ("galois",
       [ Alcotest.test_case "plaintext substitute" `Quick test_plaintext_substitute;
         Alcotest.test_case "slot permutation" `Quick test_plaintext_substitute_permutes_slots;
         Alcotest.test_case "matches plaintext" `Quick test_apply_galois_matches_plaintext;
         Alcotest.test_case "composes" `Quick test_apply_galois_composes;
         Alcotest.test_case "commutes with add" `Quick test_apply_galois_after_ops;
         Alcotest.test_case "validation" `Quick test_apply_galois_validation;
         Alcotest.test_case "rotate-and-sum" `Quick test_sum_slots;
         Alcotest.test_case "rotate-and-sum at every level" `Quick
           test_sum_slots_every_level ]);
      ("serialisation",
       [ Alcotest.test_case "ct roundtrip" `Quick test_ct_serialisation_roundtrip;
         Alcotest.test_case "ct after ops" `Quick test_ct_serialisation_after_ops;
         Alcotest.test_case "rejects garbage" `Quick test_ct_serialisation_rejects_garbage;
         Alcotest.test_case "keys" `Quick test_key_serialisation ]);
      ("protocol pattern",
       [ Alcotest.test_case "packed distance + mask" `Quick test_homomorphic_distance_pattern;
         Alcotest.test_case "counters" `Quick test_counters ]);
      ("properties", qsuite) ]
