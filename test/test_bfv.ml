(* Tests for the BFV scheme — the second instantiation of the paper's
   black-box (S)HE interface (§3.5 claims the protocol works over any
   such scheme; the last test runs the protocol's exact homomorphic
   pipeline under BFV). *)

module Rng = Util.Rng

let params =
  Params.create ~name:"bfv-test" ~n:64 ~plain_bits:30 ~prime_bits:30 ~chain_len:6 ()

let tp = params.Params.t_plain
let nslots = Params.slot_count params

let keys = Bfv.keygen (Rng.of_int 77) params

let random_slots seed =
  let r = Rng.of_int seed in
  Array.init nslots (fun _ -> Rng.int64_below r tp)

let enc ?(seed = 5) slots =
  Bfv.encrypt (Rng.of_int seed) keys.Bfv.pk (Plaintext.of_slots params slots)

let dec ct = Plaintext.to_slots (Bfv.decrypt keys.Bfv.sk ct)

let check_slots msg expected actual = Alcotest.(check (array int64)) msg expected actual
let map2 f a b = Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let test_roundtrip () =
  let slots = random_slots 1 in
  check_slots "enc/dec" slots (dec (enc slots));
  let edge = Array.make nslots 0L in
  edge.(0) <- Int64.pred tp;
  edge.(1) <- 1L;
  check_slots "edge values" edge (dec (enc edge))

let test_add_sub_neg () =
  let a = random_slots 2 and b = random_slots 3 in
  check_slots "add" (map2 (Mod64.add tp) a b) (dec (Bfv.add (enc a) (enc b)));
  check_slots "sub" (map2 (Mod64.sub tp) a b) (dec (Bfv.sub (enc a) (enc b)));
  check_slots "neg" (Array.map (Mod64.neg tp) a) (dec (Bfv.neg (enc a)))

let test_plain_ops () =
  let a = random_slots 4 and b = random_slots 5 in
  check_slots "add_plain" (map2 (Mod64.add tp) a b)
    (dec (Bfv.add_plain (enc a) (Plaintext.of_slots params b)));
  check_slots "add_const" (Array.map (fun x -> Mod64.add tp x 9L) a)
    (dec (Bfv.add_const (enc a) 9L));
  check_slots "mul_plain" (map2 (Mod64.mul tp) a b)
    (dec (Bfv.mul_plain (enc a) (Plaintext.of_slots params b)));
  check_slots "mul_scalar" (Array.map (fun x -> Mod64.mul tp x 77L) a)
    (dec (Bfv.mul_scalar (enc a) 77L))

let test_mul () =
  let a = random_slots 6 and b = random_slots 7 in
  let no_relin = Bfv.mul (enc a) (enc b) in
  Alcotest.(check int) "degree 2 without relin" 2 (Bfv.degree no_relin);
  check_slots "tensor mul" (map2 (Mod64.mul tp) a b) (dec no_relin);
  let relin = Bfv.mul ~rlk:keys.Bfv.rlk (enc a) (enc b) in
  Alcotest.(check int) "degree 1 with relin" 1 (Bfv.degree relin);
  check_slots "relin mul" (map2 (Mod64.mul tp) a b) (dec relin)

let test_scale_invariance () =
  (* No factor tracking: chained muls just work. *)
  let a = random_slots 8 in
  let ct = enc a in
  let cube = Bfv.mul ~rlk:keys.Bfv.rlk (Bfv.mul ~rlk:keys.Bfv.rlk ct ct) ct in
  check_slots "x^3" (Array.map (fun x -> Mod64.pow tp x 3L) a) (dec cube)

let test_eval_poly () =
  let a = random_slots 9 in
  let ct = enc a in
  let horner coeffs x =
    let d = Array.length coeffs - 1 in
    let acc = ref coeffs.(d) in
    for i = d - 1 downto 0 do
      acc := Mod64.add tp (Mod64.mul tp !acc x) coeffs.(i)
    done;
    !acc
  in
  List.iter
    (fun coeffs ->
      check_slots
        (Printf.sprintf "deg %d" (Array.length coeffs - 1))
        (Array.map (horner coeffs) a)
        (dec (Bfv.eval_poly ~rlk:keys.Bfv.rlk ~coeffs ct)))
    [ [| 7L |]; [| 3L; 5L |]; [| 1L; 2L; 3L |] ]

let test_black_box_distance_pipeline () =
  (* The paper's claim: the protocol's homomorphic pipeline — squared
     distance then masking polynomial — runs unchanged over a different
     (S)HE.  One slot per database point, exactly as the k-NN core. *)
  let d = 3 in
  let point_slots =
    Array.init d (fun j -> Array.init nslots (fun i -> Int64.of_int ((i + (5 * j)) mod 30)))
  in
  let query = [| 4L; 11L; 19L |] in
  let acc = ref None in
  Array.iteri
    (fun j slots ->
      let diff = Bfv.add_const (enc slots) (Int64.neg query.(j)) in
      let sq = Bfv.mul ~rlk:keys.Bfv.rlk diff diff in
      acc := Some (match !acc with None -> sq | Some a -> Bfv.add a sq))
    point_slots;
  let dist = Option.get !acc in
  let mask = [| 13L; 7L; 3L |] in
  let masked = Bfv.eval_poly ~rlk:keys.Bfv.rlk ~coeffs:mask dist in
  let expected =
    Array.init nslots (fun i ->
        let ed = ref 0L in
        for j = 0 to d - 1 do
          let diff = Mod64.sub tp point_slots.(j).(i) query.(j) in
          ed := Mod64.add tp !ed (Mod64.mul tp diff diff)
        done;
        Mod64.add tp 13L
          (Mod64.add tp (Mod64.mul tp 7L !ed) (Mod64.mul tp 3L (Mod64.mul tp !ed !ed))))
  in
  check_slots "masked distances under BFV" expected (dec masked)

let test_ct_metadata () =
  let ct = enc (random_slots 10) in
  Alcotest.(check int) "fresh degree" 1 (Bfv.degree ct);
  Alcotest.(check bool) "byte size positive" true (Bfv.byte_size ct > 0);
  Alcotest.(check string) "pp" "<bfv ct deg=1 n=64>" (Format.asprintf "%a" Bfv.pp_ct ct)

let test_invariant_noise_budget () =
  (* The SEAL-style budget oracle: comfortably positive on a fresh
     ciphertext, strictly smaller after a multiplication, and still
     positive while decryption stays correct. *)
  let a = random_slots 11 and b = random_slots 12 in
  let ca = enc a in
  let fresh_budget = Bfv.invariant_noise_budget_bits keys.Bfv.sk ca in
  Alcotest.(check bool) "fresh budget well positive" true (fresh_budget > 20.0);
  let prod = Bfv.mul ~rlk:keys.Bfv.rlk ca (enc b) in
  let prod_budget = Bfv.invariant_noise_budget_bits keys.Bfv.sk prod in
  Alcotest.(check bool) "mul consumes budget" true (prod_budget < fresh_budget);
  Alcotest.(check bool) "still decryptable, still positive" true (prod_budget > 0.0);
  check_slots "decryption agrees with the positive budget"
    (map2 (Mod64.mul tp) a b) (dec prod)

let prop_add_homomorphic =
  QCheck.Test.make ~count:15 ~name:"bfv: Dec(Enc a + Enc b) = a + b"
    QCheck.(pair (int_range 0 100000) (int_range 100001 200000))
    (fun (s1, s2) ->
      let a = random_slots s1 and b = random_slots s2 in
      dec (Bfv.add (enc a) (enc b)) = map2 (Mod64.add tp) a b)

let prop_mul_homomorphic =
  QCheck.Test.make ~count:8 ~name:"bfv: Dec(Enc a * Enc b) = a * b"
    QCheck.(pair (int_range 0 100000) (int_range 100001 200000))
    (fun (s1, s2) ->
      let a = random_slots s1 and b = random_slots s2 in
      dec (Bfv.mul ~rlk:keys.Bfv.rlk (enc a) (enc b)) = map2 (Mod64.mul tp) a b)

let () =
  Alcotest.run "bfv"
    [ ("core",
       [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
         Alcotest.test_case "add/sub/neg" `Quick test_add_sub_neg;
         Alcotest.test_case "plain ops" `Quick test_plain_ops;
         Alcotest.test_case "mul" `Quick test_mul;
         Alcotest.test_case "scale invariance" `Quick test_scale_invariance;
         Alcotest.test_case "eval_poly" `Quick test_eval_poly;
         Alcotest.test_case "metadata" `Quick test_ct_metadata;
         Alcotest.test_case "invariant noise budget" `Quick
           test_invariant_noise_budget ]);
      ("black box",
       [ Alcotest.test_case "distance + mask pipeline" `Quick
           test_black_box_distance_pipeline ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest [ prop_add_homomorphic; prop_mul_homomorphic ]) ]
