(* Per-function taint summaries — the phase-1 output of the
   two-phase lint engine.

   Phase 1 (Lint_rules with a [collector]) walks each file once and
   records, for every top-level function, a summary that is *local*: it
   names origins symbolically (parameters, configured taint roots,
   results of calls) without looking at any other file.  Phase 2
   (Flow_rules / Ct_rules) resolves the symbolic parts against the
   whole-program call graph and runs the fixpoints.

   Origins form a tiny provenance algebra:

   - [Root r]      — a configured taint root name was mentioned
                     (identifier or record-field access named [r]).
   - [Param p]     — the value derives from the enclosing function's
                     parameter [p].
   - [Ret (f, a)]  — the value is the result of calling [f] with
                     argument origins [a]; resolved lazily in phase 2
                     against [f]'s summary (or conservatively as the
                     union of [a] when [f] is not in the program).
   - [Rec fields]  — a record literal, kept one level field-sensitive
                     so that e.g. a deployment record carrying Party B
                     does not taint its public transcript field.

   Everything here is plain data with deterministic orderings; the
   analysis never consults the wall clock or hash order. *)

type pos = { file : string; line : int; col : int }

let compare_pos a b =
  let c = compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c else compare a.col b.col

(* One [@sknn.allow "<rule>"] site.  The payload may carry a rationale
   after a colon — "constant-time: heap arity is public" — which the
   constant-time rule requires.  [used] is flipped by whichever rule the
   site suppresses; the unused-allow rule reports sites still cold after
   both phases. *)
type allow_site = {
  al_rule : string;
  al_rationale : string option;
  al_pos : pos;
  mutable al_used : bool;
}

(* Split "rule: rationale" payloads. *)
let parse_allow_payload s =
  match String.index_opt s ':' with
  | None -> (String.trim s, None)
  | Some i ->
    let rule = String.trim (String.sub s 0 i) in
    let rat = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
    (rule, if rat = "" then None else Some rat)

type origin =
  | Root of string
  | Param of string
  | Ret of string * (string option * origin list) list
      (* callee path, arguments as (Labelled/Optional name, origins) *)
  | Rec of (string * origin list) list
  | Field of string * origin
      (* deferred projection: [e.f] where [e]'s shape is not yet known
         (a parameter or a call result).  Phase 2 normalises the inner
         origin to the record literals it can evaluate to and projects
         the field there, so e.g. a deployment record's public count
         field does not inherit the taint of its sibling key field. *)

(* How a sink call names its ~label: a string literal, a pass-through of
   the enclosing function's parameter (resolved up the call chain), or
   nothing resolvable (never exemptable). *)
type label_form =
  | Label_literal of string
  | Label_param of string
  | Label_opaque
  | Label_none

type sink = {
  sk_callee : string;           (* printed callee path, e.g. "Transcript.send" *)
  sk_pos : pos;
  sk_label : label_form;
  sk_origins : origin list;     (* union over the checked argument positions *)
  sk_allows : allow_site list;  (* allow sites covering this expression *)
  sk_local : bool;              (* already reported by the phase-1 secret-taint
                                   rule at this site — phase 2 must not
                                   double-report it *)
}

(* One argument of a call site, with enough structure to match it to the
   callee's parameter list and to resolve label pass-through chains. *)
type call_arg = {
  ca_label : string option;     (* Labelled/Optional name, None if positional *)
  ca_origins : origin list;
  ca_literal : string option;   (* Some s when the argument is the string
                                   literal s (label chain resolution) *)
  ca_passthrough : string option; (* Some p when the argument is exactly the
                                     enclosing function's parameter p *)
}

type call = {
  c_callee : string;            (* alias-expanded dotted path as written *)
  c_pos : pos;
  c_args : call_arg list;
}

(* Constant-time discipline events, collected only inside ct-scope
   functions. *)
type ct_kind =
  | Ct_branch of string         (* if / match / while on a secret-derived
                                   condition; payload names the construct *)
  | Ct_index                    (* secret-indexed array/string/bytes access *)
  | Ct_vartime of string        (* variable-time op (/, mod, poly compare, …) *)

type ct_event = {
  ct_kind : ct_kind;
  ct_pos : pos;
  ct_origins : origin list;     (* origins of the guarded value *)
  ct_allows : allow_site list;
}

type param = {
  p_name : string;              (* binder name, or "_" when unnamed *)
  p_label : string option;      (* Labelled/Optional name *)
}

type func = {
  f_name : string;              (* fully qualified: File_module.Sub.fn *)
  f_file : string;
  f_pos : pos;
  f_params : param list;
  f_returns : origin list;      (* origins of the function's result *)
  f_sinks : sink list;
  f_calls : call list;
  f_ct_events : ct_event list;
  f_in_ct_scope : bool;
}

type file_facts = {
  ff_file : string;
  ff_config : Lint_config.t;
  ff_funcs : func list;
  ff_allows : allow_site list;  (* every allow site in the file, for
                                   unused-allow *)
}

(* Does a dotted callee path start with one of the configured
   declassifier prefixes?  "Leakage." matches the whole module;
   "Bgv.keygen" matches that one function. *)
let declassified ~prefixes path =
  List.exists
    (fun p ->
      String.length path >= String.length p
      && String.sub path 0 (String.length p) = p
      && (String.length path = String.length p
          || path.[String.length p - 1] = '.'
          || path.[String.length p] = '.'))
    prefixes

(* A ct-scope (or declassifier path) matches a qualified function name
   when its dot-components appear as a contiguous run of the name's
   components: scope "Party_b" matches "Entities.Party_b.select", scope
   "Bgv.decrypt" matches exactly Bgv.decrypt. *)
let split_path s = String.split_on_char '.' s

let components_match ~scope name_comps =
  let sc = split_path scope in
  let n = List.length sc in
  let rec windows = function
    | [] -> false
    | _ :: tl as l ->
      let rec take k = function
        | _ when k = 0 -> Some []
        | [] -> None
        | x :: r -> ( match take (k - 1) r with Some w -> Some (x :: w) | None -> None)
      in
      (match take n l with Some w when w = sc -> true | _ -> windows tl)
  in
  windows name_comps

let in_ct_scope config qualified_name =
  List.exists
    (fun scope -> components_match ~scope (split_path qualified_name))
    config.Lint_config.ct_scopes
