(* Phase 1 of the lint engine: the syntactic invariant rules as one
   pass over a parsed implementation, which now also collects the
   per-function taint summaries consumed by the interprocedural phase
   (see {!Taint_summary}, {!Flow_rules}, {!Ct_rules}).

   Everything here is deliberately *syntactic*: the linter runs at
   `dune build @lint` time on source files, without type information,
   so each rule over-approximates and the [@sknn.allow "<rule>"]
   attribute (on an expression, a value binding or floating at module
   level) is the reviewed escape hatch for sites the over-approximation
   catches legitimately.

   Rule <-> invariant map (see DESIGN.md "Static analysis"):
   - no-division            ROADMAP "Kernel invariants (PR 3)"
   - secret-taint           §5 leakage surface / ROADMAP PR 2 audit set
   - orchestrator-only-obs  ROADMAP PR 2/PR 4 orchestrator-only spans
   - no-ambient-nondeterminism  bit-identical across --jobs (PR 1)
   - into-aliasing          PR 3 "destructive targets uniquely owned"
   - ledger-at-op-site      PR 7 op-level cost ledger: every qualified
                            Bgv/Plaintext ciphertext op in a protocol
                            directory threads a ~counters ledger
   - secret-flow            §5 whole-protocol leakage claim (phase 2)
   - constant-time          Party B secret-key TCB discipline (phase 2)
   - unused-allow           escape hatches must not outlive their code *)

open Ppxlib
module T = Taint_summary

type diagnostic = {
  rule : Lint_config.rule;
  file : string;
  line : int;
  col : int;
  message : string;
}

let compare_diagnostic a b =
  let c = compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.col b.col in
      if c <> 0 then c
      else
        let c = compare (Lint_config.rule_name a.rule) (Lint_config.rule_name b.rule) in
        if c <> 0 then c else compare a.message b.message

let pp_diagnostic ppf d =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" d.file d.line d.col
    (Lint_config.rule_name d.rule) d.message

(* ------------------------------------------------------------------ *)
(* Syntactic helpers                                                   *)
(* ------------------------------------------------------------------ *)

let flatten_lident l = String.concat "." (Longident.flatten_exn l)

let last_lident l =
  match Longident.flatten_exn l with
  | [] -> ""
  | parts -> List.nth parts (List.length parts - 1)

let head_lident l = match Longident.flatten_exn l with [] -> "" | h :: _ -> h

let pos_of_loc file (loc : location) =
  { T.file;
    line = loc.loc_start.pos_lnum;
    col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol }

(* [@sknn.allow "rule"] / [@sknn.allow "rule: rationale"] sites attached
   to an attribute list, as shared mutable records so the phase-2 rules
   and the unused-allow sweep see suppressions recorded here. *)
let allow_sites_of_attributes ~file attrs =
  List.filter_map
    (fun (a : attribute) ->
      if a.attr_name.txt <> "sknn.allow" then None
      else
        match a.attr_payload with
        | PStr
            [ { pstr_desc =
                  Pstr_eval
                    ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
                _ }
            ] ->
          let rule, rationale = T.parse_allow_payload s in
          Some
            { T.al_rule = rule;
              al_rationale = rationale;
              al_pos = pos_of_loc file a.attr_loc;
              al_used = false }
        | _ -> None)
    attrs

(* Normalised one-line rendering, used for syntactic equality of
   aliasing checks and for quoting expressions in messages. *)
let expr_to_string e =
  (* asprintf rather than string_of_expression: the latter goes through
     the shared str_formatter in some compiler lineages, and this runs
     from worker domains under --jobs. *)
  let s = Format.asprintf "%a" Pprintast.expression e in
  String.concat " "
    (List.filter (fun w -> w <> "") (String.split_on_char ' '
       (String.map (function '\n' | '\t' -> ' ' | c -> c) s)))

(* ------------------------------------------------------------------ *)
(* Pattern tables                                                      *)
(* ------------------------------------------------------------------ *)

let division_idents =
  [ "/"; "mod"; "/."; "Stdlib./"; "Stdlib.mod"; "Stdlib./."; "Int64.div";
    "Int64.rem"; "Int64.unsigned_div"; "Int64.unsigned_rem"; "Float.div";
    "Float.rem"; "Int32.div"; "Int32.rem"; "Nativeint.div"; "Nativeint.rem" ]

let wall_clock_idents =
  [ "Unix.gettimeofday"; "Unix.time"; "Unix.gmtime"; "Unix.localtime";
    "Sys.time" ]

(* The sanctioned wrapper's reads, banned only under [check-wall-clock]:
   directories whose timestamps must be pure functions of recorded data
   (the virtual network clock) may not fall back to the wall. *)
let timer_idents =
  [ "Timer.now"; "Timer.time"; "Timer.counter"; "Util.Timer.now";
    "Util.Timer.time"; "Util.Timer.counter" ]

let poly_compare_idents =
  [ "compare"; "Stdlib.compare"; "Hashtbl.hash"; "Hashtbl.seeded_hash" ]

(* Variable-time integer ops for the constant-time rule: data-dependent
   latency on every mainstream core (division/remainder), plus
   polymorphic structural comparison (walks the value). *)
let ct_vartime_idents =
  division_idents @ poly_compare_idents
  @ [ "Z.div"; "Z.rem"; "Z.ediv"; "Z.erem"; "Z.divexact" ]

let indexed_get_heads = [ "Array"; "String"; "Bytes"; "Bigarray" ]

(* ledger-at-op-site: the Bgv entry points that record into the op-level
   cost ledger when given [?counters] — every qualified call in a
   protocol directory must thread one, or the analytic Cost_model
   cross-check silently under-counts.  Key generation is excluded: it is
   one-time setup outside the per-query ledger. *)
let bgv_ledger_ops =
  [ "encrypt"; "decrypt"; "decrypt_coeff0"; "add"; "sub"; "add_plain";
    "add_const"; "mul"; "mul_plain"; "mul_scalar"; "mul_sum"; "modswitch";
    "rescale_to_floor"; "relinearize"; "truncate_to_level"; "eval_poly";
    "apply_galois"; "sum_slots" ]

let plaintext_ledger_ops = [ "of_slots"; "to_slots" ]

let pool_call_names = [ "map"; "mapi"; "map_local"; "init" ]

let is_pool_call lid =
  List.mem (last_lident lid) pool_call_names
  &&
  match Longident.flatten_exn lid with
  | [ "Pool"; _ ] | [ "Util"; "Pool"; _ ] -> true
  | _ -> false

let is_arena_fn name lid =
  match Longident.flatten_exn lid with
  | [ "Arena"; f ] | [ "Util"; "Arena"; f ] -> f = name
  | _ -> false

(* Sinks for the secret-taint / secret-flow rules.  [`All] checks every
   argument, [`Labelled l] only the given labelled arguments; a
   string-literal [~label] in the configured allowlist exempts the whole
   call (the admitted §5 surface).  Phase 2 only follows [`All] sinks:
   span ~args are orchestrator-side strings already covered locally. *)
let sink_of_application config lid =
  let last = last_lident lid in
  let head = head_lident lid in
  let obs_head = List.mem head config.Lint_config.obs_modules in
  if (obs_head && (last = "audit" || last = "observe" || last = "warn"))
     || flatten_lident lid = "Audit.observe"
  then Some `All
  else if last = "send" && (head = "Transcript" || head = "Netsim") then Some `All
  else if last = "send_tracked" || last = "record_send" then Some `All
  else if obs_head && last = "with_span" then Some (`Labelled [ "args" ])
  else if
    (head = "Printf" || head = "Format")
    (* sprintf-style builders only *construct* strings; if the result
       reaches an output sink, taint propagation through the binding
       catches it there. *)
    && not (List.mem last [ "sprintf"; "asprintf"; "ksprintf"; "kasprintf" ])
  then Some `All
  else if head = "Metrics" && (last = "set" || last = "observe") then Some `All
  else None

(* ------------------------------------------------------------------ *)
(* The pass                                                            *)
(* ------------------------------------------------------------------ *)

(* Context of the top-level function currently being summarised. *)
type fctx = {
  fx_name : string;
  fx_pos : T.pos;
  fx_params : T.param list;
  fx_env : (string, T.origin list) Hashtbl.t;
  fx_in_ct : bool;
  mutable fx_sinks : T.sink list;
  mutable fx_calls : T.call list;
  mutable fx_cts : T.ct_event list;
}

let run ~(config : Lint_config.t) ~file str =
  let diags = ref [] in
  let enabled r = Lint_config.is_enabled config r in
  (* Scoped [@sknn.allow] context, restored around each subtree;
     [file_allows] holds floating [@@@sknn.allow] sites (rest of file);
     [all_allows] accumulates every site for the unused-allow sweep. *)
  let allows = ref [] in
  let file_allows = ref [] in
  let all_allows = ref [] in
  let scope_allows () = !allows @ !file_allows in
  let register sites =
    all_allows := !all_allows @ sites;
    sites
  in
  let allowed rule =
    match
      List.find_opt
        (fun a -> a.T.al_rule = Lint_config.rule_name rule)
        (scope_allows ())
    with
    | Some site ->
      site.T.al_used <- true;
      true
    | None -> false
  in
  let report rule loc fmt =
    Format.kasprintf
      (fun message ->
        if enabled rule && not (allowed rule) then
          diags :=
            { rule;
              file;
              line = loc.loc_start.pos_lnum;
              col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
              message }
            :: !diags)
      fmt
  in
  (* secret-taint state: names bound (directly or via record fields) to
     secret material.  Monotone per function — snapshotting around each
     function body keeps one function's bindings from spilling into its
     siblings, which is what made the old whole-file table need
     allowlist entries for unrelated code. *)
  let tainted = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace tainted r ()) config.Lint_config.taint_roots;
  let is_declassifier lid =
    let s = flatten_lident lid in
    List.exists
      (fun prefix ->
        String.length s >= String.length prefix
        && String.sub s 0 (String.length prefix) = prefix)
      config.Lint_config.declassifiers
  in
  (* First tainted identifier/field mentioned in [e], skipping
     declassifier applications. *)
  let taint_mention e =
    let found = ref None in
    let scan =
      object (self)
        inherit Ast_traverse.iter as super

        method! expression e =
          if !found <> None then ()
          else
            match e.pexp_desc with
            | Pexp_ident { txt; _ } when Hashtbl.mem tainted (last_lident txt) ->
              found := Some (flatten_lident txt)
            | Pexp_field (inner, { txt; _ })
              when Hashtbl.mem tainted (last_lident txt) ->
              found := Some ("." ^ last_lident txt);
              self#expression inner
            | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
              when is_declassifier txt ->
              () (* declassified: the §5 extraction surface *)
            | _ -> super#expression e
      end
    in
    scan#expression e;
    !found
  in
  let pattern_names p =
    let names = ref [] in
    let scan =
      object
        inherit Ast_traverse.iter as super

        method! pattern p =
          (match p.ppat_desc with
           | Ppat_var { txt; _ } -> names := txt :: !names
           | _ -> ());
          super#pattern p
      end
    in
    scan#pattern p;
    !names
  in
  let is_function e = match e.pexp_desc with Pexp_function _ -> true | _ -> false in
  let propagate_taint vb =
    if enabled Lint_config.Secret_taint && not (is_function vb.pvb_expr) then
      match taint_mention vb.pvb_expr with
      | Some _ -> List.iter (fun n -> Hashtbl.replace tainted n ()) (pattern_names vb.pvb_pat)
      | None -> ()
  in
  (* A [~label] argument that is a string literal, or a sprintf whose
     format string is a literal: the format string stands for the label
     in the allowlist ("iteration %d: masked distance rows"), since the
     varying hole is a public message index. *)
  let string_of_label_expr e =
    match e.pexp_desc with
    | Pexp_constant (Pconst_string (s, _, _)) -> Some s
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt; _ }; _ },
          (Nolabel, { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ })
          :: _ )
      when List.mem (flatten_lident txt)
             [ "Printf.sprintf"; "Format.sprintf"; "Format.asprintf"; "sprintf" ]
      ->
      Some s
    | _ -> None
  in
  let literal_label args =
    List.find_map
      (function Labelled "label", e -> string_of_label_expr e | _ -> None)
      args
  in
  (* ---------------------------------------------------------------- *)
  (* Phase-1 fact collection                                           *)
  (* ---------------------------------------------------------------- *)
  let file_module =
    String.capitalize_ascii (Filename.remove_extension (Filename.basename file))
  in
  (* Submodule nesting (outer-first) and `module X = Path` aliases. *)
  let module_path = ref [ file_module ] in
  let aliases : (string, string list) Hashtbl.t = Hashtbl.create 8 in
  let expand_path s =
    match String.split_on_char '.' s with
    | head :: tl when Hashtbl.mem aliases head ->
      String.concat "." (Hashtbl.find aliases head @ tl)
    | _ -> s
  in
  let funcs = ref [] in
  let cur : fctx option ref = ref None in
  let file_env : (string, T.origin list) Hashtbl.t = Hashtbl.create 16 in
  (* Root names are shared between the flow and CT domains at collection
     time; phase 2 interprets them against the relevant root set. *)
  let root_names =
    List.sort_uniq compare
      (config.Lint_config.taint_roots @ config.Lint_config.ct_roots)
  in
  let root n = if List.mem n root_names then [ T.Root n ] else [] in
  let union_origins ls =
    let out = ref [] in
    List.iter
      (List.iter (fun o -> if not (List.mem o !out) then out := o :: !out))
      ls;
    List.rev !out
  in
  let env_add env n os =
    if os <> [] then
      Hashtbl.replace env n
        (union_origins [ (try Hashtbl.find env n with Not_found -> []); os ])
  in
  let lookup n =
    let from tbl = try Hashtbl.find tbl n with Not_found -> [] in
    let local = match !cur with Some c -> from c.fx_env | None -> [] in
    union_origins [ local; from file_env; root n ]
  in
  let project f os =
    union_origins
      (List.map
         (function
           | T.Rec fields -> ( try List.assoc f fields with Not_found -> [])
           (* Shape not known yet (parameter, call result, nested
              projection): defer to phase 2, which can see through the
              call graph to the record literal. *)
           | (T.Param _ | T.Ret _ | T.Field _) as o -> [ T.Field (f, o) ]
           | o -> [ o ])
         os)
  in
  let rec origins_of e : T.origin list =
    match e.pexp_desc with
    | Pexp_constant _ -> []
    | Pexp_ident { txt = Lident x; _ } -> lookup x
    | Pexp_ident { txt; _ } -> root (last_lident txt)
    | Pexp_field (e0, { txt; _ }) ->
      let f = last_lident txt in
      union_origins [ root f; project f (origins_of e0) ]
    | Pexp_record (fields, base) ->
      let fs =
        List.map (fun ({ txt; _ }, v) -> (last_lident txt, origins_of v)) fields
      in
      union_origins
        [ [ T.Rec fs ]; (match base with Some b -> origins_of b | None -> []) ]
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
      let path = expand_path (flatten_lident txt) in
      if is_declassifier txt || T.declassified ~prefixes:config.Lint_config.declassifiers path
      then []
      else if path = ":=" then []
      else
        [ T.Ret
            ( path,
              List.map
                (fun (lbl, a) ->
                  let l =
                    match lbl with
                    | Labelled l | Optional l -> Some l
                    | Nolabel -> None
                  in
                  (l, origins_of a))
                args ) ]
    | Pexp_apply (f, args) ->
      union_origins (origins_of f :: List.map (fun (_, a) -> origins_of a) args)
    | Pexp_function (_, _, Pfunction_body b) -> origins_of b
    | Pexp_function (_, _, Pfunction_cases (cases, _, _)) ->
      union_origins (List.map (fun c -> origins_of c.pc_rhs) cases)
    | Pexp_let (_, vbs, b) ->
      (* Make inner bindings visible before evaluating the body: the
         same monotone over-approximation the taint table uses. *)
      List.iter
        (fun vb ->
          let os = origins_of vb.pvb_expr in
          let env =
            match !cur with Some c -> c.fx_env | None -> file_env
          in
          List.iter (fun n -> env_add env n os) (pattern_names vb.pvb_pat))
        vbs;
      origins_of b
    | Pexp_sequence (_, b) -> origins_of b
    | Pexp_ifthenelse (_, t, f) ->
      union_origins
        [ origins_of t; (match f with Some f -> origins_of f | None -> []) ]
    | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      union_origins (List.map (fun c -> origins_of c.pc_rhs) cases)
    | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) -> origins_of e
    | Pexp_construct (_, None) | Pexp_variant (_, None) -> []
    | Pexp_tuple es | Pexp_array es -> union_origins (List.map origins_of es)
    | Pexp_constraint (e, _)
    | Pexp_coerce (e, _, _)
    | Pexp_lazy e
    | Pexp_open (_, e)
    | Pexp_letmodule (_, _, e)
    | Pexp_letexception (_, e)
    | Pexp_newtype (_, e) -> origins_of e
    | Pexp_send (e, _) -> origins_of e
    | _ -> []
  in
  let rec tail_origins e =
    match e.pexp_desc with
    | Pexp_let (_, _, b)
    | Pexp_sequence (_, b)
    | Pexp_letmodule (_, _, b)
    | Pexp_letexception (_, b)
    | Pexp_open (_, b)
    | Pexp_constraint (b, _) -> tail_origins b
    | Pexp_ifthenelse (_, t, f) ->
      union_origins
        [ tail_origins t; (match f with Some f -> tail_origins f | None -> []) ]
    | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      union_origins (List.map (fun c -> tail_origins c.pc_rhs) cases)
    | _ -> origins_of e
  in
  (* Collapse `let f x = fun y -> ...` currying into one parameter list
     and return the innermost body. *)
  let rec collect_params acc e =
    match e.pexp_desc with
    | Pexp_constraint (e, _) | Pexp_newtype (_, e) -> collect_params acc e
    | Pexp_function (params, _, body) ->
      let ps =
        List.filter_map
          (fun p ->
            match p.pparam_desc with
            | Pparam_val (lbl, _, pat) ->
              let label =
                match lbl with
                | Labelled l | Optional l -> Some l
                | Nolabel -> None
              in
              let rec name p =
                match p.ppat_desc with
                | Ppat_var { txt; _ } -> Some txt
                | Ppat_constraint (p, _) | Ppat_alias (p, _) -> name p
                | _ -> None
              in
              Some (label, name pat, pattern_names pat)
            | Pparam_newtype _ -> None)
          params
      in
      (match body with
       | Pfunction_body b -> collect_params (acc @ ps) b
       | Pfunction_cases _ ->
         (acc @ ps @ [ (None, Some "__scrutinee", []) ], None))
    | _ -> (acc, Some e)
  in
  let function_binding vb =
    let rec binder p =
      match p.ppat_desc with
      | Ppat_var { txt; _ } -> Some txt
      | Ppat_constraint (p, _) -> binder p
      | _ -> None
    in
    match binder vb.pvb_pat with
    | Some name when is_function vb.pvb_expr -> Some name
    | _ -> None
  in
  let passthrough_of c e =
    match e.pexp_desc with
    | Pexp_ident { txt = Lident x; _ }
      when List.exists (fun p -> p.T.p_name = x) c.fx_params ->
      Some x
    | _ -> None
  in
  let mk_call_arg c (lbl, a) =
    { T.ca_label =
        (match lbl with Labelled l | Optional l -> Some l | Nolabel -> None);
      ca_origins = origins_of a;
      ca_literal = string_of_label_expr a;
      ca_passthrough = passthrough_of c a }
  in
  let record_ct c kind loc os =
    if os <> [] then
      c.fx_cts <-
        { T.ct_kind = kind;
          ct_pos = pos_of_loc file loc;
          ct_origins = os;
          ct_allows = scope_allows () }
        :: c.fx_cts
  in
  (* orchestrator-only-obs: > 0 while inside a function argument of a
     pool call, i.e. syntactically inside a chunk closure. *)
  let pool_depth = ref 0 in
  let with_snapshot f =
    let snap = Hashtbl.copy tainted in
    f ();
    Hashtbl.reset tainted;
    Hashtbl.iter (fun k v -> Hashtbl.replace tainted k v) snap
  in
  let walker =
    object (self)
      inherit Ast_traverse.iter as super

      method! value_binding vb =
        let saved = !allows in
        allows := register (allow_sites_of_attributes ~file vb.pvb_attributes) @ saved;
        (match (function_binding vb, !cur) with
         | Some name, None ->
           (* Top-level (or submodule-level) function: open a summary
              context, walk the body under it, then finalise. *)
           let params, body = collect_params [] vb.pvb_expr in
           let qname = String.concat "." (!module_path @ [ name ]) in
           let fx =
             { fx_name = qname;
               fx_pos = pos_of_loc file vb.pvb_loc;
               fx_params =
                 List.map
                   (fun (label, n, _) ->
                     { T.p_name = (match n with Some n -> n | None -> "_");
                       p_label = label })
                   params;
               fx_env = Hashtbl.create 16;
               fx_in_ct = T.in_ct_scope config qname;
               fx_sinks = [];
               fx_calls = [];
               fx_cts = [] }
           in
           List.iteri
             (fun i (_, n, all_names) ->
               let pname =
                 match n with Some n -> n | None -> Printf.sprintf "arg%d" i
               in
               env_add fx.fx_env pname [ T.Param pname ];
               List.iter
                 (fun bound -> env_add fx.fx_env bound [ T.Param pname ])
                 all_names)
             params;
           cur := Some fx;
           with_snapshot (fun () ->
             propagate_taint vb;
             super#value_binding vb);
           let returns =
             match body with Some b -> tail_origins b | None -> []
           in
           funcs :=
             { T.f_name = fx.fx_name;
               f_file = file;
               f_pos = fx.fx_pos;
               f_params = fx.fx_params;
               f_returns = returns;
               f_sinks = List.rev fx.fx_sinks;
               f_calls = List.rev fx.fx_calls;
               f_ct_events = List.rev fx.fx_cts;
               f_in_ct_scope = fx.fx_in_ct }
             :: !funcs;
           cur := None
         | Some name, Some c ->
           (* Local closure: its captures are the closure's origins. *)
           let _, body = collect_params [] vb.pvb_expr in
           (match body with
            | Some b -> env_add c.fx_env name (origins_of b)
            | None -> ());
           with_snapshot (fun () ->
             propagate_taint vb;
             super#value_binding vb)
         | None, _ ->
           propagate_taint vb;
           let env = match !cur with Some c -> c.fx_env | None -> file_env in
           let os = origins_of vb.pvb_expr in
           List.iter (fun n -> env_add env n os) (pattern_names vb.pvb_pat);
           super#value_binding vb);
        allows := saved

      method! module_binding mb =
        match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
        | Some name, Pmod_ident { txt; _ } ->
          Hashtbl.replace aliases name (Longident.flatten_exn txt);
          super#module_binding mb
        | Some name, Pmod_structure _ ->
          module_path := !module_path @ [ name ];
          super#module_binding mb;
          module_path :=
            List.filteri (fun i _ -> i < List.length !module_path - 1) !module_path
        | _ -> super#module_binding mb

      method! expression e =
        let saved = !allows in
        allows := register (allow_sites_of_attributes ~file e.pexp_attributes) @ saved;
        (match e.pexp_desc with
         | Pexp_ident { txt; loc } ->
           let name = flatten_lident txt in
           if List.mem name division_idents then
             report Lint_config.No_division loc
               "division operator %s in a ring-kernel directory (kernels are \
                division-free; whitelist precompute/fallback sites with \
                [@sknn.allow \"no-division\"])"
               name;
           if head_lident txt = "Random" then
             report Lint_config.No_ambient_nondeterminism loc
               "stdlib Random (%s) breaks bit-identical results across --jobs; \
                use Util.Rng streams"
               name;
           if List.mem name wall_clock_idents then
             report Lint_config.No_ambient_nondeterminism loc
               "wall-clock read %s outside Util.Timer/lib/obs" name;
           if config.Lint_config.check_wall_clock && List.mem name timer_idents
           then
             report Lint_config.No_ambient_nondeterminism loc
               "Timer read %s in a virtual-clock directory; every timestamp \
                here must be a pure function of the transcript and profile"
               name;
           if config.Lint_config.check_poly_compare
              && List.mem name poly_compare_idents
           then
             report Lint_config.No_ambient_nondeterminism loc
               "polymorphic %s in a ciphertext-bearing directory; use a \
                monomorphic comparison (Int.compare, Int64.compare, ...)"
               name;
           if !pool_depth > 0
              && List.mem (head_lident txt) config.Lint_config.obs_modules
           then
             report Lint_config.Orchestrator_only_obs loc
               "observability call %s inside a Pool chunk closure — spans, \
                flight events and metrics are orchestrator-only (replayed \
                post-join via with_chunk_observer)"
               name
         | _ -> ());
        (match e.pexp_desc with
         | Pexp_apply (({ pexp_desc = Pexp_ident { txt = fn; loc = fn_loc }; _ } as f), args) ->
           (* into-aliasing: Rq destructive variants with dst = src. *)
           (if String.length (last_lident fn) > 5
               && Filename.check_suffix (last_lident fn) "_into"
               && (head_lident fn = "Rq" || head_lident fn = "Ring")
            then
              match List.filter_map (function Nolabel, a -> Some a | _ -> None) args with
              | dst :: srcs when srcs <> [] ->
                let dst_s = expr_to_string dst in
                List.iter
                  (fun src ->
                    if expr_to_string src = dst_s then
                      report Lint_config.Into_aliasing fn_loc
                        "%s called with syntactically identical destination and \
                         source (%s): destructive targets must be uniquely owned"
                        (flatten_lident fn) dst_s)
                  srcs
              | _ -> ());
           (* ledger-at-op-site: ciphertext ops without a counters
              ledger.  Unqualified internal calls (inside Bgv itself)
              have no module head and are not checked. *)
           (let last = last_lident fn and head = head_lident fn in
            let is_ledger_op =
              (head = "Bgv" && List.mem last bgv_ledger_ops)
              || (head = "Plaintext" && List.mem last plaintext_ledger_ops)
            in
            let threads_counters =
              List.exists
                (function
                  | (Labelled "counters" | Optional "counters"), _ -> true
                  | _ -> false)
                args
            in
            if is_ledger_op && not threads_counters then
              report Lint_config.Ledger_at_op_site fn_loc
                "%s without a ~counters argument: every ciphertext op must \
                 land in the op-level cost ledger or the Cost_model \
                 cross-check under-counts (thread the party's counters, or \
                 whitelist setup-time sites with [@sknn.allow \
                 \"ledger-at-op-site\"])"
                (flatten_lident fn));
           (* Reference-cell writes feed the flow environment so that
              accumulator-style secrets stay tracked. *)
           (match (flatten_lident fn, args) with
            | ":=", [ (Nolabel, { pexp_desc = Pexp_ident { txt = Lident x; _ }; _ });
                      (Nolabel, rhs) ] ->
              let env = match !cur with Some c -> c.fx_env | None -> file_env in
              env_add env x (origins_of rhs)
            | _ -> ());
           (* secret-taint sinks (phase 1) + sink summaries (phase 2). *)
           (match sink_of_application config fn with
            | None -> ()
            | Some mode ->
              let exempt =
                match literal_label args with
                | Some l -> List.mem l config.Lint_config.allowed_labels
                | None -> false
              in
              let local_hit = ref false in
              if not exempt then begin
                let checked =
                  match mode with
                  | `All -> List.map snd args
                  | `Labelled names ->
                    List.filter_map
                      (function
                        | Labelled l, a when List.mem l names -> Some a
                        | _ -> None)
                      args
                in
                List.iter
                  (fun a ->
                    match taint_mention a with
                    | Some who ->
                      if enabled Lint_config.Secret_taint then local_hit := true;
                      report Lint_config.Secret_taint fn_loc
                        "secret-carrying identifier %s flows into sink %s outside \
                         the §5-allowlisted surface (allow-label the admitted \
                         observable or declassify via Leakage)"
                        who (flatten_lident fn)
                    | None -> ())
                  checked
              end;
              (match (mode, !cur) with
               | `All, Some c ->
                 let label_form =
                   match
                     List.find_opt (function Labelled "label", _ -> true | _ -> false) args
                   with
                   | Some (_, le) -> (
                     match string_of_label_expr le with
                     | Some l -> T.Label_literal l
                     | None -> (
                       match passthrough_of c le with
                       | Some p -> T.Label_param p
                       | None -> T.Label_opaque))
                   | None ->
                     if List.exists (fun p -> p.T.p_name = "label") c.fx_params
                     then T.Label_param "label"
                     else T.Label_none
                 in
                 c.fx_sinks <-
                   { T.sk_callee = flatten_lident fn;
                     sk_pos = pos_of_loc file fn_loc;
                     sk_label = label_form;
                     sk_origins =
                       union_origins (List.map (fun (_, a) -> origins_of a) args);
                     sk_allows = scope_allows ();
                     sk_local = !local_hit || exempt }
                   :: c.fx_sinks
               | _ -> ()));
           (* Call-graph edges for phase 2. *)
           (match !cur with
            | Some c when flatten_lident fn <> ":=" ->
              c.fx_calls <-
                { T.c_callee = expand_path (flatten_lident fn);
                  c_pos = pos_of_loc file fn_loc;
                  c_args = List.map (mk_call_arg c) args }
                :: c.fx_calls
            | _ -> ());
           (* constant-time: secret-indexed loads and variable-time ops
              inside ct-scope functions. *)
           (match !cur with
            | Some c when c.fx_in_ct && enabled Lint_config.Constant_time ->
              let last = last_lident fn and head = head_lident fn in
              if List.mem head indexed_get_heads
                 && List.mem last [ "get"; "unsafe_get" ]
              then (
                match List.filter_map (function Nolabel, a -> Some a | _ -> None) args with
                | _ :: idx :: _ -> record_ct c T.Ct_index fn_loc (origins_of idx)
                | _ -> ());
              if List.mem (flatten_lident fn) ct_vartime_idents then
                record_ct c (T.Ct_vartime (flatten_lident fn)) fn_loc
                  (union_origins (List.map (fun (_, a) -> origins_of a) args))
            | _ -> ());
           (* orchestrator-only-obs: descend into pool chunk closures
              with the flag raised; other arguments descend normally. *)
           if is_pool_call fn then begin
             self#expression f;
             List.iter
               (fun (_, a) ->
                 if is_function a then begin
                   incr pool_depth;
                   self#expression a;
                   decr pool_depth
                 end
                 else self#expression a)
               args
           end
           else super#expression e
         | Pexp_let (_, vbs, _) ->
           List.iter propagate_taint vbs;
           super#expression e
         | Pexp_ifthenelse (c0, _, _) ->
           (match !cur with
            | Some c when c.fx_in_ct && enabled Lint_config.Constant_time ->
              record_ct c (T.Ct_branch "if") e.pexp_loc (origins_of c0)
            | _ -> ());
           super#expression e
         | Pexp_match (scrut, _) ->
           (match !cur with
            | Some c when c.fx_in_ct && enabled Lint_config.Constant_time ->
              record_ct c (T.Ct_branch "match") e.pexp_loc (origins_of scrut)
            | _ -> ());
           super#expression e
         | Pexp_while (c0, _) ->
           (match !cur with
            | Some c when c.fx_in_ct && enabled Lint_config.Constant_time ->
              record_ct c (T.Ct_branch "while") e.pexp_loc (origins_of c0)
            | _ -> ());
           super#expression e
         | _ -> super#expression e);
        allows := saved

      method! structure_item si =
        match si.pstr_desc with
        | Pstr_attribute a ->
          (* [@@@sknn.allow "rule"]: applies to the rest of the file. *)
          file_allows := register (allow_sites_of_attributes ~file [ a ]) @ !file_allows;
          super#structure_item si
        | Pstr_value (_, vbs) ->
          (* into-aliasing, arena half: an Arena.acquire whose top-level
             binding never releases is a handle escaping its scope. *)
          if enabled Lint_config.Into_aliasing then begin
            let acquires = ref [] and releases = ref 0 in
            let scan =
              object
                inherit Ast_traverse.iter as super

                method! expression e =
                  (match e.pexp_desc with
                   | Pexp_ident { txt; loc } ->
                     if is_arena_fn "acquire" txt then acquires := loc :: !acquires;
                     if is_arena_fn "release" txt then incr releases
                   | _ -> ());
                  super#expression e
              end
            in
            List.iter (fun vb -> scan#expression vb.pvb_expr) vbs;
            if !releases = 0 then
              List.iter
                (fun loc ->
                  report Lint_config.Into_aliasing loc
                    "Arena.acquire without a matching Arena.release in the same \
                     top-level binding — scratch handles must not escape their \
                     scope (prefer Arena.with_array)")
                (List.rev !acquires)
          end;
          super#structure_item si
        | _ -> super#structure_item si
    end
  in
  walker#structure str;
  ( List.sort compare_diagnostic !diags,
    { T.ff_file = file;
      ff_config = config;
      ff_funcs = List.rev !funcs;
      ff_allows = !all_allows } )

let run_structure ~config ~file str = fst (run ~config ~file str)
