(* The five secure-kNN invariant rules as one syntactic pass over a
   parsed implementation.  Everything here is deliberately *syntactic*:
   the linter runs at `dune build @lint` time on source files, without
   type information, so each rule over-approximates and the
   [@sknn.allow "<rule>"] attribute (on an expression, a value binding
   or floating at module level) is the reviewed escape hatch for sites
   the over-approximation catches legitimately.

   Rule <-> invariant map (see DESIGN.md "Static analysis"):
   - no-division            ROADMAP "Kernel invariants (PR 3)"
   - secret-taint           §5 leakage surface / ROADMAP PR 2 audit set
   - orchestrator-only-obs  ROADMAP PR 2/PR 4 orchestrator-only spans
   - no-ambient-nondeterminism  bit-identical across --jobs (PR 1)
   - into-aliasing          PR 3 "destructive targets uniquely owned"
   - ledger-at-op-site      PR 7 op-level cost ledger: every qualified
                            Bgv/Plaintext ciphertext op in a protocol
                            directory threads a ~counters ledger *)

open Ppxlib

type diagnostic = {
  rule : Lint_config.rule;
  file : string;
  line : int;
  col : int;
  message : string;
}

let compare_diagnostic a b =
  let c = compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.col b.col in
      if c <> 0 then c
      else
        let c = compare (Lint_config.rule_name a.rule) (Lint_config.rule_name b.rule) in
        if c <> 0 then c else compare a.message b.message

let pp_diagnostic ppf d =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" d.file d.line d.col
    (Lint_config.rule_name d.rule) d.message

(* ------------------------------------------------------------------ *)
(* Syntactic helpers                                                   *)
(* ------------------------------------------------------------------ *)

let flatten_lident l = String.concat "." (Longident.flatten_exn l)

let last_lident l =
  match Longident.flatten_exn l with
  | [] -> ""
  | parts -> List.nth parts (List.length parts - 1)

let head_lident l = match Longident.flatten_exn l with [] -> "" | h :: _ -> h

(* [@sknn.allow "rule"] payloads attached to an attribute list. *)
let allows_of_attributes attrs =
  List.filter_map
    (fun (a : attribute) ->
      if a.attr_name.txt <> "sknn.allow" then None
      else
        match a.attr_payload with
        | PStr
            [ { pstr_desc =
                  Pstr_eval
                    ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
                _ }
            ] ->
          Some s
        | _ -> None)
    attrs

(* Normalised one-line rendering, used for syntactic equality of
   aliasing checks and for quoting expressions in messages. *)
let expr_to_string e =
  let s = Pprintast.string_of_expression e in
  String.concat " "
    (List.filter (fun w -> w <> "") (String.split_on_char ' '
       (String.map (function '\n' | '\t' -> ' ' | c -> c) s)))

(* ------------------------------------------------------------------ *)
(* Pattern tables                                                      *)
(* ------------------------------------------------------------------ *)

let division_idents =
  [ "/"; "mod"; "/."; "Stdlib./"; "Stdlib.mod"; "Stdlib./."; "Int64.div";
    "Int64.rem"; "Int64.unsigned_div"; "Int64.unsigned_rem"; "Float.div";
    "Float.rem"; "Int32.div"; "Int32.rem"; "Nativeint.div"; "Nativeint.rem" ]

let wall_clock_idents =
  [ "Unix.gettimeofday"; "Unix.time"; "Unix.gmtime"; "Unix.localtime";
    "Sys.time" ]

(* The sanctioned wrapper's reads, banned only under [check-wall-clock]:
   directories whose timestamps must be pure functions of recorded data
   (the virtual network clock) may not fall back to the wall. *)
let timer_idents =
  [ "Timer.now"; "Timer.time"; "Timer.counter"; "Util.Timer.now";
    "Util.Timer.time"; "Util.Timer.counter" ]

let poly_compare_idents =
  [ "compare"; "Stdlib.compare"; "Hashtbl.hash"; "Hashtbl.seeded_hash" ]

(* ledger-at-op-site: the Bgv entry points that record into the op-level
   cost ledger when given [?counters] — every qualified call in a
   protocol directory must thread one, or the analytic Cost_model
   cross-check silently under-counts.  Key generation is excluded: it is
   one-time setup outside the per-query ledger. *)
let bgv_ledger_ops =
  [ "encrypt"; "decrypt"; "decrypt_coeff0"; "add"; "sub"; "add_plain";
    "add_const"; "mul"; "mul_plain"; "mul_scalar"; "mul_sum"; "modswitch";
    "rescale_to_floor"; "relinearize"; "truncate_to_level"; "eval_poly";
    "apply_galois"; "sum_slots" ]

let plaintext_ledger_ops = [ "of_slots"; "to_slots" ]

let pool_call_names = [ "map"; "mapi"; "map_local"; "init" ]

let is_pool_call lid =
  List.mem (last_lident lid) pool_call_names
  &&
  match Longident.flatten_exn lid with
  | [ "Pool"; _ ] | [ "Util"; "Pool"; _ ] -> true
  | _ -> false

let is_arena_fn name lid =
  match Longident.flatten_exn lid with
  | [ "Arena"; f ] | [ "Util"; "Arena"; f ] -> f = name
  | _ -> false

(* Sinks for the secret-taint rule.  [`All] checks every argument,
   [`Labelled l] only the given labelled arguments; a string-literal
   [~label] in the configured allowlist exempts the whole call (the
   admitted §5 surface). *)
let sink_of_application config lid =
  let last = last_lident lid in
  let head = head_lident lid in
  let obs_head = List.mem head config.Lint_config.obs_modules in
  if (obs_head && (last = "audit" || last = "observe" || last = "warn"))
     || flatten_lident lid = "Audit.observe"
  then Some `All
  else if last = "send" && (head = "Transcript" || head = "Netsim") then Some `All
  else if last = "send_tracked" || last = "record_send" then Some `All
  else if obs_head && last = "with_span" then Some (`Labelled [ "args" ])
  else if
    (head = "Printf" || head = "Format")
    (* sprintf-style builders only *construct* strings; if the result
       reaches an output sink, taint propagation through the binding
       catches it there. *)
    && not (List.mem last [ "sprintf"; "asprintf"; "ksprintf"; "kasprintf" ])
  then Some `All
  else if head = "Metrics" && (last = "set" || last = "observe") then Some `All
  else None

(* ------------------------------------------------------------------ *)
(* The pass                                                            *)
(* ------------------------------------------------------------------ *)

let run_structure ~(config : Lint_config.t) ~file str =
  let diags = ref [] in
  let file_allows = ref [] in
  let enabled r = Lint_config.is_enabled config r in
  (* Scoped [@sknn.allow] context, restored around each subtree. *)
  let allows = ref [] in
  let allowed rule = List.mem (Lint_config.rule_name rule) (!allows @ !file_allows) in
  let report rule loc fmt =
    Format.kasprintf
      (fun message ->
        if enabled rule && not (allowed rule) then
          diags :=
            { rule;
              file;
              line = loc.loc_start.pos_lnum;
              col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
              message }
            :: !diags)
      fmt
  in
  (* secret-taint state: names bound (directly or via record fields) to
     secret material.  Monotone over the file — a deliberate
     over-approximation that keeps the pass single-scan. *)
  let tainted = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace tainted r ()) config.Lint_config.taint_roots;
  let is_declassifier lid =
    let s = flatten_lident lid in
    List.exists
      (fun prefix ->
        String.length s >= String.length prefix
        && String.sub s 0 (String.length prefix) = prefix)
      config.Lint_config.declassifiers
  in
  (* First tainted identifier/field mentioned in [e], skipping
     declassifier applications. *)
  let taint_mention e =
    let found = ref None in
    let scan =
      object (self)
        inherit Ast_traverse.iter as super

        method! expression e =
          if !found <> None then ()
          else
            match e.pexp_desc with
            | Pexp_ident { txt; _ } when Hashtbl.mem tainted (last_lident txt) ->
              found := Some (flatten_lident txt)
            | Pexp_field (inner, { txt; _ })
              when Hashtbl.mem tainted (last_lident txt) ->
              found := Some ("." ^ last_lident txt);
              self#expression inner
            | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
              when is_declassifier txt ->
              () (* declassified: the §5 extraction surface *)
            | _ -> super#expression e
      end
    in
    scan#expression e;
    !found
  in
  let pattern_names p =
    let names = ref [] in
    let scan =
      object
        inherit Ast_traverse.iter as super

        method! pattern p =
          (match p.ppat_desc with
           | Ppat_var { txt; _ } -> names := txt :: !names
           | _ -> ());
          super#pattern p
      end
    in
    scan#pattern p;
    !names
  in
  let is_function e = match e.pexp_desc with Pexp_function _ -> true | _ -> false in
  let propagate_taint vb =
    if enabled Lint_config.Secret_taint && not (is_function vb.pvb_expr) then
      match taint_mention vb.pvb_expr with
      | Some _ -> List.iter (fun n -> Hashtbl.replace tainted n ()) (pattern_names vb.pvb_pat)
      | None -> ()
  in
  (* A [~label] argument that is a string literal, or a sprintf whose
     format string is a literal: the format string stands for the label
     in the allowlist ("iteration %d: masked distance rows"), since the
     varying hole is a public message index. *)
  let string_of_label_expr e =
    match e.pexp_desc with
    | Pexp_constant (Pconst_string (s, _, _)) -> Some s
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt; _ }; _ },
          (Nolabel, { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ })
          :: _ )
      when List.mem (flatten_lident txt)
             [ "Printf.sprintf"; "Format.sprintf"; "Format.asprintf"; "sprintf" ]
      ->
      Some s
    | _ -> None
  in
  let literal_label args =
    List.find_map
      (function Labelled "label", e -> string_of_label_expr e | _ -> None)
      args
  in
  (* orchestrator-only-obs: > 0 while inside a function argument of a
     pool call, i.e. syntactically inside a chunk closure. *)
  let pool_depth = ref 0 in
  let walker =
    object (self)
      inherit Ast_traverse.iter as super

      method! value_binding vb =
        let saved = !allows in
        allows := allows_of_attributes vb.pvb_attributes @ saved;
        propagate_taint vb;
        super#value_binding vb;
        allows := saved

      method! expression e =
        let saved = !allows in
        allows := allows_of_attributes e.pexp_attributes @ saved;
        (match e.pexp_desc with
         | Pexp_ident { txt; loc } ->
           let name = flatten_lident txt in
           if List.mem name division_idents then
             report Lint_config.No_division loc
               "division operator %s in a ring-kernel directory (kernels are \
                division-free; whitelist precompute/fallback sites with \
                [@sknn.allow \"no-division\"])"
               name;
           if head_lident txt = "Random" then
             report Lint_config.No_ambient_nondeterminism loc
               "stdlib Random (%s) breaks bit-identical results across --jobs; \
                use Util.Rng streams"
               name;
           if List.mem name wall_clock_idents then
             report Lint_config.No_ambient_nondeterminism loc
               "wall-clock read %s outside Util.Timer/lib/obs" name;
           if config.Lint_config.check_wall_clock && List.mem name timer_idents
           then
             report Lint_config.No_ambient_nondeterminism loc
               "Timer read %s in a virtual-clock directory; every timestamp \
                here must be a pure function of the transcript and profile"
               name;
           if config.Lint_config.check_poly_compare
              && List.mem name poly_compare_idents
           then
             report Lint_config.No_ambient_nondeterminism loc
               "polymorphic %s in a ciphertext-bearing directory; use a \
                monomorphic comparison (Int.compare, Int64.compare, ...)"
               name;
           if !pool_depth > 0
              && List.mem (head_lident txt) config.Lint_config.obs_modules
           then
             report Lint_config.Orchestrator_only_obs loc
               "observability call %s inside a Pool chunk closure — spans, \
                flight events and metrics are orchestrator-only (replayed \
                post-join via with_chunk_observer)"
               name
         | _ -> ());
        (match e.pexp_desc with
         | Pexp_apply (({ pexp_desc = Pexp_ident { txt = fn; loc = fn_loc }; _ } as f), args) ->
           (* into-aliasing: Rq destructive variants with dst = src. *)
           (if String.length (last_lident fn) > 5
               && Filename.check_suffix (last_lident fn) "_into"
               && (head_lident fn = "Rq" || head_lident fn = "Ring")
            then
              match List.filter_map (function Nolabel, a -> Some a | _ -> None) args with
              | dst :: srcs when srcs <> [] ->
                let dst_s = expr_to_string dst in
                List.iter
                  (fun src ->
                    if expr_to_string src = dst_s then
                      report Lint_config.Into_aliasing fn_loc
                        "%s called with syntactically identical destination and \
                         source (%s): destructive targets must be uniquely owned"
                        (flatten_lident fn) dst_s)
                  srcs
              | _ -> ());
           (* ledger-at-op-site: ciphertext ops without a counters
              ledger.  Unqualified internal calls (inside Bgv itself)
              have no module head and are not checked. *)
           (let last = last_lident fn and head = head_lident fn in
            let is_ledger_op =
              (head = "Bgv" && List.mem last bgv_ledger_ops)
              || (head = "Plaintext" && List.mem last plaintext_ledger_ops)
            in
            let threads_counters =
              List.exists
                (function
                  | (Labelled "counters" | Optional "counters"), _ -> true
                  | _ -> false)
                args
            in
            if is_ledger_op && not threads_counters then
              report Lint_config.Ledger_at_op_site fn_loc
                "%s without a ~counters argument: every ciphertext op must \
                 land in the op-level cost ledger or the Cost_model \
                 cross-check under-counts (thread the party's counters, or \
                 whitelist setup-time sites with [@sknn.allow \
                 \"ledger-at-op-site\"])"
                (flatten_lident fn));
           (* secret-taint sinks. *)
           (match sink_of_application config fn with
            | None -> ()
            | Some mode ->
              let exempt =
                match literal_label args with
                | Some l -> List.mem l config.Lint_config.allowed_labels
                | None -> false
              in
              if not exempt then begin
                let checked =
                  match mode with
                  | `All -> List.map snd args
                  | `Labelled names ->
                    List.filter_map
                      (function
                        | Labelled l, a when List.mem l names -> Some a
                        | _ -> None)
                      args
                in
                List.iter
                  (fun a ->
                    match taint_mention a with
                    | Some who ->
                      report Lint_config.Secret_taint fn_loc
                        "secret-carrying identifier %s flows into sink %s outside \
                         the §5-allowlisted surface (allow-label the admitted \
                         observable or declassify via Leakage)"
                        who (flatten_lident fn)
                    | None -> ())
                  checked
              end);
           (* orchestrator-only-obs: descend into pool chunk closures
              with the flag raised; other arguments descend normally. *)
           if is_pool_call fn then begin
             self#expression f;
             List.iter
               (fun (_, a) ->
                 if is_function a then begin
                   incr pool_depth;
                   self#expression a;
                   decr pool_depth
                 end
                 else self#expression a)
               args
           end
           else super#expression e
         | Pexp_let (_, vbs, _) ->
           List.iter propagate_taint vbs;
           super#expression e
         | _ -> super#expression e);
        allows := saved

      method! structure_item si =
        match si.pstr_desc with
        | Pstr_attribute a ->
          (* [@@@sknn.allow "rule"]: applies to the rest of the file. *)
          file_allows := allows_of_attributes [ a ] @ !file_allows;
          super#structure_item si
        | Pstr_value (_, vbs) ->
          (* into-aliasing, arena half: an Arena.acquire whose top-level
             binding never releases is a handle escaping its scope. *)
          if enabled Lint_config.Into_aliasing then begin
            let acquires = ref [] and releases = ref 0 in
            let scan =
              object
                inherit Ast_traverse.iter as super

                method! expression e =
                  (match e.pexp_desc with
                   | Pexp_ident { txt; loc } ->
                     if is_arena_fn "acquire" txt then acquires := loc :: !acquires;
                     if is_arena_fn "release" txt then incr releases
                   | _ -> ());
                  super#expression e
              end
            in
            List.iter (fun vb -> scan#expression vb.pvb_expr) vbs;
            if !releases = 0 then
              List.iter
                (fun loc ->
                  report Lint_config.Into_aliasing loc
                    "Arena.acquire without a matching Arena.release in the same \
                     top-level binding — scratch handles must not escape their \
                     scope (prefer Arena.with_array)")
                (List.rev !acquires)
          end;
          super#structure_item si
        | _ -> super#structure_item si
    end
  in
  walker#structure str;
  List.sort compare_diagnostic !diags
