(* Minimal SARIF 2.1.0 emitter so lint findings render as GitHub
   code-scanning annotations, plus a small JSON well-formedness checker
   used by the test suite (no JSON library in the dependency set, and
   the emitter is simple enough to verify directly).

   Output is deterministic: findings arrive pre-sorted from the driver
   and the emitter adds nothing environment-dependent (no timestamps,
   no absolute paths). *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rule_descriptions =
  [ (Lint_config.No_division, "Ring kernels are division-free");
    (Lint_config.Secret_taint, "Secrets reach sinks only via the §5 surface");
    (Lint_config.Orchestrator_only_obs, "Observability is orchestrator-only");
    (Lint_config.No_ambient_nondeterminism, "Results are bit-identical across --jobs");
    (Lint_config.Into_aliasing, "Destructive targets are uniquely owned");
    (Lint_config.Ledger_at_op_site, "Every ciphertext op lands in the cost ledger");
    (Lint_config.Secret_flow, "No interprocedural secret-to-sink path escapes Leakage.*");
    (Lint_config.Constant_time, "Party B's secret-key TCB is branch- and index-oblivious");
    (Lint_config.Unused_allow, "Escape hatches suppress at least one diagnostic") ]

let render (diags : Lint_rules.diagnostic list) =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"version\":\"2.1.0\",";
  add "\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",";
  add "\"runs\":[{\"tool\":{\"driver\":{\"name\":\"sknn-lint\",";
  add "\"informationUri\":\"https://example.invalid/sknn-lint\",\"rules\":[";
  List.iteri
    (fun i (r, desc) ->
      if i > 0 then add ",";
      add "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"}}"
        (escape (Lint_config.rule_name r)) (escape desc))
    rule_descriptions;
  add "]}},\"results\":[";
  List.iteri
    (fun i (d : Lint_rules.diagnostic) ->
      if i > 0 then add ",";
      add
        "{\"ruleId\":\"%s\",\"level\":\"error\",\"message\":{\"text\":\"%s\"},\
         \"locations\":[{\"physicalLocation\":{\"artifactLocation\":\
         {\"uri\":\"%s\"},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]}"
        (escape (Lint_config.rule_name d.rule))
        (escape d.message) (escape d.file) d.line (d.col + 1))
    diags;
  add "]}]}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON well-formedness (for the test suite)                           *)
(* ------------------------------------------------------------------ *)

exception Bad of int

let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let fail () = raise (Bad !pos) in
  let peek () = if !pos >= n then fail () else s.[!pos] in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c = if peek () <> c then fail () else advance () in
  let literal w =
    String.iter (fun c -> expect c) w
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
         | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> advance ()
         | 'u' ->
           advance ();
           for _ = 1 to 4 do
             (match peek () with
              | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> advance ()
              | _ -> fail ())
           done
         | _ -> fail ());
        go ()
      | c when Char.code c < 0x20 -> fail ()
      | _ -> advance (); go ()
    in
    go ()
  in
  let number () =
    if peek () = '-' then advance ();
    let digits () =
      let saw = ref false in
      let rec d () =
        if !pos < n then
          match s.[!pos] with
          | '0' .. '9' -> saw := true; advance (); d ()
          | _ -> ()
      in
      d ();
      if not !saw then fail ()
    in
    digits ();
    if !pos < n && s.[!pos] = '.' then (advance (); digits ());
    if !pos < n && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
      advance ();
      if !pos < n && (s.[!pos] = '+' || s.[!pos] = '-') then advance ();
      digits ()
    end
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then advance ()
      else begin
        let rec members () =
          skip_ws ();
          string_lit ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ()
          | '}' -> advance ()
          | _ -> fail ()
        in
        members ()
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then advance ()
      else begin
        let rec elements () =
          value ();
          skip_ws ();
          match peek () with
          | ',' -> advance (); elements ()
          | ']' -> advance ()
          | _ -> fail ()
        in
        elements ()
      end
    | '"' -> string_lit ()
    | 't' -> literal "true"
    | 'f' -> literal "false"
    | 'n' -> literal "null"
    | _ -> number ()
  in
  try
    value ();
    skip_ws ();
    !pos = n
  with Bad _ -> false
