(* Phase 2, flow domain: propagate secret sources through the
   per-function summaries to a fixpoint and report every
   interprocedural path from a secret to an `All`-mode sink that is not
   routed through a declared declassifier or the §5 allow-label
   surface.

   The engine is a demand-driven whole-program evaluation:

   - a *binding* (f, p) records every call site that can reach
     parameter [p] of function [f], together with the argument's
     origins in the caller — collected in one pass over the call
     graph, no secrecy judgement involved;
   - a value is secret when its origins evaluate to a configured root:
     parameters chase their bindings up the caller chain, call results
     inline the callee's return origins under an argument
     substitution, and deferred field projections ([Field]) normalise
     the inner origin to the record literals it can evaluate to and
     project there — so a record's public field never inherits the
     taint of its sibling key field;
   - a sink fires when its collected argument origins resolve secret,
     unless phase 1 already reported the site (direct mention), the
     resolved ~label chain lands entirely on allow-listed literals, or
     an [@sknn.allow "secret-flow"] covers it.

   Cycles are pruned (least fixpoint: a loop contributes no taint of
   its own), recursion is depth-capped, and top-level parameter
   queries are memoised per domain.

   Determinism: functions are iterated in (file, position) order, all
   worklists are lists in collection order, and no hashing order is
   ever observed — reports are byte-identical across runs and --jobs. *)

module T = Taint_summary
module Cg = Call_graph

(* Resolution context: the function whose origins we are evaluating,
   plus a substitution mapping its parameters to the (context, origins)
   captured at the call being resolved. *)
type ctx = { fn : T.func; subst : (string * (ctx * T.origin list)) list }

type bind = { b_caller : T.func; b_pos : T.pos; b_origins : T.origin list }

type domain = {
  d_cg : Cg.t;
  d_roots : string list;      (* global secret root names *)
  d_declass : string -> bool; (* cut Ret results at these *)
  d_binds : (string * string, bind list) Hashtbl.t;
      (* (fn, param) -> call sites that bind it, in call-graph order *)
  d_memo : (string * string, string list option) Hashtbl.t;
      (* top-level "can (fn, param) carry secret?" answers *)
}

let depth_cap = 16

(* Field projections get their own budget: a projection reached deep
   in a secrecy evaluation must still be able to walk back to the
   record literal, or it degrades to whole-record taint.  Termination
   is guaranteed by the cycle guards, the cap only bounds work. *)
let shape_cap = 8

let empty_ctx fn = { fn; subst = [] }

(* One pass over every call site: which arguments reach which
   parameters.  Purely structural — secrecy is decided on demand. *)
let bindings cg =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun f ->
      List.iter
        (fun (call : T.call) ->
          let callees = Cg.resolve cg ~caller_file:f.T.f_file call.T.c_callee in
          List.iter
            (fun g ->
              let matched =
                Cg.match_args g.T.f_params
                  (List.map
                     (fun (a : T.call_arg) -> (a, a.T.ca_label))
                     call.T.c_args)
              in
              List.iter
                (fun (p, (arg : T.call_arg)) ->
                  let key = (g.T.f_name, p.T.p_name) in
                  let prev =
                    Option.value ~default:[] (Hashtbl.find_opt tbl key)
                  in
                  Hashtbl.replace tbl key
                    (prev
                    @ [ { b_caller = f;
                          b_pos = call.T.c_pos;
                          b_origins = arg.T.ca_origins } ]))
                matched)
            callees)
        f.T.f_calls)
    cg.Cg.funcs;
  tbl

(* Is this origin set secret?  Returns a source-first witness trace.
   [vf] guards recursive call resolution (function names), [vp] guards
   binding chains ((function, parameter) keys): both prune cycles,
   which under a least fixpoint contribute no taint of their own. *)
let rec secret_at dom (ctx : ctx) depth vf vp origins =
  List.find_map (secret_one dom ctx depth vf vp) origins

and secret_one dom ctx depth vf vp o =
  match o with
  | T.Root r ->
    if List.mem r dom.d_roots then Some [ Printf.sprintf "secret root %S" r ]
    else None
  | T.Param p -> (
    match List.assoc_opt p ctx.subst with
    | Some (cctx, os) -> secret_at dom cctx depth vf vp os
    | None -> via_binds dom ctx depth vf vp p)
  | T.Rec fields ->
    List.find_map
      (fun (f, os) ->
        Option.map
          (fun t -> t @ [ Printf.sprintf "field %s" f ])
          (secret_at dom ctx depth vf vp os))
      fields
  | T.Field (f, inner) -> (
    match shapes dom ctx shape_cap vf vp inner with
    | [] ->
      (* No record literal reachable (opaque callee, non-record
         value): conservatively treat the projection as the whole
         value. *)
      Option.map
        (fun t -> t @ [ Printf.sprintf "via field %s" f ])
        (secret_one dom ctx depth vf vp inner)
    | ss ->
      List.find_map
        (fun (c, hops, fields) ->
          match List.assoc_opt f fields with
          | None -> None
          | Some os ->
            Option.map
              (fun t -> t @ (Printf.sprintf "field %s" f :: hops))
              (secret_at dom c depth vf vp os))
        ss)
  | T.Ret (path, args) ->
    if dom.d_declass path then None
    else begin
      let union_of_args () =
        List.find_map
          (fun (_, os) ->
            Option.map
              (fun t -> t @ [ Printf.sprintf "via %s" path ])
              (secret_at dom ctx depth vf vp os))
          args
      in
      match Cg.resolve dom.d_cg ~caller_file:ctx.fn.T.f_file path with
      | [] -> union_of_args ()
      | gs ->
        if depth = 0 then None
        else
          List.find_map
            (fun g ->
              if List.mem g.T.f_name vf then None
              else
                let matched =
                  Cg.match_args g.T.f_params
                    (List.map (fun (l, os) -> ((ctx, os), l)) args)
                in
                let subst = List.map (fun (p, v) -> (p.T.p_name, v)) matched in
                Option.map
                  (fun t -> t @ [ Printf.sprintf "via result of %s" g.T.f_name ])
                  (secret_at dom { fn = g; subst } (depth - 1)
                     (g.T.f_name :: vf) vp g.T.f_returns))
            gs
    end

(* Chase a parameter up the caller chain through its bindings. *)
and via_binds dom ctx depth vf vp p =
  let key = (ctx.fn.T.f_name, p) in
  if List.mem key vp then None
  else
    match Hashtbl.find_opt dom.d_memo key with
    | Some cached -> cached
    | None ->
      if depth = 0 then None
      else begin
        let r =
          List.find_map
            (fun b ->
              Option.map
                (fun t ->
                  t
                  @ [ Printf.sprintf "param %s of %s (call at %s:%d)" p
                        ctx.fn.T.f_name b.b_pos.T.file b.b_pos.T.line ])
                (secret_at dom (empty_ctx b.b_caller) (depth - 1) vf
                   (key :: vp) b.b_origins))
            (Option.value ~default:[] (Hashtbl.find_opt dom.d_binds key))
        in
        (* A positive answer is unconditional; a miss is cacheable only
           when nothing was pruned away under it (full depth, no
           guards), else it may just reflect the cap. *)
        if r <> None || (vf = [] && vp = [] && depth = depth_cap) then
          Hashtbl.replace dom.d_memo key r;
        r
      end

(* Normalise an origin to the record literals it can evaluate to, as
   (context, trace hops, fields) triples — the heart of cross-call
   field sensitivity.  Empty means "no record shape reachable". *)
and shapes dom ctx depth vf vp o :
    (ctx * string list * (string * T.origin list) list) list =
  if depth = 0 then []
  else
    match o with
    | T.Rec fields -> [ (ctx, [], fields) ]
    | T.Root _ -> []
    | T.Param p -> (
      match List.assoc_opt p ctx.subst with
      | Some (cctx, os) -> List.concat_map (shapes dom cctx (depth - 1) vf vp) os
      | None ->
        let key = (ctx.fn.T.f_name, p) in
        if List.mem key vp then []
        else
          List.concat_map
            (fun b ->
              let hop =
                Printf.sprintf "param %s of %s (call at %s:%d)" p
                  ctx.fn.T.f_name b.b_pos.T.file b.b_pos.T.line
              in
              List.map
                (fun (c, hops, fields) -> (c, hops @ [ hop ], fields))
                (List.concat_map
                   (shapes dom (empty_ctx b.b_caller) (depth - 1) vf
                      (key :: vp))
                   b.b_origins))
            (Option.value ~default:[] (Hashtbl.find_opt dom.d_binds key)))
    | T.Field (f, inner) ->
      List.concat_map
        (fun (c, hops, fields) ->
          match List.assoc_opt f fields with
          | None -> []
          | Some os ->
            List.map
              (fun (c2, h2, fl2) ->
                (c2, h2 @ (Printf.sprintf "field %s" f :: hops), fl2))
              (List.concat_map (shapes dom c (depth - 1) vf vp) os))
        (shapes dom ctx (depth - 1) vf vp inner)
    | T.Ret (path, args) ->
      if dom.d_declass path then []
      else (
        match Cg.resolve dom.d_cg ~caller_file:ctx.fn.T.f_file path with
        | [] -> []
        | gs ->
          List.concat_map
            (fun g ->
              if List.mem g.T.f_name vf then []
              else
                let matched =
                  Cg.match_args g.T.f_params
                    (List.map (fun (l, os) -> ((ctx, os), l)) args)
                in
                let subst = List.map (fun (p, v) -> (p.T.p_name, v)) matched in
                let hop = Printf.sprintf "via result of %s" g.T.f_name in
                List.map
                  (fun (c, hops, fields) -> (c, hops @ [ hop ], fields))
                  (List.concat_map
                     (shapes dom { fn = g; subst } (depth - 1)
                        (g.T.f_name :: vf) vp)
                     g.T.f_returns))
            gs)

let secret dom ctx origins = secret_at dom ctx depth_cap [] [] origins

let flow_domain (facts : T.file_facts list) cg =
  let roots =
    List.sort_uniq compare
      (List.concat_map (fun ff -> ff.T.ff_config.Lint_config.taint_roots) facts)
  in
  { d_cg = cg;
    d_roots = roots;
    d_declass = (fun _ -> false);
    d_binds = bindings cg;
    d_memo = Hashtbl.create 64 }

(* ~label chains: a sink whose label is a parameter is exempt only when
   every caller chain resolves it to an allow-listed literal (checked
   against the allowlist of the directory where the literal appears —
   that is where the surface is declared). *)
let label_exempt cg ~fn ~param =
  let rec chains fn param visited =
    if List.mem (fn.T.f_name, param) visited then `Exempt
    else begin
      let visited = (fn.T.f_name, param) :: visited in
      let found = ref false in
      let all_exempt = ref true in
      List.iter
        (fun h ->
          List.iter
            (fun call ->
              let callees = Cg.resolve cg ~caller_file:h.T.f_file call.T.c_callee in
              if List.exists (fun g -> g.T.f_name = fn.T.f_name) callees then
                let matched =
                  Cg.match_args fn.T.f_params
                    (List.map (fun a -> (a, a.T.ca_label)) call.T.c_args)
                in
                List.iter
                  (fun (p, (arg : T.call_arg)) ->
                    if p.T.p_name = param then begin
                      found := true;
                      match (arg.T.ca_literal, arg.T.ca_passthrough) with
                      | Some l, _ ->
                        let cfg = cg.Cg.config_of_file h.T.f_file in
                        if not (List.mem l cfg.Lint_config.allowed_labels) then
                          all_exempt := false
                      | None, Some q -> (
                        match chains h q visited with
                        | `Exempt -> ()
                        | `Not -> all_exempt := false)
                      | None, None -> all_exempt := false
                    end)
                  matched)
            h.T.f_calls)
        cg.Cg.funcs;
      if !found && !all_exempt then `Exempt else `Not
    end
  in
  chains fn param []

let run (facts : T.file_facts list) (cg : Cg.t) :
    (Lint_config.rule * T.pos * string) list =
  let dom = flow_domain facts cg in
  let out = ref [] in
  List.iter
    (fun f ->
      let cfg = cg.Cg.config_of_file f.T.f_file in
      if Lint_config.is_enabled cfg Lint_config.Secret_flow then
        List.iter
          (fun (s : T.sink) ->
            if not s.T.sk_local then
              match secret dom (empty_ctx f) s.T.sk_origins with
              | None -> ()
              | Some trace ->
                let exempt =
                  match s.T.sk_label with
                  | T.Label_literal l -> List.mem l cfg.Lint_config.allowed_labels
                  | T.Label_param p -> label_exempt cg ~fn:f ~param:p = `Exempt
                  | T.Label_opaque | T.Label_none -> false
                in
                if not exempt then begin
                  match
                    List.find_opt
                      (fun a -> a.T.al_rule = "secret-flow")
                      s.T.sk_allows
                  with
                  | Some site -> site.T.al_used <- true
                  | None ->
                    out :=
                      ( Lint_config.Secret_flow,
                        s.T.sk_pos,
                        Printf.sprintf
                          "interprocedural flow: %s -> sink %s in %s — route \
                           it through a Leakage.* declassifier or allow-label \
                           the admitted §5 observable"
                          (String.concat " -> " trace)
                          s.T.sk_callee f.T.f_name )
                      :: !out
                end)
          f.T.f_sinks)
    cg.Cg.funcs;
  List.rev !out
