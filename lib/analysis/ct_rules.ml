(* Phase 2, constant-time domain: Party B's secret-key TCB discipline.

   Reuses the flow engine's secrecy resolution with a narrower root set
   (key material only — [ct-root]) and its own declassification
   boundary ([ct-declassify]: decryption outputs are masked plaintexts,
   out of the key-material domain).  Events — secret-dependent
   branches, secret-indexed loads, variable-time integer ops — were
   collected in phase 1 for functions matched by [ct-scope]; here we
   decide which guarded values are actually key-derived once the
   whole-program parameter marks are known.

   Escape hatches must cite a rationale: [@sknn.allow "constant-time:
   <why>"].  A bare "constant-time" allow suppresses the event but is
   itself reported, so every exception to the discipline carries its
   justification in the source. *)

module T = Taint_summary
module F = Flow_rules

let ct_domain (facts : T.file_facts list) cg =
  let roots =
    List.sort_uniq compare
      (List.concat_map (fun ff -> ff.T.ff_config.Lint_config.ct_roots) facts)
  in
  let declass =
    List.sort_uniq compare
      (List.concat_map
         (fun ff -> ff.T.ff_config.Lint_config.ct_declassifiers)
         facts)
  in
  { F.d_cg = cg;
    d_roots = roots;
    d_declass = (fun path -> T.declassified ~prefixes:declass path);
    d_binds = F.bindings cg;
    d_memo = Hashtbl.create 64 }

let describe = function
  | T.Ct_branch c ->
    Printf.sprintf
      "secret-dependent %s in the constant-time TCB: the condition derives \
       from key material — use branchless arithmetic (masks, land/asr \
       selects)"
      c
  | T.Ct_index ->
    "secret-indexed array access in the constant-time TCB: the load address \
     derives from key material — access every element or use an oblivious \
     select"
  | T.Ct_vartime op ->
    Printf.sprintf
      "variable-time op %s on a key-derived value in the constant-time TCB \
       — division, remainder and polymorphic compare have data-dependent \
       latency"
      op

let run (facts : T.file_facts list) (cg : Call_graph.t) :
    (Lint_config.rule * T.pos * string) list =
  let dom = ct_domain facts cg in
  let out = ref [] in
  List.iter
    (fun f ->
      let cfg = cg.Call_graph.config_of_file f.T.f_file in
      if Lint_config.is_enabled cfg Lint_config.Constant_time then
        List.iter
          (fun (ev : T.ct_event) ->
            match F.secret dom (F.empty_ctx f) ev.T.ct_origins with
            | None -> ()
            | Some trace -> (
              match
                List.find_opt
                  (fun a -> a.T.al_rule = "constant-time")
                  ev.T.ct_allows
              with
              | Some site ->
                site.T.al_used <- true;
                if site.T.al_rationale = None then
                  out :=
                    ( Lint_config.Constant_time,
                      site.T.al_pos,
                      "constant-time escape hatch must cite a rationale: \
                       [@sknn.allow \"constant-time: <why this site is safe>\"]"
                    )
                    :: !out
              | None ->
                out :=
                  ( Lint_config.Constant_time,
                    ev.T.ct_pos,
                    Printf.sprintf "%s (%s; in %s)" (describe ev.T.ct_kind)
                      (String.concat " -> " trace)
                      f.T.f_name )
                  :: !out))
          f.T.f_ct_events)
    cg.Call_graph.funcs;
  List.rev !out
