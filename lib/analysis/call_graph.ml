(* Whole-program function index for phase 2.

   Callee resolution is name-based (the linter has no type information)
   and deliberately conservative: a dotted call path matches a function
   whose qualified name ends with it (call [Party_b.create] from
   outside entities.ml matches [Entities.Party_b.create]) or is a
   suffix of it (call [Util.Topk.smallest] matches [Topk.smallest] — the
   [Util] head is the wrapping library, not a file module).  A bare
   single-component call only resolves within the calling file, where
   it cannot cross a module boundary silently.  All matches are kept;
   the fixpoints union over them. *)

module T = Taint_summary

type t = {
  funcs : T.func list;              (* sorted by (file, pos): determinism *)
  by_name : (string, T.func list) Hashtbl.t;
  by_last : (string, T.func list) Hashtbl.t;
  config_of_file : string -> Lint_config.t;
}

let build (facts : T.file_facts list) =
  let funcs =
    List.concat_map (fun ff -> ff.T.ff_funcs) facts
    |> List.sort (fun a b ->
         let c = T.compare_pos a.T.f_pos b.T.f_pos in
         if c <> 0 then c else compare a.T.f_name b.T.f_name)
  in
  let by_name = Hashtbl.create 64 and by_last = Hashtbl.create 64 in
  let add tbl k f =
    Hashtbl.replace tbl k (f :: (try Hashtbl.find tbl k with Not_found -> []))
  in
  List.iter
    (fun f ->
      add by_name f.T.f_name f;
      match List.rev (T.split_path f.T.f_name) with
      | last :: _ -> add by_last last f
      | [] -> ())
    (List.rev funcs);
  let configs = Hashtbl.create 16 in
  List.iter (fun ff -> Hashtbl.replace configs ff.T.ff_file ff.T.ff_config) facts;
  { funcs;
    by_name;
    by_last;
    config_of_file =
      (fun file ->
        try Hashtbl.find configs file with Not_found -> Lint_config.base) }

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l > ls && String.sub s (l - ls - 1) (ls + 1) = "." ^ suffix

(* All functions a call to [path] (alias-expanded, as written) from
   [caller_file] may reach. *)
let resolve t ~caller_file path =
  match T.split_path path with
  | [] -> []
  | [ single ] ->
    List.filter
      (fun f -> f.T.f_file = caller_file)
      (try Hashtbl.find t.by_last single with Not_found -> [])
  | comps ->
    let last = List.nth comps (List.length comps - 1) in
    let candidates = try Hashtbl.find t.by_last last with Not_found -> [] in
    List.filter
      (fun f ->
        f.T.f_name = path
        || ends_with ~suffix:path f.T.f_name
        || ends_with ~suffix:f.T.f_name path)
      candidates

(* Match call arguments against a callee's parameters: labelled args by
   label, positional args in order against label-less params.  Returns
   (param, arg) pairs for the args that found a home. *)
let match_args (params : T.param list) (args : ('a * string option) list) =
  let positional_params =
    List.filter (fun p -> p.T.p_label = None) params
  in
  let matched = ref [] in
  let pos_idx = ref 0 in
  List.iter
    (fun (arg, lbl) ->
      match lbl with
      | Some l -> (
        match List.find_opt (fun p -> p.T.p_label = Some l) params with
        | Some p -> matched := (p, arg) :: !matched
        | None -> ())
      | None ->
        (match List.nth_opt positional_params !pos_idx with
         | Some p -> matched := (p, arg) :: !matched
         | None -> ());
        incr pos_idx)
    args;
  List.rev !matched
