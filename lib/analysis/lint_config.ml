(* Configuration for the sknn-lint invariant rules.

   Rules are enabled per directory: a built-in base profile (the checks
   that are sound everywhere) refined by an optional [sknn-lint.conf]
   file in the linted directory.  The file is line-oriented:

     # comment
     enable no-division
     disable into-aliasing
     allow-label masked-distance-multiset
     taint-root s_powers
     declassify Leakage.
     obs-module Otrace
     check-poly-compare
     check-wall-clock

   Every knob is additive and order-independent, so configuration stays
   reviewable next to the code it governs.  The escape hatch for single
   sites is the [@sknn.allow "<rule>"] attribute, handled by the rule
   walkers themselves (see {!Lint_rules}). *)

type rule =
  | No_division
  | Secret_taint
  | Orchestrator_only_obs
  | No_ambient_nondeterminism
  | Into_aliasing
  | Ledger_at_op_site

let all_rules =
  [ No_division;
    Secret_taint;
    Orchestrator_only_obs;
    No_ambient_nondeterminism;
    Into_aliasing;
    Ledger_at_op_site ]

let rule_name = function
  | No_division -> "no-division"
  | Secret_taint -> "secret-taint"
  | Orchestrator_only_obs -> "orchestrator-only-obs"
  | No_ambient_nondeterminism -> "no-ambient-nondeterminism"
  | Into_aliasing -> "into-aliasing"
  | Ledger_at_op_site -> "ledger-at-op-site"

let rule_of_name = function
  | "no-division" -> Some No_division
  | "secret-taint" -> Some Secret_taint
  | "orchestrator-only-obs" -> Some Orchestrator_only_obs
  | "no-ambient-nondeterminism" -> Some No_ambient_nondeterminism
  | "into-aliasing" -> Some Into_aliasing
  | "ledger-at-op-site" -> Some Ledger_at_op_site
  | _ -> None

type t = {
  enabled : rule list;
  (* secret-taint: identifier and record-field names that carry secret
     material (BGV secret key, decrypted distances, Perm, masking
     coefficients). *)
  taint_roots : string list;
  (* secret-taint: sink calls whose ~label is a string literal in this
     set are the admitted §5 leakage surface — kept in lockstep with
     test_core's audit assertion. *)
  allowed_labels : string list;
  (* secret-taint: module prefixes whose results are considered
     declassified (e.g. "Leakage." — the §5 extraction functions). *)
  declassifiers : string list;
  (* orchestrator-only-obs: module heads whose calls are observability
     and must stay out of pool chunk closures. *)
  obs_modules : string list;
  (* no-ambient-nondeterminism: also flag polymorphic compare /
     Hashtbl.hash (ciphertext-bearing directories only). *)
  check_poly_compare : bool;
  (* no-ambient-nondeterminism: also flag Util.Timer reads — even the
     sanctioned wall-clock wrapper is banned where every timestamp must
     be a pure function of recorded data (lib/netsim's virtual clock). *)
  check_wall_clock : bool;
}

let base =
  { enabled = [ Orchestrator_only_obs; No_ambient_nondeterminism; Into_aliasing ];
    taint_roots =
      [ "sk"; "secret_key"; "s_coeffs"; "s_powers"; "perm"; "mask"; "masked";
        "masked_distances"; "view" ];
    allowed_labels = [];
    declassifiers = [ "Leakage." ];
    obs_modules =
      [ "Obs"; "Ctx"; "Trace"; "Otrace"; "Flight"; "Metrics"; "Audit"; "Sknn_obs" ];
    check_poly_compare = false;
    check_wall_clock = false }

let enable r t = if List.mem r t.enabled then t else { t with enabled = r :: t.enabled }
let disable r t = { t with enabled = List.filter (fun r' -> r' <> r) t.enabled }
let is_enabled t r = List.mem r t.enabled

exception Bad_config of string

let apply_line t line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if line = "" then t
  else
    let directive, arg =
      match String.index_opt line ' ' with
      | None -> (line, "")
      | Some i ->
        ( String.sub line 0 i,
          String.trim (String.sub line i (String.length line - i)) )
    in
    let rule_arg () =
      match rule_of_name arg with
      | Some r -> r
      | None -> raise (Bad_config (Printf.sprintf "unknown rule %S" arg))
    in
    let need_arg () =
      if arg = "" then
        raise (Bad_config (Printf.sprintf "%s needs an argument" directive))
    in
    match directive with
    | "enable" -> enable (rule_arg ()) t
    | "disable" -> disable (rule_arg ()) t
    | "taint-root" -> need_arg (); { t with taint_roots = arg :: t.taint_roots }
    | "allow-label" -> need_arg (); { t with allowed_labels = arg :: t.allowed_labels }
    | "declassify" -> need_arg (); { t with declassifiers = arg :: t.declassifiers }
    | "obs-module" -> need_arg (); { t with obs_modules = arg :: t.obs_modules }
    | "check-poly-compare" -> { t with check_poly_compare = true }
    | "check-wall-clock" -> { t with check_wall_clock = true }
    | d -> raise (Bad_config (Printf.sprintf "unknown directive %S" d))

let of_lines ?(base = base) lines = List.fold_left apply_line base lines

let config_file_name = "sknn-lint.conf"

(* The directory's configuration: [base] refined by [sknn-lint.conf]
   when present.  Raises [Bad_config] on malformed directives so a typo
   fails the lint run instead of silently disabling a rule. *)
let for_dir dir =
  let path = Filename.concat dir config_file_name in
  if not (Sys.file_exists path) then base
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> close_in ic);
    try of_lines (List.rev !lines)
    with Bad_config msg -> raise (Bad_config (Printf.sprintf "%s: %s" path msg))
  end
