(* Configuration for the sknn-lint invariant rules.

   Rules are enabled per directory: a built-in base profile (the checks
   that are sound everywhere) refined by an optional [sknn-lint.conf]
   file in the linted directory.  The file is line-oriented:

     # comment
     enable no-division
     disable into-aliasing
     allow-label masked-distance-multiset
     taint-root s_powers
     declassify Leakage.
     obs-module Otrace
     check-poly-compare
     check-wall-clock
     ct-scope Party_b
     ct-root s_coeffs
     ct-declassify Bgv.decrypt

   Every knob is additive and order-independent, so configuration stays
   reviewable next to the code it governs.  Unknown directives, unknown
   rule names and missing arguments are hard errors carrying the
   file:line of the offending directive — a typo must fail the lint
   run, never silently disable a rule.  The escape hatch for single
   sites is the [@sknn.allow "<rule>"] attribute, handled by the rule
   walkers themselves (see {!Lint_rules}). *)

type rule =
  | No_division
  | Secret_taint
  | Orchestrator_only_obs
  | No_ambient_nondeterminism
  | Into_aliasing
  | Ledger_at_op_site
  | Secret_flow
  | Constant_time
  | Unused_allow

let all_rules =
  [ No_division;
    Secret_taint;
    Orchestrator_only_obs;
    No_ambient_nondeterminism;
    Into_aliasing;
    Ledger_at_op_site;
    Secret_flow;
    Constant_time;
    Unused_allow ]

let rule_name = function
  | No_division -> "no-division"
  | Secret_taint -> "secret-taint"
  | Orchestrator_only_obs -> "orchestrator-only-obs"
  | No_ambient_nondeterminism -> "no-ambient-nondeterminism"
  | Into_aliasing -> "into-aliasing"
  | Ledger_at_op_site -> "ledger-at-op-site"
  | Secret_flow -> "secret-flow"
  | Constant_time -> "constant-time"
  | Unused_allow -> "unused-allow"

let rule_of_name n = List.find_opt (fun r -> rule_name r = n) all_rules

let valid_rule_names () = String.concat ", " (List.map rule_name all_rules)

type t = {
  enabled : rule list;
  (* secret-taint / secret-flow: identifier and record-field names that
     carry secret material (BGV secret key, decrypted distances, Perm,
     masking coefficients). *)
  taint_roots : string list;
  (* secret-taint / secret-flow: sink calls whose ~label is a string
     literal in this set are the admitted §5 leakage surface — kept in
     lockstep with test_core's audit assertion. *)
  allowed_labels : string list;
  (* secret-taint / secret-flow: function prefixes whose results are
     considered declassified.  Two kinds of entry: reviewed §5
     extraction surfaces (e.g. "Leakage.") and reviewed provenance
     boundaries (e.g. "Bgv.keygen": the interprocedural engine stops
     tracking provenance through the call and re-classifies the result
     by field name — the sk/s_coeffs/s_powers taint roots). *)
  declassifiers : string list;
  (* orchestrator-only-obs: module heads whose calls are observability
     and must stay out of pool chunk closures. *)
  obs_modules : string list;
  (* no-ambient-nondeterminism: also flag polymorphic compare /
     Hashtbl.hash (ciphertext-bearing directories only). *)
  check_poly_compare : bool;
  (* no-ambient-nondeterminism: also flag Util.Timer reads — even the
     sanctioned wall-clock wrapper is banned where every timestamp must
     be a pure function of recorded data (lib/netsim's virtual clock). *)
  check_wall_clock : bool;
  (* constant-time: identifier and field names that carry secret-KEY
     material.  Deliberately narrower than [taint_roots]: Party B may
     branch on masked plaintexts (that multiset is the declared §5
     surface), never on key material. *)
  ct_roots : string list;
  (* constant-time: dotted paths selecting the functions inside the
     secret-key TCB.  A scope matches a function whose fully qualified
     name (File_module.Submodule.fn) contains the scope's components as
     a contiguous run — "Party_b" covers every function of that module,
     "Bgv.decrypt" exactly that function.  Empty = rule inert. *)
  ct_scopes : string list;
  (* constant-time: calls whose results leave the key-material domain —
     decryption outputs are masked plaintexts, governed by secret-flow
     and the masking argument rather than the CT discipline. *)
  ct_declassifiers : string list;
}

let base =
  { enabled =
      [ Orchestrator_only_obs; No_ambient_nondeterminism; Into_aliasing;
        Unused_allow ];
    taint_roots =
      [ "sk"; "secret_key"; "s_coeffs"; "s_powers"; "perm"; "mask"; "masked";
        "masked_distances"; "view" ];
    allowed_labels = [];
    declassifiers = [ "Leakage." ];
    obs_modules =
      [ "Obs"; "Ctx"; "Trace"; "Otrace"; "Flight"; "Metrics"; "Audit"; "Sknn_obs" ];
    check_poly_compare = false;
    check_wall_clock = false;
    ct_roots = [ "sk"; "secret_key"; "s_coeffs"; "s_powers" ];
    ct_scopes = [];
    ct_declassifiers = [ "Bgv.decrypt"; "Bgv.decrypt_coeff0" ] }

let enable r t = if List.mem r t.enabled then t else { t with enabled = r :: t.enabled }
let disable r t = { t with enabled = List.filter (fun r' -> r' <> r) t.enabled }
let is_enabled t r = List.mem r t.enabled

exception Bad_config of string

let apply_line t ~lnum line =
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Bad_config (Printf.sprintf "line %d: %s" lnum m))) fmt
  in
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if line = "" then t
  else
    let directive, arg =
      match String.index_opt line ' ' with
      | None -> (line, "")
      | Some i ->
        ( String.sub line 0 i,
          String.trim (String.sub line i (String.length line - i)) )
    in
    let rule_arg () =
      match rule_of_name arg with
      | Some r -> r
      | None -> fail "unknown rule %S (valid rules: %s)" arg (valid_rule_names ())
    in
    let need_arg () =
      if arg = "" then fail "%s needs an argument" directive
    in
    match directive with
    | "enable" -> enable (rule_arg ()) t
    | "disable" -> disable (rule_arg ()) t
    | "taint-root" -> need_arg (); { t with taint_roots = arg :: t.taint_roots }
    | "allow-label" -> need_arg (); { t with allowed_labels = arg :: t.allowed_labels }
    | "declassify" -> need_arg (); { t with declassifiers = arg :: t.declassifiers }
    | "obs-module" -> need_arg (); { t with obs_modules = arg :: t.obs_modules }
    | "check-poly-compare" -> { t with check_poly_compare = true }
    | "check-wall-clock" -> { t with check_wall_clock = true }
    | "ct-root" -> need_arg (); { t with ct_roots = arg :: t.ct_roots }
    | "ct-scope" -> need_arg (); { t with ct_scopes = arg :: t.ct_scopes }
    | "ct-declassify" -> need_arg (); { t with ct_declassifiers = arg :: t.ct_declassifiers }
    | d ->
      fail
        "unknown directive %S (directives: enable, disable, taint-root, \
         allow-label, declassify, obs-module, check-poly-compare, \
         check-wall-clock, ct-root, ct-scope, ct-declassify)"
        d

let of_lines ?(base = base) lines =
  let _, t =
    List.fold_left
      (fun (lnum, t) line -> (lnum + 1, apply_line t ~lnum line))
      (1, base) lines
  in
  t

let config_file_name = "sknn-lint.conf"

(* The directory's configuration: [base] refined by [sknn-lint.conf]
   when present.  Raises [Bad_config] with file:line on malformed
   directives so a typo fails the lint run instead of silently
   disabling a rule. *)
let for_dir dir =
  let path = Filename.concat dir config_file_name in
  if not (Sys.file_exists path) then base
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> close_in ic);
    try of_lines (List.rev !lines)
    with Bad_config msg -> raise (Bad_config (Printf.sprintf "%s:%s" path msg))
  end
