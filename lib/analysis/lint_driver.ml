(* Two-phase driver for sknn-lint.

   Phase 1 parses every .ml with ppxlib's pinned-AST parser (so the
   linter behaves identically on every host compiler), resolves the
   per-directory configuration and runs the syntactic pass, which also
   collects per-function taint summaries.  Phase 2 builds the
   whole-program call graph over those summaries and runs the
   interprocedural rules (secret-flow, constant-time) plus the
   unused-allow sweep.

   All listings are sorted and phase-1 results are merged in file
   order regardless of [--jobs], so the output is byte-stable across
   runs and machines — test_lint asserts this.  Parsing is serialised
   under a mutex (the compiler lexer keeps global state); the AST walk,
   which dominates, runs in parallel. *)

type outcome = {
  files : int;
  diagnostics : Lint_rules.diagnostic list;
  errors : string list; (* unparsable files: reported and counted as failures *)
}

let empty = { files = 0; diagnostics = []; errors = [] }

let merge a b =
  { files = a.files + b.files;
    diagnostics = a.diagnostics @ b.diagnostics;
    errors = a.errors @ b.errors }

let parse_mutex = Mutex.create ()

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      Mutex.lock parse_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock parse_mutex)
        (fun () ->
          let lexbuf = Lexing.from_channel ic in
          Lexing.set_filename lexbuf path;
          Ppxlib.Parse.implementation lexbuf))

(* Phase 1 for one file.  [run_file] below is the public single-file
   entry point and deliberately stops here: the interprocedural rules
   only make sense over a whole tree. *)
let collect_file ~config path =
  match parse_file path with
  | str ->
    let diags, facts = Lint_rules.run ~config ~file:path str in
    ({ files = 1; diagnostics = diags; errors = [] }, Some facts)
  | exception exn ->
    let msg =
      match Location.error_of_exn exn with
      | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
      | _ -> Printexc.to_string exn
    in
    ( { files = 1;
        diagnostics = [];
        errors = [ Printf.sprintf "%s: parse error: %s" path (String.trim msg) ] },
      None )

let run_file ~config path = fst (collect_file ~config path)

let is_ml path = Filename.check_suffix path ".ml"

let rec subdirs_of dir =
  let entries = Sys.readdir dir in
  Array.sort compare entries;
  dir
  :: Array.fold_left
       (fun acc name ->
         let path = Filename.concat dir name in
         if Sys.is_directory path && name <> "_build" && name.[0] <> '.' then
           acc @ subdirs_of path
         else acc)
       [] entries

(* The (file, config) work list for a path, in deterministic order.
   Resolving configs eagerly here means a malformed sknn-lint.conf
   fails the whole run up front. *)
let work_of_path path =
  if Sys.is_directory path then
    List.concat_map
      (fun dir ->
        let config = Lint_config.for_dir dir in
        let entries = Sys.readdir dir in
        Array.sort compare entries;
        Array.to_list entries
        |> List.filter_map (fun name ->
             let p = Filename.concat dir name in
             if (not (Sys.is_directory p)) && is_ml name then Some (p, config)
             else None))
      (subdirs_of path)
  else [ (path, Lint_config.for_dir (Filename.dirname path)) ]

let map_jobs ~jobs f work =
  let work = Array.of_list work in
  let n = Array.length work in
  if jobs <= 1 || n <= 1 then Array.to_list (Array.map f work)
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f work.(i));
          go ()
        end
      in
      go ()
    in
    let doms = List.init (min jobs n) (fun _ -> Domain.spawn worker) in
    List.iter Domain.join doms;
    Array.to_list (Array.map Option.get results)
  end

let diag_of (rule, (pos : Taint_summary.pos), message) =
  { Lint_rules.rule; file = pos.file; line = pos.line; col = pos.col; message }

(* unused-allow: every [@sknn.allow] must have suppressed at least one
   diagnostic across both phases. *)
let unused_allow_sweep (facts : Taint_summary.file_facts list) =
  List.concat_map
    (fun ff ->
      if not (Lint_config.is_enabled ff.Taint_summary.ff_config Lint_config.Unused_allow)
      then []
      else
        List.filter_map
          (fun (a : Taint_summary.allow_site) ->
            if a.al_used then None
            else
              let extra =
                match Lint_config.rule_of_name a.al_rule with
                | Some _ -> ""
                | None ->
                  Printf.sprintf " (unknown rule; valid rules: %s)"
                    (Lint_config.valid_rule_names ())
              in
              Some
                (diag_of
                   ( Lint_config.Unused_allow,
                     a.al_pos,
                     Printf.sprintf
                       "[@sknn.allow %S] suppresses no diagnostics%s — delete \
                        the stale escape hatch"
                       a.al_rule extra )))
          ff.Taint_summary.ff_allows)
    facts

let run_paths ?(jobs = 1) paths =
  let work = List.concat_map work_of_path paths in
  let results = map_jobs ~jobs (fun (p, config) -> collect_file ~config p) work in
  let outcome = List.fold_left (fun acc (o, _) -> merge acc o) empty results in
  let facts = List.filter_map snd results in
  let cg = Call_graph.build facts in
  let interproc =
    List.map diag_of (Flow_rules.run facts cg @ Ct_rules.run facts cg)
  in
  let unused = unused_allow_sweep facts in
  { outcome with diagnostics = outcome.diagnostics @ interproc @ unused }

let run_path ?jobs path = run_paths ?jobs [ path ]

let sorted_diagnostics o = List.sort Lint_rules.compare_diagnostic o.diagnostics

let pp_outcome ppf o =
  List.iter (fun e -> Format.fprintf ppf "%s@." e) (List.sort compare o.errors);
  List.iter
    (fun d -> Format.fprintf ppf "%a@." Lint_rules.pp_diagnostic d)
    (sorted_diagnostics o);
  Format.fprintf ppf "sknn-lint: %d file%s, %d diagnostic%s%s@." o.files
    (if o.files = 1 then "" else "s")
    (List.length o.diagnostics)
    (if List.length o.diagnostics = 1 then "" else "s")
    (match o.errors with
     | [] -> ""
     | es -> Printf.sprintf ", %d parse error(s)" (List.length es))

let sarif o = Sarif.render (sorted_diagnostics o)

let ok o = o.diagnostics = [] && o.errors = []
