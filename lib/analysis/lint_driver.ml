(* File and directory driver for sknn-lint: parse every .ml with
   ppxlib's pinned-AST parser (so the linter behaves identically on
   every host compiler), resolve the per-directory configuration and
   run the invariant pass.  All listings are sorted, so the output is
   byte-stable across runs and machines — test_lint asserts this. *)

type outcome = {
  files : int;
  diagnostics : Lint_rules.diagnostic list;
  errors : string list; (* unparsable files: reported and counted as failures *)
}

let empty = { files = 0; diagnostics = []; errors = [] }

let merge a b =
  { files = a.files + b.files;
    diagnostics = a.diagnostics @ b.diagnostics;
    errors = a.errors @ b.errors }

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      Ppxlib.Parse.implementation lexbuf)

let run_file ~config path =
  match parse_file path with
  | str ->
    { files = 1;
      diagnostics = Lint_rules.run_structure ~config ~file:path str;
      errors = [] }
  | exception exn ->
    let msg =
      match Location.error_of_exn exn with
      | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
      | _ -> Printexc.to_string exn
    in
    { files = 1;
      diagnostics = [];
      errors = [ Printf.sprintf "%s: parse error: %s" path (String.trim msg) ] }

let is_ml path = Filename.check_suffix path ".ml"

(* One directory, non-recursive: its own sknn-lint.conf (or the base
   profile) governs every .ml directly inside it. *)
let run_dir dir =
  let config = Lint_config.for_dir dir in
  let entries = Sys.readdir dir in
  Array.sort compare entries;
  Array.fold_left
    (fun acc name ->
      let path = Filename.concat dir name in
      if (not (Sys.is_directory path)) && is_ml name then
        merge acc (run_file ~config path)
      else acc)
    empty entries

let rec subdirs_of dir =
  let entries = Sys.readdir dir in
  Array.sort compare entries;
  dir
  :: Array.fold_left
       (fun acc name ->
         let path = Filename.concat dir name in
         if Sys.is_directory path && name <> "_build" && name.[0] <> '.' then
           acc @ subdirs_of path
         else acc)
       [] entries

let run_path path =
  if Sys.is_directory path then
    List.fold_left (fun acc d -> merge acc (run_dir d)) empty (subdirs_of path)
  else run_file ~config:(Lint_config.for_dir (Filename.dirname path)) path

let run_paths paths = List.fold_left (fun acc p -> merge acc (run_path p)) empty paths

let pp_outcome ppf o =
  List.iter (fun e -> Format.fprintf ppf "%s@." e) (List.sort compare o.errors);
  List.iter
    (fun d -> Format.fprintf ppf "%a@." Lint_rules.pp_diagnostic d)
    (List.sort Lint_rules.compare_diagnostic o.diagnostics);
  Format.fprintf ppf "sknn-lint: %d file%s, %d diagnostic%s%s@." o.files
    (if o.files = 1 then "" else "s")
    (List.length o.diagnostics)
    (if List.length o.diagnostics = 1 then "" else "s")
    (match o.errors with
     | [] -> ""
     | es -> Printf.sprintf ", %d parse error(s)" (List.length es))

let ok o = o.diagnostics = [] && o.errors = []
