(* Pure replay of a transcript into virtual network time.

   The clock never reads a wall clock: every timestamp is derived from
   the transcript's message order and the profile's two constants, in a
   single deterministic fold.  Model per message:

     departure = max(receiver-side causality of the sender, channel free)
     serialization = bytes / bandwidth        (occupies the directed channel)
     arrival = departure + serialization + RTT/2

   A party cannot send before it has received every message addressed to
   it earlier in the transcript (the protocol is a sequential exchange),
   and each directed channel is FIFO: a message cannot start serializing
   before the previous one in the same direction finished. *)

let idx = function
  | Transcript.Data_owner -> 0
  | Transcript.Party_a -> 1
  | Transcript.Party_b -> 2
  | Transcript.Client -> 3

type cursor = {
  prof : Profile.t;
  avail : float array;  (* per party: time all earlier inbound traffic arrived *)
  chan : float array;  (* per directed pair: time the channel frees up *)
  mutable elapsed : float;
}

let cursor prof = { prof; avail = Array.make 4 0.0; chan = Array.make 16 0.0; elapsed = 0.0 }

let step c ~sender ~receiver ~bytes =
  let i = idx sender and j = idx receiver in
  let departure = Float.max c.avail.(i) c.chan.((i * 4) + j) in
  let ser = Profile.serialize_s c.prof bytes in
  c.chan.((i * 4) + j) <- departure +. ser;
  let arrival = departure +. ser +. Profile.one_way_s c.prof in
  c.avail.(j) <- Float.max c.avail.(j) arrival;
  c.elapsed <- Float.max c.elapsed arrival;
  (departure, arrival)

let elapsed_s c = c.elapsed

type message = {
  entry : Transcript.entry;
  departure_s : float;
  arrival_s : float;
}

type link = {
  link_a : Transcript.party;
  link_b : Transcript.party;
  link_messages : int;
  link_bytes : int;
  link_rounds : int;
  busy_s : float;
  idle_s : float;
  first_departure_s : float;
  last_arrival_s : float;
  round_latency_s : float array;
}

type timeline = {
  profile : Profile.t;
  messages : message list;
  links : link list;
  end_to_end_s : float;
}

let on_link a b (e : Transcript.entry) =
  (e.Transcript.sender = a && e.Transcript.receiver = b)
  || (e.Transcript.sender = b && e.Transcript.receiver = a)

(* Group a link's messages into rounds with the same run-pair rule
   [Transcript.rounds] counts, keeping each round's time envelope. *)
let round_latencies msgs =
  let runs = ref 0 and run_sender = ref None in
  let groups = ref [] in
  List.iter
    (fun m ->
      let s = m.entry.Transcript.sender in
      (match !run_sender with
      | Some p when p = s -> ()
      | _ ->
        incr runs;
        run_sender := Some s);
      let round = (!runs - 1) / 2 in
      match !groups with
      | (r, d, a) :: rest when r = round ->
        groups := (r, Float.min d m.departure_s, Float.max a m.arrival_s) :: rest
      | _ -> groups := (round, m.departure_s, m.arrival_s) :: !groups)
    msgs;
  List.rev_map (fun (_, d, a) -> a -. d) !groups |> Array.of_list

let replay prof t =
  let c = cursor prof in
  let messages =
    List.map
      (fun (e : Transcript.entry) ->
        let departure_s, arrival_s =
          step c ~sender:e.Transcript.sender ~receiver:e.Transcript.receiver
            ~bytes:e.Transcript.bytes
        in
        { entry = e; departure_s; arrival_s })
      (Transcript.entries t)
  in
  let links =
    List.map
      (fun ((a, b), link_bytes) ->
        let ms = List.filter (fun m -> on_link a b m.entry) messages in
        let busy_s =
          List.fold_left
            (fun acc m -> acc +. Profile.serialize_s prof m.entry.Transcript.bytes)
            0.0 ms
        in
        let first_departure_s =
          List.fold_left (fun acc m -> Float.min acc m.departure_s) infinity ms
        in
        let last_arrival_s =
          List.fold_left (fun acc m -> Float.max acc m.arrival_s) 0.0 ms
        in
        let idle_s = Float.max 0.0 (last_arrival_s -. first_departure_s -. busy_s) in
        { link_a = a;
          link_b = b;
          link_messages = List.length ms;
          link_bytes;
          link_rounds = Transcript.rounds t a b;
          busy_s;
          idle_s;
          first_departure_s;
          last_arrival_s;
          round_latency_s = round_latencies ms })
      (Transcript.links t)
  in
  let end_to_end_s =
    List.fold_left (fun acc m -> Float.max acc m.arrival_s) 0.0 messages
  in
  { profile = prof; messages; links; end_to_end_s }

(* Nearest-rank quantile over a copy; 0 on an empty array. *)
let quantile xs p =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))
  end

let link_name l =
  Transcript.party_name l.link_a ^ "<->" ^ Transcript.party_name l.link_b

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Chrome trace-event JSON for the wire: one thread lane per link, one
   "X" slice per message spanning departure..arrival in virtual time.
   [pid] defaults to 2 so the lanes sit beside (not inside) the compute
   process the span-tree sink emits as pid 1. *)
let write_chrome ?(pid = 2) tl oc =
  let first = ref true in
  let emit line =
    if not !first then output_string oc ",\n";
    first := false;
    output_string oc line
  in
  output_string oc "{\"traceEvents\":[\n";
  emit
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"virtual network (%s)\"}}"
       pid
       (json_escape (Profile.to_string tl.profile)));
  List.iteri
    (fun i l ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"wire %s\"}}"
           pid (i + 1)
           (json_escape (link_name l))))
    tl.links;
  let tid_of_entry (e : Transcript.entry) =
    let rec find i = function
      | [] -> 0
      | l :: rest ->
        if on_link l.link_a l.link_b e then i else find (i + 1) rest
    in
    find 1 tl.links
  in
  List.iter
    (fun m ->
      let e = m.entry in
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"wire\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"seq\":%d,\"from\":\"%s\",\"to\":\"%s\",\"bytes\":%d}}"
           (json_escape e.Transcript.label)
           (m.departure_s *. 1e6)
           ((m.arrival_s -. m.departure_s) *. 1e6)
           pid (tid_of_entry e) e.Transcript.seq
           (Transcript.party_name e.Transcript.sender)
           (Transcript.party_name e.Transcript.receiver)
           e.Transcript.bytes))
    tl.messages;
  output_string oc "\n]}\n"

let pp ppf tl =
  Format.fprintf ppf "@[<v>profile: %a@ " Profile.pp tl.profile;
  List.iter
    (fun l ->
      Format.fprintf ppf
        "%s: %d msgs, %d B, %d rounds, busy %.6f s, idle %.6f s@ " (link_name l)
        l.link_messages l.link_bytes l.link_rounds l.busy_s l.idle_s)
    tl.links;
  Format.fprintf ppf "end-to-end: %.6f s@]" tl.end_to_end_s
