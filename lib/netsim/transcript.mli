(** Communication transcript between simulated parties.

    The paper's four machines (data owner, Party A, Party B, client)
    become in-process values here; every protocol message is recorded
    with its byte size so the harness can *measure* the communication
    rows of Table 1 (rounds, bytes per round) instead of quoting the
    asymptotic formulas. *)

type party = Data_owner | Party_a | Party_b | Client

val party_name : party -> string

type entry = {
  seq : int;
  sender : party;
  receiver : party;
  label : string;
  bytes : int;
}

type t

val create : unit -> t
val send : t -> sender:party -> receiver:party -> label:string -> bytes:int -> unit
val entries : t -> entry list
(** In send order. *)

val messages : t -> int
val total_bytes : t -> int
val bytes_between : t -> party -> party -> int
(** Bytes over the (unordered) link between two parties. *)

val links : t -> ((party * party) * int) list
(** Aggregated byte totals for every link that carried traffic, keyed by
    the unordered party pair (parties in declaration order) and sorted
    canonically — the per-link view the observability layer exports as
    gauges and the bench JSON records per run. *)

val rounds : t -> party -> party -> int
(** Communication rounds on a link, counted as the paper does: a round is
    a maximal run of messages in one direction followed by the reply run
    (so A→B then B→A is one round; A→B, B→A, A→B, B→A is two). *)

val pp : Format.formatter -> t -> unit
(** Aligned per-message rows (column widths sized to the content), then
    one [link a <-> b: bytes, rounds] summary per link, then the totals
    line. *)
