type party = Data_owner | Party_a | Party_b | Client

let party_name = function
  | Data_owner -> "data-owner"
  | Party_a -> "party-A"
  | Party_b -> "party-B"
  | Client -> "client"

type entry = {
  seq : int;
  sender : party;
  receiver : party;
  label : string;
  bytes : int;
}

type t = { mutable rev_entries : entry list; mutable next : int }

let create () = { rev_entries = []; next = 0 }

let send t ~sender ~receiver ~label ~bytes =
  if bytes < 0 then invalid_arg "Transcript.send: negative size";
  if sender = receiver then invalid_arg "Transcript.send: sender = receiver";
  t.rev_entries <- { seq = t.next; sender; receiver; label; bytes } :: t.rev_entries;
  t.next <- t.next + 1

let entries t = List.rev t.rev_entries

let messages t = t.next

let total_bytes t = List.fold_left (fun acc e -> acc + e.bytes) 0 t.rev_entries

let on_link a b e =
  (e.sender = a && e.receiver = b) || (e.sender = b && e.receiver = a)

let bytes_between t a b =
  List.fold_left (fun acc e -> if on_link a b e then acc + e.bytes else acc) 0 t.rev_entries

let links t =
  (* Canonical undirected link key: parties in declaration order. *)
  let key e = if e.sender < e.receiver then (e.sender, e.receiver) else (e.receiver, e.sender) in
  let totals =
    List.fold_left
      (fun acc e ->
        let k = key e in
        let prev = try List.assoc k acc with Not_found -> 0 in
        (k, prev + e.bytes) :: List.remove_assoc k acc)
      [] t.rev_entries
  in
  List.sort compare totals

let rounds t a b =
  (* One round = a maximal one-direction run plus the following reply
     run.  Equivalently: count direction changes, then each pair of
     directed runs is one round (an unmatched trailing run still counts). *)
  let link = List.filter (on_link a b) (entries t) in
  let runs =
    List.fold_left
      (fun acc e ->
        match acc with
        | last :: _ when last = e.sender -> acc
        | _ -> e.sender :: acc)
      [] link
    |> List.length
  in
  (runs + 1) / 2

let pp ppf t =
  (* Column widths are computed from the content (headers included), so
     rows stay aligned however long the party names, byte counts or seq
     numbers grow — the old fixed widths sheared once a column outgrew
     its header. *)
  let es = entries t in
  let width header get =
    List.fold_left (fun acc e -> Stdlib.max acc (String.length (get e)))
      (String.length header) es
  in
  let wseq = width "seq" (fun e -> string_of_int e.seq) in
  let wparty =
    Stdlib.max
      (width "from" (fun e -> party_name e.sender))
      (width "to" (fun e -> party_name e.receiver))
  in
  let wbytes = width "bytes" (fun e -> string_of_int e.bytes) in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "%*s %-*s    %-*s %*s    %s@ " wseq "seq" wparty "from"
    wparty "to" wbytes "bytes" "label";
  List.iter
    (fun e ->
      Format.fprintf ppf "%*d %-*s -> %-*s %*d B  %s@ " wseq e.seq wparty
        (party_name e.sender) wparty (party_name e.receiver) wbytes e.bytes
        e.label)
    es;
  List.iter
    (fun ((a, b), bytes) ->
      Format.fprintf ppf "link %s <-> %s: %d bytes, %d rounds@ " (party_name a)
        (party_name b) bytes (rounds t a b))
    (links t);
  Format.fprintf ppf "total: %d messages, %d bytes@]" (messages t) (total_bytes t)
