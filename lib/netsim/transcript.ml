type party = Data_owner | Party_a | Party_b | Client

let party_name = function
  | Data_owner -> "data-owner"
  | Party_a -> "party-A"
  | Party_b -> "party-B"
  | Client -> "client"

type entry = {
  seq : int;
  sender : party;
  receiver : party;
  label : string;
  bytes : int;
}

type t = { mutable rev_entries : entry list; mutable next : int }

let create () = { rev_entries = []; next = 0 }

let send t ~sender ~receiver ~label ~bytes =
  if bytes < 0 then invalid_arg "Transcript.send: negative size";
  if sender = receiver then invalid_arg "Transcript.send: sender = receiver";
  t.rev_entries <- { seq = t.next; sender; receiver; label; bytes } :: t.rev_entries;
  t.next <- t.next + 1

let entries t = List.rev t.rev_entries

let messages t = t.next

let total_bytes t = List.fold_left (fun acc e -> acc + e.bytes) 0 t.rev_entries

let on_link a b e =
  (e.sender = a && e.receiver = b) || (e.sender = b && e.receiver = a)

let bytes_between t a b =
  List.fold_left (fun acc e -> if on_link a b e then acc + e.bytes else acc) 0 t.rev_entries

let links t =
  (* Canonical undirected link key: parties in declaration order. *)
  let key e = if e.sender < e.receiver then (e.sender, e.receiver) else (e.receiver, e.sender) in
  let totals =
    List.fold_left
      (fun acc e ->
        let k = key e in
        let prev = try List.assoc k acc with Not_found -> 0 in
        (k, prev + e.bytes) :: List.remove_assoc k acc)
      [] t.rev_entries
  in
  List.sort compare totals

let rounds t a b =
  (* One round = a maximal one-direction run plus the following reply
     run.  Equivalently: count direction changes, then each pair of
     directed runs is one round (an unmatched trailing run still counts). *)
  let link = List.filter (on_link a b) (entries t) in
  let runs =
    List.fold_left
      (fun acc e ->
        match acc with
        | last :: _ when last = e.sender -> acc
        | _ -> e.sender :: acc)
      [] link
    |> List.length
  in
  (runs + 1) / 2

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf ppf "%3d %-10s -> %-10s %8d B  %s@ " e.seq (party_name e.sender)
        (party_name e.receiver) e.bytes e.label)
    (entries t);
  Format.fprintf ppf "total: %d messages, %d bytes@]" (messages t) (total_bytes t)
