type t = { name : string; rtt_s : float; bytes_per_s : float }

let loopback = { name = "loopback"; rtt_s = 0.0; bytes_per_s = infinity }

(* ~0.25 ms RTT, 1 Gbps — a switched LAN, the paper's §6 setting. *)
let lan = { name = "lan"; rtt_s = 0.25e-3; bytes_per_s = 1e9 /. 8.0 }

(* ~40 ms RTT, 100 Mbps — the cross-region WAN shape SANNS reports. *)
let wan = { name = "wan"; rtt_s = 40e-3; bytes_per_s = 100e6 /. 8.0 }

let presets = [ loopback; lan; wan ]

let to_string t = t.name

let of_string s =
  let s = String.trim s in
  match List.find_opt (fun p -> p.name = s) presets with
  | Some p -> Ok p
  | None -> (
    (* Custom form: "rtt_ms:bw_mbps", e.g. "40:100" = 40 ms RTT at 100 Mbps. *)
    match String.split_on_char ':' s with
    | [ rtt_str; bw_str ] -> (
      match (float_of_string_opt rtt_str, float_of_string_opt bw_str) with
      | Some rtt_ms, Some bw_mbps
        when rtt_ms >= 0.0 && bw_mbps > 0.0 && Float.is_finite rtt_ms
             && Float.is_finite bw_mbps ->
        Ok { name = s; rtt_s = rtt_ms /. 1e3; bytes_per_s = bw_mbps *. 1e6 /. 8.0 }
      | _ ->
        Error
          (Printf.sprintf
             "bad network profile %S: rtt_ms must be >= 0 and bw_mbps > 0" s))
    | _ ->
      Error
        (Printf.sprintf
           "unknown network profile %S (expected loopback|lan|wan or \
            rtt_ms:bw_mbps)"
           s))

let one_way_s t = t.rtt_s /. 2.0

let serialize_s t bytes =
  if Float.is_finite t.bytes_per_s then float_of_int bytes /. t.bytes_per_s
  else 0.0

let pp ppf t =
  if Float.is_finite t.bytes_per_s then
    Format.fprintf ppf "%s (rtt %g ms, %g Mbit/s)" t.name (t.rtt_s *. 1e3)
      (t.bytes_per_s *. 8.0 /. 1e6)
  else Format.fprintf ppf "%s (rtt %g ms, unbounded bandwidth)" t.name (t.rtt_s *. 1e3)
