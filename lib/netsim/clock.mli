(** Virtual network clock: a pure replay of a {!Transcript.t} under a
    {!Profile.t}.

    No wall clock is ever read — every timestamp is a deterministic
    function of the transcript's message order and the profile's two
    constants, so the replayed timeline is byte-identical across worker
    counts, like the span tree.  Per message: departure waits for the
    sender's inbound causality and the directed channel's FIFO tail,
    serialization occupies the channel for bytes/bandwidth, and arrival
    adds RTT/2 propagation. *)

type cursor
(** Incremental form of the replay, for stamping virtual times onto
    messages as a live protocol run records them. *)

val cursor : Profile.t -> cursor

val step :
  cursor ->
  sender:Transcript.party ->
  receiver:Transcript.party ->
  bytes:int ->
  float * float
(** Advance the clock past one message; returns (departure, arrival) in
    virtual seconds.  Feeding a transcript's entries through [step] in
    seq order reproduces {!replay} exactly. *)

val elapsed_s : cursor -> float
(** Latest arrival seen so far — the running end-to-end wall-clock. *)

type message = {
  entry : Transcript.entry;
  departure_s : float;
  arrival_s : float;
}

type link = {
  link_a : Transcript.party;
  link_b : Transcript.party;  (** canonical unordered pair, as {!Transcript.links} *)
  link_messages : int;
  link_bytes : int;
  link_rounds : int;  (** {!Transcript.rounds} for the pair *)
  busy_s : float;  (** serialization time carried, either direction *)
  idle_s : float;  (** active span minus busy time *)
  first_departure_s : float;
  last_arrival_s : float;
  round_latency_s : float array;
      (** per round (run-pair rule of {!Transcript.rounds}): last arrival
          − first departure within the round *)
}

type timeline = {
  profile : Profile.t;
  messages : message list;  (** in transcript order *)
  links : link list;  (** canonical link order *)
  end_to_end_s : float;  (** latest arrival; 0 for an empty transcript *)
}

val replay : Profile.t -> Transcript.t -> timeline
(** Pure: same transcript and profile give a structurally identical
    timeline, whatever recorded it. *)

val quantile : float array -> float -> float
(** Nearest-rank quantile ([p] in [0,1]); 0 on an empty array.  Used for
    the per-round p50/p95 columns. *)

val link_name : link -> string
(** ["party-A<->party-B"]-style display key. *)

val write_chrome : ?pid:int -> timeline -> out_channel -> unit
(** Chrome trace-event JSON: one thread lane per link, one slice per
    message spanning departure..arrival in virtual microseconds.  [pid]
    defaults to 2 so the wire lanes sit beside the compute process the
    trace sink emits. *)

val pp : Format.formatter -> timeline -> unit
