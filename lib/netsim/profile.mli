(** Deterministic network profiles for the virtual clock.

    A profile is two numbers — round-trip time and link bandwidth — fixed
    by name, never measured: the replayed timeline must be a pure function
    of (transcript, profile) so it is byte-identical across worker counts,
    the same discipline the span tree follows. *)

type t = {
  name : string;
  rtt_s : float;  (** round-trip time in seconds; one-way latency is half *)
  bytes_per_s : float;
      (** serialization bandwidth; [infinity] (loopback) makes
          serialization free *)
}

val loopback : t
(** Zero latency, unbounded bandwidth: the in-process baseline. *)

val lan : t
(** ~0.25 ms RTT, 1 Gbit/s — the paper's single-site §6 setting. *)

val wan : t
(** ~40 ms RTT, 100 Mbit/s — the cross-region shape SANNS reports. *)

val presets : t list

val of_string : string -> (t, string) result
(** A preset name ([loopback]/[lan]/[wan]) or a custom ["rtt_ms:bw_mbps"]
    pair, e.g. ["40:100"] = 40 ms RTT at 100 Mbit/s. *)

val to_string : t -> string

val one_way_s : t -> float
(** Propagation delay of one message: RTT / 2. *)

val serialize_s : t -> int -> float
(** Time to push [bytes] onto the wire: bytes / bandwidth. *)

val pp : Format.formatter -> t -> unit
