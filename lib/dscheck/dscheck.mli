(** DSCheck-style exhaustive interleaving checker for small concurrency
    models (sequential consistency, stateless DFS over schedules,
    blocking mutex/join semantics).  See dscheck.ml for the model. *)

(** {1 Traced state}

    All operations below are scheduling points: the checker explores
    every interleaving of them across processes.  They must only be
    called from inside a process running under {!trace}. *)

type 'a t
(** A traced atomic cell.  Create cells inside the test body so each
    explored execution starts from fresh state. *)

val atomic : 'a -> 'a t
val get : 'a t -> 'a
val set : 'a t -> 'a -> unit
val exchange : 'a t -> 'a -> 'a
val compare_and_set : 'a t -> 'a -> 'a -> bool
val fetch_and_add : int t -> int -> int

val unsafe_peek : 'a t -> 'a
(** Read without a scheduling point — for final invariant assertions
    (e.g. after every [join]), where an extra interleaving point would
    only inflate the schedule tree. *)

module Mutex : sig
  type mu

  val create : unit -> mu

  val lock : mu -> unit
  (** Blocks (leaves the enabled set) until the mutex is free. *)

  val unlock : mu -> unit
  (** Fails the schedule if the caller is not the owner. *)

  val protect : mu -> (unit -> 'a) -> 'a
end

type handle

val spawn : (unit -> unit) -> handle
(** Register a new process, enabled immediately. *)

val join : handle -> unit
(** Blocks until the process has finished. *)

(** {1 Exploration} *)

type error = Deadlock | Exception of exn

type failure = { schedule : int list; error : error }
(** [schedule] is the pid sequence that exhibits the error (pid 0 is
    the test body itself). *)

type stats = { schedules : int; max_steps_seen : int }

val pp_failure : Format.formatter -> failure -> unit

val trace :
  ?max_steps:int ->
  ?max_schedules:int ->
  (unit -> unit) ->
  (stats, failure) result
(** Explore every interleaving of [body]'s processes.  The first
    schedule that deadlocks or raises (assertion failures included) is
    returned as [Error]; [Ok] means all schedules completed cleanly. *)

val check : ?max_steps:int -> ?max_schedules:int -> (unit -> unit) -> stats
(** Like {!trace} but fails (raises) with a formatted counterexample
    schedule on the first erroneous interleaving. *)
