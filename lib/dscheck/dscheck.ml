(* A small DSCheck-style systematic concurrency checker.

   The real dscheck package is not vendored into this tree; this module
   reimplements the part the repo needs: exhaustive exploration of all
   interleavings of a handful of model processes over traced atomic
   operations, with *blocking* mutex/join semantics so that models of
   Util.Pool (spawn / join / merge) and Bgv.s_power (double-checked
   init under a mutex) terminate instead of spinning.

   Model of execution: sequential consistency.  Exactly one process
   runs at a time; a process yields to the scheduler immediately
   *before* every traced operation (Atomic get/set/exchange/cas/faa,
   Mutex lock/unlock, join), and everything between two yields runs
   atomically.  The scheduler explores the schedule tree by stateless
   depth-first search: each execution re-runs the test body from
   scratch under a forced schedule prefix, and every scheduling point
   past the prefix records the not-yet-tried alternatives for
   backtracking.  This is exponential — no partial-order reduction —
   which is fine for the protocol's models (2–3 processes, < 10 traced
   ops each) and keeps the checker auditable.

   Blocking semantics: a process attempting [Mutex.lock] on a held
   mutex, or [join] on an unfinished process, leaves the enabled set
   until the guard becomes true.  If no process is enabled while some
   are unfinished, the schedule is reported as a deadlock. *)

type _ Effect.t += Yield : (unit -> bool) option -> unit Effect.t

(* [Yield None] is a plain scheduling point; [Yield (Some ready)]
   blocks the process until [ready ()] holds.  The scheduler resumes a
   blocked process only when its guard is true, and the resumed
   process re-establishes the guarded fact atomically (nothing else
   runs in between). *)

type proc_state =
  | Not_started of (unit -> unit)
  | Runnable of (unit, unit) Effect.Deep.continuation
  | Blocked of (unit -> bool) * (unit, unit) Effect.Deep.continuation
  | Finished

type proc = { pid : int; mutable state : proc_state }

type handle = proc

type ctx = {
  mutable procs : proc list; (* in spawn order *)
  mutable current : proc option;
  mutable next_pid : int;
}

let ctx : ctx option ref = ref None

let the_ctx () =
  match !ctx with
  | Some c -> c
  | None -> failwith "Dscheck: traced operation outside Dscheck.trace"

let current_pid () =
  match (the_ctx ()).current with
  | Some p -> p.pid
  | None -> failwith "Dscheck: no current process"

let point () = Effect.perform (Yield None)
let block_until ready = Effect.perform (Yield (Some ready))

(* ------------------------------------------------------------------ *)
(* Traced primitives                                                   *)
(* ------------------------------------------------------------------ *)

(* Single OS thread: a plain ref is a faithful sequentially-consistent
   atomic once every access is a scheduling point. *)
type 'a t = 'a ref

let atomic v = ref v

let get r =
  point ();
  !r

let set r v =
  point ();
  r := v

let exchange r v =
  point ();
  let old = !r in
  r := v;
  old

let compare_and_set r seen v =
  point ();
  if !r == seen then begin
    r := v;
    true
  end
  else false

let fetch_and_add r n =
  point ();
  let old = !r in
  r := old + n;
  old

(* Non-traced read for use in final assertions (after all joins): does
   not create a scheduling point, so invariant checks don't blow up the
   schedule tree. *)
let unsafe_peek r = !r

module Mutex = struct
  type mu = { mutable owner : int option }

  let create () = { owner = None }

  let lock m =
    block_until (fun () -> m.owner = None);
    (* Atomic with the guard: nothing ran since it held. *)
    m.owner <- Some (current_pid ())

  let unlock m =
    point ();
    (match m.owner with
     | Some p when p = current_pid () -> ()
     | _ -> failwith "Dscheck.Mutex.unlock: not the owner");
    m.owner <- None

  let protect m f =
    lock m;
    match f () with
    | v ->
      unlock m;
      v
    | exception e ->
      unlock m;
      raise e
end

let is_finished p = match p.state with Finished -> true | _ -> false

let spawn f =
  let c = the_ctx () in
  let p = { pid = c.next_pid; state = Not_started f } in
  c.next_pid <- c.next_pid + 1;
  c.procs <- c.procs @ [ p ];
  p

let join h = block_until (fun () -> is_finished h)

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

exception Replay_divergence

type error = Deadlock | Exception of exn

type failure = { schedule : int list; error : error }

type stats = { schedules : int; max_steps_seen : int }

let pp_failure ppf f =
  Format.fprintf ppf "schedule [%s]: %s"
    (String.concat "; " (List.map string_of_int f.schedule))
    (match f.error with
     | Deadlock -> "deadlock (no enabled process)"
     | Exception e -> Printexc.to_string e)

let is_enabled p =
  match p.state with
  | Not_started _ | Runnable _ -> true
  | Blocked (ready, _) -> ready ()
  | Finished -> false

let resume c p =
  c.current <- Some p;
  let handler =
    { Effect.Deep.retc = (fun () -> p.state <- Finished);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ready ->
            Some
              (fun (k : (a, _) Effect.Deep.continuation) ->
                match ready with
                | None -> p.state <- Runnable k
                | Some r ->
                  (* Keep the guard even if it holds right now: another
                     process may run before this one is resumed and
                     falsify it (e.g. steal the mutex).  [is_enabled]
                     re-evaluates it at every scheduling decision. *)
                  p.state <- Blocked (r, k))
          | _ -> None);
    }
  in
  (match p.state with
   | Not_started f -> Effect.Deep.match_with f () handler
   | Runnable k | Blocked (_, k) ->
     (* Re-wrapping is unnecessary: the continuation still runs under
        the handler installed at start. *)
     Effect.Deep.continue k ()
   | Finished -> assert false);
  c.current <- None

(* One execution under [prefix].  Each prefix entry is the forced pid
   plus the alternatives still to try at that point; choices past the
   prefix record the first enabled pid and the untried rest.  Returns
   the (reversed-back) choice log, or the failing schedule. *)
let run_once ~max_steps prefix body =
  let c = { procs = []; current = None; next_pid = 0 } in
  ctx := Some c;
  ignore (spawn body);
  let choices = ref [] in
  let steps = ref 0 in
  let schedule_so_far () = List.rev_map fst !choices in
  let result =
    let rec sched forced =
      if List.for_all is_finished c.procs then Ok (List.rev !choices)
      else begin
        let enabled = List.filter is_enabled c.procs in
        match enabled with
        | [] -> Error { schedule = schedule_so_far (); error = Deadlock }
        | first :: rest -> begin
          incr steps;
          if !steps > max_steps then
            failwith "Dscheck: max_steps exceeded (unbounded model?)";
          let chosen, alts, forced' =
            match forced with
            | (pid, rem) :: tl -> begin
              match List.find_opt (fun p -> p.pid = pid) enabled with
              | Some p -> (p, rem, tl)
              | None -> raise Replay_divergence
            end
            | [] -> (first, List.map (fun p -> p.pid) rest, [])
          in
          choices := (chosen.pid, alts) :: !choices;
          match resume c chosen with
          | () -> sched forced'
          | exception e ->
            Error { schedule = schedule_so_far (); error = Exception e }
        end
      end
    in
    sched prefix
  in
  ctx := None;
  (result, !steps)

(* Stateless DFS over the schedule tree. *)
let trace ?(max_steps = 20_000) ?(max_schedules = 1_000_000) body =
  let schedules = ref 0 in
  let deepest = ref 0 in
  let rec explore prefix =
    incr schedules;
    if !schedules > max_schedules then
      failwith "Dscheck: max_schedules exceeded (state explosion?)";
    let outcome, steps = run_once ~max_steps prefix body in
    if steps > !deepest then deepest := steps;
    match outcome with
    | Error f -> Some f
    | Ok log -> begin
      (* Backtrack to the deepest choice with untried alternatives. *)
      let rec split_last_alt acc = function
        | [] -> None
        | (pid, alts) :: rest -> begin
          match split_last_alt ((pid, alts) :: acc) rest with
          | Some _ as deeper -> deeper
          | None -> begin
            match alts with
            | [] -> None
            | a :: more -> Some (List.rev acc @ [ (a, more) ])
          end
        end
      in
      match split_last_alt [] log with
      | None -> None
      | Some next_prefix -> explore next_prefix
    end
  in
  match explore [] with
  | Some f -> Error f
  | None -> Ok { schedules = !schedules; max_steps_seen = !deepest }

let check ?max_steps ?max_schedules body =
  match trace ?max_steps ?max_schedules body with
  | Ok s -> s
  | Error f -> Format.kasprintf failwith "Dscheck: %a" pp_failure f
