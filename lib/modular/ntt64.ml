type table = {
  p : int64;
  n : int;
  psi_rev : int64 array;
  psi_inv_rev : int64 array;
  n_inv : int64;
}

let prime t = t.p
let degree t = t.n

(* Table construction only; see Ntt.make_table. *)
let[@sknn.allow "no-division"] make_table ~p ~n =
  if not (n > 0 && n land (n - 1) = 0) then invalid_arg "Ntt64.make_table: n not a power of two";
  if not (Prime64.is_prime p) then invalid_arg "Ntt64.make_table: p not prime";
  if not (Int64.equal (Int64.rem (Int64.pred p) (Int64.of_int (2 * n))) 0L) then
    invalid_arg "Ntt64.make_table: p <> 1 mod 2n";
  let psi = Prime64.root_of_unity ~p ~order:(Int64.of_int (2 * n)) in
  let psi_inv = Mod64.inv p psi in
  let bits =
    let rec go b m = if m = 1 then b else go (b + 1) (m lsr 1) in
    go 0 n
  in
  let bit_reverse i =
    let r = ref 0 and i = ref i in
    for _ = 1 to bits do
      r := (!r lsl 1) lor (!i land 1);
      i := !i lsr 1
    done;
    !r
  in
  let powers base =
    let direct = Array.make n 1L in
    for i = 1 to n - 1 do
      direct.(i) <- Mod64.mul p direct.(i - 1) base
    done;
    Array.init n (fun i -> direct.(bit_reverse i))
  in
  let n_inv = Mod64.inv p (Int64.of_int n) in
  { p; n; psi_rev = powers psi; psi_inv_rev = powers psi_inv; n_inv }

let forward t a =
  if Array.length a <> t.n then invalid_arg "Ntt64.forward: wrong length";
  let p = t.p and n = t.n and w = t.psi_rev in
  let len = ref n and m = ref 1 in
  while !m < n do
    len := !len lsr 1;
    for i = 0 to !m - 1 do
      let j1 = 2 * i * !len in
      let s = w.(!m + i) in
      for j = j1 to j1 + !len - 1 do
        let u = a.(j) in
        let v = Mod64.mul p a.(j + !len) s in
        a.(j) <- Mod64.add p u v;
        a.(j + !len) <- Mod64.sub p u v
      done
    done;
    m := !m * 2
  done

let inverse t a =
  if Array.length a <> t.n then invalid_arg "Ntt64.inverse: wrong length";
  let p = t.p and n = t.n and w = t.psi_inv_rev in
  let len = ref 1 and m = ref n in
  while !m > 1 do
    let h = !m lsr 1 in
    let j1 = ref 0 in
    for i = 0 to h - 1 do
      let s = w.(h + i) in
      for j = !j1 to !j1 + !len - 1 do
        let u = a.(j) in
        let v = a.(j + !len) in
        a.(j) <- Mod64.add p u v;
        a.(j + !len) <- Mod64.mul p (Mod64.sub p u v) s
      done;
      j1 := !j1 + (2 * !len)
    done;
    len := !len * 2;
    m := h
  done;
  for j = 0 to n - 1 do
    a.(j) <- Mod64.mul p a.(j) t.n_inv
  done
