(** Negacyclic number-theoretic transform modulo a word-sized prime.

    This is the hot loop of the whole repository: every homomorphic
    operation in the BGV layer reduces to forward/inverse NTTs and
    pointwise products in Z_p[x]/(x^n + 1).  The modulus is restricted to
    [p < 2^31] so that every butterfly product fits in the native 63-bit
    [int] — no boxed [int64] in the inner loop.

    For [p < 2^30] (every prime {!Params} can emit) the transforms are
    division-free: each twiddle carries a precomputed {!Shoup}
    companion, butterflies run lazily over [[0, 2p)] with one
    conditional subtraction instead of [mod], and the pointwise kernels
    reduce with the table's {!Barrett} reciprocal.  Both reductions are
    exact, so outputs are bit-identical to the naive [mod]-based
    transform (which remains as the fallback for larger primes).

    The transform convention is the standard merged-psi one (Longa &
    Naehrig, 2016): [forward] consumes coefficients in natural order and
    produces the evaluation domain in bit-reversed order; [inverse]
    consumes that layout and returns natural-order coefficients, so
    [inverse (forward a) = a] with no explicit bit-reversal pass, and
    multiplication is a pointwise product between the two. *)

type table
(** Precomputed twiddle factors for a fixed (prime, degree) pair. *)

val make_table : p:int -> n:int -> table
(** [make_table ~p ~n] precomputes tables for Z_p[x]/(x^n+1).  Requires
    [n] a power of two, [p] prime, [p ≡ 1 (mod 2n)], [p < 2^31].
    @raise Invalid_argument otherwise. *)

val prime : table -> int
val degree : table -> int

val barrett : table -> Barrett.t
(** The per-prime Barrett reciprocal used by the pointwise kernels,
    exposed so the ring layer can reduce its own products without
    recomputing it. *)

val forward : table -> int array -> unit
(** In-place forward negacyclic NTT; input in natural order, output in
    bit-reversed evaluation order. Length must equal [degree]. *)

val inverse : table -> int array -> unit
(** In-place inverse; undoes [forward] including the 1/n scaling. *)

val pointwise_mul : table -> int array -> int array -> int array -> unit
(** [pointwise_mul t dst a b] sets [dst.(i) <- a.(i)*b.(i) mod p].
    [dst] may alias [a] or [b]. *)

val pointwise_mul_acc : table -> int array -> int array -> int array -> unit
(** [pointwise_mul_acc t acc a b] adds [a.(i)*b.(i)] into [acc.(i)] mod p. *)

val negacyclic_mul : table -> int array -> int array -> int array
(** Convenience: full polynomial product of natural-order inputs
    (forward both, pointwise, inverse). Allocates; inputs unchanged. *)
