type table = {
  p : int;
  n : int;
  psi_rev : int array;      (* psi^brv(i), forward twiddles *)
  psi_hi : int array;       (* Shoup companions of psi_rev, 31-bit split *)
  psi_lo : int array;
  psi_inv_rev : int array;  (* psi^-brv(i), inverse twiddles *)
  psi_inv_hi : int array;
  psi_inv_lo : int array;
  n_inv : int;
  n_inv_hi : int;
  n_inv_lo : int;
  br : Barrett.t;
  lazy_ok : bool;           (* p < 2^30: lazy butterflies + Barrett apply *)
}

let prime t = t.p
let degree t = t.n
let barrett t = t.br

let is_pow2 n = n > 0 && n land (n - 1) = 0

let bit_reverse ~bits i =
  let r = ref 0 and i = ref i in
  for _ = 1 to bits do
    r := (!r lsl 1) lor (!i land 1);
    i := !i lsr 1
  done;
  !r

(* Table construction runs once per modulus, never on the hot path:
   the mod-based twiddle powers here are the documented whitelisted
   site of the no-division rule. *)
let[@sknn.allow "no-division"] make_table ~p ~n =
  if not (is_pow2 n) then invalid_arg "Ntt.make_table: n not a power of two";
  if p >= 1 lsl 31 then invalid_arg "Ntt.make_table: p >= 2^31";
  let p64 = Int64.of_int p in
  if not (Prime64.is_prime p64) then invalid_arg "Ntt.make_table: p not prime";
  if (p - 1) mod (2 * n) <> 0 then invalid_arg "Ntt.make_table: p <> 1 mod 2n";
  let psi = Int64.to_int (Prime64.root_of_unity ~p:p64 ~order:(Int64.of_int (2 * n))) in
  let psi_inv = Int64.to_int (Mod64.inv p64 (Int64.of_int psi)) in
  let bits =
    let rec go b m = if m = 1 then b else go (b + 1) (m lsr 1) in
    go 0 n
  in
  let powers base =
    (* tbl.(i) = base^brv(i) mod p *)
    let direct = Array.make n 1 in
    for i = 1 to n - 1 do
      direct.(i) <- direct.(i - 1) * base mod p
    done;
    Array.init n (fun i -> direct.(bit_reverse ~bits i))
  in
  let companions ws =
    let hi = Array.make n 0 and lo = Array.make n 0 in
    Array.iteri
      (fun i w ->
        let s = Shoup.of_int ~p w in
        hi.(i) <- s.Shoup.hi;
        lo.(i) <- s.Shoup.lo)
      ws;
    (hi, lo)
  in
  let psi_rev = powers psi and psi_inv_rev = powers psi_inv in
  let psi_hi, psi_lo = companions psi_rev in
  let psi_inv_hi, psi_inv_lo = companions psi_inv_rev in
  let n_inv = Int64.to_int (Mod64.inv p64 (Int64.of_int n)) in
  let sn = Shoup.of_int ~p n_inv in
  { p; n; psi_rev; psi_hi; psi_lo; psi_inv_rev; psi_inv_hi; psi_inv_lo;
    n_inv; n_inv_hi = sn.Shoup.hi; n_inv_lo = sn.Shoup.lo;
    br = Barrett.create ~p; lazy_ok = p < 1 lsl 30 }

(* ------------------------------------------------------------------ *)
(* Division-free path, p < 2^30.

   Butterfly values are kept lazily in [0, 2p): with p < 2^30 every
   such value is below 2^31, so it is a valid input to the Shoup
   quotient estimate (exact floor, see shoup.ml) and sums of two stay
   below 2^32 — far inside the 63-bit int.  A trailing O(n) pass (the
   inverse folds it into the 1/n scaling) restores the fully-reduced
   [0, p) representation, so outputs are bit-identical to the naive
   mod-based transform. *)
(* ------------------------------------------------------------------ *)

(* The transforms below index only within [0, n): the length check in
   [forward]/[inverse] plus the power-of-two stage structure make every
   access in range, so the inner loops use unsafe accessors — at the
   protocol's n = 64 the bounds checks would otherwise rival the
   arithmetic. *)

let forward_lazy t a =
  let p = t.p and n = t.n in
  let twop = 2 * p in
  let w = t.psi_rev and whi = t.psi_hi and wlo = t.psi_lo in
  let len = ref n and m = ref 1 in
  while !m < n lsr 1 do
    let half = !len lsr 1 in
    let mm = !m in
    for i = 0 to mm - 1 do
      let j1 = 2 * i * half in
      let idx = mm + i in
      let sw = Array.unsafe_get w idx in
      let shi = Array.unsafe_get whi idx in
      let slo = Array.unsafe_get wlo idx in
      for j = j1 to j1 + half - 1 do
        let u = Array.unsafe_get a j in
        let x = Array.unsafe_get a (j + half) in
        let q = ((shi * x) + ((slo * x) lsr 31)) lsr 31 in
        let v = (sw * x) - (q * p) in
        let s = u + v in
        Array.unsafe_set a j (s - (twop land ((twop - 1 - s) asr 62)));
        let d = u - v + twop in
        Array.unsafe_set a (j + half) (d - (twop land ((twop - 1 - d) asr 62)))
      done
    done;
    len := half;
    m := mm * 2
  done;
  (* Last stage (half = 1) flattened, with the final reduction to
     [0, p) folded into its outputs: inputs are in [0, 2p), so
     u + v < 4p and u - v + 2p < 4p need two conditional subtractions
     each — the same count as butterfly-then-pass, minus a full sweep
     of loads and stores. *)
  if n >= 2 then begin
    let hn = n lsr 1 in
    for i = 0 to hn - 1 do
      let idx = hn + i in
      let sw = Array.unsafe_get w idx in
      let shi = Array.unsafe_get whi idx in
      let slo = Array.unsafe_get wlo idx in
      let j = 2 * i in
      let u = Array.unsafe_get a j in
      let x = Array.unsafe_get a (j + 1) in
      let q = ((shi * x) + ((slo * x) lsr 31)) lsr 31 in
      let v = (sw * x) - (q * p) in
      let s = u + v in
      let s = s - (twop land ((twop - 1 - s) asr 62)) in
      Array.unsafe_set a j (s - (p land ((p - 1 - s) asr 62)));
      let d = u - v + twop in
      let d = d - (twop land ((twop - 1 - d) asr 62)) in
      Array.unsafe_set a (j + 1) (d - (p land ((p - 1 - d) asr 62)))
    done
  end
  else begin
    let x = Array.unsafe_get a 0 in
    if x >= p then Array.unsafe_set a 0 (x - p)
  end

let inverse_lazy t a =
  let p = t.p and n = t.n in
  let twop = 2 * p in
  let w = t.psi_inv_rev and whi = t.psi_inv_hi and wlo = t.psi_inv_lo in
  (* First stage (len = 1) flattened: adjacent pairs, one twiddle per
     butterfly, no inner loop to set up. *)
  if n >= 2 then begin
    let hn = n lsr 1 in
    for i = 0 to hn - 1 do
      let idx = hn + i in
      let sw = Array.unsafe_get w idx in
      let shi = Array.unsafe_get whi idx in
      let slo = Array.unsafe_get wlo idx in
      let j = 2 * i in
      let u = Array.unsafe_get a j in
      let v = Array.unsafe_get a (j + 1) in
      let s = u + v in
      Array.unsafe_set a j (s - (twop land ((twop - 1 - s) asr 62)));
      let d = u - v + twop in
      let d = d - (twop land ((twop - 1 - d) asr 62)) in
      let q = ((shi * d) + ((slo * d) lsr 31)) lsr 31 in
      Array.unsafe_set a (j + 1) ((sw * d) - (q * p))
    done
  end;
  let len = ref 2 and m = ref (n lsr 1) in
  while !m > 1 do
    let h = !m lsr 1 in
    let ll = !len in
    let j1 = ref 0 in
    for i = 0 to h - 1 do
      let idx = h + i in
      let sw = Array.unsafe_get w idx in
      let shi = Array.unsafe_get whi idx in
      let slo = Array.unsafe_get wlo idx in
      let lo = !j1 in
      for j = lo to lo + ll - 1 do
        let u = Array.unsafe_get a j in
        let v = Array.unsafe_get a (j + ll) in
        let s = u + v in
        Array.unsafe_set a j (s - (twop land ((twop - 1 - s) asr 62)));
        let d = u - v + twop in
        let d = d - (twop land ((twop - 1 - d) asr 62)) in
        let q = ((shi * d) + ((slo * d) lsr 31)) lsr 31 in
        Array.unsafe_set a (j + ll) ((sw * d) - (q * p))
      done;
      j1 := lo + (2 * ll)
    done;
    len := ll * 2;
    m := h
  done;
  let ninv = t.n_inv and nhi = t.n_inv_hi and nlo = t.n_inv_lo in
  for j = 0 to n - 1 do
    let x = Array.unsafe_get a j in
    let q = ((nhi * x) + ((nlo * x) lsr 31)) lsr 31 in
    let r = (ninv * x) - (q * p) in
    Array.unsafe_set a j (r - (p land ((p - 1 - r) asr 62)))
  done

(* Fallback for p >= 2^30 (never produced by Params, but make_table's
   documented domain is p < 2^31): the original mod-based loops. *)

let[@sknn.allow "no-division"] forward_generic t a =
  let p = t.p and n = t.n and w = t.psi_rev in
  let len = ref n and m = ref 1 in
  while !m < n do
    len := !len / 2;
    for i = 0 to !m - 1 do
      let j1 = 2 * i * !len in
      let s = w.(!m + i) in
      for j = j1 to j1 + !len - 1 do
        let u = a.(j) in
        let v = a.(j + !len) * s mod p in
        let x = u + v in
        a.(j) <- (if x >= p then x - p else x);
        let y = u - v in
        a.(j + !len) <- (if y < 0 then y + p else y)
      done
    done;
    m := !m * 2
  done

let[@sknn.allow "no-division"] inverse_generic t a =
  let p = t.p and n = t.n and w = t.psi_inv_rev in
  let len = ref 1 and m = ref n in
  while !m > 1 do
    let h = !m / 2 in
    let j1 = ref 0 in
    for i = 0 to h - 1 do
      let s = w.(h + i) in
      for j = !j1 to !j1 + !len - 1 do
        let u = a.(j) in
        let v = a.(j + !len) in
        let x = u + v in
        a.(j) <- (if x >= p then x - p else x);
        let y = u - v in
        let y = if y < 0 then y + p else y in
        a.(j + !len) <- y * s mod p
      done;
      j1 := !j1 + (2 * !len)
    done;
    len := !len * 2;
    m := h
  done;
  let ninv = t.n_inv in
  for j = 0 to n - 1 do
    a.(j) <- a.(j) * ninv mod p
  done

let forward t a =
  if Array.length a <> t.n then invalid_arg "Ntt.forward: wrong length";
  if t.lazy_ok then forward_lazy t a else forward_generic t a

let inverse t a =
  if Array.length a <> t.n then invalid_arg "Ntt.inverse: wrong length";
  if t.lazy_ok then inverse_lazy t a else inverse_generic t a

let check3 t name x y z =
  if Array.length x <> t.n || Array.length y <> t.n || Array.length z <> t.n
  then invalid_arg name

let pointwise_mul t dst a b =
  check3 t "Ntt.pointwise_mul: wrong length" dst a b;
  let p = t.p and n = t.n in
  if t.lazy_ok then begin
    let mu = t.br.Barrett.mu and s1 = t.br.Barrett.s1 and s2 = t.br.Barrett.s2 in
    for i = 0 to n - 1 do
      let m = Array.unsafe_get a i * Array.unsafe_get b i in
      let q = ((m lsr s1) * mu) lsr s2 in
      let r = m - (q * p) in
      let r = r - (p land ((p - 1 - r) asr 62)) in
      Array.unsafe_set dst i (r - (p land ((p - 1 - r) asr 62)))
    done
  end
  else
    (for i = 0 to n - 1 do
       dst.(i) <- a.(i) * b.(i) mod p
     done)
    [@sknn.allow "no-division" (* generic fallback branch, p >= 2^30 *)]

let pointwise_mul_acc t acc a b =
  check3 t "Ntt.pointwise_mul_acc: wrong length" acc a b;
  let p = t.p and n = t.n in
  if t.lazy_ok then begin
    let mu = t.br.Barrett.mu and s1 = t.br.Barrett.s1 and s2 = t.br.Barrett.s2 in
    for i = 0 to n - 1 do
      let m = Array.unsafe_get a i * Array.unsafe_get b i in
      let q = ((m lsr s1) * mu) lsr s2 in
      let r = m - (q * p) in
      let r = r - (p land ((p - 1 - r) asr 62)) in
      let r = r - (p land ((p - 1 - r) asr 62)) in
      let v = Array.unsafe_get acc i + r in
      Array.unsafe_set acc i (v - (p land ((p - 1 - v) asr 62)))
    done
  end
  else
    (for i = 0 to n - 1 do
       acc.(i) <- (acc.(i) + (a.(i) * b.(i) mod p)) mod p
     done)
    [@sknn.allow "no-division" (* generic fallback branch, p >= 2^30 *)]

let negacyclic_mul t a b =
  let fa = Array.copy a in
  Util.Arena.with_array t.n (fun fb ->
      Array.blit b 0 fb 0 t.n;
      forward t fa;
      forward t fb;
      pointwise_mul t fa fa fb;
      inverse t fa);
  fa
