(* Barrett reduction of a double-width product modulo p.

   With b = bits(p) and mu = floor(2^(2b) / p), the quotient estimate
   for m < 2^(2b) is

     q = ((m >> (b-1)) * mu) >> (b+1)

   which undershoots the true quotient by at most 2 (HAC 14.42), so two
   conditional subtractions make the result exact.  Intermediate bound:
   (m >> (b-1)) < 2^(b+1) and mu <= 2^(b+1), so the product stays below
   2^(2b+2); for b <= 30 that fits OCaml's 63-bit int.  Larger primes
   (none exist in practice — Params caps prime chains at 30 bits) fall
   back to the hardware division. *)

type t = { p : int; s1 : int; s2 : int; mu : int; fast : bool }

let bits_of p =
  let rec go b m = if m = 0 then b else go (b + 1) (m lsr 1) in
  go 0 p

(* mu precompute: one hardware division per modulus at table time. *)
let[@sknn.allow "no-division"] create ~p =
  if p <= 1 || p >= 1 lsl 31 then invalid_arg "Barrett.create: p out of range";
  let b = bits_of p in
  if b <= 30 then
    { p; s1 = b - 1; s2 = b + 1; mu = (1 lsl (2 * b)) / p; fast = true }
  else { p; s1 = 0; s2 = 0; mu = 0; fast = false }

let[@inline] reduce t m =
  if t.fast then begin
    let q = ((m lsr t.s1) * t.mu) lsr t.s2 in
    let r = m - (q * t.p) in
    let r = if r >= t.p then r - t.p else r in
    if r >= t.p then r - t.p else r
  end
  else (m mod t.p) [@sknn.allow "no-division" (* slow-path fallback, p > 2^30 *)]

let[@inline] mul t x y = reduce t (x * y)
