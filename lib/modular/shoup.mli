(** Shoup multiplication: division-free modular product with a fixed
    operand, exact for any modulus [p < 2^31] on OCaml's 63-bit ints.

    Precomputing {!of_int} costs two hardware divisions; every
    subsequent {!mul} costs three multiplications, two shifts and one
    conditional subtraction — no division.  This is the kernel behind
    the NTT butterflies and scalar multiplication in the ring layer. *)

type t = {
  w : int;   (** the fixed operand, in [[0, p)] *)
  hi : int;  (** high 31 bits of [floor (w * 2^62 / p)] *)
  lo : int;  (** low 31 bits of the same companion constant *)
}
(** Fields are exposed (read-only by convention) so hot loops can hoist
    them into registers; construct only via {!of_int}. *)

val of_int : p:int -> int -> t
(** [of_int ~p w] precomputes the companion of [w] for modulus [p].
    Requires [1 < p < 2^31] and [0 <= w < p].
    @raise Invalid_argument otherwise. *)

val mul_lazy : t -> p:int -> int -> int
(** [mul_lazy t ~p x] returns [t.w * x mod p + e*p] with [e] in {0,1} —
    a value in [[0, 2p)] congruent to the product.  Requires
    [0 <= x < 2^31].  Used inside lazy butterfly stages where the final
    reduction is deferred. *)

val mul : t -> p:int -> int -> int
(** [mul t ~p x] is the exact product residue [t.w * x mod p], for
    [0 <= x < 2^31].  Bit-for-bit identical to [(t.w * x) mod p]. *)
