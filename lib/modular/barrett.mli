(** Barrett reduction: division-free [mod p] for double-width products,
    exact (never approximate) for any prime the parameter layer can
    produce.

    One reciprocal [mu = floor(2^(2b)/p)] is precomputed per modulus;
    each reduction then costs two multiplications, two shifts and two
    conditional subtractions.  The fast path requires [p < 2^30]
    (all {!Params} chain primes qualify); larger moduli transparently
    fall back to the hardware division, so results are always exact. *)

type t = {
  p : int;     (** the modulus *)
  s1 : int;    (** first shift, [bits p - 1] *)
  s2 : int;    (** second shift, [bits p + 1] *)
  mu : int;    (** [floor (2^(2 bits p) / p)] *)
  fast : bool; (** whether the division-free path applies ([p < 2^30]) *)
}
(** Fields are exposed (read-only by convention) so hot loops can hoist
    them; construct only via {!create}. *)

val create : p:int -> t
(** Requires [1 < p < 2^31]. @raise Invalid_argument otherwise. *)

val reduce : t -> int -> int
(** [reduce t m] is [m mod t.p], bit-for-bit, for [0 <= m < 2^(2 bits p)]
    on the fast path (any non-negative [m] on the fallback). *)

val mul : t -> int -> int -> int
(** [mul t x y] is [(x * y) mod t.p] for [0 <= x, y < t.p]. *)
