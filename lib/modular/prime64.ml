(* Number theory for parameter/table construction (primality, factoring,
   primitive roots): never on the encrypted hot path, so the whole file
   is a whitelisted division site. *)
[@@@sknn.allow "no-division"]

(* Deterministic Miller–Rabin: the witness set {2,3,5,7,11,13,17,19,23,
   29,31,37} is known to be correct for all n < 3.3 * 10^24, which covers
   the full int64 range. *)

let witnesses = [ 2L; 3L; 5L; 7L; 11L; 13L; 17L; 19L; 23L; 29L; 31L; 37L ]

let is_prime n =
  if Int64.compare n 2L < 0 then false
  else if List.exists (Int64.equal n) witnesses then true
  else if Int64.rem n 2L = 0L then false
  else begin
    let n1 = Int64.pred n in
    let rec split r d =
      if Int64.logand d 1L = 0L then split (r + 1) (Int64.shift_right_logical d 1)
      else (r, d)
    in
    let r, d = split 0 n1 in
    let strong a =
      let a = Mod64.reduce n a in
      if Int64.compare a 0L = 0 then true
      else begin
        let x = ref (Mod64.pow n a d) in
        if Int64.equal !x 1L || Int64.equal !x n1 then true
        else begin
          let ok = ref false in
          for _ = 1 to r - 1 do
            if not !ok then begin
              x := Mod64.mul n !x !x;
              if Int64.equal !x n1 then ok := true
            end
          done;
          !ok
        end
      end
    in
    List.for_all strong witnesses
  end

let rec gcd64 a b = if Int64.equal b 0L then a else gcd64 b (Int64.rem a b)

(* Pollard rho (Floyd cycle) for a single nontrivial factor of an odd
   composite n that has no small prime factors. *)
let rec pollard_rho n c =
  let f x = Mod64.add n (Mod64.mul n x x) c in
  let rec race x y =
    let x = f x in
    let y = f (f y) in
    let diff = if Int64.compare x y >= 0 then Int64.sub x y else Int64.sub y x in
    if Int64.compare diff 0L = 0 then pollard_rho n (Int64.succ c)
    else begin
      let d = gcd64 diff n in
      if Int64.equal d 1L then race x y
      else if Int64.equal d n then pollard_rho n (Int64.succ c)
      else d
    end
  in
  race 2L 2L

let small_trial = [ 2L; 3L; 5L; 7L; 11L; 13L; 17L; 19L; 23L; 29L; 31L; 37L; 41L; 43L; 47L ]

let factor n =
  if Int64.compare n 0L <= 0 then invalid_arg "Prime64.factor: n <= 0";
  let counts = Hashtbl.create 8 in
  let bump p = Hashtbl.replace counts p (1 + Option.value ~default:0 (Hashtbl.find_opt counts p)) in
  let rec strip n p = if Int64.rem n p = 0L then (bump p; strip (Int64.div n p) p) else n in
  let n = List.fold_left strip n small_trial in
  let rec split n =
    if Int64.compare n 1L = 0 then ()
    else if is_prime n then bump n
    else begin
      let d = pollard_rho n 1L in
      split d;
      split (Int64.div n d)
    end
  in
  split n;
  Hashtbl.fold (fun p k acc -> (p, k) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> Int64.compare a b)

let primitive_root p =
  if not (is_prime p) then invalid_arg "Prime64.primitive_root: not prime";
  if Int64.equal p 2L then 1L
  else begin
    let phi = Int64.pred p in
    let prime_factors = List.map fst (factor phi) in
    let is_generator g =
      List.for_all
        (fun q -> not (Int64.equal (Mod64.pow p g (Int64.div phi q)) 1L))
        prime_factors
    in
    let rec search g = if is_generator g then g else search (Int64.succ g) in
    search 2L
  end

let root_of_unity ~p ~order =
  let phi = Int64.pred p in
  if not (Int64.equal (Int64.rem phi order) 0L) then
    failwith "Prime64.root_of_unity: order does not divide p-1";
  let g = primitive_root p in
  Mod64.pow p g (Int64.div phi order)

let find_ntt_prime ?(min_bits = 2) ~congruent_mod ~bits () =
  let upper = Int64.shift_left 1L bits in
  let lower = Int64.shift_left 1L min_bits in
  (* Largest candidate of the form k*m + 1 below 2^bits, stepping down. *)
  let m = congruent_mod in
  let k0 = Int64.div (Int64.sub upper 2L) m in
  let rec search k =
    let candidate = Int64.succ (Int64.mul k m) in
    if Int64.compare candidate lower < 0 then raise Not_found
    else if is_prime candidate then candidate
    else search (Int64.pred k)
  in
  search k0

let ntt_primes ~congruent_mod ~bits ~count =
  let lower = Int64.shift_left 1L (bits - 2) in
  let m = congruent_mod in
  let rec collect acc k remaining =
    if remaining = 0 then List.rev acc
    else begin
      let candidate = Int64.succ (Int64.mul k m) in
      if Int64.compare candidate lower < 0 then raise Not_found
      else if is_prime candidate then collect (candidate :: acc) (Int64.pred k) (remaining - 1)
      else collect acc (Int64.pred k) remaining
    end
  in
  let upper = Int64.shift_left 1L bits in
  let k0 = Int64.div (Int64.sub upper 2L) m in
  collect [] k0 count
