(* Shoup multiplication by a fixed operand w modulo p < 2^31.

   The companion constant is w' = floor(w * 2^62 / p) < 2^62, stored as
   a 31-bit split w' = hi * 2^31 + lo so that the quotient estimate

     q = (hi*x + ((lo*x) >> 31)) >> 31

   is computed with every intermediate below 2^62 (OCaml's native int is
   63 bits).  q is *exactly* floor(w'*x / 2^62) for any x < 2^31: write
   lo*x = c*2^31 + d with d < 2^31; then w'*x = (hi*x + c)*2^31 + d and
   the discarded fraction (frac((hi*x+c)/2^31) + d/2^62) is < 1 because
   the first term is at most (2^31-1)/2^31 and the second below 2^-31.
   The classical Shoup bound then gives

     w*x - q*p  in  [0, 2p)

   so one conditional subtraction yields the exact product residue. *)

type t = { w : int; hi : int; lo : int }

let mask31 = (1 lsl 31) - 1

(* Companion-constant precompute: divides once per fixed operand, at
   table-construction time only. *)
let[@sknn.allow "no-division"] of_int ~p w =
  if p <= 1 || p >= 1 lsl 31 then invalid_arg "Shoup.of_int: p out of range";
  if w < 0 || w >= p then invalid_arg "Shoup.of_int: w out of range";
  (* w' = floor(w * 2^62 / p) without exceeding 63 bits:
     with a = w*2^31 (< 2^62), w' = (a/p)*2^31 + ((a mod p)*2^31)/p. *)
  let a = w lsl 31 in
  let q1 = a / p and r1 = a mod p in
  let w' = (q1 lsl 31) lor ((r1 lsl 31) / p) in
  { w; hi = w' lsr 31; lo = w' land mask31 }

let[@inline] mul_lazy t ~p x =
  let q = ((t.hi * x) + ((t.lo * x) lsr 31)) lsr 31 in
  (t.w * x) - (q * p)

let[@inline] mul t ~p x =
  let r = mul_lazy t ~p x in
  if r >= p then r - p else r
