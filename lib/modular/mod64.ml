(* Mod64 is the generic 64-bit layer behind precompute (prime search,
   twiddle powers, inverses); the hot path runs on the Shoup/Barrett
   int kernels.  Its three genuinely dividing entry points carry the
   no-division allow. *)
let[@sknn.allow "no-division"] reduce m x =
  let r = Int64.rem x m in
  if Int64.compare r 0L < 0 then Int64.add r m else r

let add m a b =
  let s = Int64.add a b in
  (* a, b < m < 2^62, so the sum never wraps. *)
  if Int64.compare s m >= 0 then Int64.sub s m else s

let sub m a b =
  let d = Int64.sub a b in
  if Int64.compare d 0L < 0 then Int64.add d m else d

let neg m a = if Int64.compare a 0L = 0 then 0L else Int64.sub m a

let fast_threshold = Int64.shift_left 1L 50

(* Double-precision quotient estimate; the wrapped residual differs from
   the true one by a small multiple of m, fixed by at most three
   correction steps (valid because m < 2^50 keeps the estimate within 2
   of the true quotient and the residual within int64 range). *)
let[@sknn.allow "no-division"] mul_fast m a b =
  let q = Int64.of_float (Int64.to_float a *. Int64.to_float b /. Int64.to_float m) in
  let r = ref (Int64.sub (Int64.mul a b) (Int64.mul q m)) in
  while Int64.compare !r 0L < 0 do
    r := Int64.add !r m
  done;
  while Int64.compare !r m >= 0 do
    r := Int64.sub !r m
  done;
  !r

(* Shift-and-add ladder: exact for any m < 2^62 at O(63) additions. *)
let mul_slow m a b =
  let result = ref 0L and a = ref a and b = ref b in
  while Int64.compare !b 0L > 0 do
    if Int64.logand !b 1L = 1L then result := add m !result !a;
    a := add m !a !a;
    b := Int64.shift_right_logical !b 1
  done;
  !result

let mul m a b =
  if Int64.compare m fast_threshold < 0 then mul_fast m a b else mul_slow m a b

let pow m b e =
  if Int64.compare e 0L < 0 then invalid_arg "Mod64.pow: negative exponent";
  let result = ref 1L and base = ref (reduce m b) and e = ref e in
  while Int64.compare !e 0L > 0 do
    if Int64.logand !e 1L = 1L then result := mul m !result !base;
    base := mul m !base !base;
    e := Int64.shift_right_logical !e 1
  done;
  !result

let[@sknn.allow "no-division"] inv m a =
  (* Extended Euclid; all intermediates stay below m < 2^62. *)
  let rec go r0 r1 s0 s1 =
    if Int64.compare r1 0L = 0 then
      if Int64.compare r0 1L = 0 then reduce m s0
      else failwith "Mod64.inv: not invertible"
    else begin
      let q = Int64.div r0 r1 in
      go r1 (Int64.sub r0 (Int64.mul q r1)) s1 (Int64.sub s0 (Int64.mul q s1))
    end
  in
  go m (reduce m a) 0L 1L

let centered m x =
  let half = Int64.shift_right_logical m 1 in
  if Int64.compare x half > 0 then Int64.sub x m else x
