(** Offline aggregation of recorded observability output.

    Feed it jsonl trace files ({!Trace.write} with [Jsonl]) and
    flight-recorder dumps ({!Flight.dump}) — any mix, even in one file —
    and read back per-phase latency percentiles (nearest-rank
    p50/p95/p99), bytes per transcript link and noise-margin summaries.
    Backs [sknn report].

    Unparseable lines are counted ({!skipped}) rather than fatal, so a
    report survives a truncated dump. *)

type t

val create : unit -> t
val add_line : t -> string -> unit
val add_channel : t -> in_channel -> unit
val add_file : t -> string -> unit

val lines : t -> int
(** Non-blank lines seen. *)

val skipped : t -> int
(** Lines that parsed to nothing usable. *)

val percentile : float array -> float -> float
(** Nearest-rank percentile over a {e sorted} sample array.  The rank
    is clamped into the sample, so p <= 0 returns the minimum and
    p >= 100 the maximum even for out-of-range p.
    @raise Invalid_argument on an empty array (unreachable through
    {!phases}/{!noise_margins}, which only build non-empty rows). *)

type phase_row = {
  phase : string;
  samples : int;
  p50_s : float;
  p95_s : float;
  p99_s : float;
  max_s : float;
}

type link_row = { link : string; sends : int; bytes : int }

type cost_row = {
  cost_phase : string;
  cost_samples : int;
  predicted_s : float;  (** mean of the samples' model-predicted seconds *)
  measured_s : float;  (** mean of the samples' measured seconds *)
}

type noise_row = {
  noise_label : string;
  noise_samples : int;
  min_bits : float;
  mean_bits : float;
}

type net_link_row = {
  net_profile : string;
  net_link : string;  (** ["party-A<->party-B"]-style key *)
  net_runs : int;
  net_messages : int;  (** per run — constant across runs of one shape *)
  net_bytes : int;
  net_rounds : int;
  net_busy_s : float;  (** means over the runs *)
  net_idle_s : float;
  net_round_p50_s : float;
  net_round_p95_s : float;
}

type net_e2e_row = {
  e2e_profile : string;
  e2e_samples : int;
  e2e_p50_s : float;
  e2e_p95_s : float;
}

val phases : t -> phase_row list
(** Sorted by phase name. *)

val links : t -> link_row list

val attribution : t -> cost_row list
(** Predicted-vs-measured phase seconds from [sknn cost] JSON lines
    ([{"rec":"cost",...}]), sorted by phase name; empty when no cost
    lines were fed in. *)

val noise_margins : t -> noise_row list

val net_timeline : t -> net_link_row list
(** Virtual-network per-link rows from [sknn query --net] dumps
    ([{"rec":"net-link",...}]), keyed (profile, link), sorted; the
    profile is carried by the preceding [{"rec":"net",...}] line of the
    same stream.  Empty when no net lines were fed in. *)

val net_end_to_end : t -> net_e2e_row list
(** Virtual end-to-end latency percentiles per profile. *)

val pp : Format.formatter -> t -> unit
