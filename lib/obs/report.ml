(* Offline aggregation of recorded observability output: jsonl traces
   (Trace.write Jsonl) and flight-recorder dumps (Flight.dump) go in,
   per-phase latency percentiles, bytes-per-link and noise-margin tables
   come out.  The repo carries no JSON dependency, so lines are read
   with a minimal recursive-descent parser covering exactly the grammar
   our own writers emit. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '\000' -> fail "unterminated string"
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then fail "bad \\u escape";
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           pos := !pos + 4;
           Buffer.add_char buf (Char.chr (code land 0xff))
         | _ -> fail "bad escape");
        go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while is_num_char (peek ()) do advance () done;
    if !pos = start then fail "expected number";
    Num (float_of_string (String.sub s start (!pos - start)))
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> Str (parse_string ())
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then (advance (); Obj [])
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ((key, v) :: acc)
          | '}' -> advance (); Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then (advance (); Arr [])
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); elems (v :: acc)
          | ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elems []
      end
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let str_member name j = match member name j with Some (Str s) -> Some s | _ -> None
let num_member name j = match member name j with Some (Num v) -> Some v | _ -> None

(* ------------------------------------------------------------------ *)
(* Accumulator                                                         *)
(* ------------------------------------------------------------------ *)

(* One parsed {"rec":"net-link"} record: the virtual-clock per-link
   numbers of one replayed run. *)
type net_sample = {
  ns_messages : int;
  ns_bytes : int;
  ns_rounds : int;
  ns_busy_s : float;
  ns_idle_s : float;
  ns_p50_s : float;
  ns_p95_s : float;
}

type t = {
  phase_durs : (string, float list ref) Hashtbl.t;
  link_bytes : (string, int ref * int ref) Hashtbl.t; (* sends, bytes *)
  noise : (string, float list ref) Hashtbl.t; (* label -> headroom samples *)
  cost : (string, (float * float) list ref) Hashtbl.t;
      (* phase -> (predicted_s, measured_s) samples from sknn-cost lines *)
  net_e2e : (string, float list ref) Hashtbl.t;
      (* profile -> end-to-end samples from net lines *)
  net_links : (string * string, net_sample list ref) Hashtbl.t;
      (* (profile, link) -> per-run virtual-clock link rows *)
  mutable cur_profile : string;
      (* net-link lines don't repeat the profile; the preceding net line
         of the same stream sets it *)
  mutable lines : int;
  mutable skipped : int;
}

let create () =
  { phase_durs = Hashtbl.create 16;
    link_bytes = Hashtbl.create 16;
    noise = Hashtbl.create 16;
    cost = Hashtbl.create 16;
    net_e2e = Hashtbl.create 4;
    net_links = Hashtbl.create 8;
    cur_profile = "";
    lines = 0;
    skipped = 0 }

let push tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := v :: !r
  | None -> Hashtbl.add tbl key (ref [ v ])

let add_line t line =
  let line = String.trim line in
  if line = "" then ()
  else begin
    t.lines <- t.lines + 1;
    match parse_json line with
    | exception Parse _ -> t.skipped <- t.skipped + 1
    | j -> (
      match str_member "rec" j with
      | Some "flight" -> (
        let name = Option.value ~default:"" (str_member "name" j) in
        match str_member "kind" j with
        | Some "phase-exit" ->
          Option.iter (fun x -> push t.phase_durs name x) (num_member "x" j)
        | Some "send" ->
          Option.iter
            (fun bytes ->
              let sends, total =
                match Hashtbl.find_opt t.link_bytes name with
                | Some p -> p
                | None ->
                  let p = (ref 0, ref 0) in
                  Hashtbl.add t.link_bytes name p;
                  p
              in
              incr sends;
              total := !total + int_of_float bytes)
            (num_member "i" j)
        | Some "noise" ->
          Option.iter (fun x -> push t.noise name x) (num_member "x" j)
        | _ -> () (* header, chunk, marks: nothing to aggregate *))
      | Some "flight-header" -> ()
      | Some "calibration" -> () (* unit-cost table: context, nothing to aggregate *)
      | Some "net" -> (
        match (str_member "profile" j, num_member "end_to_end_s" j) with
        | Some profile, Some e2e ->
          t.cur_profile <- profile;
          push t.net_e2e profile e2e
        | _ -> t.skipped <- t.skipped + 1)
      | Some "net-link" -> (
        let num name = num_member name j in
        match
          (str_member "link" j, num "messages", num "bytes", num "rounds",
           num "busy_s", num "idle_s", num "round_p50_s", num "round_p95_s")
        with
        | Some link, Some msgs, Some bytes, Some rounds, Some busy, Some idle,
          Some p50, Some p95 ->
          push t.net_links (t.cur_profile, link)
            { ns_messages = int_of_float msgs;
              ns_bytes = int_of_float bytes;
              ns_rounds = int_of_float rounds;
              ns_busy_s = busy;
              ns_idle_s = idle;
              ns_p50_s = p50;
              ns_p95_s = p95 }
        | _ -> t.skipped <- t.skipped + 1)
      | Some "cost" -> (
        (* sknn-cost attribution line: predicted vs measured seconds per
           protocol phase, one sample each. *)
        match member "phases" j with
        | Some (Arr entries) ->
          List.iter
            (fun e ->
              match
                (str_member "phase" e, num_member "predicted_s" e, num_member "measured_s" e)
              with
              | Some phase, Some p, Some m -> push t.cost phase (p, m)
              | _ -> ())
            entries
        | _ -> ())
      | Some "cost-net" -> () (* one-line summary; the net records carry the data *)
      | _ -> (
        (* jsonl trace line: every phase-kind span contributes. *)
        match str_member "kind" j, str_member "name" j, num_member "dur_s" j with
        | Some "phase", Some name, Some dur -> push t.phase_durs name dur
        | Some _, _, _ -> ()
        | None, _, _ -> t.skipped <- t.skipped + 1))
  end

let add_channel t ic =
  try
    while true do
      add_line t (input_line ic)
    done
  with End_of_file -> ()

let add_file t path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> add_channel t ic)

let lines t = t.lines
let skipped t = t.skipped

(* Nearest-rank percentile over a sorted sample array. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Report.percentile: empty sample";
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

type phase_row = {
  phase : string;
  samples : int;
  p50_s : float;
  p95_s : float;
  p99_s : float;
  max_s : float;
}

type link_row = { link : string; sends : int; bytes : int }

type cost_row = {
  cost_phase : string;
  cost_samples : int;
  predicted_s : float; (* mean *)
  measured_s : float; (* mean *)
}
type noise_row = { noise_label : string; noise_samples : int; min_bits : float; mean_bits : float }

type net_link_row = {
  net_profile : string;
  net_link : string;
  net_runs : int;
  net_messages : int; (* per run; constant across runs of one shape *)
  net_bytes : int;
  net_rounds : int;
  net_busy_s : float; (* means over runs *)
  net_idle_s : float;
  net_round_p50_s : float;
  net_round_p95_s : float;
}

type net_e2e_row = {
  e2e_profile : string;
  e2e_samples : int;
  e2e_p50_s : float;
  e2e_p95_s : float;
}

let sorted_rows tbl f =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map f

let phases t =
  sorted_rows t.phase_durs (fun (phase, durs) ->
      let a = Array.of_list !durs in
      Array.sort compare a;
      { phase;
        samples = Array.length a;
        p50_s = percentile a 50.0;
        p95_s = percentile a 95.0;
        p99_s = percentile a 99.0;
        max_s = a.(Array.length a - 1) })

let links t =
  sorted_rows t.link_bytes (fun (link, (sends, bytes)) ->
      { link; sends = !sends; bytes = !bytes })

let attribution t =
  sorted_rows t.cost (fun (cost_phase, samples) ->
      let l = !samples in
      let n = List.length l in
      let mean f = List.fold_left (fun a x -> a +. f x) 0.0 l /. float_of_int n in
      { cost_phase;
        cost_samples = n;
        predicted_s = mean fst;
        measured_s = mean snd })

let net_timeline t =
  sorted_rows t.net_links (fun ((net_profile, net_link), samples) ->
      let l = !samples in
      let n = List.length l in
      let mean f = List.fold_left (fun a x -> a +. f x) 0.0 l /. float_of_int n in
      let last = List.hd l in
      { net_profile;
        net_link;
        net_runs = n;
        net_messages = last.ns_messages;
        net_bytes = last.ns_bytes;
        net_rounds = last.ns_rounds;
        net_busy_s = mean (fun x -> x.ns_busy_s);
        net_idle_s = mean (fun x -> x.ns_idle_s);
        net_round_p50_s = mean (fun x -> x.ns_p50_s);
        net_round_p95_s = mean (fun x -> x.ns_p95_s) })

let net_end_to_end t =
  sorted_rows t.net_e2e (fun (e2e_profile, samples) ->
      let a = Array.of_list !samples in
      Array.sort compare a;
      { e2e_profile;
        e2e_samples = Array.length a;
        e2e_p50_s = percentile a 50.0;
        e2e_p95_s = percentile a 95.0 })

let noise_margins t =
  sorted_rows t.noise (fun (noise_label, samples) ->
      let l = !samples in
      let n = List.length l in
      { noise_label;
        noise_samples = n;
        min_bits = List.fold_left Float.min infinity l;
        mean_bits = List.fold_left ( +. ) 0.0 l /. float_of_int n })

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "parsed %d lines (%d skipped)@," t.lines t.skipped;
  (match phases t with
   | [] -> Format.fprintf ppf "no phase samples@,"
   | rows ->
     Format.fprintf ppf "@,%-22s %8s %12s %12s %12s %12s@," "phase" "samples" "p50" "p95"
       "p99" "max";
     List.iter
       (fun r ->
         Format.fprintf ppf "%-22s %8d %11.6fs %11.6fs %11.6fs %11.6fs@," r.phase
           r.samples r.p50_s r.p95_s r.p99_s r.max_s)
       rows);
  (match links t with
   | [] -> ()
   | rows ->
     Format.fprintf ppf "@,%-28s %8s %14s@," "link" "sends" "bytes";
     List.iter
       (fun r -> Format.fprintf ppf "%-28s %8d %14d@," r.link r.sends r.bytes)
       rows);
  (match attribution t with
   | [] -> ()
   | rows ->
     Format.fprintf ppf "@,%-22s %8s %12s %12s %8s@," "cost attribution" "samples"
       "predicted" "measured" "ratio";
     List.iter
       (fun r ->
         Format.fprintf ppf "%-22s %8d %11.6fs %11.6fs " r.cost_phase r.cost_samples
           r.predicted_s r.measured_s;
         if r.predicted_s > 0.0 then
           Format.fprintf ppf "%7.2fx@," (r.measured_s /. r.predicted_s)
         else Format.fprintf ppf "%8s@," "-")
       rows);
  (match net_timeline t with
   | [] -> ()
   | rows ->
     Format.fprintf ppf "@,%-10s %-24s %5s %5s %10s %7s %12s %12s %11s %11s@,"
       "network" "link" "runs" "msgs" "bytes" "rounds" "busy" "idle" "round p50"
       "round p95";
     List.iter
       (fun r ->
         Format.fprintf ppf
           "%-10s %-24s %5d %5d %10d %7d %11.6fs %11.6fs %10.6fs %10.6fs@,"
           r.net_profile r.net_link r.net_runs r.net_messages r.net_bytes
           r.net_rounds r.net_busy_s r.net_idle_s r.net_round_p50_s
           r.net_round_p95_s)
       rows;
     List.iter
       (fun r ->
         Format.fprintf ppf "%-10s end-to-end: %d run%s, p50 %.6fs, p95 %.6fs@,"
           r.e2e_profile r.e2e_samples
           (if r.e2e_samples = 1 then "" else "s")
           r.e2e_p50_s r.e2e_p95_s)
       (net_end_to_end t));
  (match noise_margins t with
   | [] -> ()
   | rows ->
     Format.fprintf ppf "@,%-28s %8s %10s %10s@," "noise headroom" "samples" "min" "mean";
     List.iter
       (fun r ->
         Format.fprintf ppf "%-28s %8d %9.1fb %9.1fb@," r.noise_label r.noise_samples
           r.min_bits r.mean_bits)
       rows);
  Format.fprintf ppf "@]"
