module Timer = Util.Timer

type kind = Phase_enter | Phase_exit | Noise | Send | Chunk | Warning | Mark

let kind_code = function
  | Phase_enter -> 0
  | Phase_exit -> 1
  | Noise -> 2
  | Send -> 3
  | Chunk -> 4
  | Warning -> 5
  | Mark -> 6

let kind_of_code = function
  | 0 -> Phase_enter
  | 1 -> Phase_exit
  | 2 -> Noise
  | 3 -> Send
  | 4 -> Chunk
  | 5 -> Warning
  | _ -> Mark

let kind_name = function
  | Phase_enter -> "phase-enter"
  | Phase_exit -> "phase-exit"
  | Noise -> "noise"
  | Send -> "send"
  | Chunk -> "chunk"
  | Warning -> "warning"
  | Mark -> "mark"

type event = { ts : float; kind : kind; name : string; i : int; j : int; x : float }

(* Struct-of-arrays ring buffer: recording one event touches six flat
   array slots and bumps a counter — no allocation besides the name
   string the caller already holds, no locks (events are recorded only
   from the orchestrating domain, like trace spans). *)
type t = {
  cap : int;
  epoch : float;
  e_ts : float array;
  e_kind : int array;
  e_name : string array;
  e_i : int array;
  e_j : int array;
  e_x : float array;
  mutable next : int; (* total events ever recorded *)
}

let default_capacity = 8192

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Flight.create: capacity must be positive";
  { cap = capacity;
    epoch = Timer.counter ();
    e_ts = Array.make capacity 0.0;
    e_kind = Array.make capacity 0;
    e_name = Array.make capacity "";
    e_i = Array.make capacity 0;
    e_j = Array.make capacity 0;
    e_x = Array.make capacity 0.0;
    next = 0 }

let capacity t = t.cap
let total t = t.next
let dropped t = Stdlib.max 0 (t.next - t.cap)

let record t kind ?(name = "") ?(i = 0) ?(j = 0) ?(x = 0.0) () =
  let s = t.next mod t.cap in
  t.e_ts.(s) <- Timer.counter () -. t.epoch;
  t.e_kind.(s) <- kind_code kind;
  t.e_name.(s) <- name;
  t.e_i.(s) <- i;
  t.e_j.(s) <- j;
  t.e_x.(s) <- x;
  t.next <- t.next + 1

let clear t =
  t.next <- 0;
  Array.fill t.e_name 0 t.cap ""

let events t =
  let live = Stdlib.min t.next t.cap in
  let first = t.next - live in
  List.init live (fun k ->
      let s = (first + k) mod t.cap in
      { ts = t.e_ts.(s);
        kind = kind_of_code t.e_kind.(s);
        name = t.e_name.(s);
        i = t.e_i.(s);
        j = t.e_j.(s);
        x = t.e_x.(s) })

(* ------------------------------------------------------------------ *)
(* Global default instance                                             *)
(* ------------------------------------------------------------------ *)

let env_capacity () =
  match Sys.getenv_opt "SKNN_FLIGHT_CAP" with
  | None -> default_capacity
  | Some s -> ( match int_of_string_opt s with Some c when c > 0 -> c | _ -> default_capacity)

let env_enabled () =
  match Sys.getenv_opt "SKNN_FLIGHT" with
  | Some ("0" | "off" | "false" | "no") -> false
  | _ -> true

let default_instance = lazy (create ~capacity:(env_capacity ()) ())
let default () = if env_enabled () then Some (Lazy.force default_instance) else None

(* ------------------------------------------------------------------ *)
(* Dump                                                                *)
(* ------------------------------------------------------------------ *)

let buf_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSONL: one header line describing the buffer, then one line per live
   event oldest-first, each tagged with a "rec" discriminator so flight
   dumps and jsonl traces can share a file or a parser. *)
let dump ?(run = []) t oc =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"rec\":\"flight-header\"";
  Buffer.add_string buf (Printf.sprintf ",\"capacity\":%d" t.cap);
  Buffer.add_string buf (Printf.sprintf ",\"total\":%d" (total t));
  Buffer.add_string buf (Printf.sprintf ",\"dropped\":%d" (dropped t));
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ',';
      buf_json_string buf k;
      Buffer.add_char buf ':';
      buf_json_string buf v)
    run;
  Buffer.add_string buf "}\n";
  Buffer.output_buffer oc buf;
  List.iter
    (fun e ->
      Buffer.clear buf;
      Buffer.add_string buf "{\"rec\":\"flight\",\"ts\":";
      Buffer.add_string buf (Printf.sprintf "%.9f" e.ts);
      Buffer.add_string buf ",\"kind\":";
      buf_json_string buf (kind_name e.kind);
      Buffer.add_string buf ",\"name\":";
      buf_json_string buf e.name;
      Buffer.add_string buf (Printf.sprintf ",\"i\":%d,\"j\":%d,\"x\":%.9g}\n" e.i e.j e.x);
      Buffer.output_buffer oc buf)
    (events t)

let pp ppf t =
  Format.fprintf ppf "@[<v>flight: %d/%d events (%d dropped)@," (Stdlib.min t.next t.cap)
    t.cap (dropped t);
  List.iter
    (fun e ->
      Format.fprintf ppf "%12.6f %-12s %-28s i=%d j=%d x=%g@," e.ts (kind_name e.kind)
        e.name e.i e.j e.x)
    (events t);
  Format.fprintf ppf "@]"
