type value =
  | Int of int
  | Float of float
  | Ints of int array
  | Int64s of int64 array
  | Str of string

type entry = { seq : int; party : string; phase : string; label : string; value : value }

type t = { mutable rev_entries : entry list; mutable next : int }

let create () = { rev_entries = []; next = 0 }

let observe t ~party ~phase ~label value =
  t.rev_entries <- { seq = t.next; party; phase; label; value } :: t.rev_entries;
  t.next <- t.next + 1

let entries t = List.rev t.rev_entries

let for_party t ~party = List.filter (fun e -> e.party = party) (entries t)

let labels_for t ~party =
  List.sort_uniq compare (List.map (fun e -> e.label) (for_party t ~party))

let value_of t ~party ~label =
  (* Latest observation wins: rev_entries is newest-first. *)
  List.find_map
    (fun e -> if e.party = party && e.label = label then Some e.value else None)
    t.rev_entries

let pp_value ppf = function
  | Int i -> Format.fprintf ppf "%d" i
  | Float f -> Format.fprintf ppf "%.6g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Ints a ->
    Format.fprintf ppf "[%s]"
      (String.concat ";" (Array.to_list (Array.map string_of_int a)))
  | Int64s a ->
    Format.fprintf ppf "[%s]"
      (String.concat ";" (Array.to_list (Array.map Int64.to_string a)))

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf ppf "%3d %-10s %-18s %-28s %a@," e.seq e.party e.phase e.label
        pp_value e.value)
    (entries t);
  Format.fprintf ppf "@]"
