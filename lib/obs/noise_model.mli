(** Log2-domain noise-growth forecaster for the BGV chain.

    A pure replica of the scheme's tracked noise bound over plain
    numeric parameters, so worst-case end-of-circuit headroom can be
    predicted {e before} any ciphertext exists — at [Party_a.prepare]
    time — and a deployment whose parameter chain is too shallow for its
    circuit warns instead of failing mid-query.  Every formula mirrors
    [lib/bgv/bgv.ml]'s bookkeeping (the test suite cross-checks the two
    against live ciphertexts). *)

type params = {
  n : int;  (** ring degree *)
  t_bits : float;  (** log2 of the plaintext modulus *)
  moduli_bits : float array;  (** log2 of each RNS chain prime, in order *)
  eta : float;  (** CBD noise parameter *)
}

type state = {
  level : int;  (** active RNS primes *)
  degree : int;  (** ciphertext degree (components − 1) *)
  bits : float;  (** log2 bound on the decryption noise term *)
}

val log2_add : float -> float -> float
val fresh_noise_bits : params -> float
val switch_floor_bits : params -> degree:int -> float
val log2_q : params -> level:int -> float
val chain_length : params -> int

val headroom : params -> state -> float
(** [log2(Q_level/2) − bits]; decryption is guaranteed while positive. *)

val fresh : params -> state
val fresh_at : params -> level:int -> state
val add : state -> state -> state
val sub : state -> state -> state
val add_plain : params -> state -> state
val mul_plain : params -> state -> state

val mul_scalar : state -> bits:float -> state
(** Scalar of magnitude ≤ [2^bits]. *)

val mul : params -> state -> state -> state

val mul_sum : params -> state -> state -> terms:int -> state
(** Inner product of [terms] uniform worst-case pairs.
    @raise Invalid_argument if [terms < 1]. *)

val relinearize : params -> digit_bits:int -> state -> state
val modswitch : params -> state -> state
val rescale_to_floor : params -> state -> state
val truncate : state -> level:int -> state

(** {1 Forecast traces} *)

type step = { op : string; s_level : int; s_bits : float; s_headroom : float }

type report = {
  steps : step list;  (** in circuit order *)
  min_headroom_bits : float;
  margin_bits : float;
  below_margin : bool;
}

type trace

val start : params -> trace

val step : trace -> string -> state -> state
(** Record the state after [op] and return it unchanged, so circuit
    composition reads as a pipeline. *)

val report : ?margin_bits:float -> trace -> report
(** [margin_bits] defaults to 4. *)

val pp_report : Format.formatter -> report -> unit
