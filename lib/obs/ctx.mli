(** Observability context: the bundle the protocol threads through the
    stack.  One value carries the four channels — {!Trace} spans,
    a {!Metrics} registry, an {!Audit} leakage log and a {!Flight}
    recorder — each optional, so callers pass [?obs] once instead of
    four arguments.

    {!disabled} (the default everywhere) short-circuits every helper to
    a branch or two; the hot path pays nothing when observability is
    off. *)

type t

val disabled : t
(** No trace, no metrics, no audit, no flight: every helper is a no-op. *)

val create :
  ?trace:Trace.t -> ?metrics:Metrics.t -> ?audit:Audit.t -> ?flight:Flight.t -> unit -> t

val trace : t -> Trace.t
val metrics : t -> Metrics.t option
val audit_channel : t -> Audit.t option
val flight : t -> Flight.t option
val is_disabled : t -> bool

val with_span :
  t ->
  ?kind:Trace.kind ->
  ?counters:(string * Util.Counters.t) list ->
  ?args:(string * string) list ->
  string ->
  (unit -> 'a) ->
  'a
(** {!Trace.with_span} on the context's trace.  [Phase]/[Root] spans
    additionally record [Phase_enter]/[Phase_exit] flight events (the
    exit carries the duration, and is recorded even on raise). *)

val observe_phase : t -> string -> float -> unit
(** Record a phase latency into the histogram [phase.<name>.seconds]
    (no-op without a metrics registry). *)

val audit : t -> party:string -> phase:string -> label:string -> Audit.value -> unit
(** Append to the leakage-audit channel (no-op without one). *)

val observe_noise : t -> name:string -> level:int -> budget_bits:float -> unit
(** Record a BGV headroom sample as a [Noise] flight event (no-op
    without a flight recorder). *)

val record_send :
  t -> ?seq:int -> ?arrival_s:float -> sender:string -> receiver:string ->
  bytes:int -> unit -> unit
(** Record a transcript send as a ["sender->receiver"] [Send] flight
    event (no-op without a flight recorder).  [seq] is the transcript
    sequence number and [arrival_s] the virtual arrival time when a
    network profile drives a clock cursor alongside the run. *)

val warn : t -> name:string -> ?x:float -> unit -> unit
(** Record a [Warning] flight event (no-op without a flight recorder). *)

val with_pool_chunks : t -> ?label:string -> (unit -> 'a) -> 'a
(** Run [f] with a {!Util.Pool.with_chunk_observer} installed: each
    chunk of each pool call inside [f] becomes a [Chunk] span named
    ["<label>[lo,hi)"] and a [Chunk] flight event, and — when metrics
    are attached — feeds the histogram [pool.<label>.chunk_seconds] and
    the utilization gauge [pool.<label>.utilization].  Chunk stats are
    replayed after the pool join in worker order, so installation is
    safe on the hot path.  No-op when trace, metrics and flight are all
    absent. *)
