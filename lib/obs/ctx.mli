(** Observability context: the bundle the protocol threads through the
    stack.  One value carries the three channels — {!Trace} spans,
    a {!Metrics} registry and a {!Audit} leakage log — each optional,
    so callers pass [?obs] once instead of three arguments.

    {!disabled} (the default everywhere) short-circuits every helper to
    a branch or two; the hot path pays nothing when observability is
    off. *)

type t

val disabled : t
(** No trace, no metrics, no audit: every helper is a no-op. *)

val create : ?trace:Trace.t -> ?metrics:Metrics.t -> ?audit:Audit.t -> unit -> t

val trace : t -> Trace.t
val metrics : t -> Metrics.t option
val audit_channel : t -> Audit.t option
val is_disabled : t -> bool

val with_span :
  t ->
  ?kind:Trace.kind ->
  ?counters:(string * Util.Counters.t) list ->
  ?args:(string * string) list ->
  string ->
  (unit -> 'a) ->
  'a
(** {!Trace.with_span} on the context's trace. *)

val observe_phase : t -> string -> float -> unit
(** Record a phase latency into the histogram [phase.<name>.seconds]
    (no-op without a metrics registry). *)

val audit : t -> party:string -> phase:string -> label:string -> Audit.value -> unit
(** Append to the leakage-audit channel (no-op without one). *)

val with_pool_chunks : t -> ?label:string -> (unit -> 'a) -> 'a
(** Run [f] with a {!Util.Pool.with_chunk_observer} installed: each
    chunk of each pool call inside [f] becomes a [Chunk] span named
    ["<label>[lo,hi)"], and — when metrics are attached — feeds the
    histogram [pool.<label>.chunk_seconds] and the utilization gauge
    [pool.<label>.utilization].  Chunk stats are replayed after the
    pool join in worker order, so installation is safe on the hot
    path.  No-op when both trace and metrics are absent. *)
