(* Log2-domain replica of Bgv's noise bookkeeping, over plain numeric
   parameters so it can run before any ciphertext exists (and without
   this library depending on the scheme).  Every formula mirrors the
   tracked bound in lib/bgv/bgv.ml; test_obs cross-checks the two. *)

type params = {
  n : int;              (* ring degree *)
  t_bits : float;       (* log2 of the plaintext modulus *)
  moduli_bits : float array; (* log2 of each RNS chain prime, in order *)
  eta : float;          (* CBD noise parameter *)
}

type state = {
  level : int;   (* active RNS primes *)
  degree : int;  (* ciphertext degree (components - 1) *)
  bits : float;  (* log2 bound on the decryption noise term *)
}

let log2 x = log x /. log 2.0

let log2_add a b =
  let hi = Float.max a b and lo = Float.min a b in
  hi +. log2 (1.0 +. (2.0 ** (lo -. hi)))

let log2_n p = log2 (float_of_int p.n)

let fresh_noise_bits p =
  let n = float_of_int p.n in
  p.t_bits +. log2 (0.5 +. (p.eta *. ((2.0 *. n) +. 1.0)))

let switch_floor_bits p ~degree =
  let n = float_of_int p.n in
  let rec sum acc i = if i > degree then acc else sum (acc +. (n ** float_of_int i)) (i + 1) in
  p.t_bits -. 1.0 +. log2 (sum 0.0 0)

let log2_q p ~level =
  let acc = ref 0.0 in
  for i = 0 to Stdlib.min level (Array.length p.moduli_bits) - 1 do
    acc := !acc +. p.moduli_bits.(i)
  done;
  !acc

let headroom p st = log2_q p ~level:st.level -. 1.0 -. st.bits

let chain_length p = Array.length p.moduli_bits

let fresh_at p ~level = { level; degree = 1; bits = fresh_noise_bits p }
let fresh p = fresh_at p ~level:(chain_length p)

let add a b =
  { level = Stdlib.min a.level b.level;
    degree = Stdlib.max a.degree b.degree;
    bits = log2_add a.bits b.bits }

let sub = add
let add_plain p st = { st with bits = log2_add st.bits (p.t_bits -. 1.0) }
let mul_plain p st = { st with bits = st.bits +. log2_n p +. p.t_bits -. 1.0 }
let mul_scalar st ~bits = { st with bits = st.bits +. Float.max 0.0 bits }

let mul p a b =
  { level = Stdlib.min a.level b.level;
    degree = a.degree + b.degree;
    bits = log2_n p +. a.bits +. b.bits }

(* Σᵢ aᵢ·bᵢ over m uniform terms: one product's bits plus log2 m (the
   exact term-order log2_add fold is bounded by this and equals it for
   identical terms, which is the worst case we forecast). *)
let mul_sum p a b ~terms =
  if terms < 1 then invalid_arg "Noise_model.mul_sum: terms must be positive";
  let one = mul p a b in
  { one with bits = one.bits +. log2 (float_of_int terms) }

let relinearize p ~digit_bits st =
  let q_bits = int_of_float (ceil (log2_q p ~level:st.level)) in
  let ndigits = Stdlib.max 1 ((q_bits + digit_bits - 1) / digit_bits) in
  let added =
    p.t_bits +. log2 (float_of_int ndigits) +. log2_n p
    +. float_of_int digit_bits +. log2 p.eta
  in
  { st with degree = 1; bits = log2_add st.bits added }

let modswitch p st =
  if st.level <= 1 then invalid_arg "Noise_model.modswitch: already at the last level";
  { st with
    level = st.level - 1;
    bits =
      log2_add
        (st.bits -. p.moduli_bits.(st.level - 1))
        (switch_floor_bits p ~degree:st.degree) }

let rescale_to_floor p st =
  let rec go st =
    if st.level <= 1 then st
    else
      let predicted =
        log2_add
          (st.bits -. p.moduli_bits.(st.level - 1))
          (switch_floor_bits p ~degree:st.degree)
      in
      if predicted < st.bits -. 0.5 then go (modswitch p st) else st
  in
  go st

let truncate st ~level =
  if level < 1 || level > st.level then invalid_arg "Noise_model.truncate: bad level";
  { st with level }

(* ------------------------------------------------------------------ *)
(* Forecast traces                                                     *)
(* ------------------------------------------------------------------ *)

type step = { op : string; s_level : int; s_bits : float; s_headroom : float }

type report = {
  steps : step list;
  min_headroom_bits : float;
  margin_bits : float;
  below_margin : bool;
}

type trace = { t_params : params; mutable rev_steps : step list }

let start p = { t_params = p; rev_steps = [] }

let step tr op st =
  tr.rev_steps <-
    { op; s_level = st.level; s_bits = st.bits; s_headroom = headroom tr.t_params st }
    :: tr.rev_steps;
  st

let report ?(margin_bits = 4.0) tr =
  let steps = List.rev tr.rev_steps in
  let min_headroom_bits =
    List.fold_left (fun m s -> Float.min m s.s_headroom) infinity steps
  in
  { steps; min_headroom_bits; margin_bits; below_margin = min_headroom_bits < margin_bits }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>noise forecast (margin %.1f bits):@," r.margin_bits;
  List.iter
    (fun s ->
      Format.fprintf ppf "  %-28s level=%-2d noise=%7.1f headroom=%7.1f@," s.op s.s_level
        s.s_bits s.s_headroom)
    r.steps;
  Format.fprintf ppf "  min headroom %.1f bits — %s@]" r.min_headroom_bits
    (if r.below_margin then "BELOW MARGIN" else "ok")
