(** Hierarchical spans over the protocol stack.

    A trace is a tree of timed spans: protocol phases at the top,
    entity sub-stages below them, and {!Util.Pool} chunk executions as
    leaves.  Each span records wall time (via the monotonic-friendly
    {!Util.Timer.counter}) plus the delta of every party
    {!Util.Counters.t} it was asked to watch.

    {b Determinism.}  Spans are only ever recorded in the orchestrating
    domain: worker domains never touch the trace (pool chunks are
    replayed to the observer after the join, in worker order — see
    {!Util.Pool.with_chunk_observer}).  Consequently the span tree
    restricted to non-[Chunk] spans — names, nesting, argument lists
    and counter deltas — is bit-identical for every job count, the
    PR 1 invariant extended to tracing.  Chunk spans necessarily
    reflect the actual chunking ([--jobs N] produces N of them per pool
    call).

    {b Cost.}  A disabled trace ({!disabled}) reduces every operation
    to a single branch; the protocol's hot path is unaffected. *)

type kind = Root | Phase | Stage | Chunk

val kind_name : kind -> string

type span = {
  name : string;
  kind : kind;
  start_s : float;  (** seconds since the trace epoch *)
  dur_s : float;
  deltas : (string * Util.Counters.t) list;
      (** per-owner counter deltas over the span, zero deltas omitted *)
  args : (string * string) list;
  children : span list;  (** in completion order *)
}

type t

val disabled : t
(** The null sink: every call is a no-op and [f] runs undecorated. *)

val create : unit -> t
val is_enabled : t -> bool

val with_span :
  t ->
  ?kind:kind ->
  ?counters:(string * Util.Counters.t) list ->
  ?args:(string * string) list ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span t name f] runs [f] inside a fresh span nested under the
    innermost open span.  [counters] are snapshotted on entry and
    diffed on exit.  The span is recorded even if [f] raises (covering
    the time until the raise). *)

val add_complete :
  t ->
  ?kind:kind ->
  ?args:(string * string) list ->
  name:string ->
  start:float ->
  dur:float ->
  unit ->
  unit
(** Attach an already-timed span (e.g. a pool chunk) as a child of the
    innermost open span.  [start] is a {!Util.Timer.counter} reading. *)

val roots : t -> span list
(** Completed top-level spans, in completion order. *)

(** {1 Wire events}

    The virtual-time track: one event per transcript message, stamped by
    a [Netsim.Clock] replay.  Start/duration are {e virtual} seconds —
    the chrome sink renders them as a separate "virtual network" process
    with one lane per link, beside the per-party compute lanes. *)

type wire = {
  w_link : string;  (** display key, e.g. ["party-A<->party-B"] *)
  w_label : string;  (** the transcript message label *)
  w_start_s : float;  (** virtual departure *)
  w_dur_s : float;  (** departure → arrival *)
  w_args : (string * string) list;
}

val add_wire :
  t ->
  link:string ->
  label:string ->
  ?args:(string * string) list ->
  start:float ->
  dur:float ->
  unit ->
  unit

val wire : t -> wire list
(** Recorded wire events, oldest first. *)

(** {1 Sinks} *)

type format =
  | Pretty  (** indented console tree *)
  | Jsonl   (** one JSON object per span per line, pre-order with depth *)
  | Chrome
      (** Chrome [trace_event] JSON — load in Perfetto or chrome://tracing.
          Spans with a ["party"] arg get their own thread lane (children
          inherit), so phases read as client / A-compute / B-compute
          tracks; wire events render as a separate "virtual network"
          process with one lane per link. *)

val format_of_string : string -> (format, string) result
val write : t -> format -> out_channel -> unit
val pp_tree : Format.formatter -> t -> unit

val indexed_path : string -> int -> string
(** [indexed_path path i] is [path] for [i = 0]; otherwise the index is
    inserted before the basename's extension (["t.json"] → ["t.3.json"];
    extensionless paths get [".3"] appended).  [sknn query --repeat N]
    writes run [i]'s trace to [indexed_path file i]. *)
