module Counters = Util.Counters
module Timer = Util.Timer

type kind = Root | Phase | Stage | Chunk

let kind_name = function
  | Root -> "root"
  | Phase -> "phase"
  | Stage -> "stage"
  | Chunk -> "chunk"

type span = {
  name : string;
  kind : kind;
  start_s : float;
  dur_s : float;
  deltas : (string * Counters.t) list;
  args : (string * string) list;
  children : span list;
}

type frame = {
  f_name : string;
  f_kind : kind;
  f_start : float;
  f_args : (string * string) list;
  f_snaps : (string * Counters.t * Counters.t) list; (* owner, live, snapshot *)
  mutable f_children : span list; (* reversed *)
}

(* A wire event: one transcript message on the virtual-time axis, as
   replayed by Netsim.Clock.  Start/duration are virtual seconds, not
   wall time — the chrome sink renders them on their own process so the
   two axes are never mistaken for one. *)
type wire = {
  w_link : string;
  w_label : string;
  w_start_s : float;
  w_dur_s : float;
  w_args : (string * string) list;
}

type t = {
  enabled : bool;
  epoch : float;
  mutable stack : frame list;
  mutable rev_roots : span list;
  mutable rev_wire : wire list;
}

let disabled =
  { enabled = false; epoch = 0.0; stack = []; rev_roots = []; rev_wire = [] }

let create () =
  { enabled = true; epoch = Timer.counter (); stack = []; rev_roots = [];
    rev_wire = [] }

let is_enabled t = t.enabled

let attach t span =
  match t.stack with
  | f :: _ -> f.f_children <- span :: f.f_children
  | [] -> t.rev_roots <- span :: t.rev_roots

let with_span t ?(kind = Stage) ?(counters = []) ?(args = []) name f =
  if not t.enabled then f ()
  else begin
    let frame =
      { f_name = name; f_kind = kind; f_start = Timer.counter (); f_args = args;
        f_snaps = List.map (fun (owner, c) -> (owner, c, Counters.copy c)) counters;
        f_children = [] }
    in
    t.stack <- frame :: t.stack;
    Fun.protect
      ~finally:(fun () ->
        match t.stack with
        | top :: rest when top == frame ->
          t.stack <- rest;
          let deltas =
            List.filter_map
              (fun (owner, live, snap) ->
                let d = Counters.diff live snap in
                if Counters.is_zero d then None else Some (owner, d))
              frame.f_snaps
          in
          attach t
            { name = frame.f_name; kind = frame.f_kind;
              start_s = frame.f_start -. t.epoch;
              dur_s = Timer.counter () -. frame.f_start;
              deltas; args = frame.f_args;
              children = List.rev frame.f_children }
        | _ -> () (* unbalanced close: drop the span rather than corrupt the tree *))
      f
  end

let add_complete t ?(kind = Chunk) ?(args = []) ~name ~start ~dur () =
  if t.enabled then
    attach t
      { name; kind; start_s = start -. t.epoch; dur_s = dur; deltas = []; args;
        children = [] }

let roots t = List.rev t.rev_roots

let add_wire t ~link ~label ?(args = []) ~start ~dur () =
  if t.enabled then
    t.rev_wire <-
      { w_link = link; w_label = label; w_start_s = start; w_dur_s = dur;
        w_args = args }
      :: t.rev_wire

let wire t = List.rev t.rev_wire

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

type format = Pretty | Jsonl | Chrome

let format_of_string = function
  | "pretty" | "tree" -> Ok Pretty
  | "jsonl" -> Ok Jsonl
  | "chrome" | "trace_event" | "perfetto" -> Ok Chrome
  | other -> Error (Printf.sprintf "unknown trace format %S (pretty | jsonl | chrome)" other)

let buf_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let buf_fields buf fields =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, add_v) ->
      if i > 0 then Buffer.add_char buf ',';
      buf_json_string buf k;
      Buffer.add_char buf ':';
      add_v buf)
    fields;
  Buffer.add_char buf '}'

let buf_args buf args = buf_fields buf (List.map (fun (k, v) -> (k, fun b -> buf_json_string b v)) args)

let buf_counters buf deltas =
  buf_fields buf
    (List.map
       (fun (owner, d) ->
         ( owner,
           fun b ->
             buf_fields b
               (List.filter_map
                  (fun (k, v) ->
                    if v = 0 then None
                    else Some (k, fun b -> Buffer.add_string b (string_of_int v)))
                  (Counters.to_list d)) ))
       deltas)

(* One JSON object per span per line, pre-order, nesting encoded by
   [depth]: greppable and parseable line by line. *)
let write_jsonl t oc =
  let buf = Buffer.create 256 in
  let rec line depth s =
    Buffer.clear buf;
    buf_fields buf
      [ ("depth", fun b -> Buffer.add_string b (string_of_int depth));
        ("name", fun b -> buf_json_string b s.name);
        ("kind", fun b -> buf_json_string b (kind_name s.kind));
        ("start_s", fun b -> Buffer.add_string b (Printf.sprintf "%.9f" s.start_s));
        ("dur_s", fun b -> Buffer.add_string b (Printf.sprintf "%.9f" s.dur_s));
        ("args", fun b -> buf_args b s.args);
        ("counters", fun b -> buf_counters b s.deltas) ];
    Buffer.add_char buf '\n';
    Buffer.output_buffer oc buf;
    List.iter (line (depth + 1)) s.children
  in
  List.iter (line 0) (roots t)

(* Chrome trace_event JSON (complete "X" events), loadable in Perfetto
   and chrome://tracing.  Timestamps are microseconds from the trace
   epoch.  Spans with a ["party"] arg (the protocol phases) get their own
   thread lane, children inherit their parent's lane, and everything else
   runs on the orchestrator lane — so the timeline reads as client /
   A-compute / B-compute tracks.  Wire events recorded via [add_wire]
   render as a separate "virtual network" process (their time axis is the
   Clock's virtual seconds, not wall time). *)
let orchestrator_lane = "orchestrator"

let span_lanes t =
  let rev_lanes = ref [ orchestrator_lane ] in
  let rec collect inherited s =
    let lane =
      match List.assoc_opt "party" s.args with Some p -> p | None -> inherited
    in
    if not (List.mem lane !rev_lanes) then rev_lanes := lane :: !rev_lanes;
    List.iter (collect lane) s.children
  in
  List.iter (collect orchestrator_lane) (roots t);
  List.rev !rev_lanes

let write_chrome t oc =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let emit fields =
    if !first then first := false else Buffer.add_char buf ',';
    buf_fields buf fields
  in
  let meta ~pid ~tid ~event ~name =
    emit
      [ ("name", fun b -> buf_json_string b event);
        ("ph", fun b -> buf_json_string b "M");
        ("pid", fun b -> Buffer.add_string b (string_of_int pid));
        ("tid", fun b -> Buffer.add_string b (string_of_int tid));
        ("args", fun b -> buf_args b [ ("name", name) ]) ]
  in
  let lanes = span_lanes t in
  let tid_of lane =
    let rec go i = function
      | [] -> 1
      | l :: _ when String.equal l lane -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 1 lanes
  in
  meta ~pid:1 ~tid:0 ~event:"process_name" ~name:"sknn";
  List.iteri
    (fun i lane -> meta ~pid:1 ~tid:(i + 1) ~event:"thread_name" ~name:lane)
    lanes;
  let rec event inherited s =
    let lane =
      match List.assoc_opt "party" s.args with Some p -> p | None -> inherited
    in
    let args =
      s.args
      @ List.concat_map
          (fun (owner, d) ->
            List.filter_map
              (fun (k, v) ->
                if v = 0 then None else Some (owner ^ "." ^ k, string_of_int v))
              (Counters.to_list d))
          s.deltas
    in
    emit
      [ ("name", fun b -> buf_json_string b s.name);
        ("cat", fun b -> buf_json_string b (kind_name s.kind));
        ("ph", fun b -> buf_json_string b "X");
        ("ts", fun b -> Buffer.add_string b (Printf.sprintf "%.3f" (s.start_s *. 1e6)));
        ("dur", fun b -> Buffer.add_string b (Printf.sprintf "%.3f" (s.dur_s *. 1e6)));
        ("pid", fun b -> Buffer.add_string b "1");
        ("tid", fun b -> Buffer.add_string b (string_of_int (tid_of lane)));
        ("args", fun b -> buf_args b args) ];
    List.iter (event lane) s.children
  in
  List.iter (event orchestrator_lane) (roots t);
  (match wire t with
   | [] -> ()
   | ws ->
     let rev_links = ref [] in
     List.iter
       (fun w -> if not (List.mem w.w_link !rev_links) then rev_links := w.w_link :: !rev_links)
       ws;
     let links = List.rev !rev_links in
     let wire_tid link =
       let rec go i = function
         | [] -> 1
         | l :: _ when String.equal l link -> i
         | _ :: rest -> go (i + 1) rest
       in
       go 1 links
     in
     meta ~pid:2 ~tid:0 ~event:"process_name" ~name:"virtual network";
     List.iteri
       (fun i link ->
         meta ~pid:2 ~tid:(i + 1) ~event:"thread_name" ~name:("wire " ^ link))
       links;
     List.iter
       (fun w ->
         emit
           [ ("name", fun b -> buf_json_string b w.w_label);
             ("cat", fun b -> buf_json_string b "wire");
             ("ph", fun b -> buf_json_string b "X");
             ( "ts",
               fun b -> Buffer.add_string b (Printf.sprintf "%.3f" (w.w_start_s *. 1e6)) );
             ( "dur",
               fun b -> Buffer.add_string b (Printf.sprintf "%.3f" (w.w_dur_s *. 1e6)) );
             ("pid", fun b -> Buffer.add_string b "2");
             ("tid", fun b -> Buffer.add_string b (string_of_int (wire_tid w.w_link)));
             ("args", fun b -> buf_args b w.w_args) ])
       ws);
  Buffer.add_string buf "]}\n";
  Buffer.output_buffer oc buf

let pp_span_counters ppf deltas =
  List.iter
    (fun (owner, d) ->
      let nonzero = List.filter (fun (_, v) -> v <> 0) (Counters.to_list d) in
      Format.fprintf ppf "  [%s:%s]" owner
        (String.concat ""
           (List.map (fun (k, v) -> Printf.sprintf " %s=%d" k v) nonzero)))
    deltas

let pp_tree ppf t =
  let rec pp depth s =
    Format.fprintf ppf "%s%s %a%a%s@,"
      (String.make (2 * depth) ' ')
      s.name Timer.pp_duration s.dur_s pp_span_counters s.deltas
      (match s.args with
       | [] -> ""
       | args ->
         " {" ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) args) ^ "}");
    List.iter (pp (depth + 1)) s.children
  in
  Format.fprintf ppf "@[<v>";
  List.iter (pp 0) (roots t);
  Format.fprintf ppf "@]"

(* "trace.json" → "trace.3.json" (the index lands before the extension
   when the basename has one, after the path otherwise).  Repeated runs
   write one file each instead of clobbering the first. *)
let indexed_path path i =
  if i = 0 then path
  else
    let ext_dot =
      match String.rindex_opt path '.' with
      | None -> None
      | Some d -> (
        match String.rindex_opt path '/' with
        | Some s when s > d -> None
        | _ -> Some d)
    in
    match ext_dot with
    | Some d ->
      Printf.sprintf "%s.%d%s" (String.sub path 0 d) i
        (String.sub path d (String.length path - d))
    | None -> Printf.sprintf "%s.%d" path i

let write t format oc =
  match format with
  | Jsonl -> write_jsonl t oc
  | Chrome -> write_chrome t oc
  | Pretty ->
    let ppf = Format.formatter_of_out_channel oc in
    Format.fprintf ppf "%a@." pp_tree t
