(** Metrics registry: monotonic counters, gauges and fixed-bucket
    histograms, registered by name.

    Registration ([counter] / [gauge] / [histogram]) is idempotent —
    looking a name up again returns the existing instrument (a kind
    mismatch raises [Invalid_argument]; a histogram's buckets are fixed
    by its first registration) — and mutex-guarded, so instruments may
    be created from any domain.  {e Observations} (inc / set / observe)
    are unsynchronised by design: the protocol records them only from
    the orchestrating domain (worker results are folded back after the
    pool join), which keeps the hot path free of locks.

    The registry feeds: per-phase latency histograms, sampled BGV chain
    levels and noise-budget headroom, pool worker utilization, and
    transcript bytes per link. *)

type t
type counter
type gauge
type histogram

val create : unit -> t

val default_latency_buckets : float array
(** [1 µs … 60 s], decade-spaced — the default for latency histograms. *)

val counter : t -> string -> counter
val gauge : t -> string -> gauge

val histogram : ?buckets:float array -> t -> string -> histogram
(** [buckets] are strictly increasing upper bounds; an implicit overflow
    bucket is appended.  Defaults to {!default_latency_buckets}. *)

val inc : ?by:int -> counter -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float option

val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_counts : histogram -> int array
(** Per-bucket counts; the final entry is the overflow bucket. *)

val hist_buckets : histogram -> float array

val record_ledger : t -> party:string -> Util.Counters.t -> unit
(** Mirror a per-party op-kind × level ledger into the registry: each
    {!Util.Counters.ledger_entries} cell increments a monotonic counter
    named [ledger.<party>.<op>.l<level>], so repeated queries accumulate
    and {!to_prometheus} exports the attribution sorted under the
    [sknn_] prefix. *)

val names : t -> string list
(** Registered names, sorted — [pp] renders in this order, so output is
    deterministic. *)

val pp : Format.formatter -> t -> unit

val to_prometheus : t -> string
(** Prometheus text exposition format.  Names are sanitized to
    [[a-zA-Z0-9_]] under an [sknn_] prefix; counters gain [_total];
    histograms render cumulative [_bucket{le="..."}] lines (including
    the [+Inf] overflow bucket) plus [_sum] and [_count]; unset gauges
    are omitted.  Metrics appear in {!names} order, so two renders of
    the same registry state are byte-identical. *)
