(** Leakage-audit channel: a structured log of exactly what each
    party's view of a protocol run exposes.

    The paper's §4/§5 security argument admits a precise leakage
    profile — Party B learns the masked distance multiset order, [k]
    and the number of equidistant points; Party A sees ciphertexts only
    (sizes and counts, never plaintexts).  The protocol, when given an
    audit channel, records every observable it hands each party, so a
    test can assert the profile {e mechanically}: the set of labels per
    party is exactly the admitted set, and nothing else was ever
    logged.

    The channel is append-only and recorded solely from the
    orchestrating domain, so entries are deterministic across job
    counts. *)

type value =
  | Int of int
  | Float of float
  | Ints of int array
  | Int64s of int64 array
  | Str of string

type entry = { seq : int; party : string; phase : string; label : string; value : value }

type t

val create : unit -> t
val observe : t -> party:string -> phase:string -> label:string -> value -> unit

val entries : t -> entry list
(** In observation order. *)

val for_party : t -> party:string -> entry list

val labels_for : t -> party:string -> string list
(** Sorted, deduplicated labels observed for a party — the party's
    complete leakage surface for the run. *)

val value_of : t -> party:string -> label:string -> value option
(** The most recent observation for a [(party, label)] pair. *)

val pp : Format.formatter -> t -> unit
