(* Analytic replica of the protocol's ciphertext-operation cost: a
   symbolic executor that walks the exact circuit each query path runs
   (lib/core/entities.ml + protocol.ml) and records the same op-kind ×
   BGV-level ledger cells (Util.Counters) the instrumented scheme
   records on live ciphertexts — without touching a single ciphertext.

   Exactness is the contract: the test suite asserts
   [Counters.equal_ledger] between a prediction and a measured run on
   every preset.  That only holds because every branch the live circuit
   takes on a noise bound (rescale_to_floor loop trips, the prepared
   level-drop rule, the packed/batched up-front query truncation) is
   replayed here with bit-identical float arithmetic:

   - the per-op noise formulas are Noise_model's, which mirror
     lib/bgv/bgv.ml term for term;
   - where Noise_model deliberately simplifies (its [mul_sum] closes
     the term-order log2_add fold to [bits + log2 terms]), this module
     re-implements the scheme's exact sequential fold instead;
   - scalar magnitudes (mask coefficients, plaintext coordinates) are
     supplied by the caller as worst-case log2 bounds computed with the
     scheme's own centering rule; the presets' branch decisions are
     stable across the whole coefficient range, which the equality
     tests witness empirically.

   The level-0 row of the ledger holds the slot pack/unpack NTTs mod t,
   exactly as Plaintext records them. *)

module C = Util.Counters
module NM = Noise_model

type params = {
  nm : NM.params;
  q_ibits : int array;
  n_points : int;
  d : int;
  k : int;
  per_coordinate : bool;
  mask_degree : int;
  mask_leading_bits : float;
  coord_bits : float;
  rescale_distances : bool;
  return_level : int;
  use_relin : bool;
  relin_digit_bits : int;
  relin_rows : int;
  slots : int;
}

type path = Plain | Prepared | Packed | Batch of int

type phase = { phase : string; party : string; counters : C.t }

type prediction = {
  phases : phase list;
  party_a : C.t;
  party_b : C.t;
  client : C.t;
  ab_bytes : int;
  transcript : Transcript.t;
}

let log2 x = log x /. log 2.0

let chain p = NM.chain_length p.nm
let full_level p = chain p
let return_level p = Stdlib.min p.return_level (chain p)

(* ------------------------------------------------------------------ *)
(* Symbolic Bgv: Noise_model states + ledger recording                 *)
(* ------------------------------------------------------------------ *)

(* Each operation mirrors the recording discipline of the matching
   Bgv/Plaintext entry point: primary op cell, the whole-polynomial NTT
   passes it triggers, and the coarse Table 1 event. *)

let enc p c ~level =
  C.record c C.Encrypt;
  C.record_op c C.Op_encrypt ~level;
  C.record_op_n c C.Op_ntt_fwd ~level 4;
  NM.fresh_at p.nm ~level

(* Full decrypt: the sk dot product leaves an Eval-domain accumulator,
   so presenting coefficients always costs one inverse pass. *)
let dec c (st : NM.state) =
  C.record c C.Decrypt;
  C.record_op c C.Op_decrypt ~level:st.NM.level;
  C.record_op c C.Op_ntt_inv ~level:st.NM.level

(* decrypt_coeff0 reads the evaluation-domain residues directly. *)
let dec0 c (st : NM.state) =
  C.record c C.Decrypt;
  C.record_op c C.Op_decrypt ~level:st.NM.level

let add c a b =
  C.record c C.Hom_add;
  C.record_op c C.Op_ct_add ~level:(Stdlib.min a.NM.level b.NM.level);
  NM.add a b

let sub = add

let add_plain p c st =
  C.record c C.Hom_add;
  C.record_op c C.Op_ct_add ~level:st.NM.level;
  C.record_op c C.Op_ntt_fwd ~level:st.NM.level;
  NM.add_plain p.nm st

let add_const = add_plain

let mul_plain p c st =
  C.record c C.Hom_mul_plain;
  C.record_op c C.Op_mul_plain ~level:st.NM.level;
  C.record_op c C.Op_ntt_fwd ~level:st.NM.level;
  NM.mul_plain p.nm st

let mul_scalar c st ~bits =
  C.record c C.Hom_mul_plain;
  C.record_op c C.Op_mul_plain ~level:st.NM.level;
  NM.mul_scalar st ~bits

let modswitch p c (st : NM.state) =
  C.record c C.Hom_modswitch;
  let k = st.NM.level in
  C.record_op c C.Op_modswitch ~level:k;
  (* Every component is Eval (the scheme's invariant), so each pays the
     inverse pass at the source level and a forward pass below. *)
  C.record_op_n c C.Op_ntt_inv ~level:k (st.NM.degree + 1);
  C.record_op_n c C.Op_ntt_fwd ~level:(k - 1) (st.NM.degree + 1);
  NM.modswitch p.nm st

let rescale_to_floor p c st =
  let rec go (st : NM.state) =
    if st.NM.level <= 1 then st
    else
      let predicted =
        NM.log2_add
          (st.NM.bits -. p.nm.NM.moduli_bits.(st.NM.level - 1))
          (NM.switch_floor_bits p.nm ~degree:st.NM.degree)
      in
      if predicted < st.NM.bits -. 0.5 then go (modswitch p c st) else st
  in
  go st

(* Recorded truncation (Bgv.truncate_to_level ~counters): a cell only
   when components are actually dropped. *)
let truncate c (st : NM.state) ~level =
  if level >= st.NM.level then st
  else begin
    C.record_op c C.Op_level_drop ~level;
    NM.truncate st ~level
  end

(* The silent alignments inside add/mul/mul_sum/eval_poly. *)
let truncate_silent (st : NM.state) ~level =
  if level >= st.NM.level then st else NM.truncate st ~level

let relinearize p c (st : NM.state) =
  C.record c C.Hom_relin;
  let k = st.NM.level in
  C.record_op c C.Op_key_switch ~level:k;
  (* key_switch_digits: the tensor component is Eval, one inverse pass;
     then ndigits digit polynomials embed Coeff→Eval. *)
  let w = p.relin_digit_bits in
  let ndigits = Stdlib.min p.relin_rows ((p.q_ibits.(k - 1) + w - 1) / w) in
  C.record_op c C.Op_ntt_inv ~level:k;
  C.record_op_n c C.Op_ntt_fwd ~level:k ndigits;
  let added =
    p.nm.NM.t_bits
    +. log2 (float_of_int ndigits)
    +. log2 (float_of_int p.nm.NM.n)
    +. float_of_int w
    +. log2 p.nm.NM.eta
  in
  { st with NM.degree = 1; NM.bits = NM.log2_add st.NM.bits added }

(* [relin] mirrors whether the live call site passes [?rlk] — some
   sites (the plain-path inner product, Return-kNN's row selection)
   never do, whatever the configuration says. *)
let mul p c ?(rescale = true) ~relin a b =
  C.record c C.Hom_mul;
  C.record_op c C.Op_ct_mul ~level:(Stdlib.min a.NM.level b.NM.level);
  let st = NM.mul p.nm a b in
  let st = if relin && st.NM.degree = 2 then relinearize p c st else st in
  if rescale then rescale_to_floor p c st else st

(* Σ terms · (a·b) with every term the same symbolic pair — all the
   protocol's inner products are uniform.  Mirrors Bgv.mul_sum: the
   fused fast path when no relinearisation is in play, the exact
   mul-then-add fold otherwise, and in both cases the noise bound is
   the scheme's sequential term-order fold (Noise_model's closed form
   is a bound, not the same float). *)
let mul_sum p c ~terms ~relin a b =
  if terms < 1 then invalid_arg "Cost_model.mul_sum: terms must be positive";
  let lvl = Stdlib.min a.NM.level b.NM.level in
  let a = truncate_silent a ~level:lvl and b = truncate_silent b ~level:lvl in
  if relin then begin
    let acc = ref (mul p c ~rescale:false ~relin a b) in
    for _ = 2 to terms do
      acc := add c !acc (mul p c ~rescale:false ~relin a b)
    done;
    !acc
  end
  else begin
    C.record_n c C.Hom_mul terms;
    C.record_n c C.Hom_add (terms - 1);
    C.record_op_n c C.Op_ct_mul ~level:lvl terms;
    C.record_op_n c C.Op_ct_add ~level:lvl (terms - 1);
    let term = log2 (float_of_int p.nm.NM.n) +. a.NM.bits +. b.NM.bits in
    let bits = ref term in
    for _ = 1 to terms - 1 do
      bits := NM.log2_add !bits term
    done;
    { NM.level = lvl; NM.degree = a.NM.degree + b.NM.degree; NM.bits = !bits }
  end

(* Horner evaluation with the protocol's masking polynomial: only the
   leading coefficient is applied as a scalar, the rest arrive through
   add_const.  [leading_bits] is the caller's bound on its centered
   magnitude. *)
let eval_poly p c ~leading_bits st =
  let d = p.mask_degree in
  if d = 0 then add_const p c (mul_scalar c st ~bits:0.0)
  else begin
    let acc = ref (mul_scalar c st ~bits:leading_bits) in
    for i = d - 1 downto 0 do
      if i < d - 1 then begin
        let x = truncate_silent st ~level:(!acc).NM.level in
        acc := mul p c ~relin:p.use_relin !acc x
      end;
      acc := add_const p c !acc
    done;
    !acc
  end

let slot_pack c = C.record_op c C.Op_slot_pack ~level:0
let slot_unpack c = C.record_op c C.Op_slot_unpack ~level:0

(* ------------------------------------------------------------------ *)
(* Level-drop rules (entities.ml, verbatim)                            *)
(* ------------------------------------------------------------------ *)

(* The prepared per-point rule: lowest level whose modulus clears the
   masked bound with 17 bits of slack, floored at the return level. *)
let prepared_drop p (ed : NM.state) =
  let t_bits = p.nm.NM.t_bits in
  let need = ed.NM.bits +. t_bits +. 17.0 in
  let lvl = ref 0 and bits = ref 0.0 in
  while !bits <= need && !lvl < ed.NM.level do
    bits := !bits +. p.nm.NM.moduli_bits.(!lvl);
    incr lvl
  done;
  let lvl = Stdlib.max !lvl (return_level p) in
  if !bits > need && lvl < ed.NM.level then `Truncate lvl
  else if p.rescale_distances then `Rescale
  else `Keep

(* Party_a.level_for_need: the same walk over the full chain. *)
let level_for_need p ~need =
  let lvl = ref 0 and bits = ref 0.0 in
  while !bits <= need && !lvl < chain p do
    bits := !bits +. p.nm.NM.moduli_bits.(!lvl);
    incr lvl
  done;
  let lvl = Stdlib.max !lvl (return_level p) in
  if !bits > need then Some lvl else None

(* Party_a.packed_query_level. *)
let packed_query_level p ~q_noise_bits =
  let t_bits = p.nm.NM.t_bits in
  let ip =
    q_noise_bits
    +. log2 (float_of_int p.nm.NM.n)
    +. t_bits -. 1.0
    +. log2 (float_of_int (Stdlib.max 1 p.d))
  in
  let ed = NM.log2_add (NM.log2_add q_noise_bits (t_bits -. 1.0)) (ip +. 1.0) in
  level_for_need p ~need:(ed +. t_bits +. 17.0)

(* Party_a.batch_query_level. *)
let batch_query_level p ~q_noise_bits =
  let t_bits = p.nm.NM.t_bits in
  let ip = q_noise_bits +. p.coord_bits +. log2 (float_of_int (Stdlib.max 1 p.d)) +. 1.0 in
  let ed = NM.log2_add (NM.log2_add q_noise_bits (t_bits -. 1.0)) ip in
  let masked = ed +. log2 (float_of_int p.nm.NM.n) +. t_bits -. 1.0 in
  let masked = NM.log2_add masked (t_bits -. 1.0) in
  level_for_need p ~need:(masked +. 17.0)

(* ------------------------------------------------------------------ *)
(* Per-path circuits                                                   *)
(* ------------------------------------------------------------------ *)

(* The batch path scales each query ciphertext by plaintext coordinates
   whose magnitude is data-dependent; the bound only feeds the noise
   state (the op counts are scalar-blind unless the no-drop rescale
   branch fires, which the presets never reach). *)

type sim = { p : params; mutable rev_phases : phase list; tr : Transcript.t }

(* Serialized size of a ciphertext in the symbolic state: the exact
   Bgv.byte_size formula, (degree+1) residue polynomials per remaining
   prime at 4 bytes a coefficient plus the fixed header. *)
let st_bytes p (st : NM.state) =
  ((st.NM.degree + 1) * st.NM.level * p.nm.NM.n * 4) + 40

(* A symbolic transcript message of [count] ciphertexts in state [st],
   with the same granularity and labels as the live [Protocol] sends —
   what makes the predicted transcript structurally comparable (and the
   Clock replay byte-exact) against a measured run. *)
let send sim ~sender ~receiver ~label ~count st =
  Transcript.send sim.tr ~sender ~receiver ~label
    ~bytes:(count * st_bytes sim.p st)

let phase_counter sim ~phase ~party =
  let c = C.create () in
  sim.rev_phases <- { phase; party; counters = c } :: sim.rev_phases;
  c

(* Shared return-kNN + decrypt-result tail: [views] indicator-row sets
   of [k] rows each, against return-level packed points. *)
let return_and_decrypt sim ~views ~plain_truncations =
  let p = sim.p in
  let rl = return_level p in
  let ca = phase_counter sim ~phase:"return-knn" ~party:"party-a" in
  let cb = phase_counter sim ~phase:"return-knn" ~party:"party-b" in
  if plain_truncations then
    for _ = 1 to p.n_points do
      ignore (truncate ca (NM.fresh p.nm) ~level:rl)
    done;
  let packed_ret = truncate_silent (NM.fresh p.nm) ~level:rl in
  let result = ref None in
  for _ = 1 to views do
    for j = 0 to p.k - 1 do
      let row =
        let st = ref None in
        for _ = 1 to p.n_points do
          st := Some (enc p cb ~level:rl)
        done;
        Option.get !st
      in
      (* Each indicator row crosses B->A as n fresh return-level cts, one
         message per row, labelled as the live protocol labels them. *)
      send sim ~sender:Transcript.Party_b ~receiver:Transcript.Party_a
        ~label:(Printf.sprintf "indicator vector B^%d" (j + 1))
        ~count:p.n_points row;
      result := Some (mul_sum p ca ~terms:p.n_points ~relin:false packed_ret row)
    done
  done;
  let cc = phase_counter sim ~phase:"decrypt-result" ~party:"client" in
  match !result with
  | None -> ()
  | Some r ->
    send sim ~sender:Transcript.Party_a ~receiver:Transcript.Client
      ~label:"encrypted k-NN result" ~count:(views * p.k) r;
    for _ = 1 to views * p.k do
      dec cc r
    done

let predict_plain sim =
  let p = sim.p in
  let full = full_level p in
  let cc = phase_counter sim ~phase:"encrypt-query" ~party:"client" in
  let fresh = ref (NM.fresh p.nm) in
  let n_query_cts = if p.per_coordinate then p.d else 2 in
  for _ = 1 to n_query_cts do
    fresh := enc p cc ~level:full
  done;
  let fresh = !fresh in
  send sim ~sender:Transcript.Client ~receiver:Transcript.Party_a
    ~label:"encrypted query" ~count:n_query_cts fresh;
  let ca = phase_counter sim ~phase:"compute-distances" ~party:"party-a" in
  let masked = ref fresh in
  for _ = 1 to p.n_points do
    let m =
      if p.per_coordinate then begin
        (* d per-coordinate differences, fused square-and-sum, one
           deferred rescale, then the masking polynomial. *)
        let diff = ref fresh in
        for _ = 1 to p.d do
          diff := sub ca fresh fresh
        done;
        let ed = mul_sum p ca ~terms:p.d ~relin:p.use_relin !diff !diff in
        let ed = if p.rescale_distances then rescale_to_floor p ca ed else ed in
        eval_poly p ca ~leading_bits:p.mask_leading_bits ed
      end
      else begin
        (* ED = ‖p‖² − 2⟨p,q⟩ + ‖q‖² via the inner-product trick, plus
           the zero-constant randomizer. *)
        let ip = mul p ca ~rescale:false ~relin:false fresh fresh in
        let ed = sub ca (add ca fresh fresh) (mul_scalar ca ip ~bits:1.0) in
        let m = eval_poly p ca ~leading_bits:p.mask_leading_bits ed in
        add_plain p ca m
      end
    in
    masked := m
  done;
  send sim ~sender:Transcript.Party_a ~receiver:Transcript.Party_b
    ~label:"masked permuted distances" ~count:p.n_points !masked;
  let cb = phase_counter sim ~phase:"find-neighbours" ~party:"party-b" in
  for _ = 1 to p.n_points do
    dec0 cb !masked
  done;
  return_and_decrypt sim ~views:1 ~plain_truncations:true

let predict_prepared sim ~include_prepare =
  let p = sim.p in
  let full = full_level p in
  let rl = return_level p in
  let fresh = NM.fresh p.nm in
  (* The prepared norms exist whether or not this query pays for them;
     only the first query of a deployment records the prepare phase. *)
  let norm_of c =
    if p.per_coordinate then mul_sum p c ~terms:p.d ~relin:p.use_relin fresh fresh
    else fresh
  in
  let scratch = C.create () in
  let norm =
    if include_prepare then begin
      let ca = phase_counter sim ~phase:"prepare-db" ~party:"party-a" in
      let norm = ref fresh in
      for _ = 1 to p.n_points do
        norm := norm_of ca
      done;
      for _ = 1 to p.n_points do
        ignore (truncate ca fresh ~level:rl)
      done;
      !norm
    end
    else norm_of scratch
  in
  let cc = phase_counter sim ~phase:"encrypt-query" ~party:"client" in
  let qct = enc p cc ~level:full in
  ignore (enc p cc ~level:full);
  send sim ~sender:Transcript.Client ~receiver:Transcript.Party_a
    ~label:"encrypted query" ~count:2 qct;
  let ca = phase_counter sim ~phase:"compute-distances" ~party:"party-a" in
  let masked = ref fresh in
  for _ = 1 to p.n_points do
    let ip = mul p ca ~rescale:false ~relin:p.use_relin fresh fresh in
    let ed = sub ca (add ca norm fresh) (mul_scalar ca ip ~bits:1.0) in
    let ed =
      match prepared_drop p ed with
      | `Truncate lvl -> truncate ca ed ~level:lvl
      | `Rescale -> rescale_to_floor p ca ed
      | `Keep -> ed
    in
    let m = eval_poly p ca ~leading_bits:p.mask_leading_bits ed in
    masked := add_plain p ca m
  done;
  send sim ~sender:Transcript.Party_a ~receiver:Transcript.Party_b
    ~label:"masked permuted distances" ~count:p.n_points !masked;
  let cb = phase_counter sim ~phase:"find-neighbours" ~party:"party-b" in
  for _ = 1 to p.n_points do
    dec0 cb !masked
  done;
  return_and_decrypt sim ~views:1 ~plain_truncations:false

let packed_prepare sim =
  let p = sim.p in
  let ca = phase_counter sim ~phase:"prepare-db" ~party:"party-a" in
  let rl = return_level p in
  for _ = 1 to p.n_points do
    ignore (truncate ca (NM.fresh p.nm) ~level:rl)
  done

let predict_packed sim ~include_prepare =
  let p = sim.p in
  let full = full_level p in
  if include_prepare then packed_prepare sim;
  let cc = phase_counter sim ~phase:"encrypt-query" ~party:"client" in
  let fresh = ref (NM.fresh p.nm) in
  for _ = 1 to p.d + 1 do
    fresh := enc p cc ~level:full
  done;
  let fresh = !fresh in
  send sim ~sender:Transcript.Client ~receiver:Transcript.Party_a
    ~label:"encrypted query" ~count:(p.d + 1) fresh;
  let ca = phase_counter sim ~phase:"compute-distances" ~party:"party-a" in
  (* Up-front query truncation: the level-drop rule applied predictively
     to the fresh query ciphertexts. *)
  let drop = packed_query_level p ~q_noise_bits:fresh.NM.bits in
  let q =
    match drop with
    | Some lvl when lvl < fresh.NM.level ->
      let q = ref fresh in
      for _ = 1 to p.d + 1 do
        q := truncate ca fresh ~level:lvl
      done;
      !q
    | _ -> fresh
  in
  let nbatches = (p.n_points + p.slots - 1) / p.slots in
  let ragged = p.n_points mod p.slots <> 0 in
  let masked = ref q in
  for b = 0 to nbatches - 1 do
    let ip = ref q in
    for j = 0 to p.d - 1 do
      slot_pack ca;
      let prod = mul_plain p ca q in
      ip := if j = 0 then prod else add ca !ip prod
    done;
    slot_pack ca;
    let ed = sub ca (add_plain p ca q) (mul_scalar ca !ip ~bits:1.0) in
    let ed =
      if drop = None && p.rescale_distances then rescale_to_floor p ca ed else ed
    in
    let m = eval_poly p ca ~leading_bits:p.mask_leading_bits ed in
    let m =
      if ragged && b = nbatches - 1 then begin
        slot_pack ca;
        add_plain p ca m
      end
      else m
    in
    masked := m
  done;
  send sim ~sender:Transcript.Party_a ~receiver:Transcript.Party_b
    ~label:"masked permuted distances" ~count:nbatches !masked;
  let cb = phase_counter sim ~phase:"find-neighbours" ~party:"party-b" in
  for _ = 1 to nbatches do
    dec cb !masked;
    slot_unpack cb
  done;
  return_and_decrypt sim ~views:1 ~plain_truncations:false

let predict_batch sim ~include_prepare ~queries =
  let p = sim.p in
  let full = full_level p in
  if queries < 1 || queries > p.slots then
    invalid_arg "Cost_model.predict: batch size out of range";
  if include_prepare then packed_prepare sim;
  let cc = phase_counter sim ~phase:"encrypt-query" ~party:"client" in
  let fresh = ref (NM.fresh p.nm) in
  for _ = 1 to p.d + 1 do
    slot_pack cc;
    fresh := enc p cc ~level:full
  done;
  let fresh = !fresh in
  send sim ~sender:Transcript.Client ~receiver:Transcript.Party_a
    ~label:"encrypted query" ~count:(p.d + 1) fresh;
  let ca = phase_counter sim ~phase:"compute-distances" ~party:"party-a" in
  (* Per-query affine masks, slot-aligned: one packed slope plaintext,
     and a shared intercept only when every slot carries a query. *)
  slot_pack ca;
  let shared_intercept = queries = p.slots in
  if shared_intercept then slot_pack ca;
  let drop = batch_query_level p ~q_noise_bits:fresh.NM.bits in
  let q =
    match drop with
    | Some lvl when lvl < fresh.NM.level ->
      let q = ref fresh in
      for _ = 1 to p.d + 1 do
        q := truncate ca fresh ~level:lvl
      done;
      !q
    | _ -> fresh
  in
  let masked = ref q in
  for _ = 1 to p.n_points do
    let ip = ref q in
    for j = 0 to p.d - 1 do
      let prod = mul_scalar ca q ~bits:p.coord_bits in
      ip := if j = 0 then prod else add ca !ip prod
    done;
    let ed = add_const p ca (sub ca q (mul_scalar ca !ip ~bits:1.0)) in
    let ed =
      if drop = None && p.rescale_distances then rescale_to_floor p ca ed else ed
    in
    let md = mul_plain p ca ed in
    if not shared_intercept then slot_pack ca;
    masked := add_plain p ca md
  done;
  send sim ~sender:Transcript.Party_a ~receiver:Transcript.Party_b
    ~label:"masked permuted distances" ~count:p.n_points !masked;
  let cb = phase_counter sim ~phase:"find-neighbours" ~party:"party-b" in
  for _ = 1 to p.n_points do
    dec cb !masked;
    slot_unpack cb
  done;
  return_and_decrypt sim ~views:queries ~plain_truncations:false

let predict ?(include_prepare = true) p path =
  if p.n_points < 1 then invalid_arg "Cost_model.predict: empty database";
  if p.d < 1 then invalid_arg "Cost_model.predict: dimension < 1";
  if p.k < 1 || p.k > p.n_points then invalid_arg "Cost_model.predict: k out of range";
  let sim = { p; rev_phases = []; tr = Transcript.create () } in
  (match path with
   | Plain -> predict_plain sim
   | Prepared -> predict_prepared sim ~include_prepare
   | Packed -> predict_packed sim ~include_prepare
   | Batch queries -> predict_batch sim ~include_prepare ~queries);
  let phases = List.rev sim.rev_phases in
  let total party =
    let acc = C.create () in
    List.iter
      (fun ph -> if String.equal ph.party party then C.absorb ~into:acc ph.counters)
      phases;
    acc
  in
  { phases;
    party_a = total "party-a";
    party_b = total "party-b";
    client = total "client";
    ab_bytes = Transcript.bytes_between sim.tr Transcript.Party_a Transcript.Party_b;
    transcript = sim.tr }

(* ------------------------------------------------------------------ *)
(* Calibrated time prediction                                          *)
(* ------------------------------------------------------------------ *)

type unit_costs = float array array

(* Composite operations already include the NTT passes they trigger in
   their measured unit cost, so the ledger's NTT census rows are
   attribution detail, not an extra term — summing them too would count
   the same microseconds twice. *)
let primary_op = function
  | C.Op_ntt_fwd | C.Op_ntt_inv -> false
  | _ -> true

let predict_seconds ~unit_costs counters =
  List.fold_left
    (fun acc (op, level, count) ->
      if not (primary_op op) then acc
      else
        let i = C.op_index op in
        if i < Array.length unit_costs && level < Array.length unit_costs.(i) then
          acc +. (float_of_int count *. unit_costs.(i).(level))
        else acc)
    0.0
    (C.ledger_entries counters)

(* ------------------------------------------------------------------ *)
(* Comms-aware end-to-end time                                         *)
(* ------------------------------------------------------------------ *)

type end_to_end = {
  e2e_profile : Profile.t;
  compute_party_s : (string * float) list;
  compute_s : float;
  wire_s : float;
  total_s : float;
  timeline : Clock.timeline;
}

(* The protocol is a strict sequential exchange — every phase waits for
   the previous phase's message — so the compute critical path is the sum
   of all phases, attributed per party for the breakdown; the wire term
   is the Clock replay of the predicted transcript (serialization + the
   causal chain of RTT/2 hops, i.e. rounds × RTT + bytes/bandwidth).
   Rounds and bytes agree exactly with a live run's replay because the
   symbolic transcript reproduces the live message structure; the time
   split only disagrees through the calibrated unit costs. *)
let predict_end_to_end ~unit_costs ~profile pred =
  let order = ref [] in
  let totals = Hashtbl.create 4 in
  List.iter
    (fun ph ->
      let s = predict_seconds ~unit_costs ph.counters in
      match Hashtbl.find_opt totals ph.party with
      | Some acc -> Hashtbl.replace totals ph.party (acc +. s)
      | None ->
        order := ph.party :: !order;
        Hashtbl.add totals ph.party s)
    pred.phases;
  let compute_party_s =
    List.rev_map (fun party -> (party, Hashtbl.find totals party)) !order
  in
  let compute_s = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 compute_party_s in
  let timeline = Clock.replay profile pred.transcript in
  let wire_s = timeline.Clock.end_to_end_s in
  { e2e_profile = profile;
    compute_party_s;
    compute_s;
    wire_s;
    total_s = compute_s +. wire_s;
    timeline }

(* ------------------------------------------------------------------ *)
(* Unit-cost model: extrapolating one calibration across (n, chain)    *)
(* ------------------------------------------------------------------ *)

(* The planner prices candidate parameter sets at ring degrees and chain
   lengths that were never calibrated.  Each op kind has a known analytic
   work shape in (ring degree, active primes) — NTT-bound ops scale as
   level·n·lg n, pointwise ops as level·n, key switching as level²·n·lg n
   because the digit count grows with the modulus — so one measured table
   pins a single seconds-per-work-unit scale per op, and any other shape
   is priced by re-evaluating the basis. *)

type unit_model = { scales : float array }

let op_basis ~n ~level op =
  let fn = float_of_int n in
  let lg = log2 fn in
  let lvl = float_of_int (Stdlib.max 1 level) in
  match op with
  | C.Op_ct_add | C.Op_ct_mul | C.Op_level_drop -> lvl *. fn
  | C.Op_encrypt | C.Op_decrypt | C.Op_mul_plain | C.Op_modswitch
  | C.Op_ntt_fwd | C.Op_ntt_inv ->
    lvl *. fn *. lg
  | C.Op_key_switch -> lvl *. lvl *. fn *. lg
  | C.Op_slot_pack | C.Op_slot_unpack -> fn *. lg

let fit_unit_model ~n (costs : unit_costs) =
  let scales = Array.make C.num_ops 0.0 in
  Array.iter
    (fun op ->
      let i = C.op_index op in
      if i < Array.length costs then begin
        let num = ref 0.0 and den = ref 0.0 in
        Array.iteri
          (fun level c ->
            if c > 0.0 then begin
              let b = op_basis ~n ~level op in
              num := !num +. (c *. b);
              den := !den +. (b *. b)
            end)
          costs.(i);
        if !den > 0.0 then scales.(i) <- !num /. !den
      end)
    C.all_ops;
  { scales }

let unit_costs_for model ~n ~levels =
  let costs = Array.make_matrix C.num_ops (Stdlib.max 1 levels + 1) 0.0 in
  Array.iter
    (fun op ->
      let i = C.op_index op in
      let s = model.scales.(i) in
      if s > 0.0 then
        match op with
        | C.Op_slot_pack | C.Op_slot_unpack ->
          costs.(i).(0) <- s *. op_basis ~n ~level:0 op
        | _ ->
          for level = 1 to levels do
            costs.(i).(level) <- s *. op_basis ~n ~level op
          done)
    C.all_ops;
  costs
