(** Flight recorder: a fixed-size ring buffer of timestamped events,
    cheap enough to leave on for every run.

    Recording an event writes six flat array slots and bumps a counter —
    no allocation, no locks.  Like trace spans, events are recorded only
    from the {e orchestrating} domain (pool chunk stats arrive replayed
    post-join in worker order), so the stream restricted to non-[Chunk]
    events is bit-identical across [--jobs] values.

    When the buffer wraps, the oldest events are overwritten; [total]
    and [dropped] keep the bookkeeping honest.  Dump the buffer on
    demand ([sknn dump-flight]), on [Bgv.Decryption_failure], or
    whenever a run ends surprisingly — it answers "what was the protocol
    doing just before this?" without re-running with tracing on. *)

type kind =
  | Phase_enter  (** protocol phase opened; [name] = phase *)
  | Phase_exit   (** phase closed; [name] = phase, [x] = duration (s) *)
  | Noise        (** BGV headroom sample; [name] = batch label, [i] = level, [x] = noise-budget bits *)
  | Send
      (** transcript send; [name] = "sender->receiver", [i] = bytes.
          When a network profile is attached, [j] = transcript seq and
          [x] = virtual arrival time (seconds) from the clock replay —
          deterministic, so the wall-stripped stream stays bit-identical
          across job counts. *)
  | Chunk        (** pool chunk replayed post-join; [name] = label, [i]=[lo], [j]=[hi], [x] = seconds *)
  | Warning      (** structured warning, e.g. the noise forecaster; [name] = label, [x] = value *)
  | Mark         (** free-form marker *)

val kind_name : kind -> string

type event = { ts : float; kind : kind; name : string; i : int; j : int; x : float }

type t

val default_capacity : int

val create : ?capacity:int -> unit -> t
(** Fresh recorder; the epoch is the creation instant.
    @raise Invalid_argument if [capacity < 1]. *)

val default : unit -> t option
(** The process-wide recorder the CLI attaches by default.  [None] when
    disabled via [SKNN_FLIGHT=0]; capacity from [SKNN_FLIGHT_CAP]
    (default {!default_capacity}). *)

val record : t -> kind -> ?name:string -> ?i:int -> ?j:int -> ?x:float -> unit -> unit
val capacity : t -> int

val total : t -> int
(** Events ever recorded (monotonic; exceeds [capacity] after a wrap). *)

val dropped : t -> int
(** Events lost to wrapping: [max 0 (total - capacity)]. *)

val clear : t -> unit

val events : t -> event list
(** Live events, oldest first (at most [capacity]). *)

val dump : ?run:(string * string) list -> t -> out_channel -> unit
(** JSONL: one [{"rec":"flight-header",...}] line carrying
    capacity/total/dropped plus the [run] key/values, then one
    [{"rec":"flight",...}] line per live event.  The ["rec"]
    discriminator lets flight dumps share a parser (and a file) with
    jsonl traces. *)

val pp : Format.formatter -> t -> unit
