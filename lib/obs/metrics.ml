type histogram = {
  buckets : float array;        (* strictly increasing upper bounds *)
  counts : int array;           (* length buckets + 1; last = overflow *)
  mutable sum : float;
  mutable count : int;
}

type counter = { mutable c_value : int }
type gauge = { mutable g_value : float option }

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { mutex : Mutex.t; tbl : (string, metric) Hashtbl.t }

let create () = { mutex = Mutex.create (); tbl = Hashtbl.create 32 }

let default_latency_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0; 60.0 |]

let register t name make describe =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some m -> m
      | None ->
        let m = make () in
        Hashtbl.add t.tbl name m;
        ignore describe;
        m)

let counter t name =
  match register t name (fun () -> Counter { c_value = 0 }) "counter" with
  | Counter c -> c
  | _ -> invalid_arg (Printf.sprintf "Metrics.counter: %S registered with another kind" name)

let gauge t name =
  match register t name (fun () -> Gauge { g_value = None }) "gauge" with
  | Gauge g -> g
  | _ -> invalid_arg (Printf.sprintf "Metrics.gauge: %S registered with another kind" name)

let histogram ?(buckets = default_latency_buckets) t name =
  if Array.length buckets = 0 then invalid_arg "Metrics.histogram: empty buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must be strictly increasing")
    buckets;
  match
    register t name
      (fun () ->
        Histogram
          { buckets = Array.copy buckets;
            counts = Array.make (Array.length buckets + 1) 0;
            sum = 0.0; count = 0 })
      "histogram"
  with
  | Histogram h -> h
  | _ ->
    invalid_arg (Printf.sprintf "Metrics.histogram: %S registered with another kind" name)

let inc ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.inc: negative increment";
  c.c_value <- c.c_value + by

let counter_value c = c.c_value
let set g v = g.g_value <- Some v
let gauge_value g = g.g_value

let observe h v =
  let n = Array.length h.buckets in
  let rec slot i = if i >= n || v <= h.buckets.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.count <- h.count + 1

let hist_count h = h.count
let hist_sum h = h.sum
let hist_counts h = Array.copy h.counts
let hist_buckets h = Array.copy h.buckets

(* Mirror a finished per-party op ledger into the registry: one
   monotonic counter per (party, op kind, level) cell.  The
   "ledger.<party>.<op>.l<level>" names render sorted under the
   Prometheus sknn_ prefix, so scrapes carry the same attribution the
   cost model prices. *)
let record_ledger t ~party c =
  List.iter
    (fun (op, level, count) ->
      inc ~by:count
        (counter t
           (Printf.sprintf "ledger.%s.%s.l%d" party (Util.Counters.op_name op) level)))
    (Util.Counters.ledger_entries c)

let names t =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) (fun () ->
      List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl []))

let find t name =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) (fun () ->
      Hashtbl.find_opt t.tbl name)

(* Prometheus text exposition.  Dotted registry names are sanitized to
   [a-zA-Z0-9_] under an "sknn_" prefix; counters gain the conventional
   "_total" suffix; histograms emit cumulative [_bucket{le=...}] lines
   plus [_sum]/[_count].  Rendering follows [names], so the output is
   byte-deterministic for a given registry state. *)
let prom_name name =
  let buf = Buffer.create (String.length name + 5) in
  Buffer.add_string buf "sknn_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let to_prometheus t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun name ->
      match find t name with
      | None -> ()
      | Some (Counter c) ->
        let pn = prom_name name ^ "_total" in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" pn pn c.c_value)
      | Some (Gauge g) -> (
        match g.g_value with
        | None -> () (* an unset gauge has no value to expose *)
        | Some v ->
          let pn = prom_name name in
          Buffer.add_string buf
            (Printf.sprintf "# TYPE %s gauge\n%s %s\n" pn pn (prom_float v)))
      | Some (Histogram h) ->
        let pn = prom_name name in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" pn);
        let cum = ref 0 in
        Array.iteri
          (fun i c ->
            cum := !cum + c;
            let le =
              if i < Array.length h.buckets then prom_float h.buckets.(i) else "+Inf"
            in
            Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" pn le !cum))
          h.counts;
        Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" pn (prom_float h.sum));
        Buffer.add_string buf (Printf.sprintf "%s_count %d\n" pn h.count))
    (names t);
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun name ->
      match find t name with
      | None -> ()
      | Some (Counter c) -> Format.fprintf ppf "%-44s counter %d@," name c.c_value
      | Some (Gauge g) ->
        Format.fprintf ppf "%-44s gauge   %s@," name
          (match g.g_value with None -> "unset" | Some v -> Printf.sprintf "%.6g" v)
      | Some (Histogram h) ->
        Format.fprintf ppf "%-44s hist    count=%d sum=%.6g" name h.count h.sum;
        Array.iteri
          (fun i c ->
            if c > 0 then
              if i < Array.length h.buckets then
                Format.fprintf ppf " le(%.3g)=%d" h.buckets.(i) c
              else Format.fprintf ppf " inf=%d" c)
          h.counts;
        Format.fprintf ppf "@,")
    (names t);
  Format.fprintf ppf "@]"
