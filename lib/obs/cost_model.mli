(** Analytic replica of the protocol's op-kind × BGV-level cost ledger.

    Where {!Noise_model} forecasts how much {e noise} a circuit accrues,
    this module forecasts how many {e ciphertext operations} it runs —
    by symbolically executing the exact per-path circuits of
    [lib/core/entities.ml]/[protocol.ml] and recording into fresh
    {!Util.Counters.t} values the same ledger cells the instrumented
    scheme records on live ciphertexts.  The test suite asserts
    {!Util.Counters.equal_ledger} between a prediction and a measured
    query on every preset: the model is cross-checked against the
    ledger exactly the way the noise forecaster is cross-checked
    against [Bgv]'s tracked bound.

    Every count that depends on a noise bound (rescale loop trips, the
    prepared level-drop rule, the packed/batched up-front query
    truncation) is replayed with bit-identical float arithmetic, so the
    predicted branch decisions match the live ones.

    Combined with per-op unit costs measured by the calibration bench
    ([bench/kernels]), {!predict_seconds} turns a ledger — predicted or
    measured — into seconds, which is what [sknn cost] and the
    regression gate compare against measured phase times. *)

type params = {
  nm : Noise_model.params;  (** ring/modulus/noise numbers, shared with the forecaster *)
  q_ibits : int array;
      (** exact bit length of the RNS modulus product with [i+1] active
          primes (index [level − 1]) — [Zint.numbits], not a float
          ceiling, because the relinearisation digit count divides it *)
  n_points : int;  (** database size n *)
  d : int;  (** dimension *)
  k : int;  (** neighbours returned *)
  per_coordinate : bool;  (** layout: per-coordinate vs dot-product *)
  mask_degree : int;
  mask_leading_bits : float;
      (** log2 bound on the centered magnitude of the mask's leading
          coefficient (the one Horner applies as a scalar) *)
  coord_bits : float;
      (** log2 bound on a centered plaintext coordinate — the batch
          path's scalar products *)
  rescale_distances : bool;
  return_level : int;
  use_relin : bool;
  relin_digit_bits : int;
  relin_rows : int;  (** gadget rows in the relinearisation key *)
  slots : int;  (** SIMD slot count (= ring degree here) *)
}

(** Which query pipeline to predict; [Batch m] is [Protocol.query_batch]
    with [m] queries sharing the round. *)
type path = Plain | Prepared | Packed | Batch of int

type phase = {
  phase : string;  (** protocol phase name, as [Protocol] times it *)
  party : string;  (** ["party-a"] / ["party-b"] / ["client"] *)
  counters : Util.Counters.t;
}

type prediction = {
  phases : phase list;  (** in protocol order; return-knn appears once per party *)
  party_a : Util.Counters.t;  (** merged totals, comparable to live query counters *)
  party_b : Util.Counters.t;
  client : Util.Counters.t;
  ab_bytes : int;
      (** serialized bytes crossing the A<->B link (both directions),
          computed with the exact [Bgv.byte_size] formula on the
          symbolic ciphertexts at their send-time degree and level —
          comparable to [Transcript.bytes_between] on a measured run *)
  transcript : Transcript.t;
      (** the predicted communication transcript, message for message:
          same senders, labels and granularity as the live [Protocol]
          run, with bytes from the symbolic send-time states — so
          per-link bytes and rounds (and any {!Netsim.Clock} replay of
          it) agree exactly with a measured query *)
}

val predict : ?include_prepare:bool -> params -> path -> prediction
(** Symbolically run one query (or one batch round) and return its
    predicted ledger.  [include_prepare] (default [true]) adds the
    prepare-db phase the first prepared/packed query of a deployment
    pays; steady-state queries drop it.  Ignored for [Plain].
    @raise Invalid_argument on nonsensical sizes. *)

(** {1 Calibrated time} *)

type unit_costs = float array array
(** [unit_costs.(Util.Counters.op_index op).(level)] = measured seconds
    per operation of that kind at that chain level (row 0 holds the
    level-free slot ops).  Produced by the calibration pass in
    [bench/kernels]; missing cells read as zero. *)

val predict_seconds : unit_costs:unit_costs -> Util.Counters.t -> float
(** [Σ count × unit_cost] over the ledger's {e primary} operations.
    The NTT census rows ([Op_ntt_fwd]/[Op_ntt_inv]) are excluded: each
    composite op's measured unit cost already contains its NTT passes,
    so adding the census would double-count them. *)

(** {1 Comms-aware end-to-end time} *)

type end_to_end = {
  e2e_profile : Profile.t;
  compute_party_s : (string * float) list;
      (** priced compute seconds per party, in phase order *)
  compute_s : float;
      (** compute critical path: the protocol is a strict sequential
          exchange, so this is the sum over all phases *)
  wire_s : float;  (** [timeline.end_to_end_s] of the predicted transcript *)
  total_s : float;  (** [compute_s + wire_s] *)
  timeline : Clock.timeline;
}

val predict_end_to_end :
  unit_costs:unit_costs -> profile:Profile.t -> prediction -> end_to_end
(** Price a prediction's compute with the calibration table and replay
    its symbolic transcript under a network profile.  Rounds and bytes
    agree {e exactly} with the {!Netsim.Clock} replay of a live run's
    transcript (the symbolic transcript mirrors the live message
    structure); only the time split depends on the calibrated unit
    costs. *)

(** {1 Unit-cost model}

    One calibration table is measured at a single parameter set, but the
    planner prices candidates at other ring degrees and chain lengths.
    Each op kind has a known analytic work shape in (ring degree [n],
    active primes [level]) — see {!op_basis} — so a measured table pins a
    seconds-per-work-unit scale per op ({!fit_unit_model}, least squares
    through the origin over the table's populated cells), and
    {!unit_costs_for} re-evaluates the basis at any target shape. *)

type unit_model = { scales : float array }
(** Seconds per work unit, indexed by [Util.Counters.op_index]. *)

val op_basis : n:int -> level:int -> Util.Counters.op -> float
(** Analytic work of one op: [level·n] for pointwise ops
    (add/mul/level-drop), [level·n·lg n] for NTT-bound ops
    (encrypt/decrypt/mul_plain/modswitch), [level²·n·lg n] for key
    switching (the digit count grows with the modulus), [n·lg n] for the
    level-free slot ops (level 0 reads as 1). *)

val fit_unit_model : n:int -> unit_costs -> unit_model
(** Fit per-op scales to a table measured at ring degree [n]. Ops with
    no populated cells get scale 0 (their synthesized costs read 0). *)

val unit_costs_for : unit_model -> n:int -> levels:int -> unit_costs
(** Synthesize a full table for a chain of [levels] primes at ring
    degree [n]: cell [(op, level)] = scale × basis. *)
