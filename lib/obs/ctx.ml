module Pool = Util.Pool
module Timer = Util.Timer

type t = {
  trace : Trace.t;
  metrics : Metrics.t option;
  audit : Audit.t option;
  flight : Flight.t option;
}

let disabled = { trace = Trace.disabled; metrics = None; audit = None; flight = None }

let create ?(trace = Trace.disabled) ?metrics ?audit ?flight () =
  { trace; metrics; audit; flight }

let trace t = t.trace
let metrics t = t.metrics
let audit_channel t = t.audit
let flight t = t.flight

let is_disabled t =
  (not (Trace.is_enabled t.trace))
  && Option.is_none t.metrics && Option.is_none t.audit && Option.is_none t.flight

let with_span t ?kind ?counters ?args name f =
  match t.flight, kind with
  | Some fl, Some (Trace.Phase | Trace.Root) ->
    (* Protocol phases land in the flight recorder too, so a post-mortem
       dump shows where the run was even when tracing was off.  The exit
       event is recorded on raise as well — that is the whole point. *)
    Flight.record fl Flight.Phase_enter ~name ();
    let t0 = Timer.counter () in
    Fun.protect
      ~finally:(fun () ->
        Flight.record fl Flight.Phase_exit ~name ~x:(Timer.counter () -. t0) ())
      (fun () -> Trace.with_span t.trace ?kind ?counters ?args name f)
  | _ -> Trace.with_span t.trace ?kind ?counters ?args name f

let observe_phase t name seconds =
  match t.metrics with
  | None -> ()
  | Some m -> Metrics.observe (Metrics.histogram m ("phase." ^ name ^ ".seconds")) seconds

let audit t ~party ~phase ~label value =
  match t.audit with
  | None -> ()
  | Some a -> Audit.observe a ~party ~phase ~label value

let observe_noise t ~name ~level ~budget_bits =
  match t.flight with
  | None -> ()
  | Some fl -> Flight.record fl Flight.Noise ~name ~i:level ~x:budget_bits ()

let record_send t ?(seq = 0) ?(arrival_s = 0.0) ~sender ~receiver ~bytes () =
  match t.flight with
  | None -> ()
  | Some fl ->
    Flight.record fl Flight.Send ~name:(sender ^ "->" ^ receiver) ~i:bytes ~j:seq
      ~x:arrival_s ()

let warn t ~name ?(x = 0.0) () =
  match t.flight with
  | None -> ()
  | Some fl -> Flight.record fl Flight.Warning ~name ~x ()

(* Observe one pool call: chunk executions become child spans of the
   innermost open span, and — when a registry is attached — feed a
   per-label chunk-latency histogram and a worker-utilization gauge
   (busy time / (wall time × workers)).  Chunk stats also land in the
   flight recorder (replayed post-join in worker order, so still
   orchestrator-only). *)
let with_pool_chunks t ?(label = "pool") f =
  if
    (not (Trace.is_enabled t.trace))
    && Option.is_none t.metrics && Option.is_none t.flight
  then f ()
  else begin
    let stats = ref [] in
    let t0 = Timer.counter () in
    let x =
      Pool.with_chunk_observer
        (fun (st : Pool.chunk_stat) ->
          stats := st :: !stats;
          Trace.add_complete t.trace
            ~name:(Printf.sprintf "%s[%d,%d)" label st.Pool.chunk_lo st.Pool.chunk_hi)
            ~args:[ ("worker", string_of_int st.Pool.worker) ]
            ~start:st.Pool.chunk_start ~dur:st.Pool.chunk_seconds ();
          match t.flight with
          | None -> ()
          | Some fl ->
            Flight.record fl Flight.Chunk ~name:label ~i:st.Pool.chunk_lo
              ~j:st.Pool.chunk_hi ~x:st.Pool.chunk_seconds ())
        f
    in
    let wall = Timer.counter () -. t0 in
    (match t.metrics, List.rev !stats with
     | Some m, (_ :: _ as sl) ->
       let h = Metrics.histogram m ("pool." ^ label ^ ".chunk_seconds") in
       List.iter (fun st -> Metrics.observe h st.Pool.chunk_seconds) sl;
       let busy = List.fold_left (fun a st -> a +. st.Pool.chunk_seconds) 0.0 sl in
       let workers = 1 + List.fold_left (fun m st -> Stdlib.max m st.Pool.worker) 0 sl in
       if wall > 0.0 then
         Metrics.set
           (Metrics.gauge m ("pool." ^ label ^ ".utilization"))
           (busy /. (wall *. float_of_int workers))
     | _ -> ());
    x
  end
