module Pool = Util.Pool
module Timer = Util.Timer

type t = { trace : Trace.t; metrics : Metrics.t option; audit : Audit.t option }

let disabled = { trace = Trace.disabled; metrics = None; audit = None }

let create ?(trace = Trace.disabled) ?metrics ?audit () = { trace; metrics; audit }

let trace t = t.trace
let metrics t = t.metrics
let audit_channel t = t.audit

let is_disabled t =
  (not (Trace.is_enabled t.trace)) && Option.is_none t.metrics && Option.is_none t.audit

let with_span t ?kind ?counters ?args name f =
  Trace.with_span t.trace ?kind ?counters ?args name f

let observe_phase t name seconds =
  match t.metrics with
  | None -> ()
  | Some m -> Metrics.observe (Metrics.histogram m ("phase." ^ name ^ ".seconds")) seconds

let audit t ~party ~phase ~label value =
  match t.audit with
  | None -> ()
  | Some a -> Audit.observe a ~party ~phase ~label value

(* Observe one pool call: chunk executions become child spans of the
   innermost open span, and — when a registry is attached — feed a
   per-label chunk-latency histogram and a worker-utilization gauge
   (busy time / (wall time × workers)). *)
let with_pool_chunks t ?(label = "pool") f =
  if (not (Trace.is_enabled t.trace)) && Option.is_none t.metrics then f ()
  else begin
    let stats = ref [] in
    let t0 = Timer.counter () in
    let x =
      Pool.with_chunk_observer
        (fun (st : Pool.chunk_stat) ->
          stats := st :: !stats;
          Trace.add_complete t.trace
            ~name:(Printf.sprintf "%s[%d,%d)" label st.Pool.chunk_lo st.Pool.chunk_hi)
            ~args:[ ("worker", string_of_int st.Pool.worker) ]
            ~start:st.Pool.chunk_start ~dur:st.Pool.chunk_seconds ())
        f
    in
    let wall = Timer.counter () -. t0 in
    (match t.metrics, List.rev !stats with
     | Some m, (_ :: _ as sl) ->
       let h = Metrics.histogram m ("pool." ^ label ^ ".chunk_seconds") in
       List.iter (fun st -> Metrics.observe h st.Pool.chunk_seconds) sl;
       let busy = List.fold_left (fun a st -> a +. st.Pool.chunk_seconds) 0.0 sl in
       let workers = 1 + List.fold_left (fun m st -> Stdlib.max m st.Pool.worker) 0 sl in
       if wall > 0.0 then
         Metrics.set
           (Metrics.gauge m ("pool." ^ label ^ ".utilization"))
           (busy /. (wall *. float_of_int workers))
     | _ -> ());
    x
  end
