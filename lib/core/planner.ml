(* Automatic BGV parameter planning: search the (ring degree, modulus
   chain, plaintext prime) space for the cheapest parameter set a given
   workload can prove safe.

   The two halves of the objective already exist:

   - feasibility — Noise_model traces replicate the worst-case noise walk
     of every query path (the prepared/packed walks are the ones
     Party_a.prepare/prepare_packed audit; entities.ml delegates here so
     the planner and the live guard can never diverge), and
     Params.security_bits_for prices the RLWE floor;
   - cost — Cost_model.predict symbolically executes the candidate's
     circuit and a fitted unit model (Cost_model.fit_unit_model) prices
     the ledger at any (n, chain) shape from one measured calibration.

   This module is the search loop over both.  It deliberately depends
   only on Params probes (prime search, no ring context): the expensive
   NTT/CRT tables are built once, for the winning candidate, by
   [realize].  Everything is pure given the unit model, so the same spec
   always yields the byte-identical plan (tested). *)

module NM = Sknn_obs.Noise_model
module CM = Sknn_obs.Cost_model

let lg2 x = log x /. log 2.0

(* ------------------------------------------------------------------ *)
(* Worst-case noise forecasts per query path                           *)
(* ------------------------------------------------------------------ *)

(* Shared Return-kNN tail: return-level packed points against fresh
   indicator rows, summed across the database. *)
let return_tail nm tr ~return_level ~n_points fresh =
  let packed_ret = NM.truncate fresh ~level:(Stdlib.min return_level fresh.NM.level) in
  let row = NM.fresh_at nm ~level:return_level in
  ignore
    (NM.step tr "return-knn"
       (NM.mul_sum nm packed_ret row ~terms:(Stdlib.max 1 n_points)))

(* The level-drop rule of compute_distances_prepared, verbatim. *)
let drop_rule nm tr ~rescale_distances ~return_level (ed : NM.state) =
  let need = ed.NM.bits +. nm.NM.t_bits +. 17.0 in
  let lvl = ref 0 and bits = ref 0.0 in
  while !bits <= need && !lvl < ed.NM.level do
    bits := !bits +. nm.NM.moduli_bits.(!lvl);
    incr lvl
  done;
  let lvl = Stdlib.max !lvl return_level in
  if !bits > need && lvl < ed.NM.level then
    NM.step tr "truncate" (NM.truncate ed ~level:lvl)
  else if rescale_distances then
    NM.step tr "rescale-to-floor" (NM.rescale_to_floor nm ed)
  else ed

(* Worst-case end-of-circuit headroom for the prepared dot-product path
   (the walk Party_a.prepare runs before any ciphertext exists): fresh
   encryptions through ED = ||p||^2 - 2<p,q> + ||q||^2, the same
   level-drop rule compute_distances_prepared applies, the affine mask
   with worst-case (< t) coefficients, and the Return-kNN row selection
   at the return level.  A negative forecast means a live query would
   raise Decryption_failure. *)
let forecast_prepared ?(margin_bits = 4.0) (p : CM.params) =
  let nm = p.CM.nm in
  let tr = NM.start nm in
  let fresh = NM.step tr "fresh-encrypt" (NM.fresh nm) in
  let norm =
    if p.CM.per_coordinate then
      NM.step tr "prepare-norms"
        (NM.mul_sum nm fresh fresh ~terms:(Stdlib.max 1 p.CM.d))
    else fresh (* encrypted directly by the data owner *)
  in
  let ip = NM.step tr "inner-product" (NM.mul nm fresh fresh) in
  let ip2 = NM.step tr "scale-by-2" (NM.mul_scalar ip ~bits:1.0) in
  let ed = NM.step tr "ed-combine" (NM.sub (NM.add norm fresh) ip2) in
  let mask_bits = nm.NM.t_bits in
  let return_level = Stdlib.min p.CM.return_level (NM.chain_length nm) in
  let ed = drop_rule nm tr ~rescale_distances:p.CM.rescale_distances ~return_level ed in
  let m = NM.step tr "mask-scale" (NM.mul_scalar ed ~bits:(mask_bits -. 1.0)) in
  let m = NM.step tr "mask-shift" (NM.add_plain nm m) in
  ignore (NM.step tr "randomizer" (NM.add_plain nm m));
  return_tail nm tr ~return_level ~n_points:p.CM.n_points fresh;
  NM.report ~margin_bits tr

(* The packed SIMD circuit: strictly shallower than the prepared path —
   the inner product is d plain products summed slot-wise, so no tensor
   term ever appears and the level-drop rule applies to a smaller
   bound. *)
let forecast_packed ?(margin_bits = 4.0) (p : CM.params) =
  let nm = p.CM.nm in
  let tr = NM.start nm in
  let fresh = NM.step tr "fresh-encrypt" (NM.fresh nm) in
  let d = Stdlib.max 1 p.CM.d in
  let ip = NM.step tr "coordinate-products" (NM.mul_plain nm fresh) in
  let ip =
    NM.step tr "coordinate-sum" { ip with NM.bits = ip.NM.bits +. lg2 (float_of_int d) }
  in
  let ip2 = NM.step tr "scale-by-2" (NM.mul_scalar ip ~bits:1.0) in
  let ed = NM.step tr "ed-combine" (NM.sub (NM.add_plain nm fresh) ip2) in
  let mask_bits = nm.NM.t_bits in
  let return_level = Stdlib.min p.CM.return_level (NM.chain_length nm) in
  let ed = drop_rule nm tr ~rescale_distances:p.CM.rescale_distances ~return_level ed in
  let m = NM.step tr "mask-scale" (NM.mul_scalar ed ~bits:(mask_bits -. 1.0)) in
  let m = NM.step tr "mask-shift" (NM.add_plain nm m) in
  ignore (NM.step tr "tail-randomizer" (NM.add_plain nm m));
  return_tail nm tr ~return_level ~n_points:p.CM.n_points fresh;
  NM.report ~margin_bits tr

(* The plain (unprepared) path of Protocol.query: per-coordinate squared
   differences (or the dot-product trick) followed by the masking
   polynomial of the configured degree with worst-case (< t)
   coefficients in Horner form — the noise walk of
   Cost_model.predict_plain. *)
let forecast_plain ?(margin_bits = 4.0) (p : CM.params) =
  let nm = p.CM.nm in
  let tr = NM.start nm in
  let fresh = NM.step tr "fresh-encrypt" (NM.fresh nm) in
  let mask_bits = nm.NM.t_bits in
  let return_level = Stdlib.min p.CM.return_level (NM.chain_length nm) in
  if p.CM.per_coordinate then begin
    let diff = NM.step tr "coordinate-diff" (NM.sub fresh fresh) in
    let ed =
      NM.step tr "square-sum" (NM.mul_sum nm diff diff ~terms:(Stdlib.max 1 p.CM.d))
    in
    let ed =
      if p.CM.rescale_distances then
        NM.step tr "rescale-to-floor" (NM.rescale_to_floor nm ed)
      else ed
    in
    let degree = Stdlib.max 1 p.CM.mask_degree in
    let acc = ref (NM.step tr "mask-scale" (NM.mul_scalar ed ~bits:(mask_bits -. 1.0))) in
    for i = degree - 1 downto 0 do
      if i < degree - 1 then begin
        let x = NM.truncate ed ~level:(Stdlib.min ed.NM.level (!acc).NM.level) in
        let m = NM.mul nm !acc x in
        let m =
          if p.CM.use_relin && m.NM.degree = 2 then
            NM.relinearize nm ~digit_bits:p.CM.relin_digit_bits m
          else m
        in
        acc := NM.step tr "mask-horner-mul" m
      end;
      acc := NM.step tr "mask-shift" (NM.add_plain nm !acc)
    done
  end
  else begin
    let ip = NM.step tr "inner-product" (NM.mul nm fresh fresh) in
    let ip2 = NM.step tr "scale-by-2" (NM.mul_scalar ip ~bits:1.0) in
    let ed = NM.step tr "ed-combine" (NM.sub (NM.add fresh fresh) ip2) in
    let m = NM.step tr "mask-scale" (NM.mul_scalar ed ~bits:(mask_bits -. 1.0)) in
    let m = NM.step tr "mask-shift" (NM.add_plain nm m) in
    ignore (NM.step tr "randomizer" (NM.add_plain nm m))
  end;
  return_tail nm tr ~return_level ~n_points:p.CM.n_points fresh;
  NM.report ~margin_bits tr

(* Party_a.batch_query_level, on model parameters (as in Cost_model). *)
let batch_query_level (p : CM.params) ~q_noise_bits =
  let nm = p.CM.nm in
  let t_bits = nm.NM.t_bits in
  let ip =
    q_noise_bits +. p.CM.coord_bits
    +. lg2 (float_of_int (Stdlib.max 1 p.CM.d))
    +. 1.0
  in
  let ed = NM.log2_add (NM.log2_add q_noise_bits (t_bits -. 1.0)) ip in
  let masked = ed +. lg2 (float_of_int nm.NM.n) +. t_bits -. 1.0 in
  let masked = NM.log2_add masked (t_bits -. 1.0) in
  let need = masked +. 17.0 in
  let return_level = Stdlib.min p.CM.return_level (NM.chain_length nm) in
  let lvl = ref 0 and bits = ref 0.0 in
  while !bits <= need && !lvl < NM.chain_length nm do
    bits := !bits +. nm.NM.moduli_bits.(!lvl);
    incr lvl
  done;
  let lvl = Stdlib.max !lvl return_level in
  if !bits > need then Some lvl else None

(* The slot-dimension multi-query round: scalar coordinate products on
   the (predictively truncated) packed query ciphertexts, the per-query
   affine masks applied as packed plaintexts — Cost_model.predict_batch's
   noise walk. *)
let forecast_batch ?(margin_bits = 4.0) (p : CM.params) =
  let nm = p.CM.nm in
  let tr = NM.start nm in
  let fresh = NM.step tr "fresh-encrypt" (NM.fresh nm) in
  let return_level = Stdlib.min p.CM.return_level (NM.chain_length nm) in
  let drop = batch_query_level p ~q_noise_bits:fresh.NM.bits in
  let q =
    match drop with
    | Some lvl when lvl < fresh.NM.level ->
      NM.step tr "query-truncate" (NM.truncate fresh ~level:lvl)
    | _ -> fresh
  in
  let d = Stdlib.max 1 p.CM.d in
  let ip = ref (NM.mul_scalar q ~bits:p.CM.coord_bits) in
  for _ = 2 to d do
    ip := NM.add !ip (NM.mul_scalar q ~bits:p.CM.coord_bits)
  done;
  let ip = NM.step tr "coordinate-sum" !ip in
  let ed =
    NM.step tr "ed-combine" (NM.add_plain nm (NM.sub q (NM.mul_scalar ip ~bits:1.0)))
  in
  let ed =
    if drop = None && p.CM.rescale_distances then
      NM.step tr "rescale-to-floor" (NM.rescale_to_floor nm ed)
    else ed
  in
  let md = NM.step tr "mask-scale" (NM.mul_plain nm ed) in
  ignore (NM.step tr "mask-shift" (NM.add_plain nm md));
  return_tail nm tr ~return_level ~n_points:p.CM.n_points fresh;
  NM.report ~margin_bits tr

let forecast ?margin_bits (p : CM.params) = function
  | CM.Plain -> forecast_plain ?margin_bits p
  | CM.Prepared -> forecast_prepared ?margin_bits p
  | CM.Packed -> forecast_packed ?margin_bits p
  | CM.Batch _ -> forecast_batch ?margin_bits p

(* ------------------------------------------------------------------ *)
(* The search                                                          *)
(* ------------------------------------------------------------------ *)

type workload = {
  points : int;
  dim : int;
  k : int;
  coord_bits : int;
  layout : Config.layout;
  path : CM.path;
  mask_degree : int;
  mask_coeff_bits : int;
}

let workload ?(layout = Config.Dot_product) ?(path = CM.Packed) ?(mask_degree = 1)
    ?(mask_coeff_bits = 8) ~points ~dim ~k ~coord_bits () =
  { points; dim; k; coord_bits; layout; path; mask_degree; mask_coeff_bits }

type objective = First_query | Steady_state | Weighted of float

type constraints = {
  min_security_bits : float;
  noise_margin_bits : float;
  objective : objective;
  net : Profile.t option;
}

let default_constraints =
  { min_security_bits = 0.0;
    noise_margin_bits = 4.0;
    objective = Steady_state;
    net = None }

type spec = {
  sp_n : int;
  sp_plain_bits : int;
  sp_prime_bits : int;
  sp_chain_len : int;
  sp_return_level : int;
}

type entry = {
  spec : spec;
  probe : Params.probe;
  log2_q : float;
  security_bits : float;
  min_headroom_bits : float;
  first_seconds : float;
  steady_seconds : float;
  objective_seconds : float;
  phase_seconds : (string * float) list;
}

type outcome = {
  load : workload;
  limits : constraints;
  ranked : entry list;
  considered : int;
  infeasible : (string * int) list;
  pruned_noise : int;
  pruned_security : int;
}

(* The candidate axes.  Ring degrees 2^6 .. 2^13 — the low end is where
   the protocol presets live (correctness never needs a large ring; only
   a security floor pushes the degree up); prime widths under the
   Barrett (< 2^30) fast-path bound, which also satisfies Shoup
   (< 2^31); chains from the shallowest that can carry a circuit to the
   deepest preset's. *)
let ring_degrees = [ 64; 128; 256; 512; 1024; 2048; 4096; 8192 ]
let prime_bit_choices = [ 26; 28; 30 ]
let chain_lengths = [ 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15; 16 ]

(* The planner's candidates always rescale only on the plain
   per-coordinate path (where the masking polynomial consumes further
   depth); every other path relies on the level-drop rule, as the fast
   preset does. *)
let rescale_for w = w.path = CM.Plain && w.layout = Config.Per_coordinate

(* Minimal plaintext width: the masking envelope needs
   [coeffs + degree·input + log2 (degree+1) < log2 t] with the workload's
   requested coefficient width, and [probe] returns the largest prime
   below 2^plain_bits, so start just above the bound and bump if the
   prime found lands under it. *)
let min_plain_bits w =
  let input_bits = Attribution.max_distance_bits ~max_coord_bits:w.coord_bits ~d:w.dim in
  let need =
    float_of_int w.mask_coeff_bits
    +. (float_of_int w.mask_degree *. float_of_int input_bits)
    +. lg2 (float_of_int (w.mask_degree + 1))
  in
  (int_of_float (ceil need)) + 1

let objective_seconds limits ~first ~steady =
  match limits.objective with
  | First_query -> first
  | Steady_state -> steady
  | Weighted alpha ->
    let a = Float.max 0.0 (Float.min 1.0 alpha) in
    (a *. first) +. ((1.0 -. a) *. steady)

(* Compute cost of one query, plus — under a network profile — the
   virtual wire time of its predicted transcript.  The wire term is what
   lets a WAN objective reward the packed/batched paths' fewer, larger
   messages end-to-end, not just in compute. *)
let price ~unit_costs ?net (pred : CM.prediction) =
  let compute =
    List.fold_left
      (fun acc (ph : CM.phase) -> acc +. CM.predict_seconds ~unit_costs ph.CM.counters)
      0.0 pred.CM.phases
  in
  match net with
  | None -> compute
  | Some prof ->
    compute +. (Clock.replay prof pred.CM.transcript).Clock.end_to_end_s

let compare_entries a b =
  let c = Float.compare a.objective_seconds b.objective_seconds in
  if c <> 0 then c
  else
    let c = Float.compare a.steady_seconds b.steady_seconds in
    if c <> 0 then c
    else
      let c = Int.compare a.spec.sp_n b.spec.sp_n in
      if c <> 0 then c
      else
        let c = Int.compare a.spec.sp_chain_len b.spec.sp_chain_len in
        if c <> 0 then c
        else
          let c = Int.compare a.spec.sp_prime_bits b.spec.sp_prime_bits in
          if c <> 0 then c
          else Int.compare a.spec.sp_return_level b.spec.sp_return_level

let plan ?(keep = 10) ~unit_model (w : workload) (limits : constraints) : outcome =
  if w.points < 1 then invalid_arg "Planner.plan: empty database";
  if w.dim < 1 then invalid_arg "Planner.plan: dimension < 1";
  if w.k < 1 || w.k > w.points then invalid_arg "Planner.plan: k out of range";
  if w.coord_bits < 1 || w.coord_bits > 20 then
    invalid_arg "Planner.plan: coord_bits out of range";
  if w.mask_degree < 1 then invalid_arg "Planner.plan: mask_degree < 1";
  if w.mask_degree > 1 && (w.layout = Config.Dot_product || w.path <> CM.Plain) then
    invalid_arg "Planner.plan: only the plain per-coordinate path supports mask_degree > 1";
  (match w.path with
   | CM.Batch m when m < 1 -> invalid_arg "Planner.plan: empty batch"
   | _ -> ());
  let infeasible = Hashtbl.create 8 in
  let count_infeasible reason =
    Hashtbl.replace infeasible reason
      (1 + Option.value ~default:0 (Hashtbl.find_opt infeasible reason))
  in
  let considered = ref 0 in
  let pruned_noise = ref 0 and pruned_security = ref 0 in
  let plain_bits0 = min_plain_bits w in
  let entries = ref [] in
  let rescale_distances = rescale_for w in
  List.iter
    (fun n ->
      (* The dot-product coefficient embedding and the packed slot layout
         both need d within the ring. *)
      if w.layout = Config.Dot_product && w.dim > n then count_infeasible "dim-exceeds-ring"
      else
        List.iter
          (fun prime_bits ->
            List.iter
              (fun chain_len ->
                incr considered;
                match
                  (* The largest prime below 2^plain_bits can land under
                     the envelope bound; widen until the width is sound
                     at the workload's requested coefficient width. *)
                  let rec probe_sound plain_bits =
                    if plain_bits > 50 then None
                    else
                      let pr =
                        Params.probe
                          ~name:
                            (Printf.sprintf "plan-n%d-q%dx%d" n chain_len prime_bits)
                          ~n ~plain_bits ~prime_bits ~chain_len ()
                      in
                      let sound =
                        Masking.max_coeff_bits ~t_plain:pr.Params.pr_t_plain
                          ~input_bits:
                            (Attribution.max_distance_bits
                               ~max_coord_bits:w.coord_bits ~d:w.dim)
                          ~degree:w.mask_degree
                      in
                      if sound >= w.mask_coeff_bits then Some (plain_bits, pr)
                      else probe_sound (plain_bits + 1)
                  in
                  probe_sound plain_bits0
                with
                | exception Params.Infeasible reason ->
                  count_infeasible
                    (match reason with
                     | Params.No_plain_prime _ -> "no-plain-prime"
                     | Params.Prime_bits_too_large _ -> "prime-bits"
                     | Params.Chain_exhausted _ -> "chain-exhausted")
                | None -> count_infeasible "mask-envelope"
                | Some (plain_bits, pr) ->
                  let log2_q = Params.probe_log2_q pr in
                  let security = Params.security_bits_for ~n ~log2_q in
                  if security < limits.min_security_bits then incr pruned_security
                  else begin
                    (* Lowest return level whose forecast clears the
                       margin: lower is cheaper (Return-kNN encrypts at
                       it, and the level-drop rule floors at it). *)
                    let model rl =
                      Attribution.model_params_probe pr ~layout:w.layout
                        ~mask_degree:w.mask_degree ~mask_coeff_bits:w.mask_coeff_bits
                        ~max_coord_bits:w.coord_bits ~use_relin:false
                        ~rescale_distances ~return_level:rl ~n:w.points ~d:w.dim
                        ~k:w.k
                    in
                    let rec first_feasible rl =
                      if rl > chain_len then None
                      else
                        let report =
                          forecast ~margin_bits:limits.noise_margin_bits (model rl)
                            w.path
                        in
                        if report.NM.below_margin then first_feasible (rl + 1)
                        else Some (rl, report)
                    in
                    match first_feasible 1 with
                    | None -> incr pruned_noise
                    | Some (rl, report) ->
                      let p = model rl in
                      let unit_costs =
                        CM.unit_costs_for unit_model ~n ~levels:chain_len
                      in
                      let pred_first = CM.predict ~include_prepare:true p w.path in
                      let pred_steady = CM.predict ~include_prepare:false p w.path in
                      let first = price ~unit_costs ?net:limits.net pred_first in
                      let steady = price ~unit_costs ?net:limits.net pred_steady in
                      let entry =
                        { spec =
                            { sp_n = n; sp_plain_bits = plain_bits;
                              sp_prime_bits = prime_bits; sp_chain_len = chain_len;
                              sp_return_level = rl };
                          probe = pr;
                          log2_q;
                          security_bits = security;
                          min_headroom_bits = report.NM.min_headroom_bits;
                          first_seconds = first;
                          steady_seconds = steady;
                          objective_seconds =
                            objective_seconds limits ~first ~steady;
                          phase_seconds =
                            Attribution.predicted_phase_seconds ~unit_costs
                              pred_steady }
                      in
                      entries := entry :: !entries
                  end)
              chain_lengths)
          prime_bit_choices)
    ring_degrees;
  let ranked =
    List.sort compare_entries !entries
    |> List.filteri (fun i _ -> i < Stdlib.max 1 keep)
  in
  { load = w;
    limits;
    ranked;
    considered = !considered;
    infeasible =
      Hashtbl.fold (fun r c acc -> (r, c) :: acc) infeasible []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    pruned_noise = !pruned_noise;
    pruned_security = !pruned_security }

let best outcome =
  match outcome.ranked with [] -> None | e :: _ -> Some e

(* ------------------------------------------------------------------ *)
(* Realization                                                         *)
(* ------------------------------------------------------------------ *)

let realize (w : workload) (e : entry) : Config.t =
  let bgv = Params.of_probe e.probe in
  let config =
    { Config.bgv;
      layout = w.layout;
      mask_degree = w.mask_degree;
      mask_coeff_bits = w.mask_coeff_bits;
      max_coord_bits = w.coord_bits;
      use_relin = false;
      rescale_distances = rescale_for w;
      return_level = e.spec.sp_return_level }
  in
  (match Config.validate config ~d:w.dim with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Planner.realize: " ^ msg));
  config

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let path_name = function
  | CM.Plain -> "plain"
  | CM.Prepared -> "prepared"
  | CM.Packed -> "packed"
  | CM.Batch m -> Printf.sprintf "batch-%d" m

let json_of_entry buf e =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"n\":%d,\"plain_bits\":%d,\"prime_bits\":%d,\"chain_len\":%d,\
        \"return_level\":%d,\"t_plain\":%Ld,\"log2_q\":%.6g,\
        \"security_bits\":%.6g,\"min_headroom_bits\":%.6g,\
        \"first_seconds\":%.9g,\"steady_seconds\":%.9g,\
        \"objective_seconds\":%.9g,\"phases\":["
       e.spec.sp_n e.spec.sp_plain_bits e.spec.sp_prime_bits e.spec.sp_chain_len
       e.spec.sp_return_level e.probe.Params.pr_t_plain e.log2_q e.security_bits
       e.min_headroom_bits e.first_seconds e.steady_seconds e.objective_seconds);
  List.iteri
    (fun i (name, s) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "{\"phase\":%S,\"s\":%.9g}" name s))
    e.phase_seconds;
  Buffer.add_string buf "]}"

let json_of_outcome o =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"rec\":\"plan\",\"workload\":{\"points\":%d,\"dim\":%d,\"k\":%d,\
        \"coord_bits\":%d,\"layout\":%S,\"path\":%S,\"mask_degree\":%d,\
        \"mask_coeff_bits\":%d},\"constraints\":{\"min_security_bits\":%.6g,\
        \"noise_margin_bits\":%.6g,\"net\":%S},\"considered\":%d,\
        \"pruned_noise\":%d,\"pruned_security\":%d,\"infeasible\":["
       o.load.points o.load.dim o.load.k o.load.coord_bits
       (Config.layout_name o.load.layout)
       (path_name o.load.path) o.load.mask_degree o.load.mask_coeff_bits
       o.limits.min_security_bits o.limits.noise_margin_bits
       (match o.limits.net with None -> "none" | Some p -> Profile.to_string p)
       o.considered o.pruned_noise o.pruned_security);
  List.iteri
    (fun i (reason, count) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "{\"reason\":%S,\"count\":%d}" reason count))
    o.infeasible;
  Buffer.add_string buf "],\"ranked\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      json_of_entry buf e)
    o.ranked;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Table rendering (shared by the CLI verb and tests)                  *)
(* ------------------------------------------------------------------ *)

let pp_seconds ppf s =
  if s < 1e-3 then Format.fprintf ppf "%.1fus" (s *. 1e6)
  else if s < 1.0 then Format.fprintf ppf "%.2fms" (s *. 1e3)
  else Format.fprintf ppf "%.2fs" s

let pp_entry ppf (i, e) =
  Format.fprintf ppf "%2d. n=%-5d chain=%2d x %2d-bit t=2^%-2d rl=%d  %a steady"
    (i + 1) e.spec.sp_n e.spec.sp_chain_len e.spec.sp_prime_bits e.spec.sp_plain_bits
    e.spec.sp_return_level pp_seconds e.steady_seconds;
  Format.fprintf ppf "  %a first  %5.1f bits headroom  %5.1f bits security@,"
    pp_seconds e.first_seconds e.min_headroom_bits e.security_bits

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v>plan: %s path, %d points x %d dims, k=%d, coords<=%d bits@,"
    (path_name o.load.path) o.load.points o.load.dim o.load.k o.load.coord_bits;
  (match o.limits.net with
   | None -> ()
   | Some p -> Format.fprintf ppf "objective priced end-to-end over %a@," Profile.pp p);
  Format.fprintf ppf
    "searched %d candidates: %d ranked, %d noise-pruned, %d security-pruned"
    o.considered (List.length o.ranked) o.pruned_noise o.pruned_security;
  List.iter
    (fun (reason, count) -> Format.fprintf ppf ", %d %s" count reason)
    o.infeasible;
  Format.fprintf ppf "@,";
  List.iteri (fun i e -> pp_entry ppf (i, e)) o.ranked;
  (match best o with
   | None -> Format.fprintf ppf "no feasible parameter set@,"
   | Some e ->
     Format.fprintf ppf "@,winner phase forecast (steady state):@,";
     List.iter
       (fun (name, s) -> Format.fprintf ppf "  %-20s %a@," name pp_seconds s)
       e.phase_seconds);
  Format.fprintf ppf "@]"
