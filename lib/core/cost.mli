(** The analytical cost model of Table 1, next to measured values.

    Table 1 compares our protocol with Yousef et al. on five rows:
    homomorphic operations, encryptions, decryptions (Party B), round
    communications, and communication per round.  [ours]/[yousef] give
    the asymptotic predictions instantiated with concrete constants;
    [measured] extracts the same quantities from a live protocol run so
    the benchmark can print "predicted vs measured" per cell. *)

type row = {
  hom_ops : int;        (** homomorphic evaluations *)
  encryptions : int;
  decryptions : int;    (** at the key-holding party *)
  rounds : int;         (** A↔B communication rounds *)
  bytes : int;          (** total A↔B payload *)
}

val ours : ?bytes:int -> n:int -> d:int -> k:int -> mask_degree:int -> unit -> row
(** O(n(k + d + D)) homomorphic ops, O(nk) encryptions, O(n)
    decryptions, 1 round — instantiated with this implementation's exact
    constants.  [bytes] is the predicted A<->B payload from serialized
    ciphertext sizes ({!Sknn_obs.Cost_model.prediction}[.ab_bytes] via
    [Attribution.predict]); it defaults to 0 for callers without a
    parameter set in hand, since unlike the event counts it cannot be
    derived from (n, d, k, D) alone. *)

val yousef : n:int -> d:int -> k:int -> l:int -> row
(** O(n(2kl + d)) homomorphic ops, O(nkl) encryptions, O(n(kl + d))
    decryptions, O(k) rounds, for l-bit values (Table 1's published
    asymptotics with unit constants). *)

val measured : Protocol.result -> row
(** Party A + Party B homomorphic work, Party B encryptions/decryptions,
    measured A↔B rounds and bytes from the transcript. *)

val within_asymptotic : measured:row -> predicted:row -> slack:float -> bool
(** Each measured count is at most [slack] times the prediction (and the
    prediction is not wildly pessimistic either: measured >=
    predicted / slack for nonzero rows). *)

val pp : Format.formatter -> row -> unit
