let view_multiset (v : Entities.Party_b.view) =
  let a = Array.copy v.Entities.Party_b.masked_distances in
  Array.sort Int64.compare a;
  a

let equidistant_group_sizes v =
  let sorted = view_multiset v in
  let groups = ref [] in
  let run = ref 1 in
  for i = 1 to Array.length sorted - 1 do
    if Int64.equal sorted.(i) sorted.(i - 1) then incr run
    else begin
      if !run > 1 then groups := !run :: !groups;
      run := 1
    end
  done;
  if !run > 1 then groups := !run :: !groups;
  Array.of_list (List.rev !groups)

let equidistant_pairs v =
  Array.fold_left (fun acc g -> acc + (g * (g - 1) / 2)) 0 (equidistant_group_sizes v)

let recovers_true_order v true_dists =
  let masked = view_multiset v in
  let dists = Array.copy true_dists in
  Array.sort Int.compare dists;
  Array.length masked = Array.length dists
  &&
  (* Order-preservation: equal true distances <-> equal masked values,
     strictly smaller <-> strictly smaller, position by position in the
     two sorted sequences. *)
  let ok = ref true in
  for i = 1 to Array.length dists - 1 do
    let same_true = dists.(i) = dists.(i - 1) in
    let same_masked = Int64.equal masked.(i) masked.(i - 1) in
    if same_true <> same_masked then ok := false;
    if (not same_true) && Int64.compare masked.(i) masked.(i - 1) <= 0 then ok := false
  done;
  !ok

let mask_hides_values v true_dists =
  let masked = v.Entities.Party_b.masked_distances in
  let as_set = Hashtbl.create 16 in
  Array.iter (fun d -> Hashtbl.replace as_set (Int64.of_int d) ()) true_dists;
  not (Array.exists (fun m -> Hashtbl.mem as_set m) masked)
