module Rng = Util.Rng
module Counters = Util.Counters
module Obs = Sknn_obs.Ctx
module Otrace = Sknn_obs.Trace
module Audit = Sknn_obs.Audit
module Metrics = Sknn_obs.Metrics

type deployment = {
  config : Config.t;
  db_n : int;
  db_d : int;
  db : int array array;
      (* the plaintext database — retained for the slot-packed path,
         which models Party A as the data owner's delegate (SANNS-style
         outsourced queries; see Entities.Party_a.prepare_packed) *)
  a : Entities.Party_a.t;
  b : Entities.Party_b.t;
  cl : Entities.Client.t;
  setup_transcript : Transcript.t;
  query_seed : Rng.t; (* source of per-query randomness *)
  jobs : int;
  mutable prepared : Entities.Party_a.prepared option;
      (* query-independent state for the multi-query path, built lazily
         on the first prepared query and reused for the rest of the
         deployment's lifetime *)
  mutable prepared_packed : Entities.Party_a.prepared_packed option;
}

let config d = d.config
let db_size d = d.db_n
let dimension d = d.db_d
let setup_transcript d = d.setup_transcript
let party_a d = d.a
let party_b d = d.b
let client d = d.cl
let jobs d = d.jobs

let pk_bytes config =
  (* Two ring elements at the full chain, 4 bytes per residue. *)
  let p = config.Config.bgv in
  2 * Params.chain_length p * p.Params.n * 4

(* Fold a finished transcript into the per-party counters: every entry's
   bytes to its sender, and each link's round count to both endpoints.
   This is what makes [Counters.rounds]/[bytes_sent] report measured
   values instead of staying at zero. *)
let tally_transcript tr counter_of =
  List.iter
    (fun (e : Transcript.entry) ->
      match counter_of e.Transcript.sender with
      | None -> ()
      | Some c -> Counters.record c (Counters.Bytes_sent e.Transcript.bytes))
    (Transcript.entries tr);
  List.iter
    (fun ((x, y), _) ->
      let r = Transcript.rounds tr x y in
      let add p = match counter_of p with
        | None -> ()
        | Some c -> Counters.record_n c Counters.Round r
      in
      add x; add y)
    (Transcript.links tr)

(* Record a transcript entry and mirror it into the flight recorder, so
   a post-mortem dump shows the link traffic leading up to a failure.
   With a clock cursor (a --net run) the flight event also carries the
   message's transcript seq and virtual arrival time; stepping the
   cursor in send order reproduces Clock.replay of the final transcript
   exactly. *)
let send_tracked ?clock obs tr ~sender ~receiver ~label ~bytes =
  Transcript.send tr ~sender ~receiver ~label ~bytes;
  let sender_n = Transcript.party_name sender in
  let receiver_n = Transcript.party_name receiver in
  match clock with
  | None -> Obs.record_send obs ~sender:sender_n ~receiver:receiver_n ~bytes ()
  | Some c ->
    let _departure, arrival = Clock.step c ~sender ~receiver ~bytes in
    Obs.record_send obs
      ~seq:(Transcript.messages tr - 1)
      ~arrival_s:arrival ~sender:sender_n ~receiver:receiver_n ~bytes ()

let deploy ?(obs = Obs.disabled) ?rng ?counters ?jobs config ~db =
  let rng = match rng with Some r -> r | None -> Rng.of_int 0x5ecdb in
  let jobs = match jobs with Some j -> j | None -> Util.Pool.default_jobs () in
  let owner =
    Obs.with_span obs ~kind:Otrace.Phase "keygen" (fun () ->
        Entities.Data_owner.create (Rng.split rng) config)
  in
  let enc_db =
    Entities.Data_owner.encrypt_db ~obs ?counters ~jobs (Rng.split rng) owner db
  in
  let keys = Entities.Data_owner.keys owner in
  let a = Entities.Party_a.create ~jobs config keys.Bgv.pk keys.Bgv.rlk enc_db in
  let b = Entities.Party_b.create ~jobs config keys.Bgv.sk keys.Bgv.pk in
  let cl = Entities.Client.create ~jobs config keys.Bgv.sk keys.Bgv.pk in
  let tr = Transcript.create () in
  let open Transcript in
  send_tracked obs tr ~sender:Data_owner ~receiver:Party_a ~label:"public key"
    ~bytes:(pk_bytes config);
  send_tracked obs tr ~sender:Data_owner ~receiver:Party_a ~label:"encrypted database"
    ~bytes:(Entities.db_bytes enc_db);
  send_tracked obs tr ~sender:Data_owner ~receiver:Party_b ~label:"secret + public key"
    ~bytes:(config.Config.bgv.Params.n + pk_bytes config);
  send_tracked obs tr ~sender:Data_owner ~receiver:Client ~label:"secret + public key"
    ~bytes:(config.Config.bgv.Params.n + pk_bytes config);
  tally_transcript tr (function
    | Transcript.Data_owner -> counters
    | _ -> None);
  { config;
    db_n = Array.length db;
    db_d = Array.length db.(0);
    db;
    a; b; cl;
    setup_transcript = tr;
    query_seed = Rng.split rng;
    jobs;
    prepared = None;
    prepared_packed = None }

type result = {
  neighbours : int array array;
  k : int;
  phase_seconds : (string * float) list;
  transcript : Transcript.t;
  counters_a : Util.Counters.t;
  counters_b : Util.Counters.t;
  counters_client : Util.Counters.t;
  view_b : Entities.Party_b.view;
  net : Clock.timeline option;
}

(* Post-query network accounting for a --net run: replay the finished
   transcript into a virtual timeline, export the per-link figures as
   sknn_link_* metric families, and hand the trace one wire event per
   message for the virtual-network lanes. *)
let observe_net obs tr = function
  | None -> None
  | Some prof ->
    let tl = Clock.replay prof tr in
    (match Obs.metrics obs with
     | None -> ()
     | Some m ->
       List.iter
         (fun (l : Clock.link) ->
           let key =
             Printf.sprintf "link.%s-%s" (Transcript.party_name l.Clock.link_a)
               (Transcript.party_name l.Clock.link_b)
           in
           Metrics.set (Metrics.gauge m (key ^ ".busy_seconds")) l.Clock.busy_s;
           Metrics.inc ~by:l.Clock.link_rounds (Metrics.counter m (key ^ ".rounds")))
         tl.Clock.links;
       Metrics.set (Metrics.gauge m "net.end_to_end_seconds") tl.Clock.end_to_end_s);
    let trace = Obs.trace obs in
    if Otrace.is_enabled trace then
      List.iter
        (fun (msg : Clock.message) ->
          let e = msg.Clock.entry in
          let x, y =
            if e.Transcript.sender < e.Transcript.receiver then
              (e.Transcript.sender, e.Transcript.receiver)
            else (e.Transcript.receiver, e.Transcript.sender)
          in
          Otrace.add_wire trace
            ~link:(Transcript.party_name x ^ "<->" ^ Transcript.party_name y)
            ~label:e.Transcript.label
            ~args:
              [ ("seq", string_of_int e.Transcript.seq);
                ("from", Transcript.party_name e.Transcript.sender);
                ("to", Transcript.party_name e.Transcript.receiver);
                ("bytes", string_of_int e.Transcript.bytes) ]
            ~start:msg.Clock.departure_s
            ~dur:(msg.Clock.arrival_s -. msg.Clock.departure_s)
            ())
        tl.Clock.messages;
    Some tl

let timed obs phases ?counters name f =
  (* The watched counters name the parties at work, which the chrome
     trace sink turns into per-party lanes. *)
  let args =
    match counters with
    | None | Some [] -> []
    | Some cs -> [ ("party", String.concat "+" (List.map fst cs)) ]
  in
  Obs.with_span obs ~kind:Otrace.Phase ?counters ~args name (fun () ->
      let x, dt = Util.Timer.time f in
      phases := (name, dt) :: !phases;
      Obs.observe_phase obs name dt;
      x)

(* Sample chain level and noise-budget headroom of a ciphertext batch
   into the metrics registry (stride keeps it O(16) per batch).  Runs in
   the orchestrating domain only, after the batch is complete. *)
let level_buckets = [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 8.0 |]
let noise_buckets = [| 0.0; 8.0; 16.0; 24.0; 32.0; 48.0; 64.0; 96.0; 128.0 |]

let sample_cts obs ~name cts =
  let m = Obs.metrics obs in
  let flight_on = Option.is_some (Obs.flight obs) in
  let n = Array.length cts in
  if n > 0 && (Option.is_some m || flight_on) then begin
    let hists =
      Option.map
        (fun m ->
          ( Metrics.histogram ~buckets:level_buckets m ("bgv." ^ name ^ ".level"),
            Metrics.histogram ~buckets:noise_buckets m ("bgv." ^ name ^ ".noise_budget_bits")
          ))
        m
    in
    let stride = Stdlib.max 1 (n / 16) in
    let min_budget = ref infinity in
    let i = ref 0 in
    while !i < n do
      let level = Bgv.level cts.(!i) in
      let budget = Bgv.noise_budget_bits cts.(!i) in
      if budget < !min_budget then min_budget := budget;
      (match hists with
       | None -> ()
       | Some (h_lvl, h_nb) ->
         Metrics.observe h_lvl (float_of_int level);
         Metrics.observe h_nb budget);
      Obs.observe_noise obs ~name ~level ~budget_bits:budget;
      i := !i + stride
    done;
    match m with
    | None -> ()
    | Some m ->
      (* Per-phase headroom gauge: the tightest sampled budget this
         batch, the number a dashboard alerts on. *)
      Metrics.set (Metrics.gauge m ("bgv." ^ name ^ ".min_noise_budget_bits")) !min_budget
  end

let query_ct_count (q : Entities.encrypted_query) =
  (match q.Entities.q_coords with None -> 0 | Some a -> Array.length a)
  + (match q.Entities.q_rev with None -> 0 | Some _ -> 1)
  + (match q.Entities.q_norm with None -> 0 | Some _ -> 1)

(* How a single query runs: the per-query path of the paper, the
   PR-3 prepared (inner-product) path, or the slot-packed SIMD path. *)
type path = Path_plain | Path_prepared | Path_packed

(* Per-query state, tagged by path so the driver below can dispatch the
   four path-dependent stages without duplicating the pipeline. *)
type prep_state =
  | Prep_none
  | Prep_ip of Entities.Party_a.prepared
  | Prep_packed of Entities.Party_a.prepared_packed

let query_gen ~path ?(obs = Obs.disabled) ?rng ?net d ~query ~k =
  let rng = match rng with Some r -> r | None -> Rng.split d.query_seed in
  if Array.length query <> d.db_d then invalid_arg "Protocol.query: dimension mismatch";
  if k < 1 || k > d.db_n then invalid_arg "Protocol.query: k out of range";
  let ca = Entities.Party_a.counters d.a in
  let cb = Entities.Party_b.counters d.b in
  let cc = Entities.Client.counters d.cl in
  Counters.reset ca;
  Counters.reset cb;
  Counters.reset cc;
  let tr = Transcript.create () in
  let clock = Option.map Clock.cursor net in
  let send_tracked = send_tracked ?clock in
  let phases = ref [] in
  (* Prepared/packed paths: build the query-independent state once per
     deployment; only the first such query pays (and records) the
     "prepare-db" phase. *)
  let prep =
    match path with
    | Path_plain -> Prep_none
    | Path_prepared ->
      (match d.prepared with
       | Some p -> Prep_ip p
       | None ->
         let p =
           timed obs phases ~counters:[ ("party-a", ca) ] "prepare-db" (fun () ->
               Entities.Party_a.prepare ~obs d.a)
         in
         d.prepared <- Some p;
         Prep_ip p)
    | Path_packed ->
      (match d.prepared_packed with
       | Some p -> Prep_packed p
       | None ->
         let p =
           timed obs phases ~counters:[ ("party-a", ca) ] "prepare-db" (fun () ->
               Entities.Party_a.prepare_packed ~obs d.a ~db:d.db)
         in
         d.prepared_packed <- Some p;
         Prep_packed p)
  in
  (* Client: encrypt the query and send it to Party A (label 4, Fig. 2). *)
  let q_enc =
    timed obs phases ~counters:[ ("client", cc) ] "encrypt-query" (fun () ->
        match prep with
        | Prep_none -> Entities.Client.encrypt_query d.cl rng query
        | Prep_ip _ -> Entities.Client.encrypt_query_ip d.cl rng query
        | Prep_packed _ -> Entities.Client.encrypt_query_packed d.cl rng query)
  in
  send_tracked obs tr ~sender:Transcript.Client ~receiver:Transcript.Party_a
    ~label:"encrypted query" ~bytes:(Entities.query_bytes q_enc);
  Obs.audit obs ~party:"party-a" ~phase:"compute-distances" ~label:"query-ciphertexts"
    (Audit.Int (query_ct_count q_enc));
  Obs.audit obs ~party:"party-a" ~phase:"compute-distances" ~label:"query-bytes"
    (Audit.Int (Entities.query_bytes q_enc));
  (* Party A: Compute Distances (Algorithm 1). *)
  let state, masked =
    timed obs phases ~counters:[ ("party-a", ca) ] "compute-distances" (fun () ->
        match prep with
        | Prep_none -> Entities.Party_a.compute_distances ~obs d.a rng q_enc
        | Prep_ip p -> Entities.Party_a.compute_distances_prepared ~obs d.a p rng q_enc
        | Prep_packed p -> Entities.Party_a.compute_distances_packed ~obs d.a p rng q_enc)
  in
  sample_cts obs ~name:"masked-distance" masked;
  send_tracked obs tr ~sender:Transcript.Party_a ~receiver:Transcript.Party_b
    ~label:"masked permuted distances"
    ~bytes:(Array.fold_left (fun s ct -> s + Bgv.byte_size ct) 0 masked);
  (* Party B: Find Neighbours (Algorithm 2), with the indicator vectors
     streamed row by row; Party A folds each row into Return kNN
     (Algorithm 3) as it arrives. *)
  let view =
    timed obs phases ~counters:[ ("party-b", cb) ] "find-neighbours" (fun () ->
        match prep with
        | Prep_packed _ ->
          Entities.Party_b.select_neighbours_packed ~obs d.b masked ~n:d.db_n ~k
        | Prep_none | Prep_ip _ -> Entities.Party_b.select_neighbours ~obs d.b masked ~k)
  in
  Obs.audit obs ~party:"party-b" ~phase:"find-neighbours" ~label:"n" (Audit.Int d.db_n);
  Obs.audit obs ~party:"party-b" ~phase:"find-neighbours" ~label:"k" (Audit.Int k);
  Obs.audit obs ~party:"party-b" ~phase:"find-neighbours"
    ~label:"masked-distance-multiset"
    (Audit.Int64s (Leakage.view_multiset view));
  Obs.audit obs ~party:"party-b" ~phase:"find-neighbours"
    ~label:"equidistant-group-sizes"
    (Audit.Ints (Leakage.equidistant_group_sizes view));
  let indicator_bytes = ref 0 in
  let results =
    timed obs phases
      ~counters:[ ("party-a", ca); ("party-b", cb) ]
      "return-knn"
      (fun () ->
        let packed =
          match prep with
          | Prep_ip p -> Entities.Party_a.permuted_packed_prepared p state
          | Prep_packed p -> Entities.Party_a.permuted_return_packed p state
          | Prep_none -> Entities.Party_a.permuted_packed d.a state
        in
        Array.init k (fun j ->
            Obs.with_span obs
              ~counters:[ ("party-a", ca); ("party-b", cb) ]
              ~args:[ ("j", string_of_int j) ]
              "indicator-row"
              (fun () ->
                let row = Entities.Party_b.indicator_row ~obs d.b rng view ~n:d.db_n ~j in
                let bytes = Array.fold_left (fun s ct -> s + Bgv.byte_size ct) 0 row in
                indicator_bytes := !indicator_bytes + bytes;
                send_tracked obs tr ~sender:Transcript.Party_b ~receiver:Transcript.Party_a
                  ~label:(Printf.sprintf "indicator vector B^%d" (j + 1))
                  ~bytes;
                Entities.Party_a.select_row ~obs d.a packed row)))
  in
  sample_cts obs ~name:"result" results;
  Obs.audit obs ~party:"party-a" ~phase:"return-knn" ~label:"indicator-ciphertexts"
    (Audit.Int (k * d.db_n));
  Obs.audit obs ~party:"party-a" ~phase:"return-knn" ~label:"indicator-bytes"
    (Audit.Int !indicator_bytes);
  send_tracked obs tr ~sender:Transcript.Party_a ~receiver:Transcript.Client
    ~label:"encrypted k-NN result"
    ~bytes:(Array.fold_left (fun s ct -> s + Bgv.byte_size ct) 0 results);
  let neighbours =
    timed obs phases ~counters:[ ("client", cc) ] "decrypt-result" (fun () ->
        Entities.Client.decrypt_points ~obs d.cl ~d:d.db_d results)
  in
  Obs.audit obs ~party:"client" ~phase:"decrypt-result" ~label:"neighbour-count"
    (Audit.Int k);
  tally_transcript tr (function
    | Transcript.Party_a -> Some ca
    | Transcript.Party_b -> Some cb
    | Transcript.Client -> Some cc
    | Transcript.Data_owner -> None);
  (match Obs.metrics obs with
   | None -> ()
   | Some m ->
     List.iter
       (fun ((x, y), bytes) ->
         Metrics.set
           (Metrics.gauge m
              (Printf.sprintf "transcript.%s-%s.bytes" (Transcript.party_name x)
                 (Transcript.party_name y)))
           (float_of_int bytes))
       (Transcript.links tr);
     List.iter
       (fun (party, c) -> Metrics.record_ledger m ~party c)
       [ ("party-a", ca); ("party-b", cb); ("client", cc) ]);
  let net_timeline = observe_net obs tr net in
  { neighbours;
    k;
    phase_seconds = List.rev !phases;
    transcript = tr;
    counters_a = ca;
    counters_b = cb;
    counters_client = cc;
    view_b = view;
    net = net_timeline }

let query ?obs ?rng ?net d ~query ~k =
  query_gen ~path:Path_plain ?obs ?rng ?net d ~query ~k

let query_prepared ?obs ?rng ?net d ~query ~k =
  query_gen ~path:Path_prepared ?obs ?rng ?net d ~query ~k

let query_packed ?obs ?rng ?net d ~query ~k =
  query_gen ~path:Path_packed ?obs ?rng ?net d ~query ~k

let prepare ?(obs = Obs.disabled) d =
  match d.prepared with
  | Some _ -> ()
  | None -> d.prepared <- Some (Entities.Party_a.prepare ~obs d.a)

let is_prepared d = Option.is_some d.prepared

let prepare_packed ?(obs = Obs.disabled) d =
  match d.prepared_packed with
  | Some _ -> ()
  | None -> d.prepared_packed <- Some (Entities.Party_a.prepare_packed ~obs d.a ~db:d.db)

let is_packed_prepared d = Option.is_some d.prepared_packed

let run_queries ?obs ?rng ?net d ~queries ~k =
  let rng = match rng with Some r -> r | None -> d.query_seed in
  Array.map
    (fun q -> query_prepared ?obs ~rng:(Rng.split rng) ?net d ~query:q ~k)
    queries

let run_queries_packed ?obs ?rng ?net d ~queries ~k =
  let rng = match rng with Some r -> r | None -> d.query_seed in
  Array.map
    (fun q -> query_packed ?obs ~rng:(Rng.split rng) ?net d ~query:q ~k)
    queries

(* M queries in one protocol round through the slot dimension.  The
   phase list, transcript and counters describe the whole round and are
   shared by the M results; neighbours and views are per query. *)
let query_batch ?(obs = Obs.disabled) ?rng ?net d ~queries ~k =
  let rng = match rng with Some r -> r | None -> Rng.split d.query_seed in
  let m = Array.length queries in
  if m = 0 then invalid_arg "Protocol.query_batch: empty batch";
  Array.iter
    (fun q ->
      if Array.length q <> d.db_d then
        invalid_arg "Protocol.query_batch: dimension mismatch")
    queries;
  if k < 1 || k > d.db_n then invalid_arg "Protocol.query_batch: k out of range";
  let ca = Entities.Party_a.counters d.a in
  let cb = Entities.Party_b.counters d.b in
  let cc = Entities.Client.counters d.cl in
  Counters.reset ca;
  Counters.reset cb;
  Counters.reset cc;
  let tr = Transcript.create () in
  let clock = Option.map Clock.cursor net in
  let send_tracked = send_tracked ?clock in
  let phases = ref [] in
  let pp =
    match d.prepared_packed with
    | Some p -> p
    | None ->
      let p =
        timed obs phases ~counters:[ ("party-a", ca) ] "prepare-db" (fun () ->
            Entities.Party_a.prepare_packed ~obs d.a ~db:d.db)
      in
      d.prepared_packed <- Some p;
      p
  in
  let bq =
    timed obs phases ~counters:[ ("client", cc) ] "encrypt-query" (fun () ->
        Entities.Client.encrypt_query_batch d.cl rng queries)
  in
  send_tracked obs tr ~sender:Transcript.Client ~receiver:Transcript.Party_a
    ~label:"encrypted query" ~bytes:(Entities.batched_query_bytes bq);
  Obs.audit obs ~party:"party-a" ~phase:"compute-distances" ~label:"query-ciphertexts"
    (Audit.Int (Array.length bq.Entities.bq_coords + 1));
  Obs.audit obs ~party:"party-a" ~phase:"compute-distances" ~label:"query-bytes"
    (Audit.Int (Entities.batched_query_bytes bq));
  let bstate, masked =
    timed obs phases ~counters:[ ("party-a", ca) ] "compute-distances" (fun () ->
        Entities.Party_a.compute_distances_batch ~obs d.a pp rng bq)
  in
  sample_cts obs ~name:"masked-distance" masked;
  send_tracked obs tr ~sender:Transcript.Party_a ~receiver:Transcript.Party_b
    ~label:"masked permuted distances"
    ~bytes:(Array.fold_left (fun s ct -> s + Bgv.byte_size ct) 0 masked);
  let views =
    timed obs phases ~counters:[ ("party-b", cb) ] "find-neighbours" (fun () ->
        Entities.Party_b.select_views_batch ~obs d.b masked ~m ~k)
  in
  Obs.audit obs ~party:"party-b" ~phase:"find-neighbours" ~label:"n" (Audit.Int d.db_n);
  Obs.audit obs ~party:"party-b" ~phase:"find-neighbours" ~label:"k" (Audit.Int k);
  (* The one leakage the batch mode adds: B learns how many queries
     share the round's permutation, and can align positions across
     their views. *)
  Obs.audit obs ~party:"party-b" ~phase:"find-neighbours" ~label:"batch-query-count"
    (Audit.Int m);
  Array.iter
    (fun view ->
      Obs.audit obs ~party:"party-b" ~phase:"find-neighbours"
        ~label:"masked-distance-multiset"
        (Audit.Int64s (Leakage.view_multiset view));
      Obs.audit obs ~party:"party-b" ~phase:"find-neighbours"
        ~label:"equidistant-group-sizes"
        (Audit.Ints (Leakage.equidistant_group_sizes view)))
    views;
  let indicator_bytes = ref 0 in
  let result_cts =
    timed obs phases
      ~counters:[ ("party-a", ca); ("party-b", cb) ]
      "return-knn"
      (fun () ->
        let packed = Entities.Party_a.permuted_return_packed_batch pp bstate in
        Array.map
          (fun view ->
            Array.init k (fun j ->
                Obs.with_span obs
                  ~counters:[ ("party-a", ca); ("party-b", cb) ]
                  ~args:[ ("j", string_of_int j) ]
                  "indicator-row"
                  (fun () ->
                    let row =
                      Entities.Party_b.indicator_row ~obs d.b rng view ~n:d.db_n ~j
                    in
                    let bytes =
                      Array.fold_left (fun s ct -> s + Bgv.byte_size ct) 0 row
                    in
                    indicator_bytes := !indicator_bytes + bytes;
                    send_tracked obs tr ~sender:Transcript.Party_b
                      ~receiver:Transcript.Party_a
                      ~label:(Printf.sprintf "indicator vector B^%d" (j + 1))
                      ~bytes;
                    Entities.Party_a.select_row ~obs d.a packed row)))
          views)
  in
  Array.iter (fun cts -> sample_cts obs ~name:"result" cts) result_cts;
  Obs.audit obs ~party:"party-a" ~phase:"return-knn" ~label:"indicator-ciphertexts"
    (Audit.Int (m * k * d.db_n));
  Obs.audit obs ~party:"party-a" ~phase:"return-knn" ~label:"indicator-bytes"
    (Audit.Int !indicator_bytes);
  send_tracked obs tr ~sender:Transcript.Party_a ~receiver:Transcript.Client
    ~label:"encrypted k-NN result"
    ~bytes:
      (Array.fold_left
         (fun s cts -> Array.fold_left (fun s ct -> s + Bgv.byte_size ct) s cts)
         0 result_cts);
  let neighbours =
    timed obs phases ~counters:[ ("client", cc) ] "decrypt-result" (fun () ->
        Array.map (fun cts -> Entities.Client.decrypt_points ~obs d.cl ~d:d.db_d cts)
          result_cts)
  in
  Obs.audit obs ~party:"client" ~phase:"decrypt-result" ~label:"neighbour-count"
    (Audit.Int k);
  tally_transcript tr (function
    | Transcript.Party_a -> Some ca
    | Transcript.Party_b -> Some cb
    | Transcript.Client -> Some cc
    | Transcript.Data_owner -> None);
  (match Obs.metrics obs with
   | None -> ()
   | Some m ->
     List.iter
       (fun (party, c) -> Metrics.record_ledger m ~party c)
       [ ("party-a", ca); ("party-b", cb); ("client", cc) ]);
  let net_timeline = observe_net obs tr net in
  let phase_seconds = List.rev !phases in
  Array.init m (fun q ->
      { neighbours = neighbours.(q);
        k;
        phase_seconds;
        transcript = tr;
        counters_a = ca;
        counters_b = cb;
        counters_client = cc;
        view_b = views.(q);
        net = net_timeline })

let total_seconds r = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 r.phase_seconds

let exact d ~db ~query:q r =
  ignore d;
  let expected = Plain_knn.kth_smallest_distances ~k:r.k ~query:q db in
  let got = Array.map (fun p -> Distance.squared_euclidean q p) r.neighbours in
  Array.sort Int.compare got;
  expected = got
