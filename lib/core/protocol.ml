module Rng = Util.Rng
module Counters = Util.Counters

type deployment = {
  config : Config.t;
  db_n : int;
  db_d : int;
  a : Entities.Party_a.t;
  b : Entities.Party_b.t;
  cl : Entities.Client.t;
  setup_transcript : Transcript.t;
  query_seed : Rng.t; (* source of per-query randomness *)
  jobs : int;
}

let config d = d.config
let db_size d = d.db_n
let dimension d = d.db_d
let setup_transcript d = d.setup_transcript
let party_a d = d.a
let party_b d = d.b
let client d = d.cl
let jobs d = d.jobs

let pk_bytes config =
  (* Two ring elements at the full chain, 4 bytes per residue. *)
  let p = config.Config.bgv in
  2 * Params.chain_length p * p.Params.n * 4

let deploy ?rng ?counters ?jobs config ~db =
  let rng = match rng with Some r -> r | None -> Rng.of_int 0x5ecdb in
  let jobs = match jobs with Some j -> j | None -> Util.Pool.default_jobs () in
  let owner = Entities.Data_owner.create (Rng.split rng) config in
  let enc_db = Entities.Data_owner.encrypt_db ?counters ~jobs (Rng.split rng) owner db in
  let keys = Entities.Data_owner.keys owner in
  let a = Entities.Party_a.create ~jobs config keys.Bgv.pk keys.Bgv.rlk enc_db in
  let b = Entities.Party_b.create ~jobs config keys.Bgv.sk keys.Bgv.pk in
  let cl = Entities.Client.create ~jobs config keys.Bgv.sk keys.Bgv.pk in
  let tr = Transcript.create () in
  let open Transcript in
  send tr ~sender:Data_owner ~receiver:Party_a ~label:"public key" ~bytes:(pk_bytes config);
  send tr ~sender:Data_owner ~receiver:Party_a ~label:"encrypted database"
    ~bytes:(Entities.db_bytes enc_db);
  send tr ~sender:Data_owner ~receiver:Party_b ~label:"secret + public key"
    ~bytes:(config.Config.bgv.Params.n + pk_bytes config);
  send tr ~sender:Data_owner ~receiver:Client ~label:"secret + public key"
    ~bytes:(config.Config.bgv.Params.n + pk_bytes config);
  { config;
    db_n = Array.length db;
    db_d = Array.length db.(0);
    a; b; cl;
    setup_transcript = tr;
    query_seed = Rng.split rng;
    jobs }

type result = {
  neighbours : int array array;
  k : int;
  phase_seconds : (string * float) list;
  transcript : Transcript.t;
  counters_a : Util.Counters.t;
  counters_b : Util.Counters.t;
  counters_client : Util.Counters.t;
  view_b : Entities.Party_b.view;
}

let timed phases name f =
  let x, dt = Util.Timer.time f in
  phases := (name, dt) :: !phases;
  x

let query ?rng d ~query ~k =
  let rng = match rng with Some r -> r | None -> Rng.split d.query_seed in
  if Array.length query <> d.db_d then invalid_arg "Protocol.query: dimension mismatch";
  if k < 1 || k > d.db_n then invalid_arg "Protocol.query: k out of range";
  Counters.reset (Entities.Party_a.counters d.a);
  Counters.reset (Entities.Party_b.counters d.b);
  Counters.reset (Entities.Client.counters d.cl);
  let tr = Transcript.create () in
  let phases = ref [] in
  (* Client: encrypt the query and send it to Party A (label 4, Fig. 2). *)
  let q_enc =
    timed phases "encrypt-query" (fun () -> Entities.Client.encrypt_query d.cl rng query)
  in
  Transcript.send tr ~sender:Transcript.Client ~receiver:Transcript.Party_a
    ~label:"encrypted query" ~bytes:(Entities.query_bytes q_enc);
  (* Party A: Compute Distances (Algorithm 1). *)
  let state, masked =
    timed phases "compute-distances" (fun () ->
        Entities.Party_a.compute_distances d.a rng q_enc)
  in
  Transcript.send tr ~sender:Transcript.Party_a ~receiver:Transcript.Party_b
    ~label:"masked permuted distances"
    ~bytes:(Array.fold_left (fun s ct -> s + Bgv.byte_size ct) 0 masked);
  (* Party B: Find Neighbours (Algorithm 2), with the indicator vectors
     streamed row by row; Party A folds each row into Return kNN
     (Algorithm 3) as it arrives. *)
  let view =
    timed phases "find-neighbours" (fun () ->
        Entities.Party_b.select_neighbours d.b masked ~k)
  in
  let results =
    timed phases "return-knn" (fun () ->
        let packed = Entities.Party_a.permuted_packed d.a state in
        Array.init k (fun j ->
            let row =
              Entities.Party_b.indicator_row d.b rng view ~n:d.db_n ~j
            in
            Transcript.send tr ~sender:Transcript.Party_b ~receiver:Transcript.Party_a
              ~label:(Printf.sprintf "indicator vector B^%d" (j + 1))
              ~bytes:(Array.fold_left (fun s ct -> s + Bgv.byte_size ct) 0 row);
            Entities.Party_a.select_row d.a packed row))
  in
  Transcript.send tr ~sender:Transcript.Party_a ~receiver:Transcript.Client
    ~label:"encrypted k-NN result"
    ~bytes:(Array.fold_left (fun s ct -> s + Bgv.byte_size ct) 0 results);
  let neighbours =
    timed phases "decrypt-result" (fun () ->
        Entities.Client.decrypt_points d.cl ~d:d.db_d results)
  in
  { neighbours;
    k;
    phase_seconds = List.rev !phases;
    transcript = tr;
    counters_a = Entities.Party_a.counters d.a;
    counters_b = Entities.Party_b.counters d.b;
    counters_client = Entities.Client.counters d.cl;
    view_b = view }

let total_seconds r = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 r.phase_seconds

let exact d ~db ~query:q r =
  ignore d;
  let expected = Plain_knn.kth_smallest_distances ~k:r.k ~query:q db in
  let got = Array.map (fun p -> Distance.squared_euclidean q p) r.neighbours in
  Array.sort compare got;
  expected = got
