(** The full Secure k-NN protocol (§3 of the paper): Setup once, then
    one-round queries.

    [deploy] performs the paper's Setup phase — key generation at the
    data owner, database encryption, and key/ciphertext distribution to
    the parties (recorded in the transcript).  [query] runs the three
    on-line phases end to end:

    + client encrypts Q and sends it to Party A;
    + {b Compute Distances} at A (Algorithm 1) — encrypted squared
      distances, fresh monotone masking polynomial, fresh permutation;
    + one message A→B; {b Find Neighbours} at B (Algorithm 2) —
      decrypt, streaming top-k, k encrypted indicator vectors; one
      message B→A (streamed row by row so O(nk) ciphertexts never live
      in memory at once);
    + {b Return kNN} at A (Algorithm 3) — permuted inner products,
      giving k re-randomised encrypted points returned to the client.

    The result carries plaintext neighbours, per-phase wall-clock times,
    per-party operation counters and the full communication transcript —
    everything the benchmark harness needs to regenerate the paper's
    figures and Table 1. *)

type deployment

val deploy :
  ?obs:Sknn_obs.Ctx.t -> ?rng:Util.Rng.t -> ?counters:Util.Counters.t -> ?jobs:int ->
  Config.t -> db:int array array -> deployment
(** [jobs] is the number of OCaml domains every parallel phase of this
    deployment uses (database encryption, Compute-Distances, Return-kNN
    inner products, indicator encryption, result decryption); it
    defaults to {!Util.Pool.default_jobs} ([SKNN_DOMAINS] or the
    machine's recommended domain count).  Query results, transcripts and
    counter totals are bit-identical for every job count.  [obs]
    records ["keygen"] and ["encrypt-db"] spans and, when [counters] is
    given, folds the setup transcript's bytes into it.
    @raise Invalid_argument if the configuration is unsound for the
    database's dimensionality (see {!Config.validate}) or the data is
    out of range. *)

val config : deployment -> Config.t
val jobs : deployment -> int
val db_size : deployment -> int
val dimension : deployment -> int
val setup_transcript : deployment -> Transcript.t

(** Direct access to the entity values (examples and tests). *)
val party_a : deployment -> Entities.Party_a.t
val party_b : deployment -> Entities.Party_b.t
val client : deployment -> Entities.Client.t

type result = {
  neighbours : int array array; (** k plaintext points, as the client decrypts them *)
  k : int;
  phase_seconds : (string * float) list;
      (** ["encrypt-query"; "compute-distances"; "find-neighbours";
          "return-knn"; "decrypt-result"] *)
  transcript : Transcript.t;    (** per-query messages *)
  counters_a : Util.Counters.t;
  counters_b : Util.Counters.t;
  counters_client : Util.Counters.t;
  view_b : Entities.Party_b.view; (** Party B's view, for leakage audits *)
  net : Clock.timeline option;
      (** virtual-network replay of [transcript] when the query ran with
          [?net]; [None] otherwise *)
}

val query :
  ?obs:Sknn_obs.Ctx.t -> ?rng:Util.Rng.t -> ?net:Profile.t -> deployment ->
  query:int array -> k:int -> result
(** Runs one complete query.  Counters are reset at the start so each
    result reports per-query costs; when the query finishes, the
    transcript is folded back into them, so [Counters.rounds] and
    [Counters.bytes_sent] report measured per-party communication.

    With an observability context [obs] (see {!Sknn_obs.Ctx}), the five
    phases become [Phase] spans with per-party counter deltas, entity
    sub-stages and pool chunks nest below them, BGV chain level and
    noise-budget headroom are sampled into histograms, per-link
    transcript bytes become gauges, and each party's observables are
    appended to the leakage-audit channel ([party-b]: masked distance
    multiset, [k], equidistant group sizes; [party-a]: ciphertext
    counts and byte sizes only).

    With a network profile [net], a virtual clock cursor runs alongside
    the transcript (flight [Send] events gain seq + virtual arrival),
    the finished transcript is replayed into [result.net], per-link
    busy/rounds land in the metrics registry as [sknn_link_*] families,
    and the trace gains one wire event per message.  The timeline is a
    pure function of (transcript, profile) — timing derives only from
    the already-audited §5 byte/round surface, and stays byte-identical
    across job counts.
    @raise Invalid_argument on dimension mismatch or k out of range. *)

(** {1 Prepared multi-query path}

    A deployment answers one query per protocol run, but the database —
    and therefore the packed ciphertexts and the encrypted norms
    [‖p_i‖²] the distance identity [ED = ‖p‖² − 2⟨p,q⟩ + ‖q‖²] needs —
    is fixed at deploy time.  The prepared path hoists that work out of
    the per-query loop: after a one-time ["prepare-db"] phase, each
    query costs {e one} ciphertext product per point (against the
    reversed-packed query) instead of [d], and the query message shrinks
    from [d] ciphertexts to two.

    Requires affine (degree-1) masking and [d ≤ n]
    (see {!Entities.Party_a.prepare}).  Results remain exact and
    bit-identical across job counts. *)

val prepare : ?obs:Sknn_obs.Ctx.t -> deployment -> unit
(** Builds the prepared state now (idempotent).  Otherwise the first
    {!query_prepared} builds it lazily and records it as that query's
    ["prepare-db"] phase. *)

val is_prepared : deployment -> bool

val query_prepared :
  ?obs:Sknn_obs.Ctx.t -> ?rng:Util.Rng.t -> ?net:Profile.t -> deployment ->
  query:int array -> k:int -> result
(** Like {!query}, but against the prepared state, with the client
    sending the inner-product query form
    ({!Entities.Client.encrypt_query_ip}).  The first call on an
    unprepared deployment additionally reports a ["prepare-db"] phase in
    [phase_seconds]; subsequent calls are steady-state.
    @raise Invalid_argument if the configuration does not admit the
    prepared path. *)

val run_queries :
  ?obs:Sknn_obs.Ctx.t -> ?rng:Util.Rng.t -> ?net:Profile.t -> deployment ->
  queries:int array array -> k:int -> result array
(** [query_prepared] over a query batch, one independent RNG stream per
    query split off [rng] (default: the deployment's query seed). *)

(** {1 Slot-packed (SIMD) path}

    The packed path lays the database out dimension-major across the
    [N = Params.slot_count] plaintext slots, so Party A computes a batch
    of [N] masked distances with [d] plain products plus adds, and
    Party B decrypts [⌈n/N⌉] ciphertexts instead of [n], slot-unpacking
    them before the top-k scan.  Party B's §5 leakage surface (masked
    distance multiset, [n], [k], equidistant groups) is identical to the
    unpacked paths.  The trust model differs on Party A's side: A holds
    the plaintext database as the data owner's delegate
    (see {!Entities.Party_a.prepare_packed}).

    Requires affine (degree-1) masking and [d ≤ n].  Results remain
    exact and bit-identical across job counts. *)

val prepare_packed : ?obs:Sknn_obs.Ctx.t -> deployment -> unit
(** Builds the packed prepared state now (idempotent); otherwise the
    first {!query_packed} builds it lazily as its ["prepare-db"] phase. *)

val is_packed_prepared : deployment -> bool

val query_packed :
  ?obs:Sknn_obs.Ctx.t -> ?rng:Util.Rng.t -> ?net:Profile.t -> deployment ->
  query:int array -> k:int -> result
(** Like {!query_prepared} on the packed layout, with the client sending
    the broadcast-slot query form
    ({!Entities.Client.encrypt_query_packed}): d+1 ciphertexts in,
    [⌈n/N⌉] masked-distance ciphertexts A→B.
    @raise Invalid_argument if the configuration does not admit the
    packed path. *)

val run_queries_packed :
  ?obs:Sknn_obs.Ctx.t -> ?rng:Util.Rng.t -> ?net:Profile.t -> deployment ->
  queries:int array array -> k:int -> result array
(** {!query_packed} over a query batch, one independent RNG stream per
    query (each query still runs its own protocol round; see
    {!query_batch} for slot-dimension batching). *)

val query_batch :
  ?obs:Sknn_obs.Ctx.t -> ?rng:Util.Rng.t -> ?net:Profile.t -> deployment ->
  queries:int array array -> k:int -> result array
(** M ≤ [Params.slot_count] queries in {e one} protocol round: the
    queries ride the slot dimension of d+1 ciphertexts
    ({!Entities.Client.encrypt_query_batch}), Party A masks each query's
    distances with its own fresh affine polynomial in one slot-wise
    pass, and Party B unpacks one view per query from the [n] returned
    ciphertexts.  The M views share one permutation — the batch mode's
    extra declared leakage, audited as
    [party-b/find-neighbours/batch-query-count].  The returned results
    share the round's transcript, counters and phase times; neighbours
    and views are per query.
    @raise Invalid_argument on an empty or oversized batch, dimension
    mismatch, or k out of range. *)

val total_seconds : result -> float
val exact : deployment -> db:int array array -> query:int array -> result -> bool
(** Checks the result against plaintext k-NN ground truth
    (distance-multiset equality, which is the exactness the paper
    claims; see {!Plain_knn.same_answer}). *)
