(* Bridge from a protocol configuration to the observability layer's
   analytic cost replica (Sknn_obs.Cost_model).  lib/obs deliberately
   knows nothing about Params/Config/Masking, so the scheme-specific
   numbers — exact modulus bit lengths, the sound mask-coefficient
   width, the centered scalar magnitudes — are derived here, with the
   same arithmetic the live circuit uses (Bgv.centered_magnitude,
   Masking.max_coeff_bits), and handed over as plain floats/ints. *)

module CM = Sknn_obs.Cost_model
module NM = Sknn_obs.Noise_model

let lg x = log x /. log 2.0

(* Bgv's centered_magnitude, applied to the worst (largest) value the
   scalar can take: the live branch decisions are stable across the
   drawn range, which the ledger-equality tests witness. *)
let centered_bits ~t_plain v =
  let c = Mod64.centered t_plain (Mod64.reduce t_plain v) in
  lg (Float.max 1.0 (Int64.to_float (Int64.abs c)))

let noise_model_params (p : Params.t) : NM.params =
  { NM.n = p.Params.n;
    t_bits = lg (Int64.to_float p.Params.t_plain);
    moduli_bits = Array.map (fun m -> lg (float_of_int m)) p.Params.moduli;
    eta = float_of_int p.Params.eta }

(* Exact bit length of the modulus product with i+1 active primes —
   the prefix-product definition of Rq.modulus ~nprimes, but computable
   from the chain alone, so the planner can bridge an unrealized
   Params.probe without paying for the ring context. *)
let q_ibits_of_moduli moduli =
  let acc = ref Zint.one in
  Array.map
    (fun m ->
      acc := Zint.mul !acc (Zint.of_int64 (Int64.of_int m));
      Zint.numbits !acc)
    moduli

let bits_of v =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let max_distance_bits ~max_coord_bits ~d =
  let max_coord = (1 lsl max_coord_bits) - 1 in
  bits_of (Distance.max_squared_euclidean ~d ~max_value:max_coord)

(* The probe-level bridge: everything [model_params] derives, from the
   prime-search result plus the protocol knobs — no ring context, no
   Config record.  [model_params] is this applied to [Params.probe_of_t],
   so planner candidates and realized configurations price identically. *)
let model_params_probe (pr : Params.probe) ~layout ~mask_degree ~mask_coeff_bits
    ~max_coord_bits ~use_relin ~rescale_distances ~return_level ~n ~d ~k :
    CM.params =
  let t_plain = pr.Params.pr_t_plain in
  let moduli = pr.Params.pr_moduli in
  let chain = Array.length moduli in
  let q_ibits = q_ibits_of_moduli moduli in
  let w = pr.Params.pr_relin_digit_bits in
  let mask_leading_bits =
    let sound =
      Masking.max_coeff_bits ~t_plain
        ~input_bits:(max_distance_bits ~max_coord_bits ~d)
        ~degree:mask_degree
    in
    let c = Stdlib.max 1 (Stdlib.min mask_coeff_bits sound) in
    (* Masking.draw samples coefficients uniformly from [1, 2^c − 1]. *)
    centered_bits ~t_plain (Int64.pred (Int64.shift_left 1L c))
  in
  let coord_bits =
    centered_bits ~t_plain (Int64.of_int ((1 lsl max_coord_bits) - 1))
  in
  { CM.nm =
      { NM.n = pr.Params.pr_n;
        t_bits = lg (Int64.to_float t_plain);
        moduli_bits = Array.map (fun m -> lg (float_of_int m)) moduli;
        eta = float_of_int pr.Params.pr_eta };
    q_ibits;
    n_points = n;
    d;
    k;
    per_coordinate = (layout = Config.Per_coordinate);
    mask_degree;
    mask_leading_bits;
    coord_bits;
    rescale_distances;
    return_level;
    use_relin;
    relin_digit_bits = w;
    relin_rows = (q_ibits.(chain - 1) + w - 1) / w;
    slots = pr.Params.pr_n }

let model_params (config : Config.t) ~n ~d ~k : CM.params =
  model_params_probe
    (Params.probe_of_t config.Config.bgv)
    ~layout:config.Config.layout ~mask_degree:config.Config.mask_degree
    ~mask_coeff_bits:config.Config.mask_coeff_bits
    ~max_coord_bits:config.Config.max_coord_bits
    ~use_relin:config.Config.use_relin
    ~rescale_distances:config.Config.rescale_distances
    ~return_level:config.Config.return_level ~n ~d ~k

let predict ?include_prepare config ~n ~d ~k path =
  CM.predict ?include_prepare (model_params config ~n ~d ~k) path

let predict_end_to_end ?include_prepare config ~n ~d ~k ~unit_costs ~profile path =
  CM.predict_end_to_end ~unit_costs ~profile
    (predict ?include_prepare config ~n ~d ~k path)

(* Predicted wall-clock per protocol phase: the per-party phase ledgers
   priced by the calibration table, summed per phase name in protocol
   order — directly comparable to [Protocol.result.phase_seconds]. *)
let predicted_phase_seconds ~unit_costs (pred : CM.prediction) =
  let order = ref [] in
  let totals = Hashtbl.create 8 in
  List.iter
    (fun (ph : CM.phase) ->
      let s = CM.predict_seconds ~unit_costs ph.CM.counters in
      match Hashtbl.find_opt totals ph.CM.phase with
      | Some acc -> Hashtbl.replace totals ph.CM.phase (acc +. s)
      | None ->
        order := ph.CM.phase :: !order;
        Hashtbl.add totals ph.CM.phase s)
    pred.CM.phases;
  List.rev_map (fun name -> (name, Hashtbl.find totals name)) !order
