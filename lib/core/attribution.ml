(* Bridge from a protocol configuration to the observability layer's
   analytic cost replica (Sknn_obs.Cost_model).  lib/obs deliberately
   knows nothing about Params/Config/Masking, so the scheme-specific
   numbers — exact modulus bit lengths, the sound mask-coefficient
   width, the centered scalar magnitudes — are derived here, with the
   same arithmetic the live circuit uses (Bgv.centered_magnitude,
   Masking.max_coeff_bits), and handed over as plain floats/ints. *)

module CM = Sknn_obs.Cost_model
module NM = Sknn_obs.Noise_model

let lg x = log x /. log 2.0

(* Bgv's centered_magnitude, applied to the worst (largest) value the
   scalar can take: the live branch decisions are stable across the
   drawn range, which the ledger-equality tests witness. *)
let centered_bits ~t_plain v =
  let c = Mod64.centered t_plain (Mod64.reduce t_plain v) in
  lg (Float.max 1.0 (Int64.to_float (Int64.abs c)))

let noise_model_params (p : Params.t) : NM.params =
  { NM.n = p.Params.n;
    t_bits = lg (Int64.to_float p.Params.t_plain);
    moduli_bits = Array.map (fun m -> lg (float_of_int m)) p.Params.moduli;
    eta = float_of_int p.Params.eta }

let model_params (config : Config.t) ~n ~d ~k : CM.params =
  let p = config.Config.bgv in
  let chain = Params.chain_length p in
  let t_plain = p.Params.t_plain in
  let q_ibits =
    Array.init chain (fun i -> Zint.numbits (Rq.modulus p.Params.ring ~nprimes:(i + 1)))
  in
  let w = p.Params.relin_digit_bits in
  let mask_leading_bits =
    let sound =
      Masking.max_coeff_bits ~t_plain
        ~input_bits:(Config.max_distance_bits config ~d)
        ~degree:config.Config.mask_degree
    in
    let c = Stdlib.max 1 (Stdlib.min config.Config.mask_coeff_bits sound) in
    (* Masking.draw samples coefficients uniformly from [1, 2^c − 1]. *)
    centered_bits ~t_plain (Int64.pred (Int64.shift_left 1L c))
  in
  let coord_bits =
    centered_bits ~t_plain (Int64.of_int ((1 lsl config.Config.max_coord_bits) - 1))
  in
  { CM.nm = noise_model_params p;
    q_ibits;
    n_points = n;
    d;
    k;
    per_coordinate = (config.Config.layout = Config.Per_coordinate);
    mask_degree = config.Config.mask_degree;
    mask_leading_bits;
    coord_bits;
    rescale_distances = config.Config.rescale_distances;
    return_level = config.Config.return_level;
    use_relin = config.Config.use_relin;
    relin_digit_bits = w;
    relin_rows = (q_ibits.(chain - 1) + w - 1) / w;
    slots = Params.slot_count p }

let predict ?include_prepare config ~n ~d ~k path =
  CM.predict ?include_prepare (model_params config ~n ~d ~k) path

(* Predicted wall-clock per protocol phase: the per-party phase ledgers
   priced by the calibration table, summed per phase name in protocol
   order — directly comparable to [Protocol.result.phase_seconds]. *)
let predicted_phase_seconds ~unit_costs (pred : CM.prediction) =
  let order = ref [] in
  let totals = Hashtbl.create 8 in
  List.iter
    (fun (ph : CM.phase) ->
      let s = CM.predict_seconds ~unit_costs ph.CM.counters in
      match Hashtbl.find_opt totals ph.CM.phase with
      | Some acc -> Hashtbl.replace totals ph.CM.phase (acc +. s)
      | None ->
        order := ph.CM.phase :: !order;
        Hashtbl.add totals ph.CM.phase s)
    pred.CM.phases;
  List.rev_map (fun name -> (name, Hashtbl.find totals name)) !order
