type row = {
  hom_ops : int;
  encryptions : int;
  decryptions : int;
  rounds : int;
  bytes : int;
}

let ours ?(bytes = 0) ~n ~d ~k ~mask_degree () =
  (* Party A: per point, d squared-difference multiplications (+ d-1
     additions), one EvalPoly of degree D (D multiplications via Horner
     counting the scalar one), and k inner-product accumulations in
     Return kNN; Party B contributes no homomorphic evaluation.
     [bytes] is the A<->B traffic from actual serialized ciphertext
     sizes — Cost_model.prediction.ab_bytes when the caller has one
     (the event counts here are asymptotic, byte counts are not). *)
  { hom_ops = n * ((2 * d) + mask_degree + (2 * k));
    encryptions = n * k;
    decryptions = n;
    rounds = 1;
    bytes }

let yousef ~n ~d ~k ~l =
  { hom_ops = n * ((2 * k * l) + d);
    encryptions = n * k * l;
    decryptions = n * ((k * l) + d);
    rounds = k;
    bytes = 0 }

let measured (r : Protocol.result) =
  let a = r.Protocol.counters_a and b = r.Protocol.counters_b in
  let hom c =
    Util.Counters.hom_adds c + Util.Counters.hom_muls c
    + Util.Counters.hom_mul_plains c + Util.Counters.hom_modswitches c
    + Util.Counters.hom_relins c
  in
  let tr = r.Protocol.transcript in
  { hom_ops = hom a + hom b;
    encryptions = Util.Counters.encryptions b;
    decryptions = Util.Counters.decryptions b;
    rounds = Transcript.rounds tr Transcript.Party_a Transcript.Party_b;
    bytes = Transcript.bytes_between tr Transcript.Party_a Transcript.Party_b }

let within_asymptotic ~measured ~predicted ~slack =
  let fits m p =
    if p = 0 then m = 0
    else begin
      let m = float_of_int m and p = float_of_int p in
      m <= p *. slack && m >= p /. slack
    end
  in
  fits measured.hom_ops predicted.hom_ops
  && fits measured.encryptions predicted.encryptions
  && fits measured.decryptions predicted.decryptions
  && measured.rounds = predicted.rounds

let pp ppf r =
  Format.fprintf ppf "hom=%d enc=%d dec=%d rounds=%d bytes=%d" r.hom_ops r.encryptions
    r.decryptions r.rounds r.bytes
