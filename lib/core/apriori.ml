module Rng = Util.Rng
module Counters = Util.Counters
module Perm = Util.Perm

type deployment = {
  config : Config.t;
  n : int;                    (* transactions *)
  m : int;                    (* items *)
  blocks : int;               (* ceil(n / slots) *)
  item_cts : Bgv.ct array array; (* m x blocks, slot i = bit of transaction *)
  sk : Bgv.secret_key;
  (* Held because both parties carry the public key in the protocol,
     even though this demo path only ever encrypts at setup. *)
  pk : Bgv.public_key; [@warning "-69"]
  rlk : Bgv.relin_key;
  mutable sum_keys : Bgv.galois_key list option; (* lazily generated *)
  counters_a : Counters.t;
  counters_b : Counters.t;
  seed : Rng.t;
}

let item_count t = t.m
let transaction_count t = t.n

let deploy ?rng config ~transactions =
  let rng = match rng with Some r -> r | None -> Rng.of_int 0xa9101 in
  let n = Array.length transactions in
  if n = 0 then invalid_arg "Apriori.deploy: no transactions";
  let m = Array.length transactions.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> m then invalid_arg "Apriori.deploy: ragged transactions";
      Array.iter
        (fun v -> if v <> 0 && v <> 1 then invalid_arg "Apriori.deploy: bits must be 0/1")
        row)
    transactions;
  let params = config.Config.bgv in
  let slots = Params.slot_count params in
  let blocks = (n + slots - 1) / slots in
  let keys = Bgv.keygen (Rng.split rng) params in
  let enc_rng = Rng.split rng in
  let item_cts =
    Array.init m (fun j ->
        Array.init blocks (fun b ->
            let vals =
              Array.init slots (fun s ->
                  let i = (b * slots) + s in
                  if i < n then Int64.of_int transactions.(i).(j) else 0L)
            in
            (* One-time deploy encryption: [mine] resets both party
               ledgers before mining, so these deliberately stay
               outside the per-run cost ledger. *)
            (Bgv.encrypt enc_rng keys.Bgv.pk
               ((Plaintext.of_slots params vals) [@sknn.allow "ledger-at-op-site"]))
            [@sknn.allow "ledger-at-op-site"]))
  in
  { config;
    n;
    m;
    blocks;
    item_cts;
    sk = keys.Bgv.sk;
    pk = keys.Bgv.pk;
    rlk = keys.Bgv.rlk;
    sum_keys = None;
    counters_a = Counters.create ();
    counters_b = Counters.create ();
    seed = Rng.split rng }

type result = {
  frequent : int list list;
  level_candidates : int array;
  level_frequent : int array;
  seconds : float;
  transcript : Transcript.t;
  counters_a : Counters.t;
  counters_b : Counters.t;
}

(* Party A: slot-wise product of the candidate's item columns — the
   per-transaction membership bits, |S|-1 multiplications per block.
   With [rlk] the products stay at degree 1 (needed when the support is
   subsequently folded with Galois rotations). *)
let membership_blocks ?rlk (t : deployment) itemset =
  match itemset with
  | [] -> invalid_arg "Apriori: empty itemset"
  | first :: rest ->
    Array.init t.blocks (fun b ->
        List.fold_left
          (fun acc j -> Bgv.mul ~counters:t.counters_a ?rlk acc t.item_cts.(j).(b))
          t.item_cts.(first).(b) rest)

let sum_keys_of (t : deployment) rng =
  match t.sum_keys with
  | Some ks -> ks
  | None ->
    let ks = Bgv.slot_sum_keys ~counters:t.counters_a rng t.sk in
    t.sum_keys <- Some ks;
    ks

let mine ?rng ?(max_size = 4) ?(use_rotations = false) (t : deployment) ~minsup =
  if minsup < 1 then invalid_arg "Apriori.mine: minsup < 1";
  let rng = match rng with Some r -> r | None -> Rng.split t.seed in
  Counters.reset t.counters_a;
  Counters.reset t.counters_b;
  let tr = Transcript.create () in
  let t0 = Util.Timer.now () in
  let params = t.config.Config.bgv in
  let tp = params.Params.t_plain in
  let slots = Params.slot_count params in
  (* Mask sizes keeping a·support + Σ r below t (no wrap mod t):
     a < 2^16, r_i < 2^rbits with slots·blocks·2^rbits < t/4. *)
  let total_slots = t.blocks * slots in
  let rbits =
    let budget =
      int_of_float (log (Int64.to_float tp /. 4.0 /. float_of_int total_slots) /. log 2.0)
    in
    Stdlib.max 8 (Stdlib.min 36 budget)
  in
  let rbound = Int64.shift_left 1L rbits in
  let frequent = ref [] in
  let level_candidates = ref [] and level_frequent = ref [] in
  let current = ref (List.init t.m (fun j -> [ j ])) in
  let size = ref 1 in
  let continue_ = ref true in
  while !continue_ && !size <= max_size && !current <> [] do
    let cands = Array.of_list !current in
    let nc = Array.length cands in
    (* Party A: masked membership ciphertexts + masked thresholds. *)
    let perm = Perm.random rng nc in
    let masked =
      Array.map
        (fun itemset ->
          let a = Int64.add 1L (Rng.int64_below rng 65535L) in
          if use_rotations then begin
            (* A folds the support itself: relinearised membership
               products summed across blocks, then rotate-and-sum puts
               a·support + r into every slot — one scalar ciphertext
               per candidate reaches B. *)
            let blocks = membership_blocks ~rlk:t.rlk t itemset in
            let total =
              Array.fold_left
                (fun acc ct ->
                  match acc with
                  | None -> Some ct
                  | Some x -> Some (Bgv.add ~counters:t.counters_a x ct))
                None blocks
              |> Option.get
            in
            let support_ct = Bgv.sum_slots ~counters:t.counters_a (sum_keys_of t rng) total in
            (* A single scalar mask can be much wider than the per-slot
               ones: a·support < 2^34 stays far below t even with 2^40
               of additive noise. *)
            let r = Rng.int64_below rng (Int64.shift_left 1L 40) in
            let masked_ct =
              Bgv.add_const ~counters:t.counters_a
                (Bgv.mul_scalar ~counters:t.counters_a support_ct a)
                r
            in
            let theta = Int64.add (Int64.mul a (Int64.of_int minsup)) r in
            ([| masked_ct |], theta)
          end
          else begin
            let blocks = membership_blocks t itemset in
            let big_r = ref 0L in
            let blocks =
              Array.map
                (fun ct ->
                  let rs =
                    Array.init slots (fun _ ->
                        let r = Rng.int64_below rng rbound in
                        big_r := Int64.add !big_r r;
                        r)
                  in
                  Bgv.add_plain ~counters:t.counters_a
                    (Bgv.mul_scalar ~counters:t.counters_a ct a)
                    (Plaintext.of_slots ~counters:t.counters_a params rs))
                blocks
            in
            let theta = Int64.add (Int64.mul a (Int64.of_int minsup)) !big_r in
            (blocks, theta)
          end)
        cands
    in
    let shuffled = Perm.apply perm masked in
    let bytes =
      Array.fold_left
        (fun acc (blocks, _) ->
          acc + 8 + Array.fold_left (fun a ct -> a + Bgv.byte_size ct) 0 blocks)
        0 shuffled
    in
    Transcript.send tr ~sender:Transcript.Party_a ~receiver:Transcript.Party_b
      ~label:(Printf.sprintf "level %d: masked supports + thresholds" !size)
      ~bytes;
    (* Party A -> client: the candidate permutation (seed-sized). *)
    Transcript.send tr ~sender:Transcript.Party_a ~receiver:Transcript.Client
      ~label:(Printf.sprintf "level %d: candidate permutation" !size)
      ~bytes:(4 * nc);
    (* Party B: decrypt, sum slots, compare to the masked threshold. *)
    let bits_shuffled =
      Array.map
        (fun (blocks, theta) ->
          if use_rotations then begin
            (* One scalar per candidate: all slots equal a·support + r,
               so the ciphertext is a constant polynomial. *)
            let v = Bgv.decrypt_coeff0 ~counters:t.counters_b t.sk blocks.(0) in
            Int64.compare v theta >= 0
          end
          else begin
            let sum = ref 0L in
            Array.iter
              (fun ct ->
                let vals =
                  Plaintext.to_slots ~counters:t.counters_b
                    (Bgv.decrypt ~counters:t.counters_b t.sk ct)
                in
                Array.iter (fun v -> sum := Int64.add !sum v) vals)
              blocks;
            Int64.compare !sum theta >= 0
          end)
        shuffled
    in
    Transcript.send tr ~sender:Transcript.Party_b ~receiver:Transcript.Client
      ~label:(Printf.sprintf "level %d: comparison bits" !size)
      ~bytes:nc;
    (* Client: un-permute, collect survivors, generate the next level. *)
    let survivors =
      List.filteri (fun i _ -> bits_shuffled.(Perm.apply_index perm i)) !current
    in
    level_candidates := nc :: !level_candidates;
    level_frequent := List.length survivors :: !level_frequent;
    frequent := !frequent @ survivors;
    if survivors = [] then continue_ := false
    else begin
      current := Apriori_plain.candidates survivors;
      incr size
    end
  done;
  { frequent = !frequent;
    level_candidates = Array.of_list (List.rev !level_candidates);
    level_frequent = Array.of_list (List.rev !level_frequent);
    seconds = Util.Timer.now () -. t0;
    transcript = tr;
    counters_a = t.counters_a;
    counters_b = t.counters_b }

let matches_plaintext ~transactions ~minsup ?(max_size = 4) r =
  let plain =
    List.map fst (Apriori_plain.frequent_itemsets ~max_size ~minsup transactions)
  in
  plain = r.frequent
