(** Protocol configuration: the paper's knobs plus this reproduction's
    layout choice.

    Two ciphertext layouts are provided:

    - [Per_coordinate] — the faithful rendering of Algorithm 1: every
      coordinate is its own (constant-polynomial) ciphertext, squared
      Euclidean distance is computed as [Σ (p'_j − q'_j)²] with [d]
      homomorphic multiplications per point, and the masking polynomial
      of any degree is evaluated homomorphically with [EvalPoly].

    - [Dot_product] — an optimised variant: a point is one ciphertext
      with its coordinates as polynomial coefficients; the inner product
      [⟨p, q⟩] lands in the constant coefficient after a single
      multiplication by the reversed query, and
      [ED = ‖p‖² − 2⟨p,q⟩ + ‖q‖²] costs one multiplication per point.
      The cross-term coefficients are destroyed with a uniformly random
      zero-constant polynomial before sending, and the mask is affine
      (degree 1), since a higher-degree polynomial would not commute
      with the coefficient extraction.

    Both satisfy the same leakage profile for the two parties; the bench
    harness reports both (the paper's timings correspond to
    [Per_coordinate]). *)

type layout = Per_coordinate | Dot_product

type t = {
  bgv : Params.t;
  layout : layout;
  mask_degree : int;        (** degree of Party A's masking polynomial *)
  mask_coeff_bits : int;    (** requested coefficient width (clamped) *)
  max_coord_bits : int;     (** coordinates must fit in this many bits *)
  use_relin : bool;         (** relinearise after each multiplication *)
  rescale_distances : bool;
      (** modulus-switch the distance ciphertexts before masking; only
          needed when the masking polynomial consumes further depth *)
  return_level : int;       (** RNS level of the Return-kNN phase *)
}

val standard : unit -> t
(** [Per_coordinate], degree-2 mask, 1024-slot ring (memoised). *)

val fast : unit -> t
(** [Dot_product], affine mask, shorter chain (memoised). *)

val secure : unit -> t
(** [Per_coordinate] on the 128-bit-security ring (slow; for the
    demonstration example). *)

val with_layout : layout -> t -> t

val with_bgv : Params.t -> t -> t
(** Swap the BGV parameter set — how a planner pick ([Planner.realize],
    [sknn plan --apply]) threads into an existing configuration.
    Re-run {!validate}: the masking envelope depends on [bgv.t_plain]. *)

val with_return_level : int -> t -> t
val with_mask_degree : int -> t -> t
val with_relin : bool -> t -> t
val with_rescale_distances : bool -> t -> t

val max_distance_bits : t -> d:int -> int
(** Bits of the largest squared distance for [d]-dimensional data under
    [max_coord_bits]. *)

val validate : t -> d:int -> (unit, string) result
(** Checks the masking envelope (see {!Masking}) and layout constraints
    ([Dot_product] requires [mask_degree = 1] and [d <= n]). *)

val layout_name : layout -> string
val pp : Format.formatter -> t -> unit
