type layout = Per_coordinate | Dot_product

type t = {
  bgv : Params.t;
  layout : layout;
  mask_degree : int;
  mask_coeff_bits : int;
  max_coord_bits : int;
  use_relin : bool;
  rescale_distances : bool;
  return_level : int;
}

let memo f =
  let cache = ref None in
  fun () ->
    match !cache with
    | Some v -> v
    | None ->
      let v = f () in
      cache := Some v;
      v

let standard =
  memo (fun () ->
      let bgv =
        Params.create ~name:"protocol-standard" ~n:64 ~plain_bits:50 ~prime_bits:30
          ~chain_len:10 ()
      in
      { bgv; layout = Per_coordinate; mask_degree = 2; mask_coeff_bits = 8;
        max_coord_bits = 8; use_relin = false; rescale_distances = true;
        return_level = 6 })

let fast =
  memo (fun () ->
      let bgv =
        Params.create ~name:"protocol-fast" ~n:64 ~plain_bits:50 ~prime_bits:30
          ~chain_len:6 ()
      in
      { bgv; layout = Dot_product; mask_degree = 1; mask_coeff_bits = 16;
        max_coord_bits = 8; use_relin = false; rescale_distances = false;
        return_level = 6 })

let secure =
  memo (fun () ->
      let bgv = Params.secure () in
      { bgv; layout = Per_coordinate; mask_degree = 1; mask_coeff_bits = 8;
        max_coord_bits = 6; use_relin = false; rescale_distances = true;
        return_level = 6 })

let with_layout layout t = { t with layout }
let with_bgv bgv t = { t with bgv }
let with_return_level return_level t = { t with return_level }
let with_rescale_distances rescale_distances t = { t with rescale_distances }
let with_mask_degree mask_degree t = { t with mask_degree }
let with_relin use_relin t = { t with use_relin }

let bits_of v =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let max_distance_bits t ~d =
  let max_coord = (1 lsl t.max_coord_bits) - 1 in
  bits_of (Distance.max_squared_euclidean ~d ~max_value:max_coord)

let layout_name = function
  | Per_coordinate -> "per-coordinate"
  | Dot_product -> "dot-product"

let validate t ~d =
  let n = t.bgv.Params.n in
  let input_bits = max_distance_bits t ~d in
  let sound =
    Masking.max_coeff_bits ~t_plain:t.bgv.Params.t_plain ~input_bits ~degree:t.mask_degree
  in
  if t.mask_degree < 1 then Error "mask_degree must be >= 1"
  else if sound < 1 then
    Error
      (Printf.sprintf
         "masking envelope violated: degree-%d polynomial on %d-bit distances cannot fit \
          under t=%Ld; lower mask_degree or max_coord_bits"
         t.mask_degree input_bits t.bgv.Params.t_plain)
  else if t.layout = Dot_product && t.mask_degree <> 1 then
    Error "Dot_product layout supports only affine (degree-1) masking"
  else if t.layout = Dot_product && d > n then
    Error (Printf.sprintf "Dot_product layout needs d <= ring degree (%d > %d)" d n)
  else if t.return_level < 1 || t.return_level > Params.chain_length t.bgv then
    Error "return_level out of range"
  else Ok ()

let pp ppf t =
  Format.fprintf ppf
    "@[<v>layout=%s mask(degree=%d, <=%d-bit coeffs) coords<=%d bits relin=%b return_level=%d@ bgv: %a@]"
    (layout_name t.layout) t.mask_degree t.mask_coeff_bits t.max_coord_bits t.use_relin
    t.return_level Params.pp t.bgv
