(** Automatic BGV parameter planning.

    [plan] searches the (ring degree, chain length × prime width,
    plaintext prime) space for the cheapest parameter set a workload can
    prove safe:

    - candidates are enumerated as cheap {!Params.probe}s (prime search
      only; structured {!Params.Infeasible} specs are counted, not
      fatal), with the plaintext width sized to the masking envelope via
      {!Masking.max_coeff_bits};
    - feasibility pruning runs the worst-case {!Sknn_obs.Noise_model}
      trace of the workload's query path ({!forecast} — the same walks
      [Party_a.prepare]/[prepare_packed] audit) against the noise
      margin, and {!Params.security_bits_for} against the security
      floor; the return level is the lowest that clears the margin;
    - survivors are ranked by {!Sknn_obs.Cost_model.predict_seconds}
      of the symbolically-executed circuit, priced by a
      {!Sknn_obs.Cost_model.unit_model} fitted from one measured
      calibration — both the first-query (prepare included) and
      steady-state objectives are computed.

    Everything is pure given the unit model: the same spec yields the
    byte-identical plan.  Only {!realize} builds the expensive NTT/CRT
    tables, for the candidate actually chosen. *)

(** {1 Noise forecasts}

    Worst-case end-of-circuit noise walks per query path, over
    {!Sknn_obs.Cost_model.params} (see {!Attribution} for the bridge).
    [Party_a.forecast_noise]/[forecast_noise_packed] delegate here, so
    the planner's feasibility rule and the live prepare-time guard are
    the same code.  A negative minimum headroom means a live query
    would raise [Bgv.Decryption_failure]. *)

val forecast :
  ?margin_bits:float ->
  Sknn_obs.Cost_model.params ->
  Sknn_obs.Cost_model.path ->
  Sknn_obs.Noise_model.report
(** [margin_bits] defaults to 4. *)

(** {1 Workload and constraints} *)

type workload = {
  points : int;  (** database size n *)
  dim : int;  (** dimension d *)
  k : int;  (** neighbours returned *)
  coord_bits : int;  (** coordinates fit in this many bits *)
  layout : Config.layout;
  path : Sknn_obs.Cost_model.path;  (** pipeline the plan optimises *)
  mask_degree : int;
  mask_coeff_bits : int;  (** required sound mask-coefficient width *)
}

val workload :
  ?layout:Config.layout ->
  ?path:Sknn_obs.Cost_model.path ->
  ?mask_degree:int ->
  ?mask_coeff_bits:int ->
  points:int ->
  dim:int ->
  k:int ->
  coord_bits:int ->
  unit ->
  workload
(** Defaults: [Dot_product] layout, [Packed] path, affine mask with
    8-bit coefficients (the presets' request). *)

type objective =
  | First_query  (** prepare + one query *)
  | Steady_state  (** marginal query of a deployed database *)
  | Weighted of float  (** [alpha·first + (1−alpha)·steady], clamped *)

type constraints = {
  min_security_bits : float;  (** RLWE floor; 0 disables the prune *)
  noise_margin_bits : float;  (** forecast headroom the plan must keep *)
  objective : objective;
  net : Profile.t option;
      (** price candidates end-to-end under this network profile: each
          entry's first/steady seconds gain the virtual wire time of its
          predicted transcript (rounds × RTT + bytes/bandwidth), so a
          WAN objective weights rounds and message sizes, not just
          compute *)
}

val default_constraints : constraints
(** No security floor, 4-bit margin, steady-state objective, no network
    term. *)

(** {1 Planning} *)

type spec = {
  sp_n : int;
  sp_plain_bits : int;
  sp_prime_bits : int;
  sp_chain_len : int;
  sp_return_level : int;
}

type entry = {
  spec : spec;
  probe : Params.probe;
  log2_q : float;
  security_bits : float;
  min_headroom_bits : float;  (** at the chosen return level *)
  first_seconds : float;
  steady_seconds : float;
  objective_seconds : float;  (** the ranking key *)
  phase_seconds : (string * float) list;  (** steady state, protocol order *)
}

type outcome = {
  load : workload;
  limits : constraints;
  ranked : entry list;  (** best first, at most [keep] *)
  considered : int;  (** (n, prime_bits, chain_len) tuples examined *)
  infeasible : (string * int) list;  (** reason → count, sorted *)
  pruned_noise : int;  (** feasible specs failing the margin *)
  pruned_security : int;  (** feasible specs under the floor *)
}

val plan :
  ?keep:int ->
  unit_model:Sknn_obs.Cost_model.unit_model ->
  workload ->
  constraints ->
  outcome
(** Search the candidate space; [keep] (default 10) bounds the ranked
    list.  Pure given [unit_model] — the same inputs always produce the
    identical outcome.  @raise Invalid_argument on nonsensical
    workloads (and on [mask_degree > 1] anywhere but the plain
    per-coordinate path, the only pipeline that supports it). *)

val best : outcome -> entry option

val realize : workload -> entry -> Config.t
(** Build the winning candidate's full parameter set (NTT/CRT tables)
    and wrap it in a validated protocol configuration. *)

(** {1 Rendering} *)

val path_name : Sknn_obs.Cost_model.path -> string
val json_of_outcome : outcome -> string
val pp_outcome : Format.formatter -> outcome -> unit
