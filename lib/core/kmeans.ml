module Rng = Util.Rng
module Counters = Util.Counters
module Perm = Util.Perm

type deployment = {
  config : Config.t;
  n : int;
  d : int;
  enc_db : Entities.encrypted_db;
  sk : Bgv.secret_key;
  pk : Bgv.public_key;
  client : Entities.Client.t;
  counters_a : Counters.t;
  counters_b : Counters.t;
  seed : Rng.t;
}

let deploy ?rng config ~db =
  let rng = match rng with Some r -> r | None -> Rng.of_int 0x3eab5 in
  if config.Config.layout <> Config.Dot_product then
    invalid_arg "Kmeans.deploy: requires the Dot_product layout";
  let owner = Entities.Data_owner.create (Rng.split rng) config in
  let enc_db = Entities.Data_owner.encrypt_db (Rng.split rng) owner db in
  let keys = Entities.Data_owner.keys owner in
  { config;
    n = Array.length db;
    d = Array.length db.(0);
    enc_db;
    sk = keys.Bgv.sk;
    pk = keys.Bgv.pk;
    client = Entities.Client.create config keys.Bgv.sk keys.Bgv.pk;
    counters_a = Counters.create ();
    counters_b = Counters.create ();
    seed = Rng.split rng }

type result = {
  centroids : int array array;
  sizes : int array;
  iterations : int;
  converged : bool;
  seconds : float;
  transcript : Transcript.t;
  counters_a : Counters.t;
  counters_b : Counters.t;
}

(* Party A: encrypted squared distance of one stored point to one
   encrypted centroid (Dot_product layout; see Entities). *)
let encrypted_distance (t : deployment) (point : Entities.encrypted_point) (q : Entities.encrypted_query) =
  let counters = t.counters_a in
  let q_rev = Option.get q.Entities.q_rev and q_norm = Option.get q.Entities.q_norm in
  let norm = Option.get point.Entities.norm in
  let ip = Bgv.mul ~counters ~rescale:false point.Entities.packed q_rev in
  Bgv.sub ~counters (Bgv.add ~counters norm q_norm) (Bgv.mul_scalar ~counters ip 2L)

let zero_constant_randomizer rng params =
  let tp = params.Params.t_plain in
  let coeffs =
    Array.init params.Params.n (fun i -> if i = 0 then 0L else Rng.int64_below rng tp)
  in
  Plaintext.of_coeffs params coeffs

let run ?rng ?(max_iters = 25) t ~init =
  let rng = match rng with Some r -> r | None -> Rng.split t.seed in
  let k = Array.length init in
  if k = 0 then invalid_arg "Kmeans.run: k = 0";
  Array.iter (fun c -> if Array.length c <> t.d then invalid_arg "Kmeans.run: bad centroid dim") init;
  Counters.reset t.counters_a;
  Counters.reset t.counters_b;
  let tr = Transcript.create () in
  let t0 = Util.Timer.now () in
  let params = t.config.Config.bgv in
  let tp = params.Params.t_plain in
  let return_level =
    Stdlib.min t.config.Config.return_level (Params.chain_length params)
  in
  let input_bits = Config.max_distance_bits t.config ~d:t.d in
  let centroids = ref (Array.map Array.copy init) in
  let iterations = ref 0 in
  let converged = ref false in
  let sizes = ref (Array.make k 0) in
  let ct_bytes cts = Array.fold_left (fun s c -> s + Bgv.byte_size c) 0 cts in
  while (not !converged) && !iterations < max_iters do
    incr iterations;
    (* Client: encrypt the centroids as dot-product queries. *)
    let enc_centroids =
      Array.map (fun c -> Entities.Client.encrypt_query t.client rng c) !centroids
    in
    Transcript.send tr ~sender:Transcript.Client ~receiver:Transcript.Party_a
      ~label:(Printf.sprintf "iteration %d: encrypted centroids" !iterations)
      ~bytes:(Array.fold_left (fun s q -> s + Entities.query_bytes q) 0 enc_centroids);
    (* Party A: per-point masked, per-point permuted distance rows. *)
    let perms = Array.init t.n (fun _ -> Perm.random rng k) in
    let masked_rows =
      Array.mapi
        (fun i point ->
          let mask =
            Masking.draw rng ~t_plain:tp ~input_bits ~degree:1
              ~coeff_bits:t.config.Config.mask_coeff_bits ()
          in
          let coeffs = Masking.coeffs mask in
          let row =
            Array.map
              (fun q ->
                let ed = encrypted_distance t point q in
                let m = Bgv.eval_poly ~counters:t.counters_a ~coeffs ed in
                Bgv.add_plain ~counters:t.counters_a m (zero_constant_randomizer rng params))
              enc_centroids
          in
          Perm.apply perms.(i) row)
        t.enc_db.Entities.points
    in
    Transcript.send tr ~sender:Transcript.Party_a ~receiver:Transcript.Party_b
      ~label:(Printf.sprintf "iteration %d: masked distance rows" !iterations)
      ~bytes:(Array.fold_left (fun s row -> s + ct_bytes row) 0 masked_rows);
    (* Party B: per-row argmin, indicator vectors over permuted slots. *)
    let indicator_rows =
      Array.map
        (fun row ->
          let values = Array.map (Bgv.decrypt_coeff0 ~counters:t.counters_b t.sk) row in
          let best = ref 0 in
          Array.iteri (fun c v -> if Int64.compare v values.(!best) < 0 then best := c) values;
          Array.init k (fun c ->
              Bgv.encrypt ~counters:t.counters_b ~level:return_level rng t.pk
                (Plaintext.constant params (if c = !best then 1L else 0L))))
        masked_rows
    in
    Transcript.send tr ~sender:Transcript.Party_b ~receiver:Transcript.Party_a
      ~label:(Printf.sprintf "iteration %d: assignment indicators" !iterations)
      ~bytes:(Array.fold_left (fun s row -> s + ct_bytes row) 0 indicator_rows);
    (* Party A: un-permute and aggregate sums and counts per cluster. *)
    let sums = Array.make k None and counts = Array.make k None in
    Array.iteri
      (fun i row ->
        let packed =
          Bgv.truncate_to_level ~counters:t.counters_a
            t.enc_db.Entities.points.(i).Entities.packed return_level
        in
        for c = 0 to k - 1 do
          let ind = row.(Perm.apply_index perms.(i) c) in
          let term = Bgv.mul ~counters:t.counters_a ~rescale:false packed ind in
          sums.(c) <-
            (match sums.(c) with
             | None -> Some term
             | Some a -> Some (Bgv.add ~counters:t.counters_a a term));
          counts.(c) <-
            (match counts.(c) with
             | None -> Some ind
             | Some a -> Some (Bgv.add ~counters:t.counters_a a ind))
        done)
      indicator_rows;
    let aggregates =
      Array.init k (fun c -> (Option.get sums.(c), Option.get counts.(c)))
    in
    Transcript.send tr ~sender:Transcript.Party_a ~receiver:Transcript.Client
      ~label:(Printf.sprintf "iteration %d: cluster aggregates" !iterations)
      ~bytes:(Array.fold_left (fun s (a, b) -> s + Bgv.byte_size a + Bgv.byte_size b) 0 aggregates);
    (* Client: decrypt and recompute centroids (rounded integer mean).
       Client-side decryptions live outside the two-party A/B cost
       ledger, so they carry no counters. *)
    let next =
      Array.mapi
        (fun c (sum_ct, count_ct) ->
          let count =
            Int64.to_int
              ((Bgv.decrypt_coeff0 t.sk count_ct) [@sknn.allow "ledger-at-op-site"])
          in
          (!sizes).(c) <- count;
          if count = 0 then Array.copy !centroids.(c)
          else begin
            let coeffs =
              Plaintext.to_coeffs
                ((Bgv.decrypt t.sk sum_ct) [@sknn.allow "ledger-at-op-site"])
            in
            Array.init t.d (fun j ->
                let s = Int64.to_int coeffs.(j) in
                (s + (count / 2)) / count)
          end)
        aggregates
    in
    if next = !centroids then converged := true else centroids := next
  done;
  { centroids = !centroids;
    sizes = !sizes;
    iterations = !iterations;
    converged = !converged;
    seconds = Util.Timer.now () -. t0;
    transcript = tr;
    counters_a = t.counters_a;
    counters_b = t.counters_b }

let matches_plaintext ~db ~init ?(max_iters = 25) r =
  let plain = Kmeans_plain.lloyd ~max_iters ~init db in
  plain.Kmeans_plain.centroids = r.centroids
