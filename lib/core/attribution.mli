(** Config → {!Sknn_obs.Cost_model} bridge.

    Derives the analytic cost replica's parameters from a protocol
    configuration — exact modulus bit lengths for the key-switch digit
    count, the sound mask-coefficient width, centered worst-case scalar
    magnitudes — using the same arithmetic the live circuit uses, so
    the replica's branch decisions match the instrumented run's.
    See DESIGN.md §5a for the invariant this upholds. *)

val noise_model_params : Params.t -> Sknn_obs.Noise_model.params

val q_ibits_of_moduli : int array -> int array
(** Exact bit length of the prefix modulus products (index [i] =
    [i + 1] active primes) — [Zint.numbits] of the same products
    [Rq.modulus ~nprimes] returns, without needing a ring context. *)

val max_distance_bits : max_coord_bits:int -> d:int -> int
(** Bits of the largest squared distance for [d]-dimensional data under
    [max_coord_bits] — [Config.max_distance_bits] from raw knobs. *)

val model_params_probe :
  Params.probe ->
  layout:Config.layout ->
  mask_degree:int ->
  mask_coeff_bits:int ->
  max_coord_bits:int ->
  use_relin:bool ->
  rescale_distances:bool ->
  return_level:int ->
  n:int ->
  d:int ->
  k:int ->
  Sknn_obs.Cost_model.params
(** The bridge from an {e unrealized} [Params.probe] plus the protocol
    knobs a [Config.t] would carry: what the planner prices candidates
    with.  [model_params] is this applied to [Params.probe_of_t], so a
    candidate and its realized configuration price identically. *)

val model_params :
  Config.t -> n:int -> d:int -> k:int -> Sknn_obs.Cost_model.params
(** [n] is the database size, [d] the dimension, [k] the neighbour
    count — the three run-time numbers a [Config.t] does not carry. *)

val predict :
  ?include_prepare:bool ->
  Config.t ->
  n:int ->
  d:int ->
  k:int ->
  Sknn_obs.Cost_model.path ->
  Sknn_obs.Cost_model.prediction
(** One-stop [model_params] + [Cost_model.predict]. *)

val predict_end_to_end :
  ?include_prepare:bool ->
  Config.t ->
  n:int ->
  d:int ->
  k:int ->
  unit_costs:Sknn_obs.Cost_model.unit_costs ->
  profile:Profile.t ->
  Sknn_obs.Cost_model.path ->
  Sknn_obs.Cost_model.end_to_end
(** [predict] priced end-to-end under a network profile: compute critical
    path from the calibration table plus the {!Netsim.Clock} replay of
    the predicted transcript. *)

val predicted_phase_seconds :
  unit_costs:Sknn_obs.Cost_model.unit_costs ->
  Sknn_obs.Cost_model.prediction ->
  (string * float) list
(** Predicted seconds per protocol phase (parties merged), in protocol
    order — the analytic counterpart of [Protocol.result.phase_seconds]. *)
