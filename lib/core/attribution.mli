(** Config → {!Sknn_obs.Cost_model} bridge.

    Derives the analytic cost replica's parameters from a protocol
    configuration — exact modulus bit lengths for the key-switch digit
    count, the sound mask-coefficient width, centered worst-case scalar
    magnitudes — using the same arithmetic the live circuit uses, so
    the replica's branch decisions match the instrumented run's.
    See DESIGN.md §5a for the invariant this upholds. *)

val noise_model_params : Params.t -> Sknn_obs.Noise_model.params

val model_params :
  Config.t -> n:int -> d:int -> k:int -> Sknn_obs.Cost_model.params
(** [n] is the database size, [d] the dimension, [k] the neighbour
    count — the three run-time numbers a [Config.t] does not carry. *)

val predict :
  ?include_prepare:bool ->
  Config.t ->
  n:int ->
  d:int ->
  k:int ->
  Sknn_obs.Cost_model.path ->
  Sknn_obs.Cost_model.prediction
(** One-stop [model_params] + [Cost_model.predict]. *)

val predicted_phase_seconds :
  unit_costs:Sknn_obs.Cost_model.unit_costs ->
  Sknn_obs.Cost_model.prediction ->
  (string * float) list
(** Predicted seconds per protocol phase (parties merged), in protocol
    order — the analytic counterpart of [Protocol.result.phase_seconds]. *)
