module Rng = Util.Rng
module Counters = Util.Counters
module Perm = Util.Perm
module Pool = Util.Pool
module Obs = Sknn_obs.Ctx
module Trace = Sknn_obs.Trace
module Audit = Sknn_obs.Audit
module NM = Sknn_obs.Noise_model

(* Per-worker counters keep recording race-free under Pool.map_local;
   absorbing them in worker order makes the totals exact (and identical)
   for every job count. *)
let merge_into counters w = Counters.absorb ~into:counters w

(* One independent RNG stream per point, split off sequentially from the
   parent before the parallel loop, so the ciphertexts are bit-identical
   whatever the job count. *)
let split_streams rng n = Array.init n (fun _ -> Rng.split rng)

type encrypted_point = {
  coords : Bgv.ct array option;
  packed : Bgv.ct;
  norm : Bgv.ct option;
}

type encrypted_db = { db_n : int; db_d : int; points : encrypted_point array }

type encrypted_query = {
  q_coords : Bgv.ct array option;
  q_rev : Bgv.ct option;
  q_norm : Bgv.ct option;
  q_dim : int;
}

(* Slot-batched multi-query form: ciphertext j carries query m's j-th
   coordinate in slot m, so M queries ride one set of d+1 ciphertexts. *)
type batched_query = {
  bq_coords : Bgv.ct array;
  bq_norm : Bgv.ct;
  bq_count : int;
  bq_dim : int;
}

let ct_bytes = Bgv.byte_size

let point_bytes p =
  ct_bytes p.packed
  + (match p.coords with None -> 0 | Some a -> Array.fold_left (fun s c -> s + ct_bytes c) 0 a)
  + (match p.norm with None -> 0 | Some c -> ct_bytes c)

let db_bytes db = Array.fold_left (fun s p -> s + point_bytes p) 0 db.points

let query_bytes q =
  (match q.q_coords with None -> 0 | Some a -> Array.fold_left (fun s c -> s + ct_bytes c) 0 a)
  + (match q.q_rev with None -> 0 | Some c -> ct_bytes c)
  + (match q.q_norm with None -> 0 | Some c -> ct_bytes c)

let batched_query_bytes bq =
  Array.fold_left (fun s c -> s + ct_bytes c) (ct_bytes bq.bq_norm) bq.bq_coords

(* Coefficient-packed plaintext for a point: p_j at coefficient j. *)
let packed_plaintext params point =
  let coeffs = Array.make params.Params.n 0L in
  Array.iteri (fun j v -> coeffs.(j) <- Int64.of_int v) point;
  Plaintext.of_coeffs params coeffs

(* Reversed query for the inner-product trick: constant term q_0, and
   -q_j at x^(n-j) for j >= 1, so that the constant coefficient of
   P(x)·Qrev(x) in Z_t[x]/(x^n+1) equals <p, q>. *)
let reversed_query_plaintext params query =
  let n = params.Params.n in
  let t = params.Params.t_plain in
  let coeffs = Array.make n 0L in
  Array.iteri
    (fun j v ->
      let v64 = Int64.of_int v in
      if j = 0 then coeffs.(0) <- Mod64.reduce t v64
      else coeffs.(n - j) <- Mod64.neg t (Mod64.reduce t v64))
    query;
  Plaintext.of_coeffs params coeffs

let squared_norm point = Array.fold_left (fun s v -> s + (v * v)) 0 point

(* ------------------------------------------------------------------ *)

module Data_owner = struct
  type t = { config : Config.t; keys : Bgv.keys }

  let create rng config = { config; keys = Bgv.keygen rng config.Config.bgv }
  let keys t = t.keys
  let config t = t.config

  let validate_point config ~d point =
    if Array.length point <> d then invalid_arg "Data_owner.encrypt_db: ragged data";
    let bound = 1 lsl config.Config.max_coord_bits in
    Array.iter
      (fun v ->
        if v < 0 || v >= bound then
          invalid_arg
            (Printf.sprintf
               "Data_owner.encrypt_db: coordinate %d outside [0, 2^%d) — preprocess the data \
                (Preprocess.scale_to_max)"
               v config.Config.max_coord_bits))
      point

  let encrypt_db ?(obs = Obs.disabled) ?counters ?jobs rng t db =
    let config = t.config in
    let n_points = Array.length db in
    if n_points = 0 then invalid_arg "Data_owner.encrypt_db: empty database";
    let d = Array.length db.(0) in
    (match Config.validate config ~d with
     | Ok () -> ()
     | Error msg -> invalid_arg ("Data_owner.encrypt_db: " ^ msg));
    if d > config.Config.bgv.Params.n then
      invalid_arg "Data_owner.encrypt_db: dimension exceeds ring degree";
    Array.iter (validate_point config ~d) db;
    let params = config.Config.bgv in
    let pk = t.keys.Bgv.pk in
    let rngs = split_streams rng n_points in
    let span_counters =
      match counters with Some c -> [ ("data-owner", c) ] | None -> []
    in
    let points =
      Obs.with_span obs ~kind:Trace.Phase ~counters:span_counters
        ~args:[ ("points", string_of_int n_points) ]
        "encrypt-db"
        (fun () ->
          Obs.with_pool_chunks obs ~label:"encrypt-db" (fun () ->
              Pool.map_local ?jobs ~make:Counters.create
                ~merge:(fun w -> Option.iter (fun c -> merge_into c w) counters)
                ~f:(fun counters i point ->
                  let rng = rngs.(i) in
                  let enc pt = Bgv.encrypt ~counters rng pk pt in
                  let packed = enc (packed_plaintext params point) in
                  match config.Config.layout with
                  | Config.Per_coordinate ->
                    let coords =
                      Array.map
                        (fun v -> enc (Plaintext.constant params (Int64.of_int v)))
                        point
                    in
                    { coords = Some coords; packed; norm = None }
                  | Config.Dot_product ->
                    let norm =
                      enc (Plaintext.constant params (Int64.of_int (squared_norm point)))
                    in
                    { coords = None; packed; norm = Some norm })
                db))
    in
    { db_n = n_points; db_d = d; points }
end

(* ------------------------------------------------------------------ *)

module Party_a = struct
  type t = {
    config : Config.t;
    (* Party A holds the public key in the paper's setup even though
       the current pipeline never re-encrypts on its side. *)
    pk : Bgv.public_key; [@warning "-69"]
    rlk : Bgv.relin_key;
    db : encrypted_db;
    counters : Counters.t;
    jobs : int;
  }

  let create ?jobs config pk rlk db =
    let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
    { config; pk; rlk; db; counters = Counters.create (); jobs }

  let counters t = t.counters
  let db_size t = t.db.db_n
  let jobs t = t.jobs

  type query_state = { mask : Masking.t; perm : Perm.t }

  let state_mask s = s.mask
  let state_perm s = s.perm

  let rlk_opt t = if t.config.Config.use_relin then Some t.rlk else None

  let encrypted_distance t ~counters query point =
    match t.config.Config.layout, point.coords, query.q_coords with
    | Config.Per_coordinate, Some coords, Some q_coords ->
      (* ED = sum_j (p'_j - q'_j)^2, Steps 2-4 of Algorithm 1.  The
         per-dimension squares are left unrescaled (fused inner product
         of the difference vector with itself); one rescale after the
         sum costs d-1 fewer modulus switches per point. *)
      let diffs = Array.mapi (fun j c -> Bgv.sub ~counters c q_coords.(j)) coords in
      (* jobs:1 — compute_distances already parallelises over points. *)
      let ed = Bgv.mul_sum ~counters ~jobs:1 ?rlk:(rlk_opt t) diffs diffs in
      if t.config.Config.rescale_distances then Bgv.rescale_to_floor ~counters ed else ed
    | Config.Dot_product, _, _ ->
      let q_rev = Option.get query.q_rev and q_norm = Option.get query.q_norm in
      let norm = Option.get point.norm in
      (* ED = ||p||^2 - 2<p,q> + ||q||^2 in the constant coefficient. *)
      let ip = Bgv.mul ~counters ~rescale:false point.packed q_rev in
      Bgv.sub ~counters
        (Bgv.add ~counters norm q_norm)
        (Bgv.mul_scalar ~counters ip 2L)
    | Config.Per_coordinate, _, _ ->
      invalid_arg "Party_a.compute_distances: layout/ciphertext mismatch"

  (* A uniformly random polynomial with zero constant coefficient; added
     to Dot_product masked distances to destroy the cross-term
     coefficients the inner-product trick leaves behind. *)
  let zero_constant_randomizer rng params =
    let t = params.Params.t_plain in
    let coeffs =
      Array.init params.Params.n (fun i -> if i = 0 then 0L else Rng.int64_below rng t)
    in
    Plaintext.of_coeffs params coeffs

  let compute_distances ?(obs = Obs.disabled) t rng query =
    let config = t.config in
    let d = t.db.db_d in
    if query.q_dim <> d then invalid_arg "Party_a.compute_distances: dimension mismatch";
    let mask =
      Obs.with_span obs "draw-mask" (fun () ->
          Masking.draw rng ~t_plain:config.Config.bgv.Params.t_plain
            ~input_bits:(Config.max_distance_bits config ~d)
            ~degree:config.Config.mask_degree
            ~coeff_bits:config.Config.mask_coeff_bits ())
    in
    let coeffs = Masking.coeffs mask in
    let rngs = split_streams rng t.db.db_n in
    let masked =
      Obs.with_span obs
        ~counters:[ ("party-a", t.counters) ]
        ~args:[ ("points", string_of_int t.db.db_n) ]
        "distance-batches"
        (fun () ->
          Obs.with_pool_chunks obs ~label:"distances" (fun () ->
              Pool.map_local ~jobs:t.jobs ~make:Counters.create
                ~merge:(merge_into t.counters)
                ~f:(fun counters i point ->
                  let ed = encrypted_distance t ~counters query point in
                  let m = Bgv.eval_poly ~counters ?rlk:(rlk_opt t) ~coeffs ed in
                  match config.Config.layout with
                  | Config.Per_coordinate -> m
                  | Config.Dot_product ->
                    Bgv.add_plain ~counters m
                      (zero_constant_randomizer rngs.(i) config.Config.bgv))
                t.db.points))
    in
    Obs.with_span obs "permute" (fun () ->
        let perm = Perm.random rng t.db.db_n in
        ({ mask; perm }, Perm.apply perm masked))

  let return_level t =
    Stdlib.min t.config.Config.return_level (Params.chain_length t.config.Config.bgv)

  (* ---- Prepared (multi-query) path ------------------------------- *)

  (* Query-independent work hoisted out of the per-query loop: the
     packed ciphertexts (already NTT/Eval-domain) and an encrypted
     squared norm per point.  With ED = ||p||^2 - 2<p,q> + ||q||^2 the
     per-query cost per point drops from d ciphertext products
     (Per_coordinate) to one packed product against the reversed query,
     amortising the d-fold work across the database lifetime. *)
  type prepared = {
    prep_packed : Bgv.ct array;
    prep_norms : Bgv.ct array;
    prep_return_packed : Bgv.ct array;
        (* packed points already truncated to the return level, so
           Return-kNN skips the per-query truncation pass *)
  }

  (* The inner-product trick leaves cross terms in the non-constant
     coefficients, so only affine masking keeps the constant coefficient
     sound — the same restriction Config.validate puts on Dot_product. *)
  let prepared_supported config ~d =
    if config.Config.mask_degree <> 1 then
      Error "prepared queries need affine (degree-1) masking"
    else if d > config.Config.bgv.Params.n then
      Error "prepared queries need d <= ring degree"
    else Ok ()

  (* ---- Noise forecast ------------------------------------------- *)

  (* Worst-case end-of-circuit headroom for the prepared path, predicted
     from the parameter chain alone — the planner's forecast trace
     ([Planner.forecast], which the parameter search also prunes with),
     over the same Config→model bridge the cost replica uses.  A
     negative forecast here means a live query would raise
     Decryption_failure. *)
  let forecast_noise ?(margin_bits = 4.0) t =
    Planner.forecast ~margin_bits
      (Attribution.model_params t.config ~n:t.db.db_n ~d:t.db.db_d ~k:1)
      Sknn_obs.Cost_model.Prepared

  let prepare ?(obs = Obs.disabled) ?(noise_margin_bits = 4.0) t =
    (match prepared_supported t.config ~d:t.db.db_d with
     | Ok () -> ()
     | Error msg -> invalid_arg ("Party_a.prepare: " ^ msg));
    let forecast = forecast_noise ~margin_bits:noise_margin_bits t in
    Obs.audit obs ~party:"party-a" ~phase:"prepare-db" ~label:"noise-min-headroom-bits"
      (Audit.Float forecast.NM.min_headroom_bits);
    if forecast.NM.below_margin then begin
      Obs.audit obs ~party:"party-a" ~phase:"prepare-db"
        ~label:"noise-low-headroom-warning"
        (Audit.Str (Format.asprintf "%a" NM.pp_report forecast));
      Obs.warn obs ~name:"noise-low-headroom" ~x:forecast.NM.min_headroom_bits ();
      Format.eprintf
        "[sknn] warning: noise forecast predicts %.1f bits minimum headroom (margin \
         %.1f) — deepen the modulus chain or lower the circuit depth@."
        forecast.NM.min_headroom_bits noise_margin_bits
    end;
    let norms =
      Obs.with_span obs
        ~counters:[ ("party-a", t.counters) ]
        ~args:[ ("points", string_of_int t.db.db_n) ]
        "prepare-norms"
        (fun () ->
          Obs.with_pool_chunks obs ~label:"prepare-norms" (fun () ->
              Pool.map_local ~jobs:t.jobs ~make:Counters.create
                ~merge:(merge_into t.counters)
                ~f:(fun counters _ point ->
                  match point.norm, point.coords with
                  | Some norm, _ -> norm
                  | None, Some coords ->
                    (* ||p||^2 homomorphically, once per database. *)
                    Bgv.mul_sum ~counters ~jobs:1 ?rlk:(rlk_opt t) coords coords
                  | None, None ->
                    invalid_arg "Party_a.prepare: point carries no norm or coordinates")
                t.db.points))
    in
    let lvl = return_level t in
    { prep_packed = Array.map (fun p -> p.packed) t.db.points;
      prep_norms = norms;
      prep_return_packed =
        Array.map
          (fun p -> Bgv.truncate_to_level ~counters:t.counters p.packed lvl)
          t.db.points }

  let compute_distances_prepared ?(obs = Obs.disabled) t prep rng query =
    let config = t.config in
    let d = t.db.db_d in
    if query.q_dim <> d then
      invalid_arg "Party_a.compute_distances_prepared: dimension mismatch";
    let q_rev, q_norm =
      match query.q_rev, query.q_norm with
      | Some r, Some n -> (r, n)
      | _ ->
        invalid_arg
          "Party_a.compute_distances_prepared: query lacks inner-product form \
           (use Client.encrypt_query_ip)"
    in
    (match prepared_supported config ~d with
     | Ok () -> ()
     | Error msg -> invalid_arg ("Party_a.compute_distances_prepared: " ^ msg));
    let mask =
      Obs.with_span obs "draw-mask" (fun () ->
          Masking.draw rng ~t_plain:config.Config.bgv.Params.t_plain
            ~input_bits:(Config.max_distance_bits config ~d)
            ~degree:config.Config.mask_degree
            ~coeff_bits:config.Config.mask_coeff_bits ())
    in
    let coeffs = Masking.coeffs mask in
    let rngs = split_streams rng t.db.db_n in
    let masked =
      Obs.with_span obs
        ~counters:[ ("party-a", t.counters) ]
        ~args:[ ("points", string_of_int t.db.db_n) ]
        "distance-batches"
        (fun () ->
          Obs.with_pool_chunks obs ~label:"distances" (fun () ->
              Pool.map_local ~jobs:t.jobs ~make:Counters.create
                ~merge:(merge_into t.counters)
                ~f:(fun counters i packed ->
                  (* ED = ||p||^2 - 2<p,q> + ||q||^2 in the constant
                     coefficient; one ciphertext product per point. *)
                  let ip =
                    Bgv.mul ~counters ?rlk:(rlk_opt t) ~rescale:false packed q_rev
                  in
                  let ed =
                    Bgv.sub ~counters
                      (Bgv.add ~counters prep.prep_norms.(i) q_norm)
                      (Bgv.mul_scalar ~counters ip 2L)
                  in
                  (* ED is one multiplication deep, so its noise bound
                     sits far below the full modulus: find the lowest
                     level whose modulus still leaves headroom for the
                     affine mask (coefficients < t) and drop the spare
                     RNS components in one cheap truncation.  Masking,
                     transport and B's decryption then all run on the
                     small ciphertext, without the per-point modswitch
                     chain a full rescale would cost.  If no level has
                     the headroom, fall back to the configured rescale
                     (which actually reduces the noise). *)
                  let ed =
                    let params = config.Config.bgv in
                    let mask_bits =
                      log (Int64.to_float params.Params.t_plain) /. log 2.
                    in
                    let need = Bgv.noise_bits ed +. mask_bits +. 17. in
                    let lvl = ref 0 and bits = ref 0. in
                    while !bits <= need && !lvl < Bgv.level ed do
                      bits :=
                        !bits
                        +. (log (float_of_int params.Params.moduli.(!lvl)) /. log 2.);
                      incr lvl
                    done;
                    let lvl = Stdlib.max !lvl (return_level t) in
                    if !bits > need && lvl < Bgv.level ed then
                      Bgv.truncate_to_level ~counters ed lvl
                    else if config.Config.rescale_distances then
                      Bgv.rescale_to_floor ~counters ed
                    else ed
                  in
                  let m = Bgv.eval_poly ~counters ?rlk:(rlk_opt t) ~coeffs ed in
                  Bgv.add_plain ~counters m
                    (zero_constant_randomizer rngs.(i) config.Config.bgv))
                prep.prep_packed))
    in
    Obs.with_span obs "permute" (fun () ->
        let perm = Perm.random rng t.db.db_n in
        ({ mask; perm }, Perm.apply perm masked))

  let select_row ?(obs = Obs.disabled) t permuted_packed row =
    (* T^j = Π(P')·B^j summed: one re-randomised encrypted point.  The
       inner product is fused and split across domains; return_knn keeps
       the k rows sequential so parallelism is never nested. *)
    Obs.with_pool_chunks obs ~label:"select-row" (fun () ->
        Bgv.mul_sum ~counters:t.counters ~jobs:t.jobs permuted_packed row)

  let permuted_packed t state =
    let lvl = return_level t in
    Perm.apply state.perm
      (Array.map
         (fun p -> Bgv.truncate_to_level ~counters:t.counters p.packed lvl)
         t.db.points)

  let permuted_packed_prepared prep state =
    Perm.apply state.perm prep.prep_return_packed

  (* ---- Slot-packed (SIMD) path ----------------------------------- *)

  (* The packed path models the outsourced-query setting (SANNS-style):
     Party A acts for the data owner and holds the database in the
     clear, dimension-major — column j is the n-vector of j-th
     coordinates, one slot per point — while the client's query stays
     encrypted.  A batch of N = slot_count points then costs d plain
     products plus adds instead of N ciphertext products, and Party B
     decrypts ceil(n/N) ciphertexts instead of n.  B's §5 view (masked
     permuted distance multiset, n, k) is unchanged. *)
  type prepared_packed = {
    pp_cols : int64 array array;  (* pp_cols.(j).(i) = p_i(j) mod t *)
    pp_norms : int64 array;       (* ‖p_i‖² mod t *)
    pp_return_packed : Bgv.ct array;
        (* return-level packed points, as in [prepared] *)
  }

  let packed_supported config ~d =
    if config.Config.mask_degree <> 1 then
      Error "packed queries need affine (degree-1) masking"
    else if d > config.Config.bgv.Params.n then
      Error "packed queries need d <= ring degree"
    else Ok ()

  let lg2 x = log x /. log 2.0

  let log2_add a b =
    let hi = Float.max a b and lo = Float.min a b in
    hi +. lg2 (1.0 +. (2.0 ** (lo -. hi)))

  (* Worst-case headroom for the packed SIMD circuit — strictly
     shallower than the prepared path (d plain products summed
     slot-wise, so no tensor term ever appears).  Delegated to the
     planner's trace for the same reason as [forecast_noise]. *)
  let forecast_noise_packed ?(margin_bits = 4.0) t =
    Planner.forecast ~margin_bits
      (Attribution.model_params t.config ~n:t.db.db_n ~d:t.db.db_d ~k:1)
      Sknn_obs.Cost_model.Packed

  let prepare_packed ?(obs = Obs.disabled) ?(noise_margin_bits = 4.0) t ~db =
    let config = t.config in
    let d = t.db.db_d and n = t.db.db_n in
    (match packed_supported config ~d with
     | Ok () -> ()
     | Error msg -> invalid_arg ("Party_a.prepare_packed: " ^ msg));
    if Array.length db <> n then
      invalid_arg "Party_a.prepare_packed: plaintext database size mismatch";
    Array.iter (Data_owner.validate_point config ~d) db;
    let forecast = forecast_noise_packed ~margin_bits:noise_margin_bits t in
    Obs.audit obs ~party:"party-a" ~phase:"prepare-db" ~label:"noise-min-headroom-bits"
      (Audit.Float forecast.NM.min_headroom_bits);
    if forecast.NM.below_margin then begin
      Obs.audit obs ~party:"party-a" ~phase:"prepare-db"
        ~label:"noise-low-headroom-warning"
        (Audit.Str (Format.asprintf "%a" NM.pp_report forecast));
      Obs.warn obs ~name:"noise-low-headroom" ~x:forecast.NM.min_headroom_bits ();
      Format.eprintf
        "[sknn] warning: noise forecast predicts %.1f bits minimum headroom (margin \
         %.1f) — deepen the modulus chain or lower the circuit depth@."
        forecast.NM.min_headroom_bits noise_margin_bits
    end;
    let tp = config.Config.bgv.Params.t_plain in
    let lvl = return_level t in
    { pp_cols =
        Array.init d (fun j ->
            Array.init n (fun i -> Mod64.reduce tp (Int64.of_int db.(i).(j))));
      pp_norms =
        Array.init n (fun i -> Mod64.reduce tp (Int64.of_int (squared_norm db.(i))));
      pp_return_packed =
        Array.map
          (fun p -> Bgv.truncate_to_level ~counters:t.counters p.packed lvl)
          t.db.points }

  (* Walk the RNS chain for the lowest level whose modulus clears [need]
     bits — the prepared level-drop rule, applied predictively to the
     query ciphertexts before the products.  Every packed op's noise
     increment is level-independent, so truncating up front reaches the
     same end-of-circuit bound while all the per-batch work runs on the
     short chain.  [None] when even the full chain lacks the headroom
     (callers then fall back to the configured rescale). *)
  let level_for_need t ~need =
    let params = t.config.Config.bgv in
    let chain = Params.chain_length params in
    let lvl = ref 0 and bits = ref 0.0 in
    while !bits <= need && !lvl < chain do
      bits := !bits +. lg2 (float_of_int params.Params.moduli.(!lvl));
      incr lvl
    done;
    let lvl = Stdlib.max !lvl (return_level t) in
    if !bits > need then Some lvl else None

  let packed_query_level t ~q_noise_bits ~d =
    let params = t.config.Config.bgv in
    let t_bits = lg2 (Int64.to_float params.Params.t_plain) in
    let ip =
      q_noise_bits +. lg2 (float_of_int params.Params.n) +. t_bits -. 1.0
      +. lg2 (float_of_int (Stdlib.max 1 d))
    in
    let ed = log2_add (log2_add q_noise_bits (t_bits -. 1.0)) (ip +. 1.0) in
    level_for_need t ~need:(ed +. t_bits +. 17.0)

  let compute_distances_packed ?(obs = Obs.disabled) t pp rng query =
    let config = t.config in
    let params = config.Config.bgv in
    let d = t.db.db_d and n = t.db.db_n in
    if query.q_dim <> d then
      invalid_arg "Party_a.compute_distances_packed: dimension mismatch";
    let q_coords, q_norm =
      match query.q_coords, query.q_norm with
      | Some c, Some nr when Array.length c = d -> (c, nr)
      | _ ->
        invalid_arg
          "Party_a.compute_distances_packed: query lacks broadcast-slot form (use \
           Client.encrypt_query_packed)"
    in
    (match packed_supported config ~d with
     | Ok () -> ()
     | Error msg -> invalid_arg ("Party_a.compute_distances_packed: " ^ msg));
    if Array.length pp.pp_norms <> n || Array.length pp.pp_cols <> d then
      invalid_arg "Party_a.compute_distances_packed: prepared state mismatch";
    let slots = Params.slot_count params in
    let nbatches = (n + slots - 1) / slots in
    let mask =
      Obs.with_span obs "draw-mask" (fun () ->
          Masking.draw rng ~t_plain:params.Params.t_plain
            ~input_bits:(Config.max_distance_bits config ~d)
            ~degree:config.Config.mask_degree
            ~coeff_bits:config.Config.mask_coeff_bits ())
    in
    let coeffs = Masking.coeffs mask in
    let rngs = split_streams rng nbatches in
    (* The permutation is drawn before the homomorphic loop: the slot
       layout must already be in permuted order when the batches are
       packed.  Party A repacks its plaintext columns per query — d+1
       cheap slot NTTs per batch — so Π needs no Galois machinery and
       stays uniform over all n! choices exactly as in Algorithm 1. *)
    let perm = Obs.with_span obs "permute" (fun () -> Perm.random rng n) in
    let q_noise =
      Array.fold_left
        (fun m c -> Float.max m (Bgv.noise_bits c))
        (Bgv.noise_bits q_norm) q_coords
    in
    let drop = packed_query_level t ~q_noise_bits:q_noise ~d in
    let q_coords, q_norm =
      match drop with
      | Some lvl when lvl < Bgv.level q_norm ->
        ( Array.map (fun c -> Bgv.truncate_to_level ~counters:t.counters c lvl) q_coords,
          Bgv.truncate_to_level ~counters:t.counters q_norm lvl )
      | _ -> (q_coords, q_norm)
    in
    let cols_p = Array.map (Perm.apply perm) pp.pp_cols in
    let norms_p = Perm.apply perm pp.pp_norms in
    let slice src base len =
      let a = Array.make slots 0L in
      Array.blit src base a 0 len;
      a
    in
    let masked =
      Obs.with_span obs
        ~counters:[ ("party-a", t.counters) ]
        ~args:[ ("points", string_of_int n); ("batches", string_of_int nbatches) ]
        "distance-batches"
        (fun () ->
          Obs.with_pool_chunks obs ~label:"packed-distances" (fun () ->
              Pool.map_local ~jobs:t.jobs ~make:Counters.create
                ~merge:(merge_into t.counters)
                ~f:(fun counters b rng_b ->
                  let base = b * slots in
                  let len = Stdlib.min slots (n - base) in
                  (* Slot s of batch b holds point Π⁻¹(b·N + s); ED and
                     the affine mask act slot-wise, so one ciphertext
                     carries N masked distances. *)
                  let ip = ref None in
                  for j = 0 to d - 1 do
                    let col =
                      Plaintext.of_slots ~counters params (slice cols_p.(j) base len)
                    in
                    let p = Bgv.mul_plain ~counters q_coords.(j) col in
                    ip :=
                      Some (match !ip with None -> p | Some s -> Bgv.add ~counters s p)
                  done;
                  let ip = Option.get !ip in
                  let norms = Plaintext.of_slots ~counters params (slice norms_p base len) in
                  let ed =
                    Bgv.sub ~counters
                      (Bgv.add_plain ~counters q_norm norms)
                      (Bgv.mul_scalar ~counters ip 2L)
                  in
                  let ed =
                    if drop = None && config.Config.rescale_distances then
                      Bgv.rescale_to_floor ~counters ed
                    else ed
                  in
                  let m = Bgv.eval_poly ~counters ?rlk:(rlk_opt t) ~coeffs ed in
                  if len < slots then
                    (* Ragged tail: slots past the database carry phantom
                       points whose masked values would order against the
                       real ones; one uniform value per dead slot makes
                       them carry no information before B discards them. *)
                    let tail =
                      Array.init slots (fun s ->
                          if s < len then 0L
                          else Rng.int64_below rng_b params.Params.t_plain)
                    in
                    Bgv.add_plain ~counters m (Plaintext.of_slots ~counters params tail)
                  else m)
                rngs))
    in
    ({ mask; perm }, masked)

  let permuted_return_packed pp state = Perm.apply state.perm pp.pp_return_packed

  (* ---- Slot-batched multi-query evaluation ------------------------ *)

  type batch_state = { b_masks : Masking.t array; b_perm : Perm.t }

  let batch_state_masks s = s.b_masks
  let batch_state_perm s = s.b_perm

  let batch_query_level t ~q_noise_bits ~d =
    let params = t.config.Config.bgv in
    let t_bits = lg2 (Int64.to_float params.Params.t_plain) in
    let ip =
      q_noise_bits
      +. float_of_int t.config.Config.max_coord_bits
      +. lg2 (float_of_int (Stdlib.max 1 d))
      +. 1.0
    in
    let ed = log2_add (log2_add q_noise_bits (t_bits -. 1.0)) ip in
    let masked = ed +. lg2 (float_of_int params.Params.n) +. t_bits -. 1.0 in
    let masked = log2_add masked (t_bits -. 1.0) in
    level_for_need t ~need:(masked +. 17.0)

  (* M queries in the slot dimension: per point the inner products of
     all M queries cost d scalar products on the slot-packed query
     ciphertexts, and one plain product + plain add applies every
     query's own affine mask (slot q carries query q's coefficients).
     The n output ciphertexts share one permutation, which is the extra
     declared leakage of the batch mode: Party B can align positions
     across the M views of a batch (audited as "batch-query-count"). *)
  let compute_distances_batch ?(obs = Obs.disabled) t pp rng bq =
    let config = t.config in
    let params = config.Config.bgv in
    let d = t.db.db_d and n = t.db.db_n in
    if bq.bq_dim <> d then
      invalid_arg "Party_a.compute_distances_batch: dimension mismatch";
    (match packed_supported config ~d with
     | Ok () -> ()
     | Error msg -> invalid_arg ("Party_a.compute_distances_batch: " ^ msg));
    if Array.length pp.pp_norms <> n || Array.length pp.pp_cols <> d then
      invalid_arg "Party_a.compute_distances_batch: prepared state mismatch";
    let slots = Params.slot_count params in
    let nqueries = bq.bq_count in
    if nqueries < 1 || nqueries > slots then
      invalid_arg "Party_a.compute_distances_batch: batch size out of range";
    let masks =
      Obs.with_span obs "draw-mask" (fun () ->
          Array.init nqueries (fun _ ->
              Masking.draw rng ~t_plain:params.Params.t_plain
                ~input_bits:(Config.max_distance_bits config ~d)
                ~degree:config.Config.mask_degree
                ~coeff_bits:config.Config.mask_coeff_bits ()))
    in
    let a1 = Array.make slots 1L and a0 = Array.make slots 0L in
    Array.iteri
      (fun q mq ->
        let c = Masking.coeffs mq in
        a0.(q) <- c.(0);
        a1.(q) <- c.(1))
      masks;
    let a1_pt = Plaintext.of_slots ~counters:t.counters params a1 in
    let a0_shared =
      if nqueries = slots then Some (Plaintext.of_slots ~counters:t.counters params a0)
      else None
    in
    let rngs = split_streams rng n in
    let perm = Obs.with_span obs "permute" (fun () -> Perm.random rng n) in
    let q_noise =
      Array.fold_left
        (fun x c -> Float.max x (Bgv.noise_bits c))
        (Bgv.noise_bits bq.bq_norm) bq.bq_coords
    in
    let drop = batch_query_level t ~q_noise_bits:q_noise ~d in
    let bq_coords, bq_norm =
      match drop with
      | Some lvl when lvl < Bgv.level bq.bq_norm ->
        ( Array.map
            (fun c -> Bgv.truncate_to_level ~counters:t.counters c lvl)
            bq.bq_coords,
          Bgv.truncate_to_level ~counters:t.counters bq.bq_norm lvl )
      | _ -> (bq.bq_coords, bq.bq_norm)
    in
    let masked =
      Obs.with_span obs
        ~counters:[ ("party-a", t.counters) ]
        ~args:[ ("points", string_of_int n); ("queries", string_of_int nqueries) ]
        "distance-batches"
        (fun () ->
          Obs.with_pool_chunks obs ~label:"batched-distances" (fun () ->
              Pool.map_local ~jobs:t.jobs ~make:Counters.create
                ~merge:(merge_into t.counters)
                ~f:(fun counters i rng_i ->
                  let ip = ref None in
                  for j = 0 to d - 1 do
                    let p = Bgv.mul_scalar ~counters bq_coords.(j) pp.pp_cols.(j).(i) in
                    ip :=
                      Some (match !ip with None -> p | Some s -> Bgv.add ~counters s p)
                  done;
                  let ip = Option.get !ip in
                  let ed =
                    Bgv.add_const ~counters
                      (Bgv.sub ~counters bq_norm (Bgv.mul_scalar ~counters ip 2L))
                      pp.pp_norms.(i)
                  in
                  let ed =
                    if drop = None && config.Config.rescale_distances then
                      Bgv.rescale_to_floor ~counters ed
                    else ed
                  in
                  let md = Bgv.mul_plain ~counters ed a1_pt in
                  let a0_pt =
                    match a0_shared with
                    | Some pt -> pt
                    | None ->
                      (* Dead slots (no query) get a fresh uniform value
                         per point, killing the cross-point order their
                         unit-slope masking would otherwise expose. *)
                      Plaintext.of_slots ~counters params
                        (Array.init slots (fun q ->
                             if q < nqueries then a0.(q)
                             else Rng.int64_below rng_i params.Params.t_plain))
                  in
                  Bgv.add_plain ~counters md a0_pt)
                rngs))
    in
    ({ b_masks = masks; b_perm = perm }, Perm.apply perm masked)

  let permuted_return_packed_batch pp bstate = Perm.apply bstate.b_perm pp.pp_return_packed

  let return_knn ?obs t state rows =
    let packed = permuted_packed t state in
    Array.map (fun row -> select_row ?obs t packed row) rows
end

(* ------------------------------------------------------------------ *)

module Party_b = struct
  type t = {
    config : Config.t;
    sk : Bgv.secret_key;
    pk : Bgv.public_key;
    counters : Counters.t;
    jobs : int;
  }

  let create ?jobs config sk pk =
    let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
    { config; sk; pk; counters = Counters.create (); jobs }

  let counters t = t.counters

  type view = { masked_distances : int64 array; selected : int array }

  let select_neighbours ?(obs = Obs.disabled) t cts ~k =
    let n = Array.length cts in
    if k < 1 || k > n then invalid_arg "Party_b: k out of range";
    (* The decrypt-and-select half runs sequentially on purpose: it
       handles secret-key material and masked plaintexts, and keeping it
       single-domain keeps B's trusted computing base minimal.  The scan
       itself is the O(n log k) heap replication of Algorithm 2's
       streaming max-replacement (Util.Topk). *)
    let masked =
      Obs.with_span obs
        ~counters:[ ("party-b", t.counters) ]
        ~args:[ ("points", string_of_int n) ]
        "decrypt-distances"
        (fun () ->
          Array.map (fun ct -> Bgv.decrypt_coeff0 ~counters:t.counters t.sk ct) cts)
    in
    Obs.with_span obs ~args:[ ("k", string_of_int k) ] "select-top-k" (fun () ->
        { masked_distances = masked; selected = Util.Topk.smallest ~k masked })

  let select_neighbours_packed ?(obs = Obs.disabled) t cts ~n ~k =
    let params = t.config.Config.bgv in
    let slots = Params.slot_count params in
    if n < 1 then invalid_arg "Party_b.select_neighbours_packed: empty database";
    if Array.length cts <> (n + slots - 1) / slots then
      invalid_arg "Party_b.select_neighbours_packed: ciphertext count mismatch";
    if k < 1 || k > n then invalid_arg "Party_b: k out of range";
    let masked =
      Obs.with_span obs
        ~counters:[ ("party-b", t.counters) ]
        ~args:
          [ ("points", string_of_int n); ("ciphertexts", string_of_int (Array.length cts)) ]
        "decrypt-distances"
        (fun () ->
          (* Slot-unpack before any accounting: every downstream consumer
             (Topk, Leakage, the audit channel) must see the n per-point
             masked distances, never per-ciphertext aggregates. *)
          let out = Array.make n 0L in
          Array.iteri
            (fun b ct ->
              let s =
                Plaintext.to_slots ~counters:t.counters
                  (Bgv.decrypt ~counters:t.counters t.sk ct)
              in
              let base = b * slots in
              Array.blit s 0 out base (Stdlib.min slots (n - base)))
            cts;
          out)
    in
    Obs.with_span obs ~args:[ ("k", string_of_int k) ] "select-top-k" (fun () ->
        { masked_distances = masked; selected = Util.Topk.smallest ~k masked })

  let select_views_batch ?(obs = Obs.disabled) t cts ~m:nqueries ~k =
    let params = t.config.Config.bgv in
    let slots = Params.slot_count params in
    let n = Array.length cts in
    if n < 1 then invalid_arg "Party_b.select_views_batch: empty database";
    if nqueries < 1 || nqueries > slots then
      invalid_arg "Party_b.select_views_batch: batch size out of range";
    if k < 1 || k > n then invalid_arg "Party_b: k out of range";
    let slot_rows =
      Obs.with_span obs
        ~counters:[ ("party-b", t.counters) ]
        ~args:[ ("points", string_of_int n); ("queries", string_of_int nqueries) ]
        "decrypt-distances"
        (fun () ->
          Array.map
            (fun ct ->
              Plaintext.to_slots ~counters:t.counters
                (Bgv.decrypt ~counters:t.counters t.sk ct))
            cts)
    in
    Obs.with_span obs ~args:[ ("k", string_of_int k) ] "select-top-k" (fun () ->
        Array.init nqueries (fun q ->
            let masked = Array.init n (fun i -> slot_rows.(i).(q)) in
            { masked_distances = masked; selected = Util.Topk.smallest ~k masked }))

  let return_level t =
    Stdlib.min t.config.Config.return_level (Params.chain_length t.config.Config.bgv)

  let indicator_row ?(obs = Obs.disabled) t rng view ~n ~j =
    let params = t.config.Config.bgv in
    let level = return_level t in
    let sel = view.selected.(j) in
    let rngs = split_streams rng n in
    Obs.with_pool_chunks obs ~label:"indicator-row" (fun () ->
        Pool.map_local ~jobs:t.jobs ~make:Counters.create ~merge:(merge_into t.counters)
          ~f:(fun counters i rng ->
            let bit = if i = sel then 1L else 0L in
            Bgv.encrypt ~counters ~level rng t.pk (Plaintext.constant params bit))
          rngs)

  let find_neighbours ?obs t rng cts ~k =
    let n = Array.length cts in
    let view = select_neighbours ?obs t cts ~k in
    let rows = Array.init k (fun j -> indicator_row ?obs t rng view ~n ~j) in
    (rows, view)
end

(* ------------------------------------------------------------------ *)

module Client = struct
  type t = {
    config : Config.t;
    sk : Bgv.secret_key;
    pk : Bgv.public_key;
    counters : Counters.t;
    jobs : int;
  }

  let create ?jobs config sk pk =
    let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
    { config; sk; pk; counters = Counters.create (); jobs }

  let counters t = t.counters

  (* Inner-product query form (reversed-packed query + encrypted norm):
     what the Dot_product layout sends, and what the prepared multi-query
     path consumes regardless of layout. *)
  let encrypt_query_ip t rng query =
    let config = t.config in
    let params = config.Config.bgv in
    let counters = t.counters in
    let d = Array.length query in
    Data_owner.validate_point config ~d query;
    if d > params.Params.n then
      invalid_arg "Client.encrypt_query_ip: dimension exceeds ring degree";
    let q_rev = Bgv.encrypt ~counters rng t.pk (reversed_query_plaintext params query) in
    let q_norm =
      Bgv.encrypt ~counters rng t.pk
        (Plaintext.constant params (Int64.of_int (squared_norm query)))
    in
    { q_coords = None; q_rev = Some q_rev; q_norm = Some q_norm; q_dim = d }

  let encrypt_query t rng query =
    let config = t.config in
    let params = config.Config.bgv in
    let counters = t.counters in
    let d = Array.length query in
    Data_owner.validate_point config ~d query;
    match config.Config.layout with
    | Config.Per_coordinate ->
      let q_coords =
        Array.map
          (fun v -> Bgv.encrypt ~counters rng t.pk (Plaintext.constant params (Int64.of_int v)))
          query
      in
      { q_coords = Some q_coords; q_rev = None; q_norm = None; q_dim = d }
    | Config.Dot_product -> encrypt_query_ip t rng query

  (* Broadcast-slot query form for the packed path: d coordinate
     ciphertexts with the same value in every slot, plus ‖q‖²
     broadcast — still O(d) ciphertexts whatever the batch count. *)
  let encrypt_query_packed t rng query =
    let config = t.config in
    let params = config.Config.bgv in
    let counters = t.counters in
    let d = Array.length query in
    Data_owner.validate_point config ~d query;
    if d > params.Params.n then
      invalid_arg "Client.encrypt_query_packed: dimension exceeds ring degree";
    let q_coords =
      Array.map
        (fun v -> Bgv.encrypt ~counters rng t.pk (Plaintext.constant params (Int64.of_int v)))
        query
    in
    let q_norm =
      Bgv.encrypt ~counters rng t.pk
        (Plaintext.constant params (Int64.of_int (squared_norm query)))
    in
    { q_coords = Some q_coords; q_rev = None; q_norm = Some q_norm; q_dim = d }

  let encrypt_query_batch t rng queries =
    let config = t.config in
    let params = config.Config.bgv in
    let counters = t.counters in
    let m = Array.length queries in
    let slots = Params.slot_count params in
    if m = 0 then invalid_arg "Client.encrypt_query_batch: empty batch";
    if m > slots then
      invalid_arg "Client.encrypt_query_batch: batch exceeds the slot count";
    let d = Array.length queries.(0) in
    Array.iter
      (fun q ->
        if Array.length q <> d then invalid_arg "Client.encrypt_query_batch: ragged batch";
        Data_owner.validate_point config ~d q)
      queries;
    let enc slot_of =
      let s = Array.make slots 0L in
      Array.iteri (fun q query -> s.(q) <- Int64.of_int (slot_of query)) queries;
      Bgv.encrypt ~counters rng t.pk (Plaintext.of_slots ~counters params s)
    in
    { bq_coords = Array.init d (fun j -> enc (fun query -> query.(j)));
      bq_norm = enc squared_norm;
      bq_count = m;
      bq_dim = d }

  let decrypt_points ?(obs = Obs.disabled) t ~d cts =
    Obs.with_pool_chunks obs ~label:"decrypt-result" (fun () ->
        Pool.map_local ~jobs:t.jobs ~make:Counters.create ~merge:(merge_into t.counters)
          ~f:(fun counters _ ct ->
            let pt = Bgv.decrypt ~counters t.sk ct in
            let coeffs = Plaintext.to_coeffs pt in
            Array.init d (fun j -> Int64.to_int coeffs.(j)))
          cts)
end
