(** The four protocol entities of Figure 1 and their local computations.

    Each party owns exactly the key material the paper gives it: Party A
    the public key and the encrypted database, Party B the secret and
    public keys, the client both keys, the data owner everything.  All
    cryptographic work a party performs is recorded in its own
    {!Util.Counters.t}, which is how Table 1 is measured rather than
    quoted. *)

type encrypted_point = {
  coords : Bgv.ct array option;
      (** [Per_coordinate] layout: one constant-polynomial ciphertext per
          coordinate. *)
  packed : Bgv.ct;
      (** Coordinates as polynomial coefficients — used by the
          Return-kNN phase in both layouts, and by the [Dot_product]
          distance computation. *)
  norm : Bgv.ct option;
      (** [Dot_product] layout: encryption of [‖p‖²] (constant). *)
}

type encrypted_db = { db_n : int; db_d : int; points : encrypted_point array }

type encrypted_query = {
  q_coords : Bgv.ct array option;
      (** [Per_coordinate]: d constants; packed form: d broadcast-slot
          coordinates *)
  q_rev : Bgv.ct option;           (** [Dot_product]: reversed query *)
  q_norm : Bgv.ct option;          (** [Dot_product] and packed: [‖q‖²] *)
  q_dim : int;
}

type batched_query = {
  bq_coords : Bgv.ct array;
      (** ciphertext [j] carries query [m]'s coordinate [j] in slot [m] *)
  bq_norm : Bgv.ct;  (** slot [m] = [‖q_m‖²] *)
  bq_count : int;  (** M, the number of queries packed in the slots *)
  bq_dim : int;
}
(** Slot-batched multi-query form: M queries ride one set of [d + 1]
    ciphertexts through the packed pipeline. *)

(** {1 Data owner} *)

module Data_owner : sig
  type t

  val create : Util.Rng.t -> Config.t -> t
  val keys : t -> Bgv.keys
  val config : t -> Config.t

  val encrypt_db :
    ?obs:Sknn_obs.Ctx.t -> ?counters:Util.Counters.t -> ?jobs:int -> Util.Rng.t -> t ->
    int array array -> encrypted_db
  (** Validates every coordinate against [max_coord_bits] and the layout
      constraints before encrypting.  Points are encrypted in parallel
      over [jobs] domains (default {!Util.Pool.default_jobs}); each
      point's randomness comes from its own stream split off [rng]
      sequentially, so the result is bit-identical for every job count.
      [obs] wraps the loop in an ["encrypt-db"] span with pool chunks.
      @raise Invalid_argument on bad data. *)
end

(** {1 Party A — encrypted storage and blind computation} *)

module Party_a : sig
  type t

  val create :
    ?jobs:int -> Config.t -> Bgv.public_key -> Bgv.relin_key -> encrypted_db -> t
  (** [jobs] is the domain count used by {!compute_distances} and
      {!select_row} (default {!Util.Pool.default_jobs}).  Results and
      counter totals are identical for every value. *)

  val counters : t -> Util.Counters.t
  val db_size : t -> int
  val jobs : t -> int

  type query_state
  (** Party A's per-query secrets: the fresh masking polynomial and the
      fresh permutation Π. *)

  val compute_distances :
    ?obs:Sknn_obs.Ctx.t -> t -> Util.Rng.t -> encrypted_query ->
    query_state * Bgv.ct array
  (** Algorithm 1: returns the masked encrypted distances in permuted
      order, [D'_i = Π(m(ED_i))].  [obs] records the ["draw-mask"],
      ["distance-batches"] (with per-point pool chunks) and ["permute"]
      sub-stages. *)

  val return_knn :
    ?obs:Sknn_obs.Ctx.t -> t -> query_state -> Bgv.ct array array -> Bgv.ct array
  (** Algorithm 3: given the k indicator vectors [B^j] (in permuted index
      space), returns k re-randomised encryptions of the neighbour
      points (coefficient-packed). *)

  val permuted_packed : t -> query_state -> Bgv.ct array
  (** [Π(P')] at the return level — the first step of Algorithm 3,
      exposed so the protocol driver can stream indicator rows. *)

  val select_row : ?obs:Sknn_obs.Ctx.t -> t -> Bgv.ct array -> Bgv.ct array -> Bgv.ct
  (** [select_row t Π(P') B^j] computes the inner product and sum of one
      indicator row: one encrypted neighbour point. *)

  val state_mask : query_state -> Masking.t
  val state_perm : query_state -> Util.Perm.t
  (** Exposed for the leakage-audit tests only — a deployed Party A
      would keep both secret and drop them after the query. *)

  (** {2 Prepared multi-query state}

      Query-independent work hoisted out of the per-query loop: the
      packed (NTT-domain) database ciphertexts plus an encrypted
      [‖p_i‖²] per point, computed homomorphically once when the layout
      does not already ship norms.  With
      [ED = ‖p‖² − 2⟨p,q⟩ + ‖q‖²] each subsequent query costs one
      ciphertext product per point instead of [d]. *)

  type prepared

  val forecast_noise : ?margin_bits:float -> t -> Sknn_obs.Noise_model.report
  (** Worst-case end-of-circuit noise headroom predicted from the
      parameter chain alone (no ciphertexts touched): fresh encryptions
      through the ED combine, the prepared path's level-drop rule, the
      affine mask and the Return-kNN row selection.  A negative
      [min_headroom_bits] means a live query would raise
      {!Bgv.Decryption_failure}.  [margin_bits] defaults to 4. *)

  val prepare : ?obs:Sknn_obs.Ctx.t -> ?noise_margin_bits:float -> t -> prepared
  (** Computes the prepared state (norms in parallel over [jobs]
      domains, counted against Party A).  Requires affine (degree-1)
      masking and [d <= n] — the inner-product trick leaves cross terms
      in the non-constant coefficients, so higher-degree masks would
      corrupt the constant coefficient.

      Also runs {!forecast_noise} and, when the predicted minimum
      headroom drops below [noise_margin_bits] (default 4), emits a
      structured warning: an audit entry
      [party-a/prepare-db/noise-low-headroom-warning], a [Warning]
      flight event and a stderr line.  The forecast minimum is always
      recorded as the audit entry
      [party-a/prepare-db/noise-min-headroom-bits].
      @raise Invalid_argument when the config is unsupported. *)

  val compute_distances_prepared :
    ?obs:Sknn_obs.Ctx.t -> t -> prepared -> Util.Rng.t -> encrypted_query ->
    query_state * Bgv.ct array
  (** Algorithm 1 against prepared state.  The query must be in
      inner-product form ({!Client.encrypt_query_ip}).  Output
      distribution, determinism and observability mirror
      {!compute_distances}: results are bit-identical for every job
      count. *)

  val permuted_packed_prepared : prepared -> query_state -> Bgv.ct array
  (** {!permuted_packed} from the prepared cache: the return-level
      truncation was done once in {!prepare}, so this is just the
      permutation. *)

  (** {2 Slot-packed (SIMD) prepared state}

      The packed path models the outsourced-query setting (SANNS-style):
      Party A acts for the data owner and holds the database in the
      clear, laid out dimension-major — for coordinate [j] one
      [n]-vector whose entry [i] is [p_i(j)], packed into plaintext
      slots per batch — while the client's query stays encrypted.  A
      batch of [N = slot_count] points then costs [d] plain products
      plus adds instead of [N] ciphertext products, and Party B decrypts
      [⌈n/N⌉] ciphertexts instead of [n].  Party B's §5 view (the masked
      permuted distance multiset, [n] and [k]) is unchanged. *)

  type prepared_packed

  val forecast_noise_packed : ?margin_bits:float -> t -> Sknn_obs.Noise_model.report
  (** {!forecast_noise} for the packed circuit, which is strictly
      shallower (plain products only, no tensor term); the prepared
      level-drop rule is replayed verbatim on the smaller bound. *)

  val prepare_packed :
    ?obs:Sknn_obs.Ctx.t -> ?noise_margin_bits:float -> t -> db:int array array ->
    prepared_packed
  (** Lays [db] (the plaintext database, dimension-major) out for the
      packed path and caches the return-level packed ciphertexts.  Emits
      the same [prepare-db] audit entries and low-headroom warning as
      {!prepare}, driven by {!forecast_noise_packed}.  Requires affine
      masking and [d <= n].
      @raise Invalid_argument when the config is unsupported or [db]
      does not match the encrypted database's dimensions. *)

  val compute_distances_packed :
    ?obs:Sknn_obs.Ctx.t -> t -> prepared_packed -> Util.Rng.t -> encrypted_query ->
    query_state * Bgv.ct array
  (** Algorithm 1 on the packed layout: returns [⌈n/N⌉] ciphertexts
      whose slot [s] of batch [b] holds the masked distance of point
      [Π⁻¹(b·N + s)] — the permutation is applied when the plaintext
      columns are repacked, so it stays uniform and per-query.  The
      query must be in broadcast-slot form
      ({!Client.encrypt_query_packed}).  Dead slots of the ragged tail
      batch are overwritten with uniform randomness.  The query
      ciphertexts are truncated up front by the prepared level-drop
      rule, applied predictively (every later op's noise increment is
      level-independent).  Batches run pool-parallel with per-batch RNG
      streams: results, counters and transcripts are bit-identical for
      every job count. *)

  val permuted_return_packed : prepared_packed -> query_state -> Bgv.ct array
  (** {!permuted_packed_prepared} for the packed state. *)

  (** {2 Slot-batched multi-query evaluation} *)

  type batch_state
  (** Per-batch secrets: one fresh affine mask per query and the shared
      permutation Π. *)

  val compute_distances_batch :
    ?obs:Sknn_obs.Ctx.t -> t -> prepared_packed -> Util.Rng.t -> batched_query ->
    batch_state * Bgv.ct array
  (** M queries at once: returns [n] ciphertexts (in permuted point
      order) whose slot [m] holds query [m]'s masked distance to the
      point.  Each query gets its own fresh affine mask (slot-wise
      coefficients); dead slots are overwritten with per-point uniform
      randomness.  The M views share one permutation — the batch mode's
      extra declared leakage (audited as ["batch-query-count"]). *)

  val permuted_return_packed_batch : prepared_packed -> batch_state -> Bgv.ct array

  val batch_state_masks : batch_state -> Masking.t array
  val batch_state_perm : batch_state -> Util.Perm.t
  (** Exposed for the leakage-audit tests only, like {!state_mask}. *)
end

(** {1 Party B — key holder, never sees the database} *)

module Party_b : sig
  type t

  val create : ?jobs:int -> Config.t -> Bgv.secret_key -> Bgv.public_key -> t
  (** [jobs] parallelises {!indicator_row}'s batch encryption only; the
      decrypt-and-select half of Algorithm 2 always runs in B's own
      domain (it touches secret-key material). *)

  val counters : t -> Util.Counters.t

  type view = {
    masked_distances : int64 array;
        (** What B actually decrypts, in A's permuted order. *)
    selected : int array;
        (** Permuted indices of the k chosen minima. *)
  }

  val find_neighbours :
    ?obs:Sknn_obs.Ctx.t -> t -> Util.Rng.t -> Bgv.ct array -> k:int ->
    Bgv.ct array array * view
  (** Algorithm 2: decrypts the masked distances, selects the k smallest
      with an O(n log k) heap that replicates the paper's streaming
      max-replacement scan exactly (ties included; see {!Util.Topk}),
      and returns the k encrypted indicator vectors.  The [view] is
      returned for leakage auditing. *)

  val select_neighbours : ?obs:Sknn_obs.Ctx.t -> t -> Bgv.ct array -> k:int -> view
  (** The decrypt-and-select half of Algorithm 2 without materialising
      the indicator vectors. *)

  val select_neighbours_packed :
    ?obs:Sknn_obs.Ctx.t -> t -> Bgv.ct array -> n:int -> k:int -> view
  (** {!select_neighbours} over slot-packed distances: decrypts the
      [⌈n/N⌉] ciphertexts, unpacks the slots ({!Plaintext.to_slots}) and
      discards the dead tail slots, so the view carries exactly the [n]
      per-point masked distances — Leakage accounting (equidistant
      groups, multiset) is computed on the same surface as the unpacked
      path, never on per-ciphertext aggregates. *)

  val select_views_batch :
    ?obs:Sknn_obs.Ctx.t -> t -> Bgv.ct array -> m:int -> k:int -> view array
  (** Batched-query selection: one {!view} per packed query, unpacked
      from slot [m] of each of the [n] ciphertexts. *)

  val indicator_row :
    ?obs:Sknn_obs.Ctx.t -> t -> Util.Rng.t -> view -> n:int -> j:int -> Bgv.ct array
  (** The j-th indicator vector [B^j] (n encryptions of 0 with a single
      1).  Used by the protocol driver to stream row-by-row so that the
      O(nk) ciphertexts never live in memory at once. *)
end

(** {1 Client} *)

module Client : sig
  type t

  val create : ?jobs:int -> Config.t -> Bgv.secret_key -> Bgv.public_key -> t
  (** [jobs] parallelises {!decrypt_points}. *)

  val counters : t -> Util.Counters.t

  val encrypt_query : t -> Util.Rng.t -> int array -> encrypted_query
  (** Layout-matched query form: [d] constants ([Per_coordinate]) or the
      reversed-packed polynomial plus norm ([Dot_product]). *)

  val encrypt_query_ip : t -> Util.Rng.t -> int array -> encrypted_query
  (** Inner-product query form (reversed-packed query + encrypted
      [‖q‖²]) regardless of layout — two ciphertexts instead of [d];
      what {!Party_a.compute_distances_prepared} consumes.
      @raise Invalid_argument when [d] exceeds the ring degree. *)

  val encrypt_query_packed : t -> Util.Rng.t -> int array -> encrypted_query
  (** Broadcast-slot query form for the packed path: [d] coordinate
      ciphertexts with the same value in every slot plus [‖q‖²]
      broadcast; what {!Party_a.compute_distances_packed} consumes.
      @raise Invalid_argument when [d] exceeds the ring degree. *)

  val encrypt_query_batch : t -> Util.Rng.t -> int array array -> batched_query
  (** M queries packed in the slot dimension, M ≤ {!Params.slot_count};
      what {!Party_a.compute_distances_batch} consumes.
      @raise Invalid_argument on an empty, ragged or oversized batch. *)

  val decrypt_points : ?obs:Sknn_obs.Ctx.t -> t -> d:int -> Bgv.ct array -> int array array
end

(** {1 Serialised sizes} *)

val query_bytes : encrypted_query -> int
val batched_query_bytes : batched_query -> int
val db_bytes : encrypted_db -> int
