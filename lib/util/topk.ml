(* Max-heap of slot numbers, ordered by (value desc, slot asc), so the
   root is always the slot the naive scan would displace: the maximum
   value, lowest slot among equals. *)

let smallest ~k xs =
  let n = Array.length xs in
  if k < 1 || k > n then invalid_arg "Topk.smallest: k out of range";
  let nn = Array.sub xs 0 k in
  let sel = Array.init k (fun s -> s) in
  let heap = Array.init k (fun s -> s) in
  (* [precedes a b]: slot a sits above slot b in the heap. *)
  let precedes a b =
    let c = Int64.compare nn.(a) nn.(b) in
    c > 0 || (c = 0 && a < b)
  in
  let swap i j =
    let t = heap.(i) in
    heap.(i) <- heap.(j);
    heap.(j) <- t
  in
  let rec sift_down i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = if l < k && precedes heap.(l) heap.(i) then l else i in
    let m = if r < k && precedes heap.(r) heap.(m) then r else m in
    if m <> i then begin
      swap i m;
      sift_down m
    end
  in
  for i = (k / 2) - 1 downto 0 do
    sift_down i
  done;
  for i = k to n - 1 do
    let top = heap.(0) in
    if Int64.compare xs.(i) nn.(top) < 0 then begin
      nn.(top) <- xs.(i);
      sel.(top) <- i;
      sift_down 0
    end
  done;
  sel
