(** Per-domain scratch arena: recycled [int array]s for the ring-kernel
    hot path, so steady-state NTT conversions and modulus switching
    allocate no intermediate arrays.

    The arena is domain-local ({!Domain.DLS}), hence per-worker and
    never shared: {!Util.Pool} spawns fresh domains per call, so each
    worker's arena is created with its chunk and dies with it, while the
    orchestrating domain's arena persists and reaches a steady state
    after the first query.  See ROADMAP "Kernel invariants (PR 3)".

    Borrowed arrays contain stale contents — overwrite before reading.
    Never {!release} an array that escaped into a long-lived value. *)

val acquire : int -> int array
(** [acquire n] returns an array of length [n], recycled if one is
    available, freshly allocated otherwise.  Contents are arbitrary. *)

val release : int array -> unit
(** Returns an array to the current domain's arena for reuse.  The
    caller must not touch it afterwards. *)

val with_array : int -> (int array -> 'a) -> 'a
(** [with_array n f] borrows an array for the duration of [f],
    releasing it even on exception. *)
