(* Static contiguous chunking over OCaml 5 domains.  Workers return
   their chunk as a fresh array; the caller concatenates in worker
   order, so results are position-identical to the sequential map. *)

let max_domains = 64 (* well under the runtime's domain limit *)

let env_jobs () =
  match Sys.getenv_opt "SKNN_DOMAINS" with
  | None -> None
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some j when j >= 1 -> Some j
     | Some _ | None -> None)

let default_jobs () =
  match env_jobs () with
  | Some j -> Stdlib.min j max_domains
  | None -> Stdlib.min (Domain.recommended_domain_count ()) max_domains

let resolve jobs n =
  let j = match jobs with Some j -> j | None -> default_jobs () in
  if j < 1 then invalid_arg "Pool: jobs < 1";
  Stdlib.min (Stdlib.min j max_domains) (Stdlib.max 1 n)

type ('b, 'w) outcome =
  | Done of 'b array * 'w
  | Raised of exn * Printexc.raw_backtrace

let map_local ?jobs ~make ~merge ~f a =
  let n = Array.length a in
  let j = resolve jobs n in
  if j = 1 then begin
    let w = make () in
    let out = Array.mapi (fun i x -> f w i x) a in
    merge w;
    out
  end
  else begin
    (* Chunk w covers [start w, start (w+1)); sizes differ by <= 1. *)
    let base = n / j and extra = n mod j in
    let start w = (w * base) + Stdlib.min w extra in
    let run w =
      match
        let st = make () in
        let lo = start w and hi = start (w + 1) in
        let res = Array.init (hi - lo) (fun i -> f st (lo + i) a.(lo + i)) in
        (res, st)
      with
      | res, st -> Done (res, st)
      | exception e -> Raised (e, Printexc.get_raw_backtrace ())
    in
    let spawned = Array.init (j - 1) (fun w -> Domain.spawn (fun () -> run (w + 1))) in
    let first = run 0 in
    let outcomes = Array.append [| first |] (Array.map Domain.join spawned) in
    (* Re-raise the lowest-indexed failure only after every domain joined. *)
    Array.iter
      (function Raised (e, bt) -> Printexc.raise_with_backtrace e bt | Done _ -> ())
      outcomes;
    let chunks =
      Array.map (function Done (res, st) -> (res, st) | Raised _ -> assert false) outcomes
    in
    Array.iter (fun (_, st) -> merge st) chunks;
    Array.concat (Array.to_list (Array.map fst chunks))
  end

let map ?jobs f a = map_local ?jobs ~make:(fun () -> ()) ~merge:ignore ~f:(fun () _ x -> f x) a

let mapi ?jobs f a =
  map_local ?jobs ~make:(fun () -> ()) ~merge:ignore ~f:(fun () i x -> f i x) a

let init ?jobs n f =
  if n < 0 then invalid_arg "Pool.init: negative length";
  mapi ?jobs (fun i () -> f i) (Array.make n ())
