(* Static contiguous chunking over OCaml 5 domains.  Workers return
   their chunk as a fresh array; the caller concatenates in worker
   order, so results are position-identical to the sequential map. *)

let max_domains = 64 (* well under the runtime's domain limit *)

let env_jobs () =
  match Sys.getenv_opt "SKNN_DOMAINS" with
  | None -> None
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some j when j >= 1 -> Some j
     | Some _ | None -> None)

let default_jobs () =
  match env_jobs () with
  | Some j -> Stdlib.min j max_domains
  | None -> Stdlib.min (Domain.recommended_domain_count ()) max_domains

let resolve jobs n =
  let j = match jobs with Some j -> j | None -> default_jobs () in
  if j < 1 then invalid_arg "Pool: jobs < 1";
  Stdlib.min (Stdlib.min j max_domains) (Stdlib.max 1 n)

(* ------------------------------------------------------------------ *)
(* Chunk observation.

   The observer is *domain-local* on purpose: worker bodies themselves
   call back into the pool (e.g. Bgv.mul_sum with jobs:1 inside
   Compute-Distances), and those nested calls run in spawned domains
   where the DLS slot is fresh — so only the orchestrating domain's
   top-level pool call reports chunks, and it does so after the join,
   in worker order, keeping the trace deterministic. *)
(* ------------------------------------------------------------------ *)

type chunk_stat = {
  worker : int;
  chunk_lo : int;
  chunk_hi : int;
  chunk_start : float;
  chunk_seconds : float;
}

let observer_key : (chunk_stat -> unit) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let with_chunk_observer obs f =
  let prev = Domain.DLS.get observer_key in
  Domain.DLS.set observer_key (Some obs);
  Fun.protect ~finally:(fun () -> Domain.DLS.set observer_key prev) f

(* Chunk bodies that run in the calling domain (the jobs=1 path and
   worker 0 of the parallel path) would otherwise see the observer in
   their DLS and report their own nested pool calls; masking it during
   the body keeps reporting to the outermost call, matching what worker
   domains (fresh DLS) naturally do. *)
let unobserved f =
  let prev = Domain.DLS.get observer_key in
  match prev with
  | None -> f ()
  | Some _ ->
    Domain.DLS.set observer_key None;
    Fun.protect ~finally:(fun () -> Domain.DLS.set observer_key prev) f

type ('b, 'w) outcome =
  | Done of 'b array * 'w * (float * float)
  | Raised of exn * Printexc.raw_backtrace

let map_local ?jobs ~make ~merge ~f a =
  let n = Array.length a in
  let j = resolve jobs n in
  let observer = Domain.DLS.get observer_key in
  let instrument = Option.is_some observer in
  if j = 1 then begin
    let w = make () in
    let t0 = if instrument then Timer.counter () else 0.0 in
    let out = unobserved (fun () -> Array.mapi (fun i x -> f w i x) a) in
    let t1 = if instrument then Timer.counter () else 0.0 in
    merge w;
    (match observer with
     | Some obs when n > 0 ->
       obs { worker = 0; chunk_lo = 0; chunk_hi = n; chunk_start = t0;
             chunk_seconds = t1 -. t0 }
     | _ -> ());
    out
  end
  else begin
    (* Chunk w covers [start w, start (w+1)); sizes differ by <= 1. *)
    let base = n / j and extra = n mod j in
    let start w = (w * base) + Stdlib.min w extra in
    let run w =
      match
        let st = make () in
        let lo = start w and hi = start (w + 1) in
        let t0 = if instrument then Timer.counter () else 0.0 in
        let res = Array.init (hi - lo) (fun i -> f st (lo + i) a.(lo + i)) in
        let t1 = if instrument then Timer.counter () else 0.0 in
        (res, st, (t0, t1))
      with
      | res, st, ts -> Done (res, st, ts)
      | exception e -> Raised (e, Printexc.get_raw_backtrace ())
    in
    let spawned = Array.init (j - 1) (fun w -> Domain.spawn (fun () -> run (w + 1))) in
    let first = unobserved (fun () -> run 0) in
    let outcomes = Array.append [| first |] (Array.map Domain.join spawned) in
    (* Re-raise the lowest-indexed failure only after every domain joined. *)
    Array.iter
      (function Raised (e, bt) -> Printexc.raise_with_backtrace e bt | Done _ -> ())
      outcomes;
    let chunks =
      Array.map
        (function Done (res, st, ts) -> (res, st, ts) | Raised _ -> assert false)
        outcomes
    in
    Array.iter (fun (_, st, _) -> merge st) chunks;
    (match observer with
     | Some obs ->
       Array.iteri
         (fun w (_, _, (t0, t1)) ->
           obs { worker = w; chunk_lo = start w; chunk_hi = start (w + 1);
                 chunk_start = t0; chunk_seconds = t1 -. t0 })
         chunks
     | None -> ());
    Array.concat (Array.to_list (Array.map (fun (res, _, _) -> res) chunks))
  end

let map ?jobs f a = map_local ?jobs ~make:(fun () -> ()) ~merge:ignore ~f:(fun () _ x -> f x) a

let mapi ?jobs f a =
  map_local ?jobs ~make:(fun () -> ()) ~merge:ignore ~f:(fun () i x -> f i x) a

let init ?jobs n f =
  if n < 0 then invalid_arg "Pool.init: negative length";
  mapi ?jobs (fun i () -> f i) (Array.make n ())
