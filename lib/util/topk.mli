(** Streaming top-k selection (k smallest) in O(n log k).

    Replaces the O(n·k) max-replacement scan of the paper's Algorithm 2
    with a binary max-heap while reproducing the scan's semantics {e
    bit-for-bit}, ties included: the first [k] values seat slots
    [0..k-1]; a later value displaces the current maximum only on strict
    improvement; and when several slots hold the maximum, the
    lowest-numbered slot is the one displaced (which is what the naive
    scan's first-maximum search does).  The displacing value inherits
    the displaced slot, so the returned slot→index table is identical to
    the naive algorithm's on every input. *)

val smallest : k:int -> int64 array -> int array
(** [smallest ~k xs] returns [sel] of length [k] with [sel.(s)] the
    index into [xs] held by slot [s] after the streaming scan; the
    multiset [{xs.(sel.(s))}] is the [k] smallest values of [xs] (ties
    resolved towards earlier arrivals).
    @raise Invalid_argument unless [1 <= k <= Array.length xs]. *)
