(** Domain-based work pool for embarrassingly parallel loops.

    The protocol's dominant cost is Party A's Compute-Distances phase —
    [n] independent homomorphic pipelines — plus a handful of other
    per-point stages (database encryption, indicator-row encryption,
    result decryption).  This module runs such loops across OCaml 5
    domains with static contiguous chunking.

    Design contract, relied on by the protocol layer:

    - {b Ordered results}: [map f a] returns exactly
      [Array.map f a] — element [i] of the output is [f a.(i)] whatever
      the job count.
    - {b Sequential path}: with [jobs = 1] (or a single-element input)
      no domain is spawned; [f] runs in the calling domain.
    - {b Exception propagation}: if any invocation of [f] raises, all
      workers are joined and the exception of the lowest-indexed failing
      chunk is re-raised (with its backtrace) in the caller.
    - {b Worker-local state}: {!map_local} gives every worker its own
      accumulator (e.g. a fresh {!Counters.t}) created by [make] and
      hands each back to [merge] in worker order after the join, so
      operation counts stay exact under any job count.

    Functions passed to the pool must not touch shared mutable state;
    determinism across job counts is then guaranteed because chunking
    only changes {e where} each independent [f a.(i)] runs. *)

val default_jobs : unit -> int
(** The job count used when [?jobs] is omitted: the [SKNN_DOMAINS]
    environment variable if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

(** {1 Chunk observation (tracing hook)} *)

type chunk_stat = {
  worker : int;        (** worker index, [0 .. jobs-1] *)
  chunk_lo : int;      (** first element index of the chunk *)
  chunk_hi : int;      (** one past the last element index *)
  chunk_start : float; (** {!Timer.counter} reading at chunk start *)
  chunk_seconds : float;
}

val with_chunk_observer : (chunk_stat -> unit) -> (unit -> 'a) -> 'a
(** [with_chunk_observer obs f] runs [f] with [obs] installed for pool
    calls made {e by the current domain}.  For each such call, [obs] is
    invoked once per chunk — after all workers have joined and their
    states merged, in worker order, in the calling domain — so
    observation can never race with workers or perturb result
    determinism.  The observer is domain-local and reports only the
    outermost pool call: nested pool calls made from inside worker
    bodies do not report, whether the body runs in a spawned domain
    (fresh DLS) or in the calling domain (the [jobs = 1] path and
    worker 0, where the observer is masked for the duration of the
    chunk).  Installations nest; the previous observer is restored on
    exit, including on exceptions.  When no observer is installed,
    workers skip timestamp collection entirely. *)

val map_local :
  ?jobs:int ->
  make:(unit -> 'w) ->
  merge:('w -> unit) ->
  f:('w -> int -> 'a -> 'b) ->
  'a array ->
  'b array
(** [map_local ~make ~merge ~f a] is [Array.mapi (f w) a] with the work
    split over [jobs] workers; each worker calls [make ()] once and maps
    its chunk with that state, and after all workers complete [merge] is
    applied to every worker state in worker order (in the calling
    domain).  [merge] runs even when [f] never ran (empty chunk). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
val init : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** Parallel analogues of [Array.map], [Array.mapi] and [Array.init]. *)
