(** Operation counters for reproducing Table 1, plus the op-level cost
    ledger.

    The paper's Table 1 compares protocols by the number of homomorphic
    operations, encryptions, decryptions, communication rounds and bytes
    per round.  Every crypto substrate in this repository reports into a
    [Counters.t] so that benchmark runs measure these quantities on real
    executions instead of quoting the asymptotic formulas.

    Two granularities coexist in one counter:

    - {e events} ({!event}) — the coarse Table 1 classes, unchanged
      since PR 1;
    - the {e ledger} ({!op}) — op-kind × BGV-level counts, recorded at
      every [Bgv]/[Rq] call site.  [ct_mul@L6=858] means 858
      ciphertext–ciphertext multiplications were performed on
      ciphertexts with 6 active RNS primes.  Because the unit cost of a
      ring operation is proportional to its active-prime count, the
      ledger is what a calibrated time model
      ({!Sknn_obs.Cost_model.predict_seconds}) can price.

    Ledger updates are plain field increments with no synchronisation;
    per-worker counters from {!Pool.map_local} are folded back with
    {!absorb} in worker order, so totals are bit-identical for every
    job count. *)

type t

(** The coarse event classes tracked (Table 1 rows). *)
type event =
  | Encrypt          (** public-key encryption of one value *)
  | Decrypt          (** secret-key decryption of one value *)
  | Hom_add          (** homomorphic addition / subtraction *)
  | Hom_mul          (** homomorphic ciphertext–ciphertext multiplication *)
  | Hom_mul_plain    (** homomorphic ciphertext–plaintext multiplication *)
  | Hom_modswitch    (** BGV modulus switch *)
  | Hom_relin        (** relinearisation / key switch *)
  | Round            (** one protocol communication round *)
  | Bytes_sent of int (** payload bytes placed on the wire *)

(** The ledger's op kinds.  Composite BGV operations record one primary
    op plus the NTT passes they trigger; {!Op_ntt_fwd}/{!Op_ntt_inv}
    count whole-polynomial conversions at the recorded level (each is
    [level] per-prime butterfly passes). *)
type op =
  | Op_encrypt       (** public-key encryption (4 fresh Coeff→Eval embeds) *)
  | Op_decrypt       (** full or coeff0-only decryption *)
  | Op_ct_add        (** ciphertext ± ciphertext *)
  | Op_ct_mul        (** ciphertext tensor product *)
  | Op_mul_plain     (** ciphertext × plaintext / scalar *)
  | Op_modswitch     (** modulus switch (recorded at the source level) *)
  | Op_level_drop    (** RNS truncation without rescaling (target level) *)
  | Op_key_switch    (** relinearisation or Galois key switch *)
  | Op_ntt_fwd       (** Coeff→Eval conversion of one polynomial *)
  | Op_ntt_inv       (** Eval→Coeff conversion of one polynomial *)
  | Op_slot_pack     (** Plaintext.of_slots mod-t inverse NTT (level 0) *)
  | Op_slot_unpack   (** Plaintext.to_slots mod-t forward NTT (level 0) *)

val all_ops : op array
(** Every op kind once, in {!op_index} order. *)

val num_ops : int
val op_index : op -> int
(** Dense index in [0 .. num_ops - 1], stable across runs. *)

val op_name : op -> string
(** Snake-case wire name ([ct_mul], [ntt_fwd], …) used by the metrics
    exposition and the bench JSON ledger fields. *)

val max_level : int
(** Highest level the ledger can record (inclusive); {!record_op}
    rejects levels outside [0 .. max_level].  Level 0 is reserved for
    level-less plaintext-side ops (slot pack/unpack). *)

val create : unit -> t
val reset : t -> unit
val record : t -> event -> unit

val record_op : t -> op -> level:int -> unit
(** Add one ledger entry for [op] at [level].
    @raise Invalid_argument when [level] is out of range. *)

val record_op_n : t -> op -> level:int -> int -> unit
(** [record_op_n t op ~level k] records [op] [k] times ([k >= 0]). *)

val op_count : t -> op -> level:int -> int
val op_total : t -> op -> int
(** Ledger count of [op] summed over all levels. *)

val ops_total : t -> int
(** Every ledger entry summed — the single-number "ciphertext work"
    aggregate. *)

val ledger_entries : t -> (op * int * int) list
(** Nonzero ledger cells as [(op, level, count)], ordered by
    {!op_index} then ascending level — deterministic, so two counters
    with equal ledgers render identically. *)

val equal_ledger : t -> t -> bool
(** Cell-wise equality of the two ledgers (events are not compared) —
    what the Cost_model cross-check tests assert. *)

val encryptions : t -> int
val decryptions : t -> int
val hom_adds : t -> int
val hom_muls : t -> int
val hom_mul_plains : t -> int
val hom_modswitches : t -> int
val hom_relins : t -> int
val hom_total : t -> int
(** Sum of all homomorphic-evaluation events (adds, muls, plain muls,
    modswitches, relins). *)

val rounds : t -> int
val bytes_sent : t -> int

val record_n : t -> event -> int -> unit
(** [record_n t e k] records [e] [k] times ([k >= 0]); for
    [Bytes_sent n] this adds [n * k] bytes. *)

val merge : t -> t -> t
(** [merge a b] is a fresh counter holding the component-wise sums
    (events and ledger). *)

val copy : t -> t
(** An independent snapshot.  {!Sknn_obs.Trace} snapshots a party's live
    counter when a span opens and {!diff}s at close to get the span's
    delta. *)

val diff : t -> t -> t
(** [diff a b] is the component-wise difference [a - b]. *)

val is_zero : t -> bool

val to_list : t -> (string * int) list
(** Every {e event} field as a [(name, count)] pair, in a fixed order —
    the generic view the observability sinks serialise.  The ledger is
    not included here; use {!ledger_entries}. *)

val absorb : into:t -> t -> unit
(** [absorb ~into b] adds every count of [b] (events and ledger) into
    [into].  This is how per-worker counters from {!Pool.map_local} are
    folded back into a party's counter, keeping totals exact under any
    job count. *)

val pp : Format.formatter -> t -> unit
(** Renders events and, when nonempty, the ledger
    ([ledger(ct_mul@L6=858 …)]) — the jobs-determinism tests compare
    this rendering across worker counts. *)
