(** Operation counters for reproducing Table 1.

    The paper's Table 1 compares protocols by the number of homomorphic
    operations, encryptions, decryptions, communication rounds and bytes
    per round.  Every crypto substrate in this repository reports into a
    [Counters.t] so that benchmark runs measure these quantities on real
    executions instead of quoting the asymptotic formulas. *)

type t

(** The event classes tracked. *)
type event =
  | Encrypt          (** public-key encryption of one value *)
  | Decrypt          (** secret-key decryption of one value *)
  | Hom_add          (** homomorphic addition / subtraction *)
  | Hom_mul          (** homomorphic ciphertext–ciphertext multiplication *)
  | Hom_mul_plain    (** homomorphic ciphertext–plaintext multiplication *)
  | Hom_modswitch    (** BGV modulus switch *)
  | Hom_relin        (** relinearisation / key switch *)
  | Round            (** one protocol communication round *)
  | Bytes_sent of int (** payload bytes placed on the wire *)

val create : unit -> t
val reset : t -> unit
val record : t -> event -> unit

val encryptions : t -> int
val decryptions : t -> int
val hom_adds : t -> int
val hom_muls : t -> int
val hom_mul_plains : t -> int
val hom_modswitches : t -> int
val hom_relins : t -> int
val hom_total : t -> int
(** Sum of all homomorphic-evaluation events (adds, muls, plain muls,
    modswitches, relins). *)

val rounds : t -> int
val bytes_sent : t -> int

val record_n : t -> event -> int -> unit
(** [record_n t e k] records [e] [k] times ([k >= 0]); for
    [Bytes_sent n] this adds [n * k] bytes. *)

val merge : t -> t -> t
(** [merge a b] is a fresh counter holding the component-wise sums. *)

val copy : t -> t
(** An independent snapshot.  {!Sknn_obs.Trace} snapshots a party's live
    counter when a span opens and {!diff}s at close to get the span's
    delta. *)

val diff : t -> t -> t
(** [diff a b] is the component-wise difference [a - b]. *)

val is_zero : t -> bool

val to_list : t -> (string * int) list
(** Every field as a [(name, count)] pair, in a fixed order — the
    generic view the observability sinks serialise. *)

val absorb : into:t -> t -> unit
(** [absorb ~into b] adds every count of [b] into [into].  This is how
    per-worker counters from {!Pool.map_local} are folded back into a
    party's counter, keeping totals exact under any job count. *)

val pp : Format.formatter -> t -> unit
