(* Per-domain scratch arena for the ring kernels.

   Free lists of int arrays, bucketed by exact length, live in
   domain-local storage: the orchestrating domain keeps its arena for
   the whole process, while Pool workers are spawned fresh per
   map_local call, so a worker's arena lives exactly as long as its
   chunk — scratch is per-worker by construction and never crosses a
   domain boundary.  Arrays handed out contain stale data; callers must
   fully overwrite before reading. *)

let max_per_bucket = 64

let buckets_key : (int, int array list ref) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let acquire n =
  if n < 0 then invalid_arg "Arena.acquire: negative length";
  let buckets = Domain.DLS.get buckets_key in
  match Hashtbl.find_opt buckets n with
  | Some ({ contents = a :: rest } as l) ->
    l := rest;
    a
  | Some { contents = [] } | None -> Array.make n 0

let release a =
  let n = Array.length a in
  let buckets = Domain.DLS.get buckets_key in
  match Hashtbl.find_opt buckets n with
  | Some l -> if List.length !l < max_per_bucket then l := a :: !l
  | None -> Hashtbl.add buckets n (ref [ a ])

let with_array n f =
  let a = acquire n in
  Fun.protect ~finally:(fun () -> release a) (fun () -> f a)
