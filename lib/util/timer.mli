(** Wall-clock timing helpers for the benchmark harness. *)

val now : unit -> float
(** Seconds since the epoch, monotonic enough for coarse protocol timing. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock seconds. *)

val counter : unit -> float
(** A monotonic-friendly reading of the wall clock: successive calls —
    from any domain — never decrease, even if the system clock steps
    backwards.  Span timestamps in {!Sknn_obs.Trace} are taken with
    this. *)

val pp_duration : Format.formatter -> float -> unit
(** Pretty-prints a duration like the paper's prose: ["45 s"],
    ["2 min 45 s"], ["373 ms"], ["390 µs"].  Sub-millisecond phases
    (e.g. [decrypt-result]) get the microsecond tier instead of
    rendering as ["0 ms"]. *)
