type t = {
  mutable encrypt : int;
  mutable decrypt : int;
  mutable hom_add : int;
  mutable hom_mul : int;
  mutable hom_mul_plain : int;
  mutable hom_modswitch : int;
  mutable hom_relin : int;
  mutable round : int;
  mutable bytes : int;
}

type event =
  | Encrypt
  | Decrypt
  | Hom_add
  | Hom_mul
  | Hom_mul_plain
  | Hom_modswitch
  | Hom_relin
  | Round
  | Bytes_sent of int

let create () =
  { encrypt = 0; decrypt = 0; hom_add = 0; hom_mul = 0; hom_mul_plain = 0;
    hom_modswitch = 0; hom_relin = 0; round = 0; bytes = 0 }

let reset t =
  t.encrypt <- 0;
  t.decrypt <- 0;
  t.hom_add <- 0;
  t.hom_mul <- 0;
  t.hom_mul_plain <- 0;
  t.hom_modswitch <- 0;
  t.hom_relin <- 0;
  t.round <- 0;
  t.bytes <- 0

let record t = function
  | Encrypt -> t.encrypt <- t.encrypt + 1
  | Decrypt -> t.decrypt <- t.decrypt + 1
  | Hom_add -> t.hom_add <- t.hom_add + 1
  | Hom_mul -> t.hom_mul <- t.hom_mul + 1
  | Hom_mul_plain -> t.hom_mul_plain <- t.hom_mul_plain + 1
  | Hom_modswitch -> t.hom_modswitch <- t.hom_modswitch + 1
  | Hom_relin -> t.hom_relin <- t.hom_relin + 1
  | Round -> t.round <- t.round + 1
  | Bytes_sent n -> t.bytes <- t.bytes + n

let encryptions t = t.encrypt
let decryptions t = t.decrypt
let hom_adds t = t.hom_add
let hom_muls t = t.hom_mul
let hom_mul_plains t = t.hom_mul_plain
let hom_modswitches t = t.hom_modswitch
let hom_relins t = t.hom_relin

let hom_total t =
  t.hom_add + t.hom_mul + t.hom_mul_plain + t.hom_modswitch + t.hom_relin

let rounds t = t.round
let bytes_sent t = t.bytes

let record_n t e k =
  if k < 0 then invalid_arg "Counters.record_n: negative count";
  match e with
  | Encrypt -> t.encrypt <- t.encrypt + k
  | Decrypt -> t.decrypt <- t.decrypt + k
  | Hom_add -> t.hom_add <- t.hom_add + k
  | Hom_mul -> t.hom_mul <- t.hom_mul + k
  | Hom_mul_plain -> t.hom_mul_plain <- t.hom_mul_plain + k
  | Hom_modswitch -> t.hom_modswitch <- t.hom_modswitch + k
  | Hom_relin -> t.hom_relin <- t.hom_relin + k
  | Round -> t.round <- t.round + k
  | Bytes_sent n -> t.bytes <- t.bytes + (n * k)

let absorb ~into b =
  into.encrypt <- into.encrypt + b.encrypt;
  into.decrypt <- into.decrypt + b.decrypt;
  into.hom_add <- into.hom_add + b.hom_add;
  into.hom_mul <- into.hom_mul + b.hom_mul;
  into.hom_mul_plain <- into.hom_mul_plain + b.hom_mul_plain;
  into.hom_modswitch <- into.hom_modswitch + b.hom_modswitch;
  into.hom_relin <- into.hom_relin + b.hom_relin;
  into.round <- into.round + b.round;
  into.bytes <- into.bytes + b.bytes

let copy t =
  { encrypt = t.encrypt; decrypt = t.decrypt; hom_add = t.hom_add; hom_mul = t.hom_mul;
    hom_mul_plain = t.hom_mul_plain; hom_modswitch = t.hom_modswitch;
    hom_relin = t.hom_relin; round = t.round; bytes = t.bytes }

let diff a b =
  { encrypt = a.encrypt - b.encrypt;
    decrypt = a.decrypt - b.decrypt;
    hom_add = a.hom_add - b.hom_add;
    hom_mul = a.hom_mul - b.hom_mul;
    hom_mul_plain = a.hom_mul_plain - b.hom_mul_plain;
    hom_modswitch = a.hom_modswitch - b.hom_modswitch;
    hom_relin = a.hom_relin - b.hom_relin;
    round = a.round - b.round;
    bytes = a.bytes - b.bytes }

let is_zero t =
  t.encrypt = 0 && t.decrypt = 0 && t.hom_add = 0 && t.hom_mul = 0
  && t.hom_mul_plain = 0 && t.hom_modswitch = 0 && t.hom_relin = 0
  && t.round = 0 && t.bytes = 0

let to_list t =
  [ ("encryptions", t.encrypt);
    ("decryptions", t.decrypt);
    ("hom_adds", t.hom_add);
    ("hom_muls", t.hom_mul);
    ("hom_mul_plains", t.hom_mul_plain);
    ("hom_modswitches", t.hom_modswitch);
    ("hom_relins", t.hom_relin);
    ("rounds", t.round);
    ("bytes_sent", t.bytes) ]

let merge a b =
  { encrypt = a.encrypt + b.encrypt;
    decrypt = a.decrypt + b.decrypt;
    hom_add = a.hom_add + b.hom_add;
    hom_mul = a.hom_mul + b.hom_mul;
    hom_mul_plain = a.hom_mul_plain + b.hom_mul_plain;
    hom_modswitch = a.hom_modswitch + b.hom_modswitch;
    hom_relin = a.hom_relin + b.hom_relin;
    round = a.round + b.round;
    bytes = a.bytes + b.bytes }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>enc=%d dec=%d hom(add=%d mul=%d mulp=%d modsw=%d relin=%d total=%d)@ \
     rounds=%d bytes=%d@]"
    t.encrypt t.decrypt t.hom_add t.hom_mul t.hom_mul_plain t.hom_modswitch
    t.hom_relin (hom_total t) t.round t.bytes
