type event =
  | Encrypt
  | Decrypt
  | Hom_add
  | Hom_mul
  | Hom_mul_plain
  | Hom_modswitch
  | Hom_relin
  | Round
  | Bytes_sent of int

type op =
  | Op_encrypt
  | Op_decrypt
  | Op_ct_add
  | Op_ct_mul
  | Op_mul_plain
  | Op_modswitch
  | Op_level_drop
  | Op_key_switch
  | Op_ntt_fwd
  | Op_ntt_inv
  | Op_slot_pack
  | Op_slot_unpack

let all_ops =
  [| Op_encrypt; Op_decrypt; Op_ct_add; Op_ct_mul; Op_mul_plain; Op_modswitch;
     Op_level_drop; Op_key_switch; Op_ntt_fwd; Op_ntt_inv; Op_slot_pack;
     Op_slot_unpack |]

let num_ops = Array.length all_ops

let op_index = function
  | Op_encrypt -> 0
  | Op_decrypt -> 1
  | Op_ct_add -> 2
  | Op_ct_mul -> 3
  | Op_mul_plain -> 4
  | Op_modswitch -> 5
  | Op_level_drop -> 6
  | Op_key_switch -> 7
  | Op_ntt_fwd -> 8
  | Op_ntt_inv -> 9
  | Op_slot_pack -> 10
  | Op_slot_unpack -> 11

let op_name = function
  | Op_encrypt -> "encrypt"
  | Op_decrypt -> "decrypt"
  | Op_ct_add -> "ct_add"
  | Op_ct_mul -> "ct_mul"
  | Op_mul_plain -> "mul_plain"
  | Op_modswitch -> "modswitch"
  | Op_level_drop -> "level_drop"
  | Op_key_switch -> "key_switch"
  | Op_ntt_fwd -> "ntt_fwd"
  | Op_ntt_inv -> "ntt_inv"
  | Op_slot_pack -> "slot_pack"
  | Op_slot_unpack -> "slot_unpack"

(* Slot pack/unpack are plaintext-side and level-less; they record at
   level 0.  Ciphertext ops record at 1..max_level. *)
let max_level = 64

type t = {
  mutable encrypt : int;
  mutable decrypt : int;
  mutable hom_add : int;
  mutable hom_mul : int;
  mutable hom_mul_plain : int;
  mutable hom_modswitch : int;
  mutable hom_relin : int;
  mutable round : int;
  mutable bytes : int;
  ledger : int array array;
      (* [ledger.(op_index op).(level)] — op-kind × BGV-level counts *)
}

let create () =
  { encrypt = 0; decrypt = 0; hom_add = 0; hom_mul = 0; hom_mul_plain = 0;
    hom_modswitch = 0; hom_relin = 0; round = 0; bytes = 0;
    ledger = Array.make_matrix num_ops (max_level + 1) 0 }

let reset t =
  t.encrypt <- 0;
  t.decrypt <- 0;
  t.hom_add <- 0;
  t.hom_mul <- 0;
  t.hom_mul_plain <- 0;
  t.hom_modswitch <- 0;
  t.hom_relin <- 0;
  t.round <- 0;
  t.bytes <- 0;
  Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) t.ledger

let record t = function
  | Encrypt -> t.encrypt <- t.encrypt + 1
  | Decrypt -> t.decrypt <- t.decrypt + 1
  | Hom_add -> t.hom_add <- t.hom_add + 1
  | Hom_mul -> t.hom_mul <- t.hom_mul + 1
  | Hom_mul_plain -> t.hom_mul_plain <- t.hom_mul_plain + 1
  | Hom_modswitch -> t.hom_modswitch <- t.hom_modswitch + 1
  | Hom_relin -> t.hom_relin <- t.hom_relin + 1
  | Round -> t.round <- t.round + 1
  | Bytes_sent n -> t.bytes <- t.bytes + n

let check_level level =
  if level < 0 || level > max_level then
    invalid_arg (Printf.sprintf "Counters.record_op: level %d out of range" level)

let record_op_n t op ~level k =
  if k < 0 then invalid_arg "Counters.record_op_n: negative count";
  check_level level;
  let row = t.ledger.(op_index op) in
  row.(level) <- row.(level) + k

let record_op t op ~level = record_op_n t op ~level 1
let op_count t op ~level = check_level level; t.ledger.(op_index op).(level)
let op_total t op = Array.fold_left ( + ) 0 t.ledger.(op_index op)
let ops_total t = Array.fold_left (fun s row -> Array.fold_left ( + ) s row) 0 t.ledger

let ledger_entries t =
  let acc = ref [] in
  for i = num_ops - 1 downto 0 do
    let row = t.ledger.(i) in
    for level = max_level downto 0 do
      if row.(level) <> 0 then acc := (all_ops.(i), level, row.(level)) :: !acc
    done
  done;
  !acc

let encryptions t = t.encrypt
let decryptions t = t.decrypt
let hom_adds t = t.hom_add
let hom_muls t = t.hom_mul
let hom_mul_plains t = t.hom_mul_plain
let hom_modswitches t = t.hom_modswitch
let hom_relins t = t.hom_relin

let hom_total t =
  t.hom_add + t.hom_mul + t.hom_mul_plain + t.hom_modswitch + t.hom_relin

let rounds t = t.round
let bytes_sent t = t.bytes

let record_n t e k =
  if k < 0 then invalid_arg "Counters.record_n: negative count";
  match e with
  | Encrypt -> t.encrypt <- t.encrypt + k
  | Decrypt -> t.decrypt <- t.decrypt + k
  | Hom_add -> t.hom_add <- t.hom_add + k
  | Hom_mul -> t.hom_mul <- t.hom_mul + k
  | Hom_mul_plain -> t.hom_mul_plain <- t.hom_mul_plain + k
  | Hom_modswitch -> t.hom_modswitch <- t.hom_modswitch + k
  | Hom_relin -> t.hom_relin <- t.hom_relin + k
  | Round -> t.round <- t.round + k
  | Bytes_sent n -> t.bytes <- t.bytes + (n * k)

let ledger_iter2 f a b =
  for i = 0 to num_ops - 1 do
    let ra = a.ledger.(i) and rb = b.ledger.(i) in
    for level = 0 to max_level do
      f ra rb level
    done
  done

let absorb ~into b =
  into.encrypt <- into.encrypt + b.encrypt;
  into.decrypt <- into.decrypt + b.decrypt;
  into.hom_add <- into.hom_add + b.hom_add;
  into.hom_mul <- into.hom_mul + b.hom_mul;
  into.hom_mul_plain <- into.hom_mul_plain + b.hom_mul_plain;
  into.hom_modswitch <- into.hom_modswitch + b.hom_modswitch;
  into.hom_relin <- into.hom_relin + b.hom_relin;
  into.round <- into.round + b.round;
  into.bytes <- into.bytes + b.bytes;
  ledger_iter2 (fun ri rb level -> ri.(level) <- ri.(level) + rb.(level)) into b

let copy t =
  let c =
    { encrypt = t.encrypt; decrypt = t.decrypt; hom_add = t.hom_add;
      hom_mul = t.hom_mul; hom_mul_plain = t.hom_mul_plain;
      hom_modswitch = t.hom_modswitch; hom_relin = t.hom_relin; round = t.round;
      bytes = t.bytes; ledger = Array.make_matrix num_ops (max_level + 1) 0 }
  in
  ledger_iter2 (fun rc rt level -> rc.(level) <- rt.(level)) c t;
  c

let diff a b =
  let d =
    { encrypt = a.encrypt - b.encrypt;
      decrypt = a.decrypt - b.decrypt;
      hom_add = a.hom_add - b.hom_add;
      hom_mul = a.hom_mul - b.hom_mul;
      hom_mul_plain = a.hom_mul_plain - b.hom_mul_plain;
      hom_modswitch = a.hom_modswitch - b.hom_modswitch;
      hom_relin = a.hom_relin - b.hom_relin;
      round = a.round - b.round;
      bytes = a.bytes - b.bytes;
      ledger = Array.make_matrix num_ops (max_level + 1) 0 }
  in
  for i = 0 to num_ops - 1 do
    let rd = d.ledger.(i) and ra = a.ledger.(i) and rb = b.ledger.(i) in
    for level = 0 to max_level do
      rd.(level) <- ra.(level) - rb.(level)
    done
  done;
  d

let is_zero t =
  t.encrypt = 0 && t.decrypt = 0 && t.hom_add = 0 && t.hom_mul = 0
  && t.hom_mul_plain = 0 && t.hom_modswitch = 0 && t.hom_relin = 0
  && t.round = 0 && t.bytes = 0
  && Array.for_all (fun row -> Array.for_all (fun c -> c = 0) row) t.ledger

let to_list t =
  [ ("encryptions", t.encrypt);
    ("decryptions", t.decrypt);
    ("hom_adds", t.hom_add);
    ("hom_muls", t.hom_mul);
    ("hom_mul_plains", t.hom_mul_plain);
    ("hom_modswitches", t.hom_modswitch);
    ("hom_relins", t.hom_relin);
    ("rounds", t.round);
    ("bytes_sent", t.bytes) ]

let merge a b =
  let c = copy a in
  absorb ~into:c b;
  c

let equal_ledger a b =
  let ok = ref true in
  ledger_iter2 (fun ra rb level -> if ra.(level) <> rb.(level) then ok := false) a b;
  !ok

let pp ppf t =
  Format.fprintf ppf
    "@[<v>enc=%d dec=%d hom(add=%d mul=%d mulp=%d modsw=%d relin=%d total=%d)@ \
     rounds=%d bytes=%d"
    t.encrypt t.decrypt t.hom_add t.hom_mul t.hom_mul_plain t.hom_modswitch
    t.hom_relin (hom_total t) t.round t.bytes;
  (match ledger_entries t with
   | [] -> ()
   | entries ->
     Format.fprintf ppf "@ ledger(";
     List.iteri
       (fun i (op, level, count) ->
         if i > 0 then Format.fprintf ppf " ";
         Format.fprintf ppf "%s@@L%d=%d" (op_name op) level count)
       entries;
     Format.fprintf ppf ")");
  Format.fprintf ppf "@]"
