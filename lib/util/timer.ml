(* This module IS the sanctioned wall-clock: everything else reads time
   through it (sknn-lint's no-ambient-nondeterminism rule enforces
   that), so timestamps can be stripped or replayed in one place. *)
[@@@sknn.allow "no-ambient-nondeterminism"]

let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let x = f () in
  let t1 = now () in
  (x, t1 -. t0)

(* Wall-clock that never goes backwards, shared across domains: spans
   started in different domains must still nest sensibly in one trace
   even if the system clock steps.  A CAS loop keeps the high-water mark
   without a lock. *)
let counter =
  let last = Atomic.make 0.0 in
  fun () ->
    let t = Unix.gettimeofday () in
    let rec clamp () =
      let l = Atomic.get last in
      if t > l then if Atomic.compare_and_set last l t then t else clamp ()
      else l
    in
    clamp ()

let pp_duration ppf s =
  if s < 0.001 then Format.fprintf ppf "%.0f µs" (s *. 1e6)
  else if s < 1.0 then Format.fprintf ppf "%.0f ms" (s *. 1000.0)
  else if s < 60.0 then Format.fprintf ppf "%.1f s" s
  else
    let m = int_of_float (s /. 60.0) in
    let rest = s -. (float_of_int m *. 60.0) in
    Format.fprintf ppf "%d min %.0f s" m rest
