(** Polynomials in R_Q = Z_Q[x]/(x^N + 1), with Q a product of word-sized
    NTT primes held in residue-number-system (RNS) form.

    A value stores one residue polynomial per active prime.  Leveled BGV
    drops primes from the end of the chain as computation deepens, so the
    number of active primes ([nprimes]) is a per-value property; binary
    operations require both operands at the same level.

    Values are immutable from the outside: every operation returns a
    fresh value (the module reuses buffers internally where safe). *)

type context
(** Ring degree, modulus chain, NTT tables and all chain-prefix CRT
    bases, shared by all values.  Immutable after creation, so a context
    (and every value over it) may be read concurrently from multiple
    domains. *)

type domain = Coeff | Eval
(** [Coeff]: natural coefficient embedding. [Eval]: per-prime NTT
    evaluation domain (bit-reversed), where multiplication is pointwise. *)

type t

(** {1 Context} *)

val context : n:int -> moduli:int array -> context
(** [context ~n ~moduli] requires [n] a power of two and each modulus a
    prime ≡ 1 (mod 2n) below 2^31, all distinct. *)

val degree : context -> int
val moduli : context -> int array
val chain_length : context -> int
val basis : context -> nprimes:int -> Crt.basis
(** CRT basis for the first [nprimes] primes of the chain (cached). *)

val table : context -> int -> Ntt.table
(** The NTT table of chain prime [i] — carries that prime's Shoup
    twiddle companions and Barrett reciprocal (see {!Ntt.barrett}). *)

val modulus : context -> nprimes:int -> Zint.t
(** Product of the first [nprimes] primes. *)

(** {1 Construction and inspection} *)

val zero : context -> nprimes:int -> domain -> t
val nprimes : t -> int
val domain : t -> domain
val ctx : t -> context

val of_small_coeffs : context -> nprimes:int -> domain -> int array -> t
(** Embeds a polynomial with small signed coefficients (|c| < 2^30, e.g.
    noise, ternary secrets, digits) and converts to the requested
    domain. *)

val of_int64_coeffs : context -> nprimes:int -> domain -> int64 array -> t
(** Embeds signed 64-bit coefficients (reduced per prime). *)

val of_zint_coeffs : context -> nprimes:int -> domain -> Zint.t array -> t

val to_zint_coeffs : t -> Zint.t array
(** Exact centered coefficients in [(-Q/2, Q/2]] via CRT lifting.
    Converts to [Coeff] domain internally if needed. *)

val constant : context -> nprimes:int -> domain -> int64 -> t
(** The constant polynomial. *)

(** {1 Domain conversion} *)

val to_eval : t -> t
val to_coeff : t -> t

val needs_transform : t -> domain -> bool
(** Whether presenting [t] in [domain] requires an NTT pass over its
    residues (false when the stored domain already matches).  The BGV
    layer's cost ledger uses this census so its [ntt_fwd]/[ntt_inv]
    counts stay exact even at call sites where a value's domain is
    data-dependent. *)

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
(** Ring product; operands are converted to [Eval] if needed. *)

val mul_scalar : t -> int64 -> t
(** Multiply every coefficient by a signed scalar. *)

val mul_add_into : t -> t -> t -> unit
(** [mul_add_into acc a b] sets [acc <- acc + a·b] by fused pointwise
    multiply-accumulate, allocating nothing — the inner-product
    primitive behind {!Bgv.mul_sum}.  [acc] must be in [Eval] domain,
    uniquely owned by the caller (create it with {!zero}), and at the
    same level as [a] and [b].  [Coeff]-domain operands are transformed
    through per-worker arena scratch, not materialised. *)

(** {2 Destructive variants}

    Each writes into a value that must be {e uniquely owned} by the
    caller — created with {!zero} or the sole reference to a freshly
    computed result — and never a value that was handed out or stored
    elsewhere.  They keep the steady-state hot loop free of
    intermediate allocations; all reductions are exact, so results are
    bit-identical to the pure counterparts. *)

val add_into : t -> t -> unit
(** [add_into acc b] sets [acc <- acc + b].  Domains and levels must
    already match (no implicit conversion). *)

val sub_into : t -> t -> unit
(** [sub_into acc b] sets [acc <- acc - b].  Same contract as
    {!add_into}. *)

val mul_into : t -> t -> t -> unit
(** [mul_into dst a b] sets [dst <- a·b] (pointwise); [dst] must be
    [Eval] at the operands' level.  [dst] may alias [a] or [b] when the
    aliased operand is already [Eval]. *)

val to_eval_into : t -> t
(** [to_eval_into t] transforms [t]'s residue arrays to the evaluation
    domain {e in place} and returns the [Eval]-tagged view (sharing the
    arrays).  The caller must own [t] and drop its old binding. *)

val equal : t -> t -> bool
(** Structural equality at identical level; domains are reconciled. *)

(** {1 Level manipulation (used by BGV modulus switching)} *)

val drop_last_prime : t -> t
(** Forgets the residues of the last active prime (plain truncation; the
    arithmetic correction is the caller's job). *)

val truncate : t -> nprimes:int -> t
(** Keeps only the first [nprimes] residue components (valid when the
    caller knows the represented value is small enough, as in BGV level
    alignment). *)

val mul_scalar_zint : t -> Zint.t -> t
(** Multiply every coefficient by an arbitrary-precision scalar (reduced
    per prime); needed for key-switching gadget powers 2^{jw} that exceed
    64 bits. *)

val substitute : t -> k:int -> t
(** The Galois automorphism [a(x) -> a(x^k)] of Z_q[x]/(x^N + 1), for
    odd [k] (taken mod 2N): a signed permutation of the coefficients.
    Works in either domain (converts to [Coeff] internally); the result
    is in [Coeff] domain. @raise Invalid_argument on even [k]. *)

val last_prime : t -> int
val component : t -> int -> int array
(** [component t i] is a copy of the residue polynomial mod prime [i]. *)

val unsafe_component : t -> int -> int array
(** The live residue array mod prime [i]; callers must not mutate it.
    Exposed for the BGV layer's modulus-switch inner loop. *)

val with_coeff_components : t -> (int array array -> 'a) -> 'a
(** [with_coeff_components t f] calls [f] with [t]'s residue arrays in
    [Coeff] domain — the live arrays when [t] is already [Coeff],
    arena-backed inverse transforms otherwise.  The arrays are borrowed:
    [f] must neither mutate them nor let them escape. *)

val of_components : context -> domain -> int array array -> t
(** Adopts the given residue arrays (takes ownership; do not reuse). *)

val pp : Format.formatter -> t -> unit
