module Z = Zint

type basis = {
  primes : int array;
  q : Z.t;                  (* product of all primes *)
  recomb : Z.t array;       (* (Q/p_i) * ((Q/p_i)^{-1} mod p_i), ready to scale *)
}

let make primes =
  if Array.length primes = 0 then invalid_arg "Crt.make: empty basis";
  Array.iter
    (fun p -> if p < 2 || p >= 1 lsl 31 then invalid_arg "Crt.make: prime out of range")
    primes;
  let q = Array.fold_left (fun acc p -> Z.mul acc (Z.of_int p)) Z.one primes in
  let q_over_p = Array.map (fun p -> Z.div q (Z.of_int p)) primes in
  let recomb =
    Array.mapi
      (fun i p ->
        let qi = q_over_p.(i) in
        let inv = Z.modinv (Z.erem qi (Z.of_int p)) (Z.of_int p) in
        Z.mul qi inv)
      primes
  in
  { primes = Array.copy primes; q; recomb }

let primes b = Array.copy b.primes
let modulus b = b.q

let lift b residues =
  if Array.length residues <> Array.length b.primes then
    invalid_arg "Crt.lift: length mismatch";
  let acc = ref Z.zero in
  Array.iteri
    (fun i r -> acc := Z.add !acc (Z.mul_int b.recomb.(i) r))
    residues;
  Z.erem !acc b.q

let lift_centered b residues =
  let x = lift b residues in
  let half = Z.shift_right b.q 1 in
  if Z.compare x half > 0 then Z.sub x b.q else x

let reduce b x =
  Array.map (fun p -> Z.to_int_exn (Z.erem x (Z.of_int p))) b.primes
