
module Z = Zint

type domain = Coeff | Eval

type context = {
  n : int;
  moduli : int array;
  tables : Ntt.table array;
  bases : Crt.basis array; (* bases.(i): basis of the first i+1 primes *)
}

type t = {
  ctx : context;
  domain : domain;
  comps : int array array; (* comps.(i): residues mod moduli.(i), length n *)
}

let context ~n ~moduli =
  if Array.length moduli = 0 then invalid_arg "Rq.context: empty modulus chain";
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun p ->
      if Hashtbl.mem seen p then invalid_arg "Rq.context: duplicate modulus";
      Hashtbl.add seen p ())
    moduli;
  let tables = Array.map (fun p -> Ntt.make_table ~p ~n) moduli in
  (* Every chain-prefix basis is built eagerly so the context is
     immutable after creation — values can then be shared freely across
     domains by the parallel protocol phases. *)
  let bases =
    Array.init (Array.length moduli) (fun i -> Crt.make (Array.sub moduli 0 (i + 1)))
  in
  { n; moduli = Array.copy moduli; tables; bases }

let degree c = c.n
let moduli c = Array.copy c.moduli
let chain_length c = Array.length c.moduli

let table c i =
  if i < 0 || i >= Array.length c.tables then invalid_arg "Rq.table: bad index";
  c.tables.(i)

let basis c ~nprimes =
  if nprimes < 1 || nprimes > Array.length c.moduli then invalid_arg "Rq.basis: bad nprimes";
  c.bases.(nprimes - 1)

let modulus c ~nprimes = Crt.modulus (basis c ~nprimes)

let zero ctx ~nprimes domain =
  if nprimes < 1 || nprimes > Array.length ctx.moduli then invalid_arg "Rq.zero: bad nprimes";
  { ctx; domain; comps = Array.init nprimes (fun _ -> Array.make ctx.n 0) }

let nprimes t = Array.length t.comps
let domain t = t.domain
let ctx t = t.ctx
let needs_transform t d = t.domain <> d

let to_eval t =
  match t.domain with
  | Eval -> t
  | Coeff ->
    let comps =
      Array.mapi
        (fun i comp ->
          let c = Array.copy comp in
          Ntt.forward t.ctx.tables.(i) c;
          c)
        t.comps
    in
    { t with domain = Eval; comps }

let to_coeff t =
  match t.domain with
  | Coeff -> t
  | Eval ->
    let comps =
      Array.mapi
        (fun i comp ->
          let c = Array.copy comp in
          Ntt.inverse t.ctx.tables.(i) c;
          c)
        t.comps
    in
    { t with domain = Coeff; comps }

let to_eval_into t =
  match t.domain with
  | Eval -> t
  | Coeff ->
    Array.iteri (fun i c -> Ntt.forward t.ctx.tables.(i) c) t.comps;
    { t with domain = Eval }

(* Input canonicalisation at the encryption boundary: one mod per
   coefficient on entry, not on the transform hot path. *)
let[@sknn.allow "no-division"] of_small_coeffs ctx ~nprimes domain coeffs =
  if Array.length coeffs <> ctx.n then invalid_arg "Rq.of_small_coeffs: wrong length";
  let embed p =
    Array.map
      (fun c ->
        let r = c mod p in
        if r < 0 then r + p else r)
      coeffs
  in
  let t = { ctx; domain = Coeff; comps = Array.init nprimes (fun i -> embed ctx.moduli.(i)) } in
  match domain with Coeff -> t | Eval -> to_eval_into t

let of_int64_coeffs ctx ~nprimes domain coeffs =
  if Array.length coeffs <> ctx.n then invalid_arg "Rq.of_int64_coeffs: wrong length";
  let embed p =
    let p64 = Int64.of_int p in
    Array.map (fun c -> Int64.to_int (Mod64.reduce p64 c)) coeffs
  in
  let t = { ctx; domain = Coeff; comps = Array.init nprimes (fun i -> embed ctx.moduli.(i)) } in
  match domain with Coeff -> t | Eval -> to_eval_into t

let of_zint_coeffs ctx ~nprimes domain coeffs =
  if Array.length coeffs <> ctx.n then invalid_arg "Rq.of_zint_coeffs: wrong length";
  let embed p =
    let zp = Z.of_int p in
    Array.map (fun c -> Z.to_int_exn (Z.erem c zp)) coeffs
  in
  let t = { ctx; domain = Coeff; comps = Array.init nprimes (fun i -> embed ctx.moduli.(i)) } in
  match domain with Coeff -> t | Eval -> to_eval_into t

let to_zint_coeffs t =
  let t = to_coeff t in
  let b = basis t.ctx ~nprimes:(nprimes t) in
  Array.init t.ctx.n (fun j ->
      let residues = Array.init (nprimes t) (fun i -> t.comps.(i).(j)) in
      Crt.lift_centered b residues)

let constant ctx ~nprimes domain v =
  let coeffs = Array.make ctx.n 0L in
  coeffs.(0) <- v;
  of_int64_coeffs ctx ~nprimes domain coeffs

let check_compat a b op =
  if a.ctx != b.ctx then invalid_arg (op ^ ": different contexts");
  if Array.length a.comps <> Array.length b.comps then invalid_arg (op ^ ": level mismatch")

let map2_domain op f a b =
  check_compat a b op;
  let a, b =
    match a.domain, b.domain with
    | Coeff, Coeff | Eval, Eval -> (a, b)
    | Coeff, Eval -> (to_eval a, b)
    | Eval, Coeff -> (a, to_eval b)
  in
  let comps =
    Array.mapi
      (fun i ca ->
        let p = a.ctx.moduli.(i) in
        let cb = b.comps.(i) in
        Array.mapi (fun j x -> f p x cb.(j)) ca)
      a.comps
  in
  { ctx = a.ctx; domain = a.domain; comps }

let add a b =
  map2_domain "Rq.add"
    (fun p x y ->
      let s = x + y in
      if s >= p then s - p else s)
    a b

let sub a b =
  map2_domain "Rq.sub"
    (fun p x y ->
      let d = x - y in
      if d < 0 then d + p else d)
    a b

let neg a =
  let comps =
    Array.mapi
      (fun i ca ->
        let p = a.ctx.moduli.(i) in
        Array.map (fun x -> if x = 0 then 0 else p - x) ca)
      a.comps
  in
  { a with comps }

(* Borrow an Eval-domain view of one residue component: the live array
   when already Eval, an arena-backed forward transform otherwise.  The
   continuation must not let the borrowed array escape. *)
let with_eval_comp t i f =
  match t.domain with
  | Eval -> f t.comps.(i)
  | Coeff ->
    let n = t.ctx.n in
    Util.Arena.with_array n (fun s ->
        Array.blit t.comps.(i) 0 s 0 n;
        Ntt.forward t.ctx.tables.(i) s;
        f s)

let mul a b =
  check_compat a b "Rq.mul";
  let comps =
    Array.init (Array.length a.comps) (fun i ->
        let dst = Array.make a.ctx.n 0 in
        with_eval_comp a i (fun ea ->
            with_eval_comp b i (fun eb -> Ntt.pointwise_mul a.ctx.tables.(i) dst ea eb));
        dst)
  in
  { ctx = a.ctx; domain = Eval; comps }

let mul_scalar a s =
  let comps =
    Array.mapi
      (fun i ca ->
        let p = a.ctx.moduli.(i) in
        let p64 = Int64.of_int p in
        let sp = Int64.to_int (Mod64.reduce p64 s) in
        let sh = Shoup.of_int ~p sp in
        Array.map (fun x -> Shoup.mul sh ~p x) ca)
      a.comps
  in
  { a with comps }

let mul_add_into acc a b =
  check_compat acc a "Rq.mul_add_into";
  check_compat a b "Rq.mul_add_into";
  if acc.domain <> Eval then invalid_arg "Rq.mul_add_into: accumulator must be Eval";
  for i = 0 to Array.length acc.comps - 1 do
    with_eval_comp a i (fun ea ->
        with_eval_comp b i (fun eb ->
            Ntt.pointwise_mul_acc acc.ctx.tables.(i) acc.comps.(i) ea eb))
  done

(* --- Destructive variants: the argument written to must be uniquely
   owned by the caller (see the .mli); they exist so the hot loops can
   run without allocating intermediates. --- *)

let add_into acc b =
  check_compat acc b "Rq.add_into";
  if acc.domain <> b.domain then invalid_arg "Rq.add_into: domain mismatch";
  for i = 0 to Array.length acc.comps - 1 do
    let p = acc.ctx.moduli.(i) in
    let cacc = acc.comps.(i) and cb = b.comps.(i) in
    for j = 0 to acc.ctx.n - 1 do
      let s = cacc.(j) + cb.(j) in
      cacc.(j) <- (if s >= p then s - p else s)
    done
  done

let sub_into acc b =
  check_compat acc b "Rq.sub_into";
  if acc.domain <> b.domain then invalid_arg "Rq.sub_into: domain mismatch";
  for i = 0 to Array.length acc.comps - 1 do
    let p = acc.ctx.moduli.(i) in
    let cacc = acc.comps.(i) and cb = b.comps.(i) in
    for j = 0 to acc.ctx.n - 1 do
      let d = cacc.(j) - cb.(j) in
      cacc.(j) <- (if d < 0 then d + p else d)
    done
  done

let mul_into dst a b =
  check_compat dst a "Rq.mul_into";
  check_compat a b "Rq.mul_into";
  if dst.domain <> Eval then invalid_arg "Rq.mul_into: destination must be Eval";
  for i = 0 to Array.length dst.comps - 1 do
    with_eval_comp a i (fun ea ->
        with_eval_comp b i (fun eb -> Ntt.pointwise_mul dst.ctx.tables.(i) dst.comps.(i) ea eb))
  done


let equal a b =
  a.ctx == b.ctx
  && Array.length a.comps = Array.length b.comps
  &&
  let a', b' =
    match a.domain, b.domain with
    | Coeff, Coeff | Eval, Eval -> (a, b)
    | Coeff, Eval -> (a, to_coeff b)
    | Eval, Coeff -> (to_coeff a, b)
  in
  a'.comps = b'.comps

let drop_last_prime t =
  let k = Array.length t.comps in
  if k <= 1 then invalid_arg "Rq.drop_last_prime: would empty the chain";
  { t with comps = Array.sub t.comps 0 (k - 1) }

let truncate t ~nprimes =
  let k = Array.length t.comps in
  if nprimes < 1 || nprimes > k then invalid_arg "Rq.truncate: bad nprimes";
  if nprimes = k then t else { t with comps = Array.sub t.comps 0 nprimes }

let mul_scalar_zint a s =
  let comps =
    Array.mapi
      (fun i ca ->
        let p = a.ctx.moduli.(i) in
        let sp = Z.to_int_exn (Z.erem s (Z.of_int p)) in
        let sh = Shoup.of_int ~p sp in
        Array.map (fun x -> Shoup.mul sh ~p x) ca)
      a.comps
  in
  { a with comps }

(* Exponent folding mod 2n on a per-call Galois substitution (key
   switching prep), not a per-coefficient reduction. *)
let[@sknn.allow "no-division"] substitute t ~k =
  let n = t.ctx.n in
  let k = ((k mod (2 * n)) + (2 * n)) mod (2 * n) in
  if k land 1 = 0 then invalid_arg "Rq.substitute: k must be odd";
  let t = to_coeff t in
  let comps =
    Array.mapi
      (fun i comp ->
        let p = t.ctx.moduli.(i) in
        let out = Array.make n 0 in
        for j = 0 to n - 1 do
          (* x^j -> x^(jk); x^n = -1 folds exponents >= n with a sign. *)
          let e = j * k mod (2 * n) in
          if e < n then out.(e) <- comp.(j)
          else out.(e - n) <- (if comp.(j) = 0 then 0 else p - comp.(j))
        done;
        out)
      t.comps
  in
  { t with comps }

let with_coeff_components t f =
  match t.domain with
  | Coeff -> f t.comps
  | Eval ->
    let k = Array.length t.comps in
    let n = t.ctx.n in
    let scratch =
      Array.init k (fun i ->
          let s = Util.Arena.acquire n in
          Array.blit t.comps.(i) 0 s 0 n;
          Ntt.inverse t.ctx.tables.(i) s;
          s)
    in
    Fun.protect
      ~finally:(fun () -> Array.iter Util.Arena.release scratch)
      (fun () -> f scratch)

let last_prime t = t.ctx.moduli.(Array.length t.comps - 1)

let component t i = Array.copy t.comps.(i)
let unsafe_component t i = t.comps.(i)

let of_components ctx domain comps =
  if Array.length comps = 0 || Array.length comps > Array.length ctx.moduli then
    invalid_arg "Rq.of_components: bad component count";
  Array.iter
    (fun c -> if Array.length c <> ctx.n then invalid_arg "Rq.of_components: bad length")
    comps;
  { ctx; domain; comps }

let pp ppf t =
  let d = match t.domain with Coeff -> "coeff" | Eval -> "eval" in
  Format.fprintf ppf "<Rq n=%d primes=%d %s>" t.ctx.n (nprimes t) d
