
type t = {
  params : Params.t;
  coeffs : int64 array;            (* canonical residues mod t *)
  mutable slots : int64 array option; (* cached slot view *)
}

let params t = t.params

let of_coeffs params coeffs =
  if Array.length coeffs <> params.Params.n then invalid_arg "Plaintext.of_coeffs: wrong length";
  let tp = params.Params.t_plain in
  { params; coeffs = Array.map (Mod64.reduce tp) coeffs; slots = None }

let to_coeffs t = Array.copy t.coeffs

let record_slot_op counters op =
  match counters with
  | None -> ()
  | Some c -> Util.Counters.record_op c op ~level:0

let of_slots ?counters params slots =
  if Array.length slots <> params.Params.n then invalid_arg "Plaintext.of_slots: wrong length";
  record_slot_op counters Util.Counters.Op_slot_pack;
  let tp = params.Params.t_plain in
  let coeffs = Array.map (Mod64.reduce tp) slots in
  (* Slot view = evaluation domain of the negacyclic NTT mod t. *)
  Ntt64.inverse params.Params.batching coeffs;
  { params; coeffs; slots = Some (Array.map (Mod64.reduce tp) slots) }

let to_slots ?counters t =
  match t.slots with
  | Some s -> Array.copy s
  | None ->
    record_slot_op counters Util.Counters.Op_slot_unpack;
    let s = Array.copy t.coeffs in
    Ntt64.forward t.params.Params.batching s;
    t.slots <- Some s;
    Array.copy s

let constant params v =
  let tp = params.Params.t_plain in
  let v = Mod64.reduce tp v in
  let coeffs = Array.make params.Params.n 0L in
  coeffs.(0) <- v;
  { params; coeffs; slots = Some (Array.make params.Params.n v) }

let zero params = constant params 0L

let slot t i =
  match t.slots with
  | Some s -> s.(i)
  | None ->
    ignore (to_slots t);
    (match t.slots with Some s -> s.(i) | None -> assert false)

let lift2 name f a b =
  if a.params != b.params then invalid_arg (name ^ ": parameter mismatch");
  let tp = a.params.Params.t_plain in
  { params = a.params;
    coeffs = Array.init (Array.length a.coeffs) (fun i -> f tp a.coeffs.(i) b.coeffs.(i));
    slots = None }

let add a b = lift2 "Plaintext.add" Mod64.add a b
let sub a b = lift2 "Plaintext.sub" Mod64.sub a b

let mul a b =
  (* Slot-wise product = evaluation-domain pointwise product. *)
  if a.params != b.params then invalid_arg "Plaintext.mul: parameter mismatch";
  let sa = to_slots a and sb = to_slots b in
  let tp = a.params.Params.t_plain in
  of_slots a.params (Array.init (Array.length sa) (fun i -> Mod64.mul tp sa.(i) sb.(i)))

let scale a s =
  let tp = a.params.Params.t_plain in
  let s = Mod64.reduce tp s in
  { params = a.params;
    coeffs = Array.map (fun c -> Mod64.mul tp c s) a.coeffs;
    slots = None }

let substitute t ~k =
  let n = t.params.Params.n in
  let k = ((k mod (2 * n)) + (2 * n)) mod (2 * n) in
  if k land 1 = 0 then invalid_arg "Plaintext.substitute: k must be odd";
  let tp = t.params.Params.t_plain in
  let out = Array.make n 0L in
  Array.iteri
    (fun j c ->
      let e = j * k mod (2 * n) in
      if e < n then out.(e) <- c else out.(e - n) <- Mod64.neg tp c)
    t.coeffs;
  { params = t.params; coeffs = out; slots = None }

let equal a b = a.params == b.params && a.coeffs = b.coeffs

let pp ppf t =
  let s = to_slots t in
  let shown = Stdlib.min 8 (Array.length s) in
  Format.fprintf ppf "@[<h>slots[%d]=" (Array.length s);
  for i = 0 to shown - 1 do
    Format.fprintf ppf "%Ld%s" s.(i) (if i < shown - 1 then ", " else "")
  done;
  if Array.length s > shown then Format.fprintf ppf ", …";
  Format.fprintf ppf "@]"
