(** BGV plaintexts: polynomials over Z_t with SIMD slot packing.

    Because the plaintext prime satisfies [t ≡ 1 (mod 2n)], the plaintext
    ring Z_t[x]/(x^n+1) splits into [n] independent Z_t slots (the
    Smart–Vercauteren packing the paper's HElib instantiation relies on).
    [of_slots]/[to_slots] move between the slot view and the coefficient
    view via a negacyclic NTT mod [t]; all homomorphic operations then act
    slot-wise.  The Apriori extension packs one transaction per slot,
    which is what makes a candidate's support cost [|S| - 1] ciphertext
    multiplications in total.  The k-NN protocol uses both views: the
    per-point layouts put one point per ciphertext in the coefficient
    view, while the slot-packed prepared path (DESIGN §2 "Packing
    layout") packs one database point per slot, dimension-major —
    Party A's per-query permutation needs no Galois key material there
    because it is applied to the plaintext columns at pack time, and
    Party B slot-unpacks decrypted batches with [to_slots]. *)

type t
(** Immutable plaintext polynomial attached to a parameter set. *)

val params : t -> Params.t

val of_coeffs : Params.t -> int64 array -> t
(** Coefficient-embedding constructor; values are reduced mod [t].
    Length must be [Params.slot_count]. *)

val to_coeffs : t -> int64 array

val of_slots : ?counters:Util.Counters.t -> Params.t -> int64 array -> t
(** Packs [n] slot values (reduced mod [t]) — one negacyclic inverse
    NTT mod [t], recorded in the cost ledger as
    {!Util.Counters.Op_slot_pack} when [counters] is given. *)

val to_slots : ?counters:Util.Counters.t -> t -> int64 array
(** Slot view of the plaintext.  The forward NTT mod [t] runs (and is
    recorded as {!Util.Counters.Op_slot_unpack}) only when the slot view
    is not already cached; repeated calls are free and unrecorded. *)

val constant : Params.t -> int64 -> t
(** The constant polynomial, i.e. the same value in every slot. *)

val zero : Params.t -> t

val slot : t -> int -> int64
(** [slot pt i] = [to_slots pt].(i), without converting the whole array
    twice on repeated calls (conversion is cached). *)

(** Reference slot-wise arithmetic (used by tests and by Party B's
    plaintext-side computations): *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : t -> int64 -> t

val substitute : t -> k:int -> t
(** The Galois map [m(x) -> m(x^k)] for odd [k] — the plaintext-side
    image of {!Bgv.apply_galois}, which permutes the slots. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
