(** BGV parameter sets.

    A parameter set fixes the ring degree [n], the plaintext prime [t]
    (chosen ≡ 1 mod 2n so that CRT batching gives [n] independent Z_t
    slots per ciphertext), the RNS modulus chain (NTT primes below 2^31),
    the centered-binomial noise width and the relinearisation digit size.

    The named presets trade ring size against speed:
    - [toy]: fast unit-test parameters (n = 256);
    - [bench_small], [bench]: the scaling-experiment parameters — the
      shape of every figure (linearity in n, d, k) is preserved while a
      full sweep stays tractable in OCaml;
    - [secure]: production-shaped ring (n = 8192) whose estimated RLWE
      security [security_bits] is ≈ 128, matching the paper's setting.

    Preset construction performs prime searches; results are memoised.

    The planner ([Secure_knn.Planner]) enumerates many candidate specs;
    for that, [probe] runs only the prime searches (cheap) and raises the
    structured [Infeasible] when no such parameter set exists, while
    [of_probe] pays for the NTT/CRT table construction only for specs
    that survive pruning.  [create = of_probe % probe], so a realized set
    always matches the probe that admitted it. *)

type t = private {
  name : string;
  n : int;                    (** ring degree, power of two *)
  t_plain : int64;            (** plaintext prime, ≡ 1 mod 2n *)
  moduli : int array;         (** RNS chain, most significant first *)
  eta : int;                  (** CBD noise parameter *)
  relin_digit_bits : int;     (** base-2^w key-switching decomposition *)
  ring : Rq.context;
  batching : Ntt64.table;
}

(** Why a spec admits no parameter set.  Distinct from [Invalid_argument]
    (programmer errors: non-power-of-two [n], [plain_bits > 50]): these
    are legitimate points of a parameter search that happen to be empty. *)
type infeasibility =
  | No_plain_prime of { n : int; plain_bits : int }
      (** no prime ≡ 1 mod 2n below [2^plain_bits] *)
  | Prime_bits_too_large of { prime_bits : int; limit : int }
      (** chain primes above the Barrett/Shoup kernel bound *)
  | Chain_exhausted of { n : int; prime_bits : int; chain_len : int }
      (** fewer than [chain_len] NTT primes in the [prime_bits] window *)

exception Infeasible of infeasibility

val describe_infeasibility : infeasibility -> string

type probe = private {
  pr_name : string;
  pr_n : int;
  pr_t_plain : int64;
  pr_moduli : int array;
  pr_eta : int;
  pr_relin_digit_bits : int;
}
(** The prime-search result alone: everything [create] decides, minus the
    ring/batching tables it builds. *)

val probe :
  ?eta:int ->
  ?relin_digit_bits:int ->
  name:string ->
  n:int ->
  plain_bits:int ->
  prime_bits:int ->
  chain_len:int ->
  unit ->
  probe
(** Searches for the plaintext prime (largest ≡ 1 mod 2n below
    [2^plain_bits]) and [chain_len] distinct NTT primes of [prime_bits]
    bits (skipping a collision with the plaintext prime).  Raises
    [Infeasible] when the spec admits no parameter set, [Invalid_argument]
    on programmer errors ([plain_bits > 50], the fast 64-bit multiplier
    bound; [n] not a power of two; [chain_len < 1]). *)

val of_probe : probe -> t
(** Builds the CRT ring context and batching NTT tables — the expensive
    part of [create]. *)

val probe_of_t : t -> probe
(** The probe a realized set came from (inverse of [of_probe]). *)

val create :
  ?eta:int ->
  ?relin_digit_bits:int ->
  name:string ->
  n:int ->
  plain_bits:int ->
  prime_bits:int ->
  chain_len:int ->
  unit ->
  t
(** [of_probe (probe ...)].  Raises as [probe] does. *)

val toy : unit -> t
val bench_small : unit -> t
val bench : unit -> t
val secure : unit -> t

val chain_length : t -> int
val log2_q : t -> float
(** Bit size of the full ciphertext modulus. *)

val probe_log2_q : probe -> float
(** Same, from a probe's chain. *)

val security_bits_for : n:int -> log2_q:float -> float
(** RLWE security estimate by piecewise interpolation (linear in log2 n)
    over the homomorphicencryption.org standard table rows
    (ternary secret, classical attacks; n ∈ {1024 .. 32768}), extended
    geometrically outside the table range.  Monotone: decreasing in
    [log2_q] at fixed [n], increasing in [n] at fixed [log2_q].  An
    estimate for reporting and planner pruning, not a guarantee. *)

val security_bits : t -> float
(** [security_bits_for] at the set's own [n] and [log2_q]. *)

val slot_count : t -> int
(** Number of CRT plaintext slots (= [n]). *)

val pp : Format.formatter -> t -> unit
