(** The leveled BGV somewhat-homomorphic encryption scheme.

    This is the paper's underlying (S)HE — the "LFHE" instantiated by
    HElib — rebuilt from its definition (Brakerski–Gentry–Vaikuntanathan,
    ITCS 2012) on the RNS/NTT ring substrate of {!Rq}:

    - secret key: ternary [s]; public key: RLWE pair [(b, a)] with
      [b + a·s = t·e];
    - encryption of plaintext polynomial [m]: [(b·u + t·e1 + m, a·u + t·e2)],
      so that [c0 + c1·s = m + t·E] for small [E];
    - homomorphic addition/subtraction componentwise; multiplication by
      tensoring (ciphertext degree grows), with optional relinearisation
      back to degree 1 via base-2^w key switching;
    - leveled structure: {!modswitch} divides the ciphertext modulus by
      the last RNS prime, scaling the noise down proportionally, which is
      what keeps noise growth linear rather than exponential in depth.

    Each ciphertext tracks a conservative noise bound (in bits) and the
    plaintext scale factor accumulated by modulus switching; [decrypt]
    undoes the factor, so callers never see it.

    Every operation optionally records into a {!Util.Counters.t} — both
    the coarse Table 1 event classes and the op-kind × level cost
    ledger ({!Util.Counters.op}), including the whole-polynomial NTT
    passes each composite operation triggers.  The Table 1 reproduction
    measures those counts on live protocol runs, and
    {!Sknn_obs.Cost_model} replays the same accounting analytically. *)

type secret_key
type public_key
type relin_key
type galois_key
type keys = { sk : secret_key; pk : public_key; rlk : relin_key }
type ct

exception Decryption_failure of string
(** Raised by {!decrypt} / {!decrypt_coeff0} when the tracked noise
    bound shows the ciphertext is undecryptable (budget exhausted).
    Distinct from [Failure] so callers — the CLI dumps the flight
    recorder on it — can catch exactly this condition. *)

(** {1 Keys} *)

val keygen : ?counters:Util.Counters.t -> Util.Rng.t -> Params.t -> keys
val params_of_sk : secret_key -> Params.t
val params_of_pk : public_key -> Params.t

(** {1 Encryption / decryption} *)

(** [encrypt ?level rng pk pt] encrypts under the public key.  [?level]
    encrypts directly at a truncated modulus level (1 = last prime
    only); cheaper when the ciphertext is destined for shallow
    computation, as with Party B's indicator vectors. *)
val encrypt :
  ?counters:Util.Counters.t -> ?level:int -> Util.Rng.t -> public_key -> Plaintext.t -> ct
val decrypt : ?counters:Util.Counters.t -> secret_key -> ct -> Plaintext.t
(** @raise Decryption_failure if the tracked noise bound shows the
    ciphertext is undecryptable (budget exhausted). *)

val decrypt_coeff0 : ?counters:Util.Counters.t -> secret_key -> ct -> int64
(** Decrypts only the constant coefficient of the plaintext polynomial.
    Party B's Find-Neighbours phase reads exactly one scalar per masked
    distance, and the constant coefficient of a negacyclic transform is
    recoverable as [n^{-1} · Σ evaluations], so this skips the inverse
    NTTs and the full CRT lift — an order of magnitude cheaper than
    {!decrypt} at protocol scale. *)

(** {1 Homomorphic evaluation} *)

val add : ?counters:Util.Counters.t -> ct -> ct -> ct
val sub : ?counters:Util.Counters.t -> ct -> ct -> ct
val neg : ct -> ct
val add_plain : ?counters:Util.Counters.t -> ct -> Plaintext.t -> ct
val add_const : ?counters:Util.Counters.t -> ct -> int64 -> ct
val mul_plain : ?counters:Util.Counters.t -> ct -> Plaintext.t -> ct
val mul_scalar : ?counters:Util.Counters.t -> ct -> int64 -> ct

val mul :
  ?counters:Util.Counters.t -> ?rlk:relin_key -> ?rescale:bool -> ct -> ct -> ct
(** Tensor product.  Levels are aligned automatically (the deeper operand
    wins).  If [rlk] is given and the result has degree 2 it is
    relinearised back to degree 1; afterwards, unless [rescale:false],
    the modulus chain is switched down while that reduces the noise
    bound.  Without [rlk] the ciphertext degree grows — decryption still
    works at any degree (at higher cost), which is the "no-relin"
    ablation of DESIGN.md. *)

val mul_sum :
  ?counters:Util.Counters.t -> ?jobs:int -> ?rlk:relin_key -> ct array -> ct array -> ct
(** [mul_sum a b] is the inner product [Σᵢ aᵢ·bᵢ] with no rescaling,
    counting [n] {!Util.Counters.Hom_mul} and [n-1]
    {!Util.Counters.Hom_add} events — exactly what the equivalent
    [mul ~rescale:false] / [add] fold would record.  All operands are
    first aligned to their common minimum level.  Without [rlk] the
    products are tensored straight into a shared accumulator
    ({!Rq.mul_add_into}), skipping one intermediate [Rq] allocation per
    term; [?jobs] splits the terms across that many domains
    ({!Util.Pool}).  Residue addition is exact modular arithmetic and
    the noise bound is folded in term order, so the result is
    bit-identical for every job count.  With [rlk] (or mixed factors)
    it falls back to the sequential mul-then-add fold.
    @raise Invalid_argument on empty or length-mismatched inputs. *)

val rerandomize :
  ?counters:Util.Counters.t -> Util.Rng.t -> public_key -> ct -> ct
(** Adds a fresh encryption of zero at the ciphertext's level: same
    plaintext, fresh randomness. *)

val relinearize : ?counters:Util.Counters.t -> relin_key -> ct -> ct
(** Degree-2 → degree-1. @raise Invalid_argument on other degrees. *)

val galois_keygen :
  ?counters:Util.Counters.t -> Util.Rng.t -> secret_key -> elt:int -> galois_key
(** Key material for the Galois automorphism [x -> x^elt] (odd [elt],
    taken mod 2n).  [elt = 3^r] rotates the batching slots within their
    two hypercolumns by [r]; [elt = 2n - 1] is the conjugation that
    swaps the hypercolumns — the Smart–Vercauteren slot-manipulation
    toolkit of the paper's HElib instantiation. *)

val galois_elt : galois_key -> int

val apply_galois : ?counters:Util.Counters.t -> galois_key -> ct -> ct
(** Homomorphically maps an encryption of [m(x)] to an encryption of
    [m(x^elt)], i.e. permutes the plaintext slots (see
    {!Plaintext.substitute} for the plaintext-side image).  Degree-1
    ciphertexts only; costs one key switch. *)

val slot_sum_keys :
  ?counters:Util.Counters.t -> Util.Rng.t -> secret_key -> galois_key list
(** The log2(n) Galois keys {!sum_slots} needs. *)

val sum_slots : ?counters:Util.Counters.t -> galois_key list -> ct -> ct
(** Rotate-and-sum: returns a ciphertext whose every slot holds the sum
    of all the input's slots — log2(n) automorphisms and additions (the
    standard HElib "total sums" primitive). *)

val modswitch : ?counters:Util.Counters.t -> ct -> ct
(** Drop the last active prime, dividing noise by it (plus the standard
    additive rounding term). @raise Invalid_argument at level 1. *)

val rescale_to_floor : ?counters:Util.Counters.t -> ct -> ct
(** Apply {!modswitch} while it strictly reduces the noise bound. *)

val truncate_to_level : ?counters:Util.Counters.t -> ct -> int -> ct
(** Cheap level alignment: drop RNS components without rescaling (valid
    because the represented value is far below the smaller modulus).
    With [counters], an actual drop is recorded in the cost ledger as
    {!Util.Counters.Op_level_drop} at the target level; the implicit
    alignments inside {!add}/{!mul}/{!mul_sum} stay unrecorded. *)

val eval_poly :
  ?counters:Util.Counters.t -> ?rlk:relin_key -> coeffs:int64 array -> ct -> ct
(** Horner evaluation of [coeffs.(0) + coeffs.(1)·x + …] at the
    encrypted [x], slot-wise.  This is the protocol's [EvalPoly]. *)

(** {1 Inspection} *)

val degree : ct -> int
(** Number of components minus one; fresh ciphertexts have degree 1. *)

val level : ct -> int
(** Active RNS primes remaining. *)

val noise_bits : ct -> float
(** Conservative bound (bits) on the decryption noise term. *)

val actual_noise_bits : secret_key -> ct -> float
(** Debug oracle: the bit size of the true decryption noise
    [Σ cᵢ·sⁱ mod Q] (centered).  The protocols never call this; the test
    suite uses it to check that {!noise_bits} is a sound upper bound on
    every circuit it runs. *)

val noise_budget_bits : ct -> float
(** [log2 (Q_level / 2) - noise_bits]; decryption is guaranteed while
    positive. *)

val fresh_noise_bits : Params.t -> float
(** The noise bound a fresh encryption starts with — exported so the
    observability layer's forecaster ({!Sknn_obs.Noise_model}) can be
    cross-checked against the scheme's own bookkeeping. *)

val switch_floor_bits : Params.t -> int -> float
(** [switch_floor_bits p d]: additive rounding term of one modulus
    switch at ciphertext degree [d] (same export rationale). *)

val log2_q_at_level : Params.t -> int -> float
(** log2 of the ciphertext modulus with [k] active RNS primes. *)

val byte_size : ct -> int
(** Exact serialised size: [Bytes.length (ct_to_bytes ct)] without
    paying for the encoding (4 bytes per residue coefficient plus a
    40-byte header). *)

val pp_ct : Format.formatter -> ct -> unit

(** {1 Serialisation}

    Binary wire format (little-endian, versioned magic), so the
    simulated parties exchange exactly what real deployments would.
    Decoding validates the magic, the parameter fingerprint and every
    residue range; malformed input raises [Failure]. *)

val ct_to_bytes : ct -> Stdlib.Bytes.t
val ct_of_bytes : Params.t -> Stdlib.Bytes.t -> ct
val pk_to_bytes : public_key -> Stdlib.Bytes.t
val pk_of_bytes : Params.t -> Stdlib.Bytes.t -> public_key
val sk_to_bytes : secret_key -> Stdlib.Bytes.t
val sk_of_bytes : Params.t -> Stdlib.Bytes.t -> secret_key
