module Rng = Util.Rng
module Counters = Util.Counters
module Z = Zint

type secret_key = {
  sk_params : Params.t;
  s_coeffs : int array;
  mutable s_powers : Rq.t list; (* [s^1; s^2; …], Eval domain, full chain *)
  sp_lock : Mutex.t; (* guards s_powers: decryptions may run in parallel *)
}

type public_key = { pk_params : Params.t; pk_b : Rq.t; pk_a : Rq.t }

type relin_key = {
  rk_params : Params.t;
  rk_digit_bits : int;
  rk_rows : (Rq.t * Rq.t) array; (* (b_j, a_j) with b_j + a_j s = t e_j + 2^{jw} s^2 *)
}

type galois_key = {
  gk_params : Params.t;
  gk_elt : int;                  (* the automorphism x -> x^elt, odd mod 2n *)
  gk_digit_bits : int;
  gk_rows : (Rq.t * Rq.t) array; (* b_j + a_j s = t e_j + 2^{jw} s(x^elt) *)
}

type keys = { sk : secret_key; pk : public_key; rlk : relin_key }

type ct = {
  params : Params.t;
  comps : Rq.t array; (* Eval domain invariant; degree = length - 1 *)
  factor : int64;     (* decrypt yields factor * m; undone in decrypt *)
  log_noise : float;  (* bits: conservative bound on |c0 + c1 s + …| *)
}

let record c e = match c with None -> () | Some c -> Counters.record c e

(* Ledger recording: one op-kind × level cell per primary operation,
   plus the whole-polynomial NTT passes it triggers.  Where the number
   of passes depends on a value's current domain, the census uses
   [Rq.needs_transform] so counts stay exact by construction rather
   than by convention. *)
let record_op c op ~level =
  match c with None -> () | Some c -> Counters.record_op c op ~level

let record_op_n c op ~level k =
  match c with None -> () | Some c -> Counters.record_op_n c op ~level k

(* Count the Eval→Coeff pass [rq] would need to present coefficients. *)
let record_inv_census c rq ~level =
  if Rq.needs_transform rq Rq.Coeff then record_op c Counters.Op_ntt_inv ~level

let log2 x = log x /. log 2.0
let log2_add a b =
  let hi = Float.max a b and lo = Float.min a b in
  hi +. log2 (1.0 +. (2.0 ** (lo -. hi)))

let log2_t p = log2 (Int64.to_float p.Params.t_plain)
let log2_n p = log2 (float_of_int p.Params.n)

(* Bound on a fresh ciphertext's |m + t(e·u + e1 + e2·s)|. *)
let fresh_noise_bits p =
  let eta = float_of_int p.Params.eta and n = float_of_int p.Params.n in
  log2_t p +. log2 (0.5 +. (eta *. ((2.0 *. n) +. 1.0)))

(* Additive rounding term of one modulus switch at ciphertext degree d:
   (t/2) * sum_{i<=d} n^i. *)
let switch_floor_bits p d =
  let n = float_of_int p.Params.n in
  let rec sum acc i = if i > d then acc else sum (acc +. (n ** float_of_int i)) (i + 1) in
  log2_t p -. 1.0 +. log2 (sum 0.0 0)

let degree ct = Array.length ct.comps - 1
let level ct = Rq.nprimes ct.comps.(0)

let log2_q_at_level p k =
  let acc = ref 0.0 in
  for i = 0 to k - 1 do
    acc := !acc +. log2 (float_of_int p.Params.moduli.(i))
  done;
  !acc

let noise_bits ct = ct.log_noise
let noise_budget_bits ct = log2_q_at_level ct.params (level ct) -. 1.0 -. ct.log_noise

let header_bytes = 40
let byte_size ct = ((degree ct + 1) * level ct * ct.params.Params.n * 4) + header_bytes

let pp_ct ppf ct =
  Format.fprintf ppf "<ct deg=%d level=%d noise=%.0f budget=%.0f factor=%Ld>"
    (degree ct) (level ct) ct.log_noise (noise_budget_bits ct) ct.factor

let params_of_sk sk = sk.sk_params
let params_of_pk pk = pk.pk_params

(* ------------------------------------------------------------------ *)
(* Key generation                                                      *)
(* ------------------------------------------------------------------ *)

let keygen ?counters rng (p : Params.t) =
  ignore counters;
  let ring = p.Params.ring in
  let full = Array.length p.Params.moduli in
  let n = p.Params.n in
  let s_coeffs = Sampler.ternary_coeffs rng ~n in
  let s = Rq.of_small_coeffs ring ~nprimes:full Rq.Eval s_coeffs in
  let t = p.Params.t_plain in
  let rlwe_pair ~extra =
    (* (b, a) with b + a·s = t·e + extra. *)
    let a = Sampler.uniform rng ring ~nprimes:full in
    let e = Rq.of_small_coeffs ring ~nprimes:full Rq.Eval (Sampler.cbd_coeffs rng ~n ~eta:p.Params.eta) in
    let b = Rq.add (Rq.neg (Rq.mul a s)) (Rq.mul_scalar e t) in
    let b = match extra with None -> b | Some x -> Rq.add b x in
    (b, a)
  in
  let pk_b, pk_a = rlwe_pair ~extra:None in
  let s2 = Rq.mul s s in
  let w = p.Params.relin_digit_bits in
  let q_bits = Z.numbits (Rq.modulus ring ~nprimes:full) in
  let ndigits = (q_bits + w - 1) / w in
  let rk_rows =
    Array.init ndigits (fun j ->
        let gadget = Z.shift_left Z.one (j * w) in
        rlwe_pair ~extra:(Some (Rq.mul_scalar_zint s2 gadget)))
  in
  { sk = { sk_params = p; s_coeffs; s_powers = [ s ]; sp_lock = Mutex.create () };
    pk = { pk_params = p; pk_b; pk_a };
    rlk = { rk_params = p; rk_digit_bits = w; rk_rows } }

let s_power sk i =
  if i < 1 then invalid_arg "Bgv.s_power";
  match i, sk.s_powers with
  | 1, s :: _ -> s (* degree-1 fast path: s itself never changes *)
  | _ ->
    Mutex.protect sk.sp_lock (fun () ->
        let rec extend powers =
          if List.length powers >= i then powers
          else begin
            let top = List.nth powers (List.length powers - 1) in
            let s1 = List.nth powers 0 in
            extend (powers @ [ Rq.mul top s1 ])
          end
        in
        sk.s_powers <- extend sk.s_powers;
        List.nth sk.s_powers (i - 1))

(* c0 + c1·s + c2·s² + … — the decryption dot product, fused into one
   owned accumulator.  Residue addition mod p is exact and commutative,
   so the result is bit-identical to the mul-then-add fold. *)
let sk_dot sk ct =
  let k = level ct in
  if degree ct = 0 then ct.comps.(0)
  else begin
    let acc = Rq.mul ct.comps.(1) (Rq.truncate (s_power sk 1) ~nprimes:k) in
    Rq.add_into acc ct.comps.(0);
    for i = 2 to degree ct do
      Rq.mul_add_into acc ct.comps.(i) (Rq.truncate (s_power sk i) ~nprimes:k)
    done;
    acc
  end

(* ------------------------------------------------------------------ *)
(* Encrypt / decrypt                                                   *)
(* ------------------------------------------------------------------ *)

let encrypt ?counters ?level rng pk pt =
  record counters Counters.Encrypt;
  let p = pk.pk_params in
  if Plaintext.params pt != p then invalid_arg "Bgv.encrypt: parameter mismatch";
  let ring = p.Params.ring in
  let full = Array.length p.Params.moduli in
  let nprimes =
    match level with
    | None -> full
    | Some l ->
      if l < 1 || l > full then invalid_arg "Bgv.encrypt: level out of range";
      l
  in
  record_op counters Counters.Op_encrypt ~level:nprimes;
  (* u, two noise polynomials and m are each embedded Coeff→Eval. *)
  record_op_n counters Counters.Op_ntt_fwd ~level:nprimes 4;
  let n = p.Params.n in
  let t = p.Params.t_plain in
  let u = Rq.of_small_coeffs ring ~nprimes Rq.Eval (Sampler.ternary_coeffs rng ~n) in
  let noise () =
    Rq.mul_scalar
      (Rq.of_small_coeffs ring ~nprimes Rq.Eval (Sampler.cbd_coeffs rng ~n ~eta:p.Params.eta))
      t
  in
  let m = Rq.of_int64_coeffs ring ~nprimes Rq.Eval (Plaintext.to_coeffs pt) in
  let b = Rq.truncate pk.pk_b ~nprimes and a = Rq.truncate pk.pk_a ~nprimes in
  (* The products are freshly owned, so the additions can be in-place. *)
  let c0 = Rq.mul b u in
  Rq.add_into c0 (noise ());
  Rq.add_into c0 m;
  let c1 = Rq.mul a u in
  Rq.add_into c1 (noise ());
  { params = p; comps = [| c0; c1 |]; factor = 1L; log_noise = fresh_noise_bits p }

exception Decryption_failure of string

let check_budget op ct =
  if noise_budget_bits ct <= 0.0 then
    raise
      (Decryption_failure
         (Format.asprintf "Bgv.%s: noise budget exhausted (%a)" op pp_ct ct))

let decrypt ?counters sk ct =
  record counters Counters.Decrypt;
  record_op counters Counters.Op_decrypt ~level:(level ct);
  let p = sk.sk_params in
  check_budget "decrypt" ct;
  let acc = ref (sk_dot sk ct) in
  record_inv_census counters !acc ~level:(level ct);
  let t = p.Params.t_plain in
  let coeffs = Rq.to_zint_coeffs !acc in
  let zt = Z.of_int64 t in
  let f_inv = Mod64.inv t ct.factor in
  let out =
    Array.map
      (fun v ->
        let m =
          Z.to_int_exn
            ((Z.erem v zt)
             [@sknn.allow
               "constant-time: arbitrary-precision reduction mod t is \
                variable-time in the magnitude of the lifted coefficient \
                (plaintext + t*noise); a production port would use a \
                constant-time Barrett reduction here"])
        in
        Mod64.mul t (Int64.of_int m) f_inv)
      coeffs
  in
  Plaintext.of_coeffs p out

let decrypt_coeff0 ?counters sk ct =
  record counters Counters.Decrypt;
  (* Reads the evaluation-domain residues directly: no NTT pass. *)
  record_op counters Counters.Op_decrypt ~level:(level ct);
  let p = sk.sk_params in
  check_budget "decrypt_coeff0" ct;
  let acc = ref (sk_dot sk ct) in
  (* Constant coefficient of the negacyclic inverse transform:
     a_0 = n^{-1} * sum of the evaluation-domain values (the odd psi
     powers sum to zero except at j = 0). *)
  let k = level ct in
  let n = p.Params.n in
  let moduli = p.Params.moduli in
  let residues =
    Array.init k (fun i ->
        let pi = moduli.(i) in
        let comp = Rq.unsafe_component !acc i in
        let s = ref 0 in
        for j = 0 to n - 1 do
          (* Branchless conditional subtract: after the add, s is in
             [0, 2*pi); pi - 1 - s is negative exactly when s >= pi, so
             the arithmetic shift yields an all-ones mask selecting pi.
             Keeps the accumulation loop free of secret-dependent
             branches (pi < 2^31, so no overflow on 63-bit ints). *)
          s := !s + comp.(j);
          s := !s - (pi land ((pi - 1 - !s) asr 62))
        done;
        let pi64 = Int64.of_int pi in
        let n_inv = Mod64.inv pi64 (Int64.of_int n) in
        Int64.to_int (Mod64.mul pi64 (Int64.of_int !s) n_inv))
  in
  let b = Rq.basis p.Params.ring ~nprimes:k in
  let v = Crt.lift_centered b residues in
  let t = p.Params.t_plain in
  let m =
    Z.to_int_exn
      ((Z.erem v (Z.of_int64 t))
       [@sknn.allow
         "constant-time: arbitrary-precision reduction mod t is \
          variable-time in the magnitude of the lifted coefficient; same \
          accepted site as Bgv.decrypt, fixed by a constant-time Barrett \
          reduction in a production port"])
  in
  Mod64.mul t (Int64.of_int m) (Mod64.inv t ct.factor)

(* ------------------------------------------------------------------ *)
(* Level and factor management                                         *)
(* ------------------------------------------------------------------ *)

let truncate_to_level ?counters ct k =
  if k > level ct then invalid_arg "Bgv.truncate_to_level: cannot raise level";
  if k = level ct then ct
  else begin
    record_op counters Counters.Op_level_drop ~level:k;
    { ct with comps = Array.map (fun c -> Rq.truncate c ~nprimes:k) ct.comps }
  end

let align a b =
  let k = Stdlib.min (level a) (level b) in
  (truncate_to_level a k, truncate_to_level b k)

let centered_magnitude t v =
  let c = Mod64.centered t (Mod64.reduce t v) in
  Float.max 1.0 (Int64.to_float (Int64.abs c))

(* Multiply all components by a scalar (changes the raw plaintext). *)
let scale_raw ct v =
  let t = ct.params.Params.t_plain in
  { ct with
    comps = Array.map (fun c -> Rq.mul_scalar c v) ct.comps;
    log_noise = ct.log_noise +. log2 (centered_magnitude t v) }

let match_factor target ct =
  if Int64.equal ct.factor target then ct
  else begin
    let t = ct.params.Params.t_plain in
    let adjust = Mod64.mul t target (Mod64.inv t ct.factor) in
    let ct = scale_raw ct adjust in
    { ct with factor = target }
  end

(* ------------------------------------------------------------------ *)
(* Linear operations                                                   *)
(* ------------------------------------------------------------------ *)

let pad comps k ring nprimes =
  (* Extend a component array with zeros up to k entries. *)
  Array.init k (fun i ->
      if i < Array.length comps then comps.(i)
      else Rq.zero ring ~nprimes Rq.Eval)

let add2 op f a b =
  if a.params != b.params then invalid_arg (op ^ ": parameter mismatch");
  let a, b = align a b in
  let b = match_factor a.factor b in
  let k = Stdlib.max (Array.length a.comps) (Array.length b.comps) in
  let ring = a.params.Params.ring in
  let ca = pad a.comps k ring (level a) and cb = pad b.comps k ring (level b) in
  { params = a.params;
    comps = Array.init k (fun i -> f ca.(i) cb.(i));
    factor = a.factor;
    log_noise = log2_add a.log_noise b.log_noise }

let add ?counters a b =
  record counters Counters.Hom_add;
  record_op counters Counters.Op_ct_add ~level:(Stdlib.min (level a) (level b));
  add2 "Bgv.add" Rq.add a b

let sub ?counters a b =
  record counters Counters.Hom_add;
  record_op counters Counters.Op_ct_add ~level:(Stdlib.min (level a) (level b));
  add2 "Bgv.sub" Rq.sub a b

let neg ct = { ct with comps = Array.map Rq.neg ct.comps }

let plain_to_rq ct pt =
  Rq.of_int64_coeffs ct.params.Params.ring ~nprimes:(level ct) Rq.Eval
    (Plaintext.to_coeffs pt)

let add_plain ?counters ct pt =
  record counters Counters.Hom_add;
  record_op counters Counters.Op_ct_add ~level:(level ct);
  (* plain_to_rq embeds the addend Coeff→Eval at the ciphertext level. *)
  record_op counters Counters.Op_ntt_fwd ~level:(level ct);
  if Plaintext.params pt != ct.params then invalid_arg "Bgv.add_plain: parameter mismatch";
  (* The stored raw plaintext is factor·m, so scale the addend too. *)
  let pt = Plaintext.scale pt ct.factor in
  let comps = Array.copy ct.comps in
  comps.(0) <- Rq.add comps.(0) (plain_to_rq ct pt);
  { ct with comps; log_noise = log2_add ct.log_noise (log2_t ct.params -. 1.0) }

let add_const ?counters ct v =
  add_plain ?counters ct (Plaintext.constant ct.params v)

let mul_plain ?counters ct pt =
  record counters Counters.Hom_mul_plain;
  record_op counters Counters.Op_mul_plain ~level:(level ct);
  record_op counters Counters.Op_ntt_fwd ~level:(level ct);
  if Plaintext.params pt != ct.params then invalid_arg "Bgv.mul_plain: parameter mismatch";
  let m = plain_to_rq ct pt in
  { ct with
    comps = Array.map (fun c -> Rq.mul c m) ct.comps;
    log_noise = ct.log_noise +. log2_n ct.params +. log2_t ct.params -. 1.0 }

let mul_scalar ?counters ct v =
  record counters Counters.Hom_mul_plain;
  (* Pointwise scalar pass over the residues: no plaintext embed. *)
  record_op counters Counters.Op_mul_plain ~level:(level ct);
  scale_raw ct v

(* ------------------------------------------------------------------ *)
(* Modulus switching                                                   *)
(* ------------------------------------------------------------------ *)

let modswitch ?counters ct =
  record counters Counters.Hom_modswitch;
  let k = level ct in
  if k <= 1 then invalid_arg "Bgv.modswitch: already at the last level";
  record_op counters Counters.Op_modswitch ~level:k;
  (* Each component round-trips through the coefficient domain: one
     inverse pass at the source level (when it is not already Coeff)
     and one forward pass at the target level. *)
  Array.iter (fun c -> record_inv_census counters c ~level:k) ct.comps;
  record_op_n counters Counters.Op_ntt_fwd ~level:(k - 1) (Array.length ct.comps);
  let p = ct.params in
  let moduli = p.Params.moduli in
  let drop = moduli.(k - 1) in
  let drop64 = Int64.of_int drop in
  let t = p.Params.t_plain in
  let t_inv_drop = Int64.to_int (Mod64.inv drop64 (Mod64.reduce drop64 t)) in
  let half_drop = drop / 2 in
  let n = p.Params.n in
  let t_mod = Array.init (k - 1) (fun i -> Int64.to_int (Int64.rem t (Int64.of_int moduli.(i)))) in
  let drop_inv =
    Array.init (k - 1) (fun i ->
        let pi = Int64.of_int moduli.(i) in
        Int64.to_int (Mod64.inv pi (Mod64.reduce pi drop64)))
  in
  let switch_component rq =
    Rq.with_coeff_components rq (fun cc ->
        let clast = cc.(k - 1) in
        (* w ≡ c·t^{-1} (mod drop), centered so that |t·w| stays small. *)
        Util.Arena.with_array n (fun w ->
            for j = 0 to n - 1 do
              let x = clast.(j) * t_inv_drop mod drop in
              w.(j) <- (if x > half_drop then x - drop else x)
            done;
            let comps =
              Array.init (k - 1) (fun i ->
                  let pi = moduli.(i) in
                  let ci = cc.(i) in
                  let tm = t_mod.(i) and dinv = drop_inv.(i) in
                  let br = Ntt.barrett (Rq.table (Rq.ctx rq) i) in
                  Array.init n (fun j ->
                      let x = (ci.(j) - (tm * w.(j))) mod pi in
                      let x = if x < 0 then x + pi else x in
                      Barrett.mul br x dinv))
            in
            Rq.to_eval_into (Rq.of_components p.Params.ring Rq.Coeff comps)))
  in
  let comps = Array.map switch_component ct.comps in
  let factor = Mod64.mul t ct.factor (Mod64.inv t (Mod64.reduce t drop64)) in
  let log_noise =
    log2_add
      (ct.log_noise -. log2 (float_of_int drop))
      (switch_floor_bits p (degree ct))
  in
  { ct with comps; factor; log_noise }

let rescale_to_floor ?counters ct =
  let rec go ct =
    if level ct <= 1 then ct
    else begin
      let drop = ct.params.Params.moduli.(level ct - 1) in
      let predicted =
        log2_add
          (ct.log_noise -. log2 (float_of_int drop))
          (switch_floor_bits ct.params (degree ct))
      in
      if predicted < ct.log_noise -. 0.5 then go (modswitch ?counters ct) else ct
    end
  in
  go ct

(* ------------------------------------------------------------------ *)
(* Multiplication and relinearisation                                  *)
(* ------------------------------------------------------------------ *)

(* Digit-decomposition key switching, shared by relinearisation and the
   Galois automorphisms: given a target polynomial and gadget rows with
   b_j + a_j·s = t·e_j + 2^{jw}·S, returns (delta0, delta1, noise_bits)
   such that delta0 + delta1·s = target·S + (t · small). *)
let key_switch_digits ?counters p ~w ~rows ~level:k target =
  let ring = p.Params.ring in
  let n = p.Params.n in
  let q_bits = Z.numbits (Rq.modulus ring ~nprimes:k) in
  let ndigits = Stdlib.min (Array.length rows) ((q_bits + w - 1) / w) in
  record_inv_census counters target ~level:k;
  record_op_n counters Counters.Op_ntt_fwd ~level:k ndigits;
  let coeffs = Rq.to_zint_coeffs target in
  (* Signed base-2^w digits of the centered coefficients. *)
  let digit_mask = Z.pred (Z.shift_left Z.one w) in
  let digit_polys =
    Array.init ndigits (fun j ->
        let digits =
          Array.init n (fun idx ->
              let v = coeffs.(idx) in
              let m = Z.shift_right (Z.abs v) (j * w) in
              let d = Z.to_int_exn (Z.erem m (Z.succ digit_mask)) in
              if Z.sign v < 0 then -d else d)
        in
        Rq.of_small_coeffs ring ~nprimes:k Rq.Eval digits)
  in
  let d0 = Rq.zero ring ~nprimes:k Rq.Eval and d1 = Rq.zero ring ~nprimes:k Rq.Eval in
  for j = 0 to ndigits - 1 do
    let b_j, a_j = rows.(j) in
    Rq.mul_add_into d0 digit_polys.(j) (Rq.truncate b_j ~nprimes:k);
    Rq.mul_add_into d1 digit_polys.(j) (Rq.truncate a_j ~nprimes:k)
  done;
  let added =
    (* t * ndigits * n * 2^w * eta *)
    log2_t p +. log2 (float_of_int ndigits) +. log2_n p
    +. float_of_int w +. log2 (float_of_int p.Params.eta)
  in
  (d0, d1, added)

let relinearize ?counters rlk ct =
  record counters Counters.Hom_relin;
  if degree ct <> 2 then invalid_arg "Bgv.relinearize: degree <> 2";
  if rlk.rk_params != ct.params then invalid_arg "Bgv.relinearize: parameter mismatch";
  record_op counters Counters.Op_key_switch ~level:(level ct);
  let p = ct.params in
  let d0, d1, added =
    key_switch_digits ?counters p ~w:rlk.rk_digit_bits ~rows:rlk.rk_rows ~level:(level ct)
      ct.comps.(2)
  in
  { ct with
    comps = [| Rq.add ct.comps.(0) d0; Rq.add ct.comps.(1) d1 |];
    log_noise = log2_add ct.log_noise added }

let mul ?counters ?rlk ?(rescale = true) a b =
  record counters Counters.Hom_mul;
  record_op counters Counters.Op_ct_mul ~level:(Stdlib.min (level a) (level b));
  if a.params != b.params then invalid_arg "Bgv.mul: parameter mismatch";
  let a, b = align a b in
  let da = Array.length a.comps and db = Array.length b.comps in
  let ring = a.params.Params.ring in
  let lvl = level a in
  (* Tensor straight into owned Eval accumulators: no intermediate
     product or sum values, and the same exact residues as before. *)
  let comps = Array.init (da + db - 1) (fun _ -> Rq.zero ring ~nprimes:lvl Rq.Eval) in
  for i = 0 to da - 1 do
    for j = 0 to db - 1 do
      Rq.mul_add_into comps.(i + j) a.comps.(i) b.comps.(j)
    done
  done;
  let t = a.params.Params.t_plain in
  let ct =
    { params = a.params;
      comps;
      factor = Mod64.mul t a.factor b.factor;
      log_noise = log2_n a.params +. a.log_noise +. b.log_noise }
  in
  let ct =
    match rlk with
    | Some rlk when degree ct = 2 -> relinearize ?counters rlk ct
    | Some _ | None -> ct
  in
  if rescale then rescale_to_floor ?counters ct else ct

(* ------------------------------------------------------------------ *)
(* Fused inner products                                                *)
(* ------------------------------------------------------------------ *)

let record_n c e k = match c with None -> () | Some c -> Counters.record_n c e k

(* Σᵢ aᵢ·bᵢ without relinearisation or rescaling between terms.  The
   fused path tensors each pair directly into a shared accumulator
   (Rq.mul_add_into), cutting the intermediate Rq allocations the
   mul-then-add fold pays per term — these are the two hottest loops of
   the protocol (Compute-Distances' per-coordinate sum and Return-kNN's
   row selection).  Chunks may run on separate domains: residue addition
   mod p is associative and commutative, so the components are
   bit-identical for every job count, and the noise bound is folded
   sequentially in term order for the same reason. *)
let mul_sum ?counters ?jobs ?rlk a b =
  let m = Array.length a in
  if m = 0 || Array.length b <> m then invalid_arg "Bgv.mul_sum: empty or mismatched inputs";
  let p = a.(0).params in
  let check c = if c.params != p then invalid_arg "Bgv.mul_sum: parameter mismatch" in
  Array.iter check a;
  Array.iter check b;
  let t = p.Params.t_plain in
  let lvl =
    let mn acc c = Stdlib.min acc (level c) in
    Array.fold_left mn (Array.fold_left mn (level a.(0)) a) b
  in
  let a = Array.map (fun c -> truncate_to_level c lvl) a in
  let b = Array.map (fun c -> truncate_to_level c lvl) b in
  let f0 = Mod64.mul t a.(0).factor b.(0).factor in
  let uniform_factor =
    let ok = ref true in
    for i = 0 to m - 1 do
      if not (Int64.equal (Mod64.mul t a.(i).factor b.(i).factor) f0) then ok := false
    done;
    !ok
  in
  if rlk <> None || not uniform_factor then begin
    (* Relinearisation (or mixed factors) breaks the shared-accumulator
       shape; fall back to the exact mul-then-add sequence. *)
    let acc = ref (mul ?counters ?rlk ~rescale:false a.(0) b.(0)) in
    for i = 1 to m - 1 do
      acc := add ?counters !acc (mul ?counters ?rlk ~rescale:false a.(i) b.(i))
    done;
    !acc
  end
  else begin
    record_n counters Counters.Hom_mul m;
    record_n counters Counters.Hom_add (m - 1);
    record_op_n counters Counters.Op_ct_mul ~level:lvl m;
    record_op_n counters Counters.Op_ct_add ~level:lvl (m - 1);
    let ring = p.Params.ring in
    let width =
      let w = ref 0 in
      for i = 0 to m - 1 do
        w := Stdlib.max !w (Array.length a.(i).comps + Array.length b.(i).comps - 1)
      done;
      !w
    in
    let partials = ref [] in
    ignore
      (Util.Pool.map_local ?jobs
         ~make:(fun () -> Array.init width (fun _ -> Rq.zero ring ~nprimes:lvl Rq.Eval))
         ~merge:(fun acc -> partials := acc :: !partials)
         ~f:(fun acc i () ->
           let ca = a.(i).comps and cb = b.(i).comps in
           for x = 0 to Array.length ca - 1 do
             for y = 0 to Array.length cb - 1 do
               Rq.mul_add_into acc.(x + y) ca.(x) cb.(y)
             done
           done)
         (Array.make m ()));
    let comps =
      match List.rev !partials with
      | [] -> assert false
      | first :: rest ->
        List.fold_left (fun acc part -> Array.map2 Rq.add acc part) first rest
    in
    let log_noise =
      let term i = log2_n p +. a.(i).log_noise +. b.(i).log_noise in
      let acc = ref (term 0) in
      for i = 1 to m - 1 do
        acc := log2_add !acc (term i)
      done;
      !acc
    in
    { params = p; comps; factor = f0; log_noise }
  end

(* ------------------------------------------------------------------ *)
(* Polynomial evaluation (the protocol's EvalPoly)                     *)
(* ------------------------------------------------------------------ *)

let eval_poly ?counters ?rlk ~coeffs ct =
  let d = Array.length coeffs - 1 in
  if d < 0 then invalid_arg "Bgv.eval_poly: empty coefficient list";
  if d = 0 then add_const ?counters (mul_scalar ?counters ct 0L) coeffs.(0)
  else begin
    (* Horner: acc = a_d; acc = acc·x + a_i. *)
    let acc = ref (mul_scalar ?counters ct coeffs.(d)) in
    for i = d - 1 downto 0 do
      if i < d - 1 then begin
        let x = truncate_to_level ct (level !acc) in
        acc := mul ?counters ?rlk !acc x
      end;
      acc := add_const ?counters !acc coeffs.(i)
    done;
    !acc
  end

(* ------------------------------------------------------------------ *)
(* Serialisation                                                       *)
(*                                                                     *)
(* Layout (little-endian):                                             *)
(*   magic(4) n(4) t(8) degree(2) level(2) factor(8) noise(8)          *)
(*   moduli-fingerprint(4) then 4 bytes per residue, component-major.  *)
(* ------------------------------------------------------------------ *)

let ct_magic = 0x42475631l (* "BGV1" *)
let pk_magic = 0x42475650l (* "BGVP" *)
let sk_magic = 0x42475653l (* "BGVS" *)

let moduli_fingerprint p k =
  let acc = ref 0 in
  for i = 0 to k - 1 do
    acc := !acc lxor (p.Params.moduli.(i) * (i + 1))
  done;
  Int32.of_int (!acc land 0x3FFFFFFF)

let put_rq buf rq =
  let rq = Rq.to_eval rq in
  for i = 0 to Rq.nprimes rq - 1 do
    let comp = Rq.unsafe_component rq i in
    Array.iter (fun v -> Buffer.add_int32_le buf (Int32.of_int v)) comp
  done

let decode_error what = failwith (Printf.sprintf "Bgv: malformed %s" what)

type reader = { data : Bytes.t; mutable pos : int }

let need r n what = if r.pos + n > Bytes.length r.data then decode_error (what ^ " (truncated)")

let get_i32 r what =
  need r 4 what;
  let v = Bytes.get_int32_le r.data r.pos in
  r.pos <- r.pos + 4;
  v

let get_i64 r what =
  need r 8 what;
  let v = Bytes.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let get_u16 r what =
  need r 2 what;
  let v = Bytes.get_uint16_le r.data r.pos in
  r.pos <- r.pos + 2;
  v

let get_rq r p ~nprimes what =
  let n = p.Params.n in
  let comps =
    Array.init nprimes (fun i ->
        let m = p.Params.moduli.(i) in
        Array.init n (fun _ ->
            let v = Int32.to_int (get_i32 r what) land 0xFFFFFFFF in
            if v >= m then decode_error (what ^ " (residue out of range)");
            v))
  in
  Rq.of_components p.Params.ring Rq.Eval comps

let ct_to_bytes ct =
  let buf = Buffer.create (byte_size ct) in
  Buffer.add_int32_le buf ct_magic;
  Buffer.add_int32_le buf (Int32.of_int ct.params.Params.n);
  Buffer.add_int64_le buf ct.params.Params.t_plain;
  Buffer.add_uint16_le buf (degree ct);
  Buffer.add_uint16_le buf (level ct);
  Buffer.add_int64_le buf ct.factor;
  Buffer.add_int64_le buf (Int64.bits_of_float ct.log_noise);
  Buffer.add_int32_le buf (moduli_fingerprint ct.params (level ct));
  Array.iter (fun c -> put_rq buf c) ct.comps;
  Buffer.to_bytes buf

let check_params_header r p ~magic what =
  if not (Int32.equal (get_i32 r (what ^ " magic")) magic) then decode_error (what ^ " magic");
  if Int32.to_int (get_i32 r (what ^ " n")) <> p.Params.n then
    decode_error (what ^ " (ring degree mismatch)");
  if not (Int64.equal (get_i64 r (what ^ " t")) p.Params.t_plain) then
    decode_error (what ^ " (plaintext modulus mismatch)")

let ct_of_bytes p data =
  let r = { data; pos = 0 } in
  check_params_header r p ~magic:ct_magic "ciphertext";
  let deg = get_u16 r "degree" in
  let lvl = get_u16 r "level" in
  if lvl < 1 || lvl > Array.length p.Params.moduli then decode_error "ciphertext (level)";
  if deg < 1 || deg > 64 then decode_error "ciphertext (degree)";
  let factor = get_i64 r "factor" in
  let log_noise = Int64.float_of_bits (get_i64 r "noise") in
  if not (Int32.equal (get_i32 r "fingerprint") (moduli_fingerprint p lvl)) then
    decode_error "ciphertext (modulus chain mismatch)";
  let comps = Array.init (deg + 1) (fun _ -> get_rq r p ~nprimes:lvl "ciphertext body") in
  if r.pos <> Bytes.length data then decode_error "ciphertext (trailing bytes)";
  { params = p; comps; factor; log_noise }

let pk_to_bytes pk =
  let p = pk.pk_params in
  let buf = Buffer.create 64 in
  Buffer.add_int32_le buf pk_magic;
  Buffer.add_int32_le buf (Int32.of_int p.Params.n);
  Buffer.add_int64_le buf p.Params.t_plain;
  Buffer.add_int32_le buf (moduli_fingerprint p (Array.length p.Params.moduli));
  put_rq buf pk.pk_b;
  put_rq buf pk.pk_a;
  Buffer.to_bytes buf

let pk_of_bytes p data =
  let r = { data; pos = 0 } in
  check_params_header r p ~magic:pk_magic "public key";
  let full = Array.length p.Params.moduli in
  if not (Int32.equal (get_i32 r "fingerprint") (moduli_fingerprint p full)) then
    decode_error "public key (modulus chain mismatch)";
  let b = get_rq r p ~nprimes:full "public key b" in
  let a = get_rq r p ~nprimes:full "public key a" in
  if r.pos <> Bytes.length data then decode_error "public key (trailing bytes)";
  { pk_params = p; pk_b = b; pk_a = a }

let sk_to_bytes sk =
  let p = sk.sk_params in
  let buf = Buffer.create (p.Params.n + 16) in
  Buffer.add_int32_le buf sk_magic;
  Buffer.add_int32_le buf (Int32.of_int p.Params.n);
  Buffer.add_int64_le buf p.Params.t_plain;
  Array.iter
    (fun c ->
      (* ternary coefficients: one signed byte each *)
      Buffer.add_int8 buf c)
    sk.s_coeffs;
  Buffer.to_bytes buf

let sk_of_bytes p data =
  let r = { data; pos = 0 } in
  check_params_header r p ~magic:sk_magic "secret key";
  need r p.Params.n "secret key body";
  let s_coeffs =
    Array.init p.Params.n (fun i ->
        let v = Bytes.get_int8 data (r.pos + i) in
        if v < -1 || v > 1 then decode_error "secret key (non-ternary coefficient)";
        v)
  in
  r.pos <- r.pos + p.Params.n;
  if r.pos <> Bytes.length data then decode_error "secret key (trailing bytes)";
  let full = Array.length p.Params.moduli in
  { sk_params = p;
    s_coeffs;
    s_powers = [ Rq.of_small_coeffs p.Params.ring ~nprimes:full Rq.Eval s_coeffs ];
    sp_lock = Mutex.create () }


(* ------------------------------------------------------------------ *)
(* Galois automorphisms                                                *)
(* ------------------------------------------------------------------ *)

let galois_elt gk = gk.gk_elt

let galois_keygen ?counters rng sk ~elt =
  ignore counters;
  let p = sk.sk_params in
  let n = p.Params.n in
  let elt = ((elt mod (2 * n)) + (2 * n)) mod (2 * n) in
  if elt land 1 = 0 then invalid_arg "Bgv.galois_keygen: elt must be odd";
  let ring = p.Params.ring in
  let full = Array.length p.Params.moduli in
  let t = p.Params.t_plain in
  let s = Rq.of_small_coeffs ring ~nprimes:full Rq.Eval sk.s_coeffs in
  let s_sigma = Rq.to_eval (Rq.substitute (Rq.of_small_coeffs ring ~nprimes:full Rq.Coeff sk.s_coeffs) ~k:elt) in
  let w = p.Params.relin_digit_bits in
  let q_bits = Z.numbits (Rq.modulus ring ~nprimes:full) in
  let ndigits = (q_bits + w - 1) / w in
  let rows =
    Array.init ndigits (fun j ->
        let gadget = Z.shift_left Z.one (j * w) in
        let a = Sampler.uniform rng ring ~nprimes:full in
        let e =
          Rq.of_small_coeffs ring ~nprimes:full Rq.Eval
            (Sampler.cbd_coeffs rng ~n ~eta:p.Params.eta)
        in
        let b =
          Rq.add
            (Rq.add (Rq.neg (Rq.mul a s)) (Rq.mul_scalar e t))
            (Rq.mul_scalar_zint s_sigma gadget)
        in
        (b, a))
  in
  { gk_params = p; gk_elt = elt; gk_digit_bits = w; gk_rows = rows }

let apply_galois ?counters gk ct =
  record counters Counters.Hom_relin;
  if gk.gk_params != ct.params then invalid_arg "Bgv.apply_galois: parameter mismatch";
  if degree ct <> 1 then invalid_arg "Bgv.apply_galois: degree <> 1 (relinearise first)";
  let k = level ct in
  record_op counters Counters.Op_key_switch ~level:k;
  (* (c0(x^e), c1(x^e)) decrypts under s(x^e); key-switch back to s.
     Each substitution works in the coefficient domain, so every
     component pays an inverse pass (when Eval) and a forward pass. *)
  Array.iter (fun c -> record_inv_census counters c ~level:k) ct.comps;
  record_op_n counters Counters.Op_ntt_fwd ~level:k 2;
  let c0s = Rq.to_eval (Rq.substitute ct.comps.(0) ~k:gk.gk_elt) in
  let c1s = Rq.to_eval (Rq.substitute ct.comps.(1) ~k:gk.gk_elt) in
  let d0, d1, added =
    key_switch_digits ?counters ct.params ~w:gk.gk_digit_bits ~rows:gk.gk_rows ~level:k c1s
  in
  { ct with
    comps = [| Rq.add c0s d0; d1 |];
    log_noise = log2_add ct.log_noise added }

(* Rotate-and-sum slot reduction: the Galois group of the power-of-two
   cyclotomic is <3> x <-1> and acts simply transitively on the slots,
   so folding the ciphertext with sigma_{3^(2^i)} for each i and finally
   with the conjugation sigma_{-1} leaves the total slot sum in every
   slot — log2(n) automorphisms instead of n. *)
let slot_sum_keys ?counters rng sk =
  let n = sk.sk_params.Params.n in
  let m = 2 * n in
  let rec squares acc elt count =
    if count = 0 then List.rev acc
    else squares (elt :: acc) (elt * elt mod m) (count - 1)
  in
  let steps =
    let rec log2i x = if x <= 1 then 0 else 1 + log2i (x / 2) in
    log2i (n / 2)
  in
  let elts = squares [] 3 steps @ [ m - 1 ] in
  List.map (fun elt -> galois_keygen ?counters rng sk ~elt) elts

let sum_slots ?counters gks ct =
  List.fold_left
    (fun acc gk -> add ?counters acc (apply_galois ?counters gk acc))
    ct gks

(* Debug oracle: the true noise magnitude, for validating the tracked
   bound (requires the secret key; never used by the protocols). *)
let actual_noise_bits sk ct =
  let acc = ref (sk_dot sk ct) in
  let coeffs = Rq.to_zint_coeffs !acc in
  let worst =
    Array.fold_left (fun m v -> Stdlib.max m (Z.numbits (Z.abs v))) 0 coeffs
  in
  float_of_int worst

(* Fresh re-randomisation: add an encryption of zero so the ciphertext
   is statistically unlinkable to its history (used when a result must
   be returned to a party that has seen related ciphertexts). *)
let rerandomize ?counters rng pk ct =
  let zero = Plaintext.constant pk.pk_params 0L in
  let z = encrypt ?counters ~level:(level ct) rng pk zero in
  add ?counters ct z
