(** The BFV (Brakerski/Fan–Vercauteren) scale-invariant SHE scheme — a
    second instantiation of the paper's black-box (S)HE interface.

    §3.5 of the paper argues its protocol "uses the (S)HE scheme as a
    black-box, which can be easily instantiated using known (S)HE
    schemes"; this module substantiates that claim with a scheme whose
    plaintext handling is the dual of {!Bgv}'s: messages ride in the
    *high* bits ([Δ·m] with [Δ = ⌊Q/t⌋]) instead of the noise being a
    multiple of [t], so no modulus switching and no plaintext scale
    factors are needed — addition and multiplication are
    scale-invariant.

    Multiplication computes the tensor product exactly over ℤ and
    rescales by [t/Q] with rounding; this implementation does that lift
    literally (exact bignum negacyclic convolution), which is simple and
    verifiably correct but quadratic in the ring degree — BFV here is
    the interchangeability demonstration, {!Bgv} the performance path.
    Shares {!Params} and {!Plaintext} with the BGV side. *)

type secret_key
type public_key
type relin_key
type keys = { sk : secret_key; pk : public_key; rlk : relin_key }
type ct

val keygen : ?counters:Util.Counters.t -> Util.Rng.t -> Params.t -> keys

val encrypt :
  ?counters:Util.Counters.t -> Util.Rng.t -> public_key -> Plaintext.t -> ct
val decrypt : ?counters:Util.Counters.t -> secret_key -> ct -> Plaintext.t

val add : ?counters:Util.Counters.t -> ct -> ct -> ct
val sub : ?counters:Util.Counters.t -> ct -> ct -> ct
val neg : ct -> ct
val add_plain : ?counters:Util.Counters.t -> ct -> Plaintext.t -> ct
val add_const : ?counters:Util.Counters.t -> ct -> int64 -> ct
val mul_plain : ?counters:Util.Counters.t -> ct -> Plaintext.t -> ct
val mul_scalar : ?counters:Util.Counters.t -> ct -> int64 -> ct

val mul : ?counters:Util.Counters.t -> ?rlk:relin_key -> ct -> ct -> ct
(** Tensor, exact integer rescale by t/Q, optional relinearisation of
    the degree-2 result. *)

val relinearize : ?counters:Util.Counters.t -> relin_key -> ct -> ct

val eval_poly :
  ?counters:Util.Counters.t -> ?rlk:relin_key -> coeffs:int64 array -> ct -> ct
(** Horner evaluation, as {!Bgv.eval_poly} — the protocol's EvalPoly
    under the second scheme. *)

val degree : ct -> int
val byte_size : ct -> int
val pp_ct : Format.formatter -> ct -> unit

val invariant_noise_budget_bits : secret_key -> ct -> float
(** Debug oracle: the SEAL-style invariant noise budget
    [log2 q − 1 − log2 max|acc·t − m·q|], positive while decryption is
    guaranteed correct.  BFV carries no tracked per-ciphertext bound, so
    this needs the secret key; tests and post-mortems only. *)
