
type t = {
  name : string;
  n : int;
  t_plain : int64;
  moduli : int array;
  eta : int;
  relin_digit_bits : int;
  ring : Rq.context;
  batching : Ntt64.table;
}

(* Structured infeasibility: the planner enumerates hundreds of candidate
   specs and needs to distinguish "no such parameter set exists" (count it
   and move on) from programmer errors (invalid_arg, which still escape). *)
type infeasibility =
  | No_plain_prime of { n : int; plain_bits : int }
  | Prime_bits_too_large of { prime_bits : int; limit : int }
  | Chain_exhausted of { n : int; prime_bits : int; chain_len : int }

exception Infeasible of infeasibility

let describe_infeasibility = function
  | No_plain_prime { n; plain_bits } ->
    Printf.sprintf "no plaintext prime = 1 mod %d below 2^%d" (2 * n) plain_bits
  | Prime_bits_too_large { prime_bits; limit } ->
    Printf.sprintf "prime_bits %d exceeds the %d-bit kernel bound" prime_bits limit
  | Chain_exhausted { n; prime_bits; chain_len } ->
    Printf.sprintf "fewer than %d NTT primes = 1 mod %d in [2^%d, 2^%d)"
      chain_len (2 * n) (prime_bits - 2) prime_bits

let () =
  Printexc.register_printer (function
    | Infeasible i -> Some ("Params.Infeasible: " ^ describe_infeasibility i)
    | _ -> None)

(* Prime search only — no ring context, no batching tables.  A probe is
   cheap enough to run for every candidate the planner enumerates;
   [create] is [of_probe % probe] so a realized set always matches the
   probe that admitted it. *)
type probe = {
  pr_name : string;
  pr_n : int;
  pr_t_plain : int64;
  pr_moduli : int array;
  pr_eta : int;
  pr_relin_digit_bits : int;
}

let probe ?(eta = 2) ?(relin_digit_bits = 16) ~name ~n ~plain_bits ~prime_bits
    ~chain_len () =
  if plain_bits > 50 then invalid_arg "Params.create: plain_bits > 50";
  if prime_bits > 30 then
    raise (Infeasible (Prime_bits_too_large { prime_bits; limit = 30 }));
  if n < 4 || n land (n - 1) <> 0 then invalid_arg "Params.create: n not a power of two";
  if chain_len < 1 then invalid_arg "Params.create: chain_len < 1";
  let m2n = Int64.of_int (2 * n) in
  let t_plain =
    try Prime64.find_ntt_prime ~congruent_mod:m2n ~bits:plain_bits ()
    with Not_found -> raise (Infeasible (No_plain_prime { n; plain_bits }))
  in
  let chain count =
    try Prime64.ntt_primes ~congruent_mod:m2n ~bits:prime_bits ~count
    with Not_found ->
      raise (Infeasible (Chain_exhausted { n; prime_bits; chain_len }))
  in
  let moduli =
    chain chain_len
    |> List.filter (fun p -> not (Int64.equal p t_plain))
    |> (fun l ->
         if List.length l < chain_len then
           chain (chain_len + 1) |> List.filter (fun p -> not (Int64.equal p t_plain))
         else l)
    |> (fun l -> List.filteri (fun i _ -> i < chain_len) l)
    |> List.map Int64.to_int
    |> Array.of_list
  in
  { pr_name = name; pr_n = n; pr_t_plain = t_plain; pr_moduli = moduli;
    pr_eta = eta; pr_relin_digit_bits = relin_digit_bits }

let of_probe pr =
  let ring = Rq.context ~n:pr.pr_n ~moduli:pr.pr_moduli in
  let batching = Ntt64.make_table ~p:pr.pr_t_plain ~n:pr.pr_n in
  { name = pr.pr_name; n = pr.pr_n; t_plain = pr.pr_t_plain;
    moduli = pr.pr_moduli; eta = pr.pr_eta;
    relin_digit_bits = pr.pr_relin_digit_bits; ring; batching }

let create ?eta ?relin_digit_bits ~name ~n ~plain_bits ~prime_bits ~chain_len () =
  of_probe (probe ?eta ?relin_digit_bits ~name ~n ~plain_bits ~prime_bits ~chain_len ())

let probe_of_t p =
  { pr_name = p.name; pr_n = p.n; pr_t_plain = p.t_plain; pr_moduli = p.moduli;
    pr_eta = p.eta; pr_relin_digit_bits = p.relin_digit_bits }

let memo f =
  let cache = ref None in
  fun () ->
    match !cache with
    | Some v -> v
    | None ->
      let v = f () in
      cache := Some v;
      v

let toy =
  memo (fun () ->
      create ~name:"toy" ~n:256 ~plain_bits:20 ~prime_bits:27 ~chain_len:8 ())

let bench_small =
  memo (fun () ->
      create ~name:"bench_small" ~n:1024 ~plain_bits:40 ~prime_bits:30 ~chain_len:12 ())

let bench =
  memo (fun () ->
      create ~name:"bench" ~n:4096 ~plain_bits:45 ~prime_bits:30 ~chain_len:14 ())

let secure =
  memo (fun () ->
      create ~name:"secure" ~n:8192 ~plain_bits:40 ~prime_bits:30 ~chain_len:7 ())

let chain_length p = Array.length p.moduli

let probe_log2_q pr =
  Array.fold_left (fun acc m -> acc +. log (float_of_int m)) 0.0 pr.pr_moduli
  /. log 2.0

let log2_q p =
  Array.fold_left (fun acc m -> acc +. log (float_of_int m)) 0.0 p.moduli /. log 2.0

(* homomorphicencryption.org standard table (ternary secret, classical
   attacks): the largest log2 q supporting 128-bit security at each ring
   degree.  Interpolated piecewise-linearly in log2 n; extrapolated
   geometrically below n = 1024 (the table's q budget almost exactly
   doubles per doubling of n, so the extension keeps that ratio). *)
let he_std_128 =
  [| (1024, 27.0); (2048, 54.0); (4096, 109.0); (8192, 218.0);
     (16384, 438.0); (32768, 881.0) |]

let log2q_at_128 ~n =
  let ln = log (float_of_int n) /. log 2.0 in
  let rows = Array.length he_std_128 in
  let lx i = log (float_of_int (fst he_std_128.(i))) /. log 2.0 in
  let ly i = snd he_std_128.(i) in
  if ln <= lx 0 then
    (* Geometric extension: halve the q budget per halved n. *)
    ly 0 *. (2.0 ** (ln -. lx 0))
  else if ln >= lx (rows - 1) then
    ly (rows - 1) *. (ly (rows - 1) /. ly (rows - 2)) ** (ln -. lx (rows - 1))
  else begin
    let i = ref 0 in
    while lx (!i + 1) < ln do incr i done;
    let f = (ln -. lx !i) /. (lx (!i + 1) -. lx !i) in
    ly !i +. (f *. (ly (!i + 1) -. ly !i))
  end

let security_bits_for ~n ~log2_q =
  if log2_q <= 0.0 then infinity else 128.0 *. log2q_at_128 ~n /. log2_q

let security_bits p = security_bits_for ~n:p.n ~log2_q:(log2_q p)

let slot_count p = p.n

let pp ppf p =
  Format.fprintf ppf
    "@[<v>%s: n=%d t=%Ld (%d bits) chain=%d primes (log2 q = %.0f) eta=%d w=%d est. security=%.0f bits@]"
    p.name p.n p.t_plain
    (int_of_float (ceil (log (Int64.to_float p.t_plain) /. log 2.0)))
    (chain_length p) (log2_q p) p.eta p.relin_digit_bits (security_bits p)
