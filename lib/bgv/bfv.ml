module Rng = Util.Rng
module Counters = Util.Counters
module Z = Zint

type secret_key = { sk_params : Params.t; s_coeffs : int array }
type public_key = { pk_params : Params.t; pk_b : Rq.t; pk_a : Rq.t }

type relin_key = {
  rk_params : Params.t;
  rk_digit_bits : int;
  rk_rows : (Rq.t * Rq.t) array; (* b_j + a_j s = e_j + 2^{jw} s^2 *)
}

type keys = { sk : secret_key; pk : public_key; rlk : relin_key }

type ct = { params : Params.t; comps : Rq.t array (* Eval, full chain *) }

let record c e = match c with None -> () | Some c -> Counters.record c e

let full p = Array.length p.Params.moduli
let big_q p = Rq.modulus p.Params.ring ~nprimes:(full p)
let delta p = Z.div (big_q p) (Z.of_int64 p.Params.t_plain)

let degree ct = Array.length ct.comps - 1
let byte_size ct = ((degree ct + 1) * full ct.params * ct.params.Params.n * 4) + 40

let pp_ct ppf ct = Format.fprintf ppf "<bfv ct deg=%d n=%d>" (degree ct) ct.params.Params.n

(* ------------------------------------------------------------------ *)

let keygen ?counters rng (p : Params.t) =
  ignore counters;
  let ring = p.Params.ring in
  let nprimes = full p in
  let n = p.Params.n in
  let s_coeffs = Sampler.ternary_coeffs rng ~n in
  let s = Rq.of_small_coeffs ring ~nprimes Rq.Eval s_coeffs in
  let rlwe_pair ~extra =
    (* (b, a) with b + a·s = e + extra — note: no t factor, unlike BGV. *)
    let a = Sampler.uniform rng ring ~nprimes in
    let e =
      Rq.of_small_coeffs ring ~nprimes Rq.Eval (Sampler.cbd_coeffs rng ~n ~eta:p.Params.eta)
    in
    let b = Rq.add (Rq.neg (Rq.mul a s)) e in
    let b = match extra with None -> b | Some x -> Rq.add b x in
    (b, a)
  in
  let pk_b, pk_a = rlwe_pair ~extra:None in
  let s2 = Rq.mul s s in
  let w = p.Params.relin_digit_bits in
  let ndigits = (Z.numbits (big_q p) + w - 1) / w in
  let rk_rows =
    Array.init ndigits (fun j ->
        rlwe_pair ~extra:(Some (Rq.mul_scalar_zint s2 (Z.shift_left Z.one (j * w)))))
  in
  { sk = { sk_params = p; s_coeffs };
    pk = { pk_params = p; pk_b; pk_a };
    rlk = { rk_params = p; rk_digit_bits = w; rk_rows } }

(* ------------------------------------------------------------------ *)

let encrypt ?counters rng pk pt =
  record counters Counters.Encrypt;
  let p = pk.pk_params in
  if Plaintext.params pt != p then invalid_arg "Bfv.encrypt: parameter mismatch";
  let ring = p.Params.ring in
  let nprimes = full p in
  let n = p.Params.n in
  let u = Rq.of_small_coeffs ring ~nprimes Rq.Eval (Sampler.ternary_coeffs rng ~n) in
  let noise () =
    Rq.of_small_coeffs ring ~nprimes Rq.Eval (Sampler.cbd_coeffs rng ~n ~eta:p.Params.eta)
  in
  (* Message in the high bits: Δ·m. *)
  let m = Rq.of_int64_coeffs ring ~nprimes Rq.Eval (Plaintext.to_coeffs pt) in
  let dm = Rq.mul_scalar_zint m (delta p) in
  let c0 = Rq.add (Rq.add (Rq.mul pk.pk_b u) (noise ())) dm in
  let c1 = Rq.add (Rq.mul pk.pk_a u) (noise ()) in
  { params = p; comps = [| c0; c1 |] }

(* round(num · t / q), for centered num of either sign. *)
let scale_round ~t ~q num =
  let twice = Z.add (Z.mul (Z.mul num t) Z.two) q in
  fst (Z.ediv_rem twice (Z.mul q Z.two))

let decrypt ?counters sk ct =
  record counters Counters.Decrypt;
  let p = sk.sk_params in
  let ring = p.Params.ring in
  let nprimes = full p in
  let s = Rq.of_small_coeffs ring ~nprimes Rq.Eval sk.s_coeffs in
  let acc = ref ct.comps.(0) in
  let spow = ref s in
  for i = 1 to degree ct do
    if i > 1 then spow := Rq.mul !spow s;
    acc := Rq.add !acc (Rq.mul ct.comps.(i) !spow)
  done;
  let q = big_q p in
  let t = Z.of_int64 p.Params.t_plain in
  let out =
    Array.map
      (fun v -> Z.to_int_exn (Z.erem (scale_round ~t ~q v) t) |> Int64.of_int)
      (Rq.to_zint_coeffs !acc)
  in
  Plaintext.of_coeffs p out

(* ------------------------------------------------------------------ *)

let check_pair a b op = if a.params != b.params then invalid_arg (op ^ ": parameter mismatch")

let zip_pad f a b =
  let ring = a.params.Params.ring and nprimes = full a.params in
  let k = Stdlib.max (Array.length a.comps) (Array.length b.comps) in
  let get c i = if i < Array.length c.comps then c.comps.(i) else Rq.zero ring ~nprimes Rq.Eval in
  { a with comps = Array.init k (fun i -> f (get a i) (get b i)) }

let add ?counters a b =
  record counters Counters.Hom_add;
  check_pair a b "Bfv.add";
  zip_pad Rq.add a b

let sub ?counters a b =
  record counters Counters.Hom_add;
  check_pair a b "Bfv.sub";
  zip_pad Rq.sub a b

let neg ct = { ct with comps = Array.map Rq.neg ct.comps }

let plain_rq ct pt =
  Rq.of_int64_coeffs ct.params.Params.ring ~nprimes:(full ct.params) Rq.Eval
    (Plaintext.to_coeffs pt)

let add_plain ?counters ct pt =
  record counters Counters.Hom_add;
  if Plaintext.params pt != ct.params then invalid_arg "Bfv.add_plain: parameter mismatch";
  let dm = Rq.mul_scalar_zint (plain_rq ct pt) (delta ct.params) in
  let comps = Array.copy ct.comps in
  comps.(0) <- Rq.add comps.(0) dm;
  { ct with comps }

let add_const ?counters ct v = add_plain ?counters ct (Plaintext.constant ct.params v)

let mul_plain ?counters ct pt =
  record counters Counters.Hom_mul_plain;
  if Plaintext.params pt != ct.params then invalid_arg "Bfv.mul_plain: parameter mismatch";
  let m = plain_rq ct pt in
  { ct with comps = Array.map (fun c -> Rq.mul c m) ct.comps }

let mul_scalar ?counters ct v =
  record counters Counters.Hom_mul_plain;
  { ct with comps = Array.map (fun c -> Rq.mul_scalar c v) ct.comps }

(* Exact negacyclic product over the integers of two centered-lifted
   polynomials — the tensor step must happen before reduction so the
   t/Q rescale can round correctly. *)
let negacyclic_exact n a b =
  let out = Array.make n Z.zero in
  for i = 0 to n - 1 do
    if not (Z.is_zero a.(i)) then
      for j = 0 to n - 1 do
        let prod = Z.mul a.(i) b.(j) in
        let k = i + j in
        if k < n then out.(k) <- Z.add out.(k) prod
        else out.(k - n) <- Z.sub out.(k - n) prod
      done
  done;
  out

let relinearize ?counters rlk ct =
  record counters Counters.Hom_relin;
  if degree ct <> 2 then invalid_arg "Bfv.relinearize: degree <> 2";
  if rlk.rk_params != ct.params then invalid_arg "Bfv.relinearize: parameter mismatch";
  let p = ct.params in
  let ring = p.Params.ring in
  let nprimes = full p in
  let n = p.Params.n in
  let w = rlk.rk_digit_bits in
  let ndigits = (Z.numbits (big_q p) + w - 1) / w in
  let c2 = Rq.to_zint_coeffs ct.comps.(2) in
  let digit_mask = Z.pred (Z.shift_left Z.one w) in
  let c0 = ref ct.comps.(0) and c1 = ref ct.comps.(1) in
  for j = 0 to ndigits - 1 do
    let digits =
      Array.init n (fun idx ->
          let v = c2.(idx) in
          let m = Z.shift_right (Z.abs v) (j * w) in
          let d = Z.to_int_exn (Z.erem m (Z.succ digit_mask)) in
          if Z.sign v < 0 then -d else d)
    in
    let dpoly = Rq.of_small_coeffs ring ~nprimes Rq.Eval digits in
    let b_j, a_j = rlk.rk_rows.(j) in
    c0 := Rq.add !c0 (Rq.mul dpoly b_j);
    c1 := Rq.add !c1 (Rq.mul dpoly a_j)
  done;
  { ct with comps = [| !c0; !c1 |] }

let mul ?counters ?rlk a b =
  record counters Counters.Hom_mul;
  check_pair a b "Bfv.mul";
  let p = a.params in
  let ring = p.Params.ring in
  let nprimes = full p in
  let n = p.Params.n in
  let q = big_q p in
  let t = Z.of_int64 p.Params.t_plain in
  let la = Array.map Rq.to_zint_coeffs a.comps in
  let lb = Array.map Rq.to_zint_coeffs b.comps in
  let da = Array.length la and db = Array.length lb in
  let out = Array.init (da + db - 1) (fun _ -> Array.make n Z.zero) in
  for i = 0 to da - 1 do
    for j = 0 to db - 1 do
      let prod = negacyclic_exact n la.(i) lb.(j) in
      Array.iteri (fun k v -> out.(i + j).(k) <- Z.add out.(i + j).(k) v) prod
    done
  done;
  let comps =
    Array.map
      (fun coeffs ->
        let scaled = Array.map (fun v -> scale_round ~t ~q v) coeffs in
        Rq.of_zint_coeffs ring ~nprimes Rq.Eval scaled)
      out
  in
  let ct = { params = p; comps } in
  match rlk with
  | Some rlk when degree ct = 2 -> relinearize ?counters rlk ct
  | Some _ | None -> ct

(* Debug oracle (SEAL's "invariant noise budget"): with acc = Σ cᵢ·sⁱ,
   the invariant noise is ν = acc·t/q − m (a rational polynomial) and
   decryption stays correct while every coefficient has |ν| < 1/2, so
   the remaining budget is −log2(2·max|ν|) = log2 q − 1 − log2 max
   |acc·t − m·q|.  BFV tracks no per-ciphertext noise bound (the
   rescale-by-t/q makes growth scale-invariant), so unlike
   {!Bgv.noise_budget_bits} this needs the secret key — it exists for
   tests and post-mortems, never for the protocols. *)
let invariant_noise_budget_bits sk ct =
  let p = sk.sk_params in
  let ring = p.Params.ring in
  let nprimes = full p in
  let s = Rq.of_small_coeffs ring ~nprimes Rq.Eval sk.s_coeffs in
  let acc = ref ct.comps.(0) in
  let spow = ref s in
  for i = 1 to degree ct do
    if i > 1 then spow := Rq.mul !spow s;
    acc := Rq.add !acc (Rq.mul ct.comps.(i) !spow)
  done;
  let q = big_q p in
  let t = Z.of_int64 p.Params.t_plain in
  let worst =
    Array.fold_left
      (fun w v ->
        let m = scale_round ~t ~q v in
        let num = Z.abs (Z.sub (Z.mul v t) (Z.mul m q)) in
        Stdlib.max w (Z.numbits num))
      0
      (Rq.to_zint_coeffs !acc)
  in
  float_of_int (Z.numbits q - 1 - worst)

let eval_poly ?counters ?rlk ~coeffs ct =
  let d = Array.length coeffs - 1 in
  if d < 0 then invalid_arg "Bfv.eval_poly: empty coefficient list";
  if d = 0 then add_const ?counters (mul_scalar ?counters ct 0L) coeffs.(0)
  else begin
    let acc = ref (mul_scalar ?counters ct coeffs.(d)) in
    for i = d - 1 downto 0 do
      if i < d - 1 then acc := mul ?counters ?rlk !acc ct;
      acc := add_const ?counters !acc coeffs.(i)
    done;
    !acc
  end
