(* Compare a fresh bench JSON against the committed baseline and fail
   (exit 1) when the fig3 compute-distances phase mean — or, when both
   files carry amortized steady-state samples, the prepared-path
   steady-state compute-distances mean — regresses more than the
   allowed percentage:

     check_regress.exe BASELINE.json CURRENT.json [MAX_REGRESS_PCT]

   Runs that carry [predicted_phases] (fig3/fig3p since schema 3) are
   additionally held to an attribution-drift gate: the mean
   measured/predicted time ratio per phase must stay within slack of
   the committed baseline's ratio — in either direction, since both
   an optimisation the cost model missed and a slowdown it did not
   predict mean the attribution story has drifted.  The gate skips
   (with a note) when either file predates the predicted fields.

   The repo carries no JSON dependency, so this reads the bench writer's
   output with a small recursive-descent parser covering exactly the
   grammar `write_json` emits (objects, arrays, strings, numbers,
   booleans, null). *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '\000' -> fail "unterminated string"
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then fail "bad \\u escape";
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           pos := !pos + 4;
           (* Bench output is ASCII; keep the low byte for anything else. *)
           Buffer.add_char buf (Char.chr (code land 0xff))
         | _ -> fail "bad escape");
        go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while is_num_char (peek ()) do advance () done;
    if !pos = start then fail "expected number";
    Num (float_of_string (String.sub s start (!pos - start)))
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> Str (parse_string ())
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then (advance (); Obj [])
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ((key, v) :: acc)
          | '}' -> advance (); Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then (advance (); Arr [])
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); elems (v :: acc)
          | ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elems []
      end
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let runs_of path =
  let doc = parse (read_file path) in
  match member "runs" doc with
  | Some (Arr l) -> l
  | _ -> failwith (path ^ ": no runs array")

let phase_seconds name run =
  match member "phases" run with
  | Some phases ->
    (match member name phases with Some (Num s) -> Some s | _ -> None)
  | None -> None

(* Mean of the fig3 runs' compute-distances phase, in seconds. *)
let mean_compute_distances path =
  let samples =
    List.filter_map
      (fun run ->
        match member "experiment" run with
        | Some (Str "fig3") -> phase_seconds "compute-distances" run
        | _ -> None)
      (runs_of path)
  in
  match samples with
  | [] -> failwith (path ^ ": no fig3 compute-distances samples")
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

(* Mean compute-distances over the amortized experiment's steady-state
   queries on one computation plan: the prepared hot path
   ([packed = false]; runs written before the packed field existed count
   as prepared) or the slot-packed one ([packed = true]).  [None] when
   the file carries no such samples (e.g. a bench run with --only fig3,
   or a pre-packing baseline asked for packed samples). *)
let mean_steady_compute_distances ~packed path =
  let samples =
    List.filter_map
      (fun run ->
        let is_packed = member "packed" run = Some (Bool true) in
        match (member "experiment" run, member "steady_state" run) with
        | Some (Str "amortized"), Some (Bool true) when is_packed = packed ->
          phase_seconds "compute-distances" run
        | _ -> None)
      (runs_of path)
  in
  match samples with
  | [] -> None
  | l -> Some (List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l))

(* Mean total seconds of the planned experiment's steady-state queries
   on one variant ("preset" or "planned"); [None] when the file has no
   such samples (pre-planner baselines, or a bench run without the
   planned experiment). *)
let mean_planned_steady ~variant path =
  let samples =
    List.filter_map
      (fun run ->
        match
          ( member "experiment" run,
            member "variant" run,
            member "steady_state" run )
        with
        | Some (Str "planned"), Some (Str v), Some (Bool true) when v = variant ->
          (match member "seconds" run with Some (Num s) -> Some s | _ -> None)
        | _ -> None)
      (runs_of path)
  in
  match samples with
  | [] -> None
  | l -> Some (List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l))

(* Mean measured/predicted seconds per phase over an experiment's runs
   that carry [predicted_phases].  Phases whose measured time is below
   [floor_s] in a given run are folded only into the "total" row: a
   sub-millisecond encrypt-query ratio is all scheduler noise, while the
   total keeps every phase accountable. *)
let floor_s = 0.005

let attribution_ratios ~experiment path =
  let acc : (string, (float * int) ref) Hashtbl.t = Hashtbl.create 8 in
  let add phase ratio =
    match Hashtbl.find_opt acc phase with
    | Some r -> r := (fst !r +. ratio, snd !r + 1)
    | None -> Hashtbl.add acc phase (ref (ratio, 1))
  in
  List.iter
    (fun run ->
      if member "experiment" run = Some (Str experiment) then
        match (member "predicted_phases" run, member "phases" run) with
        | Some (Obj predicted), Some (Obj measured) ->
          let tot_p = ref 0.0 and tot_m = ref 0.0 in
          List.iter
            (fun (phase, pv) ->
              match (pv, List.assoc_opt phase measured) with
              | Num p, Some (Num m) when p > 0.0 ->
                tot_p := !tot_p +. p;
                tot_m := !tot_m +. m;
                if m >= floor_s then add phase (m /. p)
              | _ -> ())
            predicted;
          if !tot_p > 0.0 then add "total" (!tot_m /. !tot_p)
        | _ -> ())
    (runs_of path);
  Hashtbl.fold (fun phase r rows -> (phase, fst !r /. float_of_int (snd !r)) :: rows)
    acc []
  |> List.sort compare

(* The network experiment's runs: (shape, profile, n, predicted wire,
   replayed wire, transcript_exact).  Wire seconds are pure functions of
   (transcript, profile) — machine-independent — so they are gated on
   equality, not a drift budget. *)
let network_runs path =
  List.filter_map
    (fun run ->
      if member "experiment" run = Some (Str "network") then
        match
          ( member "shape" run,
            member "profile" run,
            member "n" run,
            member "predicted_wire_s" run,
            member "replayed_wire_s" run,
            member "transcript_exact" run )
        with
        | ( Some (Str shape),
            Some (Str profile),
            Some (Num n),
            Some (Num pw),
            Some (Num rw),
            Some (Bool exact) ) ->
          Some (shape, profile, n, pw, rw, exact)
        | _ -> None
      else None)
    (runs_of path)

let same_wire a b =
  (* Exact up to the %.9g JSON round-trip. *)
  Float.abs (a -. b) <= 1e-8 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let check_drift ~label ~max_pct ~baseline ~current =
  let drift_pct = (current -. baseline) /. baseline *. 100.0 in
  Printf.printf "%s measured/predicted: baseline %.2fx, current %.2fx (%+.1f%%)\n" label
    baseline current drift_pct;
  if Float.abs drift_pct > max_pct then begin
    Printf.printf "FAIL: %s attribution drift exceeds %.0f%% budget\n" label max_pct;
    false
  end
  else begin
    Printf.printf "OK: within %.0f%% drift budget\n" max_pct;
    true
  end

let check ~label ~max_pct ~baseline ~current =
  let delta_pct = (current -. baseline) /. baseline *. 100.0 in
  Printf.printf "%s mean: baseline %.3fs, current %.3fs (%+.1f%%)\n" label baseline
    current delta_pct;
  if delta_pct > max_pct then begin
    Printf.printf "FAIL: %s regression exceeds %.0f%% budget\n" label max_pct;
    false
  end
  else begin
    Printf.printf "OK: within %.0f%% budget\n" max_pct;
    true
  end

let () =
  let baseline_path, current_path, max_pct =
    match Array.to_list Sys.argv with
    | [ _; b; c ] -> (b, c, 25.0)
    | [ _; b; c; pct ] -> (b, c, float_of_string pct)
    | _ ->
      prerr_endline "usage: check_regress BASELINE.json CURRENT.json [MAX_REGRESS_PCT]";
      exit 2
  in
  let ok_fig3 =
    check ~label:"compute-distances" ~max_pct
      ~baseline:(mean_compute_distances baseline_path)
      ~current:(mean_compute_distances current_path)
  in
  let steady_gate ~packed ~label =
    match
      ( mean_steady_compute_distances ~packed baseline_path,
        mean_steady_compute_distances ~packed current_path )
    with
    | Some baseline, Some current -> check ~label ~max_pct ~baseline ~current
    | _ ->
      Printf.printf "note: no %s samples in both files; skipping that gate\n" label;
      true
  in
  let ok_steady =
    steady_gate ~packed:false ~label:"steady-state compute-distances"
  in
  let ok_packed =
    steady_gate ~packed:true ~label:"packed steady-state compute-distances"
  in
  (* Attribution drift: wider budget than the raw-time gates (2x) —
     the ratio divides out machine speed, but small phases still jitter. *)
  let attr_pct = 2.0 *. max_pct in
  let attribution_gate experiment =
    match
      ( attribution_ratios ~experiment baseline_path,
        attribution_ratios ~experiment current_path )
    with
    | [], _ | _, [] ->
      Printf.printf
        "note: no %s predicted_phases samples in both files; skipping attribution gate\n"
        experiment;
      true
    | base, cur ->
      List.fold_left
        (fun ok (phase, rc) ->
          match List.assoc_opt phase base with
          | None -> ok (* phase new since the baseline: nothing to drift from *)
          | Some rb ->
            check_drift ~label:(experiment ^ " " ^ phase) ~max_pct:attr_pct ~baseline:rb
              ~current:rc
            && ok)
        true cur
  in
  let ok_attr3 = attribution_gate "fig3" in
  let ok_attr3p = attribution_gate "fig3p" in
  (* Planner gate: within the current file, the planner's pick must not
     be slower than the preset at the same workload (the planned
     experiment runs both over identical queries).  Skips gracefully
     when the file predates the experiment. *)
  let ok_planned =
    match
      ( mean_planned_steady ~variant:"planned" current_path,
        mean_planned_steady ~variant:"preset" current_path )
    with
    | Some planned, Some preset ->
      Printf.printf
        "planned-vs-preset steady mean: planned %.3fs, preset %.3fs (%.2fx)\n" planned
        preset (preset /. planned);
      if planned <= preset then begin
        Printf.printf "OK: planner pick is no slower than the preset\n";
        true
      end
      else begin
        Printf.printf "FAIL: planner pick is slower than the preset\n";
        false
      end
    | _ ->
      Printf.printf "note: no planned-experiment samples; skipping planner gate\n";
      true
  in
  (* Network gate: every network run of the current file must carry an
     exactly-matching predicted transcript and identical predicted vs
     replayed wire time (both come from the same pure replay); against a
     baseline that has the same (shape, profile, n) rows, the replayed
     wire seconds must be equal — there is no machine to blame a
     difference on.  Skips when the current file carries no network runs
     (e.g. --only fig3). *)
  let ok_network =
    match network_runs current_path with
    | [] ->
      Printf.printf "note: no network-experiment samples; skipping network gate\n";
      true
    | cur ->
      let base = network_runs baseline_path in
      List.fold_left
        (fun ok (shape, profile, n, pw, rw, exact) ->
          let label = Printf.sprintf "network %s/%s" shape profile in
          let ok_run =
            if not exact then begin
              Printf.printf "FAIL: %s predicted transcript diverges from the live one\n"
                label;
              false
            end
            else if not (same_wire pw rw) then begin
              Printf.printf "FAIL: %s predicted wire %.9gs <> replayed wire %.9gs\n"
                label pw rw;
              false
            end
            else
              match
                List.find_opt
                  (fun (s, p, n', _, _, _) -> s = shape && p = profile && n' = n)
                  base
              with
              | Some (_, _, _, _, rw_base, _) when not (same_wire rw rw_base) ->
                Printf.printf
                  "FAIL: %s replayed wire %.9gs <> baseline %.9gs (same n=%g)\n" label
                  rw rw_base n;
                false
              | Some (_, _, _, _, rw_base, _) ->
                Printf.printf "OK: %s wire %.9gs (exact: prediction, replay%s)\n" label
                  rw
                  (if rw_base = rw then ", baseline" else ", baseline to 9 digits");
                true
              | None ->
                Printf.printf "OK: %s wire %.9gs (exact: prediction, replay; no \
                               baseline row)\n"
                  label rw;
                true
          in
          ok_run && ok)
        true cur
  in
  if not
       (ok_fig3 && ok_steady && ok_packed && ok_attr3 && ok_attr3p && ok_planned
        && ok_network)
  then exit 1
