(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5).

   Usage:
     dune exec bench/main.exe                    -- all experiments, scaled
     dune exec bench/main.exe -- --full          -- paper-scale workloads
     dune exec bench/main.exe -- --only fig3,table1
     dune exec bench/main.exe -- --scale 0.25    -- override the default scale

   Each experiment prints the paper's reported numbers (where the text
   gives them) next to measured values.  Absolute times differ — the
   paper ran HElib/C++ on a 4-core Xeon; this is a from-scratch OCaml
   stack — the claim under reproduction is the *shape*: linearity in n,
   d and k, one communication round vs O(k), and the ours-vs-baseline
   gap. *)

module Rng = Util.Rng

let say fmt = Format.printf fmt

let hr title =
  say "@.==================================================================@.";
  say "%s@." title;
  say "==================================================================@."

(* ------------------------------------------------------------------ *)
(* Scaling                                                             *)
(* ------------------------------------------------------------------ *)

type opts = {
  full : bool;
  scale : float option;
  only : string list option; (* experiment ids *)
  seed : int;
  jobs : int option;         (* domains per parallel phase *)
  json : string option;      (* machine-readable results file *)
  trace : string option;     (* span-trace output file *)
  trace_format : string;     (* chrome | jsonl | pretty *)
  repeat : int;              (* steady-state queries in the amortized experiment *)
  batch : int;               (* slot-dimension query batch in the amortized experiment *)
  prom : string option;      (* Prometheus text-exposition snapshot file *)
  calib : string option;     (* calibration cache file shared with sknn cost/plan *)
}

(* The observability context shared by every protocol run of the session;
   Ctx.disabled (the default) keeps the hot path unobserved. *)
let obs : Sknn_obs.Ctx.t ref = ref Sknn_obs.Ctx.disabled

(* Run one query under a root span so each benchmark query shows up as
   its own top-level tree in the trace. *)
let traced_query ?(prepared = false) ?(packed = false) ?rng ~experiment dep ~query ~k =
  Sknn_obs.Ctx.with_span !obs ~kind:Sknn_obs.Trace.Root
    ~args:[ ("experiment", experiment); ("k", string_of_int k) ]
    experiment
    (fun () ->
      if packed then Protocol.query_packed ~obs:!obs ?rng dep ~query ~k
      else if prepared then Protocol.query_prepared ~obs:!obs ?rng dep ~query ~k
      else Protocol.query ~obs:!obs ?rng dep ~query ~k)

let effective_jobs opts =
  match opts.jobs with Some j -> j | None -> Util.Pool.default_jobs ()

let scaled opts ~default_scale n =
  if opts.full then n
  else begin
    let s = Option.value ~default:default_scale opts.scale in
    Stdlib.max 4 (int_of_float (float_of_int n *. s))
  end

let wants opts id = match opts.only with None -> true | Some l -> List.mem id l

let pp_paper ppf = function
  | None -> Format.fprintf ppf "%8s" "-"
  | Some s -> Format.fprintf ppf "%7.0fs" s

(* Linear interpolation of the paper's reported anchors, for the rows
   the text does not spell out. *)
let interp anchors x =
  let rec go = function
    | (x0, y0) :: ((x1, y1) :: _ as rest) ->
      if x <= x0 then Some y0
      else if x <= x1 then
        Some (y0 +. ((y1 -. y0) *. (float_of_int (x - x0) /. float_of_int (x1 - x0))))
      else go rest
    | [ (_, y) ] -> Some y
    | [] -> None
  in
  go anchors

(* ------------------------------------------------------------------ *)
(* Machine-readable results (--json)                                   *)
(* ------------------------------------------------------------------ *)

type json =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

let rec emit_json buf = function
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (Printf.sprintf "%.9g" f)
  | Str s ->
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit_json buf x)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        emit_json buf (Str k);
        Buffer.add_char buf ':';
        emit_json buf v)
      fields;
    Buffer.add_char buf '}'

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    line
  with _ -> ""

let json_counters c =
  Obj
    [ ("encryptions", Int (Util.Counters.encryptions c));
      ("decryptions", Int (Util.Counters.decryptions c));
      ("hom_adds", Int (Util.Counters.hom_adds c));
      ("hom_muls", Int (Util.Counters.hom_muls c));
      ("hom_mul_plains", Int (Util.Counters.hom_mul_plains c));
      ("hom_modswitches", Int (Util.Counters.hom_modswitches c));
      ("hom_relins", Int (Util.Counters.hom_relins c));
      ("hom_total", Int (Util.Counters.hom_total c));
      ("rounds", Int (Util.Counters.rounds c));
      ("bytes_sent", Int (Util.Counters.bytes_sent c));
      ("ledger",
       List
         (List.map
            (fun (op, level, count) ->
              Obj
                [ ("op", Str (Util.Counters.op_name op));
                  ("level", Int level);
                  ("count", Int count) ])
            (Util.Counters.ledger_entries c))) ]

let json_transcript tr =
  Obj
    [ ("total_bytes", Int (Transcript.total_bytes tr));
      ("messages", Int (Transcript.messages tr));
      ("a_b_rounds", Int (Transcript.rounds tr Transcript.Party_a Transcript.Party_b));
      ("links",
       Obj
         (List.map
            (fun ((x, y), bytes) ->
              (Transcript.party_name x ^ "-" ^ Transcript.party_name y, Int bytes))
            (Transcript.links tr))) ]

let json_runs : json list ref = ref []

(* Extra top-level JSON blocks filled in by individual experiments. *)
let amortized_summary : json option ref = ref None
let kernel_results : json option ref = ref None

let record_run ?(extra = []) ~experiment ~n ~d ~k ~jobs ~seconds ~exact
    (r : Protocol.result) =
  json_runs :=
    Obj
      (extra
       @ [ ("experiment", Str experiment);
        ("n", Int n);
        ("d", Int d);
        ("k", Int k);
        ("jobs", Int jobs);
        ("seconds", Float seconds);
        ("exact", Bool exact);
        ("phases", Obj (List.map (fun (nm, s) -> (nm, Float s)) r.Protocol.phase_seconds));
        ("transcript", json_transcript r.Protocol.transcript);
        ("top_heap_words", Int (Gc.quick_stat ()).Gc.top_heap_words);
        ("counters",
         Obj
           [ ("party_a", json_counters r.Protocol.counters_a);
             ("party_b", json_counters r.Protocol.counters_b);
             ("client", json_counters r.Protocol.counters_client) ]) ])
    :: !json_runs

let write_json opts path =
  let gc = Gc.quick_stat () in
  let doc =
    Obj
      [ ("schema_version", Int 3);
        ("generator", Str "sknn-bench");
        ("git_rev", Str (git_rev ()));
        ("seed", Int opts.seed);
        ("jobs", Int (effective_jobs opts));
        ("full", Bool opts.full);
        ("gc",
         Obj
           [ ("top_heap_words", Int gc.Gc.top_heap_words);
             ("heap_words", Int gc.Gc.heap_words);
             ("minor_collections", Int gc.Gc.minor_collections);
             ("major_collections", Int gc.Gc.major_collections);
             ("minor_words", Float gc.Gc.minor_words);
             ("promoted_words", Float gc.Gc.promoted_words) ]);
        ("runs", List (List.rev !json_runs)) ]
  in
  let doc =
    match doc with
    | Obj fields ->
      let opt name v = match v with None -> [] | Some x -> [ (name, x) ] in
      Obj (fields @ opt "amortized" !amortized_summary @ opt "kernels" !kernel_results)
    | _ -> doc
  in
  let buf = Buffer.create 4096 in
  emit_json buf doc;
  Buffer.add_char buf '\n';
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  say "wrote %d runs to %s@." (List.length !json_runs) path

(* ------------------------------------------------------------------ *)
(* Figure runners                                                      *)
(* ------------------------------------------------------------------ *)

(* Per-op unit costs for the predicted-phase annotations, calibrated at
   most once per parameter set (quick pass: CI runs this). *)
let calibrations : (string, Kernel_bench.Calibration.t) Hashtbl.t = Hashtbl.create 4

let calibration_for ?cache (params : Params.t) =
  match Hashtbl.find_opt calibrations params.Params.name with
  | Some c -> c
  | None ->
    say "calibrating per-op unit costs for %s (quick pass%s)...@." params.Params.name
      (match cache with Some f -> ", cache " ^ f | None -> "");
    let c, warnings =
      Kernel_bench.Calibration.measure_cached ~quick:true ?file:cache params
    in
    List.iter (fun w -> say "warning: %s@." w) warnings;
    Hashtbl.add calibrations params.Params.name c;
    c

let run_query_series ?(packed = false) ?predict ~opts ~experiment ~config ~db ~queries_k
    ~rng () =
  let dep = Protocol.deploy ~obs:!obs ~rng ?jobs:opts.jobs config ~db in
  let base_extra = if packed then [ ("packed", Bool true) ] else [] in
  List.mapi
    (fun i k ->
      let q = Synthetic.query_like rng db in
      let r, s =
        Util.Timer.time (fun () -> traced_query ~packed ~experiment dep ~query:q ~k)
      in
      let ok = Protocol.exact dep ~db ~query:q r in
      let extra =
        base_extra
        @
        match predict with
        | None -> []
        | Some f ->
          let phases : (string * float) list = f ~first:(i = 0) ~k in
          [ ("predicted_phases", Obj (List.map (fun (nm, ps) -> (nm, Float ps)) phases)) ]
      in
      record_run ~extra ~experiment ~n:(Array.length db) ~d:(Array.length db.(0)) ~k
        ~jobs:(Protocol.jobs dep) ~seconds:s ~exact:ok r;
      (k, s, ok, r))
    queries_k

let check_linear ~name xs ys =
  (* Shape check: least-squares slope positive and fit roughly linear. *)
  let n = float_of_int (List.length xs) in
  let xs = List.map float_of_int xs in
  let mean l = List.fold_left ( +. ) 0.0 l /. n in
  let mx = mean xs and my = mean ys in
  let cov = List.fold_left2 (fun a x y -> a +. ((x -. mx) *. (y -. my))) 0.0 xs ys in
  let var = List.fold_left (fun a x -> a +. ((x -. mx) ** 2.0)) 0.0 xs in
  let slope = cov /. var in
  let r2 =
    let vy = List.fold_left (fun a y -> a +. ((y -. my) ** 2.0)) 0.0 ys in
    if vy = 0.0 then 1.0 else cov *. cov /. (var *. vy)
  in
  say "  shape: %s slope %+.4f s/unit, linear fit R^2 = %.3f %s@." name slope r2
    (if slope > 0.0 && r2 > 0.9 then "[linear: OK]" else "[check]")

let k_dependent_seconds (r : Protocol.result) =
  (* The phases whose work grows with k: Party B's indicator vectors and
     Party A's Return-kNN inner products (plus the result decryption). *)
  List.fold_left
    (fun acc (name, s) ->
      match name with
      | "find-neighbours" | "return-knn" | "decrypt-result" -> acc +. s
      | _ -> acc)
    0.0 r.Protocol.phase_seconds

let fig_k_sweep ?(packed = false) ?(attribute = false) ~id ~title ~dataset_name ~db
    ~config ~paper_anchors opts =
  hr (Printf.sprintf "%s — %s" id title);
  let n = Array.length db and d = Array.length db.(0) in
  say "dataset: %s, n=%d, d=%d, layout=%s%s%s@." dataset_name n d
    (Config.layout_name config.Config.layout)
    (if packed then " (slot-packed path)" else "")
    (if opts.full then "" else " (scaled; --full for paper scale)");
  let ks = [ 2; 4; 6; 8; 10; 12; 14; 16; 18; 20 ] in
  let rng = Rng.of_int opts.seed in
  (* Attribution annotations: price each run's analytic op-count replica
     with the calibrated unit costs, so the JSON carries a predicted
     figure next to every measured phase (check_regress gates the
     drift).  Only the first query of the packed sweep pays prepare-db —
     the deployment is shared down the k sweep. *)
  let predict =
    if not attribute then None
    else begin
      let unit_costs = calibration_for ?cache:opts.calib config.Config.bgv in
      let path =
        if packed then Sknn_obs.Cost_model.Packed else Sknn_obs.Cost_model.Plain
      in
      Some
        (fun ~first ~k ->
          let pred =
            Attribution.predict ~include_prepare:(packed && first) config ~n ~d ~k path
          in
          Attribution.predicted_phase_seconds ~unit_costs pred)
    end
  in
  let rows =
    run_query_series ~packed ?predict ~opts ~experiment:id ~config ~db ~queries_k:ks
      ~rng ()
  in
  say "@.%6s %10s %10s %10s %7s@." "k" "paper" "measured" "k-dep" "exact";
  List.iter
    (fun (k, s, ok, r) ->
      say "%6d %a %9.2fs %9.2fs %7b@." k pp_paper (interp paper_anchors k) s
        (k_dependent_seconds r) ok)
    rows;
  check_linear ~name:"total time vs k" (List.map (fun (k, _, _, _) -> k) rows)
    (List.map (fun (_, s, _, _) -> s) rows);
  check_linear ~name:"k-dependent phases vs k" (List.map (fun (k, _, _, _) -> k) rows)
    (List.map (fun (_, _, _, r) -> k_dependent_seconds r) rows)

let fig3 opts =
  let rng = Rng.of_int (opts.seed + 3) in
  let n = scaled opts ~default_scale:0.5 858 in
  let db =
    Preprocess.scale_to_max ~max_value:255 (Uci_like.cervical_cancer ~n rng)
  in
  fig_k_sweep ~attribute:true ~id:"fig3"
    ~title:"running time vs k, cervical-cancer data (858 x 32)"
    ~dataset_name:"cervical-cancer (UCI-shaped)" ~db ~config:(Config.standard ())
    ~paper_anchors:[ (2, 45.0); (8, 165.0); (16, 328.0); (20, 410.0) ]
    opts

(* The fig3 workload on the slot-packed path: same dataset and k sweep,
   affine mask (the packed requirement), ~n/N ciphertext ops in the
   Compute-Distances phase.  The paper anchors are fig3's — the gap
   between the measured columns is the packing win. *)
let fig3p opts =
  let rng = Rng.of_int (opts.seed + 3) in
  let n = scaled opts ~default_scale:0.5 858 in
  let db =
    Preprocess.scale_to_max ~max_value:255 (Uci_like.cervical_cancer ~n rng)
  in
  fig_k_sweep ~packed:true ~attribute:true ~id:"fig3p"
    ~title:"fig3 workload, slot-packed path (858 x 32, affine mask)"
    ~dataset_name:"cervical-cancer (UCI-shaped)" ~db
    ~config:(Config.with_mask_degree 1 (Config.standard ()))
    ~paper_anchors:[ (2, 45.0); (8, 165.0); (16, 328.0); (20, 410.0) ]
    opts

let fig4 opts =
  let rng = Rng.of_int (opts.seed + 4) in
  let n = scaled opts ~default_scale:0.1 30000 in
  let db = Preprocess.scale_to_max ~max_value:255 (Uci_like.credit_default ~n rng) in
  fig_k_sweep ~id:"fig4" ~title:"running time vs k, credit-card data (30000 x 23)"
    ~dataset_name:"credit-default (UCI-shaped)" ~db ~config:(Config.fast ())
    ~paper_anchors:[ (2, 115.0); (8, 373.0); (20, 860.0) ]
    opts

let fig5 opts =
  hr "fig5 — running time vs n (d = 2, k = 5)";
  let config = Config.fast () in
  let ns = List.map (fun n -> scaled opts ~default_scale:0.1 n)
      [ 20000; 40000; 60000; 80000; 100000; 120000; 140000; 160000; 180000; 200000 ] in
  say "layout=%s%s@." (Config.layout_name config.Config.layout)
    (if opts.full then "" else " (scaled)");
  let paper = [ (20000, 23.0); (200000, 180.0) ] in
  say "@.%8s %10s %10s %7s@." "n" "paper" "measured" "exact";
  let rows =
    List.map
      (fun n ->
        let rng = Rng.of_int (opts.seed + 5 + n) in
        let db = Synthetic.uniform rng ~n ~d:2 ~max_value:255 in
        let dep = Protocol.deploy ~obs:!obs ~rng ?jobs:opts.jobs config ~db in
        let q = Synthetic.query_like rng db in
        let r, s =
          Util.Timer.time (fun () -> traced_query ~experiment:"fig5" dep ~query:q ~k:5)
        in
        let ok = Protocol.exact dep ~db ~query:q r in
        record_run ~experiment:"fig5" ~n ~d:2 ~k:5 ~jobs:(Protocol.jobs dep) ~seconds:s
          ~exact:ok r;
        let paper_n = if opts.full then n else int_of_float (float_of_int n /. Option.value ~default:0.1 opts.scale) in
        say "%8d %a %9.2fs %7b@." n pp_paper (interp paper paper_n) s ok;
        (n, s))
      ns
  in
  check_linear ~name:"time vs n" (List.map fst rows) (List.map snd rows)

let fig6 opts =
  hr "fig6 — running time vs d (n = 200000, k = 2)";
  (* Per-coordinate layout: its distance phase does d homomorphic
     squarings per point, which is the linear-in-d behaviour the paper
     measures.  (The dot-product layout is d-independent here — see the
     ablation section.) *)
  (* Affine mask without intermediate rescaling so the d-proportional
     distance computation dominates the profile, as it does in the
     paper's implementation. *)
  let config =
    Config.with_rescale_distances false (Config.with_mask_degree 1 (Config.standard ()))
  in
  let n = scaled opts ~default_scale:0.04 200000 in
  say "n=%d, layout=%s%s@." n (Config.layout_name config.Config.layout)
    (if opts.full then "" else " (scaled)");
  let paper = [ (1, 137.0); (10, 530.0) ] in
  say "@.%6s %10s %10s %10s %7s@." "d" "paper" "measured" "dist-phase" "exact";
  let rows =
    List.map
      (fun d ->
        let rng = Rng.of_int (opts.seed + 6 + d) in
        let db = Synthetic.uniform rng ~n ~d ~max_value:255 in
        let dep = Protocol.deploy ~obs:!obs ~rng ?jobs:opts.jobs config ~db in
        let q = Synthetic.query_like rng db in
        let r, s =
          Util.Timer.time (fun () -> traced_query ~experiment:"fig6" dep ~query:q ~k:2)
        in
        let ok = Protocol.exact dep ~db ~query:q r in
        record_run ~experiment:"fig6" ~n ~d ~k:2 ~jobs:(Protocol.jobs dep) ~seconds:s
          ~exact:ok r;
        let dist_s = List.assoc "compute-distances" r.Protocol.phase_seconds in
        say "%6d %a %9.2fs %9.2fs %7b@." d pp_paper (interp paper d) s dist_s ok;
        (d, s, dist_s))
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
  in
  check_linear ~name:"total time vs d" (List.map (fun (d, s, _) -> ignore s; d) rows)
    (List.map (fun (_, s, _) -> s) rows);
  check_linear ~name:"distance phase vs d" (List.map (fun (d, _, _) -> d) rows)
    (List.map (fun (_, _, s) -> s) rows)

let fig7 opts =
  hr "fig7 — running time vs k (n = 200000, d = 2)";
  let config = Config.fast () in
  let n = scaled opts ~default_scale:0.05 200000 in
  say "n=%d, layout=%s%s@." n (Config.layout_name config.Config.layout)
    (if opts.full then "" else " (scaled)");
  let rng = Rng.of_int (opts.seed + 7) in
  let db = Synthetic.uniform rng ~n ~d:2 ~max_value:255 in
  let paper = [ (1, 115.0); (20, 480.0) ] in
  let ks = [ 1; 2; 4; 6; 8; 10; 12; 14; 16; 18; 20 ] in
  let rows =
    run_query_series ~opts ~experiment:"fig7" ~config ~db ~queries_k:ks ~rng ()
  in
  say "@.%6s %10s %10s %10s %7s@." "k" "paper" "measured" "k-dep" "exact";
  List.iter
    (fun (k, s, ok, r) ->
      say "%6d %a %9.2fs %9.2fs %7b@." k pp_paper (interp paper k) s
        (k_dependent_seconds r) ok)
    rows;
  check_linear ~name:"total time vs k" (List.map (fun (k, _, _, _) -> k) rows)
    (List.map (fun (_, s, _, _) -> s) rows);
  check_linear ~name:"k-dependent phases vs k" (List.map (fun (k, _, _, _) -> k) rows)
    (List.map (fun (_, _, _, r) -> k_dependent_seconds r) rows)

(* ------------------------------------------------------------------ *)
(* Table 1: computational overheads, predicted and measured            *)
(* ------------------------------------------------------------------ *)

let table1 opts =
  hr "Table 1 — computational overheads: ours vs Yousef et al.";
  let n = scaled opts ~default_scale:0.2 500 in
  let d = 6 and k = 5 in
  let rng = Rng.of_int (opts.seed + 1) in
  let db = Synthetic.uniform rng ~n ~d ~max_value:100 in
  let q = Synthetic.query_like rng db in
  (* Ours, measured. *)
  let config = Config.standard () in
  let dep = Protocol.deploy ~obs:!obs ~rng ?jobs:opts.jobs config ~db in
  let r, r_s = Util.Timer.time (fun () -> traced_query ~experiment:"table1" dep ~query:q ~k) in
  record_run ~experiment:"table1" ~n ~d ~k ~jobs:(Protocol.jobs dep) ~seconds:r_s
    ~exact:(Protocol.exact dep ~db ~query:q r) r;
  let ours_measured = Cost.measured r in
  let ours_predicted =
    let pred = Attribution.predict ~include_prepare:false config ~n ~d ~k
        Sknn_obs.Cost_model.Plain in
    Cost.ours ~bytes:pred.Sknn_obs.Cost_model.ab_bytes ~n ~d ~k
      ~mask_degree:config.Config.mask_degree ()
  in
  (* Baseline, measured on a further-scaled instance (it is the slow
     one). *)
  let nb = Stdlib.max 8 (n / 5) in
  let dbb = Array.sub db 0 nb in
  let dep_b = Sknn_m.deploy ~rng:(Rng.split rng) ~modulus_bits:128 ~db:dbb () in
  let rb = Sknn_m.query dep_b ~query:q ~k in
  let l = Sknn_m.bit_length dep_b in
  let yousef_predicted = Cost.yousef ~n:nb ~d ~k ~l in
  let hom c = Util.Counters.hom_total c in
  say "@.instance: n=%d (baseline run at n=%d), d=%d, k=%d, l=%d@." n nb d k l;
  say "@.%-28s %14s %14s | %14s %14s@." "" "ours(pred)" "ours(meas)" "yousef(pred)"
    "yousef(meas)";
  let row name op om yp ym = say "%-28s %14s %14s | %14s %14s@." name op om yp ym in
  row "homomorphic operations"
    (string_of_int ours_predicted.Cost.hom_ops)
    (string_of_int ours_measured.Cost.hom_ops)
    (string_of_int yousef_predicted.Cost.hom_ops)
    (string_of_int (hom rb.Sknn_m.counters_c1 + hom rb.Sknn_m.counters_c2));
  row "encryptions"
    (string_of_int ours_predicted.Cost.encryptions)
    (string_of_int ours_measured.Cost.encryptions)
    (string_of_int yousef_predicted.Cost.encryptions)
    (string_of_int
       (Util.Counters.encryptions rb.Sknn_m.counters_c1
        + Util.Counters.encryptions rb.Sknn_m.counters_c2));
  row "decryptions (key holder)"
    (string_of_int ours_predicted.Cost.decryptions)
    (string_of_int ours_measured.Cost.decryptions)
    (string_of_int yousef_predicted.Cost.decryptions)
    (string_of_int (Util.Counters.decryptions rb.Sknn_m.counters_c2));
  row "rounds (A<->B)" "1"
    (string_of_int ours_measured.Cost.rounds)
    (Printf.sprintf "O(k)=%d+" k)
    (string_of_int rb.Sknn_m.interactions);
  row "bytes A<->B"
    (string_of_int ours_predicted.Cost.bytes)
    (string_of_int ours_measured.Cost.bytes)
    "-"
    (string_of_int
       (Transcript.bytes_between rb.Sknn_m.transcript Transcript.Party_a Transcript.Party_b));
  say "@.paper's asymptotic rows: ours O(n(k+d+D)) hom, O(nk) enc, O(n) dec, 1 round;@.";
  say "                         yousef O(n(2kl+d)) hom, O(nkl) enc, O(n(kl+d)) dec, O(k) rounds@.";
  say "exactness: ours=%b baseline=%b@."
    (Protocol.exact dep ~db ~query:q r)
    (Sknn_m.exact dep_b ~db:dbb ~query:q rb)

(* ------------------------------------------------------------------ *)
(* §5.2 head-to-head                                                   *)
(* ------------------------------------------------------------------ *)

let headtohead opts =
  hr "§5.2 head-to-head — n=2000, d=6, k=25: ours vs Yousef et al.";
  let n = scaled opts ~default_scale:0.075 2000 in
  let k = if opts.full then 25 else 10 in
  let d = 6 in
  let rng = Rng.of_int (opts.seed + 8) in
  let db = Synthetic.uniform rng ~n ~d ~max_value:100 in
  let q = Synthetic.query_like rng db in
  say "instance: n=%d, d=%d, k=%d%s@." n d k
    (if opts.full then "" else " (scaled; --full for n=2000, k=25)");
  let dep = Protocol.deploy ~obs:!obs ~rng ?jobs:opts.jobs (Config.standard ()) ~db in
  let r, ours_s =
    Util.Timer.time (fun () -> traced_query ~experiment:"headtohead" dep ~query:q ~k)
  in
  record_run ~experiment:"headtohead" ~n ~d ~k ~jobs:(Protocol.jobs dep) ~seconds:ours_s
    ~exact:(Protocol.exact dep ~db ~query:q r) r;
  say "ours:           %a (paper: 1 min 37 s)  exact=%b@." Util.Timer.pp_duration ours_s
    (Protocol.exact dep ~db ~query:q r);
  let dep_b = Sknn_m.deploy ~rng:(Rng.split rng) ~modulus_bits:128 ~db () in
  let rb, base_s = Util.Timer.time (fun () -> Sknn_m.query dep_b ~query:q ~k) in
  say "yousef et al.:  %a (paper: 55 min 39 s)  exact=%b@." Util.Timer.pp_duration base_s
    (Sknn_m.exact dep_b ~db ~query:q rb);
  say "speedup: %.1fx (paper: %.1fx)@." (base_s /. ours_s) (3339.0 /. 97.0);
  say "rounds: ours=%d, baseline C1<->C2 interactions=%d@."
    (Transcript.rounds r.Protocol.transcript Transcript.Party_a Transcript.Party_b)
    rb.Sknn_m.interactions

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation opts =
  hr "ablations — design-choice sensitivity (DESIGN.md §4)";
  let rng = Rng.of_int (opts.seed + 9) in
  let n = scaled opts ~default_scale:0.5 400 in
  let db = Synthetic.uniform rng ~n ~d:4 ~max_value:255 in
  let q = Synthetic.query_like rng db in
  let run name config =
    match Config.validate config ~d:4 with
    | Error e -> say "%-34s skipped (%s)@." name e
    | Ok () ->
      let dep =
        Protocol.deploy ~obs:!obs ~rng:(Rng.of_int opts.seed) ?jobs:opts.jobs config ~db
      in
      let r, s =
        Util.Timer.time (fun () -> traced_query ~experiment:"ablation" dep ~query:q ~k:5)
      in
      let bytes =
        Transcript.bytes_between r.Protocol.transcript Transcript.Party_a Transcript.Party_b
      in
      say "%-34s %8.2fs  %9d B A<->B  exact=%b@." name s bytes
        (Protocol.exact dep ~db ~query:q r)
  in
  say "n=%d, d=4, k=5@.@." n;
  run "per-coordinate, mask deg 1" (Config.with_mask_degree 1 (Config.standard ()));
  run "per-coordinate, mask deg 2" (Config.standard ());
  run "per-coordinate, mask deg 3" (Config.with_mask_degree 3 (Config.standard ()));
  run "per-coordinate, deg 2 + relin" (Config.with_relin true (Config.standard ()));
  run "dot-product, affine mask" (Config.fast ());
  say "@.(relinearisation shrinks the A->B ciphertexts at extra compute; the@.";
  say " dot-product layout trades mask degree for one multiplication per point)@."

(* ------------------------------------------------------------------ *)
(* §7 extensions: secure k-means and secure Apriori                    *)
(* ------------------------------------------------------------------ *)

let extensions opts =
  hr "extensions — the paper's §7 future work: k-means and Apriori";
  let rng = Rng.of_int (opts.seed + 10) in
  (* k-means *)
  let n = scaled opts ~default_scale:0.5 1000 in
  let db = Synthetic.clustered rng ~n ~d:4 ~clusters:4 ~spread:10.0 ~max_value:250 in
  let init = Array.init 4 (fun i -> db.(i * (n / 4))) in
  let dep = Kmeans.deploy ~rng (Config.fast ()) ~db in
  let r = Kmeans.run ~rng dep ~init in
  let plain, plain_s = Util.Timer.time (fun () -> Kmeans_plain.lloyd ~init db) in
  say "k-means: n=%d d=4 k=4: secure %.2fs (%d iters) vs plaintext %.4fs; identical=%b@." n
    r.Kmeans.seconds r.Kmeans.iterations plain_s
    (plain.Kmeans_plain.centroids = r.Kmeans.centroids);
  (* Apriori *)
  let nt = scaled opts ~default_scale:0.5 2000 in
  let tx =
    Array.init nt (fun _ ->
        let row = Array.init 20 (fun _ -> if Rng.float rng < 0.1 then 1 else 0) in
        if Rng.float rng < 0.3 then begin
          row.(0) <- 1; row.(1) <- 1; row.(2) <- 1
        end;
        row)
  in
  let minsup = nt / 5 in
  let adep = Apriori.deploy ~rng (Config.standard ()) ~transactions:tx in
  let ar = Apriori.mine ~rng adep ~minsup in
  let _, ap_s =
    Util.Timer.time (fun () -> Apriori_plain.frequent_itemsets ~minsup tx)
  in
  say "apriori: %d transactions x 20 items, minsup=%d: secure %.2fs vs plaintext %.4fs;        identical=%b (%d itemsets, %d hom muls total)@."
    nt minsup ar.Apriori.seconds ap_s
    (Apriori.matches_plaintext ~transactions:tx ~minsup ar)
    (List.length ar.Apriori.frequent)
    (Util.Counters.hom_muls ar.Apriori.counters_a)

(* ------------------------------------------------------------------ *)
(* Domain scaling: same query at jobs=1 and jobs=N                     *)
(* ------------------------------------------------------------------ *)

let scaling opts =
  hr "scaling — multicore speedup at identical results";
  let jn = effective_jobs opts in
  let n = scaled opts ~default_scale:0.4 500 in
  let d = 6 and k = 5 in
  let data_rng = Rng.of_int (opts.seed + 11) in
  let db = Synthetic.uniform data_rng ~n ~d ~max_value:255 in
  let q = Synthetic.query_like data_rng db in
  say "n=%d, d=%d, k=%d, layout=%s  (SKNN_DOMAINS or --jobs picks N; N=%d here)@." n d k
    (Config.layout_name (Config.standard ()).Config.layout)
    jn;
  let run jobs =
    (* Fresh deployments from identical seeds: any divergence between
       job counts would show up as different neighbours or counters. *)
    let dep =
      Protocol.deploy ~obs:!obs ~rng:(Rng.of_int (opts.seed + 12)) ~jobs
        (Config.standard ()) ~db
    in
    let r, s =
      Util.Timer.time (fun () ->
          traced_query ~rng:(Rng.of_int (opts.seed + 13)) ~experiment:"scaling" dep
            ~query:q ~k)
    in
    let ok = Protocol.exact dep ~db ~query:q r in
    record_run ~experiment:"scaling" ~n ~d ~k ~jobs ~seconds:s ~exact:ok r;
    (r, s, ok)
  in
  let r1, s1, ok1 = run 1 in
  let rn, sn, okn = run jn in
  let dist r = List.assoc "compute-distances" r.Protocol.phase_seconds in
  say "@.%6s %10s %14s %7s@." "jobs" "total" "compute-dist" "exact";
  say "%6d %9.2fs %13.2fs %7b@." 1 s1 (dist r1) ok1;
  say "%6d %9.2fs %13.2fs %7b@." jn sn (dist rn) okn;
  if jn > 1 then
    say "@.speedup at %d domains: total %.2fx, compute-distances %.2fx@." jn (s1 /. sn)
      (dist r1 /. dist rn);
  let counters_eq a b =
    Format.asprintf "%a" Util.Counters.pp a = Format.asprintf "%a" Util.Counters.pp b
  in
  say "identical neighbours across job counts: %b@."
    (r1.Protocol.neighbours = rn.Protocol.neighbours);
  say "identical counters across job counts:   %b@."
    (counters_eq r1.Protocol.counters_a rn.Protocol.counters_a
     && counters_eq r1.Protocol.counters_b rn.Protocol.counters_b
     && counters_eq r1.Protocol.counters_client rn.Protocol.counters_client)

(* ------------------------------------------------------------------ *)
(* Amortized multi-query: prepared database steady state               *)
(* ------------------------------------------------------------------ *)

let amortized opts =
  hr "amortized — prepared database, repeated queries (--repeat)";
  let rng = Rng.of_int (opts.seed + 14) in
  let n = scaled opts ~default_scale:0.5 858 in
  let db = Preprocess.scale_to_max ~max_value:255 (Uci_like.cervical_cancer ~n rng) in
  let d = Array.length db.(0) and k = 2 in
  (* The prepared path needs affine masking (the inner-product trick
     leaves cross terms only a degree-1 mask keeps sound); the packed
     path shares the requirement. *)
  let config = Config.with_mask_degree 1 (Config.standard ()) in
  let dep = Protocol.deploy ~obs:!obs ~rng ?jobs:opts.jobs config ~db in
  let reps = Stdlib.max 1 opts.repeat in
  say "n=%d, d=%d, k=%d, 1 first + %d steady-state queries%s@." n d k reps
    (if opts.full then "" else " (scaled)");
  (* One pass per computation plan over the same deployment: the PR-3
     prepared path, then the slot-packed path.  Each pass pays its own
     one-time prepare-db on the first query. *)
  let pass ~packed name =
    say "@.%s:@." name;
    say "%8s %10s %12s %7s@." "query" "total" "prepare-db" "exact";
    Array.init (reps + 1) (fun i ->
        let q = Synthetic.query_like rng db in
        (* Collect the previous query's floating garbage outside the
           timed region so each measurement pays only for its own
           allocation, not GC debt inherited from earlier queries. *)
        Gc.full_major ();
        let r, s =
          Util.Timer.time (fun () ->
              traced_query ~prepared:(not packed) ~packed ~experiment:"amortized" dep
                ~query:q ~k)
        in
        let ok = Protocol.exact dep ~db ~query:q r in
        let prep_s =
          match List.assoc_opt "prepare-db" r.Protocol.phase_seconds with
          | Some t -> t
          | None -> 0.0
        in
        record_run
          ~extra:
            [ ("query_index", Int i);
              ("prepared", Bool true);
              ("packed", Bool packed);
              ("steady_state", Bool (i > 0)) ]
          ~experiment:"amortized" ~n ~d ~k ~jobs:(Protocol.jobs dep) ~seconds:s
          ~exact:ok r;
        let cd_s =
          match List.assoc_opt "compute-distances" r.Protocol.phase_seconds with
          | Some t -> t
          | None -> 0.0
        in
        say "%8s %9.2fs %11.2fs %7b@."
          (if i = 0 then "first" else Printf.sprintf "#%d" i)
          s prep_s ok;
        (s, cd_s))
  in
  let steady times =
    Array.fold_left ( +. ) 0.0 (Array.sub times 1 reps) /. float_of_int reps
  in
  let times = pass ~packed:false "prepared path (PR-3, one ct-mul per point)" in
  let times_p = pass ~packed:true "slot-packed path (d plain products per batch)" in
  let first = fst times.(0) and steady_prep = steady (Array.map fst times) in
  let first_p = fst times_p.(0) and steady_packed = steady (Array.map fst times_p) in
  (* The acceptance gate is on the phase the packing accelerates:
     compute-distances, steady state (prepare-db and the unchanged
     return-knn phase would otherwise dominate the ratio). *)
  let steady_cd_prep = steady (Array.map snd times) in
  let steady_cd_packed = steady (Array.map snd times_p) in
  (* Slot-dimension multi-query batching (--batch M): M queries in one
     protocol round, amortizing even the per-round fixed costs. *)
  let batch_fields =
    if opts.batch < 2 then []
    else begin
      let m = opts.batch in
      let queries = Array.init m (fun _ -> Synthetic.query_like rng db) in
      Gc.full_major ();
      let results, s =
        Util.Timer.time (fun () -> Protocol.query_batch ~obs:!obs dep ~queries ~k)
      in
      let ok = ref true in
      Array.iteri
        (fun i r -> ok := !ok && Protocol.exact dep ~db ~query:queries.(i) r)
        results;
      record_run
        ~extra:[ ("packed", Bool true); ("batch", Int m) ]
        ~experiment:"amortized" ~n ~d ~k ~jobs:(Protocol.jobs dep) ~seconds:s
        ~exact:!ok results.(0);
      say "@.batched round (--batch %d): %.2fs total, %.3fs per query, exact=%b@." m s
        (s /. float_of_int m)
        !ok;
      [ ("batch_m", Int m); ("batch_round_s", Float s);
        ("batch_per_query_s", Float (s /. float_of_int m)) ]
    end
  in
  amortized_summary :=
    Some
      (Obj
         ([ ("n", Int n); ("d", Int d); ("k", Int k); ("repeats", Int reps);
            ("first_query_s", Float first);
            ("steady_state_mean_s", Float steady_prep);
            ("amortization_speedup", Float (first /. steady_prep));
            ("packed_first_query_s", Float first_p);
            ("packed_steady_state_mean_s", Float steady_packed);
            ("packed_vs_prepared_speedup", Float (steady_prep /. steady_packed));
            ("steady_state_compute_distances_s", Float steady_cd_prep);
            ("packed_steady_state_compute_distances_s", Float steady_cd_packed);
            ( "packed_compute_distances_speedup",
              Float (steady_cd_prep /. steady_cd_packed) ) ]
          @ batch_fields));
  say "@.prepared: first %.2fs, steady-state mean %.2fs (amortization %.1fx)@." first
    steady_prep (first /. steady_prep);
  say "packed:   first %.2fs, steady-state mean %.2fs — %.1fx vs prepared steady state@."
    first_p steady_packed (steady_prep /. steady_packed);
  say "packed compute-distances phase: %.3fs vs %.3fs prepared — %.1fx@." steady_cd_packed
    steady_cd_prep
    (steady_cd_prep /. steady_cd_packed)

(* ------------------------------------------------------------------ *)
(* Planned: Params.plan winner vs preset at the fig3p workload         *)
(* ------------------------------------------------------------------ *)

(* The planner's acceptance experiment: the fig3p workload (cervical
   858 x 32, slot-packed path, affine mask), run twice over the same
   data and queries — once on the preset parameter set, once on the
   parameter set [Planner.plan] picks under the preset's own security
   as the floor — so the measured steady-state gap is exactly the
   planner's win.  check_regress gates planned <= preset. *)
let planned opts =
  hr "planned — Params.plan winner vs preset (fig3p workload, packed path)";
  let rng = Rng.of_int (opts.seed + 3) in
  let n = scaled opts ~default_scale:0.5 858 in
  let db =
    Preprocess.scale_to_max ~max_value:255 (Uci_like.cervical_cancer ~n rng)
  in
  let d = Array.length db.(0) and k = 2 in
  let preset = Config.with_mask_degree 1 (Config.standard ()) in
  let costs = calibration_for ?cache:opts.calib preset.Config.bgv in
  let unit_model =
    Sknn_obs.Cost_model.fit_unit_model ~n:preset.Config.bgv.Params.n costs
  in
  let w =
    Planner.workload ~layout:preset.Config.layout ~path:Sknn_obs.Cost_model.Packed
      ~mask_degree:preset.Config.mask_degree
      ~mask_coeff_bits:preset.Config.mask_coeff_bits ~points:n ~dim:d ~k
      ~coord_bits:preset.Config.max_coord_bits ()
  in
  let limits =
    { Planner.default_constraints with
      Planner.min_security_bits = Params.security_bits preset.Config.bgv }
  in
  let outcome = Planner.plan ~unit_model w limits in
  say "planner: %d candidates considered, %d ranked, %d noise-pruned@."
    outcome.Planner.considered
    (List.length outcome.Planner.ranked)
    outcome.Planner.pruned_noise;
  match Planner.best outcome with
  | None -> say "no feasible candidate at this workload; skipping@."
  | Some best ->
    let s = best.Planner.spec in
    say "planned params: n=%d chain=%dx%d-bit t_bits=%d rl=%d (%.1f bits headroom, \
         %.1f bits security)@."
      s.Planner.sp_n s.Planner.sp_chain_len s.Planner.sp_prime_bits
      s.Planner.sp_plain_bits s.Planner.sp_return_level
      best.Planner.min_headroom_bits best.Planner.security_bits;
    let planned_config = Planner.realize w best in
    let preset_steady_pred =
      let bgv = preset.Config.bgv in
      let unit_costs =
        Sknn_obs.Cost_model.unit_costs_for unit_model ~n:bgv.Params.n
          ~levels:(Params.chain_length bgv)
      in
      let pred =
        Attribution.predict ~include_prepare:false preset ~n ~d ~k
          Sknn_obs.Cost_model.Packed
      in
      List.fold_left (fun acc (_, ps) -> acc +. ps) 0.0
        (Attribution.predicted_phase_seconds ~unit_costs pred)
    in
    let reps = Stdlib.max 1 opts.repeat in
    say "n=%d, d=%d, k=%d, 1 first + %d steady-state queries per variant%s@." n d k reps
      (if opts.full then "" else " (scaled)");
    (* Identical query streams per variant: any timing gap is the
       parameters, not the data. *)
    let pass variant config predicted_steady =
      say "@.%s:@." variant;
      say "%8s %10s %7s@." "query" "total" "exact";
      let dep =
        Protocol.deploy ~obs:!obs ~rng:(Rng.of_int (opts.seed + 31)) ?jobs:opts.jobs
          config ~db
      in
      let qrng = Rng.of_int (opts.seed + 32) in
      Array.init (reps + 1) (fun i ->
          let q = Synthetic.query_like qrng db in
          Gc.full_major ();
          let r, secs =
            Util.Timer.time (fun () ->
                traced_query ~packed:true ~experiment:"planned" dep ~query:q ~k)
          in
          let ok = Protocol.exact dep ~db ~query:q r in
          record_run
            ~extra:
              [ ("variant", Str variant);
                ("packed", Bool true);
                ("steady_state", Bool (i > 0));
                ("predicted_steady_s", Float predicted_steady) ]
            ~experiment:"planned" ~n ~d ~k ~jobs:(Protocol.jobs dep) ~seconds:secs
            ~exact:ok r;
          say "%8s %9.3fs %7b@."
            (if i = 0 then "first" else Printf.sprintf "#%d" i)
            secs ok;
          secs)
    in
    let times_preset = pass "preset" preset preset_steady_pred in
    let times_planned = pass "planned" planned_config best.Planner.steady_seconds in
    let steady times =
      Array.fold_left ( +. ) 0.0 (Array.sub times 1 reps) /. float_of_int reps
    in
    let sp = steady times_preset and spl = steady times_planned in
    say "@.steady-state mean: preset %.3fs (predicted %.3fs), planned %.3fs \
         (predicted %.3fs)@."
      sp preset_steady_pred spl best.Planner.steady_seconds;
    say "measured planner win: %.2fx@." (sp /. spl)

(* ------------------------------------------------------------------ *)
(* Network: virtual-clock end-to-end, predicted vs replayed            *)
(* ------------------------------------------------------------------ *)

(* The comms-aware acceptance experiment: the fig3 (plain), fig3p
   (slot-packed) and batch-8 shapes, each run live under the lan and wan
   profiles.  The virtual wire time is a pure function of (transcript,
   profile), so the predicted transcript's replay and the live
   transcript's replay must agree to the last bit on rounds, bytes and
   wire seconds — only the compute term depends on the calibration.
   check_regress gates the within-run agreement and, against the
   committed baseline, the machine-independent wire numbers. *)
let network opts =
  hr "network — virtual clock: predicted vs replayed end-to-end (lan/wan)";
  let rng = Rng.of_int (opts.seed + 3) in
  let n = scaled opts ~default_scale:0.5 858 in
  let db =
    Preprocess.scale_to_max ~max_value:255 (Uci_like.cervical_cancer ~n rng)
  in
  let d = Array.length db.(0) and k = 2 in
  let m = 8 in
  let plain_config = Config.standard () in
  let packed_config = Config.with_mask_degree 1 (Config.standard ()) in
  let unit_costs = calibration_for ?cache:opts.calib plain_config.Config.bgv in
  let profiles = [ Profile.lan; Profile.wan ] in
  say "n=%d, d=%d, k=%d, batch m=%d@." n d k m;
  say "@.%-7s %-9s %7s %10s %13s %12s %12s %12s %6s@." "shape" "profile" "rounds"
    "bytes" "pred compute" "pred wire" "pred e2e" "replayed" "match";
  let link_sig (tl : Clock.timeline) =
    List.map
      (fun (l : Clock.link) ->
        (l.Clock.link_a, l.Clock.link_b, l.Clock.link_messages,
         l.Clock.link_bytes, l.Clock.link_rounds))
      tl.Clock.links
  in
  let all_exact = ref true in
  let shape ~id ~config ~path ~prepare run_live =
    let dep =
      Protocol.deploy ~obs:!obs ~rng:(Rng.of_int (opts.seed + 91)) ?jobs:opts.jobs
        config ~db
    in
    (* Pay prepare-db up front so every profile's run is steady state and
       the prediction can price the query alone. *)
    if prepare then Protocol.prepare_packed ~obs:!obs dep;
    let qrng = Rng.of_int (opts.seed + 92) in
    let queries = Array.init m (fun _ -> Synthetic.query_like qrng db) in
    List.iter
      (fun profile ->
        let r, s = Util.Timer.time (fun () -> run_live dep ~net:profile ~queries) in
        let ok = Protocol.exact dep ~db ~query:queries.(0) r in
        let tl =
          match r.Protocol.net with
          | Some tl -> tl
          | None -> failwith "network run returned no timeline"
        in
        let e2e =
          Attribution.predict_end_to_end ~include_prepare:false config ~n ~d ~k
            ~unit_costs ~profile path
        in
        let exact_tr =
          link_sig e2e.Sknn_obs.Cost_model.timeline = link_sig tl
        in
        all_exact := !all_exact && exact_tr;
        let tr = r.Protocol.transcript in
        record_run
          ~extra:
            [ ("shape", Str id);
              ("profile", Str (Profile.to_string profile));
              ("predicted_compute_s", Float e2e.Sknn_obs.Cost_model.compute_s);
              ("predicted_wire_s", Float e2e.Sknn_obs.Cost_model.wire_s);
              ("predicted_total_s", Float e2e.Sknn_obs.Cost_model.total_s);
              ("replayed_wire_s", Float tl.Clock.end_to_end_s);
              ("transcript_exact", Bool exact_tr) ]
          ~experiment:"network" ~n ~d ~k ~jobs:(Protocol.jobs dep) ~seconds:s
          ~exact:ok r;
        say "%-7s %-9s %7d %10d %12.6fs %11.6fs %11.6fs %11.6fs %6b@." id
          (Profile.to_string profile)
          (Transcript.rounds tr Transcript.Party_a Transcript.Party_b)
          (Transcript.total_bytes tr) e2e.Sknn_obs.Cost_model.compute_s
          e2e.Sknn_obs.Cost_model.wire_s e2e.Sknn_obs.Cost_model.total_s
          tl.Clock.end_to_end_s exact_tr)
      profiles
  in
  shape ~id:"fig3" ~config:plain_config ~path:Sknn_obs.Cost_model.Plain
    ~prepare:false (fun dep ~net ~queries ->
      Protocol.query ~obs:!obs ~net dep ~query:queries.(0) ~k);
  shape ~id:"fig3p" ~config:packed_config ~path:Sknn_obs.Cost_model.Packed
    ~prepare:true (fun dep ~net ~queries ->
      Protocol.query_packed ~obs:!obs ~net dep ~query:queries.(0) ~k);
  shape ~id:"batch8" ~config:packed_config ~path:(Sknn_obs.Cost_model.Batch m)
    ~prepare:true (fun dep ~net ~queries ->
      (Protocol.query_batch ~obs:!obs ~net dep ~queries ~k).(0));
  say "@.predicted transcripts %s the live replays on every shape x profile@."
    (if !all_exact then "exactly match" else "DIVERGE from")

(* ------------------------------------------------------------------ *)
(* Ring-kernel microbenchmarks (bench/kernels library)                 *)
(* ------------------------------------------------------------------ *)

let kernels opts =
  hr "kernels — NTT / pointwise / mul_sum ring kernels";
  let results = Kernel_bench.run ~quick:(not opts.full) () in
  Format.printf "%a" Kernel_bench.pp_results results;
  kernel_results :=
    Some
      (List
         (List.map
            (fun (r : Kernel_bench.result) ->
              Obj
                [ ("kernel", Str r.Kernel_bench.name);
                  ("n", Int r.Kernel_bench.ring_n);
                  ("prime_bits", Int r.Kernel_bench.prime_bits);
                  ("ns_per_op", Float r.Kernel_bench.ns_per_op);
                  ("reps", Int r.Kernel_bench.reps) ])
            results))

(* ------------------------------------------------------------------ *)
(* Primitive micro-benchmarks (bechamel)                               *)
(* ------------------------------------------------------------------ *)

let micro _opts =
  hr "micro — primitive operation costs (bechamel OLS estimates)";
  let open Bechamel in
  let p = Config.standard () in
  let bgv = p.Config.bgv in
  let rng = Rng.of_int 5150 in
  let keys = Bgv.keygen rng bgv in
  let pt = Plaintext.constant bgv 123L in
  let ct = Bgv.encrypt rng keys.Bgv.pk pt in
  let sk_p, pk_p = Paillier.keygen ~modulus_bits:512 rng in
  let pct = Paillier.encrypt_int rng pk_p 12345 in
  let tests =
    [ Test.make ~name:"bgv.encrypt" (Staged.stage (fun () -> Bgv.encrypt rng keys.Bgv.pk pt));
      Test.make ~name:"bgv.add" (Staged.stage (fun () -> Bgv.add ct ct));
      Test.make ~name:"bgv.mul_no_relin" (Staged.stage (fun () -> Bgv.mul ~rescale:false ct ct));
      Test.make ~name:"bgv.mul_relin_rescale"
        (Staged.stage (fun () -> Bgv.mul ~rlk:keys.Bgv.rlk ct ct));
      Test.make ~name:"bgv.decrypt" (Staged.stage (fun () -> Bgv.decrypt keys.Bgv.sk ct));
      Test.make ~name:"bgv.decrypt_coeff0"
        (Staged.stage (fun () -> Bgv.decrypt_coeff0 keys.Bgv.sk ct));
      (let bp = Params.create ~name:"bfv-micro" ~n:64 ~plain_bits:30 ~prime_bits:30 ~chain_len:6 () in
       let bkeys = Bfv.keygen rng bp in
       let bct = Bfv.encrypt rng bkeys.Bfv.pk (Plaintext.constant bp 123L) in
       Test.make ~name:"bfv.mul_relin"
         (Staged.stage (fun () -> Bfv.mul ~rlk:bkeys.Bfv.rlk bct bct)));
      Test.make ~name:"paillier.encrypt_512"
        (Staged.stage (fun () -> Paillier.encrypt_int rng pk_p 7));
      Test.make ~name:"paillier.decrypt_512"
        (Staged.stage (fun () -> Paillier.decrypt_int sk_p pct));
      Test.make ~name:"paillier.mul_plain_512"
        (Staged.stage (fun () -> Paillier.mul_plain pk_p pct (Zint.of_int 123456789))) ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> say "%-28s %12.1f ns/op (%8.3f ms)@." name ns (ns /. 1e6)
          | _ -> say "%-28s (no estimate)@." name)
        analysed)
    tests

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)
(* ------------------------------------------------------------------ *)

let experiments =
  [ ("table1", table1); ("fig3", fig3); ("fig3p", fig3p); ("fig4", fig4);
    ("fig5", fig5); ("fig6", fig6); ("fig7", fig7); ("headtohead", headtohead);
    ("ablation", ablation); ("scaling", scaling); ("amortized", amortized);
    ("planned", planned); ("network", network); ("kernels", kernels);
    ("extensions", extensions); ("micro", micro) ]

let run opts =
  say "secure k-NN benchmark harness (seed %d, jobs %d, %s)@." opts.seed
    (effective_jobs opts)
    (if opts.full then "FULL paper scale" else "scaled-down default");
  let trace_fmt =
    match Sknn_obs.Trace.format_of_string opts.trace_format with
    | Ok f -> f
    | Error msg ->
      Format.eprintf "%s@." msg;
      exit 2
  in
  let trace_sink =
    if Option.is_some opts.trace then Sknn_obs.Trace.create ()
    else Sknn_obs.Trace.disabled
  in
  let metrics_reg =
    if Option.is_some opts.prom then Some (Sknn_obs.Metrics.create ()) else None
  in
  obs := Sknn_obs.Ctx.create ~trace:trace_sink ?metrics:metrics_reg ();
  List.iter (fun (id, f) -> if wants opts id then f opts) experiments;
  Option.iter (write_json opts) opts.json;
  (match opts.prom, metrics_reg with
   | Some path, Some m ->
     let oc = open_out path in
     output_string oc (Sknn_obs.Metrics.to_prometheus m);
     close_out oc;
     say "wrote Prometheus snapshot to %s@." path
   | _ -> ());
  (match opts.trace with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     Sknn_obs.Trace.write trace_sink trace_fmt oc;
     close_out oc;
     say "wrote %s trace to %s@." opts.trace_format path);
  say "@.done.@."

open Cmdliner

let full_t =
  Arg.(value & flag & info [ "full" ] ~doc:"Run at the paper's full workload sizes.")

let scale_t =
  Arg.(value & opt (some float) None
       & info [ "scale" ] ~doc:"Override the default scale factor.")

let only_t =
  Arg.(value & opt (some string) None
       & info [ "only" ]
           ~doc:"Comma-separated experiment ids (table1, fig3, fig3p, fig4..fig7, headtohead, ablation, scaling, amortized, planned, network, kernels, extensions, micro).")

let seed_t = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic RNG seed.")

let jobs_t =
  Arg.(value & opt (some int) None
       & info [ "jobs" ]
           ~doc:"OCaml domains per parallel protocol phase (default: SKNN_DOMAINS or the \
                 recommended domain count).")

let json_t =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~doc:"Write per-run timings and counters to this JSON file.")

let trace_t =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a hierarchical span trace of every protocol run to $(docv).")

let repeat_t =
  Arg.(value & opt int 5
       & info [ "repeat" ] ~docv:"N"
           ~doc:"Steady-state queries after the first in the amortized experiment.")

let batch_t =
  Arg.(value & opt int 1
       & info [ "batch" ] ~docv:"M"
           ~doc:"Also run M queries through the slot-dimension batch round in the \
                 amortized experiment (1 disables; M must fit the slot count).")

let trace_format_t =
  Arg.(value & opt string "chrome"
       & info [ "trace-format" ]
           ~doc:"Trace sink: chrome (Perfetto-loadable trace_event JSON), jsonl (one \
                 span per line) or pretty (indented tree).")

let prom_t =
  Arg.(value & opt (some string) None
       & info [ "prom" ] ~docv:"FILE"
           ~doc:"Write the metrics registry as Prometheus text exposition to $(docv) \
                 after all experiments.")

let calib_t =
  Arg.(value & opt (some string) None
       & info [ "calib" ] ~docv:"FILE"
           ~doc:"Calibration cache (JSON lines keyed by parameter set) shared with \
                 sknn cost and sknn plan; hits skip the per-op measurement pass, \
                 stale entries warn.")

let main full scale only seed jobs json trace trace_format repeat batch prom calib =
  (match jobs with
   | Some j when j < 1 ->
     Format.eprintf "--jobs must be at least 1 (got %d)@." j;
     exit 2
   | _ -> ());
  if repeat < 1 then begin
    Format.eprintf "--repeat must be at least 1 (got %d)@." repeat;
    exit 2
  end;
  if batch < 1 then begin
    Format.eprintf "--batch must be at least 1 (got %d)@." batch;
    exit 2
  end;
  let only = Option.map (String.split_on_char ',') only in
  run
    { full; scale; only; seed; jobs; json; trace; trace_format; repeat; batch; prom;
      calib }

let cmd =
  Cmd.v
    (Cmd.info "sknn-bench" ~doc:"Regenerate the paper's tables and figures")
    Term.(const main $ full_t $ scale_t $ only_t $ seed_t $ jobs_t $ json_t $ trace_t
          $ trace_format_t $ repeat_t $ batch_t $ prom_t $ calib_t)

let () = exit (Cmd.eval cmd)
