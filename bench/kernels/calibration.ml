(* Per-op unit-cost calibration for the cost ledger.

   The ledger (Util.Counters) attributes every ciphertext operation to
   an (op kind, BGV level) cell; this pass measures how many seconds one
   operation of each kind costs at each level of a parameter set's
   modulus chain, producing the unit-cost table the analytic replica
   (Sknn_obs.Cost_model.predict_seconds) prices ledgers with:

     predicted_time = sum over cells of count * unit_cost.

   Measurements use the same adaptive-repetition loop as Kernel_bench
   (not shared: Kernel_bench is the library's main module, so it cannot
   be a dependency of this one).  The NTT census rows (ntt_fwd/ntt_inv)
   stay at zero on purpose: each composite op is measured end to end,
   NTT passes included, so pricing the census too would double-count
   them. *)

module C = Util.Counters

(* [costs.(C.op_index op).(level)] = seconds per op; row 0 of the
   level axis holds the level-free slot ops. *)
type t = float array array

(* Grow the repetition count until the timed loop runs for [target]
   seconds, then report the mean; two untimed calls warm the code and
   working set first. *)
let seconds ~target f =
  f ();
  f ();
  let rec go reps =
    let t0 = Util.Timer.now () in
    for _ = 1 to reps do
      f ()
    done;
    let elapsed = Util.Timer.now () -. t0 in
    if elapsed >= target || reps >= 100_000_000 then elapsed /. float_of_int reps
    else go (reps * 4)
  in
  go 1

(* Measurement window per op.  Quick mode keeps a full-chain calibration
   under a couple of seconds for CI; the default gives ~1% stable means
   on a quiet machine. *)
let target ~quick = if quick then 0.01 else 0.1

let measure ?(quick = false) ?rng (params : Params.t) : t =
  let rng = match rng with Some r -> r | None -> Util.Rng.create 1907L in
  let target = target ~quick in
  let sec f = seconds ~target f in
  let chain = Params.chain_length params in
  let costs = Array.make_matrix C.num_ops (Stdlib.max 1 chain + 1) 0.0 in
  let set op level s = costs.(C.op_index op).(level) <- s in
  let keys = Bgv.keygen rng params in
  let pt = Plaintext.constant params 123L in
  let fresh = Bgv.encrypt rng keys.Bgv.pk pt in
  (* Fresh encryption lands at the full chain level, but the protocol
     also encrypts directly at lower levels (Party B's Return-kNN
     indicators at return_level), so every level gets its own cell. *)
  for lvl = 1 to chain do
    set C.Op_encrypt lvl
      (sec (fun () -> ignore (Bgv.encrypt ~level:lvl rng keys.Bgv.pk pt)))
  done;
  (* Slot packing/unpacking is plaintext-side and level-free (row 0).
     to_slots caches its answer per plaintext, so the unpack measurement
     rebuilds an uncached (coefficient-born) plaintext each rep and
     subtracts the rebuild cost. *)
  let slots =
    Array.init (Params.slot_count params) (fun i -> Int64.of_int ((i mod 251) + 1))
  in
  set C.Op_slot_pack 0 (sec (fun () -> ignore (Plaintext.of_slots params slots)));
  let coeffs = Array.init params.Params.n (fun i -> Int64.of_int (i mod 5)) in
  let rebuild = sec (fun () -> ignore (Plaintext.of_coeffs params coeffs)) in
  let both =
    sec (fun () -> ignore (Plaintext.to_slots (Plaintext.of_coeffs params coeffs)))
  in
  set C.Op_slot_unpack 0 (Float.max 0.0 (both -. rebuild));
  (* Per-level ciphertexts come from repeated modulus switching, like
     the live pipeline, so their noise shrinks with the modulus.  The
     decrypt measurement is additionally guarded: levels whose modulus
     cannot hold the plaintext at all (the live path never decrypts
     there, so their ledger cells are always zero) stay at zero cost. *)
  let ladder = Array.make (chain + 1) fresh in
  for lvl = chain - 1 downto 1 do
    ladder.(lvl) <- Bgv.modswitch ladder.(lvl + 1)
  done;
  for lvl = 1 to chain do
    let ct = ladder.(lvl) in
    (try set C.Op_decrypt lvl (sec (fun () -> ignore (Bgv.decrypt keys.Bgv.sk ct)))
     with Bgv.Decryption_failure _ -> ());
    set C.Op_ct_add lvl (sec (fun () -> ignore (Bgv.add ct ct)));
    set C.Op_mul_plain lvl (sec (fun () -> ignore (Bgv.mul_plain ct pt)));
    set C.Op_ct_mul lvl (sec (fun () -> ignore (Bgv.mul ~rescale:false ct ct)));
    let deg2 = Bgv.mul ~rescale:false ct ct in
    set C.Op_key_switch lvl
      (sec (fun () -> ignore (Bgv.relinearize keys.Bgv.rlk deg2)));
    if lvl >= 2 then
      set C.Op_modswitch lvl (sec (fun () -> ignore (Bgv.modswitch ct)));
    (* A level drop records at its target level; dropping to the current
       level is a no-op the live path never records. *)
    if lvl < chain then
      set C.Op_level_drop lvl (sec (fun () -> ignore (Bgv.truncate_to_level fresh lvl)))
  done;
  costs

(* The census rows stay zero; everything else is worth printing. *)
let priced_ops =
  List.filter
    (fun op -> op <> C.Op_ntt_fwd && op <> C.Op_ntt_inv)
    (Array.to_list C.all_ops)

let pp ppf (costs : t) =
  let levels = Array.length costs.(0) - 1 in
  Format.fprintf ppf "%-12s" "op \\ level";
  for lvl = 0 to levels do
    Format.fprintf ppf " %9s" (if lvl = 0 then "slots" else Printf.sprintf "L%d" lvl)
  done;
  Format.fprintf ppf "@.";
  List.iter
    (fun op ->
      let row = costs.(C.op_index op) in
      if Array.exists (fun s -> s > 0.0) row then begin
        Format.fprintf ppf "%-12s" (C.op_name op);
        Array.iter
          (fun s ->
            if s > 0.0 then Format.fprintf ppf " %8.2fus" (s *. 1e6)
            else Format.fprintf ppf " %9s" "-")
          row;
        Format.fprintf ppf "@."
      end)
    priced_ops

(* One JSON line per table, parseable by Report/check_regress's minimal
   readers: {"rec":"calibration","ops":[{"op":...,"level":...,"s":...}]} *)
let to_json_line (costs : t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"rec\":\"calibration\",\"ops\":[";
  let first = ref true in
  List.iter
    (fun op ->
      Array.iteri
        (fun lvl s ->
          if s > 0.0 then begin
            if not !first then Buffer.add_char buf ',';
            first := false;
            Buffer.add_string buf
              (Printf.sprintf "{\"op\":%S,\"level\":%d,\"s\":%.9g}" (C.op_name op) lvl s)
          end)
        costs.(C.op_index op))
    priced_ops;
  Buffer.add_string buf "]}";
  Buffer.contents buf
